// Command regionsim runs one workload under one region-selection algorithm
// and prints the full metric report:
//
//	regionsim -workload gcc -selector lei
//	regionsim -workload fig2-loop-call -selector net -regions
//	regionsim -workload mcf -all            # all selectors side by side
//	regionsim -list                         # list workloads and selectors
//
// Use -asm FILE to simulate a program written in the textual assembly
// syntax of internal/asm instead of a named workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro"
	"repro/internal/asm"
	"repro/internal/codecache"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/program"
	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	workload := flag.String("workload", "fig2-loop-call", "workload name (see -list)")
	selector := flag.String("selector", "net", "selector name (see -list)")
	asmFile := flag.String("asm", "", "assemble and run this file instead of a named workload")
	scale := flag.Int("scale", 0, "workload scale override")
	all := flag.Bool("all", false, "run every selector on the workload")
	regions := flag.Bool("regions", false, "dump the selected regions")
	opt := flag.Bool("opt", false, "print the optimizer summary (paper §4.4)")
	cacheLimit := flag.Int("cachelimit", 0, "bounded code cache size in bytes (0 = unbounded)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	saveCache := flag.String("savecache", "", "write the final code-cache snapshot to this file")
	csvOut := flag.String("csv", "", "write per-region statistics as CSV to this file")
	loadCache := flag.String("loadcache", "", "preload a code-cache snapshot (same workload) before the run")
	record := flag.String("record", "", "record the block-event stream to this file while running (internal/tracestream)")
	replay := flag.String("replay", "", "drive the simulation from a recorded stream instead of the VM")
	list := flag.Bool("list", false, "list workloads and selectors, then exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	if *list {
		names := repro.Workloads()
		sort.Strings(names)
		fmt.Println("workloads:")
		for _, n := range names {
			w, _ := repro.GetWorkload(n)
			fmt.Printf("  %-18s %s\n", n, w.Description)
		}
		fmt.Println("selectors:")
		for _, s := range repro.SelectorNames() {
			fmt.Printf("  %s\n", s)
		}
		return
	}

	prog, name, err := loadProgram(*asmFile, *workload, *scale)
	if err != nil {
		fail(err)
	}
	if *record != "" && *replay != "" {
		fail(fmt.Errorf("-record needs a live VM run; it cannot be combined with -replay"))
	}
	var stream *tracestream.Stream
	if *replay != "" {
		data, rerr := os.ReadFile(*replay)
		if rerr != nil {
			fail(rerr)
		}
		if stream, err = tracestream.DecodeBytes(data); err != nil {
			fail(err)
		}
		if err := stream.Header.CheckProgram(prog); err != nil {
			fail(err)
		}
	}
	var preload []codecache.RegionSnapshot
	if *loadCache != "" {
		f, err := os.Open(*loadCache)
		if err != nil {
			fail(err)
		}
		preload, err = codecache.ReadSnapshot(f)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
	sels := []string{*selector}
	if *all {
		sels = repro.SelectorNames()
	}
	for _, selName := range sels {
		sel, err := repro.NewSelector(selName, repro.Params{})
		if err != nil {
			fail(err)
		}
		cfg := dynopt.Config{
			Selector:        sel,
			VM:              vm.Config{},
			CacheLimitBytes: *cacheLimit,
			Preload:         preload,
		}
		var rec *tracestream.Recorder
		if *record != "" {
			// Tap the live run's event stream: the recording captures the
			// exact stream that produced this report, no second run.
			rec = tracestream.NewRecorder(prog, name, *scale)
			cfg.Tap = rec
		}
		var res dynopt.Result
		if stream != nil {
			res, err = dynopt.RunEvents(prog, cfg, stream.Events,
				stream.Header.FinalPC, stream.Header.Instrs)
		} else {
			res, err = dynopt.Run(prog, cfg)
		}
		if err != nil {
			fail(err)
		}
		if rec != nil {
			f, ferr := os.Create(*record)
			if ferr != nil {
				fail(ferr)
			}
			ferr = rec.Finish(f, res.VMStats)
			if cerr := f.Close(); ferr == nil {
				ferr = cerr
			}
			if ferr != nil {
				fail(ferr)
			}
		}
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fail(err)
			}
			err = metrics.WriteRegionsCSV(f, res.Cache)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail(err)
			}
		}
		if *saveCache != "" {
			f, err := os.Create(*saveCache)
			if err != nil {
				fail(err)
			}
			err = res.Cache.WriteSnapshot(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail(err)
			}
		}
		res.Report.Workload = name
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res.Report); err != nil {
				fail(err)
			}
		} else {
			fmt.Print(res.Report)
		}
		if *opt {
			printOptimizer(prog, res.Cache)
		}
		if *regions {
			dumpRegions(prog, res.Cache)
		}
		fmt.Println()
	}
}

func loadProgram(asmFile, workload string, scale int) (*program.Program, string, error) {
	if asmFile != "" {
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, "", err
		}
		p, err := asm.Parse(string(src))
		if err != nil {
			return nil, "", err
		}
		return p, asmFile, nil
	}
	w, ok := workloads.Get(workload)
	if !ok {
		return nil, "", fmt.Errorf("unknown workload %q (try -list)", workload)
	}
	return w.Build(scale), workload, nil
}

func printOptimizer(p *program.Program, cache *codecache.Cache) {
	s := optimizer.Summarize(p, cache)
	fmt.Printf("  optimizer: cyclic=%d/%d fallthrough-edges=%d/%d jumps-removed=%d invariant=%d hoistable=%d\n",
		s.Cyclic, s.Regions, s.FallThroughs, s.PossibleFallEdges,
		s.JumpsRemoved, s.InvariantCandidates, s.Hoistable)
}

func dumpRegions(p *program.Program, cache *codecache.Cache) {
	for _, r := range cache.AllRegions() {
		fmt.Printf("  region %d: %s entry=%d blocks=%d instrs=%d stubs=%d cyclic=%v execs=%d cycles=%d\n",
			r.ID, r.Kind, r.Entry, len(r.Blocks), r.Instrs, r.Stubs, r.Cyclic, r.Traversals, r.CycleTraversals)
		for i, b := range r.Blocks {
			succ := ""
			for _, s := range r.Succs[i] {
				succ += fmt.Sprintf(" ->%d", r.Blocks[s].Start)
			}
			fmt.Printf("    block @%d len=%d%s\n", b.Start, b.Len, succ)
		}
	}
	_ = p
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "regionsim:", err)
	os.Exit(1)
}
