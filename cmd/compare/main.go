// Command compare runs one workload under two selector configurations and
// prints their reports side by side with deltas — the quickest way to see
// what an algorithm or parameter change buys:
//
//	compare -workload gcc -a net -b lei
//	compare -workload mcf -a lei -b lei+comb -scale 2000
//	compare -workload gcc -a lei -b lei -bbuffer 50   # parameter study
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	workload := flag.String("workload", "gcc", "workload name")
	selA := flag.String("a", "net", "first selector")
	selB := flag.String("b", "lei", "second selector")
	scale := flag.Int("scale", 0, "workload scale override")
	aBuffer := flag.Int("abuffer", 0, "history-buffer capacity override for A")
	bBuffer := flag.Int("bbuffer", 0, "history-buffer capacity override for B")
	flag.Parse()

	w, ok := workloads.Get(*workload)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
	prog := w.Build(*scale)

	run := func(name string, bufCap int) metrics.Report {
		params := repro.Params{}
		if bufCap > 0 {
			params.HistoryCap = bufCap
		}
		sel, err := repro.NewSelector(name, params)
		if err != nil {
			fail(err)
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}})
		if err != nil {
			fail(err)
		}
		return res.Report
	}
	a := run(*selA, *aBuffer)
	b := run(*selB, *bBuffer)

	fmt.Printf("workload %q: %s (A) vs %s (B)\n\n", *workload, *selA, *selB)
	fmt.Printf("%-22s %14s %14s %10s\n", "metric", "A", "B", "B/A")
	row := func(name string, va, vb float64, format string) {
		ratio := "-"
		if va != 0 {
			ratio = fmt.Sprintf("%.3f", vb/va)
		}
		fmt.Printf("%-22s "+format+" "+format+" %10s\n", name, va, vb, ratio)
	}
	row("hit rate %", 100*a.HitRate, 100*b.HitRate, "%14.2f")
	row("regions", float64(a.Regions), float64(b.Regions), "%14.0f")
	row("code expansion", float64(a.CodeExpansion), float64(b.CodeExpansion), "%14.0f")
	row("exit stubs", float64(a.Stubs), float64(b.Stubs), "%14.0f")
	row("est. cache bytes", float64(a.EstimatedBytes), float64(b.EstimatedBytes), "%14.0f")
	row("transitions", float64(a.Transitions), float64(b.Transitions), "%14.0f")
	row("transition reach B", float64(a.TransitionReach), float64(b.TransitionReach), "%14.0f")
	row("spanned cycles %", 100*a.SpannedRatio, 100*b.SpannedRatio, "%14.1f")
	row("executed cycles %", 100*a.ExecutedRatio, 100*b.ExecutedRatio, "%14.1f")
	row("cover90", float64(a.CoverSet90), float64(b.CoverSet90), "%14.0f")
	row("counters high-water", float64(a.CountersHighWater), float64(b.CountersHighWater), "%14.0f")
	row("exit-dominated %", 100*a.ExitDominatedRatio, 100*b.ExitDominatedRatio, "%14.1f")
	row("links", float64(a.Links), float64(b.Links), "%14.0f")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
