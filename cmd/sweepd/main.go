// Command sweepd is the distributed sweep worker: it serves the sweepnet
// wire protocol, executing job ranges a coordinator (cmd/sweep -remote)
// assigns and streaming the results back:
//
//	sweepd                        # listen on :7543, GOMAXPROCS shards
//	sweepd -listen :9000 -shards 4
//
// One pooled sweep engine is shared across connections for the lifetime of
// the process, so repeated coordinator runs reuse warmed scratch state and
// compiled programs. On SIGTERM or SIGINT the worker drains gracefully: it
// stops accepting connections, finishes the range each session is
// executing, and exits; the coordinator reassigns the rest (docs/SWEEPD.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/sweep"
	"repro/internal/sweepnet"
)

func main() {
	listen := flag.String("listen", ":7543", "TCP listen address (host:port; port 0 picks a free port)")
	shards := flag.Int("shards", 0, "engine shards per range (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "local reorder-window size in jobs (0 = engine default)")
	memo := flag.String("memo", "on", "record-once/replay-many trace memoization (on|off); output is byte-identical either way")
	memoBudget := flag.Int64("memobudget", 0, "resident memoized-corpus budget in bytes (0 = engine default)")
	flag.Parse()
	mode, err := sweep.ParseMemoMode(*memo)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	// The scripted smoke test and operators both parse this line for the
	// bound address (meaningful with -listen :0).
	fmt.Printf("sweepd: listening on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runner := sweep.NewRunner()
	err = sweepnet.Serve(ctx, ln, sweepnet.ServerOptions{
		Shards:          *shards,
		Window:          *window,
		Memo:            mode,
		MemoBudgetBytes: *memoBudget,
		Runner:          runner,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	st := runner.MemoStats()
	fmt.Printf("sweepd: memo hits=%d misses=%d fallbacks=%d evictions=%d rejected=%d resident=%d(%dB)\n",
		st.Hits, st.Misses, st.Fallbacks, st.Evictions, st.Rejected, st.Resident, st.ResidentBytes)
	fmt.Println("sweepd: drained")
}
