package main

import (
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/sweep"
)

// TestCSVSinkQuoting delivers results whose string fields contain every CSV
// hazard — separators, quotes, newlines, leading spaces — and checks the
// emitted bytes parse back to the exact field values. encoding/csv owns the
// quoting; this pins that the sink never bypasses it.
func TestCSVSinkQuoting(t *testing.T) {
	hazards := []struct{ workload, selector string }{
		{"gzip", "net"},
		{"with,comma", "quo\"te"},
		{"new\nline", " leading space"},
		{`"fully quoted"`, "trailing space "},
	}
	var out strings.Builder
	sink, flush, err := newSink("csv", &out)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hazards {
		var r sweep.Result
		r.Index = i
		r.Job.Workload = h.workload
		r.Job.Selector = h.selector
		r.Report.TotalInstrs = uint64(1000 + i)
		r.Report.HitRate = 0.5
		sink.Deliver(r)
	}
	flush()

	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted csv does not parse: %v\noutput:\n%s", err, out.String())
	}
	if len(rows) != 1+len(hazards) {
		t.Fatalf("got %d rows, want header + %d", len(rows), len(hazards))
	}
	if got, want := len(rows[0]), len(csvHeader); got != want {
		t.Fatalf("header has %d columns, want %d", got, want)
	}
	for i, h := range hazards {
		row := rows[1+i]
		if row[0] != h.workload || row[1] != h.selector {
			t.Errorf("row %d round-tripped to (%q, %q), want (%q, %q)",
				i, row[0], row[1], h.workload, h.selector)
		}
		if len(row) != len(csvHeader) {
			t.Errorf("row %d has %d columns, want %d", i, len(row), len(csvHeader))
		}
	}
}

// TestCSVRowMatchesHeader pins the row arity to the header so a column added
// to one but not the other fails fast.
func TestCSVRowMatchesHeader(t *testing.T) {
	if got, want := len(csvRow(sweep.Result{})), len(csvHeader); got != want {
		t.Fatalf("csvRow emits %d fields, header names %d", got, want)
	}
}

// TestParseGridRejectsUnknownKey guards the -grid error path.
func TestParseGridRejectsUnknownKey(t *testing.T) {
	if _, err := parseGrid("bogus=1"); err == nil {
		t.Fatal("parseGrid accepted an unknown key")
	}
	if _, err := parseGrid("workloads=no-such-workload"); err == nil {
		t.Fatal("parseGrid accepted an unknown workload")
	}
}
