// Command sweep runs a parameter-sweep grid — workloads × selectors ×
// parameter points — on the sharded sweep engine and streams the results:
//
//	sweep                                # the paper's full 12×4 grid
//	sweep -grid 'workloads=gzip,gcc;selectors=net,lei;scale=100'
//	sweep -grid 'selectors=lei;leithreshold=16,32,64' -sink csv
//	sweep -grid 'workloads=synthetic;scale=400000' -shards 8 -sink jsonl
//	sweep -remote host1:7543,host2:7543  # same grid, distributed to sweepd
//	sweep -list                          # grid keys, workloads, selectors
//
// The -grid spec is a semicolon-separated list of key=value assignments;
// list-valued keys take comma-separated values and the grid is the cross
// product of every list. Results stream out in deterministic grid order
// regardless of sharding, so two invocations of the same grid are
// byte-identical. Interrupting the run (SIGINT) cancels the remaining
// cells and exits after the delivered prefix.
//
// With -remote the grid runs on sweepd workers (cmd/sweepd) instead of
// in-process shards; the output and every other flag are unchanged — a
// distributed run is byte-identical to a local one, whatever the worker
// count or timing (see docs/SWEEPD.md). The exception is -shards, which
// is a worker-side setting in remote mode: each sweepd picks its own
// shard count (sweepd -shards), and setting -shards here warns.
//
// Grids memoize by default (docs/PERFORMANCE.md): the first job touching a
// (workload, scale) cell records the VM's branch-event stream in memory and
// every other job of the cell replays it, so multi-point parameter axes run
// severalfold faster with byte-identical output. -memo=off forces every job
// live; -v prints the memo hit/miss/evict/fallback counters to stderr. Like
// -shards, -memo is a worker-side setting in remote mode (sweepd -memo).
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/sweepnet"
	"repro/internal/tracestream"
	"repro/internal/workloads"
)

func main() {
	gridSpec := flag.String("grid", "", "grid spec: 'key=v1,v2;key=v' (see -list for keys; empty = paper 12×4 grid)")
	shards := flag.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
	window := flag.Int("window", 0, "reorder-window size in jobs (0 = 4×shards)")
	sinkName := flag.String("sink", "table", "output format: table, csv, jsonl, or none")
	remote := flag.String("remote", "", "comma-separated sweepd worker addresses; empty = run in-process")
	memo := flag.String("memo", "on", "record-once/replay-many trace memoization (on|off); output is byte-identical either way")
	verbose := flag.Bool("v", false, "print run statistics (memo counters) to stderr")
	list := flag.Bool("list", false, "list grid keys, workloads, and selectors, then exit")
	flag.Parse()

	if *list {
		printList()
		return
	}
	grid, err := parseGrid(*gridSpec)
	if err != nil {
		fail(err)
	}
	memoMode, err := sweep.ParseMemoMode(*memo)
	if err != nil {
		fail(err)
	}
	sink, flush, err := newSink(*sinkName, os.Stdout)
	if err != nil {
		fail(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *remote != "" {
		if *shards != 0 {
			fmt.Fprintln(os.Stderr, "sweep: warning: -shards has no effect with -remote; sharding is a worker-side setting (sweepd -shards)")
		}
		if memoMode != sweep.MemoOn {
			fmt.Fprintln(os.Stderr, "sweep: warning: -memo has no effect with -remote; memoization is a worker-side setting (sweepd -memo)")
		}
		addrs := strings.Split(*remote, ",")
		for i, a := range addrs {
			addrs[i] = strings.TrimSpace(a)
		}
		err = sweepnet.RunGrid(ctx, addrs, grid, sweepnet.Options{Window: *window}, sink)
	} else {
		runner := sweep.NewRunner()
		err = runner.RunGrid(ctx, grid, sweep.Options{Shards: *shards, Window: *window, Memo: memoMode}, sink)
		if *verbose {
			st := runner.MemoStats()
			fmt.Fprintf(os.Stderr, "sweep: memo hits=%d misses=%d fallbacks=%d evictions=%d rejected=%d resident=%d(%dB)\n",
				st.Hits, st.Misses, st.Fallbacks, st.Evictions, st.Rejected, st.Resident, st.ResidentBytes)
		}
	}
	flush()
	if err != nil {
		fail(err)
	}
}

// gridKeys are the recognized -grid assignments. Parameter keys are
// list-valued: the engine runs the cross product of every parameter list.
var gridKeys = []struct{ key, doc string }{
	{"workloads", "workload names or trace:<path> corpora (default: the twelve SPEC-named workloads)"},
	{"selectors", "selector names (default: net, lei, net+comb, lei+comb)"},
	{"scale", "workload scale multiplier (single value; 0 = per-workload default)"},
	{"cachelimit", "code-cache bounds in bytes (0 = unbounded)"},
	{"netthreshold", "NET selection thresholds"},
	{"leithreshold", "LEI selection thresholds"},
	{"historycap", "LEI history-buffer capacities"},
	{"tprof", "trace-combination profiling windows"},
	{"phasewindow", "adaptive phase-detector window sizes (observations)"},
	{"phasedwell", "adaptive phase-detector dwell windows (hysteresis)"},
}

func parseGrid(spec string) (sweep.Grid, error) {
	g := sweep.Grid{
		Workloads: workloads.SpecNames(),
		Selectors: sweep.PaperSelectors(),
	}
	// Each parameter key contributes one axis to the config cross product.
	axes := map[string][]int{}
	for _, kv := range strings.Split(spec, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return g, fmt.Errorf("grid assignment %q is not key=value", kv)
		}
		vals := strings.Split(val, ",")
		switch key {
		case "workloads":
			g.Workloads = vals
			for _, w := range vals {
				if tracestream.IsRef(w) {
					// Syntax check only: the stream file is read (and its
					// program digest verified) when the job first runs —
					// with -remote, on the worker's filesystem.
					if tracestream.RefPath(w) == "" {
						return g, fmt.Errorf("trace workload %q has an empty path", w)
					}
					continue
				}
				if _, ok := workloads.Get(w); !ok {
					return g, fmt.Errorf("unknown workload %q (try -list)", w)
				}
			}
		case "selectors":
			g.Selectors = vals
			for _, s := range vals {
				if _, err := sweep.NewSelector(s, core.DefaultParams()); err != nil {
					return g, err
				}
			}
		case "scale":
			n, err := strconv.Atoi(val)
			if err != nil {
				return g, fmt.Errorf("scale %q: %w", val, err)
			}
			g.Scale = n
		case "cachelimit", "netthreshold", "leithreshold", "historycap", "tprof",
			"phasewindow", "phasedwell":
			ints := make([]int, len(vals))
			for i, v := range vals {
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return g, fmt.Errorf("%s value %q: %w", key, v, err)
				}
				ints[i] = n
			}
			axes[key] = ints
		default:
			return g, fmt.Errorf("unknown grid key %q (try -list)", key)
		}
	}
	g.Configs = expandConfigs(axes)
	return g, nil
}

// expandConfigs builds the cross product of every parameter axis, in the
// deterministic order the axes are declared in gridKeys.
func expandConfigs(axes map[string][]int) []sweep.Config {
	configs := []sweep.Config{{Params: core.DefaultParams()}}
	expand := func(key string, apply func(*sweep.Config, int)) {
		vals, ok := axes[key]
		if !ok {
			return
		}
		next := make([]sweep.Config, 0, len(configs)*len(vals))
		for _, c := range configs {
			for _, v := range vals {
				nc := c
				apply(&nc, v)
				next = append(next, nc)
			}
		}
		configs = next
	}
	expand("cachelimit", func(c *sweep.Config, v int) { c.CacheLimitBytes = v })
	expand("netthreshold", func(c *sweep.Config, v int) { c.Params.NETThreshold = v })
	expand("leithreshold", func(c *sweep.Config, v int) { c.Params.LEIThreshold = v })
	expand("historycap", func(c *sweep.Config, v int) { c.Params.HistoryCap = v })
	expand("tprof", func(c *sweep.Config, v int) { c.Params.TProf = v })
	expand("phasewindow", func(c *sweep.Config, v int) { c.Params.PhaseWindow = v })
	expand("phasedwell", func(c *sweep.Config, v int) { c.Params.PhaseDwell = v })
	return configs
}

// csvHeader and csvRow define the csv sink's schema; encoding/csv owns the
// quoting, so workload or selector names containing separators, quotes, or
// newlines survive a round trip (TestCSVSinkQuoting).
var csvHeader = []string{"workload", "selector", "cachelimit", "netthreshold",
	"leithreshold", "historycap", "tprof", "instrs", "hitrate",
	"regions", "expansion", "stubs", "transitions", "cover90", "counters"}

func csvRow(r sweep.Result) []string {
	return []string{
		r.Job.Workload, r.Job.Selector,
		strconv.Itoa(r.Job.CacheLimitBytes),
		strconv.Itoa(r.Job.Params.NETThreshold),
		strconv.Itoa(r.Job.Params.LEIThreshold),
		strconv.Itoa(r.Job.Params.HistoryCap),
		strconv.Itoa(r.Job.Params.TProf),
		strconv.FormatUint(r.Report.TotalInstrs, 10),
		strconv.FormatFloat(r.Report.HitRate, 'f', 4, 64),
		strconv.Itoa(r.Report.Regions),
		strconv.Itoa(r.Report.CodeExpansion),
		strconv.Itoa(r.Report.Stubs),
		strconv.FormatUint(r.Report.Transitions, 10),
		strconv.Itoa(r.Report.CoverSet90),
		strconv.Itoa(r.Report.CountersHighWater),
	}
}

// newSink returns the output sink and a flush function to run after the
// sweep drains. The flush function fails the process on pending write
// errors, so a full disk or closed pipe can't silently truncate a run's
// output.
func newSink(name string, out io.Writer) (sweep.ResultSink, func(), error) {
	switch name {
	case "none":
		return sweep.FuncSink(func(sweep.Result) {}), func() {}, nil
	case "jsonl":
		enc := json.NewEncoder(out)
		return sweep.FuncSink(func(r sweep.Result) {
			if err := enc.Encode(r.Report); err != nil {
				fail(err)
			}
		}), func() {}, nil
	case "csv":
		w := csv.NewWriter(out)
		header := true
		sink := sweep.FuncSink(func(r sweep.Result) {
			if header {
				header = false
				if err := w.Write(csvHeader); err != nil {
					fail(err)
				}
			}
			if err := w.Write(csvRow(r)); err != nil {
				fail(err)
			}
		})
		flush := func() {
			w.Flush()
			if err := w.Error(); err != nil {
				fail(err)
			}
		}
		return sink, flush, nil
	case "table":
		header := true
		return sweep.FuncSink(func(r sweep.Result) {
			if header {
				header = false
				fmt.Fprintf(out, "%-18s %-9s %10s %8s %8s %7s %6s %7s %8s\n",
					"workload", "selector", "limit", "instrs", "hitrate", "regions", "stubs", "cover90", "counters")
			}
			fmt.Fprintf(out, "%-18s %-9s %10d %8d %7.1f%% %7d %6d %7d %8d\n",
				r.Job.Workload, r.Job.Selector, r.Job.CacheLimitBytes,
				r.Report.TotalInstrs, 100*r.Report.HitRate, r.Report.Regions,
				r.Report.Stubs, r.Report.CoverSet90, r.Report.CountersHighWater)
		}), func() {}, nil
	default:
		return nil, nil, fmt.Errorf("unknown sink %q (table, csv, jsonl, none)", name)
	}
}

func printList() {
	fmt.Println("grid keys:")
	for _, k := range gridKeys {
		fmt.Printf("  %-14s %s\n", k.key, k.doc)
	}
	names := workloads.Names()
	sort.Strings(names)
	fmt.Println("workloads:")
	for _, n := range names {
		w, _ := workloads.Get(n)
		fmt.Printf("  %-18s %s\n", n, w.Description)
	}
	fmt.Printf("  %-18s %s\n", "trace:<path>",
		"recorded branch-event stream (cmd/tracerec); replays through the selectors without the VM")
	fmt.Println("selectors:")
	for _, s := range []string{sweep.NET, sweep.LEI, sweep.NETComb, sweep.LEIComb, sweep.MojoNET, sweep.BOA, sweep.WRS} {
		fmt.Printf("  %s\n", s)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
