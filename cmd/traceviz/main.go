// Command traceviz runs a workload under a selector and renders each
// selected region against the program's disassembly, making it easy to see
// what the algorithms picked — which traces span cycles, where exit stubs
// fall, and how combined regions branch internally:
//
//	traceviz -workload fig3-nested-loops -selector lei
//	traceviz -workload gzip -selector lei+comb -disasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/codecache"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/optimizer"
	"repro/internal/program"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	workload := flag.String("workload", "fig3-nested-loops", "workload name")
	selector := flag.String("selector", "lei", "selector name")
	scale := flag.Int("scale", 0, "workload scale override")
	disasm := flag.Bool("disasm", false, "print full program disassembly first")
	emit := flag.Bool("emit", false, "also print each region's emitted cache image (layout + stubs)")
	dot := flag.String("dot", "", "write the region link graph as Graphviz DOT to this file")
	flag.Parse()

	w, ok := workloads.Get(*workload)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *workload))
	}
	prog := w.Build(*scale)
	sel, err := repro.NewSelector(*selector, repro.Params{})
	if err != nil {
		fail(err)
	}
	res, err := dynopt.Run(prog, dynopt.Config{Selector: sel, VM: vm.Config{}})
	if err != nil {
		fail(err)
	}
	if *disasm {
		fmt.Println(prog.Disassemble(0, isa.Addr(prog.Len())))
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		err = metrics.WriteRegionGraphDOT(f, res.Cache, res.Collector)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
	}
	fmt.Printf("%s under %s: %d regions, %d instructions copied, %d stubs\n\n",
		*workload, *selector, res.Report.Regions, res.Report.CodeExpansion, res.Report.Stubs)
	for _, r := range res.Cache.AllRegions() {
		head := fmt.Sprintf("region %d (%s)", r.ID, r.Kind)
		if r.Cyclic {
			head += " [spans cycle]"
		}
		fmt.Printf("%s  entry=%d  stubs=%d  entered=%d  traversals=%d  cycle-traversals=%d\n",
			head, r.Entry, r.Stubs, r.Entries, r.Traversals, r.CycleTraversals)
		for i, b := range r.Blocks {
			var succs []string
			for _, s := range r.Succs[i] {
				if s == 0 {
					succs = append(succs, "entry")
				} else {
					succs = append(succs, fmt.Sprintf("@%d", r.Blocks[s].Start))
				}
			}
			arrow := ""
			if len(succs) > 0 {
				arrow = " -> " + strings.Join(succs, ", ")
			}
			fn := ""
			if f, ok := prog.FuncAt(b.Start); ok {
				fn = " (" + f.Name + ")"
			}
			fmt.Printf("  block @%-5d len=%-3d%s%s\n", b.Start, b.Len, fn, arrow)
			for a := b.Start; a < b.Start+isa.Addr(b.Len); a++ {
				fmt.Printf("    %4d  %s\n", a, prog.At(a))
			}
		}
		if *emit {
			printEmitted(prog, r)
		}
		fmt.Println()
	}
}

func printEmitted(prog *program.Program, r *codecache.Region) {
	em, err := optimizer.Emit(prog, r)
	if err != nil {
		fmt.Printf("  (emit failed: %v)\n", err)
		return
	}
	fmt.Printf("  emitted image: %d body + %d stub instrs (jumps removed=%d inserted=%d inverted=%d)\n",
		em.BodyLen, len(em.Stubs), em.JumpsRemoved, em.JumpsInserted, em.BranchesInverted)
	for off, in := range em.Code {
		marker := ""
		for bi, bo := range em.BlockOffsets {
			if bo == off {
				marker = fmt.Sprintf("  <- block @%d", r.Blocks[bi].Start)
			}
		}
		if off == em.BodyLen {
			fmt.Println("    ---- stubs ----")
		}
		fmt.Printf("    %4d  %s%s\n", off, in, marker)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traceviz:", err)
	os.Exit(1)
}
