// Command papertables regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark suite:
//
//	papertables              # all figures
//	papertables -fig fig9    # one figure
//	papertables -scale 2000  # override workload scale
//	papertables -list        # list figure IDs
//
// Absolute values differ from the paper (the workloads are synthetic
// stand-ins for SPECint2000), but each figure's takeaway line states the
// paper's expected shape so the two can be compared directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/workloads"
)

func main() {
	fig := flag.String("fig", "", "figure ID to regenerate (default: all paper figures); see -list")
	scale := flag.Int("scale", 0, "workload scale override (0 = per-workload default)")
	sweeps := flag.Bool("sweeps", false, "also run the sensitivity sweeps and ablations")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored Markdown instead of plain tables")
	list := flag.Bool("list", false, "list figure IDs and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.FigureIDs() {
			fmt.Println(id)
		}
		for _, id := range experiments.ExtraIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.FigureIDs()
	if *sweeps {
		ids = append(ids, experiments.ExtraIDs()...)
	}
	if *fig != "" {
		ids = strings.Split(*fig, ",")
	}

	isExtra := map[string]bool{}
	for _, id := range experiments.ExtraIDs() {
		isExtra[id] = true
	}
	var res *experiments.Results
	needShared := false
	for _, id := range ids {
		if !isExtra[strings.TrimSpace(id)] {
			needShared = true
		}
	}
	if needShared {
		fmt.Fprintf(os.Stderr, "running %d benchmarks x %d selectors (scale=%d)...\n",
			len(workloads.SpecNames()), len(experiments.AllSelectors()), *scale)
		var err error
		res, err = experiments.RunAll(context.Background(), *scale, experiments.DefaultParams())
		if err != nil {
			fmt.Fprintln(os.Stderr, "papertables:", err)
			os.Exit(1)
		}
	}
	for i, id := range ids {
		id = strings.TrimSpace(id)
		var f experiments.Figure
		var err error
		if isExtra[id] {
			fmt.Fprintf(os.Stderr, "running %s (scale=%d)...\n", id, *scale)
			f, err = experiments.BuildExtra(id, *scale)
		} else {
			f, err = experiments.Build(id, res)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "papertables:", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		if *markdown {
			fmt.Print(f.Markdown())
		} else {
			fmt.Print(f)
		}
	}
}
