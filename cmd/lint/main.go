// Command lint runs the repo's invariant analyzers (hotpathalloc,
// resetclean, densemap — see docs/LINTING.md) over the module and exits
// non-zero on any diagnostic. scripts/check.sh runs it after tier-1.
//
// Usage:
//
//	go run ./cmd/lint [-json] [patterns...]
//
// Patterns default to ./... and accept ./dir and ./dir/... forms relative
// to the module root. With -json, diagnostics are emitted as a JSON array
// of {file, line, col, check, message} objects for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, module, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, module)
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, Analyzers(module))
	if *jsonOut {
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := []jsonDiag{}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			out = append(out, jsonDiag{File: file, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String(root))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// Analyzers returns the repo's analyzer set, configured for the module's
// hot packages. The one allowlisted file holds the §5 related-work
// baselines (BOA/WRS), comparison selectors outside the pooled sweep loop.
// (RegionCFG was allowlisted until its start index went dense; the
// combination path is now fully //lint:hotpath-enforced.)
func Analyzers(module string) []*lint.Analyzer {
	return []*lint.Analyzer{
		lint.HotPathAlloc(),
		lint.ResetClean(),
		lint.DenseMap(lint.DenseMapConfig{
			Packages: []string{
				module + "/internal/vm",
				module + "/internal/core",
				module + "/internal/profile",
				module + "/internal/metrics",
				module + "/internal/codecache",
				module + "/internal/sweep",
			},
			AllowFiles: []string{"related.go"},
		}),
	}
}
