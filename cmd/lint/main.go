// Command lint runs the repo's invariant analyzers (hotpathalloc,
// resetclean, densemap, crosshot, epochguard, scratchclean — see
// docs/LINTING.md) over the module and exits non-zero on any diagnostic.
// scripts/check.sh runs it after tier-1.
//
// Usage:
//
//	go run ./cmd/lint [-json|-sarif|-gha] [patterns...]
//
// Patterns default to ./... and accept ./dir and ./dir/... forms relative
// to the module root. Output selects one format: plain file:line:col lines
// (default), -json (array of {file, line, col, check, message}), -sarif
// (a SARIF 2.1.0 log for code-scanning uploads), or -gha (GitHub Actions
// ::error workflow commands, which CI logs render as pull-request
// annotations).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	ghaOut := flag.Bool("gha", false, "emit diagnostics as GitHub Actions ::error annotations")
	flag.Parse()
	if *jsonOut && *sarifOut || *jsonOut && *ghaOut || *sarifOut && *ghaOut {
		fmt.Fprintln(os.Stderr, "lint: -json, -sarif, and -gha are mutually exclusive")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, module, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, module)
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	analyzers := Analyzers(module)
	diags := lint.Run(pkgs, analyzers)
	switch {
	case *sarifOut:
		data, err := lint.SARIF(root, analyzers, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Println(string(data))
	case *ghaOut:
		for _, d := range diags {
			fmt.Println(lint.GHALine(root, d))
		}
	case *jsonOut:
		type jsonDiag struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := []jsonDiag{}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil {
				file = filepath.ToSlash(rel)
			}
			out = append(out, jsonDiag{File: file, Line: d.Pos.Line, Col: d.Pos.Column, Check: d.Check, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d.String(root))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut && !*ghaOut {
			fmt.Fprintf(os.Stderr, "lint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// Analyzers returns the repo's analyzer set, configured for the module's
// hot packages.
//
// densemap: the one allowlisted file holds the §5 related-work baselines
// (BOA/WRS), comparison selectors outside the pooled sweep loop. (RegionCFG
// was allowlisted until its start index went dense; the combination path is
// now fully //lint:hotpath-enforced.)
//
// crosshot: internal/difftest holds the frozen reference selectors the
// differential harness compares against — they satisfy core.Selector in the
// type system, so conservative dispatch resolution would otherwise route
// hot interface calls into them, but only tests ever instantiate them. The
// related.go baselines are cold for the same reason.
func Analyzers(module string) []*lint.Analyzer {
	return []*lint.Analyzer{
		lint.HotPathAlloc(),
		lint.ResetClean(),
		lint.CrossHot(lint.CrossHotConfig{
			ColdPackages: []string{
				module + "/internal/difftest",
				// Examples implement core.Selector to demonstrate the API;
				// conservative dispatch resolution would otherwise route hot
				// interface calls into them, but nothing outside their own
				// main functions ever runs them.
				module + "/examples/...",
			},
			ColdFiles: []string{"related.go"},
		}),
		lint.EpochGuard(),
		lint.ScratchClean(),
		lint.DenseMap(lint.DenseMapConfig{
			Packages: []string{
				module + "/internal/vm",
				module + "/internal/core",
				module + "/internal/profile",
				module + "/internal/metrics",
				module + "/internal/codecache",
				module + "/internal/sweep",
			},
			AllowFiles: []string{"related.go"},
		}),
	}
}
