package main

import (
	"testing"

	"repro/internal/lint"
)

// TestRepoLintClean runs the full analyzer suite over the module and fails
// on any diagnostic, so a hot-path allocation, incomplete Reset, or sparse
// map regression breaks plain `go test ./...` — not just scripts/check.sh.
func TestRepoLintClean(t *testing.T) {
	root, module, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.NewLoader(root, module).Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range lint.Run(pkgs, Analyzers(module)) {
		t.Errorf("%s", d.String(root))
	}
}
