// Command tracerec records, inspects, and verifies branch-event stream
// files (internal/tracestream) — the trace corpora that cmd/sweep and
// sweepd accept as `trace:<path>` workloads:
//
//	tracerec -workload gzip -scale 40 -out gzip.trace   # record a run
//	tracerec -info gzip.trace                           # print the header
//	tracerec -verify gzip.trace                         # full decode + program digest check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "registered workload to record (see regionsim -list)")
	scale := flag.Int("scale", 0, "workload scale (0 = default)")
	out := flag.String("out", "", "stream file to write")
	info := flag.String("info", "", "print the header of this stream file and exit")
	verify := flag.String("verify", "", "fully decode this stream file, rebuild its program, and check the digest")
	flag.Parse()

	switch {
	case *info != "":
		h, err := readHeader(*info)
		if err != nil {
			fail(err)
		}
		printHeader(h)
	case *verify != "":
		c, err := tracestream.NewCache(1).Load(*verify)
		if err != nil {
			fail(err)
		}
		printHeader(c.Header())
		fmt.Printf("verified: %d events decode cleanly, program digest matches (file digest %#016x)\n",
			len(c.Stream.Events), c.FileDigest)
	case *workload != "":
		if *out == "" {
			fail(fmt.Errorf("-workload needs -out FILE"))
		}
		w, ok := workloads.Get(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		prog := w.Build(*scale)
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		h, err := tracestream.Record(prog, *workload, *scale, vm.Config{}, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("recorded %s to %s: %d instructions, %d events (%d taken)\n",
			*workload, *out, h.Instrs, h.Events, h.Branches)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// readHeader decodes only the stream header, without pulling the payload.
func readHeader(path string) (tracestream.Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return tracestream.Header{}, err
	}
	defer f.Close()
	rd, err := tracestream.NewReader(f)
	if err != nil {
		return tracestream.Header{}, err
	}
	return rd.Header(), nil
}

func printHeader(h tracestream.Header) {
	fmt.Printf("workload:  %s (scale %d)\n", h.Workload, h.Scale)
	fmt.Printf("program:   %d instructions, digest %#016x\n", h.ProgramLen, h.ProgramDigest)
	fmt.Printf("run:       %d instructions, %d events (%d taken), final PC %d\n",
		h.Instrs, h.Events, h.Branches, h.FinalPC)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracerec:", err)
	os.Exit(1)
}
