// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, each re-running the relevant simulations and reporting the
// figure's headline statistic as a custom metric (the printed rows come
// from cmd/papertables; these benches make every figure's regeneration a
// first-class, timed target), plus component throughput benchmarks for the
// simulator substrate.
//
//	go test -bench=Fig -benchmem        # all figure benches
//	go test -bench=BenchmarkVM          # interpreter throughput
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/sweepnet"
	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// benchScale keeps figure benchmarks snappy while exercising selection.
const benchScale = 120

var benchSuite = sync.OnceValues(func() (*experiments.Results, error) {
	return experiments.RunAll(context.Background(), benchScale, core.DefaultParams())
})

// figureBench reruns the full benchmark matrix per iteration and reports
// the figure's summary statistics.
func figureBench(b *testing.B, id string, report func(*experiments.Results, *testing.B)) {
	b.Helper()
	// Prime once so the first iteration's cost matches the rest.
	if _, err := benchSuite(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAll(context.Background(), benchScale, core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			report(res, b)
		}
	}
}

func metric(res *experiments.Results) func(sel, bench string) map[string]float64 {
	return func(sel, bench string) map[string]float64 {
		r := res.Get(bench, sel)
		return map[string]float64{
			"spanned":     r.SpannedRatio,
			"executed":    r.ExecutedRatio,
			"expansion":   float64(r.CodeExpansion),
			"transitions": float64(r.Transitions),
			"cover90":     float64(r.CoverSet90),
			"counters":    float64(r.CountersHighWater),
			"dompct":      r.ExitDominatedRatio,
			"duppct":      r.ExitDomDupInstrsRatio,
			"stubs":       float64(r.Stubs),
			"obspct":      r.ObservedPctOfCache,
			"hit":         r.HitRate,
		}
	}
}

func avgDelta(res *experiments.Results, a, sel2, key string) float64 {
	m := metric(res)
	var xs []float64
	for _, bench := range workloads.SpecNames() {
		xs = append(xs, m(a, bench)[key]-m(sel2, bench)[key])
	}
	return stats.Mean(xs)
}

func avgRatio(res *experiments.Results, num, den, key string) float64 {
	m := metric(res)
	var xs []float64
	for _, bench := range workloads.SpecNames() {
		xs = append(xs, stats.Ratio(m(num, bench)[key], m(den, bench)[key]))
	}
	return stats.Mean(xs)
}

func avgOf(res *experiments.Results, sel, key string) float64 {
	m := metric(res)
	var xs []float64
	for _, bench := range workloads.SpecNames() {
		xs = append(xs, m(sel, bench)[key])
	}
	return stats.Mean(xs)
}

// BenchmarkFig07 regenerates Figure 7: LEI's increase over NET in spanned
// and executed cycle ratios (percentage points, averaged).
func BenchmarkFig07SpannedCycles(b *testing.B) {
	figureBench(b, "fig7", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(100*avgDelta(res, experiments.LEI, experiments.NET, "spanned"), "spanned+pp")
		b.ReportMetric(100*avgDelta(res, experiments.LEI, experiments.NET, "executed"), "executed+pp")
	})
}

// BenchmarkFig08 regenerates Figure 8: LEI relative to NET in code
// expansion and region transitions (paper: 0.92 and 0.80).
func BenchmarkFig08ExpansionTransitions(b *testing.B) {
	figureBench(b, "fig8", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgRatio(res, experiments.LEI, experiments.NET, "expansion"), "expansion-rel")
		b.ReportMetric(avgRatio(res, experiments.LEI, experiments.NET, "transitions"), "transitions-rel")
	})
}

// BenchmarkFig09 regenerates Figure 9: 90% cover set sizes (paper: LEI 18%
// smaller on average).
func BenchmarkFig09CoverSet(b *testing.B) {
	figureBench(b, "fig9", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgOf(res, experiments.NET, "cover90"), "net-cover90")
		b.ReportMetric(avgOf(res, experiments.LEI, "cover90"), "lei-cover90")
		b.ReportMetric(avgRatio(res, experiments.LEI, experiments.NET, "cover90"), "rel")
	})
}

// BenchmarkFig10 regenerates Figure 10: counter memory (paper: LEI needs
// about two-thirds of NET's).
func BenchmarkFig10Counters(b *testing.B) {
	figureBench(b, "fig10", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgRatio(res, experiments.LEI, experiments.NET, "counters"), "counters-rel")
	})
}

// BenchmarkFig11 regenerates Figure 11: exit-dominated duplication as a
// share of selected instructions (paper: 1-7%).
func BenchmarkFig11ExitDomDuplication(b *testing.B) {
	figureBench(b, "fig11", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(100*avgOf(res, experiments.NET, "duppct"), "net-dup%")
		b.ReportMetric(100*avgOf(res, experiments.LEI, "duppct"), "lei-dup%")
	})
}

// BenchmarkFig12 regenerates Figure 12: the share of traces that are
// exit-dominated (paper: ~15% NET, ~22% LEI).
func BenchmarkFig12ExitDominated(b *testing.B) {
	figureBench(b, "fig12", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(100*avgOf(res, experiments.NET, "dompct"), "net-dom%")
		b.ReportMetric(100*avgOf(res, experiments.LEI, "dompct"), "lei-dom%")
	})
}

// BenchmarkFig16 regenerates Figure 16: transitions under combination
// (paper: 85% for NET, 64% for LEI).
func BenchmarkFig16CombTransitions(b *testing.B) {
	figureBench(b, "fig16", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgRatio(res, experiments.NETComb, experiments.NET, "transitions"), "cnet-rel")
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.LEI, "transitions"), "clei-rel")
	})
}

// BenchmarkFig17 regenerates Figure 17: cover sets under combination
// (paper: -15% NET, -28% LEI).
func BenchmarkFig17CombCoverSet(b *testing.B) {
	figureBench(b, "fig17", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgRatio(res, experiments.NETComb, experiments.NET, "cover90"), "cnet-rel")
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.LEI, "cover90"), "clei-rel")
	})
}

// BenchmarkFig18 regenerates Figure 18: observed-trace storage relative to
// the estimated cache size (paper: ~6% cNET, ~13% cLEI; inflated here by
// tiny synthetic caches — the cLEI > cNET ordering is the preserved shape).
func BenchmarkFig18ObservedMemory(b *testing.B) {
	figureBench(b, "fig18", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(100*avgOf(res, experiments.NETComb, "obspct"), "cnet-obs%")
		b.ReportMetric(100*avgOf(res, experiments.LEIComb, "obspct"), "clei-obs%")
	})
}

// BenchmarkFig19 regenerates Figure 19: exit stubs under combination
// (paper: -18% NET, -26% LEI).
func BenchmarkFig19CombStubs(b *testing.B) {
	figureBench(b, "fig19", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgRatio(res, experiments.NETComb, experiments.NET, "stubs"), "cnet-rel")
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.LEI, "stubs"), "clei-rel")
	})
}

// BenchmarkSummary regenerates the §6 composite: combined LEI vs NET
// (paper: -9% expansion, -32% stubs, ~half the transitions, -44% cover).
func BenchmarkSummary(b *testing.B) {
	figureBench(b, "summary", func(res *experiments.Results, b *testing.B) {
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.NET, "expansion"), "expansion-rel")
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.NET, "stubs"), "stubs-rel")
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.NET, "transitions"), "transitions-rel")
		b.ReportMetric(avgRatio(res, experiments.LEIComb, experiments.NET, "cover90"), "cover90-rel")
	})
}

// --- Component throughput benchmarks ---

// BenchmarkPipeline is the headline end-to-end benchmark: the full
// experiment matrix (every SPEC-named workload under every selector) per
// iteration, reporting normalized throughput (ns per simulated instruction)
// and allocation pressure (heap bytes per simulated instruction). The
// numbers in docs/PERFORMANCE.md and BENCH_pipeline.json come from this
// benchmark via scripts/bench.sh.
func BenchmarkPipeline(b *testing.B) {
	var ms0, ms1 runtime.MemStats
	var instrs uint64
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAll(context.Background(), benchScale, core.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		instrs = 0
		for _, per := range res.Reports {
			for _, rep := range per {
				instrs += rep.TotalInstrs
			}
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs*uint64(b.N)), "ns/instr")
	b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(instrs*uint64(b.N)), "B/instr")
}

// BenchmarkSweep measures the sharded sweep engine over the paper's full
// 12×4 grid at increasing shard counts. With per-shard pooled scratch and
// work stealing the jobs/s metric should scale near-linearly until the
// grid's longest-running cells dominate.
func BenchmarkSweep(b *testing.B) {
	grid := sweep.Grid{
		Workloads: workloads.SpecNames(),
		Scale:     benchScale,
		Selectors: sweep.PaperSelectors(),
	}
	jobs := grid.Jobs()
	shardCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, shards := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sink sweep.CountingSink
				if err := sweep.Run(context.Background(), jobs, sweep.Options{Shards: shards}, &sink); err != nil {
					b.Fatal(err)
				}
				if sink.N != len(jobs) {
					b.Fatalf("delivered %d of %d jobs", sink.N, len(jobs))
				}
			}
			b.ReportMetric(float64(len(jobs)*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkSweepRemote measures the distributed sweep path end to end: the
// paper's full 12×4 grid through the wire codec, two in-process loopback
// sweepd workers, and the coordinator's ordered merge. Compared with
// BenchmarkSweep the delta is the protocol's whole overhead — framing,
// varint codec, TCP loopback, reorder admission — which stays small because
// results travel in batched binary frames and jobs are rebuilt from indices
// rather than shipped.
func BenchmarkSweepRemote(b *testing.B) {
	grid := sweep.Grid{
		Workloads: workloads.SpecNames(),
		Scale:     benchScale,
		Selectors: sweep.PaperSelectors(),
	}
	njobs := grid.NumJobs()
	const workers = 2
	addrs := make([]string, workers)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		wg.Add(1)
		go func(ln net.Listener) {
			defer wg.Done()
			sweepnet.Serve(ctx, ln, sweepnet.ServerOptions{})
		}(ln)
	}
	defer wg.Wait()
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink sweep.CountingSink
		if err := sweepnet.RunGrid(context.Background(), addrs, grid, sweepnet.Options{}, &sink); err != nil {
			b.Fatal(err)
		}
		if sink.N != njobs {
			b.Fatalf("delivered %d of %d jobs", sink.N, njobs)
		}
	}
	b.ReportMetric(float64(njobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkPipelineLarge measures end-to-end simulation throughput on the
// large synthetic stress program (hundreds of thousands of dynamic
// instructions over a static footprint that exercises the dense
// per-address tables) under all four paper selectors on one pooled shard.
// Its ns/instr should stay within 2× of BenchmarkPipeline's micro-suite
// figure.
func BenchmarkPipelineLarge(b *testing.B) {
	const largeScale = 400_000
	prog := workloads.MustGet("synthetic").Build(largeScale)
	shard := sweep.NewShard()
	var ms0, ms1 runtime.MemStats
	var instrs uint64
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instrs = 0
		for _, sel := range sweep.PaperSelectors() {
			rep, err := shard.Run(prog, sweep.Job{
				Workload: "synthetic",
				Scale:    largeScale,
				Selector: sel,
				Params:   core.DefaultParams(),
			})
			if err != nil {
				b.Fatal(err)
			}
			instrs += rep.TotalInstrs
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs*uint64(b.N)), "ns/instr")
	b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(instrs*uint64(b.N)), "B/instr")
}

// BenchmarkVMInterpret measures raw interpreter throughput.
func BenchmarkVMInterpret(b *testing.B) {
	prog := workloads.MustGet("gcc").Build(100)
	m := vm.New(prog, vm.Config{})
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Reset()
		st, err := m.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		instrs += st.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSimulator measures full-system simulation throughput (VM plus
// selector plus metrics) per selector.
func BenchmarkSimulator(b *testing.B) {
	for _, sel := range experiments.AllSelectors() {
		b.Run(sel, func(b *testing.B) {
			prog := workloads.MustGet("gcc").Build(100)
			var instrs uint64
			for i := 0; i < b.N; i++ {
				s, err := experiments.NewSelector(sel, core.DefaultParams())
				if err != nil {
					b.Fatal(err)
				}
				res, err := dynopt.Run(prog, dynopt.Config{Selector: s})
				if err != nil {
					b.Fatal(err)
				}
				instrs += res.VMStats.Instrs
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
		})
	}
}

// BenchmarkHistoryBuffer measures the LEI history buffer's per-branch cost
// (the paper argues LEI's overhead is comparable to NET's: one buffer
// insert plus one hash lookup per taken branch).
func BenchmarkHistoryBuffer(b *testing.B) {
	buf := profile.NewHistoryBuffer(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := isa.Addr(i % 997)
		tgt := isa.Addr((i * 31) % 997)
		seq := buf.Insert(src, tgt, profile.KindInterp)
		if _, ok := buf.Lookup(tgt); !ok {
			buf.SetHash(tgt, seq)
		} else {
			buf.SetHash(tgt, seq)
		}
	}
}

// BenchmarkLEITraceFormation measures FORM-TRACE cost on a realistic
// cyclic path.
func BenchmarkLEITraceFormation(b *testing.B) {
	prog := workloads.MustGet("mcf").Build(10)
	// Record one loop iteration's branches into a buffer by running the
	// program and keeping the last cycle at the hot header.
	type ev struct{ src, tgt isa.Addr }
	var events []ev
	if _, err := vm.Run(prog, vm.Config{}, vm.SinkFunc(func(src, tgt isa.Addr, k vm.BranchKind) {
		if len(events) < 4096 {
			events = append(events, ev{src, tgt})
		}
	})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := profile.NewHistoryBuffer(500)
		cache := dynopt.NewSimulator(prog, dynopt.Config{Selector: core.NewNET(core.DefaultParams())}).Cache()
		var formed int
		for _, e := range events {
			seq := buf.Insert(e.src, e.tgt, profile.KindInterp)
			if old, ok := buf.Lookup(e.tgt); ok && e.tgt <= e.src {
				if _, ok2 := core.FormLEITrace(prog, cache, buf, e.tgt, old, core.DefaultParams()); ok2 {
					formed++
				}
				buf.TruncateAfter(old)
			}
			buf.SetHash(e.tgt, seq)
		}
		if formed == 0 {
			b.Fatal("no traces formed")
		}
	}
}

// BenchmarkLEI measures the end-to-end LEI selection path on a pooled
// scratch — the configuration the experiment harness runs — reporting
// normalized throughput and allocation pressure. With dense pre-sized
// tables the steady-state B/instr should be driven by per-run cache and
// report construction only.
func BenchmarkLEI(b *testing.B) {
	prog := workloads.MustGet("gcc").Build(100)
	scratch := &dynopt.Scratch{}
	var ms0, ms1 runtime.MemStats
	var instrs uint64
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dynopt.Run(prog, dynopt.Config{
			Selector: core.NewLEI(core.DefaultParams()),
			Scratch:  scratch,
		})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.VMStats.Instrs
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
	b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(instrs), "B/instr")
}

// BenchmarkAdaptive measures the adaptive meta-selector end to end on the
// phased workload it was built for: detector accounting on every
// interpreted transfer and cache exit, plus the policy switches (with
// partition flushes) the phase regimes force. The delta against
// BenchmarkLEI bounds what phase detection costs on top of a static
// selector — pure integer accounting, zero steady-state allocation
// (pinned by TestAdaptiveSteadyStateAllocFree).
func BenchmarkAdaptive(b *testing.B) {
	prog := workloads.MustGet("phased").Build(60_000)
	scratch := &dynopt.Scratch{}
	var ms0, ms1 runtime.MemStats
	var instrs uint64
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dynopt.Run(prog, dynopt.Config{
			Selector: core.NewAdaptive(core.DefaultParams()),
			Scratch:  scratch,
		})
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.VMStats.Instrs
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
	b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(instrs), "B/instr")
}

// BenchmarkAnalyze measures the pooled metrics.Analyzer over a finished
// LEI run; after the first iteration warms the scratch tables, each call
// must be allocation-free (pinned by TestPooledAnalyzeAllocFree).
func BenchmarkAnalyze(b *testing.B) {
	prog := workloads.MustGet("gcc").Build(100)
	sel := core.NewLEI(core.DefaultParams())
	res, err := dynopt.Run(prog, dynopt.Config{Selector: sel})
	if err != nil {
		b.Fatal(err)
	}
	st := sel.Stats()
	var a metrics.Analyzer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Analyze(res.Cache, res.Collector, st)
	}
}

// BenchmarkWorkloadBuild measures program construction cost.
func BenchmarkWorkloadBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = workloads.MustGet("gcc").Build(10)
	}
}

// BenchmarkExtraFigures regenerates each extension study (sensitivity
// sweeps, ablations, random corpus, bounded cache, optimizer, related
// work, persistent cache, loop coverage) at a reduced scale.
func BenchmarkExtraFigures(b *testing.B) {
	for _, id := range experiments.ExtraIDs() {
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.BuildExtra(id, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCombine measures the end-to-end trace-combination path — compact
// observed-trace recording (Figure 14), region-CFG construction, and
// multipath promotion (Figure 13) — for both combining selectors on a pooled
// shard, the configuration the sweep engine runs. The micro sub-benchmarks
// run the full SPEC-named suite; the synthetic ones run the large seeded
// stress program. Normalized throughput and allocation pressure are recorded
// in BENCH_pipeline.json via scripts/bench.sh.
func BenchmarkCombine(b *testing.B) {
	const synthScale = 200_000
	type combineJob struct {
		prog *program.Program
		job  sweep.Job
	}
	suites := []struct {
		name string
		jobs []combineJob
	}{
		{name: "micro"},
		{name: "synthetic"},
	}
	for _, w := range workloads.SpecNames() {
		suites[0].jobs = append(suites[0].jobs, combineJob{
			prog: workloads.MustGet(w).Build(benchScale),
			job:  sweep.Job{Workload: w, Scale: benchScale},
		})
	}
	suites[1].jobs = append(suites[1].jobs, combineJob{
		prog: workloads.MustGet("synthetic").Build(synthScale),
		job:  sweep.Job{Workload: "synthetic", Scale: synthScale},
	})
	for _, sel := range []string{sweep.NETComb, sweep.LEIComb} {
		for _, suite := range suites {
			b.Run(sel+"/"+suite.name, func(b *testing.B) {
				shard := sweep.NewShard()
				var ms0, ms1 runtime.MemStats
				var instrs uint64
				runtime.ReadMemStats(&ms0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					instrs = 0
					for _, cj := range suite.jobs {
						job := cj.job
						job.Selector = sel
						job.Params = core.DefaultParams()
						rep, err := shard.Run(cj.prog, job)
						if err != nil {
							b.Fatal(err)
						}
						instrs += rep.TotalInstrs
					}
				}
				b.StopTimer()
				runtime.ReadMemStats(&ms1)
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs*uint64(b.N)), "ns/instr")
				b.ReportMetric(float64(ms1.TotalAlloc-ms0.TotalAlloc)/float64(instrs*uint64(b.N)), "B/instr")
			})
		}
	}
}

// BenchmarkSweepMemo measures the record-once/replay-many memo layer end to
// end on the grid shape it exists for — a threshold-search axis like
// ROADMAP direction 1's closed-loop optimizer sweeps: many parameter
// points over few cells, so every (workload, scale) recording is shared by
// selectors × points jobs. memo=off interprets all of them live; memo=on
// pays one recorded live run per cell (a fresh Runner per iteration keeps
// that cost in the measurement) and replays the rest from the in-memory
// corpus. The jobs/s ratio between the two sub-benchmarks is the
// memoization speedup claimed in docs/PERFORMANCE.md — it grows with
// jobs-per-cell and with the live/replay cost ratio of the workload
// (interpretation-heavy cells like bzip2 and mcf replay ~4× cheaper;
// selector-bound cells save less, since replay still runs the full
// selector). Both numbers land in BENCH_pipeline.json via scripts/bench.sh
// and regress through scripts/benchgate.
func BenchmarkSweepMemo(b *testing.B) {
	var cfgs []sweep.Config
	for _, th := range []int{4, 6, 8, 12, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112, 128, 160} {
		p := core.DefaultParams()
		p.NETThreshold = th
		p.LEIThreshold = th
		cfgs = append(cfgs, sweep.Config{Params: p})
	}
	grid := sweep.Grid{
		Workloads: []string{"bzip2", "mcf"},
		Scale:     benchScale,
		Selectors: []string{sweep.NET, sweep.LEI},
		Configs:   cfgs,
	}
	njobs := grid.NumJobs()
	for _, mode := range []struct {
		name string
		m    sweep.MemoMode
	}{{"off", sweep.MemoOff}, {"on", sweep.MemoOn}} {
		b.Run("memo="+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var sink sweep.CountingSink
				r := sweep.NewRunner()
				if err := r.RunGrid(context.Background(), grid, sweep.Options{Shards: 1, Memo: mode.m}, &sink); err != nil {
					b.Fatal(err)
				}
				if sink.N != njobs {
					b.Fatalf("delivered %d of %d jobs", sink.N, njobs)
				}
			}
			b.ReportMetric(float64(njobs*b.N)/b.Elapsed().Seconds(), "jobs/s")
		})
	}
}

// BenchmarkReplay quantifies the record/replay decoupling
// (internal/tracestream) in the configuration the sweep engine runs — one
// pooled shard (scratch + Resettable selector) per job loop. "live" is the
// baseline full simulation (VM interpretation + LEI selection), "decode" is
// the raw stream-decode cost, and "replay" drives the same selection from
// the pre-decoded recording — dispatch, arithmetic, and memory simulation
// vanish, so its per-instruction cost must sit several× below live's. Live
// and replay also report ns/event over the recording's block-event count
// for direct comparison; the numbers land in BENCH_pipeline.json via
// scripts/bench.sh and regress through scripts/benchgate.
func BenchmarkReplay(b *testing.B) {
	const name = "bzip2"
	prog := workloads.MustGet(name).Build(benchScale)
	var buf bytes.Buffer
	h, err := tracestream.Record(prog, name, benchScale, vm.Config{}, &buf)
	if err != nil {
		b.Fatal(err)
	}
	recorded := buf.Bytes()
	job := sweep.Job{Workload: name, Scale: benchScale, Selector: sweep.LEI, Params: core.DefaultParams()}
	normalized := func(b *testing.B, instrs uint64) {
		b.Helper()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(h.Events*uint64(b.N)), "ns/event")
	}
	b.Run("live", func(b *testing.B) {
		shard := sweep.NewShard()
		if _, err := shard.Run(prog, job); err != nil { // warm the pools
			b.Fatal(err)
		}
		var instrs uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := shard.Run(prog, job)
			if err != nil {
				b.Fatal(err)
			}
			instrs += rep.TotalInstrs
		}
		normalized(b, instrs)
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(recorded)))
		for i := 0; i < b.N; i++ {
			if _, err := tracestream.DecodeBytes(recorded); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(h.Events*uint64(b.N)), "ns/event")
	})
	b.Run("replay", func(b *testing.B) {
		s, err := tracestream.DecodeBytes(recorded)
		if err != nil {
			b.Fatal(err)
		}
		corpus := &tracestream.Corpus{Stream: s, Prog: prog}
		shard := sweep.NewShard()
		if _, err := shard.Replay(corpus, job); err != nil { // warm the pools
			b.Fatal(err)
		}
		var instrs uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := shard.Replay(corpus, job)
			if err != nil {
				b.Fatal(err)
			}
			instrs += rep.TotalInstrs
		}
		normalized(b, instrs)
	})
}

// BenchmarkCompactEncoding measures the Figure 14 encoder/decoder.
func BenchmarkCompactEncoding(b *testing.B) {
	prog := workloads.MustGet("gcc").Build(10)
	sel := core.NewCombiner(core.BaseLEI, core.DefaultParams())
	res, err := dynopt.Run(prog, dynopt.Config{Selector: sel})
	if err != nil {
		b.Fatal(err)
	}
	_ = res
	b.ReportMetric(float64(sel.Stats().ObservedTraces), "traces-observed")
	// The encode/decode cost is inside the run; this bench times a full
	// combined-LEI run dominated by observation work.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.NewCombiner(core.BaseLEI, core.DefaultParams())
		if _, err := dynopt.Run(prog, dynopt.Config{Selector: s}); err != nil {
			b.Fatal(err)
		}
	}
}
