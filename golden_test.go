package repro_test

import (
	"testing"

	"repro/internal/experiments"
)

// TestGoldenNumbers pins exact values for a few benchmark/selector pairs at
// the default scales. Every part of the stack is deterministic — workload
// PRNGs run inside the simulated programs, selection is replayable — so
// any change to these numbers means an intentional algorithm or workload
// change (update the table and EXPERIMENTS.md together) or a regression.
func TestGoldenNumbers(t *testing.T) {
	type golden struct {
		bench, sel    string
		regions       int
		expansion     int
		stubs         int
		cover90       int
		spannedCycles int
	}
	// Values recorded from the suite at the time EXPERIMENTS.md was
	// written.
	want := []golden{
		{"gzip", experiments.NET, 4, 51, 7, 3, 1},
		{"gzip", experiments.LEI, 2, 51, 7, 1, 0},
		{"mcf", experiments.NET, 6, 56, 11, 2, 1},
		{"mcf", experiments.LEI, 5, 62, 9, 1, 2},
		{"eon", experiments.NET, 13, 78, 21, 11, 0},
		{"eon", experiments.LEIComb, 7, 83, 14, 6, 1},
	}
	res := results(t)
	for _, g := range want {
		rep := res.Get(g.bench, g.sel)
		got := golden{
			bench: g.bench, sel: g.sel,
			regions:       rep.Regions,
			expansion:     rep.CodeExpansion,
			stubs:         rep.Stubs,
			cover90:       rep.CoverSet90,
			spannedCycles: rep.SpannedCycles,
		}
		if got != g {
			t.Errorf("golden drift:\n got %+v\nwant %+v", got, g)
		}
	}
}

// TestSuiteFullyDeterministic re-runs two benchmarks end to end and
// compares entire reports against the shared suite results.
func TestSuiteFullyDeterministic(t *testing.T) {
	res := results(t)
	for _, b := range []string{"gcc", "twolf"} {
		for _, sel := range experiments.AllSelectors() {
			rep, err := experiments.RunOne(b, sel, 0, experiments.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			if rep != res.Get(b, sel) {
				t.Errorf("%s/%s: non-deterministic report", b, sel)
			}
		}
	}
}
