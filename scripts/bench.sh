#!/bin/sh
# Runs the headline benchmarks and records the results in
# BENCH_pipeline.json at the repository root.
#
#   scripts/bench.sh [count] [bench-regex]
#
# count is the -count passed to `go test` (default 5). bench-regex
# optionally restricts which benchmarks run (default: the ten recorded
# ones). Ten benchmarks are recorded: BenchmarkPipeline (the full
# experiment matrix), BenchmarkPipelineLarge (the synthetic large-program
# stress run), BenchmarkSweep (the sharded sweep engine at each shard
# count), BenchmarkSweepRemote (the same grid through the wire protocol
# and two loopback sweepd workers — the delta against BenchmarkSweep is
# the distribution overhead), BenchmarkSweepMemo (record-once/replay-many
# trace memoization on a 16-point threshold axis, memo=off vs memo=on —
# the jobs/s ratio is the memoization speedup), BenchmarkLEI (the
# pooled-scratch LEI selection path), BenchmarkAdaptive (the adaptive
# meta-selector on the phased workload — detector accounting plus policy
# switches), BenchmarkCombine (the trace-combination selectors over
# the micro and synthetic workloads), BenchmarkAnalyze (the pooled
# metrics analyzer), and BenchmarkReplay (trace record/replay: live VM
# ns/instr vs stream-decode ns/event vs corpus-replay ns/instr — the
# live/replay gap is the interpreter cost replay saves). The JSON holds one object
# per run with each benchmark's normalized metrics (ns and heap bytes per
# simulated instruction, jobs/s for the sweep engine, where reported) plus
# the standard ns/op, B/op, and allocs/op columns, so regressions are
# diffable in review. Results are merged into the existing file by
# scripts/benchmerge: only the benchmarks that ran are replaced, so partial
# re-runs never clobber the other recorded numbers.
set -eu

cd "$(dirname "$0")/.."
count="${1:-5}"
benchre="${2:-^(BenchmarkPipeline|BenchmarkPipelineLarge|BenchmarkSweep|BenchmarkSweepRemote|BenchmarkSweepMemo|BenchmarkLEI|BenchmarkAdaptive|BenchmarkCombine|BenchmarkAnalyze|BenchmarkReplay)$}"
out="BENCH_pipeline.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench "$benchre" -benchmem -count="$count" -run '^$' . | tee "$raw"

go run ./scripts/benchmerge -out "$out" < "$raw"
echo "wrote $out"
