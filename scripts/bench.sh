#!/bin/sh
# Runs the headline benchmarks and records the results as
# BENCH_pipeline.json at the repository root.
#
#   scripts/bench.sh [count]
#
# count is the -count passed to `go test` (default 5). Three benchmarks are
# recorded: BenchmarkPipeline (the full experiment matrix), BenchmarkLEI
# (the pooled-scratch LEI selection path), and BenchmarkAnalyze (the pooled
# metrics analyzer). The JSON holds one object per run with each
# benchmark's normalized metrics (ns per simulated instruction, heap bytes
# per simulated instruction, where reported) plus the standard ns/op,
# B/op, and allocs/op columns, so regressions are diffable in review.
set -eu

cd "$(dirname "$0")/.."
count="${1:-5}"
out="BENCH_pipeline.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench '^(BenchmarkPipeline|BenchmarkLEI|BenchmarkAnalyze)$' \
    -benchmem -count="$count" -run '^$' . | tee "$raw"

awk '
$1 ~ /^Benchmark(Pipeline|LEI|Analyze)(-[0-9]+)?$/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns_instr = b_instr = ns_op = b_op = allocs_op = "null"
    iters = $2
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/instr") ns_instr = $i
        if ($(i + 1) == "B/instr") b_instr = $i
        if ($(i + 1) == "ns/op") ns_op = $i
        if ($(i + 1) == "B/op") b_op = $i
        if ($(i + 1) == "allocs/op") allocs_op = $i
    }
    if (!(name in seen)) { order[++nb] = name; seen[name] = 1 }
    counts[name]++
    runs[name, counts[name]] = sprintf("{\"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"ns_per_instr\": %s, \"bytes_per_instr\": %s}",
        iters, ns_op, b_op, allocs_op, ns_instr, b_instr)
}
END {
    if (nb == 0) { print "bench.sh: no benchmark lines found" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmarks\": {\n"
    for (bi = 1; bi <= nb; bi++) {
        name = order[bi]
        printf "    \"%s\": {\n      \"runs\": [\n", name
        for (i = 1; i <= counts[name]; i++)
            printf "        %s%s\n", runs[name, i], (i < counts[name] ? "," : "")
        printf "      ]\n    }%s\n", (bi < nb ? "," : "")
    }
    printf "  }\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
