#!/bin/sh
# Runs the headline pipeline benchmark and records the result as
# BENCH_pipeline.json at the repository root.
#
#   scripts/bench.sh [count]
#
# count is the -count passed to `go test` (default 5). The JSON holds one
# object per run with the benchmark's normalized metrics (ns per simulated
# instruction, heap bytes per simulated instruction) plus the standard
# ns/op, B/op, and allocs/op columns, so regressions are diffable in review.
set -eu

cd "$(dirname "$0")/.."
count="${1:-5}"
out="BENCH_pipeline.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench '^BenchmarkPipeline$' -benchmem -count="$count" -run '^$' . | tee "$raw"

awk '
/^BenchmarkPipeline/ {
    ns_instr = b_instr = ns_op = b_op = allocs_op = "null"
    iters = $2
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/instr") ns_instr = $i
        if ($(i + 1) == "B/instr") b_instr = $i
        if ($(i + 1) == "ns/op") ns_op = $i
        if ($(i + 1) == "B/op") b_op = $i
        if ($(i + 1) == "allocs/op") allocs_op = $i
    }
    runs[++n] = sprintf("{\"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"ns_per_instr\": %s, \"bytes_per_instr\": %s}",
        iters, ns_op, b_op, allocs_op, ns_instr, b_instr)
}
END {
    if (n == 0) { print "bench.sh: no BenchmarkPipeline lines found" > "/dev/stderr"; exit 1 }
    printf "{\n  \"benchmark\": \"BenchmarkPipeline\",\n  \"runs\": [\n"
    for (i = 1; i <= n; i++) printf "    %s%s\n", runs[i], (i < n ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
