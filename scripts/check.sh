#!/bin/sh
# Full verification gate: tier-1 checks, the repo-invariant lint suite
# (cmd/lint — per-package and whole-module call-graph analyzers; see
# docs/LINTING.md), the race detector over the
# concurrent sweep engine (including the zero-alloc shard guard, whose
# cases cover net+comb/lei+comb), the distributed sweep service, the
# harness that drives it (which exercises the adaptive meta-selector end
# to end via the Pareto-front pin), and the core selector package
# (compact-trace round-trip, arena, and adaptive detector tests), a
# sweep smoke run through the cmd/sweep CLI covering the adaptive
# selector next to the statics and a trace:<path> corpus recorded by
# cmd/tracerec, a distributed smoke run (two loopback sweepd workers,
# jsonl output diffed against the local run — docs/SWEEPD.md — so
# remote adaptive and trace-replay runs must be byte-identical; worker
# logs are dumped when the diff fails; the local run is additionally
# diffed memo-on vs -memo=off, and workers memoize by default, so the
# smoke pins the record-once/replay-many layer locally and end to end),
# a bench-regression gate
# comparing fresh BenchmarkPipeline/BenchmarkLEI/BenchmarkAdaptive/
# BenchmarkCombine/BenchmarkSweep/BenchmarkSweepMemo/BenchmarkReplay
# numbers against
# BENCH_pipeline.json, the differential selector-equivalence suite run
# twice (catching order- or state-dependent divergence between the
# dense production selectors and their frozen map-based references, the
# pooled Combiner and the adaptive meta-selector included), and a short
# fuzz pass over the selector, wire-codec, trace-stream, and lint
# directive-grammar fuzz targets.
#
#   scripts/check.sh [fuzztime]
#
# fuzztime is the -fuzztime for each fuzz target (default 10s; set 0 to
# skip fuzzing). Environment knobs for the bench gate: BENCH_GATE=0
# skips it (benchmarks need a quiet machine); BENCH_TOL overrides the
# allowed fractional regression (default 0.25).
set -eu

cd "$(dirname "$0")/.."
fuzztime="${1:-10s}"

echo "== tier-1: build, vet, test =="
go build ./...
go vet ./...
go test ./...

echo "== lint: hotpathalloc, resetclean, densemap, crosshot, epochguard, scratchclean (docs/LINTING.md) =="
go run ./cmd/lint ./...

echo "== race detector: sweep engine + sweepnet + experiment harness + core round-trip =="
go test -race ./internal/sweep/ ./internal/sweepnet/ ./internal/experiments/ ./internal/core/

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"; [ -n "${w1pid:-}" ] && kill "$w1pid" 2>/dev/null; [ -n "${w2pid:-}" ] && kill "$w2pid" 2>/dev/null; wait 2>/dev/null || true' EXIT

echo "== trace corpus smoke: record with cmd/tracerec, sweep trace:<path> =="
go run ./cmd/tracerec -workload gzip -scale 40 -out "$workdir/gzip.trace"
go run ./cmd/tracerec -info "$workdir/gzip.trace"
go run ./cmd/sweep \
    -grid "workloads=gzip,vpr,trace:$workdir/gzip.trace;selectors=net,lei,adaptive;scale=40;cachelimit=0,400" \
    -shards 2 -sink none

echo "== distributed smoke run: 2 loopback sweepd workers, jsonl diff =="
# The trace:<path> cell rides along: loopback workers share this
# filesystem, so the remote replay must match the local one byte for
# byte like every other cell.
smokegrid="workloads=gzip,vpr,phased,trace:$workdir/gzip.trace;selectors=net,lei,adaptive;scale=40;cachelimit=0,400"
go build -o "$workdir/sweepd" ./cmd/sweepd
go build -o "$workdir/sweep" ./cmd/sweep
"$workdir/sweepd" -listen 127.0.0.1:0 >"$workdir/w1.log" & w1pid=$!
"$workdir/sweepd" -listen 127.0.0.1:0 >"$workdir/w2.log" & w2pid=$!
# Each worker prints "sweepd: listening on <addr>" once bound.
for log in "$workdir/w1.log" "$workdir/w2.log"; do
    tries=0
    until grep -q 'listening on' "$log" 2>/dev/null; do
        tries=$((tries + 1))
        [ "$tries" -lt 100 ] || { echo "check.sh: sweepd never came up ($log)"; exit 1; }
        sleep 0.1
    done
done
addr1="$(sed -n 's/^sweepd: listening on //p' "$workdir/w1.log")"
addr2="$(sed -n 's/^sweepd: listening on //p' "$workdir/w2.log")"
"$workdir/sweep" -grid "$smokegrid" -sink jsonl >"$workdir/local.jsonl"
# Memoization differential: the default local run above memoizes
# (record-once/replay-many); forcing every job live must not change a byte.
"$workdir/sweep" -grid "$smokegrid" -sink jsonl -memo=off >"$workdir/memooff.jsonl"
diff "$workdir/local.jsonl" "$workdir/memooff.jsonl" || {
    echo "check.sh: memoized sweep output differs from -memo=off run"
    exit 1
}
"$workdir/sweep" -grid "$smokegrid" -sink jsonl -remote "$addr1,$addr2" >"$workdir/remote.jsonl"
diff "$workdir/local.jsonl" "$workdir/remote.jsonl" || {
    echo "check.sh: distributed run output differs from local run"
    # Dump what the workers saw — the jsonl diff alone rarely explains a
    # remote divergence (job decode errors and panics land in these logs).
    for log in "$workdir/w1.log" "$workdir/w2.log"; do
        echo "---- $log ----"
        cat "$log"
    done
    exit 1
}
kill "$w1pid" "$w2pid"
wait "$w1pid" "$w2pid" 2>/dev/null || true
w1pid=""; w2pid=""
echo "distributed output byte-identical to local"

if [ "${BENCH_GATE:-1}" != "0" ]; then
    echo "== bench-regression gate: Pipeline + LEI + Adaptive + Combine + Sweep + SweepMemo + Replay vs BENCH_pipeline.json =="
    benchout="$workdir/bench.out"
    # No pipe: POSIX sh has no pipefail, a pipe would mask a go test failure.
    go test -run '^$' -bench '^(BenchmarkPipeline|BenchmarkLEI|BenchmarkAdaptive|BenchmarkCombine|BenchmarkSweep|BenchmarkSweepMemo|BenchmarkReplay)$' -benchmem -count=3 . >"$benchout"
    cat "$benchout"
    go run ./scripts/benchgate -baseline BENCH_pipeline.json -tol "${BENCH_TOL:-0.25}" <"$benchout"
fi

echo "== differential equivalence (x2) =="
go test -run Diff -count=2 ./internal/difftest/

if [ "$fuzztime" != "0" ]; then
    echo "== fuzz: FuzzNETSelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzNETSelect$' -fuzztime "$fuzztime" ./internal/difftest/
    echo "== fuzz: FuzzLEISelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzLEISelect$' -fuzztime "$fuzztime" ./internal/difftest/
    echo "== fuzz: FuzzCombinedSelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzCombinedSelect$' -fuzztime "$fuzztime" ./internal/difftest/
    echo "== fuzz: FuzzAdaptiveSelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzAdaptiveSelect$' -fuzztime "$fuzztime" ./internal/difftest/
    echo "== fuzz: FuzzJobCodec ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzJobCodec$' -fuzztime "$fuzztime" ./internal/sweepnet/
    echo "== fuzz: FuzzStreamDecode ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzStreamDecode$' -fuzztime "$fuzztime" ./internal/tracestream/
    echo "== fuzz: FuzzDirectives ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzDirectives$' -fuzztime "$fuzztime" ./internal/lint/
fi

echo "check.sh: all checks passed"
