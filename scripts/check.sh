#!/bin/sh
# Full verification gate: tier-1 checks, the repo-invariant lint suite
# (cmd/lint; see docs/LINTING.md), the race detector over the
# concurrent sweep engine (including the zero-alloc shard guard, whose
# cases cover net+comb/lei+comb), the harness that drives it, and the
# core selector package (compact-trace round-trip and arena tests), a
# two-config sweep smoke run through the cmd/sweep CLI, the
# differential selector-equivalence suite run twice (catching order- or
# state-dependent divergence between the dense production selectors and
# their frozen map-based references, the pooled Combiner included), and
# a short fuzz pass over the selector fuzz targets.
#
#   scripts/check.sh [fuzztime]
#
# fuzztime is the -fuzztime for each fuzz target (default 10s; set 0 to
# skip fuzzing).
set -eu

cd "$(dirname "$0")/.."
fuzztime="${1:-10s}"

echo "== tier-1: build, vet, test =="
go build ./...
go vet ./...
go test ./...

echo "== lint: hotpathalloc, resetclean, densemap (docs/LINTING.md) =="
go run ./cmd/lint ./...

echo "== race detector: sweep engine + experiment harness + core round-trip =="
go test -race ./internal/sweep/ ./internal/experiments/ ./internal/core/

echo "== sweep smoke run (2 configs) =="
go run ./cmd/sweep \
    -grid 'workloads=gzip,vpr;selectors=net,lei;scale=40;cachelimit=0,400' \
    -shards 2 -sink none

echo "== differential equivalence (x2) =="
go test -run Diff -count=2 ./internal/difftest/

if [ "$fuzztime" != "0" ]; then
    echo "== fuzz: FuzzNETSelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzNETSelect$' -fuzztime "$fuzztime" ./internal/difftest/
    echo "== fuzz: FuzzLEISelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzLEISelect$' -fuzztime "$fuzztime" ./internal/difftest/
    echo "== fuzz: FuzzCombinedSelect ($fuzztime) =="
    go test -run '^$' -fuzz '^FuzzCombinedSelect$' -fuzztime "$fuzztime" ./internal/difftest/
fi

echo "check.sh: all checks passed"
