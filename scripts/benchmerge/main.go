// Command benchmerge folds raw `go test -bench` output (stdin) into a
// BENCH_pipeline.json-style document: benchmarks present in the new output
// replace their previous runs, benchmarks absent from it keep the runs
// already recorded, so re-running a subset never clobbers the rest of the
// file. Used by scripts/bench.sh.
//
//	go test -bench ... -benchmem . | go run ./scripts/benchmerge -out BENCH_pipeline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type doc struct {
	Benchmarks map[string]*entry `json:"benchmarks"`
}

type entry struct {
	Runs []run `json:"runs"`
}

// run mirrors one benchmark result line. Pointer fields render as null when
// the benchmark does not report that metric.
type run struct {
	Iters         int64    `json:"iters"`
	NsPerOp       *float64 `json:"ns_per_op"`
	BytesPerOp    *float64 `json:"bytes_per_op"`
	AllocsPerOp   *float64 `json:"allocs_per_op"`
	NsPerInstr    *float64 `json:"ns_per_instr"`
	BytesPerInstr *float64 `json:"bytes_per_instr"`
	JobsPerSec    *float64 `json:"jobs_per_s,omitempty"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

func main() {
	out := flag.String("out", "BENCH_pipeline.json", "JSON file to merge results into")
	flag.Parse()

	d := doc{Benchmarks: map[string]*entry{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &d); err != nil {
			fail(fmt.Errorf("parsing existing %s: %w", *out, err))
		}
		if d.Benchmarks == nil {
			d.Benchmarks = map[string]*entry{}
		}
	} else if !os.IsNotExist(err) {
		fail(err)
	}

	// Benchmarks seen in this input replace their prior runs wholesale.
	replaced := map[string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if !replaced[name] {
			replaced[name] = true
			d.Benchmarks[name] = &entry{}
		}
		e := d.Benchmarks[name]
		e.Runs = append(e.Runs, r)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(replaced) == 0 {
		fail(fmt.Errorf("no benchmark lines found on stdin"))
	}

	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
}

// parseLine decodes one `go test -bench` result line: the benchmark name
// (with the trailing -GOMAXPROCS stripped), the iteration count, and then
// value/unit pairs.
func parseLine(line string) (string, run, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", run{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", run{}, false
	}
	r := run{Iters: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", run{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = &v
		case "B/op":
			r.BytesPerOp = &v
		case "allocs/op":
			r.AllocsPerOp = &v
		case "ns/instr":
			r.NsPerInstr = &v
		case "B/instr":
			r.BytesPerInstr = &v
		case "jobs/s":
			r.JobsPerSec = &v
		}
	}
	return gomaxprocsSuffix.ReplaceAllString(f[0], ""), r, true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchmerge:", err)
	os.Exit(1)
}
