// Command benchgate compares fresh `go test -bench` output (stdin) against
// the recorded baseline in BENCH_pipeline.json and fails when a benchmark
// regressed beyond tolerance. Used by scripts/check.sh as the
// bench-regression gate.
//
//	go test -bench '^(BenchmarkPipeline|BenchmarkLEI)$' -run '^$' . |
//	    go run ./scripts/benchgate -baseline BENCH_pipeline.json -tol 0.25
//
// Per benchmark, the gated metric is ns/instr when both sides report it
// (the normalized cost the repo optimizes for), otherwise ns/op. The best
// (minimum) run on each side is compared — benchmark noise is one-sided, a
// machine can only be slower than the code's true cost — and fresh/base >
// 1+tol fails. Benchmarks on only one side are reported but never fail the
// gate, so adding a benchmark does not break CI until it is recorded.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type doc struct {
	Benchmarks map[string]*entry `json:"benchmarks"`
}

type entry struct {
	Runs []run `json:"runs"`
}

type run struct {
	NsPerOp    *float64 `json:"ns_per_op"`
	NsPerInstr *float64 `json:"ns_per_instr"`
}

// best extracts the entry's minimum value for the chosen metric; ok is false
// when no run reports it.
func (e *entry) best(instr bool) (float64, bool) {
	v, ok := 0.0, false
	for _, r := range e.Runs {
		m := r.NsPerOp
		if instr {
			m = r.NsPerInstr
		}
		if m == nil {
			continue
		}
		if !ok || *m < v {
			v, ok = *m, true
		}
	}
	return v, ok
}

// hasInstr reports whether any run records ns/instr.
func (e *entry) hasInstr() bool {
	_, ok := e.best(true)
	return ok
}

func main() {
	baseline := flag.String("baseline", "BENCH_pipeline.json", "recorded baseline JSON")
	tol := flag.Float64("tol", 0.25, "allowed fractional regression (0.25 = +25%)")
	flag.Parse()

	data, err := os.ReadFile(*baseline)
	if err != nil {
		fail(err)
	}
	var base doc
	if err := json.Unmarshal(data, &base); err != nil {
		fail(fmt.Errorf("parsing %s: %w", *baseline, err))
	}

	fresh := map[string]*entry{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if fresh[name] == nil {
			fresh[name] = &entry{}
		}
		fresh[name].Runs = append(fresh[name].Runs, r)
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	if len(fresh) == 0 {
		fail(fmt.Errorf("no benchmark lines found on stdin"))
	}

	failed := false
	for _, name := range sortedKeys(fresh) {
		e := fresh[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("benchgate: %-40s no baseline recorded, skipping (run scripts/bench.sh to record one)\n", name)
			continue
		}
		// Gate on ns/instr only when both sides record it, so flipping the
		// metric a benchmark reports can't silently compare ns to something
		// else.
		instr := e.hasInstr() && b.hasInstr()
		metric := "ns/op"
		if instr {
			metric = "ns/instr"
		}
		fb, okB := b.best(instr)
		ff, okF := e.best(instr)
		if !okB || !okF || fb == 0 {
			fmt.Printf("benchgate: %-40s metric %s missing on one side, skipping\n", name, metric)
			continue
		}
		ratio := ff / fb
		verdict := "ok"
		if ratio > 1+*tol {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("benchgate: %-40s %-8s base %.4g fresh %.4g (%+.1f%%) %s\n",
			name, metric, fb, ff, 100*(ratio-1), verdict)
	}
	if failed {
		fail(fmt.Errorf("regression beyond %.0f%% tolerance (rerun scripts/bench.sh if the change is intended)", 100**tol))
	}
}

func sortedKeys(m map[string]*entry) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

var gomaxprocsSuffix = regexp.MustCompile(`-[0-9]+$`)

// parseLine mirrors scripts/benchmerge: benchmark name (GOMAXPROCS suffix
// stripped), iterations, then value/unit pairs.
func parseLine(line string) (string, run, bool) {
	f := strings.Fields(line)
	if len(f) < 2 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", run{}, false
	}
	if _, err := strconv.ParseInt(f[1], 10, 64); err != nil {
		return "", run{}, false
	}
	var r run
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", run{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = &v
		case "ns/instr":
			r.NsPerInstr = &v
		}
	}
	return gomaxprocsSuffix.ReplaceAllString(f[0], ""), r, true
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
