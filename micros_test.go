package repro_test

import (
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/workloads"
)

// Scenario tests for the extension micro-workloads (beyond the paper's
// Figures 2-4, which are covered in repro_test.go).

// TestReturnCycleScenario: a cycle closed by a RETURN. NET's trace must end
// at the backward return, so it can never span the cycle; LEI records
// returns in its history buffer like any taken branch and spans it.
func TestReturnCycleScenario(t *testing.T) {
	p := workloads.ReturnCycle(3000)
	net := runProg(t, p, repro.SelectorNET)
	lei := runProg(t, p, repro.SelectorLEI)
	if net.Report.SpannedCycles != 0 {
		t.Errorf("NET spanned %d return-closed cycles", net.Report.SpannedCycles)
	}
	if lei.Report.SpannedCycles == 0 {
		t.Error("LEI spanned no cycles")
	}
	if lei.Report.ExecutedRatio < 0.9 {
		t.Errorf("LEI executed-cycle ratio = %.3f, want ~1", lei.Report.ExecutedRatio)
	}
	if lei.Report.Transitions != 0 {
		t.Errorf("LEI transitions = %d, want 0 (single spanning region)", lei.Report.Transitions)
	}
	if net.Report.Transitions < 1000 {
		t.Errorf("NET transitions = %d, want thousands", net.Report.Transitions)
	}
}

// TestPhaseShiftScenario: regions selected in phase 1 stop covering
// execution when the hot kernel changes; the system recovers by selecting
// phase-2 regions, and overall hit rate stays high. Also checks the
// phase-2 kernel's blocks really are cached by the end.
func TestPhaseShiftScenario(t *testing.T) {
	p := workloads.PhaseShift(2500)
	for _, sel := range []string{repro.SelectorNET, repro.SelectorLEI} {
		res := runProg(t, p, sel)
		if res.Report.HitRate < 0.95 {
			t.Errorf("%s: hit rate %.3f; phase change not recovered", sel, res.Report.HitRate)
		}
		k2, _ := p.Label("kernel_cd")
		covered := false
		for _, r := range res.Cache.AllRegions() {
			if r.Contains(k2) {
				covered = true
			}
		}
		if !covered {
			t.Errorf("%s: phase-2 kernel never selected", sel)
		}
	}
}

// TestMegamorphicScenario: an indirect call rotating over four callees.
// Every next-executing tail differs, so plain NET needs several traces;
// trace combination's region should gather multiple callees behind the
// one hot call site.
func TestMegamorphicScenario(t *testing.T) {
	p := workloads.Megamorphic(3000)
	comb := runProg(t, p, repro.SelectorNETComb)
	if comb.Report.HitRate < 0.90 {
		t.Errorf("combined NET hit rate = %.3f", comb.Report.HitRate)
	}
	// At least two distinct callees must be covered by cached regions.
	cached := 0
	for _, name := range []string{"impl0", "impl1", "impl2", "impl3"} {
		entry, ok := p.Label(name)
		if !ok {
			t.Fatalf("no label %s", name)
		}
		for _, r := range comb.Cache.AllRegions() {
			if r.Contains(entry) {
				cached++
				break
			}
		}
	}
	if cached < 2 {
		t.Errorf("only %d callees cached", cached)
	}
}

// TestLinksReduced reproduces the paper's footnote 9: because the improved
// algorithms select fewer regions with more related code inside each, they
// need fewer inter-region links.
func TestLinksReduced(t *testing.T) {
	var netLinks, cleiLinks int
	forEachBench(t, func(b string, rn, _, _, rcl metrics.Report) {
		netLinks += rn.Links
		cleiLinks += rcl.Links
	})
	if cleiLinks >= netLinks {
		t.Errorf("links: combined LEI %d vs NET %d", cleiLinks, netLinks)
	}
}

// TestTransitionReachReduced: the separation extension — total cache-layout
// distance covered by transitions shrinks under LEI and under combination.
func TestTransitionReachReduced(t *testing.T) {
	var net, lei, clei float64
	forEachBench(t, func(b string, rn, rl, _, rcl metrics.Report) {
		net += float64(rn.TransitionReach)
		lei += float64(rl.TransitionReach)
		clei += float64(rcl.TransitionReach)
	})
	if lei >= net {
		t.Errorf("transition reach: LEI %.0f vs NET %.0f", lei, net)
	}
	if clei >= lei {
		t.Errorf("transition reach: cLEI %.0f vs LEI %.0f", clei, lei)
	}
}

var _ = experiments.NET // keep import for forEachBench helpers

// TestRelatedWorkScenarios: the §5 schemes behave per their descriptions on
// the suite — they profile more (bigger counter footprints) without solving
// exit domination.
func TestRelatedWorkScenarios(t *testing.T) {
	var boaDom, boaCounters, netCounters float64
	for _, b := range []string{"gcc", "perlbmk", "vortex"} {
		boa, err := experiments.RunOne(b, experiments.BOA, 0, experiments.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		net, err := experiments.RunOne(b, experiments.NET, 0, experiments.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		boaDom += boa.ExitDominatedRatio
		boaCounters += float64(boa.CountersHighWater)
		netCounters += float64(net.CountersHighWater)
		if boa.HitRate < 0.90 {
			t.Errorf("%s: BOA hit rate %.3f", b, boa.HitRate)
		}
		wrs, err := experiments.RunOne(b, experiments.WRS, 0, experiments.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		if wrs.Regions == 0 {
			t.Errorf("%s: WRS selected nothing", b)
		}
	}
	if boaCounters <= netCounters {
		t.Errorf("BOA counters %.0f not above NET %.0f: per-branch profiling missing",
			boaCounters, netCounters)
	}
	if boaDom < 0.3 {
		t.Errorf("BOA exit domination %.3f: careful selection should NOT remove it (§5)", boaDom/3)
	}
}
