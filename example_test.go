package repro_test

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/vm"
)

// ExampleRunWorkload runs one benchmark under LEI and prints headline
// metrics. Simulations are bit-deterministic, so the output is stable.
func ExampleRunWorkload() {
	rep, err := repro.RunWorkload("fig3-nested-loops", repro.SelectorLEI, repro.Options{Scale: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regions=%d cyclic=%d cover90=%d\n", rep.Regions, rep.SpannedCycles, rep.CoverSet90)
	// Output:
	// regions=3 cyclic=1 cover90=1
}

// ExampleNewSelector compares two selectors on the same program.
func ExampleNewSelector() {
	for _, name := range []string{repro.SelectorNET, repro.SelectorLEI} {
		rep, err := repro.RunWorkload("fig2-loop-call", name, repro.Options{Scale: 2000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: spans-cycle=%v\n", name, rep.SpannedCycles > 0)
	}
	// Output:
	// net: spans-cycle=false
	// lei: spans-cycle=true
}

// Example_assembler simulates a hand-written assembly program.
func Example_assembler() {
	prog := asm.MustParse(`
func main:
  movi r1, 100
loop:
  addi r2, r2, 7
  addi r1, r1, -1
  bgt  r1, r0, loop
  halt
`)
	res, err := dynopt.Run(prog, dynopt.Config{
		Selector: core.NewLEI(core.DefaultParams()),
		VM:       vm.Config{},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regions=%d hit=%.0f%%\n", res.Report.Regions, 100*res.Report.HitRate)
	// Output:
	// regions=1 hit=64%
}
