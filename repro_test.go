package repro_test

import (
	"context"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// suite runs the full 12-benchmark x 4-selector matrix once and shares it
// across the reproduction tests.
var suite = sync.OnceValues(func() (*experiments.Results, error) {
	return experiments.RunAll(context.Background(), 0, core.DefaultParams())
})

func results(t *testing.T) *experiments.Results {
	t.Helper()
	res, err := suite()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runProg(t *testing.T, p *repro.Program, selName string) dynopt.Result {
	t.Helper()
	sel, err := repro.NewSelector(selName, repro.Params{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynopt.Run(p, dynopt.Config{Selector: sel, VM: vm.Config{}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// --- Paper §2.2 / Figure 2: interprocedural cycles ---

func TestFigure2Scenario(t *testing.T) {
	p := workloads.LoopWithCall(3000)
	net := runProg(t, p, repro.SelectorNET)
	lei := runProg(t, p, repro.SelectorLEI)

	// NET cannot span the interprocedural cycle: no cyclic region, and the
	// loop needs at least two traces with constant transitions between
	// them.
	if net.Report.SpannedCycles != 0 {
		t.Errorf("NET spanned %d cycles; the paper says it cannot", net.Report.SpannedCycles)
	}
	if net.Report.Regions < 2 {
		t.Errorf("NET regions = %d, want >= 2", net.Report.Regions)
	}
	if net.Report.Transitions < 1000 {
		t.Errorf("NET transitions = %d, want thousands (one per iteration)", net.Report.Transitions)
	}

	// LEI selects the ideal cyclic trace spanning loop + callee.
	var spanning bool
	callee, _ := p.Label("callee")
	for _, r := range lei.Cache.AllRegions() {
		if r.Cyclic && r.Contains(callee) {
			spanning = true
		}
	}
	if !spanning {
		t.Error("LEI selected no cyclic region containing the callee")
	}
	if lei.Report.Transitions*10 > net.Report.Transitions {
		t.Errorf("LEI transitions = %d vs NET %d: expected order-of-magnitude reduction",
			lei.Report.Transitions, net.Report.Transitions)
	}
	// Fewer exit stubs under LEI (Figure 2's "two fewer exit stubs").
	if lei.Report.Stubs >= net.Report.Stubs {
		t.Errorf("LEI stubs = %d, NET stubs = %d", lei.Report.Stubs, net.Report.Stubs)
	}
}

// --- Paper §2.2 / Figure 3: nested loops ---

func TestFigure3Scenario(t *testing.T) {
	p := workloads.NestedLoops(2000, 20)
	inner, _ := p.Label("B")
	net := runProg(t, p, repro.SelectorNET)
	lei := runProg(t, p, repro.SelectorLEI)

	copies := func(res dynopt.Result) int {
		n := 0
		for _, r := range res.Cache.AllRegions() {
			if r.Contains(inner) {
				n++
			}
		}
		return n
	}
	// NET duplicates the inner loop into the outer trace.
	if got := copies(net); got < 2 {
		t.Errorf("NET copies of inner loop = %d, want >= 2 (duplication)", got)
	}
	// LEI selects the inner cycle once and stops the outer trace at it.
	if got := copies(lei); got != 1 {
		t.Errorf("LEI copies of inner loop = %d, want exactly 1", got)
	}
	if lei.Report.CodeExpansion >= net.Report.CodeExpansion {
		t.Errorf("LEI expansion = %d, NET = %d: LEI should select fewer instructions",
			lei.Report.CodeExpansion, net.Report.CodeExpansion)
	}
}

// --- Paper §2.2 / Figure 4: unbiased branches ---

func TestFigure4Scenario(t *testing.T) {
	p := workloads.UnbiasedBranch(5000)
	net := runProg(t, p, repro.SelectorNET)
	comb := runProg(t, p, repro.SelectorNETComb)

	dup := func(res dynopt.Result) int {
		seen := map[isa.Addr]int{}
		for _, r := range res.Cache.AllRegions() {
			for _, b := range r.Blocks {
				for a := b.Start; a < b.Start+isa.Addr(b.Len); a++ {
					seen[a]++
				}
			}
		}
		d := 0
		for _, n := range seen {
			if n > 1 {
				d += n - 1
			}
		}
		return d
	}
	if dup(net) == 0 {
		t.Error("NET produced no duplication on the unbiased-branch rejoin")
	}
	// The combined region contains both arms and the shared tail, so the
	// bulk of NET's tail duplication disappears; a couple of instructions
	// may still be shared with small secondary regions grown from exits.
	if got := dup(comb); got >= dup(net)/2 || got > 4 {
		t.Errorf("combined NET duplicated %d instructions (NET: %d); the join should be in-region",
			got, dup(net))
	}
	// The combined region holds both arms: one multipath region with an
	// internal split.
	var multipath bool
	for _, r := range comb.Cache.AllRegions() {
		if r.Kind.String() == "multipath" {
			for _, ss := range r.Succs {
				if len(ss) > 1 {
					multipath = true
				}
			}
		}
	}
	if !multipath {
		t.Error("no multipath region with an internal split was selected")
	}
	if comb.Report.Transitions >= net.Report.Transitions {
		t.Errorf("combined transitions = %d, NET = %d", comb.Report.Transitions, net.Report.Transitions)
	}
	if comb.Report.Stubs >= net.Report.Stubs {
		t.Errorf("combined stubs = %d, NET = %d", comb.Report.Stubs, net.Report.Stubs)
	}
}

// --- Suite-level reproduction of the evaluation figures ---

func forEachBench(t *testing.T, f func(b string, net, lei, cnet, clei metrics.Report)) {
	res := results(t)
	for _, b := range workloads.SpecNames() {
		f(b, res.Get(b, experiments.NET), res.Get(b, experiments.LEI),
			res.Get(b, experiments.NETComb), res.Get(b, experiments.LEIComb))
	}
}

func averages(t *testing.T) (net, lei, cnet, clei metricsAvg) {
	var n float64
	forEachBench(t, func(b string, rn, rl, rcn, rcl metrics.Report) {
		n++
		net.add(rn)
		lei.add(rl)
		cnet.add(rcn)
		clei.add(rcl)
	})
	net.div(n)
	lei.div(n)
	cnet.div(n)
	clei.div(n)
	return
}

type metricsAvg struct {
	hit, spanned, executed, transitions, expansion, stubs, cover, counters, exitDomRatio, dupRatio float64
}

func (m *metricsAvg) add(r metrics.Report) {
	m.hit += r.HitRate
	m.spanned += r.SpannedRatio
	m.executed += r.ExecutedRatio
	m.transitions += float64(r.Transitions)
	m.expansion += float64(r.CodeExpansion)
	m.stubs += float64(r.Stubs)
	m.cover += float64(r.CoverSet90)
	m.counters += float64(r.CountersHighWater)
	m.exitDomRatio += r.ExitDominatedRatio
	m.dupRatio += r.ExitDomDupInstrsRatio
}

func (m *metricsAvg) div(n float64) {
	m.hit /= n
	m.spanned /= n
	m.executed /= n
	m.transitions /= n
	m.expansion /= n
	m.stubs /= n
	m.cover /= n
	m.counters /= n
	m.exitDomRatio /= n
	m.dupRatio /= n
}

// TestHitRatesStayHigh reproduces the §3.2/§4.3 hit-rate discussion: the
// simulated system executes the vast majority of instructions natively
// under every selector.
func TestHitRatesStayHigh(t *testing.T) {
	forEachBench(t, func(b string, net, lei, cnet, clei metrics.Report) {
		for _, r := range []metrics.Report{net, lei, cnet, clei} {
			if r.HitRate < 0.90 {
				t.Errorf("%s/%s: hit rate %.2f%% below 90%%", b, r.Selector, 100*r.HitRate)
			}
		}
	})
	net, lei, cnet, clei := averages(t)
	for name, avg := range map[string]float64{
		"net": net.hit, "lei": lei.hit, "net+comb": cnet.hit, "lei+comb": clei.hit,
	} {
		if avg < 0.95 {
			t.Errorf("%s: average hit rate %.2f%% below 95%%", name, 100*avg)
		}
	}
}

// TestFig7SpannedCycles: LEI raises both cycle ratios on average, and
// spans at least as many cycles as NET on every benchmark.
func TestFig7SpannedCycles(t *testing.T) {
	net, lei, _, _ := averages(t)
	if lei.spanned <= net.spanned {
		t.Errorf("avg spanned: LEI %.3f vs NET %.3f", lei.spanned, net.spanned)
	}
	if lei.executed <= net.executed {
		t.Errorf("avg executed cycles: LEI %.3f vs NET %.3f", lei.executed, net.executed)
	}
}

// TestFig8ExpansionAndTransitions: LEI reduces region transitions sharply
// and does not meaningfully increase code expansion on average.
func TestFig8ExpansionAndTransitions(t *testing.T) {
	net, lei, _, _ := averages(t)
	if lei.transitions >= net.transitions {
		t.Errorf("avg transitions: LEI %.0f vs NET %.0f", lei.transitions, net.transitions)
	}
	if lei.expansion > net.expansion*1.10 {
		t.Errorf("avg expansion: LEI %.0f vs NET %.0f (more than +10%%)", lei.expansion, net.expansion)
	}
}

// TestFig9CoverSets: LEI needs a smaller 90% cover set on average and never
// a drastically larger one per benchmark.
func TestFig9CoverSets(t *testing.T) {
	net, lei, _, _ := averages(t)
	if lei.cover >= net.cover {
		t.Errorf("avg cover90: LEI %.1f vs NET %.1f", lei.cover, net.cover)
	}
	forEachBench(t, func(b string, rn, rl, _, _ metrics.Report) {
		if float64(rl.CoverSet90) > 1.5*float64(rn.CoverSet90)+1 {
			t.Errorf("%s: LEI cover90 %d far exceeds NET %d", b, rl.CoverSet90, rn.CoverSet90)
		}
	})
}

// TestFig10Counters: LEI is more restrictive about associating counters
// with branch targets (paper: about two-thirds of NET's counter memory).
// On these small synthetic programs the *concurrent* high-water ties at
// "number of warm loop headers" for both algorithms, so the preserved
// signal is the total number of counter allocations: never more than NET's
// on any benchmark, and strictly fewer on average.
func TestFig10Counters(t *testing.T) {
	var netAllocs, leiAllocs uint64
	forEachBench(t, func(b string, rn, rl, _, _ metrics.Report) {
		if rl.CounterAllocs > rn.CounterAllocs {
			t.Errorf("%s: LEI allocated %d counters, NET %d", b, rl.CounterAllocs, rn.CounterAllocs)
		}
		if rl.CountersHighWater > rn.CountersHighWater+1 {
			t.Errorf("%s: LEI counter high-water %d far exceeds NET's %d",
				b, rl.CountersHighWater, rn.CountersHighWater)
		}
		netAllocs += rn.CounterAllocs
		leiAllocs += rl.CounterAllocs
	})
	if leiAllocs >= netAllocs {
		t.Errorf("total counter allocations: LEI %d vs NET %d", leiAllocs, netAllocs)
	}
}

// TestFig11And12ExitDomination: exit domination is a real, measurable
// phenomenon for both algorithms (the premise of §4), and eon produces
// disproportionate exit domination under NET (its constructors).
func TestFig11And12ExitDomination(t *testing.T) {
	net, lei, _, _ := averages(t)
	if net.exitDomRatio <= 0.02 {
		t.Errorf("NET avg exit-dominated ratio %.3f: phenomenon missing", net.exitDomRatio)
	}
	if lei.exitDomRatio <= 0.02 {
		t.Errorf("LEI avg exit-dominated ratio %.3f: phenomenon missing", lei.exitDomRatio)
	}
	res := results(t)
	// eon's constructors make it heavily exit-dominated in absolute terms,
	// and — as the paper observes in §4.1 — LEI produces more exit
	// domination than NET there, despite emitting fewer traces.
	eonNET := res.Get("eon", experiments.NET)
	eonLEI := res.Get("eon", experiments.LEI)
	if eonNET.ExitDominatedRatio < 0.25 {
		t.Errorf("eon exit domination %.3f under NET; constructors should drive it high",
			eonNET.ExitDominatedRatio)
	}
	if eonLEI.ExitDominatedRatio <= eonNET.ExitDominatedRatio {
		t.Errorf("eon: LEI exit domination %.3f not above NET's %.3f",
			eonLEI.ExitDominatedRatio, eonNET.ExitDominatedRatio)
	}
}

// TestFig16TransitionsUnderCombination: combining reduces transitions for
// both bases on average, more for LEI than NET in absolute terms.
func TestFig16TransitionsUnderCombination(t *testing.T) {
	net, lei, cnet, clei := averages(t)
	if cnet.transitions >= net.transitions {
		t.Errorf("avg transitions: cNET %.0f vs NET %.0f", cnet.transitions, net.transitions)
	}
	if clei.transitions >= lei.transitions {
		t.Errorf("avg transitions: cLEI %.0f vs LEI %.0f", clei.transitions, lei.transitions)
	}
}

// TestFig17CoverSetsUnderCombination: cover sets shrink under combination
// for both bases on average.
func TestFig17CoverSetsUnderCombination(t *testing.T) {
	net, lei, cnet, clei := averages(t)
	if cnet.cover >= net.cover {
		t.Errorf("avg cover90: cNET %.2f vs NET %.2f", cnet.cover, net.cover)
	}
	if clei.cover >= lei.cover {
		t.Errorf("avg cover90: cLEI %.2f vs LEI %.2f", clei.cover, lei.cover)
	}
}

// TestFig18ObservedTraceMemory: the paper's Figure 18 finding is that
// combined LEI consistently needs more observed-trace storage than combined
// NET (its longer traces and delayed identification keep more targets under
// observation at once). The absolute percentages here run far above the
// paper's 6-13% because the synthetic programs cache very little code (the
// denominator is hundreds of bytes, not the hundreds of kilobytes of a
// SPEC run); the ordering is the preserved shape. See EXPERIMENTS.md.
func TestFig18ObservedTraceMemory(t *testing.T) {
	var cnetPct, cleiPct float64
	forEachBench(t, func(b string, _, _, cnet, clei metrics.Report) {
		for _, r := range []metrics.Report{cnet, clei} {
			if r.ObservedBytesHighWater == 0 {
				t.Errorf("%s/%s: no observed-trace storage recorded", b, r.Selector)
			}
			if r.ObservedPctOfCache > 5 {
				t.Errorf("%s/%s: observed storage %.1f%% of cache is runaway",
					b, r.Selector, 100*r.ObservedPctOfCache)
			}
		}
		cnetPct += cnet.ObservedPctOfCache
		cleiPct += clei.ObservedPctOfCache
	})
	if cleiPct <= cnetPct {
		t.Errorf("combined LEI observation memory (avg %.1f%%) should exceed combined NET's (avg %.1f%%)",
			100*cleiPct/12, 100*cnetPct/12)
	}
}

// TestFig19StubsUnderCombination: combination removes exit stubs for both
// bases on average.
func TestFig19StubsUnderCombination(t *testing.T) {
	net, lei, cnet, clei := averages(t)
	if cnet.stubs >= net.stubs {
		t.Errorf("avg stubs: cNET %.1f vs NET %.1f", cnet.stubs, net.stubs)
	}
	if clei.stubs >= lei.stubs {
		t.Errorf("avg stubs: cLEI %.1f vs LEI %.1f", clei.stubs, lei.stubs)
	}
}

// TestExitDomReductionUnderCombination reproduces §4.3.1: combining traces
// avoids a large share of exit-dominated duplication.
func TestExitDomReductionUnderCombination(t *testing.T) {
	net, lei, cnet, clei := averages(t)
	if cnet.dupRatio >= net.dupRatio {
		t.Errorf("exit-dom duplication: cNET %.4f vs NET %.4f", cnet.dupRatio, net.dupRatio)
	}
	if clei.dupRatio >= lei.dupRatio {
		t.Errorf("exit-dom duplication: cLEI %.4f vs LEI %.4f", clei.dupRatio, lei.dupRatio)
	}
}

// TestSummaryCombinedLEIVsNET reproduces the paper's §6 composite: combined
// LEI beats plain NET on code expansion, stubs, transitions, and cover sets
// on average.
func TestSummaryCombinedLEIVsNET(t *testing.T) {
	net, _, _, clei := averages(t)
	if clei.expansion >= net.expansion {
		t.Errorf("expansion: cLEI %.0f vs NET %.0f", clei.expansion, net.expansion)
	}
	if clei.stubs >= net.stubs {
		t.Errorf("stubs: cLEI %.1f vs NET %.1f", clei.stubs, net.stubs)
	}
	if clei.transitions >= 0.75*net.transitions {
		t.Errorf("transitions: cLEI %.0f vs NET %.0f (expected roughly halved)",
			clei.transitions, net.transitions)
	}
	if clei.cover >= net.cover {
		t.Errorf("cover90: cLEI %.2f vs NET %.2f", clei.cover, net.cover)
	}
	// Per benchmark, cover sets should not regress (paper: improves for
	// every benchmark).
	forEachBench(t, func(b string, rn, _, _, rcl metrics.Report) {
		if rcl.CoverSet90 > rn.CoverSet90 {
			t.Errorf("%s: cLEI cover90 %d > NET %d", b, rcl.CoverSet90, rn.CoverSet90)
		}
	})
}

// TestFacade exercises the public API surface.
func TestFacade(t *testing.T) {
	if len(repro.Workloads()) < 15 || len(repro.SpecWorkloads()) != 12 {
		t.Error("workload registry")
	}
	if _, err := repro.RunWorkload("bogus", "net", repro.Options{}); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, err := repro.RunWorkload("gzip", "bogus", repro.Options{}); err == nil {
		t.Error("bogus selector accepted")
	}
	if _, err := repro.NewSelector("bogus", repro.Params{}); err == nil {
		t.Error("bogus selector accepted")
	}
	rep, err := repro.RunWorkload("gzip", repro.SelectorMojoNET, repro.Options{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "gzip" || rep.Selector != "mojo-net" {
		t.Errorf("report labels: %q %q", rep.Workload, rep.Selector)
	}
	if w, ok := repro.GetWorkload("mcf"); !ok || w.Name != "mcf" {
		t.Error("GetWorkload")
	}
	if repro.StubBytes != 10 {
		t.Error("StubBytes must match the paper's 10-byte estimate")
	}
}

func TestParseAndRun(t *testing.T) {
	rep, err := repro.ParseAndRun(`
func main:
  movi r1, 200
loop:
  addi r1, r1, -1
  bgt  r1, r0, loop
  halt
`, repro.SelectorLEI, repro.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regions != 1 || rep.SpannedCycles != 1 {
		t.Errorf("report = regions %d cyclic %d", rep.Regions, rep.SpannedCycles)
	}
	if _, err := repro.ParseAndRun("garbage", repro.SelectorLEI, repro.Options{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := repro.ParseAndRun("  halt", "bogus", repro.Options{}); err == nil {
		t.Error("bad selector accepted")
	}
}
