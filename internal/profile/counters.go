// Package profile provides the run-time profiling data structures the
// region selectors rely on: a recycling counter pool (shared by NET, LEI,
// and trace combination) and the circular branch-history buffer at the
// heart of LEI (paper §3.1, Figure 5).
package profile

import "repro/internal/isa"

// CounterPool associates execution counters with branch-target addresses.
// A strength of NET that LEI preserves (paper §3.2.4) is that counters are
// needed only for a small subset of branch targets and are recycled once a
// region is selected; the pool tracks the maximum number of counters live
// at any point so the paper's Figure 10 can be reproduced.
//
// Counters are stored in a dense address-indexed slice (grown lazily to the
// highest address profiled) so the per-branch Incr on the simulator's hot
// path is a bounds check and two array accesses, never a hash. The
// map-equivalent notion of "allocated" is kept explicitly: live counts the
// addresses currently holding a counter, exactly as len(map) did.
type CounterPool struct {
	counters  []int
	present   []bool
	live      int
	highWater int
	allocs    uint64
}

// NewCounterPool returns an empty pool.
func NewCounterPool() *CounterPool {
	return &CounterPool{}
}

// grow ensures the dense tables cover addr.
func (p *CounterPool) grow(addr isa.Addr) {
	if int(addr) < len(p.counters) {
		return
	}
	n := int(addr) + 1
	if n < 2*len(p.counters) {
		n = 2 * len(p.counters)
	}
	p.EnsureCap(n)
}

// EnsureCap grows the dense tables to cover addresses [0, n), so a run whose
// profiled targets stay below n never triggers growth on the hot path. The
// simulator pre-sizes selector state from the program length at run start.
func (p *CounterPool) EnsureCap(n int) {
	if n <= len(p.counters) {
		return
	}
	counters := make([]int, n)
	copy(counters, p.counters)
	p.counters = counters
	present := make([]bool, n)
	copy(present, p.present)
	p.present = present
}

// Incr increments the counter for addr, allocating it at zero first if
// needed, and returns the new value.
//
//lint:hotpath per-profiled-branch counter bump
func (p *CounterPool) Incr(addr isa.Addr) int {
	p.grow(addr)
	if !p.present[addr] {
		p.present[addr] = true
		p.allocs++
		p.live++
		if p.live > p.highWater {
			p.highWater = p.live
		}
	}
	p.counters[addr]++
	return p.counters[addr]
}

// Get returns the current value of the counter for addr (zero when absent).
func (p *CounterPool) Get(addr isa.Addr) int {
	if int(addr) >= len(p.counters) {
		return 0
	}
	return p.counters[addr]
}

// Release recycles the counter for addr, making its memory available for
// another branch target. Releasing an absent counter is a no-op.
//
//lint:hotpath counter release on selection
func (p *CounterPool) Release(addr isa.Addr) {
	if int(addr) >= len(p.counters) || !p.present[addr] {
		return
	}
	p.present[addr] = false
	p.counters[addr] = 0
	p.live--
}

// Live returns the number of counters currently allocated.
func (p *CounterPool) Live() int { return p.live }

// HighWater returns the maximum number of counters that were live at any
// point — the paper's measure of profiling counter memory (Figure 10).
func (p *CounterPool) HighWater() int { return p.highWater }

// Allocations returns the total number of distinct counter allocations made
// over the run (an address re-allocated after recycling counts again).
func (p *CounterPool) Allocations() uint64 { return p.allocs }

// Reset empties the pool and clears statistics, keeping the backing tables
// for reuse.
func (p *CounterPool) Reset() {
	clear(p.counters)
	clear(p.present)
	p.live = 0
	p.highWater = 0
	p.allocs = 0
}
