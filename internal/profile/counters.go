// Package profile provides the run-time profiling data structures the
// region selectors rely on: a recycling counter pool (shared by NET, LEI,
// and trace combination) and the circular branch-history buffer at the
// heart of LEI (paper §3.1, Figure 5).
package profile

import "repro/internal/isa"

// CounterPool associates execution counters with branch-target addresses.
// A strength of NET that LEI preserves (paper §3.2.4) is that counters are
// needed only for a small subset of branch targets and are recycled once a
// region is selected; the pool tracks the maximum number of counters live
// at any point so the paper's Figure 10 can be reproduced.
type CounterPool struct {
	counters  map[isa.Addr]int
	highWater int
	allocs    uint64
}

// NewCounterPool returns an empty pool.
func NewCounterPool() *CounterPool {
	return &CounterPool{counters: make(map[isa.Addr]int)}
}

// Incr increments the counter for addr, allocating it at zero first if
// needed, and returns the new value.
func (p *CounterPool) Incr(addr isa.Addr) int {
	c, ok := p.counters[addr]
	if !ok {
		p.allocs++
	}
	c++
	p.counters[addr] = c
	if n := len(p.counters); n > p.highWater {
		p.highWater = n
	}
	return c
}

// Get returns the current value of the counter for addr (zero when absent).
func (p *CounterPool) Get(addr isa.Addr) int { return p.counters[addr] }

// Release recycles the counter for addr, making its memory available for
// another branch target. Releasing an absent counter is a no-op.
func (p *CounterPool) Release(addr isa.Addr) { delete(p.counters, addr) }

// Live returns the number of counters currently allocated.
func (p *CounterPool) Live() int { return len(p.counters) }

// HighWater returns the maximum number of counters that were live at any
// point — the paper's measure of profiling counter memory (Figure 10).
func (p *CounterPool) HighWater() int { return p.highWater }

// Allocations returns the total number of distinct counter allocations made
// over the run (an address re-allocated after recycling counts again).
func (p *CounterPool) Allocations() uint64 { return p.allocs }

// Reset empties the pool and clears statistics.
func (p *CounterPool) Reset() {
	p.counters = make(map[isa.Addr]int)
	p.highWater = 0
	p.allocs = 0
}
