package profile

import "repro/internal/isa"

// EntryKind classifies a history-buffer entry. LEI's buffer records every
// taken control transfer the simulated system performs outside native
// region execution: interpreted taken branches, the branch that enters the
// code cache, and the stub jump that exits it. Recording the cache
// boundary transfers is what lets FORM-TRACE reconstruct paths that pass
// by cached regions (it stops where the path enters one) and what lets a
// trace "grow from an existing trace" at a cache-exit target (paper §3.1
// and Figure 5 line 9: "old follows exit from code cache").
type EntryKind uint8

const (
	// KindInterp is an interpreted taken branch.
	KindInterp EntryKind = iota
	// KindEnter is a taken branch whose target is a cached region entry:
	// control left the interpreter here. Enter entries participate in path
	// reconstruction but never in cycle detection (Figure 5 jumps to the
	// cache before the profiling logic runs).
	KindEnter
	// KindExit is a stub transfer out of the code cache: Src is the last
	// original-code instruction of the region block that exited, Tgt is
	// where interpretation resumed.
	KindExit
)

// HistoryEntry is one taken control transfer in the LEI history buffer.
type HistoryEntry struct {
	// Src is the address of the instruction the transfer left from.
	Src isa.Addr
	// Tgt is the transfer target.
	Tgt isa.Addr
	// Kind classifies the entry.
	Kind EntryKind

	seq uint64
}

// HistoryBuffer is the circular buffer of the most recently taken branches,
// plus the hash table of branch targets currently in the buffer, exactly as
// required by the LEI algorithm (paper Figure 5). The buffer supports O(1)
// insert, O(1) target lookup, iteration over the entries following a given
// position, and truncation after a position (Figure 5, line 13).
//
// Positions are stable sequence numbers, not slot indices: an entry's
// position never changes, and a position is valid only while the entry is
// still resident. Hash entries that dangle after eviction or truncation are
// detected lazily by re-validating the resident entry's target.
//
// The "hash" is not a hash at all: branch targets are instruction addresses,
// so the target->position table is a dense address-indexed slice (like the
// CounterPool), making the once-per-taken-branch Lookup/SetHash pair on the
// LEI hot path two bounds-checked array accesses instead of map operations.
// Cells store seq+1 so the zero value means "absent" and the table can be
// grown (or pre-sized via EnsureAddrCap) without initialization.
type HistoryBuffer struct {
	//lint:keep ring storage; first/next make all slots logically absent after Reset
	slots   []HistoryEntry
	hash    []uint64 // target -> seq+1 of most recent occurrence (0 = none)
	first   uint64   // seq of oldest resident entry
	next    uint64   // seq the next insert will receive
	inserts uint64
}

// NewHistoryBuffer returns a buffer holding at most capacity entries.
// The paper uses a capacity of 500.
func NewHistoryBuffer(capacity int) *HistoryBuffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &HistoryBuffer{
		slots: make([]HistoryEntry, capacity),
	}
}

// EnsureAddrCap grows the target table to cover addresses [0, n), so a run
// whose branch targets stay below n never grows it again. The simulator
// pre-sizes selector state from the program length at run start.
func (b *HistoryBuffer) EnsureAddrCap(n int) {
	if n <= len(b.hash) {
		return
	}
	//lint:ignore hotpathalloc growth path; the len guard lives in the caller SetHash and pre-sized buffers never reach it
	grown := make([]uint64, n)
	copy(grown, b.hash)
	b.hash = grown
}

// Cap returns the buffer capacity.
func (b *HistoryBuffer) Cap() int { return len(b.slots) }

// Len returns the number of resident entries.
func (b *HistoryBuffer) Len() int { return int(b.next - b.first) }

// Inserts returns the total number of Insert calls.
func (b *HistoryBuffer) Inserts() uint64 { return b.inserts }

func (b *HistoryBuffer) slot(seq uint64) *HistoryEntry {
	return &b.slots[seq%uint64(len(b.slots))]
}

// Insert appends a taken transfer to the buffer, evicting the oldest entry
// when full, and returns the new entry's position.
//
//lint:hotpath per-taken-branch under LEI
func (b *HistoryBuffer) Insert(src, tgt isa.Addr, kind EntryKind) uint64 {
	b.inserts++
	if b.next-b.first == uint64(len(b.slots)) {
		// Evict the oldest entry; drop its hash reference if it is still
		// the most recent occurrence of its target.
		old := b.slot(b.first)
		if int(old.Tgt) < len(b.hash) && b.hash[old.Tgt] == b.first+1 {
			b.hash[old.Tgt] = 0
		}
		b.first++
	}
	seq := b.next
	*b.slot(seq) = HistoryEntry{Src: src, Tgt: tgt, Kind: kind, seq: seq}
	b.next++
	return seq
}

// resident reports whether seq names a live entry.
func (b *HistoryBuffer) resident(seq uint64) bool { return seq >= b.first && seq < b.next }

// Lookup returns the position of the most recent resident occurrence of tgt
// strictly before the last inserted entry, mirroring Figure 5 line 6: the
// hash is consulted after the new branch has been inserted, so a hit means
// the target completed a cycle.
//
//lint:hotpath per-taken-branch under LEI
func (b *HistoryBuffer) Lookup(tgt isa.Addr) (uint64, bool) {
	if int(tgt) >= len(b.hash) {
		return 0, false
	}
	cell := b.hash[tgt]
	if cell == 0 {
		return 0, false
	}
	seq := cell - 1
	if !b.resident(seq) {
		return 0, false
	}
	e := b.slot(seq)
	if e.Tgt != tgt || e.seq != seq {
		// Dangling reference into a truncated-and-reused slot.
		return 0, false
	}
	if seq == b.next-1 {
		// The reference is to the entry just inserted; no older occurrence.
		return 0, false
	}
	return seq, true
}

// SetHash points the hash at position seq for target tgt (Figure 5 lines 8
// and 17).
//
//lint:hotpath per-taken-branch under LEI
func (b *HistoryBuffer) SetHash(tgt isa.Addr, seq uint64) {
	if int(tgt) >= len(b.hash) {
		b.growHash(tgt)
	}
	b.hash[tgt] = seq + 1
}

// growHash extends the target table to cover tgt, doubling so repeated
// growth amortizes. Pre-sized buffers (EnsureAddrCap) never reach it.
func (b *HistoryBuffer) growHash(tgt isa.Addr) {
	n := int(tgt) + 1
	if n < 2*len(b.hash) {
		n = 2 * len(b.hash)
	}
	//lint:ignore hotpathalloc growth path; the len guard lives in the caller SetHash and pre-sized buffers never reach it
	grown := make([]uint64, n)
	copy(grown, b.hash)
	b.hash = grown
}

// Last returns the position of the most recently inserted entry. It panics
// when the buffer is empty.
func (b *HistoryBuffer) Last() uint64 {
	if b.next == b.first {
		panic("profile: Last on empty history buffer")
	}
	return b.next - 1
}

// At returns the entry at position seq. The position must be resident.
func (b *HistoryBuffer) At(seq uint64) HistoryEntry {
	if !b.resident(seq) {
		panic("profile: stale history position")
	}
	return *b.slot(seq)
}

// After returns the entries at positions strictly greater than seq, oldest
// first — the transfers of the just-completed cycle that FORM-TRACE walks
// (Figure 6, line 3). seq must be resident.
func (b *HistoryBuffer) After(seq uint64) []HistoryEntry {
	return b.AppendAfter(seq, make([]HistoryEntry, 0, b.next-seq-1))
}

// AppendAfter appends the entries at positions strictly greater than seq to
// dst, oldest first, and returns the extended slice. It is the allocation-free
// variant of After for callers that keep a reusable scratch slice. seq must
// be resident.
//
//lint:hotpath trace formation under LEI
func (b *HistoryBuffer) AppendAfter(seq uint64, dst []HistoryEntry) []HistoryEntry {
	if !b.resident(seq) {
		panic("profile: stale history position")
	}
	for s := seq + 1; s < b.next; s++ {
		dst = append(dst, *b.slot(s))
	}
	return dst
}

// TruncateAfter removes every entry at a position strictly greater than seq
// (Figure 5 line 13: once a trace has been selected the corresponding
// branches are removed from the buffer). Hash references into the removed
// region become dangling and are invalidated lazily by Lookup.
func (b *HistoryBuffer) TruncateAfter(seq uint64) {
	if !b.resident(seq) {
		panic("profile: stale history position")
	}
	b.next = seq + 1
}

// Reset empties the buffer, keeping the backing tables for reuse.
func (b *HistoryBuffer) Reset() {
	clear(b.hash)
	b.first = 0
	b.next = 0
	b.inserts = 0
}

// Resize empties the buffer and re-targets it to a new capacity. The slot
// array is reallocated only when the capacity actually changes, so pooled
// selectors re-armed with the same HistoryCap reuse their storage.
func (b *HistoryBuffer) Resize(capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	if capacity != len(b.slots) {
		b.slots = make([]HistoryEntry, capacity)
	}
	b.Reset()
}
