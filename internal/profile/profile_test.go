package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestCounterPoolBasics(t *testing.T) {
	p := NewCounterPool()
	if p.Live() != 0 || p.HighWater() != 0 {
		t.Fatal("new pool not empty")
	}
	for i := 1; i <= 5; i++ {
		if got := p.Incr(100); got != i {
			t.Errorf("Incr #%d = %d", i, got)
		}
	}
	p.Incr(200)
	if p.Live() != 2 || p.HighWater() != 2 {
		t.Errorf("live=%d high=%d, want 2, 2", p.Live(), p.HighWater())
	}
	if p.Get(100) != 5 || p.Get(999) != 0 {
		t.Error("Get wrong")
	}
	p.Release(100)
	if p.Live() != 1 {
		t.Errorf("live after release = %d", p.Live())
	}
	// High water is sticky.
	if p.HighWater() != 2 {
		t.Errorf("high water dropped to %d", p.HighWater())
	}
	// Recycled counter restarts at 1.
	if got := p.Incr(100); got != 1 {
		t.Errorf("recycled counter = %d, want 1", got)
	}
	if p.Allocations() != 3 {
		t.Errorf("allocations = %d, want 3", p.Allocations())
	}
	p.Release(12345) // releasing an absent counter is a no-op
	p.Reset()
	if p.Live() != 0 || p.HighWater() != 0 || p.Allocations() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestHistoryBufferCycleDetection(t *testing.T) {
	b := NewHistoryBuffer(8)
	s1 := b.Insert(10, 20, KindInterp)
	if _, ok := b.Lookup(20); ok {
		t.Fatal("lookup before SetHash should miss")
	}
	b.SetHash(20, s1)
	// A second branch to 20 completes a cycle.
	s2 := b.Insert(30, 20, KindInterp)
	old, ok := b.Lookup(20)
	if !ok || old != s1 {
		t.Fatalf("Lookup = %d, %v; want %d, true", old, ok, s1)
	}
	b.SetHash(20, s2)
	// The entries after old are exactly the new branch.
	after := b.After(old)
	if len(after) != 1 || after[0].Src != 30 || after[0].Tgt != 20 {
		t.Errorf("After = %+v", after)
	}
	if b.Last() != s2 {
		t.Errorf("Last = %d, want %d", b.Last(), s2)
	}
	if got := b.At(s1); got.Src != 10 || got.Kind != KindInterp {
		t.Errorf("At(s1) = %+v", got)
	}
}

func TestHistoryBufferSelfLoop(t *testing.T) {
	// A tight self loop B->B must be detected on its second execution.
	b := NewHistoryBuffer(4)
	s1 := b.Insert(5, 5, KindInterp)
	b.SetHash(5, s1)
	b.Insert(5, 5, KindInterp)
	if old, ok := b.Lookup(5); !ok || old != s1 {
		t.Errorf("self-loop cycle not detected: %d, %v", old, ok)
	}
}

func TestHistoryBufferLookupNeverReturnsLast(t *testing.T) {
	b := NewHistoryBuffer(4)
	s := b.Insert(1, 2, KindInterp)
	b.SetHash(2, s)
	if _, ok := b.Lookup(2); ok {
		// s is the most recent (and only) entry: by Figure 5's structure a
		// hit here would claim a cycle from an entry to itself.
		t.Error("Lookup returned the just-inserted entry")
	}
}

func TestHistoryBufferEviction(t *testing.T) {
	b := NewHistoryBuffer(3)
	s1 := b.Insert(1, 100, KindInterp)
	b.SetHash(100, s1)
	b.Insert(2, 200, KindInterp)
	b.Insert(3, 300, KindInterp)
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	// Next insert evicts the entry for 100; its hash reference must die.
	b.Insert(4, 400, KindInterp)
	if b.Len() != 3 {
		t.Fatalf("Len after eviction = %d", b.Len())
	}
	b.Insert(5, 100, KindInterp)
	if _, ok := b.Lookup(100); ok {
		t.Error("Lookup hit an evicted entry")
	}
}

func TestHistoryBufferTruncate(t *testing.T) {
	b := NewHistoryBuffer(8)
	s1 := b.Insert(1, 10, KindInterp)
	b.SetHash(10, s1)
	b.Insert(2, 20, KindInterp)
	s3 := b.Insert(3, 10, KindInterp)
	b.SetHash(10, s3)
	b.TruncateAfter(s1)
	if b.Len() != 1 {
		t.Fatalf("Len after truncate = %d", b.Len())
	}
	// The hash points at the truncated s3; the lazy check must reject it
	// once the slot is reused by a different target.
	b.Insert(9, 99, KindInterp)
	if old, ok := b.Lookup(10); ok {
		t.Errorf("Lookup(10) = %d after truncation reuse", old)
	}
	// After returns nothing past the truncation point plus new inserts.
	after := b.After(s1)
	if len(after) != 1 || after[0].Tgt != 99 {
		t.Errorf("After = %+v", after)
	}
}

func TestHistoryBufferStalePanics(t *testing.T) {
	b := NewHistoryBuffer(2)
	s1 := b.Insert(1, 10, KindInterp)
	b.Insert(2, 20, KindInterp)
	b.Insert(3, 30, KindInterp) // evicts s1
	for name, f := range map[string]func(){
		"At":            func() { b.At(s1) },
		"After":         func() { b.After(s1) },
		"TruncateAfter": func() { b.TruncateAfter(s1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(stale) did not panic", name)
				}
			}()
			f()
		}()
	}
	empty := NewHistoryBuffer(2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Last on empty did not panic")
			}
		}()
		empty.Last()
	}()
}

// refBuffer is an independent reference implementation of the buffer's
// contract — a flat slice with absolute indices instead of a ring with
// wrapped sequence numbers — including the hash's latest-occurrence-only
// semantics: a target is only findable through its most recent SetHash
// reference, which dangles (and is lazily invalidated) after eviction or
// truncation, exactly as in the paper's Figure 5 structure.
type refBuffer struct {
	cap   int
	first int
	all   []HistoryEntry // absolute history; resident = [first, len)
	hash  map[isa.Addr]int
}

func newRefBuffer(capacity int) *refBuffer {
	return &refBuffer{cap: capacity, hash: map[isa.Addr]int{}}
}

func (r *refBuffer) insert(src, tgt isa.Addr, kind EntryKind) int {
	if len(r.all)-r.first == r.cap {
		if h, ok := r.hash[r.all[r.first].Tgt]; ok && h == r.first {
			delete(r.hash, r.all[r.first].Tgt)
		}
		r.first++
	}
	r.all = append(r.all, HistoryEntry{Src: src, Tgt: tgt, Kind: kind})
	return len(r.all) - 1
}

func (r *refBuffer) lookup(tgt isa.Addr) (HistoryEntry, int, bool) {
	i, ok := r.hash[tgt]
	if !ok || i < r.first || i >= len(r.all) || r.all[i].Tgt != tgt || i == len(r.all)-1 {
		return HistoryEntry{}, 0, false
	}
	return r.all[i], i, true
}

func (r *refBuffer) setHash(tgt isa.Addr, i int) { r.hash[tgt] = i }

func (r *refBuffer) after(i int) []HistoryEntry { return r.all[i+1:] }

func (r *refBuffer) truncateAfter(i int) { r.all = r.all[:i+1] }

func (r *refBuffer) len() int { return len(r.all) - r.first }

// TestHistoryBufferModel drives the real buffer and the reference model
// with the same random LEI-shaped operation sequence (insert+hash, lookup,
// occasional truncate) and requires identical observations. This covers
// the interacting eviction/truncation/hash-staleness corner cases.
func TestHistoryBufferModel(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 2 + rng.Intn(12)
		b := NewHistoryBuffer(capacity)
		ref := newRefBuffer(capacity)
		for step := 0; step < 400; step++ {
			src := isa.Addr(rng.Intn(20))
			tgt := isa.Addr(rng.Intn(20))
			kind := EntryKind(rng.Intn(3))
			seq := b.Insert(src, tgt, kind)
			refSeq := ref.insert(src, tgt, kind)
			old, ok := b.Lookup(tgt)
			refE, refI, refOK := ref.lookup(tgt)
			if ok != refOK {
				t.Logf("step %d: lookup ok=%v ref=%v", step, ok, refOK)
				return false
			}
			if ok {
				got := b.At(old)
				if got.Src != refE.Src || got.Tgt != refE.Tgt || got.Kind != refE.Kind {
					t.Logf("step %d: entry %+v vs ref %+v", step, got, refE)
					return false
				}
				after := b.After(old)
				refAfter := ref.after(refI)
				if len(after) != len(refAfter) {
					t.Logf("step %d: after len %d vs %d", step, len(after), len(refAfter))
					return false
				}
				for i := range after {
					if after[i].Src != refAfter[i].Src || after[i].Tgt != refAfter[i].Tgt {
						return false
					}
				}
				if rng.Intn(8) == 0 {
					b.TruncateAfter(old)
					ref.truncateAfter(refI)
					continue
				}
			}
			b.SetHash(tgt, seq)
			ref.setHash(tgt, refSeq)
			if b.Len() != ref.len() {
				t.Logf("step %d: len %d vs %d", step, b.Len(), ref.len())
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
