package difftest

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/vm"
)

// Frozen duplicates of the adaptive meta-selector's phase-classification
// thresholds (1/256 shares of a window; see internal/core/adaptive.go).
// They are spelled out here independently so a change to the production
// constants diverges the reference instead of silently retuning both.
const (
	refIndShare256   = 24
	refCallShare256  = 48
	refExitShare256  = 40
	refSteadyExit256 = 768
)

// RefPhaseDetector is the frozen twin of core.PhaseDetector: the same
// windowed counters and dwell hysteresis, duplicated so the reference
// selector stack shares no code with the implementation under test.
type RefPhaseDetector struct {
	window int
	dwell  int

	n     int
	taken int
	back  int
	call  int
	ind   int
	exit  int

	active  core.Policy
	desired core.Policy
	streak  int
	cool    int

	capNow      int
	capAtWindow int

	windows  uint64
	switches uint64
	total    uint64
}

// NewRefPhaseDetector returns a detector in its initial (NET-active) state.
func NewRefPhaseDetector(window, dwell int) *RefPhaseDetector {
	return &RefPhaseDetector{window: window, dwell: dwell}
}

// Observe records one interpreted transfer; it reports whether the window
// it completed switched the active policy.
func (d *RefPhaseDetector) Observe(ev core.Event) bool {
	d.n++
	d.total++
	if ev.Taken {
		d.taken++
		if ev.Tgt <= ev.Src {
			d.back++
		}
		switch ev.Kind {
		case vm.KindCall, vm.KindReturn:
			d.call++
		case vm.KindIndCall, vm.KindIndJump:
			d.ind++
		}
	}
	if d.n >= d.window {
		return d.endWindow()
	}
	return false
}

// ObserveExit records one cache exit. Windows are measured in interpreted
// transfers only, so an exit can never complete one.
func (d *RefPhaseDetector) ObserveExit() {
	d.total++
	d.exit++
}

// NotePressure records the cache's cumulative capacity-flush count.
func (d *RefPhaseDetector) NotePressure(capacityFlushes int) {
	d.capNow = capacityFlushes
}

func (d *RefPhaseDetector) endWindow() bool {
	want := d.classify()
	d.windows++
	d.n, d.taken, d.back, d.call, d.ind, d.exit = 0, 0, 0, 0, 0, 0
	d.capAtWindow = d.capNow
	if d.cool > 0 {
		d.cool--
		d.desired = d.active
		d.streak = 0
		return false
	}
	if want == d.active {
		d.desired = d.active
		d.streak = 0
		return false
	}
	if want == d.desired {
		d.streak++
	} else {
		d.desired = want
		d.streak = 1
	}
	if d.streak < d.dwell {
		return false
	}
	d.active = want
	d.streak = 0
	d.cool = d.dwell
	d.switches++
	return true
}

func (d *RefPhaseDetector) classify() core.Policy {
	n := d.n
	if d.exit*256 >= n*refSteadyExit256 {
		return d.active
	}
	if d.back+d.call+d.ind == 0 {
		return d.active
	}
	base := core.PolicyNET
	if d.ind*256 >= n*refIndShare256 || d.call*256 >= n*refCallShare256 {
		base = core.PolicyLEI
	}
	leaky := d.exit*256 >= n*refExitShare256
	pressured := d.capNow != d.capAtWindow
	if leaky || pressured {
		if base == core.PolicyNET {
			return core.PolicyNETComb
		}
		return core.PolicyLEIComb
	}
	return base
}

// Active returns the policy the detector currently prescribes.
func (d *RefPhaseDetector) Active() core.Policy { return d.active }

// Switches returns how many times the active policy has changed.
func (d *RefPhaseDetector) Switches() uint64 { return d.switches }

// Windows returns how many observation windows have completed.
func (d *RefPhaseDetector) Windows() uint64 { return d.windows }

// Observations returns the total number of observations ever recorded.
func (d *RefPhaseDetector) Observations() uint64 { return d.total }

// RefPhaseSelector is the frozen twin of core.PhaseSelector: it dispatches
// to the frozen reference policies (RefNET, RefLEI, RefCombiner) and
// switches between them on RefPhaseDetector decisions. Where the
// production selector Resets the outgoing policy in place, the reference
// simply constructs a fresh instance — the Reset-vs-fresh equivalence the
// difftest harness pins elsewhere makes the two formulations equivalent,
// which is exactly what the adaptive differential tests check end to end.
type RefPhaseSelector struct {
	params core.Params
	det    *RefPhaseDetector
	subs   map[core.Policy]core.Selector
	active core.Policy

	accCounterAllocs  uint64
	accObservedTraces uint64
	accCountersHigh   int
	accObservedHigh   int
}

// NewRefPhaseSelector returns the reference adaptive meta-selector.
func NewRefPhaseSelector(params core.Params) *RefPhaseSelector {
	params = withDefaults(params)
	a := &RefPhaseSelector{
		params: params,
		det:    NewRefPhaseDetector(params.PhaseWindow, params.PhaseDwell),
		subs:   map[core.Policy]core.Selector{},
	}
	for p := core.PolicyNET; p < core.NumPolicies; p++ {
		a.subs[p] = newRefPolicy(p, params)
	}
	return a
}

func newRefPolicy(p core.Policy, params core.Params) core.Selector {
	switch p {
	case core.PolicyNET:
		return NewRefNET(params)
	case core.PolicyLEI:
		return NewRefLEI(params)
	case core.PolicyNETComb:
		return NewRefCombiner(core.BaseNET, params)
	default:
		return NewRefCombiner(core.BaseLEI, params)
	}
}

// Name implements core.Selector, matching the production name.
func (a *RefPhaseSelector) Name() string { return "adaptive" }

// Detector exposes the reference detector for the hysteresis tests.
func (a *RefPhaseSelector) Detector() *RefPhaseDetector { return a.det }

// Transfer implements core.Selector.
func (a *RefPhaseSelector) Transfer(env core.Env, ev core.Event) {
	a.subs[a.active].Transfer(env, ev)
	a.det.NotePressure(env.Cache().Flushes())
	if a.det.Observe(ev) {
		a.switchTo(env, a.det.Active())
	}
}

// CacheExit implements core.Selector.
func (a *RefPhaseSelector) CacheExit(env core.Env, src, tgt isa.Addr) {
	a.subs[a.active].CacheExit(env, src, tgt)
	a.det.ObserveExit()
}

func (a *RefPhaseSelector) switchTo(env core.Env, next core.Policy) {
	st := a.subs[a.active].Stats()
	a.accCounterAllocs += st.CounterAllocs
	a.accObservedTraces += st.ObservedTraces
	if st.CountersHighWater > a.accCountersHigh {
		a.accCountersHigh = st.CountersHighWater
	}
	if st.ObservedBytesHighWater > a.accObservedHigh {
		a.accObservedHigh = st.ObservedBytesHighWater
	}
	a.subs[a.active] = newRefPolicy(a.active, a.params)
	env.Cache().FlushPartition()
	a.active = next
}

// Stats implements core.Selector, merging the active policy's live
// statistics with those absorbed from retired partitions.
func (a *RefPhaseSelector) Stats() core.ProfileStats {
	st := a.subs[a.active].Stats()
	st.CounterAllocs += a.accCounterAllocs
	st.ObservedTraces += a.accObservedTraces
	if a.accCountersHigh > st.CountersHighWater {
		st.CountersHighWater = a.accCountersHigh
	}
	if a.accObservedHigh > st.ObservedBytesHighWater {
		st.ObservedBytesHighWater = a.accObservedHigh
	}
	st.HistoryCap = a.params.HistoryCap
	return st
}
