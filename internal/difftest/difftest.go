package difftest

import (
	"fmt"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

// CompareRun executes p to completion under the dense production selector
// and its frozen reference twin and returns a descriptive error on the first
// divergence: the full metric Report must be identical field for field
// (selection decisions, counter high-waters, hit rate, code expansion, exit
// domination, cover sets), and every selected region must match in entry,
// shape, order, and execution statistics.
func CompareRun(p *program.Program, dense, ref core.Selector) error {
	dres, derr := dynopt.Run(p, dynopt.Config{Selector: dense})
	rres, rerr := dynopt.Run(p, dynopt.Config{Selector: ref})
	if (derr == nil) != (rerr == nil) {
		return fmt.Errorf("difftest: error divergence: dense=%v ref=%v", derr, rerr)
	}
	if derr != nil {
		return fmt.Errorf("difftest: both runs failed: %w", derr)
	}
	if dres.Report != rres.Report {
		return fmt.Errorf("difftest: report divergence:\ndense: %+v\nref:   %+v", dres.Report, rres.Report)
	}
	if err := CompareCaches(dres.Cache, rres.Cache); err != nil {
		return err
	}
	return nil
}

// CompareCaches checks that two code caches selected identical regions in
// identical order with identical execution statistics.
func CompareCaches(a, b *codecache.Cache) error {
	ra, rb := a.AllRegions(), b.AllRegions()
	if len(ra) != len(rb) {
		return fmt.Errorf("difftest: region count divergence: dense=%d ref=%d", len(ra), len(rb))
	}
	for i := range ra {
		if err := compareRegion(ra[i], rb[i]); err != nil {
			return fmt.Errorf("difftest: region %d: %w", i, err)
		}
	}
	return nil
}

func compareRegion(a, b *codecache.Region) error {
	switch {
	case a.Entry != b.Entry:
		return fmt.Errorf("entry %d != %d", a.Entry, b.Entry)
	case a.Kind != b.Kind:
		return fmt.Errorf("kind %v != %v", a.Kind, b.Kind)
	case a.Cyclic != b.Cyclic:
		return fmt.Errorf("cyclic %v != %v", a.Cyclic, b.Cyclic)
	case a.SelectedSeq != b.SelectedSeq:
		return fmt.Errorf("selection order %d != %d", a.SelectedSeq, b.SelectedSeq)
	case a.CacheAddr != b.CacheAddr:
		return fmt.Errorf("cache layout %d != %d", a.CacheAddr, b.CacheAddr)
	case a.Instrs != b.Instrs, a.Stubs != b.Stubs, a.CodeBytes != b.CodeBytes:
		return fmt.Errorf("size accounting (%d,%d,%d) != (%d,%d,%d)",
			a.Instrs, a.Stubs, a.CodeBytes, b.Instrs, b.Stubs, b.CodeBytes)
	case a.Entries != b.Entries, a.Traversals != b.Traversals,
		a.CycleTraversals != b.CycleTraversals, a.ExecInstrs != b.ExecInstrs:
		return fmt.Errorf("execution stats (%d,%d,%d,%d) != (%d,%d,%d,%d)",
			a.Entries, a.Traversals, a.CycleTraversals, a.ExecInstrs,
			b.Entries, b.Traversals, b.CycleTraversals, b.ExecInstrs)
	case len(a.Blocks) != len(b.Blocks):
		return fmt.Errorf("block count %d != %d", len(a.Blocks), len(b.Blocks))
	}
	for j := range a.Blocks {
		if a.Blocks[j] != b.Blocks[j] {
			return fmt.Errorf("block %d: %+v != %+v", j, a.Blocks[j], b.Blocks[j])
		}
	}
	return nil
}

// streamEnv is a minimal core.Env for driving a selector from a synthetic
// branch stream (no interpreter behind it), used by the fuzz targets. Like
// the real simulator it tracks cache residency: while region is non-nil the
// stream walks cached blocks and the selector sees no Transfer events.
type streamEnv struct {
	prog     *program.Program
	cache    *codecache.Cache
	errs     []error
	region   *codecache.Region
	blockIdx int
}

func newStreamEnv(p *program.Program) *streamEnv {
	return &streamEnv{prog: p, cache: codecache.New(p)}
}

func (e *streamEnv) Program() *program.Program { return e.prog }
func (e *streamEnv) Cache() *codecache.Cache   { return e.cache }
func (e *streamEnv) Insert(spec codecache.Spec) (*codecache.Region, error) {
	return e.cache.Insert(spec)
}
func (e *streamEnv) Fail(err error) { e.errs = append(e.errs, err) }

// FeedStream decodes data into a branch-event stream shaped like what the
// simulator emits — targets are block leaders, sources are block-end
// instructions — and feeds it to sel through its own environment, preserving
// the simulator's invariants. ToCache is derived from the environment's own
// cache, and a taken transfer resolving to a cached region entry moves the
// stream into a cache-resident phase: subsequent records steer execution
// through the region's member blocks (trace chain, cycle branches back to
// the entry, region-to-region transitions) without any selector events,
// until a side exit to a non-cached target delivers the CacheExit the
// selector would see from the real simulator. Streams may truncate
// mid-residency, exactly as a program halting inside the cache would. It
// returns the environment for inspection.
func FeedStream(p *program.Program, sel core.Selector, data []byte) *streamEnv {
	env := newStreamEnv(p)
	leaders := p.BlockStarts()
	for i := 0; i+3 <= len(data); i += 3 {
		if env.region != nil {
			env.stepRegion(sel, leaders, data[i], data[i+2])
			continue
		}
		tgt := leaders[int(data[i])%len(leaders)]
		srcBlock := leaders[int(data[i+1])%len(leaders)]
		src := p.BlockEnd(srcBlock) - 1
		ctl := data[i+2]
		if ctl&0x80 != 0 {
			// Cache-exit event: only valid when the target is interpreted.
			if !env.cache.HasEntry(tgt) {
				sel.CacheExit(env, src, tgt)
			}
			continue
		}
		ev := core.Event{
			Src:     src,
			Tgt:     tgt,
			Kind:    streamKind(p, src),
			Taken:   ctl&1 != 0,
			ToCache: env.cache.HasEntry(tgt),
		}
		sel.Transfer(env, ev)
		if ev.Taken {
			// Enter the cache when the target is (or has just become) a
			// cached entry — checked after the selector ran, like the
			// simulator does.
			if r, ok := env.cache.Lookup(tgt); ok {
				env.region, env.blockIdx = r, 0
			}
		}
	}
	return env
}

// streamKind derives the branch kind the simulator would report for a
// taken transfer leaving the instruction at src, so synthetic streams
// carry the same Kind mix real runs do (the adaptive meta-selector
// classifies phases by it).
func streamKind(p *program.Program, src isa.Addr) vm.BranchKind {
	switch p.At(src).Op {
	case isa.Br:
		return vm.KindCond
	case isa.Call:
		return vm.KindCall
	case isa.CallInd:
		return vm.KindIndCall
	case isa.JmpInd:
		return vm.KindIndJump
	case isa.Ret:
		return vm.KindReturn
	default:
		return vm.KindJump
	}
}

// stepRegion advances one cache-resident step: sel and tgtByte steer the
// walk, and the selector only hears about it if the step exits the cache.
func (e *streamEnv) stepRegion(sel core.Selector, leaders []isa.Addr, tgtByte, ctl byte) {
	r := e.region
	cur := r.Blocks[e.blockIdx]
	src := cur.Start + isa.Addr(cur.Len) - 1
	var tgt isa.Addr
	taken := true
	switch ctl % 4 {
	case 0, 1:
		// Follow the region: the next member block, or — at the tail of a
		// trace — the cycle branch back to the entry.
		if e.blockIdx+1 < len(r.Blocks) {
			tgt, taken = r.Blocks[e.blockIdx+1].Start, ctl&1 != 0
		} else {
			tgt = r.Entry
		}
	case 2:
		// Cycle branch back to the region entry.
		tgt = r.Entry
	default:
		// Side exit toward an arbitrary block leader; targets that happen to
		// be member blocks stay internal, cached entries become
		// region-to-region transitions, anything else exits to the
		// interpreter.
		tgt = leaders[int(tgtByte)%len(leaders)]
	}
	if nextIdx, stay, _ := r.Advance(e.blockIdx, tgt, taken); stay {
		e.blockIdx = nextIdx
		return
	}
	if r2, ok := e.cache.Lookup(tgt); ok {
		e.region, e.blockIdx = r2, 0
		return
	}
	e.region = nil
	sel.CacheExit(e, src, tgt)
}

// CompareStreams feeds the same synthetic stream to a dense selector and its
// reference twin and checks that they selected identical regions and report
// identical profiling statistics.
func CompareStreams(p *program.Program, dense, ref core.Selector, data []byte) error {
	denv := FeedStream(p, dense, data)
	renv := FeedStream(p, ref, data)
	if len(denv.errs) != len(renv.errs) {
		return fmt.Errorf("difftest: selector error divergence: dense=%v ref=%v", denv.errs, renv.errs)
	}
	if ds, rs := dense.Stats(), ref.Stats(); ds != rs {
		return fmt.Errorf("difftest: stats divergence: dense=%+v ref=%+v", ds, rs)
	}
	return CompareCaches(denv.cache, renv.cache)
}

// RandomParams derives varied-but-valid selection parameters from a seed so
// the random-program corpus exercises low thresholds, small history buffers
// (forcing eviction and dangling-hash paths), and tight trace limits.
func RandomParams(seed int64) core.Params {
	params := core.DefaultParams()
	params.NETThreshold = 2 + int(seed%7)
	params.LEIThreshold = 2 + int(seed%5)
	params.HistoryCap = 8 + int(seed%5)*31
	params.MaxTraceInstrs = 64 + int(seed%3)*128
	params.MaxTraceBlocks = 8 + int(seed%4)*16
	params.PhaseWindow = 32 + int(seed%6)*48
	params.PhaseDwell = 1 + int(seed%3)
	return params
}

// Pair couples a dense production selector with its frozen reference.
type Pair struct {
	Name  string
	Dense core.Selector
	Ref   core.Selector
}

// Pairs returns fresh production/reference selector pairs for every
// algorithm with a frozen reference: NET, Mojo-NET, LEI, both
// trace-combination selectors (arena-backed production vs the frozen
// per-trace-allocating map-based stack), and the adaptive meta-selector
// (in-place-Reset policy pool vs the frozen construct-fresh-on-switch
// formulation).
func Pairs(params core.Params) []Pair {
	return []Pair{
		{Name: "net", Dense: core.NewNET(params), Ref: NewRefNET(params)},
		{Name: "mojo-net", Dense: core.NewMojoNET(params, 2), Ref: NewRefMojoNET(params, 2)},
		{Name: "lei", Dense: core.NewLEI(params), Ref: NewRefLEI(params)},
		{Name: "net+comb", Dense: core.NewCombiner(core.BaseNET, params), Ref: NewRefCombiner(core.BaseNET, params)},
		{Name: "lei+comb", Dense: core.NewCombiner(core.BaseLEI, params), Ref: NewRefCombiner(core.BaseLEI, params)},
		{Name: "adaptive", Dense: core.NewAdaptive(params), Ref: NewRefPhaseSelector(params)},
	}
}
