// Package difftest retains the pre-densification, map-based reference
// implementations of the selector profiling state — the counter pool, the
// LEI history buffer's target hash, and NET's recording table — and checks
// the dense, address-indexed production implementations against them.
//
// The production hot path migrated from Go maps to dense slices indexed by
// instruction address (see profile.CounterPool, profile.HistoryBuffer,
// core.NET); the map code was demoted to this package, where it exists only
// to serve as the behavioral oracle. The package's tests assert that dense
// and reference selectors make identical trace and region decisions, report
// identical counter high-waters, hit rates, and code-expansion statistics,
// over every named workload, over a large corpus of seeded random programs,
// and (via the fuzz targets) over arbitrary branch streams.
//
// Nothing outside this package's tests imports it.
package difftest

import (
	"repro/internal/isa"
	"repro/internal/profile"
)

// RefCounterPool is the frozen map-based counter pool the dense
// profile.CounterPool replaced. Live counters are exactly the map's keys.
type RefCounterPool struct {
	counters  map[isa.Addr]int
	highWater int
	allocs    uint64
}

// NewRefCounterPool returns an empty reference pool.
func NewRefCounterPool() *RefCounterPool {
	return &RefCounterPool{counters: map[isa.Addr]int{}}
}

// Incr increments the counter for addr, allocating it at zero first if
// needed, and returns the new value.
func (p *RefCounterPool) Incr(addr isa.Addr) int {
	if _, ok := p.counters[addr]; !ok {
		p.allocs++
		if len(p.counters)+1 > p.highWater {
			p.highWater = len(p.counters) + 1
		}
	}
	p.counters[addr]++
	return p.counters[addr]
}

// Get returns the current value of the counter for addr (zero when absent).
func (p *RefCounterPool) Get(addr isa.Addr) int { return p.counters[addr] }

// Release recycles the counter for addr.
func (p *RefCounterPool) Release(addr isa.Addr) { delete(p.counters, addr) }

// Live returns the number of counters currently allocated.
func (p *RefCounterPool) Live() int { return len(p.counters) }

// HighWater returns the maximum number of counters live at any point.
func (p *RefCounterPool) HighWater() int { return p.highWater }

// Allocations returns the total number of distinct counter allocations.
func (p *RefCounterPool) Allocations() uint64 { return p.allocs }

// RefHistoryEntry is one taken transfer in the reference history buffer.
type RefHistoryEntry struct {
	Src  isa.Addr
	Tgt  isa.Addr
	Kind profile.EntryKind

	seq uint64
}

// RefHistoryBuffer is the frozen map-hash history buffer the dense
// profile.HistoryBuffer replaced: the circular slot array is identical, but
// the target -> position table is a Go map, as it was before the dense
// migration. Its observable behavior (Insert, Lookup, SetHash, After,
// TruncateAfter, eviction, dangling-reference invalidation) must match the
// dense implementation exactly.
type RefHistoryBuffer struct {
	slots   []RefHistoryEntry
	hash    map[isa.Addr]uint64
	first   uint64
	next    uint64
	inserts uint64
}

// NewRefHistoryBuffer returns a reference buffer holding at most capacity
// entries.
func NewRefHistoryBuffer(capacity int) *RefHistoryBuffer {
	if capacity <= 0 {
		capacity = 1
	}
	return &RefHistoryBuffer{
		slots: make([]RefHistoryEntry, capacity),
		hash:  map[isa.Addr]uint64{},
	}
}

// Cap returns the buffer capacity.
func (b *RefHistoryBuffer) Cap() int { return len(b.slots) }

// Len returns the number of resident entries.
func (b *RefHistoryBuffer) Len() int { return int(b.next - b.first) }

// Inserts returns the total number of Insert calls.
func (b *RefHistoryBuffer) Inserts() uint64 { return b.inserts }

func (b *RefHistoryBuffer) slot(seq uint64) *RefHistoryEntry {
	return &b.slots[seq%uint64(len(b.slots))]
}

// Insert appends a taken transfer, evicting the oldest entry when full, and
// returns the new entry's position.
func (b *RefHistoryBuffer) Insert(src, tgt isa.Addr, kind profile.EntryKind) uint64 {
	b.inserts++
	if b.next-b.first == uint64(len(b.slots)) {
		old := b.slot(b.first)
		if seq, ok := b.hash[old.Tgt]; ok && seq == b.first {
			delete(b.hash, old.Tgt)
		}
		b.first++
	}
	seq := b.next
	*b.slot(seq) = RefHistoryEntry{Src: src, Tgt: tgt, Kind: kind, seq: seq}
	b.next++
	return seq
}

func (b *RefHistoryBuffer) resident(seq uint64) bool { return seq >= b.first && seq < b.next }

// Lookup returns the position of the most recent resident occurrence of tgt
// strictly before the last inserted entry.
func (b *RefHistoryBuffer) Lookup(tgt isa.Addr) (uint64, bool) {
	seq, ok := b.hash[tgt]
	if !ok {
		return 0, false
	}
	if !b.resident(seq) {
		return 0, false
	}
	e := b.slot(seq)
	if e.Tgt != tgt || e.seq != seq {
		return 0, false
	}
	if seq == b.next-1 {
		return 0, false
	}
	return seq, true
}

// SetHash points the hash at position seq for target tgt.
func (b *RefHistoryBuffer) SetHash(tgt isa.Addr, seq uint64) { b.hash[tgt] = seq }

// Last returns the position of the most recently inserted entry.
func (b *RefHistoryBuffer) Last() uint64 {
	if b.next == b.first {
		panic("difftest: Last on empty history buffer")
	}
	return b.next - 1
}

// At returns the entry at position seq, which must be resident.
func (b *RefHistoryBuffer) At(seq uint64) RefHistoryEntry {
	if !b.resident(seq) {
		panic("difftest: stale history position")
	}
	return *b.slot(seq)
}

// After returns the entries at positions strictly greater than seq, oldest
// first. seq must be resident.
func (b *RefHistoryBuffer) After(seq uint64) []RefHistoryEntry {
	if !b.resident(seq) {
		panic("difftest: stale history position")
	}
	out := make([]RefHistoryEntry, 0, b.next-seq-1)
	for s := seq + 1; s < b.next; s++ {
		out = append(out, *b.slot(s))
	}
	return out
}

// TruncateAfter removes every entry at a position strictly greater than seq.
func (b *RefHistoryBuffer) TruncateAfter(seq uint64) {
	if !b.resident(seq) {
		panic("difftest: stale history position")
	}
	b.next = seq + 1
}
