package difftest

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/program"
	"repro/internal/workloads"
)

// resettableMaker builds one pooled selector per sweep shard. Every selector
// the paper sweeps implements core.Resettable, and the sweep engine depends
// on Reset leaving no trace of the previous run, so each maker is exercised
// by the property test below.
type resettableMaker struct {
	name string
	make func(params core.Params) core.Selector
}

func resettableMakers() []resettableMaker {
	return []resettableMaker{
		{"net", func(p core.Params) core.Selector { return core.NewNET(p) }},
		{"mojo-net", func(p core.Params) core.Selector { return core.NewMojoNET(p, 2) }},
		{"lei", func(p core.Params) core.Selector { return core.NewLEI(p) }},
		{"net-combined", func(p core.Params) core.Selector { return core.NewCombiner(core.BaseNET, p) }},
		{"lei-combined", func(p core.Params) core.Selector { return core.NewCombiner(core.BaseLEI, p) }},
		{"adaptive", func(p core.Params) core.Selector { return core.NewAdaptive(p) }},
	}
}

// runOnce executes p under sel and returns the run result.
func runOnce(t *testing.T, p *program.Program, sel core.Selector) dynopt.Result {
	t.Helper()
	res, err := dynopt.Run(p, dynopt.Config{Selector: sel})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return res
}

// compareResults requires two runs to be observationally identical: same
// metric report and same selected-region history.
func compareResults(pooled, fresh dynopt.Result) error {
	if pooled.Report != fresh.Report {
		return fmt.Errorf("report divergence:\npooled: %+v\nfresh:  %+v", pooled.Report, fresh.Report)
	}
	return CompareCaches(pooled.Cache, fresh.Cache)
}

// resetProgram builds the seeded random program used by the Reset property
// test.
func resetProgram(seed int64) *program.Program {
	return workloads.Random(workloads.GenConfig{
		Seed:       seed,
		Funcs:      int(seed % 4),
		MaxDepth:   2,
		Iters:      10 + int(seed%13),
		Constructs: 3 + int(seed%3),
	})
}

// TestResetMatchesFresh is the pooled-reuse property test: for every
// Resettable selector, warming an instance on one random program, calling
// Reset with new parameters, and re-running on a second random program must
// be observationally identical to a fresh instance — same report, same
// regions. A stale counter, history entry, or recorder surviving Reset shows
// up as a divergence here.
func TestResetMatchesFresh(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for _, mk := range resettableMakers() {
		t.Run(mk.name, func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				warmProg := resetProgram(int64(seed))
				runProg := resetProgram(int64(seed) + 1000)
				warmParams := RandomParams(int64(seed))
				runParams := RandomParams(int64(seed) + 1000)

				pooled := mk.make(warmParams)
				r, ok := pooled.(core.Resettable)
				if !ok {
					t.Fatalf("%s does not implement core.Resettable", mk.name)
				}
				runOnce(t, warmProg, pooled)
				r.Reset(runParams)
				got := runOnce(t, runProg, pooled)

				want := runOnce(t, runProg, mk.make(runParams))
				if err := compareResults(got, want); err != nil {
					t.Fatalf("seed %d: reset-then-reuse diverged from fresh: %v", seed, err)
				}
			}
		})
	}
}

// TestResetChain re-arms one pooled instance across a chain of runs with
// varying programs and parameters — the sweep engine's actual usage pattern
// — checking each leg against a fresh instance.
func TestResetChain(t *testing.T) {
	legs := 8
	for _, mk := range resettableMakers() {
		t.Run(mk.name, func(t *testing.T) {
			pooled := mk.make(RandomParams(0))
			r := pooled.(core.Resettable)
			for leg := 0; leg < legs; leg++ {
				p := resetProgram(int64(leg * 7))
				params := RandomParams(int64(leg * 13))
				r.Reset(params)
				got := runOnce(t, p, pooled)
				want := runOnce(t, p, mk.make(params))
				if err := compareResults(got, want); err != nil {
					t.Fatalf("leg %d: pooled chain diverged from fresh: %v", leg, err)
				}
			}
		})
	}
}
