package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/workloads"
)

// TestDiffAllWorkloads runs every named workload under each dense selector
// and its frozen map-based reference and requires byte-identical reports
// and region histories.
func TestDiffAllWorkloads(t *testing.T) {
	params := core.DefaultParams()
	// Lower thresholds so even the small micro workloads select regions.
	params.NETThreshold = 6
	params.LEIThreshold = 4
	params.HistoryCap = 120
	for _, name := range workloads.Names() {
		w, ok := workloads.Get(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		p := w.Build(8)
		for _, pair := range Pairs(params) {
			if err := CompareRun(p, pair.Dense, pair.Ref); err != nil {
				t.Errorf("%s under %s: %v", name, pair.Name, err)
			}
		}
	}
}

// TestDiffRandomPrograms checks selector equivalence over a corpus of
// seeded random structured programs with varied selection parameters
// (including small history buffers that force eviction and dangling-hash
// recovery in the dense target table).
func TestDiffRandomPrograms(t *testing.T) {
	seeds := 1000
	if testing.Short() {
		seeds = 120
	}
	for seed := 0; seed < seeds; seed++ {
		p := workloads.Random(workloads.GenConfig{
			Seed:       int64(seed),
			Funcs:      seed % 4,
			MaxDepth:   2,
			Iters:      10 + seed%13,
			Constructs: 3 + seed%3,
		})
		params := RandomParams(int64(seed))
		for _, pair := range Pairs(params) {
			if err := CompareRun(p, pair.Dense, pair.Ref); err != nil {
				t.Fatalf("seed %d under %s: %v", seed, pair.Name, err)
			}
		}
	}
}

// TestDiffHistoryBuffer drives the dense-hash production history buffer and
// the frozen map-hash reference through identical randomized operation
// streams — insert, the LEI lookup/set-hash pair, and truncation — and
// requires identical positions, hit/miss results, and cycle contents.
func TestDiffHistoryBuffer(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(17)
		dense := profile.NewHistoryBuffer(capacity)
		ref := NewRefHistoryBuffer(capacity)
		if dense.Cap() != ref.Cap() {
			t.Fatalf("seed %d: cap %d != %d", seed, dense.Cap(), ref.Cap())
		}
		for op := 0; op < 2500; op++ {
			src := isa.Addr(rng.Intn(48))
			tgt := isa.Addr(rng.Intn(48))
			kind := profile.EntryKind(rng.Intn(3))
			switch rng.Intn(10) {
			case 0: // truncate after a random resident position
				if dense.Len() == 0 {
					continue
				}
				pos := dense.Last() - uint64(rng.Intn(dense.Len()))
				dense.TruncateAfter(pos)
				ref.TruncateAfter(pos)
			default: // the LEI insert/lookup/set-hash sequence
				dseq := dense.Insert(src, tgt, kind)
				rseq := ref.Insert(src, tgt, kind)
				if dseq != rseq {
					t.Fatalf("seed %d op %d: insert seq %d != %d", seed, op, dseq, rseq)
				}
				dold, dok := dense.Lookup(tgt)
				rold, rok := ref.Lookup(tgt)
				if dok != rok || (dok && dold != rold) {
					t.Fatalf("seed %d op %d: lookup (%d,%v) != (%d,%v)", seed, op, dold, dok, rold, rok)
				}
				if dok {
					de, re := dense.At(dold), ref.At(rold)
					if de.Src != re.Src || de.Tgt != re.Tgt || de.Kind != re.Kind {
						t.Fatalf("seed %d op %d: entry %+v != %+v", seed, op, de, re)
					}
					dafter, rafter := dense.After(dold), ref.After(rold)
					if len(dafter) != len(rafter) {
						t.Fatalf("seed %d op %d: cycle length %d != %d", seed, op, len(dafter), len(rafter))
					}
					for i := range dafter {
						if dafter[i].Src != rafter[i].Src || dafter[i].Tgt != rafter[i].Tgt || dafter[i].Kind != rafter[i].Kind {
							t.Fatalf("seed %d op %d: cycle entry %d: %+v != %+v", seed, op, i, dafter[i], rafter[i])
						}
					}
				}
				dense.SetHash(tgt, dseq)
				ref.SetHash(tgt, rseq)
			}
			if dense.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: len %d != %d", seed, op, dense.Len(), ref.Len())
			}
		}
	}
}

// TestDiffPooledScratch runs every (SPEC workload, selector) pair twice —
// once with fresh per-run state and once on a shared dynopt.Scratch that is
// reused across all pairs, as the experiment harness does — and requires
// identical reports. This pins the pooled simulator, collector, interpreter,
// and analyzer reuse paths to the one-shot behavior.
func TestDiffPooledScratch(t *testing.T) {
	params := core.DefaultParams()
	selectors := []func() core.Selector{
		func() core.Selector { return core.NewNET(params) },
		func() core.Selector { return core.NewLEI(params) },
		func() core.Selector { return core.NewCombiner(core.BaseNET, params) },
		func() core.Selector { return core.NewCombiner(core.BaseLEI, params) },
		func() core.Selector { return core.NewAdaptive(params) },
	}
	scratch := &dynopt.Scratch{}
	for _, name := range workloads.SpecNames() {
		w, ok := workloads.Get(name)
		if !ok {
			t.Fatalf("workload %q missing", name)
		}
		p := w.Build(6)
		for _, newSel := range selectors {
			fresh, err := dynopt.Run(p, dynopt.Config{Selector: newSel()})
			if err != nil {
				t.Fatalf("%s fresh: %v", name, err)
			}
			pooled, err := dynopt.Run(p, dynopt.Config{Selector: newSel(), Scratch: scratch})
			if err != nil {
				t.Fatalf("%s pooled: %v", name, err)
			}
			if fresh.Report != pooled.Report {
				t.Errorf("%s under %s: pooled report diverges:\nfresh:  %+v\npooled: %+v",
					name, fresh.Report.Selector, fresh.Report, pooled.Report)
			}
		}
	}
}
