package difftest

import (
	"errors"
	"fmt"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
)

// RefLEI is the frozen Last-Executed Iteration selector over the map-hash
// RefHistoryBuffer and RefCounterPool. Algorithmically it is the production
// LEI verbatim (Figure 5 cycle detection, Figure 6 FORM-TRACE); only the
// profiling data structures differ. It implements core.Selector and reports
// the production Name so full Reports compare equal.
type RefLEI struct {
	params   core.Params
	buf      *RefHistoryBuffer
	counters *RefCounterPool
}

// NewRefLEI returns the reference LEI selector.
func NewRefLEI(params core.Params) *RefLEI {
	params = withDefaults(params)
	return &RefLEI{
		params:   params,
		buf:      NewRefHistoryBuffer(params.HistoryCap),
		counters: NewRefCounterPool(),
	}
}

// Name implements core.Selector, matching the production name.
func (l *RefLEI) Name() string { return "lei" }

// Transfer implements core.Selector.
func (l *RefLEI) Transfer(env core.Env, ev core.Event) {
	if !ev.Taken {
		return
	}
	if ev.ToCache {
		l.buf.Insert(ev.Src, ev.Tgt, profile.KindEnter)
		return
	}
	l.observe(env, ev.Src, ev.Tgt, profile.KindInterp)
}

// CacheExit implements core.Selector.
func (l *RefLEI) CacheExit(env core.Env, src, tgt isa.Addr) {
	l.observe(env, src, tgt, profile.KindExit)
}

func (l *RefLEI) observe(env core.Env, src, tgt isa.Addr, kind profile.EntryKind) {
	old, completed := refLEICycle(l.buf, src, tgt, kind, l.params)
	if !completed {
		return
	}
	if l.counters.Incr(tgt) < l.params.LEIThreshold {
		return
	}
	spec, formed := refFormLEITrace(env.Program(), env.Cache(), l.buf, tgt, old, l.params)
	l.buf.TruncateAfter(old)
	l.counters.Release(tgt)
	if !formed {
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("reflei: inserting trace"), err))
	}
}

// Stats implements core.Selector.
func (l *RefLEI) Stats() core.ProfileStats {
	return core.ProfileStats{
		CountersHighWater: l.counters.HighWater(),
		CounterAllocs:     l.counters.Allocations(),
		HistoryCap:        l.buf.Cap(),
	}
}

// refLEICycle is the frozen copy of the production leiCycleParams over the
// reference buffer.
func refLEICycle(buf *RefHistoryBuffer, src, tgt isa.Addr, kind profile.EntryKind, params core.Params) (old uint64, qualified bool) {
	seq := buf.Insert(src, tgt, kind)
	old, ok := buf.Lookup(tgt)
	if !ok {
		buf.SetHash(tgt, seq)
		return 0, false
	}
	oldEntry := buf.At(old)
	buf.SetHash(tgt, seq)
	exitGrown := oldEntry.Kind == profile.KindExit && !params.AblateLEIExitGrowth
	if tgt <= src || exitGrown {
		return old, true
	}
	return 0, false
}

// refFormLEITrace is the frozen copy of the production FORM-TRACE walk over
// the reference buffer (it drops the branch-outcome side channel, which only
// combined LEI consumes).
func refFormLEITrace(p *program.Program, cache *codecache.Cache, buf *RefHistoryBuffer, start isa.Addr, old uint64, params core.Params) (codecache.Spec, bool) {
	params = withDefaults(params)
	var blocks []codecache.BlockSpec
	inTrace := make(map[isa.Addr]bool)
	instrs := 0
	cyclic := false

	appendRun := func(from, branchSrc isa.Addr) bool {
		for b := from; ; {
			if cache.HasEntry(b) {
				return false
			}
			if inTrace[b] {
				return false
			}
			n := p.BlockLen(b)
			if instrs+n > params.MaxTraceInstrs || len(blocks) >= params.MaxTraceBlocks {
				return false
			}
			blocks = append(blocks, codecache.BlockSpec{Start: b, Len: n})
			inTrace[b] = true
			instrs += n
			end := b + isa.Addr(n)
			if end-1 == branchSrc {
				return true
			}
			if end-1 > branchSrc {
				return false
			}
			lastIn := p.At(end - 1)
			if lastIn.IsBranch() && !lastIn.IsConditional() {
				return false
			}
			b = end
		}
	}

	prev := start
	for _, br := range buf.After(old) {
		if !appendRun(prev, br.Src) {
			break
		}
		if inTrace[br.Tgt] {
			cyclic = br.Tgt == start
			break
		}
		prev = br.Tgt
	}
	if len(blocks) == 0 {
		return codecache.Spec{}, false
	}
	if blocks[0].Start != start {
		panic(fmt.Sprintf("difftest: LEI trace head %d != start %d", blocks[0].Start, start))
	}
	return codecache.Spec{
		Entry:  start,
		Kind:   codecache.KindTrace,
		Blocks: blocks,
		Cyclic: cyclic,
	}, true
}
