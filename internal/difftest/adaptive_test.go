package difftest

import (
	"testing"

	"repro/internal/core"
)

// adaptiveFuzzParams derives adaptive-selector parameters with windows
// small enough that short fuzz inputs cross several window boundaries, so
// the policy-switch machinery (stats absorption, Reset of the outgoing
// policy, partition flush) actually runs instead of idling below the
// default 256-observation window.
func adaptiveFuzzParams(progSeed uint8) core.Params {
	params := RandomParams(int64(progSeed))
	params.PhaseWindow = 8 + int(progSeed%8)
	params.PhaseDwell = 1 + int(progSeed%3)
	return params
}

// FuzzAdaptiveSelect cross-checks the adaptive meta-selector (in-place
// Reset policy pool, dense sub-selectors) against the frozen reference
// (construct-fresh-on-switch, map-based sub-selectors) on arbitrary branch
// streams, checks the dwell-hysteresis bound on whatever the stream did,
// and pins pooled Reset-then-reuse to fresh construction the way
// FuzzCombinedSelect does for the combiners.
func FuzzAdaptiveSelect(f *testing.F) {
	fuzzSeeds(f)
	// Pathological oscillation: alternating bursts of taken transfers and
	// cache-exit records, each burst roughly two small windows long, so the
	// classifier's desired policy keeps flipping and the dwell counter is
	// exercised across many would-be switches.
	osc := make([]byte, 0, 40*3)
	for burst := 0; burst < 10; burst++ {
		for i := 0; i < 4; i++ {
			if burst%2 == 0 {
				osc = append(osc, byte(3*i), byte(i), 1)
			} else {
				osc = append(osc, byte(5*i), byte(i), 0x80)
			}
		}
	}
	f.Add(uint8(1), osc)
	// Phase boundary straddling a window boundary: a long uniform prefix
	// whose length is not a multiple of any small window, then an abrupt
	// regime change, so classification flips mid-window rather than neatly
	// at a burst edge.
	straddle := make([]byte, 0, 45*3)
	for i := 0; i < 31; i++ {
		straddle = append(straddle, byte(2*i), byte(i), 1)
	}
	for i := 0; i < 14; i++ {
		straddle = append(straddle, byte(7*i), byte(i), 0x80)
	}
	f.Add(uint8(3), straddle)
	f.Fuzz(func(t *testing.T, progSeed uint8, data []byte) {
		p := fuzzProgram(progSeed)
		params := adaptiveFuzzParams(progSeed)

		dense := core.NewAdaptive(params)
		if err := CompareStreams(p, dense, NewRefPhaseSelector(params), data); err != nil {
			t.Fatalf("adaptive: %v", err)
		}
		det := dense.Detector()
		if limit := det.Windows() / uint64(params.PhaseDwell); det.Switches() > limit {
			t.Fatalf("adaptive: %d switches in %d windows exceeds dwell bound %d (window %d, dwell %d)",
				det.Switches(), det.Windows(), limit, params.PhaseWindow, params.PhaseDwell)
		}

		// Reset-then-reuse vs fresh: pollute a pooled instance with a
		// different program, parameter point, and the same stream, then
		// Reset it and require bit-identical behavior to a new instance.
		fresh := core.NewAdaptive(params)
		fenv := FeedStream(p, fresh, data)
		pooled := core.NewAdaptive(adaptiveFuzzParams(progSeed + 3))
		FeedStream(fuzzProgram(progSeed+1), pooled, data)
		pooled.Reset(params)
		penv := FeedStream(p, pooled, data)
		if len(fenv.errs) != len(penv.errs) {
			t.Fatalf("adaptive: selector error divergence: fresh=%v pooled=%v", fenv.errs, penv.errs)
		}
		if fs, ps := fresh.Stats(), pooled.Stats(); fs != ps {
			t.Fatalf("adaptive: stats divergence after Reset: fresh=%+v pooled=%+v", fs, ps)
		}
		if err := CompareCaches(fenv.cache, penv.cache); err != nil {
			t.Fatalf("adaptive: %v", err)
		}
	})
}
