package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// TestDiffCombinerResetChain is the Figure 18 identity guard for the pooled
// combination path: one production Combiner — arena-backed observed traces,
// recycled span lists, pooled RegionCFG — is re-armed via Reset across a
// chain of random programs and parameter points, and every leg must be
// observationally identical to a freshly constructed frozen RefCombiner:
// same report (including ObservedBytesHighWater and ObservedTraces, so the
// arena provably does not perturb the observed-memory measurement), same
// promoted regions, and the same §4.2.3 rejoin-iteration histogram.
func TestDiffCombinerResetChain(t *testing.T) {
	legs := 10
	for _, base := range []core.BaseAlgorithm{core.BaseNET, core.BaseLEI} {
		name := map[core.BaseAlgorithm]string{core.BaseNET: "net+comb", core.BaseLEI: "lei+comb"}[base]
		t.Run(name, func(t *testing.T) {
			pooled := core.NewCombiner(base, RandomParams(0))
			for leg := 0; leg < legs; leg++ {
				p := resetProgram(int64(leg * 7))
				params := RandomParams(int64(leg * 13))
				pooled.Reset(params)
				ref := NewRefCombiner(base, params)
				got := runOnce(t, p, pooled)
				want := runOnce(t, p, ref)
				if err := compareResults(got, want); err != nil {
					t.Fatalf("leg %d: pooled combiner diverged from frozen reference: %v", leg, err)
				}
				if pi, ri := pooled.RejoinIterations(), ref.RejoinIterations(); pi != ri {
					t.Fatalf("leg %d: rejoin-iteration histogram divergence: pooled=%v ref=%v", leg, pi, ri)
				}
			}
		})
	}
}

// TestDiffCombinerWorkloads pins pooled-vs-frozen combiner identity on the
// named workloads at a scale where both bases promote multipath regions,
// comparing the full report and rejoin histogram per workload.
func TestDiffCombinerWorkloads(t *testing.T) {
	params := core.DefaultParams()
	params.NETThreshold = 18
	params.LEIThreshold = 17
	params.HistoryCap = 120
	for _, name := range workloads.SpecNames() {
		p := workloads.MustGet(name).Build(12)
		for _, base := range []core.BaseAlgorithm{core.BaseNET, core.BaseLEI} {
			dense := core.NewCombiner(base, params)
			ref := NewRefCombiner(base, params)
			if err := CompareRun(p, dense, ref); err != nil {
				t.Errorf("%s under %s: %v", name, dense.Name(), err)
				continue
			}
			if di, ri := dense.RejoinIterations(), ref.RejoinIterations(); di != ri {
				t.Errorf("%s under %s: rejoin-iteration histogram divergence: dense=%v ref=%v", name, dense.Name(), di, ri)
			}
		}
	}
}
