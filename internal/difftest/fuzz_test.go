package difftest

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/program"
	"repro/internal/workloads"
)

// fuzzProgs lazily builds a small cycle of random structured programs so
// each fuzz execution gets a real control-flow substrate without paying
// generation cost per input.
var (
	fuzzProgMu sync.Mutex
	fuzzProgs  [8]*program.Program
)

func fuzzProgram(seed uint8) *program.Program {
	i := int(seed) % len(fuzzProgs)
	fuzzProgMu.Lock()
	defer fuzzProgMu.Unlock()
	if fuzzProgs[i] == nil {
		fuzzProgs[i] = workloads.Random(workloads.GenConfig{
			Seed:       int64(i) + 1,
			Funcs:      i % 3,
			MaxDepth:   2,
			Iters:      6,
			Constructs: 3,
		})
	}
	return fuzzProgs[i]
}

func fuzzSeeds(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{3, 1, 1, 5, 2, 1, 3, 4, 0x81})
	f.Add(uint8(2), []byte{0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1})
	f.Add(uint8(3), []byte{7, 2, 0x80, 7, 2, 1, 9, 3, 1, 7, 2, 1, 1, 1, 0})
	f.Add(uint8(5), []byte{2, 9, 1, 4, 9, 1, 2, 9, 1, 4, 9, 1, 2, 9, 1, 4, 9, 1})
}

// FuzzNETSelect cross-checks the dense NET selector (slice-indexed
// recording table, dense Mojo exit-target marks) against the frozen
// map-based reference on arbitrary branch streams.
func FuzzNETSelect(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, progSeed uint8, data []byte) {
		p := fuzzProgram(progSeed)
		params := RandomParams(int64(progSeed))
		if err := CompareStreams(p, core.NewNET(params), NewRefNET(params), data); err != nil {
			t.Fatalf("net: %v", err)
		}
		if err := CompareStreams(p, core.NewMojoNET(params, 2), NewRefMojoNET(params, 2), data); err != nil {
			t.Fatalf("mojo-net: %v", err)
		}
	})
}

// FuzzCombinedSelect drives both trace-combination selectors through
// arbitrary streams — including the cache-resident phases FeedStream
// emulates once combined regions land, which exercise the Combiner's
// observed-trace storage and cache-exit qualification paths — and
// cross-checks a pooled, Reset selector against a freshly constructed one:
// after polluting a Combiner with a different program, parameter point, and
// stream, Reset must make it behave bit-identically to new.
func FuzzCombinedSelect(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, progSeed uint8, data []byte) {
		p := fuzzProgram(progSeed)
		params := RandomParams(int64(progSeed))
		for _, base := range []core.BaseAlgorithm{core.BaseNET, core.BaseLEI} {
			fresh := core.NewCombiner(base, params)
			fenv := FeedStream(p, fresh, data)

			pooled := core.NewCombiner(base, RandomParams(int64(progSeed)+3))
			FeedStream(fuzzProgram(progSeed+1), pooled, data)
			pooled.Reset(params)
			penv := FeedStream(p, pooled, data)

			name := map[core.BaseAlgorithm]string{core.BaseNET: "net+comb", core.BaseLEI: "lei+comb"}[base]
			if len(fenv.errs) != len(penv.errs) {
				t.Fatalf("%s: selector error divergence: fresh=%v pooled=%v", name, fenv.errs, penv.errs)
			}
			if fs, ps := fresh.Stats(), pooled.Stats(); fs != ps {
				t.Fatalf("%s: stats divergence after Reset: fresh=%+v pooled=%+v", name, fs, ps)
			}
			if err := CompareCaches(fenv.cache, penv.cache); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	})
}

// FuzzLEISelect cross-checks the dense LEI selector (dense-hash history
// buffer, pre-sizable counter pool) against the frozen map-based reference
// on arbitrary branch streams, including streams that thrash a tiny history
// buffer through eviction and truncation.
func FuzzLEISelect(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, progSeed uint8, data []byte) {
		p := fuzzProgram(progSeed)
		params := RandomParams(int64(progSeed))
		if err := CompareStreams(p, core.NewLEI(params), NewRefLEI(params), data); err != nil {
			t.Fatalf("lei: %v", err)
		}
		// A one-entry buffer maximizes eviction and dangling-hash traffic.
		tiny := params
		tiny.HistoryCap = 1
		if err := CompareStreams(p, core.NewLEI(tiny), NewRefLEI(tiny), data); err != nil {
			t.Fatalf("lei tiny-buffer: %v", err)
		}
	})
}
