package difftest

import (
	"errors"
	"fmt"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
)

// This file freezes the pre-pooling trace-combination stack: per-trace
// allocating compact encodings built bit by bit, a map-indexed RegionCFG
// constructed from scratch per combination, and non-recycled observed-trace
// recorders — exactly as the production Combiner worked before the arena
// migration. It is the oracle proving the arena, the pooled RegionCFG, and
// the word-wise bit coding perturb neither the selected regions nor the
// Figure 18 measurements (ObservedBytesHighWater, ObservedTraces) nor the
// §4.2.3 rejoin-iteration histogram.

// refObsBranch is one branch outcome along a recorded path.
type refObsBranch struct {
	addr     isa.Addr
	taken    bool
	indirect bool
	target   isa.Addr
}

const (
	refSymIndirect = 0b01
	refSymNotTaken = 0b10
	refSymTaken    = 0b11
	refSymEnd      = 0b00

	refAddrBits = 32
)

// refBitString is the frozen append-only bit vector, one bit at a time.
type refBitString struct {
	data []byte
	n    int
}

func (b *refBitString) appendBit(bit uint) {
	if b.n%8 == 0 {
		b.data = append(b.data, 0)
	}
	if bit != 0 {
		b.data[b.n/8] |= 1 << uint(7-b.n%8)
	}
	b.n++
}

func (b *refBitString) append2(sym uint) {
	b.appendBit(sym >> 1 & 1)
	b.appendBit(sym & 1)
}

func (b *refBitString) appendAddr(a uint32) {
	for i := refAddrBits - 1; i >= 0; i-- {
		b.appendBit(uint(a >> uint(i) & 1))
	}
}

// refBitReader consumes a refBitString front to back, one bit at a time.
type refBitReader struct {
	src refBitString
	pos int
}

func (r *refBitReader) readBit() (uint, error) {
	if r.pos >= r.src.n {
		return 0, fmt.Errorf("difftest: compact trace truncated at bit %d", r.pos)
	}
	bit := uint(r.src.data[r.pos/8] >> uint(7-r.pos%8) & 1)
	r.pos++
	return bit, nil
}

func (r *refBitReader) read2() (uint, error) {
	hi, err := r.readBit()
	if err != nil {
		return 0, err
	}
	lo, err := r.readBit()
	if err != nil {
		return 0, err
	}
	return hi<<1 | lo, nil
}

func (r *refBitReader) readAddr() (uint32, error) {
	var a uint32
	for i := 0; i < refAddrBits; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		a = a<<1 | uint32(bit)
	}
	return a, nil
}

// refCompactTrace is the frozen Figure 14 representation, each trace owning
// its freshly allocated bit string.
type refCompactTrace struct {
	bits refBitString
}

func refEncodeTrace(branches []refObsBranch, lastAddr isa.Addr) refCompactTrace {
	var b refBitString
	for _, br := range branches {
		switch {
		case br.indirect && br.taken:
			b.append2(refSymIndirect)
			b.appendAddr(uint32(br.target))
		case !br.taken:
			b.append2(refSymNotTaken)
		default:
			b.append2(refSymTaken)
		}
	}
	b.append2(refSymEnd)
	b.appendAddr(uint32(lastAddr))
	return refCompactTrace{bits: b}
}

func (t refCompactTrace) Bytes() int { return len(t.bits.data) }

func refLastRecorded(blocks []codecache.BlockSpec) isa.Addr {
	if len(blocks) == 0 {
		return ^isa.Addr(0)
	}
	b := blocks[len(blocks)-1]
	return b.Start + isa.Addr(b.Len) - 1
}

// Decode is the frozen re-walking decoder, allocating a fresh block list.
func (t refCompactTrace) Decode(p *program.Program, head isa.Addr) (blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool, err error) {
	rd := refBitReader{src: t.bits}
	segStart := head
	pc := head
	appendSeg := func(from, through isa.Addr) {
		for b := from; ; {
			n := p.BlockLen(b)
			blocks = append(blocks, codecache.BlockSpec{Start: b, Len: n})
			end := b + isa.Addr(n)
			if end > through {
				return
			}
			b = end
		}
	}
	for steps := 0; ; steps++ {
		if steps > 1<<20 {
			return nil, 0, false, fmt.Errorf("difftest: compact trace decode did not terminate")
		}
		for !p.At(pc).IsBranch() && p.At(pc).Op != isa.Halt {
			if !p.InRange(pc + 1) {
				return nil, 0, false, fmt.Errorf("difftest: compact trace ran off program end at %d", pc)
			}
			pc++
		}
		sym, err := rd.read2()
		if err != nil {
			return nil, 0, false, err
		}
		switch sym {
		case refSymEnd:
			endAddr, err := rd.readAddr()
			if err != nil {
				return nil, 0, false, err
			}
			last := isa.Addr(endAddr)
			if refLastRecorded(blocks) == last {
				return blocks, segStart, true, nil
			}
			if last >= segStart && last <= pc {
				appendSeg(segStart, last)
				return blocks, 0, false, nil
			}
			return nil, 0, false, fmt.Errorf("difftest: compact trace end %d outside segment [%d,%d]", last, segStart, pc)
		case refSymNotTaken:
			if !p.At(pc).IsConditional() {
				return nil, 0, false, fmt.Errorf("difftest: not-taken symbol at non-conditional %d", pc)
			}
			pc++
		case refSymTaken:
			in := p.At(pc)
			if in.IsIndirect() || !in.IsBranch() {
				return nil, 0, false, fmt.Errorf("difftest: taken symbol at %d (%s)", pc, in)
			}
			appendSeg(segStart, pc)
			segStart = in.Target
			pc = in.Target
		case refSymIndirect:
			tgt, err := rd.readAddr()
			if err != nil {
				return nil, 0, false, err
			}
			if !p.At(pc).IsIndirect() {
				return nil, 0, false, fmt.Errorf("difftest: indirect symbol at non-indirect %d", pc)
			}
			if !p.InRange(isa.Addr(tgt)) || !p.IsBlockStart(isa.Addr(tgt)) {
				return nil, 0, false, fmt.Errorf("difftest: indirect target %d is not a block leader", tgt)
			}
			appendSeg(segStart, pc)
			segStart = isa.Addr(tgt)
			pc = isa.Addr(tgt)
		}
	}
}

// refRegionCFG is the frozen map-indexed combination CFG, built fresh per
// finalize with a recursive post-order walk and a map-based member index.
type refRegionCFG struct {
	entry  isa.Addr
	starts []isa.Addr
	index  map[isa.Addr]int
	lens   []int
	succs  [][]int
	count  []int
	marked []bool
}

func newRefRegionCFG(entry isa.Addr) *refRegionCFG {
	return &refRegionCFG{entry: entry, index: make(map[isa.Addr]int)}
}

func (g *refRegionCFG) NumBlocks() int { return len(g.starts) }

func (g *refRegionCFG) node(start isa.Addr, length int) int {
	if i, ok := g.index[start]; ok {
		return i
	}
	i := len(g.starts)
	g.index[start] = i
	g.starts = append(g.starts, start)
	g.lens = append(g.lens, length)
	g.succs = append(g.succs, nil)
	g.count = append(g.count, 0)
	g.marked = append(g.marked, false)
	return i
}

func (g *refRegionCFG) addEdge(from, to int) {
	for _, s := range g.succs[from] {
		if s == to {
			return
		}
	}
	g.succs[from] = append(g.succs[from], to)
}

func (g *refRegionCFG) AddTrace(blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool) error {
	if len(blocks) == 0 {
		return fmt.Errorf("difftest: empty observed trace")
	}
	if blocks[0].Start != g.entry {
		return fmt.Errorf("difftest: observed trace starts at %d, region entry is %d", blocks[0].Start, g.entry)
	}
	seen := make(map[int]bool, len(blocks))
	prev := -1
	for _, b := range blocks {
		id := g.node(b.Start, b.Len)
		if !seen[id] {
			seen[id] = true
			g.count[id]++
		}
		if prev >= 0 {
			g.addEdge(prev, id)
		}
		prev = id
	}
	if hasClosing {
		if to, ok := g.index[closing]; ok {
			g.addEdge(prev, to)
		}
	}
	return nil
}

func (g *refRegionCFG) MarkFrequent(tmin int) {
	for i := range g.marked {
		g.marked[i] = g.count[i] >= tmin
	}
	if len(g.marked) > 0 {
		g.marked[0] = true
	}
}

func (g *refRegionCFG) MarkRejoiningPaths() int {
	order := g.postOrder()
	markingIters := 0
	for {
		markedAny := false
		for _, i := range order {
			if g.marked[i] {
				continue
			}
			for _, s := range g.succs[i] {
				if g.marked[s] {
					g.marked[i] = true
					markedAny = true
					break
				}
			}
		}
		if !markedAny {
			return markingIters
		}
		markingIters++
	}
}

func (g *refRegionCFG) postOrder() []int {
	visited := make([]bool, len(g.starts))
	order := make([]int, 0, len(g.starts))
	var dfs func(int)
	dfs = func(i int) {
		visited[i] = true
		for _, s := range g.succs[i] {
			if !visited[s] {
				dfs(s)
			}
		}
		order = append(order, i)
	}
	if len(g.starts) > 0 {
		dfs(0)
	}
	for i := range g.starts {
		if !visited[i] {
			order = append(order, i)
		}
	}
	return order
}

func (g *refRegionCFG) BuildSpec(p *program.Program) (spec codecache.Spec, ok bool) {
	remap := make([]int, len(g.starts))
	var blocks []codecache.BlockSpec
	for i, start := range g.starts {
		if !g.marked[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(blocks)
		blocks = append(blocks, codecache.BlockSpec{Start: start, Len: g.lens[i]})
	}
	if len(blocks) == 0 {
		return codecache.Spec{}, false
	}
	succs := make([][]int, len(blocks))
	memberIdx := make(map[isa.Addr]int, len(blocks))
	for i, b := range blocks {
		memberIdx[b.Start] = i
	}
	addSucc := func(from, to int) {
		for _, s := range succs[from] {
			if s == to {
				return
			}
		}
		succs[from] = append(succs[from], to)
	}
	for i := range g.starts {
		if remap[i] < 0 {
			continue
		}
		for _, s := range g.succs[i] {
			if remap[s] >= 0 {
				addSucc(remap[i], remap[s])
			}
		}
	}
	for i, b := range blocks {
		end := b.Start + isa.Addr(b.Len)
		last := p.At(end - 1)
		if last.Op == isa.Br || last.Op == isa.Jmp || last.Op == isa.Call {
			if to, in := memberIdx[last.Target]; in {
				addSucc(i, to)
			}
		}
		if !last.EndsBlock() || last.Op == isa.Br {
			if to, in := memberIdx[end]; in {
				addSucc(i, to)
			}
		}
	}
	return codecache.Spec{
		Entry:  g.entry,
		Kind:   codecache.KindMultipath,
		Blocks: blocks,
		Succs:  succs,
	}, true
}

// refObsRecorder is the frozen observed-trace recorder: the NET tail
// recorder extended with branch-outcome capture, allocated fresh per head
// (no recycling pool).
type refObsRecorder struct {
	head          isa.Addr
	prog          *program.Program
	maxInstrs     int
	maxBlocks     int
	crossBackward bool

	blocks   []codecache.BlockSpec
	branches []refObsBranch
	instrs   int
	lastAddr isa.Addr
	cyclic   bool
	done     bool
}

func newRefObsRecorder(p *program.Program, head isa.Addr, maxInstrs, maxBlocks int) *refObsRecorder {
	r := &refObsRecorder{head: head, prog: p, maxInstrs: maxInstrs, maxBlocks: maxBlocks}
	r.appendBlock(head)
	return r
}

func (r *refObsRecorder) appendBlock(start isa.Addr) {
	n := r.prog.BlockLen(start)
	r.blocks = append(r.blocks, codecache.BlockSpec{Start: start, Len: n})
	r.instrs += n
	r.lastAddr = start + isa.Addr(n) - 1
}

func (r *refObsRecorder) contains(addr isa.Addr) bool {
	for _, b := range r.blocks {
		if b.Start == addr {
			return true
		}
	}
	return false
}

func (r *refObsRecorder) feed(ev core.Event) bool {
	if r.done {
		return true
	}
	last := r.prog.At(ev.Src)
	if ev.Src == r.lastAddr && last.IsBranch() {
		r.branches = append(r.branches, refObsBranch{
			addr:     ev.Src,
			taken:    ev.Taken,
			indirect: last.IsIndirect(),
			target:   ev.Tgt,
		})
	}
	if ev.Taken && ev.Tgt <= ev.Src {
		if !r.crossBackward || ev.Tgt == r.head {
			r.cyclic = ev.Tgt == r.head
			r.done = true
			return true
		}
	}
	if ev.Taken && ev.ToCache {
		r.done = true
		return true
	}
	if r.contains(ev.Tgt) {
		r.done = true
		return true
	}
	n := r.prog.BlockLen(ev.Tgt)
	if r.instrs+n > r.maxInstrs || len(r.blocks) >= r.maxBlocks {
		r.done = true
		return true
	}
	r.appendBlock(ev.Tgt)
	return false
}

// refFormLEITraceObserved is the frozen FORM-TRACE walk that additionally
// returns the branch outcomes along the path, as combined LEI consumes them,
// over the reference history buffer and a map-based membership set.
func refFormLEITraceObserved(p *program.Program, cache *codecache.Cache, buf *RefHistoryBuffer, start isa.Addr, old uint64, params core.Params) (spec codecache.Spec, outcomes []refObsBranch, formed bool) {
	params = withDefaults(params)
	var blocks []codecache.BlockSpec
	inTrace := make(map[isa.Addr]bool)
	instrs := 0
	cyclic := false

	appendRun := func(from, branchSrc isa.Addr) bool {
		for b := from; ; {
			if cache.HasEntry(b) {
				return false
			}
			if inTrace[b] {
				return false
			}
			n := p.BlockLen(b)
			if instrs+n > params.MaxTraceInstrs || len(blocks) >= params.MaxTraceBlocks {
				return false
			}
			blocks = append(blocks, codecache.BlockSpec{Start: b, Len: n})
			inTrace[b] = true
			instrs += n
			end := b + isa.Addr(n)
			if end-1 == branchSrc {
				return true
			}
			if end-1 > branchSrc {
				return false
			}
			lastIn := p.At(end - 1)
			if lastIn.IsBranch() && !lastIn.IsConditional() {
				return false
			}
			if lastIn.IsConditional() {
				outcomes = append(outcomes, refObsBranch{addr: end - 1, taken: false})
			}
			b = end
		}
	}

	prev := start
	for _, br := range buf.After(old) {
		if !appendRun(prev, br.Src) {
			break
		}
		in := p.At(br.Src)
		outcomes = append(outcomes, refObsBranch{
			addr:     br.Src,
			taken:    true,
			indirect: in.IsIndirect(),
			target:   br.Tgt,
		})
		if inTrace[br.Tgt] {
			cyclic = br.Tgt == start
			break
		}
		prev = br.Tgt
	}
	if len(blocks) == 0 {
		return codecache.Spec{}, nil, false
	}
	if blocks[0].Start != start {
		panic(fmt.Sprintf("difftest: LEI trace head %d != start %d", blocks[0].Start, start))
	}
	spec = codecache.Spec{
		Entry:  start,
		Kind:   codecache.KindTrace,
		Blocks: blocks,
		Cyclic: cyclic,
	}
	return spec, outcomes, true
}

// RefCombiner is the frozen trace-combination selector: the production
// Combiner verbatim as it was before the arena/pool migration — map-based
// observed storage holding per-trace allocated compact encodings, a fresh
// map-indexed RegionCFG per combination, fresh recorders, and bit-at-a-time
// coding — over the reference counter pool and history buffer. It reports
// the production Name so full Reports compare equal.
type RefCombiner struct {
	params   core.Params
	base     core.BaseAlgorithm
	tStart   int
	counters *RefCounterPool

	observed   map[isa.Addr][]refCompactTrace
	curBytes   int
	highBytes  int
	nObserved  uint64
	iterations [3]uint64

	recording map[isa.Addr]*refObsRecorder
	order     []isa.Addr
	combining map[isa.Addr]bool

	buf *RefHistoryBuffer
}

// NewRefCombiner returns the reference trace-combination selector.
func NewRefCombiner(base core.BaseAlgorithm, params core.Params) *RefCombiner {
	params = withDefaults(params)
	c := &RefCombiner{
		params:    params,
		base:      base,
		counters:  NewRefCounterPool(),
		observed:  make(map[isa.Addr][]refCompactTrace),
		recording: make(map[isa.Addr]*refObsRecorder),
		combining: make(map[isa.Addr]bool),
	}
	switch base {
	case core.BaseNET:
		c.tStart = params.NETThreshold - params.TProf
	case core.BaseLEI:
		c.tStart = params.LEIThreshold - params.TProf
		c.buf = NewRefHistoryBuffer(params.HistoryCap)
	}
	if c.tStart < 1 {
		c.tStart = 1
	}
	return c
}

// Name implements core.Selector, matching the production names.
func (c *RefCombiner) Name() string {
	if c.base == core.BaseNET {
		return "net+comb"
	}
	return "lei+comb"
}

// Transfer implements core.Selector.
func (c *RefCombiner) Transfer(env core.Env, ev core.Event) {
	if c.base == core.BaseNET {
		c.feedRecorders(env, ev)
		if !ev.Taken || ev.ToCache {
			return
		}
		if ev.Backward() {
			c.qualifyNET(env, ev)
		}
		return
	}
	c.transferLEI(env, ev)
}

// CacheExit implements core.Selector.
func (c *RefCombiner) CacheExit(env core.Env, src, tgt isa.Addr) {
	if c.base == core.BaseNET {
		c.qualifyNET(env, core.Event{Tgt: tgt, Taken: true})
		return
	}
	c.observeLEI(env, src, tgt, profile.KindExit)
}

func (c *RefCombiner) qualifyNET(env core.Env, ev core.Event) {
	tgt := ev.Tgt
	if c.combining[tgt] {
		return
	}
	if env.Cache().HasEntry(tgt) {
		return
	}
	n := c.counters.Incr(tgt)
	if n > c.tStart {
		if _, active := c.recording[tgt]; !active {
			c.recording[tgt] = newRefObsRecorder(env.Program(), tgt, c.params.MaxTraceInstrs, c.params.MaxTraceBlocks)
			c.order = append(c.order, tgt)
		}
	}
	if n >= c.tStart+c.params.TProf {
		c.counters.Release(tgt)
		c.combining[tgt] = true
		if _, active := c.recording[tgt]; !active {
			c.finalize(env, tgt)
		}
	}
}

func (c *RefCombiner) feedRecorders(env core.Env, ev core.Event) {
	if len(c.recording) == 0 {
		return
	}
	kept := c.order[:0]
	for _, head := range c.order {
		r := c.recording[head]
		if !r.feed(ev) {
			kept = append(kept, head)
			continue
		}
		delete(c.recording, head)
		c.store(head, refEncodeTrace(r.branches, r.lastAddr))
		if c.combining[head] {
			c.finalize(env, head)
		}
	}
	c.order = kept
}

func (c *RefCombiner) transferLEI(env core.Env, ev core.Event) {
	if !ev.Taken {
		return
	}
	if ev.ToCache {
		c.buf.Insert(ev.Src, ev.Tgt, profile.KindEnter)
		return
	}
	c.observeLEI(env, ev.Src, ev.Tgt, profile.KindInterp)
}

func (c *RefCombiner) observeLEI(env core.Env, src, tgt isa.Addr, kind profile.EntryKind) {
	old, completed := refLEICycle(c.buf, src, tgt, kind, c.params)
	if !completed {
		return
	}
	n := c.counters.Incr(tgt)
	if n <= c.tStart {
		return
	}
	if spec, outcomes, formed := refFormLEITraceObserved(env.Program(), env.Cache(), c.buf, tgt, old, c.params); formed {
		lastBlock := spec.Blocks[len(spec.Blocks)-1]
		lastAddr := lastBlock.Start + isa.Addr(lastBlock.Len) - 1
		c.store(tgt, refEncodeTrace(outcomes, lastAddr))
	}
	if n >= c.tStart+c.params.TProf {
		c.counters.Release(tgt)
		c.buf.TruncateAfter(old)
		c.finalize(env, tgt)
	}
}

func (c *RefCombiner) store(tgt isa.Addr, ct refCompactTrace) {
	c.observed[tgt] = append(c.observed[tgt], ct)
	c.curBytes += ct.Bytes()
	if c.curBytes > c.highBytes {
		c.highBytes = c.curBytes
	}
	c.nObserved++
}

func (c *RefCombiner) finalize(env core.Env, head isa.Addr) {
	delete(c.combining, head)
	traces := c.observed[head]
	delete(c.observed, head)
	for _, t := range traces {
		c.curBytes -= t.Bytes()
	}
	if len(traces) == 0 {
		return
	}
	g := newRefRegionCFG(head)
	for _, ct := range traces {
		blocks, closing, hasClosing, err := ct.Decode(env.Program(), head)
		if err != nil {
			env.Fail(errors.Join(fmt.Errorf("refcombiner: decoding observed trace at %d", head), err))
			return
		}
		if len(blocks) == 0 {
			continue
		}
		if err := g.AddTrace(blocks, closing, hasClosing); err != nil {
			env.Fail(err)
			return
		}
	}
	if g.NumBlocks() == 0 {
		return
	}
	g.MarkFrequent(c.params.TMin)
	if !c.params.AblateRejoinPaths {
		iters := g.MarkRejoiningPaths()
		if iters > 2 {
			iters = 2
		}
		c.iterations[iters]++
	}
	spec, ok := g.BuildSpec(env.Program())
	if !ok {
		return
	}
	if env.Cache().HasEntry(spec.Entry) {
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("refcombiner: inserting region"), err))
	}
}

// Stats implements core.Selector.
func (c *RefCombiner) Stats() core.ProfileStats {
	s := core.ProfileStats{
		CountersHighWater:      c.counters.HighWater(),
		CounterAllocs:          c.counters.Allocations(),
		ObservedBytesHighWater: c.highBytes,
		ObservedTraces:         c.nObserved,
	}
	if c.buf != nil {
		s.HistoryCap = c.buf.Cap()
	}
	return s
}

// RejoinIterations mirrors the production accessor for the §4.2.3 histogram.
func (c *RefCombiner) RejoinIterations() [3]uint64 { return c.iterations }
