package difftest

import (
	"errors"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// withDefaults fills zero Params fields from core.DefaultParams, mirroring
// the unexported production helper so reference selectors accept the same
// partially specified configurations.
func withDefaults(p core.Params) core.Params {
	d := core.DefaultParams()
	if p.NETThreshold <= 0 {
		p.NETThreshold = d.NETThreshold
	}
	if p.LEIThreshold <= 0 {
		p.LEIThreshold = d.LEIThreshold
	}
	if p.HistoryCap <= 0 {
		p.HistoryCap = d.HistoryCap
	}
	if p.TProf <= 0 {
		p.TProf = d.TProf
	}
	if p.TMin <= 0 {
		p.TMin = d.TMin
	}
	if p.MaxTraceInstrs <= 0 {
		p.MaxTraceInstrs = d.MaxTraceInstrs
	}
	if p.MaxTraceBlocks <= 0 {
		p.MaxTraceBlocks = d.MaxTraceBlocks
	}
	if p.PhaseWindow <= 0 {
		p.PhaseWindow = d.PhaseWindow
	}
	if p.PhaseDwell <= 0 {
		p.PhaseDwell = d.PhaseDwell
	}
	return p
}

// refTailRecorder is the frozen next-executing-tail recorder, identical in
// behavior to the production one; it is duplicated here so the reference
// selector stack shares no code with the implementations under test.
type refTailRecorder struct {
	head          isa.Addr
	prog          *program.Program
	maxInstrs     int
	maxBlocks     int
	crossBackward bool

	blocks   []codecache.BlockSpec
	instrs   int
	lastAddr isa.Addr
	cyclic   bool
	done     bool
}

func newRefTailRecorder(p *program.Program, head isa.Addr, maxInstrs, maxBlocks int) *refTailRecorder {
	r := &refTailRecorder{head: head, prog: p, maxInstrs: maxInstrs, maxBlocks: maxBlocks}
	r.appendBlock(head)
	return r
}

func (r *refTailRecorder) appendBlock(start isa.Addr) {
	n := r.prog.BlockLen(start)
	r.blocks = append(r.blocks, codecache.BlockSpec{Start: start, Len: n})
	r.instrs += n
	r.lastAddr = start + isa.Addr(n) - 1
}

func (r *refTailRecorder) contains(addr isa.Addr) bool {
	for _, b := range r.blocks {
		if b.Start == addr {
			return true
		}
	}
	return false
}

func (r *refTailRecorder) feed(ev core.Event) bool {
	if r.done {
		return true
	}
	if ev.Taken && ev.Tgt <= ev.Src {
		if !r.crossBackward || ev.Tgt == r.head {
			r.cyclic = ev.Tgt == r.head
			r.done = true
			return true
		}
	}
	if ev.Taken && ev.ToCache {
		r.done = true
		return true
	}
	if r.contains(ev.Tgt) {
		r.done = true
		return true
	}
	n := r.prog.BlockLen(ev.Tgt)
	if r.instrs+n > r.maxInstrs || len(r.blocks) >= r.maxBlocks {
		r.done = true
		return true
	}
	r.appendBlock(ev.Tgt)
	return false
}

func (r *refTailRecorder) spec() codecache.Spec {
	return codecache.Spec{
		Entry:  r.head,
		Kind:   codecache.KindTrace,
		Blocks: r.blocks,
		Cyclic: r.cyclic,
	}
}

// RefNET is the frozen map-based NET selector: recording state and Mojo
// exit-target marks live in Go maps, and counters in a RefCounterPool,
// exactly as before the dense migration. It implements core.Selector and
// reports the same Name as the production NET so full metric Reports can be
// compared field for field.
type RefNET struct {
	params        core.Params
	counters      *RefCounterPool
	recording     map[isa.Addr]*refTailRecorder
	order         []isa.Addr
	exitThreshold int
	exitTargets   map[isa.Addr]bool
}

// NewRefNET returns the reference NET selector.
func NewRefNET(params core.Params) *RefNET {
	return &RefNET{
		params:    withDefaults(params),
		counters:  NewRefCounterPool(),
		recording: map[isa.Addr]*refTailRecorder{},
	}
}

// NewRefMojoNET returns the reference Mojo variant.
func NewRefMojoNET(params core.Params, exitThreshold int) *RefNET {
	n := NewRefNET(params)
	n.exitThreshold = exitThreshold
	n.exitTargets = map[isa.Addr]bool{}
	return n
}

// Name implements core.Selector, matching the production names.
func (n *RefNET) Name() string {
	if n.exitThreshold > 0 {
		return "mojo-net"
	}
	return "net"
}

// Transfer implements core.Selector.
func (n *RefNET) Transfer(env core.Env, ev core.Event) {
	n.feedRecorders(env, ev)
	if !ev.Taken || ev.ToCache {
		return
	}
	if ev.Backward() {
		n.bump(env, ev.Tgt)
	}
}

// CacheExit implements core.Selector.
func (n *RefNET) CacheExit(env core.Env, _, tgt isa.Addr) {
	if n.exitTargets != nil {
		n.exitTargets[tgt] = true
	}
	n.bump(env, tgt)
}

func (n *RefNET) threshold(addr isa.Addr) int {
	if n.exitThreshold > 0 && n.exitTargets[addr] {
		return n.exitThreshold
	}
	return n.params.NETThreshold
}

func (n *RefNET) bump(env core.Env, tgt isa.Addr) {
	if _, active := n.recording[tgt]; active {
		return
	}
	if env.Cache().HasEntry(tgt) {
		return
	}
	if n.counters.Incr(tgt) < n.threshold(tgt) {
		return
	}
	n.counters.Release(tgt)
	if n.exitTargets != nil {
		delete(n.exitTargets, tgt)
	}
	rec := newRefTailRecorder(env.Program(), tgt, n.params.MaxTraceInstrs, n.params.MaxTraceBlocks)
	rec.crossBackward = n.params.AblateNETBackwardStop
	n.recording[tgt] = rec
	n.order = append(n.order, tgt)
}

func (n *RefNET) feedRecorders(env core.Env, ev core.Event) {
	if len(n.recording) == 0 {
		return
	}
	kept := n.order[:0]
	for _, head := range n.order {
		r := n.recording[head]
		if !r.feed(ev) {
			kept = append(kept, head)
			continue
		}
		delete(n.recording, head)
		n.insert(env, r.spec())
	}
	n.order = kept
}

func (n *RefNET) insert(env core.Env, spec codecache.Spec) {
	if env.Cache().HasEntry(spec.Entry) {
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("refnet: inserting trace"), err))
	}
}

// Stats implements core.Selector.
func (n *RefNET) Stats() core.ProfileStats {
	return core.ProfileStats{
		CountersHighWater: n.counters.HighWater(),
		CounterAllocs:     n.counters.Allocations(),
	}
}
