// Package icache simulates a set-associative instruction cache over the
// code-cache layout. The paper's case for locality is explicitly about
// instruction fetch: trace separation "reduces locality of execution — and
// therefore instruction cache performance — as control jumps between
// distant traces" (§1). The region-selection metrics (transitions, reach)
// are proxies; this simulator turns the layout and the executed stream
// into a concrete miss rate for the translated code.
//
// Only execution inside the software code cache is simulated: that is the
// translated code whose placement the selectors control. (Interpreted
// phases execute the interpreter's own loop, whose footprint is constant
// and independent of region selection.)
package icache

import "fmt"

// Config describes the simulated instruction cache. The zero value is
// replaced by a small L1i: 4 KiB, 64-byte lines, 2-way — deliberately
// small, matching the simulated programs' small code footprints the same
// way the paper's metrics were read against SPEC-sized footprints.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// LineBytes is the line size (power of two).
	LineBytes int
	// Ways is the associativity.
	Ways int
}

func (c *Config) defaults() {
	if c.SizeBytes == 0 {
		c.SizeBytes = 4 << 10
	}
	if c.LineBytes == 0 {
		c.LineBytes = 64
	}
	if c.Ways == 0 {
		c.Ways = 2
	}
}

func (c Config) validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("icache: line size %d not a power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("icache: ways = %d", c.Ways)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets <= 0 {
		return fmt.Errorf("icache: no sets (size %d, line %d, ways %d)", c.SizeBytes, c.LineBytes, c.Ways)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("icache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative instruction cache with LRU replacement.
type Cache struct {
	//lint:keep geometry, fixed at construction; Reset clears contents only
	cfg Config
	//lint:keep geometry, derived from cfg at construction
	sets     int
	tags     []uint64 // sets*ways; 0 means empty (tags are addr|set+1)
	lru      []uint64 // per-slot last-use tick
	tick     uint64
	accesses uint64
	misses   uint64
}

// New returns an empty cache.
func New(cfg Config) (*Cache, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	return &Cache{
		cfg:  cfg,
		sets: sets,
		tags: make([]uint64, sets*cfg.Ways),
		lru:  make([]uint64, sets*cfg.Ways),
	}, nil
}

// Fetch touches every line in [addr, addr+bytes).
func (c *Cache) Fetch(addr, bytes int) {
	if bytes <= 0 {
		return
	}
	first := addr / c.cfg.LineBytes
	last := (addr + bytes - 1) / c.cfg.LineBytes
	for line := first; line <= last; line++ {
		c.touch(uint64(line))
	}
}

func (c *Cache) touch(line uint64) {
	c.tick++
	c.accesses++
	set := int(line % uint64(c.sets))
	base := set * c.cfg.Ways
	tag := line + 1 // +1 so an empty slot (0) never matches
	// Hit?
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			c.lru[base+w] = c.tick
			return
		}
	}
	// Miss: fill the LRU way.
	c.misses++
	victim := base
	for w := 1; w < c.cfg.Ways; w++ {
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.tick
}

// Accesses returns the number of line touches.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of line fills.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRate returns misses per access (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.tick = 0
	c.accesses = 0
	c.misses = 0
}
