package icache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBasicHitMiss(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 256, LineBytes: 64, Ways: 2}) // 2 sets
	c.Fetch(0, 1)                                                   // line 0: miss
	c.Fetch(0, 1)                                                   // hit
	c.Fetch(63, 1)                                                  // same line: hit
	c.Fetch(64, 1)                                                  // line 1: miss
	if c.Accesses() != 4 || c.Misses() != 2 {
		t.Errorf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
}

func TestMultiLineFetch(t *testing.T) {
	c := mustNew(t, Config{SizeBytes: 1024, LineBytes: 64, Ways: 2})
	c.Fetch(10, 150) // spans lines 0,1,2 (bytes 10..159)
	if c.Accesses() != 3 || c.Misses() != 3 {
		t.Errorf("accesses=%d misses=%d", c.Accesses(), c.Misses())
	}
	c.Fetch(0, 1) // zero/negative sizes do nothing extra beyond a touch
	c.Fetch(0, 0)
	if c.Accesses() != 4 {
		t.Errorf("accesses=%d", c.Accesses())
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways, 64B lines: lines 0, 1, 2 all map to the set.
	c := mustNew(t, Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	c.Fetch(0*64, 1) // miss, fills way A
	c.Fetch(1*64, 1) // miss, fills way B
	c.Fetch(0*64, 1) // hit (A more recent than B)
	c.Fetch(2*64, 1) // miss, evicts B (LRU)
	c.Fetch(0*64, 1) // still a hit
	c.Fetch(1*64, 1) // miss (was evicted)
	if c.Misses() != 4 {
		t.Errorf("misses = %d, want 4", c.Misses())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 100, LineBytes: 60, Ways: 2}, // line not power of two
		{SizeBytes: 64, LineBytes: 64, Ways: 2},  // zero sets
		{SizeBytes: 4096, LineBytes: 64, Ways: 0x7fffffff},
		{SizeBytes: 192, LineBytes: 64, Ways: 1}, // 3 sets, not a power of two
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	// Defaults must validate.
	if _, err := New(Config{}); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

func TestReset(t *testing.T) {
	c := mustNew(t, Config{})
	c.Fetch(0, 256)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 || c.MissRate() != 0 {
		t.Error("reset incomplete")
	}
	c.Fetch(0, 1)
	if c.Misses() != 1 {
		t.Error("contents survived reset")
	}
}

// TestModelAgainstFullyAssociativeBound: a set-associative cache can never
// have fewer misses than the compulsory minimum (distinct lines touched),
// and with a single set and enough ways it behaves fully associatively.
func TestModelAgainstFullyAssociativeBound(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := mustNew(t, Config{SizeBytes: 8 * 64, LineBytes: 64, Ways: 8}) // 1 set, 8 ways
		distinct := map[int]bool{}
		touched := 0
		for i := 0; i < 200; i++ {
			line := rng.Intn(8) // working set fits: after compulsory misses, all hits
			c.Fetch(line*64, 1)
			distinct[line] = true
			touched++
		}
		return c.Misses() == uint64(len(distinct)) && c.Accesses() == uint64(touched)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
