package core

import (
	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// tailRecorder records a next-executing tail: the path interpreted
// immediately after a branch target reaches its execution threshold
// (paper §2.1). It is shared by plain NET and by combined NET, which
// records T_prof such tails before combining them.
//
// The recorder is fed every interpreted control transfer. It appends the
// target block of each transfer and stops, per the NET rules, when
//
//   - a backward branch is taken (the branch is included in the trace; the
//     trace is cyclic when the branch targets the trace head),
//   - a taken branch targets the start of another cached region, or
//   - the size limit is reached.
type tailRecorder struct {
	head      isa.Addr
	prog      *program.Program
	maxInstrs int
	maxBlocks int
	// crossBackward disables the backward-taken-branch stop rule except
	// for cycles back to the head (the AblateNETBackwardStop study).
	crossBackward bool

	blocks   []codecache.BlockSpec
	branches []obsBranch // branch outcomes, for compact encoding
	instrs   int
	lastAddr isa.Addr // address of the last instruction recorded
	cyclic   bool
	done     bool
}

// obsBranch is one branch outcome along a recorded path, in the order the
// compact encoding of Figure 14 stores them.
type obsBranch struct {
	addr     isa.Addr // the branch instruction
	taken    bool
	indirect bool
	target   isa.Addr // meaningful when taken
}

func newTailRecorder(p *program.Program, head isa.Addr, maxInstrs, maxBlocks int) *tailRecorder {
	//lint:ignore hotpathalloc pool-miss constructor: recorderPool.get recycles in steady state
	r := &tailRecorder{head: head, prog: p, maxInstrs: maxInstrs, maxBlocks: maxBlocks}
	r.appendBlock(head)
	return r
}

// reset re-arms a recycled recorder for a new head, keeping the blocks and
// branches backing arrays.
func (r *tailRecorder) reset(p *program.Program, head isa.Addr, maxInstrs, maxBlocks int) {
	blocks := r.blocks[:0]
	branches := r.branches[:0]
	*r = tailRecorder{head: head, prog: p, maxInstrs: maxInstrs, maxBlocks: maxBlocks, blocks: blocks, branches: branches}
	r.appendBlock(head)
}

// recorderPool recycles tail recorders so that steady-state trace selection
// under pooled selectors stops allocating per promotion. Recorders are safe
// to recycle as soon as their spec or branch outcomes have been consumed:
// codecache.Insert copies Blocks and encodeTrace copies outcomes.
type recorderPool struct {
	free []*tailRecorder
}

func (p *recorderPool) get(prog *program.Program, head isa.Addr, maxInstrs, maxBlocks int) *tailRecorder {
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free = p.free[:n-1]
		r.reset(prog, head, maxInstrs, maxBlocks)
		return r
	}
	return newTailRecorder(prog, head, maxInstrs, maxBlocks)
}

func (p *recorderPool) put(r *tailRecorder) {
	p.free = append(p.free, r)
}

func (r *tailRecorder) appendBlock(start isa.Addr) {
	n := r.prog.BlockLen(start)
	r.blocks = append(r.blocks, codecache.BlockSpec{Start: start, Len: n})
	r.instrs += n
	r.lastAddr = start + isa.Addr(n) - 1
}

// contains reports whether the block starting at addr is already recorded.
// NET paths have strictly increasing addresses so this is only a safety
// net; it keeps the cache's unique-block invariant if a workload ever
// produces a degenerate path.
func (r *tailRecorder) contains(addr isa.Addr) bool {
	for _, b := range r.blocks {
		if b.Start == addr {
			return true
		}
	}
	return false
}

// feed advances the recorder by one interpreted transfer. It returns true
// when the trace is complete.
func (r *tailRecorder) feed(ev Event) bool {
	if r.done {
		return true
	}
	// Record the branch outcome at the end of the current block when it is
	// a branch instruction (fall-throughs off non-branch block ends carry
	// no outcome).
	last := r.prog.At(ev.Src)
	if ev.Src == r.lastAddr && last.IsBranch() {
		r.branches = append(r.branches, obsBranch{
			addr:     ev.Src,
			taken:    ev.Taken,
			indirect: last.IsIndirect(),
			target:   ev.Tgt,
		})
	}
	if ev.Taken && ev.Tgt <= ev.Src {
		if !r.crossBackward || ev.Tgt == r.head {
			// Backward taken branch ends the trace; it is included, and
			// the trace spans a cycle when it targets the head.
			r.cyclic = ev.Tgt == r.head
			r.done = true
			return true
		}
		// Ablation mode: keep extending across the backward branch (the
		// revisit and size checks below still apply).
	}
	if ev.Taken && ev.ToCache {
		// Taken branch to the start of another region ends the trace.
		r.done = true
		return true
	}
	if r.contains(ev.Tgt) {
		r.done = true
		return true
	}
	n := r.prog.BlockLen(ev.Tgt)
	if r.instrs+n > r.maxInstrs || len(r.blocks) >= r.maxBlocks {
		r.done = true
		return true
	}
	r.appendBlock(ev.Tgt)
	return false
}

// spec returns the completed trace as a region spec.
func (r *tailRecorder) spec() codecache.Spec {
	return codecache.Spec{
		Entry:  r.head,
		Kind:   codecache.KindTrace,
		Blocks: r.blocks,
		Cyclic: r.cyclic,
	}
}
