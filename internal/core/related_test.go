package core

import (
	"testing"

	"repro/internal/isa"
)

func TestDirCounts(t *testing.T) {
	var d dirCounts
	cond := isa.Instr{Op: isa.Br, Cond: isa.CondLt, Target: 42}
	if _, _, ok := d.hot(cond); ok {
		t.Error("hot with no observations")
	}
	d.observe(true, false, 42)
	d.observe(true, false, 42)
	d.observe(false, false, 0)
	taken, tgt, ok := d.hot(cond)
	if !ok || !taken || tgt != 42 {
		t.Errorf("hot = %v %d %v", taken, tgt, ok)
	}
	d.observe(false, false, 0)
	d.observe(false, false, 0)
	if taken, _, _ := d.hot(cond); taken {
		t.Error("majority flipped to not-taken but hot still taken")
	}

	var ind dirCounts
	ret := isa.Instr{Op: isa.Ret}
	if _, _, ok := ind.hot(ret); ok {
		t.Error("indirect hot with no targets")
	}
	ind.observe(true, true, 7)
	ind.observe(true, true, 9)
	ind.observe(true, true, 9)
	if _, tgt, ok := ind.hot(ret); !ok || tgt != 9 {
		t.Errorf("indirect hot = %d, %v", tgt, ok)
	}
}

func TestBOASelectsMajorityPath(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	b := NewBOA(DefaultParams())
	b.threshold = 3
	// Drive the loop A-B-C with the conditional at 1 mostly not taken.
	iteration := func() {
		b.Transfer(env, Event{Src: 1, Tgt: 2, Taken: false})
		b.Transfer(env, Event{Src: 3, Tgt: 4, Taken: true, Kind: 0})
		b.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	}
	for i := 0; i < 3; i++ {
		iteration()
	}
	if env.cache.NumRegions() != 1 {
		t.Fatalf("regions = %d", env.cache.NumRegions())
	}
	r := env.cache.Regions()[0]
	if r.Entry != 0 || !r.Cyclic || len(r.Blocks) != 3 {
		t.Errorf("region = entry %d cyclic %v blocks %+v", r.Entry, r.Cyclic, r.Blocks)
	}
	if b.Name() != "boa" {
		t.Error("name")
	}
	if b.Stats().CountersHighWater == 0 {
		t.Error("BOA must account per-branch counters")
	}
}

func TestBOAStopsAtUnprofiledBranch(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	b := NewBOA(DefaultParams())
	b.threshold = 1
	// Only the backward branch observed: the trace walk from 0 stops at
	// the unprofiled conditional ending block A.
	b.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	if env.cache.NumRegions() != 1 {
		t.Fatalf("regions = %d", env.cache.NumRegions())
	}
	r := env.cache.Regions()[0]
	if len(r.Blocks) != 1 || r.Blocks[0].Start != 0 {
		t.Errorf("blocks = %+v", r.Blocks)
	}
}

func TestWRSSamplesAndInstruments(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	w := NewWRS(DefaultParams())
	w.SamplePeriod = 2
	w.SampleThreshold = 2
	w.InstrumentExecs = 3
	iteration := func() {
		w.Transfer(env, Event{Src: 1, Tgt: 2, Taken: false})
		w.Transfer(env, Event{Src: 3, Tgt: 4, Taken: true})
		w.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	}
	for i := 0; i < 20 && env.cache.NumRegions() == 0; i++ {
		iteration()
	}
	if env.cache.NumRegions() == 0 {
		t.Fatal("WRS never selected")
	}
	r := env.cache.Regions()[0]
	if r.Entry != 0 && r.Entry != 4 {
		t.Errorf("unexpected entry %d", r.Entry)
	}
	if w.Name() != "wrs" {
		t.Error("name")
	}
	// The instrumented trace follows observed outcomes: from 0, the
	// conditional at 1 was always not-taken, so the trace spans the cycle.
	if r.Entry == 0 && !r.Cyclic {
		t.Error("instrumented trace from 0 should span the loop")
	}
}

func TestWRSIgnoresCachedTargets(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	w := NewWRS(DefaultParams())
	w.SamplePeriod = 1
	w.SampleThreshold = 1
	// Pre-cache entry 0: samples of it must not start instrumentation.
	if _, err := env.cache.Insert(codecacheSpec(p, 0)); err != nil {
		t.Fatal(err)
	}
	w.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true, ToCache: true})
	if len(w.active) != 0 {
		t.Error("cached target instrumented")
	}
}
