package core

import (
	"errors"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/profile"
)

// NET implements Next-Executing Tail trace selection, the mechanism used by
// Dynamo, DynamoRIO, and Mojo and the paper's baseline (§2.1).
//
// NET associates an execution counter with the target of every taken
// backward branch and with every target of an exit from an existing trace.
// When a counter reaches the threshold (50), the counter is recycled and
// the path executed next is recorded as a trace.
type NET struct {
	params   Params
	counters *profile.CounterPool
	// recording holds the active tail recorder for each head address, as a
	// dense address-indexed slice (nil = not recording) so the per-transfer
	// "is this head already recording?" test in bump never hashes. Multiple
	// heads can record concurrently when a second target reaches its
	// threshold while an earlier recording is still extending; nRecording
	// counts them and order preserves deterministic iteration.
	recording  []*tailRecorder
	nRecording int
	order      []isa.Addr // deterministic iteration order for recording

	// exitThreshold optionally gives exit-stub targets a lower threshold
	// than backward-branch targets, the Mojo variant discussed in §5.
	// Zero means "same as NETThreshold".
	//lint:keep variant configuration, fixed at construction (Reset keeps the variant)
	exitThreshold int
	exitTargets   []bool // dense address-indexed; nil unless the Mojo variant
	//lint:keep variant identity, fixed at construction (NewNET vs NewMojoNET)
	mojo bool

	pool recorderPool
}

// NewNET returns a NET selector with the given parameters.
func NewNET(params Params) *NET {
	return &NET{
		params:   params.withDefaults(),
		counters: profile.NewCounterPool(),
	}
}

// NewMojoNET returns the Mojo variant of NET (§5): backward-branch targets
// use the standard threshold while trace-exit targets use the lower
// exitThreshold, reducing the delay before a related trace is selected.
func NewMojoNET(params Params, exitThreshold int) *NET {
	n := NewNET(params)
	n.exitThreshold = exitThreshold
	n.mojo = true
	return n
}

// Preallocate implements Preallocator: all dense tables are sized to cover
// the program's address space up front, so steady-state profiling never
// grows them.
func (n *NET) Preallocate(addrSpace int) {
	n.counters.EnsureCap(addrSpace)
	if len(n.recording) < addrSpace {
		grown := make([]*tailRecorder, addrSpace)
		copy(grown, n.recording)
		n.recording = grown
	}
	if n.mojo && len(n.exitTargets) < addrSpace {
		grown := make([]bool, addrSpace)
		copy(grown, n.exitTargets)
		n.exitTargets = grown
	}
}

// recorderAt returns the active recorder for head, or nil.
func (n *NET) recorderAt(head isa.Addr) *tailRecorder {
	if int(head) >= len(n.recording) {
		return nil
	}
	return n.recording[head]
}

// setRecorder installs (or, with nil, clears) the recorder for head.
func (n *NET) setRecorder(head isa.Addr, r *tailRecorder) {
	if int(head) >= len(n.recording) {
		grown := make([]*tailRecorder, int(head)+1)
		copy(grown, n.recording)
		n.recording = grown
	}
	n.recording[head] = r
}

// Name implements Selector.
func (n *NET) Name() string {
	if n.exitThreshold > 0 {
		return "mojo-net"
	}
	return "net"
}

// Transfer implements Selector.
//
//lint:hotpath per-interpreted-taken-branch
func (n *NET) Transfer(env Env, ev Event) {
	n.feedRecorders(env, ev)
	if !ev.Taken || ev.ToCache {
		return
	}
	if ev.Backward() {
		n.bump(env, ev.Tgt)
	}
}

// CacheExit implements Selector. The target of a trace exit is allowed to
// begin a trace, so each exit to the interpreter counts an execution of its
// target.
//
//lint:hotpath per-cache-exit
func (n *NET) CacheExit(env Env, _, tgt isa.Addr) {
	if n.mojo {
		n.setExitTarget(tgt, true)
	}
	n.bump(env, tgt)
}

func (n *NET) setExitTarget(tgt isa.Addr, v bool) {
	if int(tgt) >= len(n.exitTargets) {
		if !v {
			return
		}
		grown := make([]bool, int(tgt)+1)
		copy(grown, n.exitTargets)
		n.exitTargets = grown
	}
	n.exitTargets[tgt] = v
}

func (n *NET) threshold(addr isa.Addr) int {
	if n.exitThreshold > 0 && int(addr) < len(n.exitTargets) && n.exitTargets[addr] {
		return n.exitThreshold
	}
	return n.params.NETThreshold
}

func (n *NET) bump(env Env, tgt isa.Addr) {
	if n.recorderAt(tgt) != nil {
		return
	}
	// The event that completes a recording can itself target the freshly
	// inserted trace head (a cyclic trace closed by this very branch);
	// control jumps into the cache rather than being profiled.
	if env.Cache().HasEntry(tgt) {
		return
	}
	if n.counters.Incr(tgt) < n.threshold(tgt) {
		return
	}
	n.counters.Release(tgt)
	if n.mojo {
		n.setExitTarget(tgt, false)
	}
	rec := n.pool.get(env.Program(), tgt, n.params.MaxTraceInstrs, n.params.MaxTraceBlocks)
	rec.crossBackward = n.params.AblateNETBackwardStop
	n.setRecorder(tgt, rec)
	n.nRecording++
	n.order = append(n.order, tgt)
}

// feedRecorders advances every active recording and promotes completed
// traces to the code cache.
func (n *NET) feedRecorders(env Env, ev Event) {
	if n.nRecording == 0 {
		return
	}
	kept := n.order[:0]
	for _, head := range n.order {
		r := n.recording[head]
		if !r.feed(ev) {
			kept = append(kept, head)
			continue
		}
		n.recording[head] = nil
		n.nRecording--
		n.insert(env, r.spec())
		n.pool.put(r) // Insert copied the blocks; the recorder is free
	}
	n.order = kept
}

// Reset implements Resettable: it re-arms the selector for a fresh run with
// new parameters, recycling in-flight recorders and keeping every allocated
// table (counters, dense recording slice, exit-target bits).
func (n *NET) Reset(params Params) {
	n.params = params.withDefaults()
	n.counters.Reset()
	for _, head := range n.order {
		if r := n.recording[head]; r != nil {
			n.recording[head] = nil
			n.pool.put(r)
		}
	}
	n.order = n.order[:0]
	n.nRecording = 0
	if n.mojo {
		clear(n.exitTargets)
	}
}

func (n *NET) insert(env Env, spec codecache.Spec) {
	if env.Cache().HasEntry(spec.Entry) {
		// Another recording created a region here first; drop this one.
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("net: inserting trace"), err))
	}
}

// Stats implements Selector.
func (n *NET) Stats() ProfileStats {
	return ProfileStats{
		CountersHighWater: n.counters.HighWater(),
		CounterAllocs:     n.counters.Allocations(),
	}
}
