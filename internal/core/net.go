package core

import (
	"errors"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/profile"
)

// NET implements Next-Executing Tail trace selection, the mechanism used by
// Dynamo, DynamoRIO, and Mojo and the paper's baseline (§2.1).
//
// NET associates an execution counter with the target of every taken
// backward branch and with every target of an exit from an existing trace.
// When a counter reaches the threshold (50), the counter is recycled and
// the path executed next is recorded as a trace.
type NET struct {
	params   Params
	counters *profile.CounterPool
	// recording maps a head address to its active tail recorder. Multiple
	// heads can record concurrently when a second target reaches its
	// threshold while an earlier recording is still extending.
	recording map[isa.Addr]*tailRecorder
	order     []isa.Addr // deterministic iteration order for recording

	// exitThreshold optionally gives exit-stub targets a lower threshold
	// than backward-branch targets, the Mojo variant discussed in §5.
	// Zero means "same as NETThreshold".
	exitThreshold int
	exitTargets   map[isa.Addr]bool
}

// NewNET returns a NET selector with the given parameters.
func NewNET(params Params) *NET {
	return &NET{
		params:    params.withDefaults(),
		counters:  profile.NewCounterPool(),
		recording: make(map[isa.Addr]*tailRecorder),
	}
}

// NewMojoNET returns the Mojo variant of NET (§5): backward-branch targets
// use the standard threshold while trace-exit targets use the lower
// exitThreshold, reducing the delay before a related trace is selected.
func NewMojoNET(params Params, exitThreshold int) *NET {
	n := NewNET(params)
	n.exitThreshold = exitThreshold
	n.exitTargets = make(map[isa.Addr]bool)
	return n
}

// Name implements Selector.
func (n *NET) Name() string {
	if n.exitThreshold > 0 {
		return "mojo-net"
	}
	return "net"
}

// Transfer implements Selector.
func (n *NET) Transfer(env Env, ev Event) {
	n.feedRecorders(env, ev)
	if !ev.Taken || ev.ToCache {
		return
	}
	if ev.Backward() {
		n.bump(env, ev.Tgt)
	}
}

// CacheExit implements Selector. The target of a trace exit is allowed to
// begin a trace, so each exit to the interpreter counts an execution of its
// target.
func (n *NET) CacheExit(env Env, _, tgt isa.Addr) {
	if n.exitTargets != nil {
		n.exitTargets[tgt] = true
	}
	n.bump(env, tgt)
}

func (n *NET) threshold(addr isa.Addr) int {
	if n.exitThreshold > 0 && n.exitTargets[addr] {
		return n.exitThreshold
	}
	return n.params.NETThreshold
}

func (n *NET) bump(env Env, tgt isa.Addr) {
	if _, active := n.recording[tgt]; active {
		return
	}
	// The event that completes a recording can itself target the freshly
	// inserted trace head (a cyclic trace closed by this very branch);
	// control jumps into the cache rather than being profiled.
	if env.Cache().HasEntry(tgt) {
		return
	}
	if n.counters.Incr(tgt) < n.threshold(tgt) {
		return
	}
	n.counters.Release(tgt)
	if n.exitTargets != nil {
		delete(n.exitTargets, tgt)
	}
	rec := newTailRecorder(env.Program(), tgt, n.params.MaxTraceInstrs, n.params.MaxTraceBlocks)
	rec.crossBackward = n.params.AblateNETBackwardStop
	n.recording[tgt] = rec
	n.order = append(n.order, tgt)
}

// feedRecorders advances every active recording and promotes completed
// traces to the code cache.
func (n *NET) feedRecorders(env Env, ev Event) {
	if len(n.recording) == 0 {
		return
	}
	kept := n.order[:0]
	for _, head := range n.order {
		r := n.recording[head]
		if !r.feed(ev) {
			kept = append(kept, head)
			continue
		}
		delete(n.recording, head)
		n.insert(env, r.spec())
	}
	n.order = kept
}

func (n *NET) insert(env Env, spec codecache.Spec) {
	if env.Cache().HasEntry(spec.Entry) {
		// Another recording created a region here first; drop this one.
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("net: inserting trace"), err))
	}
}

// Stats implements Selector.
func (n *NET) Stats() ProfileStats {
	return ProfileStats{
		CountersHighWater: n.counters.HighWater(),
		CounterAllocs:     n.counters.Allocations(),
	}
}
