package core

import (
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// RegionCFG is the control-flow graph built from a set of observed traces
// (paper §4.2.2). It represents only the branches actually taken in an
// observed trace: control exits the region if any other target is taken,
// so nothing more is needed. Each block carries the number of observed
// traces containing it; blocks reaching the T_min occurrence threshold are
// marked, marks are propagated backward along rejoining paths (Figure 15),
// and the unmarked remainder is removed before the region is promoted.
type RegionCFG struct {
	entry  isa.Addr
	starts []isa.Addr       // insertion-ordered block starts; starts[0] == entry
	index  map[isa.Addr]int // start -> node id
	lens   []int
	succs  [][]int
	count  []int // number of observed traces containing the block
	marked []bool
}

// NewRegionCFG returns an empty CFG for a region entered at entry.
func NewRegionCFG(entry isa.Addr) *RegionCFG {
	return &RegionCFG{entry: entry, index: make(map[isa.Addr]int)}
}

// NumBlocks returns the number of blocks currently in the CFG.
func (g *RegionCFG) NumBlocks() int { return len(g.starts) }

// Count returns the observed-trace occurrence count of the block at start,
// or 0 when the block is absent.
func (g *RegionCFG) Count(start isa.Addr) int {
	i, ok := g.index[start]
	if !ok {
		return 0
	}
	return g.count[i]
}

// Marked reports whether the block at start is currently marked.
func (g *RegionCFG) Marked(start isa.Addr) bool {
	i, ok := g.index[start]
	return ok && g.marked[i]
}

func (g *RegionCFG) node(start isa.Addr, length int) int {
	if i, ok := g.index[start]; ok {
		return i
	}
	i := len(g.starts)
	g.index[start] = i
	g.starts = append(g.starts, start)
	g.lens = append(g.lens, length)
	g.succs = append(g.succs, nil)
	g.count = append(g.count, 0)
	g.marked = append(g.marked, false)
	return i
}

func (g *RegionCFG) addEdge(from, to int) {
	for _, s := range g.succs[from] {
		if s == to {
			return
		}
	}
	g.succs[from] = append(g.succs[from], to)
}

// AddTrace merges one observed trace — a block path starting at the
// region's entry — into the CFG, incrementing each distinct block's
// occurrence count once. When the trace ended with a taken branch, closing
// is that branch's target: if it names a block already in the CFG, the
// transfer becomes an edge (this is how a cyclic observed trace records its
// back edge, §4.2.2); otherwise the transfer left the observed region and
// is not an edge. Pass hasClosing=false when the trace ended by falling
// off its last block.
func (g *RegionCFG) AddTrace(blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool) error {
	if len(blocks) == 0 {
		return fmt.Errorf("core: empty observed trace")
	}
	if blocks[0].Start != g.entry {
		return fmt.Errorf("core: observed trace starts at %d, region entry is %d", blocks[0].Start, g.entry)
	}
	seen := make(map[int]bool, len(blocks))
	prev := -1
	for _, b := range blocks {
		id := g.node(b.Start, b.Len)
		if !seen[id] {
			seen[id] = true
			g.count[id]++
		}
		if prev >= 0 {
			g.addEdge(prev, id)
		}
		prev = id
	}
	if hasClosing {
		if to, ok := g.index[closing]; ok {
			g.addEdge(prev, to)
		}
	}
	return nil
}

// MarkFrequent marks every block that appears in at least tmin observed
// traces (Figure 13, line 13). The entry block is always marked: all
// observed traces begin there, so its count equals the number of traces.
func (g *RegionCFG) MarkFrequent(tmin int) {
	for i := range g.marked {
		g.marked[i] = g.count[i] >= tmin
	}
	if len(g.marked) > 0 {
		g.marked[0] = true
	}
}

// MarkRejoiningPaths propagates marks backward along every path: a block
// with a marked successor is marked (paper Figure 15). Blocks are visited
// in post order so marks flow through multiple blocks per iteration; the
// loop repeats until an iteration marks nothing, which in practice almost
// always means a single extra pass (§4.2.3). It returns the number of
// iterations that marked at least one block, for the paper's observation
// that roughly 0.1% of regions need a second pass.
func (g *RegionCFG) MarkRejoiningPaths() int {
	order := g.postOrder()
	markingIters := 0
	for {
		markedAny := false
		for _, i := range order {
			if g.marked[i] {
				continue
			}
			for _, s := range g.succs[i] {
				if g.marked[s] {
					g.marked[i] = true
					markedAny = true
					break
				}
			}
		}
		if !markedAny {
			return markingIters
		}
		markingIters++
	}
}

// postOrder returns a depth-first post order from the entry. Successors are
// visited in edge-insertion order, which is deterministic.
func (g *RegionCFG) postOrder() []int {
	visited := make([]bool, len(g.starts))
	order := make([]int, 0, len(g.starts))
	var dfs func(int)
	dfs = func(i int) {
		visited[i] = true
		for _, s := range g.succs[i] {
			if !visited[s] {
				dfs(s)
			}
		}
		order = append(order, i)
	}
	if len(g.starts) > 0 {
		dfs(0)
	}
	// Nodes unreachable from the entry cannot exist (every trace starts at
	// the entry), but stay safe.
	for i := range g.starts {
		if !visited[i] {
			order = append(order, i)
		}
	}
	return order
}

// BuildSpec removes all unmarked blocks (Figure 13, line 15), converts any
// exit that targets a remaining block into an internal edge (line 16), and
// returns the multipath region specification. ok is false when nothing
// beyond an empty region remains, which cannot happen after MarkFrequent
// (the entry is always marked) but is reported rather than trusted.
func (g *RegionCFG) BuildSpec(p *program.Program) (spec codecache.Spec, ok bool) {
	remap := make([]int, len(g.starts))
	var blocks []codecache.BlockSpec
	for i, start := range g.starts {
		if !g.marked[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(blocks)
		blocks = append(blocks, codecache.BlockSpec{Start: start, Len: g.lens[i]})
	}
	if len(blocks) == 0 {
		return codecache.Spec{}, false
	}
	succs := make([][]int, len(blocks))
	memberIdx := make(map[isa.Addr]int, len(blocks))
	for i, b := range blocks {
		memberIdx[b.Start] = i
	}
	addSucc := func(from, to int) {
		for _, s := range succs[from] {
			if s == to {
				return
			}
		}
		succs[from] = append(succs[from], to)
	}
	// Observed edges between marked blocks survive.
	for i := range g.starts {
		if remap[i] < 0 {
			continue
		}
		for _, s := range g.succs[i] {
			if remap[s] >= 0 {
				addSucc(remap[i], remap[s])
			}
		}
	}
	// Figure 13 line 16: any exit whose target is a member block becomes a
	// direct edge, so control stays in the region and no stub is needed.
	for i, b := range blocks {
		end := b.Start + isa.Addr(b.Len)
		last := p.At(end - 1)
		if last.Op == isa.Br || last.Op == isa.Jmp || last.Op == isa.Call {
			if to, in := memberIdx[last.Target]; in {
				addSucc(i, to)
			}
		}
		if !last.EndsBlock() || last.Op == isa.Br {
			if to, in := memberIdx[end]; in {
				addSucc(i, to)
			}
		}
	}
	return codecache.Spec{
		Entry:  g.entry,
		Kind:   codecache.KindMultipath,
		Blocks: blocks,
		Succs:  succs,
	}, true
}
