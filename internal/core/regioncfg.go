package core

import (
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// RegionCFG is the control-flow graph built from a set of observed traces
// (paper §4.2.2). It represents only the branches actually taken in an
// observed trace: control exits the region if any other target is taken,
// so nothing more is needed. Each block carries the number of observed
// traces containing it; blocks reaching the T_min occurrence threshold are
// marked, marks are propagated backward along rejoining paths (Figure 15),
// and the unmarked remainder is removed before the region is promoted.
//
// A RegionCFG is pooled: the Combiner keeps one and re-arms it with Reset
// for every combination, so all tables below are grow-only. The start index
// is a dense isa.Addr-indexed table cleared by walking the node list (the
// same touched-list trick as leiScratch), not a map.
type RegionCFG struct {
	entry  isa.Addr
	starts []isa.Addr // insertion-ordered block starts; starts[0] == entry
	idx    []int32    // dense start -> node id + 1; 0 = absent
	lens   []int
	succs  [][]int
	count  []int // number of observed traces containing the block
	marked []bool

	// seenIn[id] == traceEpoch when the current AddTrace already counted the
	// block, so a trace revisiting a block increments count once. The epoch
	// bump replaces a per-trace set without any clearing.
	seenIn     []uint32
	traceEpoch uint32

	// DFS and spec-building scratch, re-armed at each use.
	//lint:keep self-cleaning scratch, postOrder re-arms it at each use
	poVisited []bool
	//lint:keep self-cleaning scratch, postOrder re-arms it at each use
	poOrder []int
	//lint:keep self-cleaning scratch, postOrder re-arms it at each use
	poStack []cfgFrame
	//lint:keep self-cleaning scratch, BuildSpec re-arms it at each use
	remap []int
	//lint:keep self-cleaning scratch, BuildSpec re-arms it at each use
	specBlocks []codecache.BlockSpec
	//lint:keep self-cleaning scratch, BuildSpec re-arms it at each use
	specSuccs [][]int
}

// cfgFrame is one explicit DFS stack frame in postOrder.
type cfgFrame struct {
	node, next int
}

// NewRegionCFG returns an empty CFG for a region entered at entry.
func NewRegionCFG(entry isa.Addr) *RegionCFG {
	return &RegionCFG{entry: entry}
}

// Reset re-arms the CFG for a new region entered at entry, keeping every
// allocated table: the dense start index is cleared by walking the previous
// node list, the outer successor slice keeps its recycled inner headers, and
// the scratch slices keep their backing arrays.
//
//lint:hotpath per-combination CFG reuse
func (g *RegionCFG) Reset(entry isa.Addr) {
	for _, s := range g.starts {
		g.idx[s] = 0
	}
	g.entry = entry
	g.starts = g.starts[:0]
	g.lens = g.lens[:0]
	g.succs = g.succs[:0]
	g.count = g.count[:0]
	g.marked = g.marked[:0]
	g.seenIn = g.seenIn[:0]
	g.traceEpoch = 0
}

// NumBlocks returns the number of blocks currently in the CFG.
//
//lint:hotpath called during region combination
func (g *RegionCFG) NumBlocks() int { return len(g.starts) }

// lookup returns the node id of the block starting at start.
func (g *RegionCFG) lookup(start isa.Addr) (int, bool) {
	if int(start) >= len(g.idx) {
		return 0, false
	}
	if i := g.idx[start]; i != 0 {
		return int(i - 1), true
	}
	return 0, false
}

// Count returns the observed-trace occurrence count of the block at start,
// or 0 when the block is absent.
func (g *RegionCFG) Count(start isa.Addr) int {
	i, ok := g.lookup(start)
	if !ok {
		return 0
	}
	return g.count[i]
}

// Marked reports whether the block at start is currently marked.
func (g *RegionCFG) Marked(start isa.Addr) bool {
	i, ok := g.lookup(start)
	return ok && g.marked[i]
}

func (g *RegionCFG) node(start isa.Addr, length int) int {
	if i, ok := g.lookup(start); ok {
		return i
	}
	if int(start) >= len(g.idx) {
		grown := make([]int32, int(start)+1)
		copy(grown, g.idx)
		g.idx = grown
	}
	i := len(g.starts)
	g.idx[start] = int32(i + 1)
	g.starts = append(g.starts, start)
	g.lens = append(g.lens, length)
	if len(g.succs) < cap(g.succs) {
		// Reclaim the recycled inner edge list rather than clobbering it
		// with a nil header.
		g.succs = g.succs[:i+1]
		g.succs[i] = g.succs[i][:0]
	} else {
		g.succs = append(g.succs, nil)
	}
	g.count = append(g.count, 0)
	g.marked = append(g.marked, false)
	g.seenIn = append(g.seenIn, 0)
	return i
}

func (g *RegionCFG) addEdge(from, to int) {
	for _, s := range g.succs[from] {
		if s == to {
			return
		}
	}
	g.succs[from] = append(g.succs[from], to)
}

// AddTrace merges one observed trace — a block path starting at the
// region's entry — into the CFG, incrementing each distinct block's
// occurrence count once. When the trace ended with a taken branch, closing
// is that branch's target: if it names a block already in the CFG, the
// transfer becomes an edge (this is how a cyclic observed trace records its
// back edge, §4.2.2); otherwise the transfer left the observed region and
// is not an edge. Pass hasClosing=false when the trace ended by falling
// off its last block.
//
//lint:hotpath per-observed-trace merge during region combination
func (g *RegionCFG) AddTrace(blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool) error {
	if len(blocks) == 0 {
		return fmt.Errorf("core: empty observed trace")
	}
	if blocks[0].Start != g.entry {
		return fmt.Errorf("core: observed trace starts at %d, region entry is %d", blocks[0].Start, g.entry)
	}
	g.traceEpoch++
	prev := -1
	for _, b := range blocks {
		id := g.node(b.Start, b.Len)
		if g.seenIn[id] != g.traceEpoch {
			g.seenIn[id] = g.traceEpoch
			g.count[id]++
		}
		if prev >= 0 {
			g.addEdge(prev, id)
		}
		prev = id
	}
	if hasClosing {
		if to, ok := g.lookup(closing); ok {
			g.addEdge(prev, to)
		}
	}
	return nil
}

// MarkFrequent marks every block that appears in at least tmin observed
// traces (Figure 13, line 13). The entry block is always marked: all
// observed traces begin there, so its count equals the number of traces.
//
//lint:hotpath per-combination marking pass
func (g *RegionCFG) MarkFrequent(tmin int) {
	for i := range g.marked {
		g.marked[i] = g.count[i] >= tmin
	}
	if len(g.marked) > 0 {
		g.marked[0] = true
	}
}

// MarkRejoiningPaths propagates marks backward along every path: a block
// with a marked successor is marked (paper Figure 15). Blocks are visited
// in post order so marks flow through multiple blocks per iteration; the
// loop repeats until an iteration marks nothing, which in practice almost
// always means a single extra pass (§4.2.3). It returns the number of
// iterations that marked at least one block, for the paper's observation
// that roughly 0.1% of regions need a second pass.
//
//lint:hotpath per-combination rejoin propagation
func (g *RegionCFG) MarkRejoiningPaths() int {
	order := g.postOrder()
	markingIters := 0
	for {
		markedAny := false
		for _, i := range order {
			if g.marked[i] {
				continue
			}
			for _, s := range g.succs[i] {
				if g.marked[s] {
					g.marked[i] = true
					markedAny = true
					break
				}
			}
		}
		if !markedAny {
			return markingIters
		}
		markingIters++
	}
}

// postOrder returns a depth-first post order from the entry, held in the
// poOrder scratch. Successors are visited in edge-insertion order on an
// explicit frame stack, reproducing the recursive formulation's order
// exactly (a frame's cursor only advances after the pushed subtree has
// completed).
func (g *RegionCFG) postOrder() []int {
	n := len(g.starts)
	if cap(g.poVisited) < n {
		g.poVisited = make([]bool, n)
	} else {
		g.poVisited = g.poVisited[:n]
		clear(g.poVisited)
	}
	order := g.poOrder[:0]
	stack := g.poStack[:0]
	if n > 0 {
		g.poVisited[0] = true
		stack = append(stack, cfgFrame{})
	}
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(g.succs[top.node]) {
			s := g.succs[top.node][top.next]
			top.next++
			if !g.poVisited[s] {
				g.poVisited[s] = true
				stack = append(stack, cfgFrame{node: s})
			}
			continue
		}
		order = append(order, top.node)
		stack = stack[:len(stack)-1]
	}
	// Nodes unreachable from the entry cannot exist (every trace starts at
	// the entry), but stay safe.
	for i := range g.starts {
		if !g.poVisited[i] {
			order = append(order, i)
		}
	}
	g.poOrder = order
	g.poStack = stack
	return order
}

// BuildSpec removes all unmarked blocks (Figure 13, line 15), converts any
// exit that targets a remaining block into an internal edge (line 16), and
// returns the multipath region specification. ok is false when nothing
// beyond an empty region remains, which cannot happen after MarkFrequent
// (the entry is always marked) but is reported rather than trusted.
//
// The returned spec's Blocks and Succs alias the CFG's scratch and are
// valid until the next BuildSpec; codecache.Insert copies both.
//
//lint:hotpath per-combination spec construction
func (g *RegionCFG) BuildSpec(p *program.Program) (spec codecache.Spec, ok bool) {
	n := len(g.starts)
	if cap(g.remap) < n {
		g.remap = make([]int, n)
	} else {
		g.remap = g.remap[:n]
	}
	remap := g.remap
	blocks := g.specBlocks[:0]
	for i, start := range g.starts {
		if !g.marked[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(blocks)
		blocks = append(blocks, codecache.BlockSpec{Start: start, Len: g.lens[i]})
	}
	g.specBlocks = blocks
	if len(blocks) == 0 {
		return codecache.Spec{}, false
	}
	nb := len(blocks)
	if cap(g.specSuccs) >= nb {
		g.specSuccs = g.specSuccs[:nb]
	} else {
		g.specSuccs = append(g.specSuccs[:cap(g.specSuccs)], make([][]int, nb-cap(g.specSuccs))...)
	}
	for i := range g.specSuccs {
		g.specSuccs[i] = g.specSuccs[i][:0]
	}
	// Observed edges between marked blocks survive.
	for i := range g.starts {
		if remap[i] < 0 {
			continue
		}
		for _, s := range g.succs[i] {
			if remap[s] >= 0 {
				g.addSpecSucc(remap[i], remap[s])
			}
		}
	}
	// Figure 13 line 16: any exit whose target is a member block becomes a
	// direct edge, so control stays in the region and no stub is needed.
	for i, b := range blocks {
		end := b.Start + isa.Addr(b.Len)
		last := p.At(end - 1)
		if last.Op == isa.Br || last.Op == isa.Jmp || last.Op == isa.Call {
			if j, in := g.lookup(last.Target); in && remap[j] >= 0 {
				g.addSpecSucc(i, remap[j])
			}
		}
		if !last.EndsBlock() || last.Op == isa.Br {
			if j, in := g.lookup(end); in && remap[j] >= 0 {
				g.addSpecSucc(i, remap[j])
			}
		}
	}
	return codecache.Spec{
		Entry:  g.entry,
		Kind:   codecache.KindMultipath,
		Blocks: blocks,
		Succs:  g.specSuccs,
	}, true
}

// addSpecSucc records an edge in the spec under construction, deduplicating
// against the edges already present.
func (g *RegionCFG) addSpecSucc(from, to int) {
	for _, s := range g.specSuccs[from] {
		if s == to {
			return
		}
	}
	g.specSuccs[from] = append(g.specSuccs[from], to)
}
