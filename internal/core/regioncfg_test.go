package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// cfgProgram for region-CFG tests (the Figure 4 shape):
//
//	0: movi r1, 1       A  [0..1]   (cond to C)
//	1: beq r1, r0, 4
//	2: nop              B  [2..3]
//	3: jmp 5
//	4: nop              C  [4]      (falls into D)
//	5: addi r2, r2, 1   D  [5..6]   (cond to F)
//	6: bgt r2, r0, 8
//	7: nop              E  [7]      (falls into G)
//	8: nop              F  [8..9]
//	9: jmp 10
//	10: halt            G  [10]
func cfgProgram(t *testing.T) *program.Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 1},
		{Op: isa.Br, Cond: isa.CondEq, SrcA: 1, SrcB: 0, Target: 4},
		{Op: isa.Nop},
		{Op: isa.Jmp, Target: 5},
		{Op: isa.Nop},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: 1},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 2, SrcB: 0, Target: 8},
		{Op: isa.Nop},
		{Op: isa.Nop},
		{Op: isa.Jmp, Target: 10},
		{Op: isa.Halt},
	}
	p, err := program.New(ins, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bs(p *program.Program, starts ...isa.Addr) []codecache.BlockSpec {
	out := make([]codecache.BlockSpec, len(starts))
	for i, s := range starts {
		out[i] = codecache.BlockSpec{Start: s, Len: p.BlockLen(s)}
	}
	return out
}

func TestRegionCFGCountsAndEdges(t *testing.T) {
	p := cfgProgram(t)
	g := NewRegionCFG(0)
	// Ten observed traces: 6 take A-B-D-F-G, 4 take A-C-D-F-G.
	for i := 0; i < 6; i++ {
		if err := g.AddTrace(bs(p, 0, 2, 5, 8, 10), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := g.AddTrace(bs(p, 0, 4, 5, 8, 10), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumBlocks() != 6 {
		t.Errorf("NumBlocks = %d, want 6", g.NumBlocks())
	}
	for start, want := range map[isa.Addr]int{0: 10, 2: 6, 4: 4, 5: 10, 8: 10, 10: 10} {
		if got := g.Count(start); got != want {
			t.Errorf("Count(%d) = %d, want %d", start, got, want)
		}
	}
	g.MarkFrequent(5)
	// Blocks in >=5 traces: A, B, D, F, G — not C.
	if g.Marked(4) {
		t.Error("C marked before rejoin propagation")
	}
	iters := g.MarkRejoiningPaths()
	if !g.Marked(4) {
		t.Error("C is on a rejoining path and must be marked")
	}
	if iters > 1 {
		t.Errorf("marking took %d iterations; post-order should need at most 1", iters)
	}
	spec, ok := g.BuildSpec(p)
	if !ok {
		t.Fatal("BuildSpec failed")
	}
	if spec.Kind != codecache.KindMultipath || spec.Entry != 0 || len(spec.Blocks) != 6 {
		t.Fatalf("spec = %+v", spec)
	}
	// A must have both successors (split), and both arms rejoin at D.
	idx := map[isa.Addr]int{}
	for i, b := range spec.Blocks {
		idx[b.Start] = i
	}
	hasEdge := func(from, to isa.Addr) bool {
		for _, s := range spec.Succs[idx[from]] {
			if spec.Blocks[s].Start == to {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]isa.Addr{{0, 2}, {0, 4}, {2, 5}, {4, 5}, {5, 8}, {8, 10}} {
		if !hasEdge(e[0], e[1]) {
			t.Errorf("missing edge %d -> %d", e[0], e[1])
		}
	}
}

func TestRegionCFGDominantPathStaysTrace(t *testing.T) {
	p := cfgProgram(t)
	g := NewRegionCFG(0)
	for i := 0; i < 15; i++ {
		if err := g.AddTrace(bs(p, 0, 2, 5, 8, 10), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	g.MarkFrequent(5)
	g.MarkRejoiningPaths()
	spec, ok := g.BuildSpec(p)
	if !ok {
		t.Fatal("BuildSpec failed")
	}
	// Single dominant path: the region is exactly that path (paper §4.2:
	// combination allows multiple paths without requiring them).
	if len(spec.Blocks) != 5 {
		t.Errorf("blocks = %+v", spec.Blocks)
	}
	for i, ss := range spec.Succs {
		if i < len(spec.Succs)-1 && len(ss) != 1 {
			t.Errorf("block %d has %d successors on a single path", i, len(ss))
		}
	}
}

func TestRegionCFGInfrequentTailDropped(t *testing.T) {
	p := cfgProgram(t)
	g := NewRegionCFG(0)
	// Path through C only twice, and C's variant additionally ends early
	// (no rejoin): A-C alone so C has nothing marked downstream.
	for i := 0; i < 8; i++ {
		if err := g.AddTrace(bs(p, 0, 2, 5, 8), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := g.AddTrace(bs(p, 0, 4), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	g.MarkFrequent(5)
	g.MarkRejoiningPaths()
	spec, ok := g.BuildSpec(p)
	if !ok {
		t.Fatal("BuildSpec failed")
	}
	for _, b := range spec.Blocks {
		if b.Start == 4 {
			t.Error("infrequent non-rejoining block C was selected")
		}
	}
	// But a static exit that targets a member block becomes an edge
	// (Figure 13 line 16): A's conditional to C is NOT internal (C is
	// dropped), while D's conditional to F is.
	if len(spec.Blocks) != 4 {
		t.Errorf("blocks = %+v", spec.Blocks)
	}
}

func TestRegionCFGLine16EdgeRecovery(t *testing.T) {
	p := cfgProgram(t)
	g := NewRegionCFG(5)
	// Observed traces only walk D-F, plus separately D-E-G... E rejoins G
	// which is reached from F too. Construct: 6x D-F-G and 4x D-E-G.
	for i := 0; i < 6; i++ {
		if err := g.AddTrace(bs(p, 5, 8, 10), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := g.AddTrace(bs(p, 5, 7, 10), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	g.MarkFrequent(5)
	g.MarkRejoiningPaths()
	spec, ok := g.BuildSpec(p)
	if !ok {
		t.Fatal("BuildSpec failed")
	}
	// E (7) is kept as a rejoining path; the fall-through exit F->? and
	// E->F static fall-through (E at 7 falls into F at 8) becomes an edge
	// even though no observed trace took it.
	idx := map[isa.Addr]int{}
	for i, b := range spec.Blocks {
		idx[b.Start] = i
	}
	eIdx, ok2 := idx[7]
	if !ok2 {
		t.Fatal("E dropped")
	}
	foundF := false
	for _, s := range spec.Succs[eIdx] {
		if spec.Blocks[s].Start == 8 {
			foundF = true
		}
	}
	if !foundF {
		t.Error("line-16 edge E->F (static fall-through to a member) missing")
	}
}

func TestMarkRejoiningPathsProperties(t *testing.T) {
	// Property: after MarkFrequent + MarkRejoiningPaths, a block is marked
	// iff some marked-frequent block is reachable from it (or it is the
	// entry). Verified against a brute-force reachability check on random
	// CFGs.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := NewRegionCFG(0)
		// Build random nodes/edges directly.
		for i := 0; i < n; i++ {
			g.node(isa.Addr(i*10), 1)
		}
		for i := 0; i < n; i++ {
			for e := 0; e < 1+rng.Intn(3); e++ {
				g.addEdge(i, rng.Intn(n))
			}
		}
		freq := make([]bool, n)
		for i := range freq {
			freq[i] = rng.Intn(3) == 0
		}
		freq[0] = true
		for i, f := range freq {
			g.marked[i] = f
		}
		g.MarkRejoiningPaths()
		// Brute force: can node i reach any frequent node?
		reaches := func(from int) bool {
			seen := make([]bool, n)
			stack := []int{from}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[cur] {
					continue
				}
				seen[cur] = true
				if freq[cur] {
					return true
				}
				stack = append(stack, g.succs[cur]...)
			}
			return false
		}
		for i := 0; i < n; i++ {
			want := freq[i] || reaches(i)
			if g.marked[i] != want {
				t.Logf("seed %d: node %d marked=%v want %v", seed, i, g.marked[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAddTraceErrors(t *testing.T) {
	p := cfgProgram(t)
	g := NewRegionCFG(0)
	if err := g.AddTrace(nil, 0, false); err == nil {
		t.Error("empty trace accepted")
	}
	if err := g.AddTrace(bs(p, 2, 5), 0, false); err == nil {
		t.Error("trace with wrong entry accepted")
	}
}
