package core

import (
	"testing"

	"repro/internal/program"
	"repro/internal/workloads"
)

// FuzzCompactDecode: arbitrary bitstrings must never panic the Figure 14
// decoder — it either reconstructs a block path or reports an error.
func FuzzCompactDecode(f *testing.F) {
	progs := []*program.Program{
		workloads.MustGet("gcc").Build(1),
		workloads.MustGet("mcf").Build(1),
		workloads.Random(workloads.GenConfig{Seed: 3, Funcs: 3}),
	}
	// Seed with a genuine encoding.
	outcomes := []obsBranch{{addr: 5, taken: false}}
	ct := encodeTrace(outcomes, 5)
	f.Add(ct.bits.data, uint8(ct.bits.n%8), uint16(0), uint8(0))
	f.Add([]byte{0x00}, uint8(0), uint16(3), uint8(1))
	f.Add([]byte{0xFF, 0x00, 0x12, 0x34}, uint8(3), uint16(9), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, spareBits uint8, headIdx uint16, progIdx uint8) {
		p := progs[int(progIdx)%len(progs)]
		leaders := p.BlockStarts()
		head := leaders[int(headIdx)%len(leaders)]
		n := len(data)*8 - int(spareBits%8)
		if n < 0 {
			n = 0
		}
		ct := CompactTrace{bits: bitString{data: data, n: n}}
		blocks, _, _, err := ct.Decode(p, head)
		if err != nil {
			return
		}
		// Anything accepted must be a plausible block path starting at head.
		if len(blocks) == 0 || blocks[0].Start != head {
			t.Fatalf("decode accepted a path not starting at head: %v", blocks)
		}
		for _, b := range blocks {
			if !p.IsBlockStart(b.Start) || p.BlockLen(b.Start) != b.Len {
				t.Fatalf("decode produced a non-block: %+v", b)
			}
		}
	})
}
