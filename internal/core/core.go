// Package core implements the paper's region-selection algorithms:
//
//   - NET (Next-Executing Tail), the Dynamo/DynamoRIO baseline (paper §2.1);
//   - LEI (Last-Executed Iteration), which selects cyclic traces from a
//     history buffer of recently interpreted taken branches (paper §3,
//     Figures 5 and 6);
//   - trace combination, which records several observed traces compactly,
//     merges them into a CFG, and promotes a multi-path region (paper §4,
//     Figures 13, 14, 15). Combination layers on either NET or LEI.
//
// Selectors plug into the dynamic-optimization-system simulator in package
// dynopt through the Selector interface defined here.
package core

import (
	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

// Event describes one control transfer observed while the simulated system
// is interpreting. The simulator reports every block boundary: taken
// branches and fall-throughs alike, so that trace recorders can follow the
// executed path. Transfers executed inside the code cache are never
// reported (profiling stops while execution is native, §3.1).
type Event struct {
	// Src is the address of the instruction the transfer leaves from: a
	// taken branch, a not-taken conditional, or the last instruction of a
	// block that falls into a following block leader.
	Src isa.Addr
	// Tgt is the address control transfers to (always a block leader).
	Tgt isa.Addr
	// Kind classifies taken branches; meaningless when Taken is false.
	Kind vm.BranchKind
	// Taken distinguishes taken branches from fall-through boundaries.
	Taken bool
	// ToCache reports that Tgt is the entry of a cached region: control is
	// about to leave the interpreter. Selectors must not profile such
	// transfers (Figure 5, lines 1–4), but trace recorders use them as a
	// stop condition and LEI records them for path reconstruction.
	ToCache bool
}

// Backward reports whether the event is a taken branch to the same or a
// lower address — the paper's definition of a backward branch, which
// applies uniformly to jumps, conditional branches, calls, and returns.
func (e Event) Backward() bool { return e.Taken && e.Tgt <= e.Src }

// Env is the view of the dynamic optimization system a Selector acts
// through.
type Env interface {
	// Program returns the running program.
	Program() *program.Program
	// Cache returns the code cache.
	Cache() *codecache.Cache
	// Insert promotes a region into the code cache.
	Insert(spec codecache.Spec) (*codecache.Region, error)
	// Fail records a selector-internal error; the simulation run reports it.
	Fail(err error)
}

// ProfileStats reports the memory-overhead measures the paper tracks.
type ProfileStats struct {
	// CountersHighWater is the maximum number of execution counters live at
	// once (Figure 10).
	CountersHighWater int
	// CounterAllocs is the total number of counter allocations.
	CounterAllocs uint64
	// HistoryCap is the LEI history-buffer capacity (0 for NET).
	HistoryCap int
	// ObservedBytesHighWater is the maximum memory, in bytes, holding
	// compactly stored observed traces at any point (Figure 18); zero
	// without trace combination.
	ObservedBytesHighWater int
	// ObservedTraces is the total number of observed traces recorded by
	// trace combination.
	ObservedTraces uint64
}

// Selector is a region-selection algorithm.
type Selector interface {
	// Name identifies the algorithm ("net", "lei", "net+comb", ...).
	Name() string
	// Transfer is invoked for every control transfer observed while
	// interpreting, including the transfer that enters the cache
	// (ToCache true).
	Transfer(env Env, ev Event)
	// CacheExit is invoked when control leaves the code cache and
	// interpretation resumes at tgt (which is never a cached entry). src is
	// the original address of the last instruction of the region block the
	// exit left from.
	CacheExit(env Env, src, tgt isa.Addr)
	// Stats reports profiling memory overhead.
	Stats() ProfileStats
}

// Resettable is implemented by selectors that can be re-armed for a fresh
// run under (possibly different) parameters while keeping their allocated
// profiling state — counter tables, history buffers, recorder free-lists —
// for reuse. The sweep engine pools resettable selectors per shard, so a
// steady-state sweep job spends no allocations on selector construction.
// Selectors that are not Resettable are simply rebuilt per run.
type Resettable interface {
	Reset(params Params)
}

// Preallocator is implemented by selectors whose dense, address-indexed
// profiling tables can be sized up front. The simulator calls it once at run
// start with the program's address-space size (program length plus one, so
// the one-past-the-end sentinel address the VM's predecoder uses is always
// in range), eliminating steady-state table growth from the hot path.
type Preallocator interface {
	Preallocate(addrSpace int)
}

// Params holds every tunable of the selection algorithms, defaulting to the
// paper's published values.
type Params struct {
	// NETThreshold is NET's execution-count threshold (paper: 50).
	NETThreshold int
	// LEIThreshold is LEI's cycle-count threshold T_cyc (paper: 35).
	LEIThreshold int
	// HistoryCap is the LEI history-buffer capacity (paper: 500).
	HistoryCap int
	// TProf is the number of observed traces trace combination records
	// (paper: 15).
	TProf int
	// TMin is the number of observed traces a block must appear in to be
	// selected directly (paper: 5).
	TMin int
	// MaxTraceInstrs bounds trace length in instructions (paper footnote 7
	// notes NET imposes a maximum; Dynamo used a fixed fragment limit).
	MaxTraceInstrs int
	// MaxTraceBlocks bounds trace length in blocks.
	MaxTraceBlocks int
	// PhaseWindow is the number of interpreted transfers the adaptive
	// meta-selector aggregates before classifying the current program phase
	// (extension beyond the paper; see PhaseSelector). Cache exits are
	// tallied alongside but do not advance the window, so windows complete
	// quickly exactly when the cache is cold or mismatched.
	PhaseWindow int
	// PhaseDwell is the number of consecutive windows that must agree on a
	// policy before the adaptive meta-selector switches to it — the
	// hysteresis that prevents policy thrash. Switches are therefore at
	// least PhaseWindow*PhaseDwell interpreted transfers apart.
	PhaseDwell int

	// Ablation switches (extensions beyond the paper, for studying its
	// design choices; all false in the paper's configuration).

	// AblateLEIExitGrowth disables the "old follows exit from code cache"
	// condition of Figure 5 line 9: cycles qualify only when completed by
	// a backward branch, so traces can no longer grow from existing
	// traces' exits.
	AblateLEIExitGrowth bool
	// AblateRejoinPaths disables MarkRejoiningPaths (Figure 15) in trace
	// combination: only blocks appearing in at least T_min observed traces
	// are selected, so rejoining paths are excluded and exit-dominated
	// duplication returns.
	AblateRejoinPaths bool
	// AblateNETBackwardStop lets NET traces continue across backward taken
	// branches (stopping only at the trace head, at existing regions, at
	// revisited blocks, or at the size limit). The paper observes that
	// stopping at backward calls and returns "enables NET to limit code
	// expansion" (§2.2); this switch measures that claim.
	AblateNETBackwardStop bool
}

// DefaultParams returns the paper's published configuration.
func DefaultParams() Params {
	return Params{
		NETThreshold:   50,
		LEIThreshold:   35,
		HistoryCap:     500,
		TProf:          15,
		TMin:           5,
		MaxTraceInstrs: 1024,
		MaxTraceBlocks: 128,
		PhaseWindow:    256,
		PhaseDwell:     3,
	}
}

// withDefaults fills zero fields from DefaultParams.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.NETThreshold <= 0 {
		p.NETThreshold = d.NETThreshold
	}
	if p.LEIThreshold <= 0 {
		p.LEIThreshold = d.LEIThreshold
	}
	if p.HistoryCap <= 0 {
		p.HistoryCap = d.HistoryCap
	}
	if p.TProf <= 0 {
		p.TProf = d.TProf
	}
	if p.TMin <= 0 {
		p.TMin = d.TMin
	}
	if p.MaxTraceInstrs <= 0 {
		p.MaxTraceInstrs = d.MaxTraceInstrs
	}
	if p.MaxTraceBlocks <= 0 {
		p.MaxTraceBlocks = d.MaxTraceBlocks
	}
	if p.PhaseWindow <= 0 {
		p.PhaseWindow = d.PhaseWindow
	}
	if p.PhaseDwell <= 0 {
		p.PhaseDwell = d.PhaseDwell
	}
	return p
}
