package core

import (
	"testing"
)

func TestNETSelectsAfterThreshold(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 3
	n := NewNET(params)
	// The backward branch C->A (5 -> 0) is the only profiled target.
	iteration := func() {
		n.Transfer(env, Event{Src: 1, Tgt: 2, Taken: false})
		n.Transfer(env, Event{Src: 3, Tgt: 4, Taken: true})
		n.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	}
	iteration()
	iteration()
	if env.cache.NumRegions() != 0 {
		t.Fatal("selected before threshold")
	}
	iteration() // counter hits 3: recording starts at A
	if env.cache.NumRegions() != 0 {
		t.Fatal("recording should still be in flight")
	}
	iteration() // the recorded tail completes at the backward branch
	if env.cache.NumRegions() != 1 {
		t.Fatalf("regions = %d, want 1", env.cache.NumRegions())
	}
	r := env.cache.Regions()[0]
	if r.Entry != 0 || !r.Cyclic || len(r.Blocks) != 3 {
		t.Errorf("region entry=%d cyclic=%v blocks=%+v", r.Entry, r.Cyclic, r.Blocks)
	}
	// Counter was released when recording began.
	if n.counters.Live() != 0 {
		t.Errorf("counters live = %d", n.counters.Live())
	}
}

func TestNETForwardBranchesNotProfiled(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 1
	n := NewNET(params)
	// Forward taken branch: not a potential trace head.
	n.Transfer(env, Event{Src: 3, Tgt: 4, Taken: true})
	if n.counters.Live() != 0 {
		t.Error("forward branch target got a counter")
	}
	// Branch into the cache: never profiled.
	n.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true, ToCache: true})
	if n.counters.Live() != 0 {
		t.Error("cached target got a counter")
	}
}

func TestNETExitTargetsProfiled(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 2
	n := NewNET(params)
	n.CacheExit(env, 5, 6)
	if n.counters.Get(6) != 1 {
		t.Fatal("exit target not counted")
	}
	n.CacheExit(env, 5, 6) // threshold: recording begins at 6
	// Block D (6..7) ends with halt; feed the boundary after D: none comes
	// (halt). Feed an unrelated event: D contains halt so the recorder only
	// completes via other stop rules. Simulate the next event being a
	// backward taken branch elsewhere, which ends the trace.
	n.Transfer(env, Event{Src: 7, Tgt: 0, Taken: true})
	if env.cache.NumRegions() != 1 {
		t.Fatalf("regions = %d, want 1", env.cache.NumRegions())
	}
	if env.cache.Regions()[0].Entry != 6 {
		t.Errorf("entry = %d, want 6", env.cache.Regions()[0].Entry)
	}
}

func TestNETDropsDuplicateHeadRecording(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 1
	n := NewNET(params)
	// First backward branch to 0 starts a recording; a second to the same
	// head while recording must not start another.
	n.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	if len(n.recording) != 1 {
		t.Fatalf("recordings = %d", len(n.recording))
	}
	n.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	if n.nRecording > 1 {
		t.Error("duplicate recording for one head")
	}
}

func TestMojoNETLowerExitThreshold(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 10
	n := NewMojoNET(params, 2)
	if n.Name() != "mojo-net" {
		t.Errorf("name = %q", n.Name())
	}
	// Exit targets reach the lower threshold of 2.
	n.CacheExit(env, 5, 6)
	n.CacheExit(env, 5, 6)
	if n.recorderAt(6) == nil {
		t.Error("exit target did not start recording at the lower threshold")
	}
	// Backward targets still need the full threshold.
	n.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	n.Transfer(env, Event{Src: 5, Tgt: 0, Taken: true})
	if n.recorderAt(0) != nil {
		t.Error("backward target used the exit threshold")
	}
}

func TestNETName(t *testing.T) {
	if NewNET(DefaultParams()).Name() != "net" {
		t.Error("name")
	}
	s := NewNET(DefaultParams()).Stats()
	if s.HistoryCap != 0 || s.ObservedBytesHighWater != 0 {
		t.Errorf("stats = %+v", s)
	}
}
