package core

import (
	"testing"

	"repro/internal/vm"
)

// detectorEvents for driving the phase detector directly.
var (
	loopEvent = Event{Src: 10, Tgt: 2, Taken: true, Kind: vm.KindCond}
	callEvent = Event{Src: 4, Tgt: 20, Taken: true, Kind: vm.KindCall}
	indEvent  = Event{Src: 6, Tgt: 30, Taken: true, Kind: vm.KindIndJump}
)

// feedWindow drives exactly one full window of n interpreted transfers
// plus the given number of cache exits (exits never advance the window),
// built from the given counts; the remaining transfers are plain loop
// events.
func feedWindow(d *PhaseDetector, n, calls, inds, exits int) {
	for i := 0; i < exits; i++ {
		d.observeExit()
	}
	for i := 0; i < calls; i++ {
		d.observe(callEvent)
	}
	for i := 0; i < inds; i++ {
		d.observe(indEvent)
	}
	for i := n - calls - inds; i > 0; i-- {
		d.observe(loopEvent)
	}
}

// TestDetectorClassify pins the phase→policy mapping window by window:
// with dwell 1 a single window determines the active policy.
func TestDetectorClassify(t *testing.T) {
	const n = 16
	cases := []struct {
		name               string
		calls, inds, exits int
		want               Policy
	}{
		{"loop-dominated stays net", 0, 0, 0, PolicyNET},
		{"call-heavy goes lei", 4, 0, 0, PolicyLEI},
		{"dispatch-heavy goes lei", 0, 2, 0, PolicyLEI},
		{"region-leaky escalates net+comb", 0, 0, 4, PolicyNETComb},
		{"call-heavy and leaky escalates lei+comb", 5, 0, 4, PolicyLEIComb},
		{"below shares stays net", 2, 1, 2, PolicyNET},
		{"exit flood means hot cache, not leaky", 0, 0, 3 * 16, PolicyNET},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d PhaseDetector
			d.reset(n, 1)
			feedWindow(&d, n, tc.calls, tc.inds, tc.exits)
			if d.Active() != tc.want {
				t.Errorf("active %v, want %v", d.Active(), tc.want)
			}
		})
	}
}

// TestDetectorDwellBound is the hysteresis property test: however fast the
// observed regime flips, the detector can never switch policies more than
// once per dwell completed windows (window*dwell interpreted transfers),
// and a regime that flips faster than the dwell window produces no
// switches at all.
func TestDetectorDwellBound(t *testing.T) {
	cases := []struct{ window, dwell, flipEvery int }{
		{8, 1, 1},
		{8, 2, 1},
		{8, 2, 2},
		{16, 3, 1},
		{16, 3, 2},
		{16, 3, 3},
		{32, 2, 5},
	}
	for _, tc := range cases {
		var d PhaseDetector
		d.reset(tc.window, tc.dwell)
		// Alternate between an all-loop regime (wants NET, the initial
		// policy) and an all-call regime (wants LEI) every flipEvery
		// windows — the fastest possible desired-policy flipping for this
		// detector.
		for w := 0; w < 200; w++ {
			callRegime := (w/tc.flipEvery)%2 == 1
			for i := 0; i < tc.window; i++ {
				if callRegime {
					d.observe(callEvent)
				} else {
					d.observe(loopEvent)
				}
			}
		}
		bound := d.Windows() / uint64(tc.dwell)
		if d.Switches() > bound {
			t.Errorf("window=%d dwell=%d flip=%d: %d switches in %d windows exceeds bound %d",
				tc.window, tc.dwell, tc.flipEvery, d.Switches(), d.Windows(), bound)
		}
		if tc.flipEvery < tc.dwell && d.Switches() != 0 {
			t.Errorf("window=%d dwell=%d: regime flipping every %d windows is faster than the dwell window yet switched %d times",
				tc.window, tc.dwell, tc.flipEvery, d.Switches())
		}
		if tc.flipEvery >= tc.dwell && d.Switches() == 0 {
			t.Errorf("window=%d dwell=%d flip=%d: a regime slower than the dwell window should eventually switch",
				tc.window, tc.dwell, tc.flipEvery)
		}
	}
}

// TestDetectorGatesKeepActive drives the detector away from its initial
// policy and then checks both classification gates hold it there: a window
// whose exits dwarf its transfers (hot cache) and a window of straight-line
// glue (no backward, call, or indirect branches) must not reclassify —
// each would otherwise flush a partition that is serving the program well.
func TestDetectorGatesKeepActive(t *testing.T) {
	glueEvent := Event{Src: 2, Tgt: 9, Taken: true, Kind: vm.KindJump}
	var d PhaseDetector
	d.reset(16, 1)
	feedWindow(&d, 16, 8, 0, 0) // call-heavy: active moves to LEI
	if d.Active() != PolicyLEI {
		t.Fatalf("setup: active %v, want lei", d.Active())
	}
	feedWindow(&d, 16, 0, 0, 3*16) // hot-cache window: exits at the steady gate
	if d.Active() != PolicyLEI {
		t.Errorf("steady-state exit flood reclassified to %v; should keep lei", d.Active())
	}
	for i := 0; i < 16; i++ { // glue window: forward taken jumps only
		d.observe(glueEvent)
	}
	if d.Active() != PolicyLEI {
		t.Errorf("evidence-free glue window reclassified to %v; should keep lei", d.Active())
	}
}

// adaptiveTestParams returns a configuration with a tiny window and
// threshold so unit tests can force selections and switches with few
// events.
func adaptiveTestParams() Params {
	params := DefaultParams()
	params.NETThreshold = 3
	params.PhaseWindow = 8
	params.PhaseDwell = 1
	return params
}

// TestPhaseSelectorSwitchRetiresPartition drives the meta-selector through
// a loop phase (NET selects a region) into an exit-heavy phase (the
// detector escalates to net+comb) and checks the switch contract: the
// partition is flushed, the old policy's region is no longer reachable,
// its statistics survive in the merged Stats, and the detector actually
// switched.
func TestPhaseSelectorSwitchRetiresPartition(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	sel := NewAdaptive(adaptiveTestParams())

	// Two windows of backward branches to block A (addr 1): NET's counter
	// crosses the threshold and the recorder closes the cyclic trace.
	back := Event{Src: 6, Tgt: 1, Taken: true, Kind: vm.KindJump}
	for i := 0; i < 16; i++ {
		sel.Transfer(env, back)
	}
	if !env.cache.HasEntry(1) {
		t.Fatal("NET phase selected no region at addr 1")
	}
	if got := sel.ActivePolicy(); got != PolicyNET {
		t.Fatalf("active policy %v before any regime change", got)
	}
	preStats := sel.Stats()

	// A leaky stretch: one exit per transfer is far above the escalation
	// share but below the hot-cache gate, so the window completing on the
	// 8th transfer escalates to net+comb with dwell 1.
	for i := 0; i < 8; i++ {
		sel.CacheExit(env, 8, 5)
		sel.Transfer(env, back)
	}
	if got := sel.ActivePolicy(); got != PolicyNETComb {
		t.Fatalf("active policy %v after exit-heavy window, want net+comb", got)
	}
	if n := sel.Detector().Switches(); n != 1 {
		t.Fatalf("detector switches = %d, want 1", n)
	}
	if env.cache.Partitions() != 1 {
		t.Fatalf("cache partitions = %d, want 1", env.cache.Partitions())
	}
	if env.cache.HasEntry(1) {
		t.Fatal("old policy's region still reachable after the switch")
	}
	if len(env.cache.AllRegions()) == 0 {
		t.Fatal("retired region vanished from cumulative accounting")
	}
	post := sel.Stats()
	if post.CounterAllocs < preStats.CounterAllocs {
		t.Fatalf("absorbed CounterAllocs went backwards: %d -> %d", preStats.CounterAllocs, post.CounterAllocs)
	}
	if post.CountersHighWater < preStats.CountersHighWater {
		t.Fatalf("absorbed CountersHighWater went backwards: %d -> %d", preStats.CountersHighWater, post.CountersHighWater)
	}
}

// TestAdaptiveSteadyStateAllocFree pins the zero-allocation contract of the
// adaptive hot path: once every sub-policy's tables are warm, driving the
// meta-selector through full regime cycles — windows completing, policies
// switching back and forth, partitions flushing, exits observed — must not
// allocate. Region formation is excluded (thresholds are set unreachably
// high) because building a region allocates by design the first time; what
// this test protects is the per-transfer detector/switch path that runs on
// every interpreted branch of every workload.
func TestAdaptiveSteadyStateAllocFree(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.PhaseWindow = 8
	params.PhaseDwell = 1
	params.NETThreshold = 1 << 30
	params.LEIThreshold = 1 << 30
	sel := NewAdaptive(params)

	back := Event{Src: 6, Tgt: 1, Taken: true, Kind: vm.KindJump}
	// One cycle = a loop regime (wants NET) then a call regime (wants LEI),
	// each long enough to clear the dwell and cooldown windows, so steady
	// state performs two policy switches per cycle. The lone exit stays
	// below the escalation share (32/256 < 40/256), keeping the regimes'
	// classifications clean while still exercising the exit path.
	cycle := func() {
		for i := 0; i < 4*8; i++ {
			sel.Transfer(env, back)
		}
		sel.CacheExit(env, 8, 5)
		for i := 0; i < 4*8; i++ {
			sel.Transfer(env, callEvent)
		}
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	pre := sel.Detector().Switches()
	allocs := testing.AllocsPerRun(50, cycle)
	if sel.Detector().Switches() <= pre {
		t.Fatal("measured cycles performed no policy switches; the test is not covering the switch path")
	}
	if allocs != 0 {
		t.Errorf("steady-state adaptive cycle allocated %.1f times, want 0", allocs)
	}
}

// TestPolicyString pins the policy names to the selector names they
// activate.
func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		PolicyNET:     "net",
		PolicyLEI:     "lei",
		PolicyNETComb: "net+comb",
		PolicyLEIComb: "lei+comb",
		NumPolicies:   "invalid",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Policy(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
