package core

import (
	"testing"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
)

// leiProgram:
//
//	0: movi r1, 100      entry [0..0]
//	1: addi r1, r1, -1   A [1..2]
//	2: blt r1, r0, 9     (rarely exit)
//	3: addi r2, r2, 1    B [3..4]
//	4: call 7            (call to f: FORWARD call here)
//	5: nop               C [5..6] (return target)
//	6: jmp 1             (backward to A)
//	7: addi r3, r3, 1    f [7..8]
//	8: ret
//	9: halt              [9]
func leiProgram(t *testing.T) *program.Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 100},
		{Op: isa.AddImm, Dst: 1, SrcA: 1, Imm: -1},
		{Op: isa.Br, Cond: isa.CondLt, SrcA: 1, SrcB: 0, Target: 9},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: 1},
		{Op: isa.Call, Target: 7},
		{Op: isa.Nop},
		{Op: isa.Jmp, Target: 1},
		{Op: isa.AddImm, Dst: 3, SrcA: 3, Imm: 1},
		{Op: isa.Ret},
		{Op: isa.Halt},
	}
	p, err := program.New(ins, []program.Function{{Name: "f", Entry: 7, End: 9}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLeiCycleConditions(t *testing.T) {
	t.Run("backward qualifies", func(t *testing.T) {
		buf := profile.NewHistoryBuffer(16)
		s := buf.Insert(6, 1, profile.KindInterp)
		buf.SetHash(1, s)
		old, ok := leiCycle(buf, 6, 1, profile.KindInterp)
		if !ok || old != s {
			t.Errorf("backward cycle: %d, %v", old, ok)
		}
	})
	t.Run("forward with interp old does not qualify", func(t *testing.T) {
		buf := profile.NewHistoryBuffer(16)
		s := buf.Insert(2, 5, profile.KindInterp)
		buf.SetHash(5, s)
		if _, ok := leiCycle(buf, 2, 5, profile.KindInterp); ok {
			t.Error("forward cycle with interp old must not qualify")
		}
	})
	t.Run("old exit entry qualifies", func(t *testing.T) {
		buf := profile.NewHistoryBuffer(16)
		s := buf.Insert(8, 5, profile.KindExit) // previous exit to 5
		buf.SetHash(5, s)
		old, ok := leiCycle(buf, 2, 5, profile.KindExit)
		if !ok || old != s {
			t.Errorf("exit-grown cycle: %d, %v", old, ok)
		}
	})
	t.Run("no previous occurrence", func(t *testing.T) {
		buf := profile.NewHistoryBuffer(16)
		if _, ok := leiCycle(buf, 6, 1, profile.KindInterp); ok {
			t.Error("first occurrence cannot complete a cycle")
		}
	})
}

func TestFormLEITraceInterproceduralCycle(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	buf := profile.NewHistoryBuffer(32)
	// Previous occurrence of A's header as a branch target.
	old := buf.Insert(6, 1, profile.KindInterp)
	// One full loop iteration: A falls to B, B calls f, f returns to C,
	// C jumps back to A.
	buf.Insert(4, 7, profile.KindInterp) // call -> f
	buf.Insert(8, 5, profile.KindInterp) // ret -> C
	buf.Insert(6, 1, profile.KindInterp) // jmp -> A (completes the cycle)
	spec, outcomes, formed := formLEITrace(p, env.cache, buf, 1, old, DefaultParams(), nil)
	if !formed {
		t.Fatal("trace not formed")
	}
	if !spec.Cyclic {
		t.Error("interprocedural cycle should be spanned")
	}
	want := []isa.Addr{1, 3, 7, 5}
	if len(spec.Blocks) != len(want) {
		t.Fatalf("blocks = %+v, want starts %v", spec.Blocks, want)
	}
	for i, w := range want {
		if spec.Blocks[i].Start != w {
			t.Fatalf("blocks = %+v, want starts %v", spec.Blocks, want)
		}
	}
	// Outcomes: not-taken at 2, call at 4, ret at 8 (indirect), jmp at 6.
	if len(outcomes) != 4 {
		t.Fatalf("outcomes = %+v", outcomes)
	}
	if outcomes[0].taken || outcomes[0].addr != 2 {
		t.Errorf("outcome[0] = %+v", outcomes[0])
	}
	if !outcomes[2].indirect {
		t.Errorf("return outcome not indirect: %+v", outcomes[2])
	}
}

func TestFormLEITraceStopsAtCachedRegion(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	// Cache block B (start 3) as an existing trace.
	if _, err := env.cache.Insert(codecache.Spec{
		Entry:  3,
		Kind:   codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 3, Len: p.BlockLen(3)}},
	}); err != nil {
		t.Fatal(err)
	}
	buf := profile.NewHistoryBuffer(32)
	old := buf.Insert(6, 1, profile.KindInterp)
	buf.Insert(4, 7, profile.KindInterp)
	buf.Insert(8, 5, profile.KindInterp)
	buf.Insert(6, 1, profile.KindInterp)
	spec, _, formed := formLEITrace(p, env.cache, buf, 1, old, DefaultParams(), nil)
	if !formed {
		t.Fatal("trace not formed")
	}
	// The fall-through from A into B stops at the cached B: only A remains.
	if len(spec.Blocks) != 1 || spec.Blocks[0].Start != 1 {
		t.Errorf("blocks = %+v", spec.Blocks)
	}
	if spec.Cyclic {
		t.Error("truncated trace cannot be cyclic")
	}
}

func TestFormLEITraceWithCacheEpisode(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	// Region for f exists; the cycle passes through it.
	if _, err := env.cache.Insert(codecache.Spec{
		Entry:  7,
		Kind:   codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 7, Len: p.BlockLen(7)}},
	}); err != nil {
		t.Fatal(err)
	}
	buf := profile.NewHistoryBuffer(32)
	old := buf.Insert(6, 1, profile.KindInterp)
	buf.Insert(4, 7, profile.KindEnter) // call enters the cached f
	buf.Insert(8, 5, profile.KindExit)  // f's return exits the cache to C
	buf.Insert(6, 1, profile.KindInterp)
	spec, _, formed := formLEITrace(p, env.cache, buf, 1, old, DefaultParams(), nil)
	if !formed {
		t.Fatal("trace not formed")
	}
	// Reconstruction covers A,B (up to the enter), then stops at cached f.
	want := []isa.Addr{1, 3}
	if len(spec.Blocks) != len(want) || spec.Blocks[0].Start != 1 || spec.Blocks[1].Start != 3 {
		t.Errorf("blocks = %+v, want starts %v", spec.Blocks, want)
	}
}

func TestFormLEITraceExitGrownHead(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	// Inner region covers A (1) alone; traces grow from its exit at B.
	if _, err := env.cache.Insert(codecache.Spec{
		Entry:  1,
		Kind:   codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 1, Len: p.BlockLen(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	buf := profile.NewHistoryBuffer(32)
	old := buf.Insert(2, 3, profile.KindExit) // exit to B
	buf.Insert(4, 7, profile.KindInterp)      // B calls f
	buf.Insert(8, 5, profile.KindInterp)      // return to C
	buf.Insert(6, 1, profile.KindEnter)       // C jumps to cached A
	buf.Insert(2, 3, profile.KindExit)        // A's trace exits to B again
	spec, _, formed := formLEITrace(p, env.cache, buf, 3, old, DefaultParams(), nil)
	if !formed {
		t.Fatal("trace not formed")
	}
	// B, f, C selected; stops at cached A. This is the paper's §2.2
	// walkthrough shape: the second trace grows from the first's exit and
	// ends where the cached region begins.
	want := []isa.Addr{3, 7, 5}
	if len(spec.Blocks) != len(want) {
		t.Fatalf("blocks = %+v, want starts %v", spec.Blocks, want)
	}
	for i, w := range want {
		if spec.Blocks[i].Start != w {
			t.Fatalf("blocks = %+v, want starts %v", spec.Blocks, want)
		}
	}
}

func TestFormLEITraceEmptyWhenHeadUnreachable(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	// Head itself cached: nothing can be formed.
	if _, err := env.cache.Insert(codecache.Spec{
		Entry:  1,
		Kind:   codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 1, Len: p.BlockLen(1)}},
	}); err != nil {
		t.Fatal(err)
	}
	buf := profile.NewHistoryBuffer(32)
	old := buf.Insert(6, 1, profile.KindInterp)
	buf.Insert(6, 1, profile.KindInterp)
	if _, _, formed := formLEITrace(p, env.cache, buf, 1, old, DefaultParams(), nil); formed {
		t.Error("trace formed from a cached head")
	}
}

func TestLEISelectorEndToEnd(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.LEIThreshold = 3
	l := NewLEI(params)
	iteration := func() {
		l.Transfer(env, Event{Src: 4, Tgt: 7, Taken: true})
		l.Transfer(env, Event{Src: 8, Tgt: 5, Taken: true})
		l.Transfer(env, Event{Src: 6, Tgt: 1, Taken: true})
	}
	// Threshold 3: cycles complete on iterations 2,3,4.
	for i := 0; i < 4; i++ {
		iteration()
	}
	if got := env.cache.NumRegions(); got != 1 {
		t.Fatalf("regions = %d, want 1", got)
	}
	// Two backward-branch targets exist in the cycle (the return target C
	// at 5, since f lies above its call site, and the loop header A at 1);
	// C's counter reaches the threshold first within an iteration, so the
	// cycle is selected rotated to start at C. Either rotation spans the
	// full interprocedural cycle.
	r := env.cache.Regions()[0]
	if r.Entry != 5 || !r.Cyclic {
		t.Errorf("region = entry %d cyclic %v", r.Entry, r.Cyclic)
	}
	want := []isa.Addr{5, 1, 3, 7}
	if len(r.Blocks) != len(want) {
		t.Fatalf("blocks = %+v", r.Blocks)
	}
	for i, w := range want {
		if r.Blocks[i].Start != w {
			t.Fatalf("blocks = %+v, want starts %v", r.Blocks, want)
		}
	}
	// C's counter was recycled on selection; A's counter (2 counts) stays.
	if l.counters.Live() != 1 || l.counters.Get(5) != 0 || l.counters.Get(1) != 2 {
		t.Errorf("counters live=%d c5=%d c1=%d", l.counters.Live(), l.counters.Get(5), l.counters.Get(1))
	}
	if l.Stats().HistoryCap != params.HistoryCap {
		t.Errorf("stats = %+v", l.Stats())
	}
}

func TestLEIIgnoresToCacheAndFallThrough(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	l := NewLEI(DefaultParams())
	l.Transfer(env, Event{Src: 2, Tgt: 3, Taken: false})
	if l.buf.Len() != 0 {
		t.Error("fall-through inserted into buffer")
	}
	l.Transfer(env, Event{Src: 6, Tgt: 1, Taken: true, ToCache: true})
	if l.buf.Len() != 1 {
		t.Fatal("enter transfer not recorded")
	}
	if l.buf.At(l.buf.Last()).Kind != profile.KindEnter {
		t.Error("enter transfer recorded with wrong kind")
	}
	// Enter entries never receive hash references, so they cannot complete
	// cycles.
	l.Transfer(env, Event{Src: 6, Tgt: 1, Taken: true, ToCache: true})
	if env.cache.NumRegions() != 0 || l.counters.Live() != 0 {
		t.Error("enter transfers must not profile")
	}
}
