package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

// tailProgram:
//
//	0: movi r1, 9       A [0..1]
//	1: blt r1, r0, 6    (rarely to D)
//	2: addi r2, r2, 1   B [2..3]
//	3: jmp 4
//	4: addi r2, r2, 2   C [4..5]
//	5: bgt r1, r0, 0    (backward to A)
//	6: nop              D [6..7]
//	7: halt
func tailProgram(t *testing.T) *program.Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 9},
		{Op: isa.Br, Cond: isa.CondLt, SrcA: 1, SrcB: 0, Target: 6},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: 1},
		{Op: isa.Jmp, Target: 4},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: 2},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 0},
		{Op: isa.Nop},
		{Op: isa.Halt},
	}
	p, err := program.New(ins, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func feed(r *tailRecorder, evs ...Event) bool {
	done := false
	for _, ev := range evs {
		done = r.feed(ev)
	}
	return done
}

func TestTailRecorderCyclic(t *testing.T) {
	p := tailProgram(t)
	r := newTailRecorder(p, 0, 1024, 128)
	// Path: A (fall) B (jmp) C (backward taken to A) => cyclic trace A,B,C.
	done := feed(r,
		Event{Src: 1, Tgt: 2, Taken: false},
		Event{Src: 3, Tgt: 4, Taken: true, Kind: vm.KindJump},
		Event{Src: 5, Tgt: 0, Taken: true, Kind: vm.KindCond},
	)
	if !done {
		t.Fatal("recorder not done after backward branch")
	}
	spec := r.spec()
	if !spec.Cyclic {
		t.Error("trace should be cyclic")
	}
	want := []isa.Addr{0, 2, 4}
	if len(spec.Blocks) != len(want) {
		t.Fatalf("blocks = %+v", spec.Blocks)
	}
	for i, w := range want {
		if spec.Blocks[i].Start != w {
			t.Fatalf("blocks = %+v", spec.Blocks)
		}
	}
	// Branch outcomes recorded for the compact encoding: not-taken at 1,
	// taken at 3, taken at 5.
	if len(r.branches) != 3 || r.branches[0].taken || !r.branches[1].taken || !r.branches[2].taken {
		t.Errorf("branches = %+v", r.branches)
	}
	if r.lastAddr != 5 {
		t.Errorf("lastAddr = %d", r.lastAddr)
	}
}

func TestTailRecorderEndsAtBackwardNonHead(t *testing.T) {
	p := tailProgram(t)
	// Start at B: the backward branch to A ends the trace but is not a
	// cycle (A is not the head).
	r := newTailRecorder(p, 2, 1024, 128)
	done := feed(r,
		Event{Src: 3, Tgt: 4, Taken: true, Kind: vm.KindJump},
		Event{Src: 5, Tgt: 0, Taken: true, Kind: vm.KindCond},
	)
	if !done {
		t.Fatal("not done")
	}
	if r.spec().Cyclic {
		t.Error("backward branch to non-head must not mark cyclic")
	}
	if len(r.spec().Blocks) != 2 {
		t.Errorf("blocks = %+v", r.spec().Blocks)
	}
}

func TestTailRecorderEndsAtCache(t *testing.T) {
	p := tailProgram(t)
	r := newTailRecorder(p, 0, 1024, 128)
	done := feed(r,
		Event{Src: 1, Tgt: 2, Taken: false},
		// Taken branch to an existing region entry ends the trace.
		Event{Src: 3, Tgt: 4, Taken: true, ToCache: true},
	)
	if !done {
		t.Fatal("not done at cache entry")
	}
	spec := r.spec()
	if len(spec.Blocks) != 2 || spec.Blocks[1].Start != 2 {
		t.Errorf("blocks = %+v", spec.Blocks)
	}
	if spec.Cyclic {
		t.Error("not cyclic")
	}
}

func TestTailRecorderFallThroughCacheContinues(t *testing.T) {
	p := tailProgram(t)
	r := newTailRecorder(p, 0, 1024, 128)
	// NET only ends a trace at TAKEN branches: a fall-through into a
	// cached block keeps recording (and duplicates that block).
	done := feed(r, Event{Src: 1, Tgt: 2, Taken: false, ToCache: true})
	if done {
		t.Fatal("fall-through into cached block must not end the trace")
	}
	if len(r.blocks) != 2 {
		t.Errorf("blocks = %+v", r.blocks)
	}
}

func TestTailRecorderSizeLimits(t *testing.T) {
	p := tailProgram(t)
	r := newTailRecorder(p, 0, 3, 128) // A has 2 instrs; B would exceed 3
	done := feed(r, Event{Src: 1, Tgt: 2, Taken: false})
	if !done {
		t.Fatal("not done at instr limit")
	}
	if len(r.spec().Blocks) != 1 {
		t.Errorf("blocks = %+v", r.spec().Blocks)
	}

	r2 := newTailRecorder(p, 0, 1024, 1)
	if !feed(r2, Event{Src: 1, Tgt: 2, Taken: false}) {
		t.Fatal("not done at block limit")
	}
}

func TestTailRecorderStopsOnRevisit(t *testing.T) {
	p := tailProgram(t)
	r := newTailRecorder(p, 2, 1024, 128)
	// B -> C, then a (hypothetical) forward-taken event back to C would
	// duplicate; the recorder must stop instead.
	feed(r, Event{Src: 3, Tgt: 4, Taken: true})
	done := feed(r, Event{Src: 5, Tgt: 4, Taken: true})
	if !done {
		t.Fatal("revisit did not end trace")
	}
	if len(r.spec().Blocks) != 2 {
		t.Errorf("blocks = %+v", r.spec().Blocks)
	}
}
