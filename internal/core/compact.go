package core

import (
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// CompactTrace is the space-efficient observed-trace representation of
// paper Figure 14: two bits per branch, with explicit target addresses only
// for taken indirect branches, terminated by "00" and the address of the
// trace's last instruction. Trace combination stores T_prof of these per
// profiled target and decodes them only when the region is finally formed,
// so the memory measured for Figure 18 is the byte length of these strings.
//
// Symbols:
//
//	01 <addr>  taken branch with a target not encoded in the instruction
//	10         conditional branch, not taken
//	11         taken branch with the target known from the instruction
//	00 <addr>  end of trace; addr is the trace's last instruction
type CompactTrace struct {
	bits bitString
}

const (
	symIndirect = 0b01
	symNotTaken = 0b10
	symTaken    = 0b11
	symEnd      = 0b00
)

// addrBits is the width of explicit addresses in the encoding. The paper
// uses the native pointer size (32 or 64 bits); our ISA addresses fit 32.
const addrBits = 32

// EncodeTrace builds the compact representation of a recorded path
// (COMPACT-TRACE of Figure 14). head is the trace entry; branches are the
// branch outcomes along the path in order; lastAddr is the address of the
// final instruction.
func encodeTrace(branches []obsBranch, lastAddr isa.Addr) CompactTrace {
	var b bitString
	for _, br := range branches {
		switch {
		case br.indirect && br.taken:
			b.append2(symIndirect)
			b.appendAddr(uint32(br.target))
		case !br.taken:
			b.append2(symNotTaken)
		default:
			b.append2(symTaken)
		}
	}
	b.append2(symEnd)
	b.appendAddr(uint32(lastAddr))
	return CompactTrace{bits: b}
}

// Bytes returns the storage footprint of the compact trace.
func (t CompactTrace) Bytes() int { return len(t.bits.data) }

// Decode reconstructs the block sequence of the observed trace. The
// decoder re-walks the program from head, consuming one symbol per branch
// instruction encountered, exactly as the optimizer in the paper decodes
// each instruction at most once (§4.2.1).
//
// When the trace ends with a taken branch (its final instruction), closing
// reports that branch's target and hasClosing is true: the observed path's
// final control transfer, which the CFG construction of §4.2.2 records as
// an edge (this is how a cyclic observed trace contributes its back edge).
func (t CompactTrace) Decode(p *program.Program, head isa.Addr) (blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool, err error) {
	rd := bitReader{src: t.bits}
	// Track the start of the current linear segment so the final segment
	// can be truncated (or dropped) at the encoded end address.
	segStart := head
	pc := head
	appendSeg := func(from, through isa.Addr) {
		for b := from; ; {
			n := p.BlockLen(b)
			blocks = append(blocks, codecache.BlockSpec{Start: b, Len: n})
			end := b + isa.Addr(n)
			if end > through {
				return
			}
			b = end
		}
	}
	for steps := 0; ; steps++ {
		if steps > 1<<20 {
			return nil, 0, false, fmt.Errorf("core: compact trace decode did not terminate")
		}
		// Advance pc to the next symbol-consuming instruction: a branch, or
		// a halt (where only the end marker may follow — execution cannot
		// proceed past it, so the trace must have ended by then).
		for !p.At(pc).IsBranch() && p.At(pc).Op != isa.Halt {
			if !p.InRange(pc + 1) {
				return nil, 0, false, fmt.Errorf("core: compact trace ran off program end at %d", pc)
			}
			pc++
		}
		sym, err := rd.read2()
		if err != nil {
			return nil, 0, false, err
		}
		switch sym {
		case symEnd:
			endAddr, err := rd.readAddr()
			if err != nil {
				return nil, 0, false, err
			}
			last := isa.Addr(endAddr)
			// When the end address is the last instruction already
			// recorded, the trace ended exactly at the previous taken
			// branch and the segment opened by its target was never part
			// of the trace. This check must precede the in-segment check:
			// a backward taken branch (a cyclic trace) leaves the end
			// address inside the new segment's range, and appending would
			// fabricate a duplicate pass over the trace body. Traces never
			// contain duplicate blocks, so the two cases cannot collide.
			if lastRecorded(blocks) == last {
				// The final instruction was a taken branch; segStart is the
				// target it transferred to — the trace's closing transfer.
				return blocks, segStart, true, nil
			}
			if last >= segStart && last <= pc {
				// The trace ends inside the current segment.
				appendSeg(segStart, last)
				return blocks, 0, false, nil
			}
			return nil, 0, false, fmt.Errorf("core: compact trace end %d outside segment [%d,%d]", last, segStart, pc)
		case symNotTaken:
			in := p.At(pc)
			if !in.IsConditional() {
				return nil, 0, false, fmt.Errorf("core: not-taken symbol at non-conditional %d", pc)
			}
			pc++
		case symTaken:
			in := p.At(pc)
			if in.IsIndirect() || !in.IsBranch() {
				return nil, 0, false, fmt.Errorf("core: taken symbol at %d (%s)", pc, in)
			}
			appendSeg(segStart, pc)
			segStart = in.Target
			pc = in.Target
		case symIndirect:
			tgt, err := rd.readAddr()
			if err != nil {
				return nil, 0, false, err
			}
			if !p.At(pc).IsIndirect() {
				return nil, 0, false, fmt.Errorf("core: indirect symbol at non-indirect %d", pc)
			}
			// Dynamic targets are always block leaders (the VM enforces
			// this at execution time); a corrupt encoding is rejected here
			// rather than walked.
			if !p.InRange(isa.Addr(tgt)) || !p.IsBlockStart(isa.Addr(tgt)) {
				return nil, 0, false, fmt.Errorf("core: indirect target %d is not a block leader", tgt)
			}
			appendSeg(segStart, pc)
			segStart = isa.Addr(tgt)
			pc = isa.Addr(tgt)
		}
	}
}

// lastRecorded returns the address of the final instruction of the decoded
// block list, or an impossible address when empty.
func lastRecorded(blocks []codecache.BlockSpec) isa.Addr {
	if len(blocks) == 0 {
		return ^isa.Addr(0)
	}
	b := blocks[len(blocks)-1]
	return b.Start + isa.Addr(b.Len) - 1
}

// bitString is an append-only bit vector.
type bitString struct {
	data []byte
	n    int // bits used
}

func (b *bitString) appendBit(bit uint) {
	if b.n%8 == 0 {
		b.data = append(b.data, 0)
	}
	if bit != 0 {
		b.data[b.n/8] |= 1 << uint(7-b.n%8)
	}
	b.n++
}

func (b *bitString) append2(sym uint) {
	b.appendBit(sym >> 1 & 1)
	b.appendBit(sym & 1)
}

func (b *bitString) appendAddr(a uint32) {
	for i := addrBits - 1; i >= 0; i-- {
		b.appendBit(uint(a >> uint(i) & 1))
	}
}

// Len returns the number of bits in the string.
func (b *bitString) Len() int { return b.n }

// bitReader consumes a bitString front to back.
type bitReader struct {
	src bitString
	pos int
}

func (r *bitReader) readBit() (uint, error) {
	if r.pos >= r.src.n {
		return 0, fmt.Errorf("core: compact trace truncated at bit %d", r.pos)
	}
	bit := uint(r.src.data[r.pos/8] >> uint(7-r.pos%8) & 1)
	r.pos++
	return bit, nil
}

func (r *bitReader) read2() (uint, error) {
	hi, err := r.readBit()
	if err != nil {
		return 0, err
	}
	lo, err := r.readBit()
	if err != nil {
		return 0, err
	}
	return hi<<1 | lo, nil
}

func (r *bitReader) readAddr() (uint32, error) {
	var a uint32
	for i := 0; i < addrBits; i++ {
		bit, err := r.readBit()
		if err != nil {
			return 0, err
		}
		a = a<<1 | uint32(bit)
	}
	return a, nil
}
