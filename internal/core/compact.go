package core

import (
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// CompactTrace is the space-efficient observed-trace representation of
// paper Figure 14: two bits per branch, with explicit target addresses only
// for taken indirect branches, terminated by "00" and the address of the
// trace's last instruction. Trace combination stores T_prof of these per
// profiled target and decodes them only when the region is finally formed,
// so the memory measured for Figure 18 is the byte length of these strings.
//
// Symbols:
//
//	01 <addr>  taken branch with a target not encoded in the instruction
//	10         conditional branch, not taken
//	11         taken branch with the target known from the instruction
//	00 <addr>  end of trace; addr is the trace's last instruction
type CompactTrace struct {
	bits bitString
}

const (
	symIndirect = 0b01
	symNotTaken = 0b10
	symTaken    = 0b11
	symEnd      = 0b00
)

// addrBits is the width of explicit addresses in the encoding. The paper
// uses the native pointer size (32 or 64 bits); our ISA addresses fit 32.
const addrBits = 32

// encodeTrace builds the compact representation of a recorded path
// (COMPACT-TRACE of Figure 14) in a freshly allocated bit string. The
// steady-state path is encodeInto via traceArena.add; this form remains for
// tests and reference comparisons.
func encodeTrace(branches []obsBranch, lastAddr isa.Addr) CompactTrace {
	var b bitString
	encodeInto(&b, branches, lastAddr)
	return CompactTrace{bits: b}
}

// encodeInto appends the Figure 14 encoding of one recorded path to b.
// branches are the branch outcomes along the path in order; lastAddr is the
// address of the final instruction.
func encodeInto(b *bitString, branches []obsBranch, lastAddr isa.Addr) {
	for _, br := range branches {
		switch {
		case br.indirect && br.taken:
			b.append2(symIndirect)
			b.appendAddr(uint32(br.target))
		case !br.taken:
			b.append2(symNotTaken)
		default:
			b.append2(symTaken)
		}
	}
	b.append2(symEnd)
	b.appendAddr(uint32(lastAddr))
}

// Bytes returns the storage footprint of the compact trace.
func (t CompactTrace) Bytes() int { return len(t.bits.data) }

// Decode reconstructs the block sequence of the observed trace. The
// decoder re-walks the program from head, consuming one symbol per branch
// instruction encountered, exactly as the optimizer in the paper decodes
// each instruction at most once (§4.2.1).
//
// When the trace ends with a taken branch (its final instruction), closing
// reports that branch's target and hasClosing is true: the observed path's
// final control transfer, which the CFG construction of §4.2.2 records as
// an edge (this is how a cyclic observed trace contributes its back edge).
func (t CompactTrace) Decode(p *program.Program, head isa.Addr) (blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool, err error) {
	return t.DecodeInto(p, head, nil)
}

// DecodeInto is Decode appending into a caller-provided scratch slice
// (truncated before use), so steady-state combination can reuse one decode
// buffer across observed traces. The returned slice aliases scratch's
// backing array when capacity suffices.
//
//lint:hotpath per-observed-trace decode during region combination
func (t CompactTrace) DecodeInto(p *program.Program, head isa.Addr, scratch []codecache.BlockSpec) (blocks []codecache.BlockSpec, closing isa.Addr, hasClosing bool, err error) {
	rd := bitReader{src: t.bits}
	blocks = scratch[:0]
	// Track the start of the current linear segment so the final segment
	// can be truncated (or dropped) at the encoded end address.
	segStart := head
	pc := head
	//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly in this frame)
	appendSeg := func(from, through isa.Addr) {
		for b := from; ; {
			n := p.BlockLen(b)
			blocks = append(blocks, codecache.BlockSpec{Start: b, Len: n})
			end := b + isa.Addr(n)
			if end > through {
				return
			}
			b = end
		}
	}
	for steps := 0; ; steps++ {
		if steps > 1<<20 {
			return nil, 0, false, fmt.Errorf("core: compact trace decode did not terminate")
		}
		// Advance pc to the next symbol-consuming instruction: a branch, or
		// a halt (where only the end marker may follow — execution cannot
		// proceed past it, so the trace must have ended by then).
		for !p.At(pc).IsBranch() && p.At(pc).Op != isa.Halt {
			if !p.InRange(pc + 1) {
				return nil, 0, false, fmt.Errorf("core: compact trace ran off program end at %d", pc)
			}
			pc++
		}
		sym, err := rd.read2()
		if err != nil {
			return nil, 0, false, err
		}
		switch sym {
		case symEnd:
			endAddr, err := rd.readAddr()
			if err != nil {
				return nil, 0, false, err
			}
			last := isa.Addr(endAddr)
			// When the end address is the last instruction already
			// recorded, the trace ended exactly at the previous taken
			// branch and the segment opened by its target was never part
			// of the trace. This check must precede the in-segment check:
			// a backward taken branch (a cyclic trace) leaves the end
			// address inside the new segment's range, and appending would
			// fabricate a duplicate pass over the trace body. Traces never
			// contain duplicate blocks, so the two cases cannot collide.
			if lastRecorded(blocks) == last {
				// The final instruction was a taken branch; segStart is the
				// target it transferred to — the trace's closing transfer.
				return blocks, segStart, true, nil
			}
			if last >= segStart && last <= pc {
				// The trace ends inside the current segment.
				appendSeg(segStart, last)
				return blocks, 0, false, nil
			}
			return nil, 0, false, fmt.Errorf("core: compact trace end %d outside segment [%d,%d]", last, segStart, pc)
		case symNotTaken:
			in := p.At(pc)
			if !in.IsConditional() {
				return nil, 0, false, fmt.Errorf("core: not-taken symbol at non-conditional %d", pc)
			}
			pc++
		case symTaken:
			in := p.At(pc)
			if in.IsIndirect() || !in.IsBranch() {
				return nil, 0, false, fmt.Errorf("core: taken symbol at %d (%s)", pc, in)
			}
			appendSeg(segStart, pc)
			segStart = in.Target
			pc = in.Target
		case symIndirect:
			tgt, err := rd.readAddr()
			if err != nil {
				return nil, 0, false, err
			}
			if !p.At(pc).IsIndirect() {
				return nil, 0, false, fmt.Errorf("core: indirect symbol at non-indirect %d", pc)
			}
			// Dynamic targets are always block leaders (the VM enforces
			// this at execution time); a corrupt encoding is rejected here
			// rather than walked.
			if !p.InRange(isa.Addr(tgt)) || !p.IsBlockStart(isa.Addr(tgt)) {
				return nil, 0, false, fmt.Errorf("core: indirect target %d is not a block leader", tgt)
			}
			appendSeg(segStart, pc)
			segStart = isa.Addr(tgt)
			pc = isa.Addr(tgt)
		}
	}
}

// traceSpan locates one compact trace inside a traceArena: a byte offset
// and a bit length. Spans are stored instead of byte-slice aliases because
// the arena's backing array moves when it grows; the trace is materialized
// only at decode time via traceArena.trace.
type traceSpan struct {
	off  int
	bits int
}

// bytes returns the storage footprint of the spanned trace — identical to
// CompactTrace.Bytes for the same encoding, so the Figure 18 accounting is
// unchanged by arena storage.
func (s traceSpan) bytes() int { return (s.bits + 7) / 8 }

// traceArena stores compact observed traces back to back in one grow-only
// byte buffer. Traces are appended until the owning Combiner resets; freed
// spans (released by finalize) are not reclaimed individually — the arena is
// epoch-cleared as a whole, which is what keeps steady-state combination
// allocation-free once the buffer has grown to the run's high-water mark.
type traceArena struct {
	buf []byte
	enc bitString // per-add encode scratch, copied into buf
}

// add encodes one recorded path into the arena and returns its span.
func (a *traceArena) add(branches []obsBranch, lastAddr isa.Addr) traceSpan {
	a.enc.reset()
	encodeInto(&a.enc, branches, lastAddr)
	off := len(a.buf)
	a.buf = append(a.buf, a.enc.data...)
	return traceSpan{off: off, bits: a.enc.n}
}

// trace materializes the compact trace stored at s. The returned value
// aliases the arena and is valid only until the next add or reset.
func (a *traceArena) trace(s traceSpan) CompactTrace {
	return CompactTrace{bits: bitString{data: a.buf[s.off : s.off+s.bytes()], n: s.bits}}
}

// reset discards all stored traces, keeping the buffer capacity.
func (a *traceArena) reset() {
	a.buf = a.buf[:0]
	a.enc.reset()
}

// lastRecorded returns the address of the final instruction of the decoded
// block list, or an impossible address when empty.
func lastRecorded(blocks []codecache.BlockSpec) isa.Addr {
	if len(blocks) == 0 {
		return ^isa.Addr(0)
	}
	b := blocks[len(blocks)-1]
	return b.Start + isa.Addr(b.Len) - 1
}

// bitString is an append-only bit vector. Bits are packed MSB-first and
// appended in byte-wide chunks, so a 32-bit address costs at most five
// masked stores rather than 32 single-bit iterations. The invariant
// len(data) == ceil(n/8) is what CompactTrace.Bytes measures for Figure 18.
type bitString struct {
	data []byte
	n    int // bits used
}

// reset truncates the string for reuse, keeping the backing array.
func (b *bitString) reset() {
	b.data = b.data[:0]
	b.n = 0
}

// grow extends data to need bytes, zeroing any bytes recycled from a prior
// use of the backing array (appendBits ORs into them).
func (b *bitString) grow(need int) {
	old := len(b.data)
	if need <= old {
		return
	}
	if need <= cap(b.data) {
		b.data = b.data[:need]
		clear(b.data[old:])
		return
	}
	b.data = append(b.data, make([]byte, need-old)...)
}

// appendBits appends the low nbits of v, most significant bit first.
func (b *bitString) appendBits(v uint64, nbits uint) {
	b.grow((b.n + int(nbits) + 7) / 8)
	for nbits > 0 {
		space := 8 - uint(b.n)&7 // free bits in the current byte
		take := nbits
		if take > space {
			take = space
		}
		chunk := byte(v>>(nbits-take)) & byte(int(1)<<take-1)
		b.data[b.n>>3] |= chunk << (space - take)
		b.n += int(take)
		nbits -= take
	}
}

func (b *bitString) appendBit(bit uint) { b.appendBits(uint64(bit), 1) }

func (b *bitString) append2(sym uint) { b.appendBits(uint64(sym), 2) }

func (b *bitString) appendAddr(a uint32) { b.appendBits(uint64(a), addrBits) }

// Len returns the number of bits in the string.
func (b *bitString) Len() int { return b.n }

// bitReader consumes a bitString front to back.
type bitReader struct {
	src bitString
	pos int
}

// readBits reads the next nbits as an unsigned value, most significant bit
// first, in byte-wide chunks.
func (r *bitReader) readBits(nbits uint) (uint64, error) {
	if r.pos+int(nbits) > r.src.n {
		return 0, fmt.Errorf("core: compact trace truncated at bit %d", r.pos)
	}
	var v uint64
	for nbits > 0 {
		avail := 8 - uint(r.pos)&7 // unread bits in the current byte
		take := nbits
		if take > avail {
			take = avail
		}
		chunk := r.src.data[r.pos>>3] >> (avail - take) & byte(int(1)<<take-1)
		v = v<<take | uint64(chunk)
		r.pos += int(take)
		nbits -= take
	}
	return v, nil
}

func (r *bitReader) readBit() (uint, error) {
	v, err := r.readBits(1)
	return uint(v), err
}

func (r *bitReader) read2() (uint, error) {
	v, err := r.readBits(2)
	return uint(v), err
}

func (r *bitReader) readAddr() (uint32, error) {
	v, err := r.readBits(addrBits)
	return uint32(v), err
}
