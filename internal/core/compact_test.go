package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// walkTrace follows program control flow from head, making pseudo-random
// decisions at conditionals and choosing pseudo-random leaders at indirect
// branches, recording blocks and branch outcomes exactly as a trace
// recorder would. The path has unique blocks and ends either after a taken
// branch or at a block whose last instruction falls through (both real
// trace endings), so it is a valid input for the Figure 14 encoding.
func walkTrace(rng *rand.Rand, p *program.Program, head isa.Addr, maxBlocks int) (blocks []codecache.BlockSpec, outcomes []obsBranch, lastAddr isa.Addr) {
	leaders := p.BlockStarts()
	seen := map[isa.Addr]bool{}
	cur := head
	for len(blocks) < maxBlocks {
		if seen[cur] {
			break
		}
		seen[cur] = true
		n := p.BlockLen(cur)
		blocks = append(blocks, codecache.BlockSpec{Start: cur, Len: n})
		lastAddr = cur + isa.Addr(n) - 1
		last := p.At(lastAddr)
		if len(blocks) == maxBlocks {
			// Force an ending that does not extend the path: if the block
			// ends with a conditional, record a not-taken outcome.
			if last.IsConditional() {
				outcomes = append(outcomes, obsBranch{addr: lastAddr, taken: false})
			}
			break
		}
		switch {
		case last.Op == isa.Halt:
			return blocks, outcomes, lastAddr
		case last.Op == isa.Br:
			if rng.Intn(2) == 0 {
				outcomes = append(outcomes, obsBranch{addr: lastAddr, taken: false})
				cur = lastAddr + 1
			} else {
				outcomes = append(outcomes, obsBranch{addr: lastAddr, taken: true, target: last.Target})
				cur = last.Target
				if seen[cur] {
					return blocks, outcomes, lastAddr
				}
			}
		case last.Op == isa.Jmp || last.Op == isa.Call:
			outcomes = append(outcomes, obsBranch{addr: lastAddr, taken: true, target: last.Target})
			cur = last.Target
			if seen[cur] {
				return blocks, outcomes, lastAddr
			}
		case last.IsIndirect():
			tgt := leaders[rng.Intn(len(leaders))]
			outcomes = append(outcomes, obsBranch{addr: lastAddr, taken: true, indirect: true, target: tgt})
			cur = tgt
			if seen[cur] {
				return blocks, outcomes, lastAddr
			}
		default:
			// Pure fall-through into the next leader.
			cur = lastAddr + 1
		}
	}
	return blocks, outcomes, lastAddr
}

func sameBlocks(a, b []codecache.BlockSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCompactRoundTripRandomWalks(t *testing.T) {
	progs := []*program.Program{
		workloads.MustGet("gcc").Build(1),
		workloads.MustGet("perlbmk").Build(1),
		workloads.MustGet("vortex").Build(1),
		workloads.Random(workloads.GenConfig{Seed: 7, Funcs: 4}),
	}
	// One arena and one decode scratch shared across all iterations, so the
	// property also exercises the pooled storage path: spans must decode
	// identically to standalone encodings no matter how often the arena has
	// grown or the scratch has been reused.
	var arena traceArena
	var scratch []codecache.BlockSpec
	check := func(seed int64, progIdx uint8, headIdx uint16, size uint8) bool {
		p := progs[int(progIdx)%len(progs)]
		leaders := p.BlockStarts()
		head := leaders[int(headIdx)%len(leaders)]
		rng := rand.New(rand.NewSource(seed))
		maxBlocks := 1 + int(size)%24
		blocks, outcomes, lastAddr := walkTrace(rng, p, head, maxBlocks)
		if len(blocks) == 0 {
			return true
		}
		ct := encodeTrace(outcomes, lastAddr)
		// Figure 14 budget: two bits per branch, addrBits extra per taken
		// indirect, and a 2-bit end marker plus an addrBits end address.
		wantBits := 2 + addrBits
		for _, o := range outcomes {
			wantBits += 2
			if o.indirect && o.taken {
				wantBits += addrBits
			}
		}
		if ct.bits.Len() != wantBits || ct.Bytes() != (wantBits+7)/8 {
			t.Logf("encoding size: %d bits / %d bytes, want %d bits / %d bytes (outcomes=%+v)",
				ct.bits.Len(), ct.Bytes(), wantBits, (wantBits+7)/8, outcomes)
			return false
		}
		got, closing, hasClosing, err := ct.Decode(p, head)
		if err != nil {
			t.Logf("decode error: %v (head=%d blocks=%v outcomes=%+v last=%d)",
				err, head, blocks, outcomes, lastAddr)
			return false
		}
		if !sameBlocks(got, blocks) {
			t.Logf("decode mismatch: got %v want %v (outcomes=%+v last=%d)",
				got, blocks, outcomes, lastAddr)
			return false
		}
		// The arena-stored copy must account and decode identically.
		span := arena.add(outcomes, lastAddr)
		if span.bytes() != ct.Bytes() {
			t.Logf("span bytes = %d, want %d", span.bytes(), ct.Bytes())
			return false
		}
		got2, closing2, hasClosing2, err := arena.trace(span).DecodeInto(p, head, scratch)
		scratch = got2
		if err != nil {
			t.Logf("arena decode error: %v", err)
			return false
		}
		if !sameBlocks(got2, got) || closing2 != closing || hasClosing2 != hasClosing {
			t.Logf("arena decode mismatch: got %v/%d/%v want %v/%d/%v",
				got2, closing2, hasClosing2, got, closing, hasClosing)
			return false
		}
		// When the path's final instruction is a taken branch, the decoder
		// must surface the closing transfer and its target.
		wantClosing := len(outcomes) > 0 && outcomes[len(outcomes)-1].taken &&
			outcomes[len(outcomes)-1].addr == lastAddr
		if hasClosing != wantClosing {
			t.Logf("closing = %v, want %v (outcomes=%+v)", hasClosing, wantClosing, outcomes)
			return false
		}
		if hasClosing && closing != outcomes[len(outcomes)-1].target {
			t.Logf("closing target = %d, want %d", closing, outcomes[len(outcomes)-1].target)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactEncodingSize(t *testing.T) {
	// The representation must match Figure 14's budget: two bits per
	// branch, 32 extra bits per indirect target, and a 2-bit end marker
	// plus a 32-bit end address.
	outcomes := []obsBranch{
		{addr: 10, taken: true, target: 20},
		{addr: 25, taken: false},
		{addr: 30, taken: true, indirect: true, target: 40},
	}
	ct := encodeTrace(outcomes, 45)
	wantBits := 2 + 2 + (2 + 32) + 2 + 32
	if got := ct.bits.Len(); got != wantBits {
		t.Errorf("bits = %d, want %d", got, wantBits)
	}
	if ct.Bytes() != (wantBits+7)/8 {
		t.Errorf("Bytes = %d", ct.Bytes())
	}
}

func TestCompactDecodeSingleBlock(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 5)
	b.Label("l")
	b.AddImm(1, 1, -1)
	b.Br(isa.CondGt, 1, 0, "l")
	b.Halt()
	p := b.MustBuild()
	// A trace that is only the entry block [0..0]: no branch outcomes.
	ct := encodeTrace(nil, 0)
	got, _, _, err := ct.Decode(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 0 || got[0].Len != 1 {
		t.Errorf("got %v", got)
	}
}

func TestCompactDecodeCyclic(t *testing.T) {
	// Cyclic trace: block [1..3] ending with a taken backward branch to
	// itself. The end address equals the final branch; the decoder must
	// not fabricate a second pass over the body.
	b := program.NewBuilder()
	b.MovImm(1, 5)
	b.Label("l")
	b.AddImm(1, 1, -1)
	b.Nop()
	b.Br(isa.CondGt, 1, 0, "l")
	b.Halt()
	p := b.MustBuild()
	outcomes := []obsBranch{{addr: 3, taken: true, target: 1}}
	ct := encodeTrace(outcomes, 3)
	got, closing, hasClosing, err := ct.Decode(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Start != 1 || got[0].Len != 3 {
		t.Errorf("got %v", got)
	}
	if !hasClosing || closing != 1 {
		t.Errorf("closing = %d, %v; want 1, true", closing, hasClosing)
	}
}

func TestCompactDecodeErrors(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 5)
	b.Label("l")
	b.AddImm(1, 1, -1)
	b.Br(isa.CondGt, 1, 0, "l")
	b.Halt()
	p := b.MustBuild()

	t.Run("truncated", func(t *testing.T) {
		var bs bitString
		bs.append2(symTaken) // taken symbol then nothing
		if _, _, _, err := (CompactTrace{bits: bs}).Decode(p, 0); err == nil {
			t.Error("expected truncation error")
		}
	})
	t.Run("not-taken at unconditional", func(t *testing.T) {
		// Head 0 -> first branch encountered is the conditional at 2, so
		// put a taken symbol there leading to 1, then a not-taken at the
		// same conditional again, then claim an end inside dead space.
		var bs bitString
		bs.append2(symNotTaken)
		bs.append2(symEnd)
		bs.appendAddr(99) // end address far outside any walked segment
		if _, _, _, err := (CompactTrace{bits: bs}).Decode(p, 0); err == nil {
			t.Error("expected out-of-segment end error")
		}
	})
	t.Run("indirect symbol at direct branch", func(t *testing.T) {
		var bs bitString
		bs.append2(symIndirect)
		bs.appendAddr(0)
		if _, _, _, err := (CompactTrace{bits: bs}).Decode(p, 0); err == nil {
			t.Error("expected indirect-at-direct error")
		}
	})
}
