package core

import (
	"errors"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/profile"
)

// This file implements simplified versions of the other trace-selection
// schemes the paper surveys in §5, so the related-work comparison can be
// run head-to-head:
//
//   - BOA (IBM): during emulation, every conditional branch carries
//     per-direction counters; after an entry point is emulated 15 times, a
//     trace is selected by statically following each branch's most
//     frequent direction.
//   - Wiggins/Redstone (Compaq): the program counter is sampled
//     periodically to find trace starts; from a start, instrumentation
//     tallies each branch's targets over several executions and the trace
//     follows the most frequent target of each selected branch.
//
// Both profile more branches than NET in the hope of picking better
// traces. The paper's point — which the "related" experiment reproduces —
// is that however carefully a single path is chosen, the problems of trace
// separation and excessive code duplication remain.

// dirCounts tallies outcomes of one branch: [not-taken, taken] for
// conditionals, or per-target counts for indirect branches.
type dirCounts struct {
	notTaken uint64
	taken    uint64
	targets  map[isa.Addr]uint64
}

func (d *dirCounts) observe(taken bool, indirect bool, tgt isa.Addr) {
	if !taken {
		d.notTaken++
		return
	}
	d.taken++
	if indirect {
		if d.targets == nil {
			d.targets = map[isa.Addr]uint64{}
		}
		d.targets[tgt]++
	}
}

// hotTarget returns the branch's most frequent resolution: whether it is
// mostly taken and, for indirect branches, the dominant target.
func (d *dirCounts) hot(in isa.Instr) (taken bool, tgt isa.Addr, ok bool) {
	if in.IsConditional() {
		if d.taken == 0 && d.notTaken == 0 {
			return false, 0, false
		}
		if d.taken >= d.notTaken {
			return true, in.Target, true
		}
		return false, 0, true
	}
	if in.IsIndirect() {
		var best isa.Addr
		var n uint64
		for t, c := range d.targets {
			if c > n || (c == n && t < best) {
				best, n = t, c
			}
		}
		if n == 0 {
			return false, 0, false
		}
		return true, best, true
	}
	return true, in.Target, true
}

// BOA implements the IBM Binary-translated Optimization Architecture's
// selection scheme as described in §5.
type BOA struct {
	params    Params
	threshold int
	entries   *profile.CounterPool
	branches  map[isa.Addr]*dirCounts
}

// NewBOA returns a BOA selector. The paper reports BOA selects after an
// entry is emulated 15 times.
func NewBOA(params Params) *BOA {
	return &BOA{
		params:    params.withDefaults(),
		threshold: 15,
		entries:   profile.NewCounterPool(),
		branches:  map[isa.Addr]*dirCounts{},
	}
}

// Name implements Selector.
func (b *BOA) Name() string { return "boa" }

// Preallocate implements Preallocator for the entry-counter pool.
func (b *BOA) Preallocate(addrSpace int) { b.entries.EnsureCap(addrSpace) }

// Transfer implements Selector.
func (b *BOA) Transfer(env Env, ev Event) {
	in := env.Program().At(ev.Src)
	if in.IsConditional() || in.IsIndirect() {
		d := b.branches[ev.Src]
		if d == nil {
			d = &dirCounts{}
			b.branches[ev.Src] = d
		}
		d.observe(ev.Taken, in.IsIndirect(), ev.Tgt)
	}
	if !ev.Taken || ev.ToCache || !ev.Backward() {
		return
	}
	b.qualify(env, ev.Tgt)
}

// CacheExit implements Selector: exit targets may also begin traces.
func (b *BOA) CacheExit(env Env, _, tgt isa.Addr) { b.qualify(env, tgt) }

func (b *BOA) qualify(env Env, tgt isa.Addr) {
	if env.Cache().HasEntry(tgt) {
		return
	}
	if b.entries.Incr(tgt) < b.threshold {
		return
	}
	b.entries.Release(tgt)
	if spec, ok := followHot(env, tgt, b.branches, b.params); ok {
		if _, err := env.Insert(spec); err != nil {
			env.Fail(errors.Join(errors.New("boa: inserting trace"), err))
		}
	}
}

// Stats implements Selector.
func (b *BOA) Stats() ProfileStats {
	return ProfileStats{
		CountersHighWater: b.entries.HighWater() + len(b.branches),
		CounterAllocs:     b.entries.Allocations() + uint64(len(b.branches)),
	}
}

// followHot forms a trace from entry by following each branch's most
// frequent direction, stopping at unprofiled branches, cached regions,
// revisited blocks, halts, or the size limits.
func followHot(env Env, entry isa.Addr, branches map[isa.Addr]*dirCounts, params Params) (codecache.Spec, bool) {
	p := env.Program()
	var blocks []codecache.BlockSpec
	seen := map[isa.Addr]bool{}
	instrs := 0
	cyclic := false
	cur := entry
	for len(blocks) < params.MaxTraceBlocks {
		if seen[cur] {
			cyclic = cur == entry
			break
		}
		if len(blocks) > 0 && env.Cache().HasEntry(cur) {
			break
		}
		n := p.BlockLen(cur)
		if instrs+n > params.MaxTraceInstrs {
			break
		}
		blocks = append(blocks, codecache.BlockSpec{Start: cur, Len: n})
		seen[cur] = true
		instrs += n
		end := cur + isa.Addr(n)
		last := p.At(end - 1)
		switch {
		case last.Op == isa.Halt:
			return spec(entry, blocks, false), true
		case last.Op == isa.Jmp || last.Op == isa.Call:
			cur = last.Target
		case last.IsConditional() || last.IsIndirect():
			d := branches[end-1]
			if d == nil {
				return spec(entry, blocks, false), true
			}
			taken, tgt, ok := d.hot(last)
			if !ok {
				return spec(entry, blocks, false), true
			}
			if taken {
				cur = tgt
			} else {
				cur = end
			}
		default:
			cur = end
		}
	}
	if len(blocks) == 0 {
		return codecache.Spec{}, false
	}
	return spec(entry, blocks, cyclic), true
}

func spec(entry isa.Addr, blocks []codecache.BlockSpec, cyclic bool) codecache.Spec {
	return codecache.Spec{Entry: entry, Kind: codecache.KindTrace, Blocks: blocks, Cyclic: cyclic}
}

// WRS implements a Wiggins/Redstone-style scheme (§5): periodic sampling
// finds trace starts; a start that accumulates enough samples enters an
// instrumentation phase during which its branch outcomes are tallied; the
// trace then follows each branch's most frequent target.
type WRS struct {
	params Params
	// SamplePeriod is the distance between samples, in interpreted taken
	// branches.
	SamplePeriod int
	// SampleThreshold is the number of samples a target needs before
	// instrumentation begins.
	SampleThreshold int
	// InstrumentExecs is how many executions of the start are observed
	// before the trace is selected.
	InstrumentExecs int

	tick     uint64
	samples  *profile.CounterPool
	active   map[isa.Addr]*wrsInstrument
	branches map[isa.Addr]*dirCounts // shared outcome tallies while instrumenting
}

type wrsInstrument struct {
	execs int
}

// NewWRS returns a Wiggins/Redstone-style selector.
func NewWRS(params Params) *WRS {
	return &WRS{
		params:          params.withDefaults(),
		SamplePeriod:    31, // co-prime with loop lengths to avoid aliasing
		SampleThreshold: 4,
		InstrumentExecs: 16,
		samples:         profile.NewCounterPool(),
		active:          map[isa.Addr]*wrsInstrument{},
		branches:        map[isa.Addr]*dirCounts{},
	}
}

// Name implements Selector.
func (w *WRS) Name() string { return "wrs" }

// Preallocate implements Preallocator for the sample-counter pool.
func (w *WRS) Preallocate(addrSpace int) { w.samples.EnsureCap(addrSpace) }

// Transfer implements Selector.
func (w *WRS) Transfer(env Env, ev Event) {
	if !ev.Taken {
		w.tallyIfActive(env, ev)
		return
	}
	// Instrumentation tallies every transfer while any head is active.
	w.tallyIfActive(env, ev)
	if ev.ToCache {
		return
	}
	// Count executions of instrumented heads.
	if inst, ok := w.active[ev.Tgt]; ok {
		inst.execs++
		if inst.execs >= w.InstrumentExecs {
			delete(w.active, ev.Tgt)
			if spec, ok := followHot(env, ev.Tgt, w.branches, w.params); ok {
				if _, err := env.Insert(spec); err != nil {
					env.Fail(errors.Join(errors.New("wrs: inserting trace"), err))
				}
			}
		}
		return
	}
	// Periodic PC sampling of branch targets.
	w.tick++
	if w.tick%uint64(w.SamplePeriod) != 0 {
		return
	}
	if env.Cache().HasEntry(ev.Tgt) {
		return
	}
	if w.samples.Incr(ev.Tgt) >= w.SampleThreshold {
		w.samples.Release(ev.Tgt)
		w.active[ev.Tgt] = &wrsInstrument{}
	}
}

func (w *WRS) tallyIfActive(env Env, ev Event) {
	if len(w.active) == 0 {
		return
	}
	in := env.Program().At(ev.Src)
	if !in.IsConditional() && !in.IsIndirect() {
		return
	}
	d := w.branches[ev.Src]
	if d == nil {
		d = &dirCounts{}
		w.branches[ev.Src] = d
	}
	d.observe(ev.Taken, in.IsIndirect(), ev.Tgt)
}

// CacheExit implements Selector. Wiggins/Redstone discovers starts purely
// by sampling, so exits need no special handling.
func (w *WRS) CacheExit(Env, isa.Addr, isa.Addr) {}

// Stats implements Selector.
func (w *WRS) Stats() ProfileStats {
	return ProfileStats{
		CountersHighWater: w.samples.HighWater() + len(w.branches),
		CounterAllocs:     w.samples.Allocations() + uint64(len(w.branches)),
	}
}
