// Adaptive per-phase policy selection (extension beyond the paper;
// ROADMAP direction 2). The paper's grid shows no static policy — NET,
// LEI, or either trace-combination variant — wins across every workload:
// loop-nest phases favor NET's cheap backward-target counters, call- and
// dispatch-heavy phases favor LEI's cycle detection, and phases where
// selected regions leak executions through early exits favor the +comb
// variants. PhaseSelector closes that gap online: a windowed integer
// detector classifies the current phase from signals the pipeline already
// produces (branch-kind mix, backward-branch rate, cache-exit rate) and
// switches the active policy, with dwell hysteresis so it cannot thrash,
// and codecache.FlushPartition so a switch never leaves a region selected
// by the outgoing policy reachable.
package core

import (
	"repro/internal/isa"
	"repro/internal/vm"
)

// Policy identifies one of the static selection policies the adaptive
// meta-selector can activate.
type Policy uint8

const (
	// PolicyNET selects next-executing tails (paper §2.1).
	PolicyNET Policy = iota
	// PolicyLEI selects last-executed iterations (paper §3).
	PolicyLEI
	// PolicyNETComb is NET with trace combination (paper §4).
	PolicyNETComb
	// PolicyLEIComb is LEI with trace combination (paper §4).
	PolicyLEIComb
	// NumPolicies is the number of selectable policies.
	NumPolicies
)

// String names the policy after the selector it activates.
func (p Policy) String() string {
	switch p {
	case PolicyNET:
		return "net"
	case PolicyLEI:
		return "lei"
	case PolicyNETComb:
		return "net+comb"
	case PolicyLEIComb:
		return "lei+comb"
	}
	return "invalid"
}

// Phase classification thresholds, in 1/256 shares of a detector window's
// interpreted transfers. A window is classified call-heavy when call/return
// taken branches exceed callShare256, dispatch-heavy when indirect taken
// branches exceed indShare256, and loop-dominated otherwise; independently,
// a cache-exit tally above exitShare256 (relative to the window's transfer
// count) marks the phase region-leaky, which escalates the chosen base
// policy to its trace-combination variant (the paper's cure for executions
// escaping through early exits, §4). Above steadyExit256 the window is
// not leaky but *hot* — almost all execution is inside the cache and the
// interpreter only sees the exits — and reclassifying (hence flushing a
// working partition) on such a window would be pure loss, so the detector
// keeps the active policy.
//
// The values are frozen by internal/difftest's RefPhaseDetector; changing
// one here without updating the reference is a differential-test failure,
// not a tuning knob.
const (
	indShare256   = 24  // ~9.4% indirect taken branches
	callShare256  = 48  // ~18.8% call/return taken branches
	exitShare256  = 40  // ~15.6% cache exits per transfer
	steadyExit256 = 768 // 3 exits per transfer: cache is hot, stay put
)

// PhaseDetector classifies program phases from a sliding window of
// selector observations and applies dwell hysteresis to policy changes.
// It is pure integer arithmetic over counts the selector callbacks already
// see, so detection adds no allocation and no floating point to the hot
// path.
//
// A window is measured in interpreted transfers, not raw observations: the
// branch-kind mix only exists while the interpreter is running, so windows
// fill quickly exactly when the cache is cold or mismatched (program start,
// phase change) and trickle when the cache is serving well. Cache exits are
// tallied alongside and read as a rate against the window's transfers.
type PhaseDetector struct {
	window int
	dwell  int

	// Current-window counters. n counts interpreted transfers; taken, back,
	// call, and ind classify them; exit tallies cache exits seen while the
	// window accumulated.
	n     int
	taken int // taken branches
	back  int // backward taken branches
	call  int // taken calls and returns
	ind   int // taken indirect jumps and calls
	exit  int // cache exits

	active  Policy
	desired Policy // candidate policy from recent windows
	streak  int    // consecutive windows that agreed on desired
	cool    int    // windows left before classification resumes

	// Capacity-pressure sampling: capNow is the cache's cumulative
	// capacity-flush count as of the latest observation, capAtWindow its
	// value when the previous window closed. A difference means the active
	// policy's working set overflowed the bounded cache during this window.
	capNow      int
	capAtWindow int

	windows  uint64
	switches uint64
	total    uint64 // observations ever seen (transfers and exits)
}

// reset re-arms the detector for a fresh run.
func (d *PhaseDetector) reset(window, dwell int) {
	d.window = window
	d.dwell = dwell
	d.n, d.taken, d.back, d.call, d.ind, d.exit = 0, 0, 0, 0, 0, 0
	d.active = PolicyNET
	d.desired = PolicyNET
	d.streak = 0
	d.cool = 0
	d.capNow = 0
	d.capAtWindow = 0
	d.windows = 0
	d.switches = 0
	d.total = 0
}

// notePressure records the cache's cumulative capacity-flush count so the
// next classification can tell whether the active policy's working set
// fits the bounded cache.
//
//lint:hotpath per-interpreted-transfer pressure sampling
func (d *PhaseDetector) notePressure(capacityFlushes int) {
	d.capNow = capacityFlushes
}

// observe records one interpreted transfer and reports whether the window
// boundary it may have completed switched the active policy.
//
//lint:hotpath per-interpreted-transfer phase accounting
func (d *PhaseDetector) observe(ev Event) bool {
	d.n++
	d.total++
	if ev.Taken {
		d.taken++
		if ev.Tgt <= ev.Src {
			d.back++
		}
		switch ev.Kind {
		case vm.KindCall, vm.KindReturn:
			d.call++
		case vm.KindIndCall, vm.KindIndJump:
			d.ind++
		}
	}
	if d.n >= d.window {
		return d.endWindow()
	}
	return false
}

// observeExit records one cache exit. Exits never complete a window — only
// interpreted transfers do — so a policy switch can only happen inside
// Transfer, and a fully cache-resident stretch (exits but no transfers)
// can never trigger one.
//
//lint:hotpath per-cache-exit phase accounting
func (d *PhaseDetector) observeExit() {
	d.total++
	d.exit++
}

// endWindow classifies the completed window, advances the hysteresis
// state, and reports whether the active policy changed. A change requires
// the same non-active policy to win dwell consecutive windows, so switches
// are at least window*dwell interpreted transfers apart — and after a
// switch the detector sits out dwell cooldown windows before classifying
// again, because those windows measure the freshly flushed cache warming
// up, not the program: a cold cache shows near-zero exits, which would
// immediately de-escalate a +comb policy and oscillate.
func (d *PhaseDetector) endWindow() bool {
	want := d.classify()
	d.windows++
	d.n, d.taken, d.back, d.call, d.ind, d.exit = 0, 0, 0, 0, 0, 0
	d.capAtWindow = d.capNow
	if d.cool > 0 {
		d.cool--
		d.desired = d.active
		d.streak = 0
		return false
	}
	if want == d.active {
		d.desired = d.active
		d.streak = 0
		return false
	}
	if want == d.desired {
		d.streak++
	} else {
		d.desired = want
		d.streak = 1
	}
	if d.streak < d.dwell {
		return false
	}
	d.active = want
	d.streak = 0
	d.cool = d.dwell
	d.switches++
	return true
}

// classify maps the completed window's counter mix to the policy that
// historically wins that mix in the experiments grid: LEI for call- and
// dispatch-heavy phases (interprocedural and indirect cycles NET's
// backward-branch heuristic misses), NET for loop-dominated phases, and
// the +comb escalation when executions keep leaking out of cached regions
// or the active policy's working set keeps overflowing the bounded cache
// (capacity flushes make a lean policy re-select the same overlapping
// traces from scratch — churn that combination absorbs by concentrating
// coverage into fewer, longer-lived regions). Two gates keep it from
// reclassifying on windows that carry no phase signal: a window whose
// exits dwarf its transfers means the cache is serving the current phase
// (flushing it would be pure loss), and a window with no backward, call,
// or indirect taken branches is straight-line glue with nothing for any
// region policy to grab — both keep the active policy.
func (d *PhaseDetector) classify() Policy {
	n := d.n
	if d.exit*256 >= n*steadyExit256 {
		return d.active
	}
	if d.back+d.call+d.ind == 0 {
		return d.active
	}
	base := PolicyNET
	if d.ind*256 >= n*indShare256 || d.call*256 >= n*callShare256 {
		base = PolicyLEI
	}
	leaky := d.exit*256 >= n*exitShare256
	pressured := d.capNow != d.capAtWindow
	if leaky || pressured {
		if base == PolicyNET {
			return PolicyNETComb
		}
		return PolicyLEIComb
	}
	return base
}

// Active returns the policy the detector currently prescribes.
func (d *PhaseDetector) Active() Policy { return d.active }

// Switches returns how many times the active policy has changed.
func (d *PhaseDetector) Switches() uint64 { return d.switches }

// Windows returns how many observation windows have completed.
func (d *PhaseDetector) Windows() uint64 { return d.windows }

// Observations returns the total number of observations ever recorded.
func (d *PhaseDetector) Observations() uint64 { return d.total }

// PhaseSelector is the adaptive meta-selector: it owns one instance of
// every static policy, forwards selector callbacks to the active one, and
// lets a PhaseDetector switch the active policy at window boundaries. On a
// switch the outgoing policy's profiling statistics are absorbed into
// running accumulators, the policy is Reset (its counters and history must
// not leak into its next activation), and the code cache retires the
// outgoing partition via FlushPartition — so no region selected under the
// old policy stays reachable and cross-policy state never mixes.
//
// The simulator only invokes selector callbacks while interpreting (no
// cached region is active), and re-probes the cache after every Transfer,
// so flushing from inside a callback is safe: no stale region pointer is
// held anywhere when the partition retires.
type PhaseSelector struct {
	params Params
	det    PhaseDetector
	// subs holds the concrete policy selectors, indexed by Policy. The
	// array never changes after construction; switches only move active.
	//lint:keep fixed policy instances; Reset re-arms each element in place
	subs   [NumPolicies]Selector
	active Policy

	// Statistics absorbed from policies retired by a switch: totals sum,
	// high-water marks take the maximum, matching how the per-policy stats
	// themselves aggregate over a run.
	accCounterAllocs  uint64
	accObservedTraces uint64
	accCountersHigh   int
	accObservedHigh   int
}

// NewAdaptive returns an adaptive meta-selector over all four static
// policies, starting on NET (the paper's baseline).
func NewAdaptive(params Params) *PhaseSelector {
	a := &PhaseSelector{}
	a.params = params.withDefaults()
	a.subs[PolicyNET] = NewNET(a.params)
	a.subs[PolicyLEI] = NewLEI(a.params)
	a.subs[PolicyNETComb] = NewCombiner(BaseNET, a.params)
	a.subs[PolicyLEIComb] = NewCombiner(BaseLEI, a.params)
	a.det.reset(a.params.PhaseWindow, a.params.PhaseDwell)
	a.active = PolicyNET
	return a
}

// Name implements Selector.
func (a *PhaseSelector) Name() string { return "adaptive" }

// ActivePolicy returns the currently active policy.
func (a *PhaseSelector) ActivePolicy() Policy { return a.active }

// Detector exposes the phase detector for tests and diagnostics.
func (a *PhaseSelector) Detector() *PhaseDetector { return &a.det }

// Transfer implements Selector: the active policy sees the event first, so
// a window boundary switches policies between events, never within one.
//
//lint:hotpath per-interpreted-transfer dispatch
func (a *PhaseSelector) Transfer(env Env, ev Event) {
	a.subs[a.active].Transfer(env, ev)
	a.det.notePressure(env.Cache().Flushes())
	if a.det.observe(ev) {
		a.switchTo(env, a.det.active)
	}
}

// CacheExit implements Selector. Exits feed the detector's leak rate but
// never complete a window, so no switch can happen here.
//
//lint:hotpath per-cache-exit dispatch
func (a *PhaseSelector) CacheExit(env Env, src, tgt isa.Addr) {
	a.subs[a.active].CacheExit(env, src, tgt)
	a.det.observeExit()
}

// switchTo retires the active policy and installs next: absorb the
// outgoing policy's statistics, Reset it so its next activation starts
// clean, and retire its cache partition so none of its regions stays
// reachable. Cold path: it runs at most once per window*dwell
// observations.
func (a *PhaseSelector) switchTo(env Env, next Policy) {
	out := a.subs[a.active]
	st := out.Stats()
	a.accCounterAllocs += st.CounterAllocs
	a.accObservedTraces += st.ObservedTraces
	if st.CountersHighWater > a.accCountersHigh {
		a.accCountersHigh = st.CountersHighWater
	}
	if st.ObservedBytesHighWater > a.accObservedHigh {
		a.accObservedHigh = st.ObservedBytesHighWater
	}
	out.(Resettable).Reset(a.params)
	env.Cache().FlushPartition()
	a.active = next
}

// Stats implements Selector: the active policy's live statistics merged
// with everything absorbed from retired partitions. HistoryCap reports the
// configured LEI buffer capacity — the meta-selector always owns one LEI
// history buffer of that size, whether or not LEI is currently active.
func (a *PhaseSelector) Stats() ProfileStats {
	st := a.subs[a.active].Stats()
	st.CounterAllocs += a.accCounterAllocs
	st.ObservedTraces += a.accObservedTraces
	if a.accCountersHigh > st.CountersHighWater {
		st.CountersHighWater = a.accCountersHigh
	}
	if a.accObservedHigh > st.ObservedBytesHighWater {
		st.ObservedBytesHighWater = a.accObservedHigh
	}
	st.HistoryCap = a.params.HistoryCap
	return st
}

// Reset implements Resettable: every policy instance is re-armed in place
// (keeping its allocated tables for reuse), the detector restarts, and the
// absorbed statistics clear.
func (a *PhaseSelector) Reset(params Params) {
	a.params = params.withDefaults()
	for _, s := range a.subs {
		s.(Resettable).Reset(a.params)
	}
	a.det.reset(a.params.PhaseWindow, a.params.PhaseDwell)
	a.active = PolicyNET
	a.accCounterAllocs = 0
	a.accObservedTraces = 0
	a.accCountersHigh = 0
	a.accObservedHigh = 0
}

// Preallocate implements Preallocator by pre-sizing every policy's dense
// tables.
func (a *PhaseSelector) Preallocate(addrSpace int) {
	for _, s := range a.subs {
		if p, ok := s.(Preallocator); ok {
			p.Preallocate(addrSpace)
		}
	}
}
