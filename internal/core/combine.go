package core

import (
	"errors"
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/profile"
)

// BaseAlgorithm selects which trace-selection algorithm trace combination
// layers on (paper §4: combination "does not depend on how traces are
// selected").
type BaseAlgorithm uint8

const (
	// BaseNET builds combined regions from next-executing-tail traces.
	BaseNET BaseAlgorithm = iota
	// BaseLEI builds combined regions from last-executed-iteration traces.
	BaseLEI
)

// Combiner implements trace combination (paper §4.2, Figure 13). It lowers
// the base algorithm's selection threshold to T_start, records the traces
// observed for the next T_prof qualifying executions of the target in the
// compact form of Figure 14, and then combines them: blocks appearing in at
// least T_min observed traces are kept, rejoining paths are added
// (Figure 15), exits targeting member blocks become internal edges, and the
// multi-path region is promoted to the code cache.
//
// Thresholds follow the paper's comparability rule: regions are selected
// after the same number of interpreted executions as under the base
// algorithm, so T_start = baseThreshold − T_prof (35 for NET, 20 for LEI).
type Combiner struct {
	params Params
	// base picks the recording machinery; it is construction-time identity,
	// not run state.
	//lint:keep selector identity, set once by NewCombiner
	base     BaseAlgorithm
	tStart   int
	counters *profile.CounterPool

	// Observed-trace storage, per profiled target: compact encodings live
	// back to back in a grow-only arena and each head keeps a list of spans
	// into it, recycled through spanFree when finalize releases the head.
	// Observed memory stays a measured quantity (Figure 18) — the accounting
	// below counts encoded bytes, which arena storage leaves unchanged.
	//lint:ignore densemap observed-trace storage is keyed by profiled heads only
	observed map[isa.Addr][]traceSpan
	arena    traceArena
	spanFree [][]traceSpan // recycled per-head span lists, all length 0

	// cfg and decBlocks are the combination scratch: one pooled RegionCFG
	// re-armed per finalize and one decode buffer threaded through
	// CompactTrace.DecodeInto.
	//lint:keep self-cleaning: finalize re-arms it via Reset(head) before use
	cfg        RegionCFG
	decBlocks  []codecache.BlockSpec
	curBytes   int
	highBytes  int
	nObserved  uint64
	iterations [3]uint64 // MarkRejoiningPaths iteration histogram: 0, 1, 2+

	// NET base: in-flight tail recordings and targets awaiting their final
	// recording before combination.
	//lint:ignore densemap in-flight recordings are keyed by profiled heads only
	recording map[isa.Addr]*tailRecorder
	order     []isa.Addr
	//lint:ignore densemap combining set is keyed by profiled heads only
	combining map[isa.Addr]bool
	pool      recorderPool

	// LEI base.
	buf *profile.HistoryBuffer
	//lint:keep self-cleaning: begin() walks its touched list before reuse
	scratch leiScratch
}

// NewCombiner returns a trace-combination selector over the base algorithm.
func NewCombiner(base BaseAlgorithm, params Params) *Combiner {
	params = params.withDefaults()
	c := &Combiner{
		params:   params,
		base:     base,
		counters: profile.NewCounterPool(),
		//lint:ignore densemap observed-trace storage is keyed by profiled heads only
		observed: make(map[isa.Addr][]traceSpan),
		//lint:ignore densemap in-flight recordings are keyed by profiled heads only
		recording: make(map[isa.Addr]*tailRecorder),
		//lint:ignore densemap combining set is keyed by profiled heads only
		combining: make(map[isa.Addr]bool),
	}
	switch base {
	case BaseNET:
		c.tStart = params.NETThreshold - params.TProf
	case BaseLEI:
		c.tStart = params.LEIThreshold - params.TProf
		c.buf = profile.NewHistoryBuffer(params.HistoryCap)
	}
	if c.tStart < 1 {
		c.tStart = 1
	}
	return c
}

// Name implements Selector.
func (c *Combiner) Name() string {
	if c.base == BaseNET {
		return "net+comb"
	}
	return "lei+comb"
}

// TStart returns the profiling-start threshold in use.
func (c *Combiner) TStart() int { return c.tStart }

// Preallocate implements Preallocator for the dense tables shared with the
// base algorithms. The observed-trace and recording maps are keyed by the
// handful of heads being profiled at once and stay as maps.
func (c *Combiner) Preallocate(addrSpace int) {
	c.counters.EnsureCap(addrSpace)
	if c.buf != nil {
		c.buf.EnsureAddrCap(addrSpace)
	}
}

// Transfer implements Selector.
//
//lint:hotpath per-interpreted-taken-branch
func (c *Combiner) Transfer(env Env, ev Event) {
	if c.base == BaseNET {
		c.feedRecorders(env, ev)
		if !ev.Taken || ev.ToCache {
			return
		}
		if ev.Backward() {
			c.qualifyNET(env, ev)
		}
		return
	}
	c.transferLEI(env, ev)
}

// CacheExit implements Selector.
//
//lint:hotpath per-cache-exit
func (c *Combiner) CacheExit(env Env, src, tgt isa.Addr) {
	if c.base == BaseNET {
		c.qualifyNET(env, Event{Tgt: tgt, Taken: true})
		return
	}
	c.observeLEI(env, src, tgt, profile.KindExit)
}

// qualifyNET counts a qualifying execution of a potential trace entrance
// under the NET rules and drives the Figure 13 state machine.
func (c *Combiner) qualifyNET(env Env, ev Event) {
	tgt := ev.Tgt
	if c.combining[tgt] {
		return
	}
	if env.Cache().HasEntry(tgt) {
		// A region with this entry was inserted during this very event
		// (e.g. by a recording that just completed); control enters the
		// cache instead of being profiled.
		return
	}
	n := c.counters.Incr(tgt)
	if n > c.tStart {
		if _, active := c.recording[tgt]; !active {
			c.recording[tgt] = c.pool.get(env.Program(), tgt, c.params.MaxTraceInstrs, c.params.MaxTraceBlocks)
			c.order = append(c.order, tgt)
		}
	}
	if n >= c.tStart+c.params.TProf {
		c.counters.Release(tgt)
		c.combining[tgt] = true
		if _, active := c.recording[tgt]; !active {
			c.finalize(env, tgt)
		}
	}
}

// feedRecorders advances active observed-trace recordings; completed ones
// are stored compactly, and a target whose final recording just completed
// is combined.
func (c *Combiner) feedRecorders(env Env, ev Event) {
	if len(c.recording) == 0 {
		return
	}
	kept := c.order[:0]
	for _, head := range c.order {
		r := c.recording[head]
		if !r.feed(ev) {
			kept = append(kept, head)
			continue
		}
		delete(c.recording, head)
		c.store(head, r.branches, r.lastAddr)
		c.pool.put(r) // store encoded the outcomes into the arena; the recorder is free
		if c.combining[head] {
			c.finalize(env, head)
		}
	}
	c.order = kept
}

// transferLEI is the LEI-based variant: cycles are detected exactly as in
// plain LEI, but once the counter passes T_start each completed cycle's
// path is stored as an observed trace, and at T_start+T_prof the stored
// traces are combined.
func (c *Combiner) transferLEI(env Env, ev Event) {
	if !ev.Taken {
		return
	}
	if ev.ToCache {
		c.buf.Insert(ev.Src, ev.Tgt, profile.KindEnter)
		return
	}
	c.observeLEI(env, ev.Src, ev.Tgt, profile.KindInterp)
}

// observeLEI runs the LEI cycle logic for one recorded transfer and drives
// the Figure 13 state machine on qualifying cycles.
func (c *Combiner) observeLEI(env Env, src, tgt isa.Addr, kind profile.EntryKind) {
	old, completed := leiCycleParams(c.buf, src, tgt, kind, c.params)
	if !completed {
		return
	}
	n := c.counters.Incr(tgt)
	if n <= c.tStart {
		return
	}
	if spec, outcomes, formed := formLEITrace(env.Program(), env.Cache(), c.buf, tgt, old, c.params, &c.scratch); formed {
		lastBlock := spec.Blocks[len(spec.Blocks)-1]
		lastAddr := lastBlock.Start + isa.Addr(lastBlock.Len) - 1
		c.store(tgt, outcomes, lastAddr)
	}
	if n >= c.tStart+c.params.TProf {
		c.counters.Release(tgt)
		c.buf.TruncateAfter(old)
		c.finalize(env, tgt)
	}
}

// store encodes one observed trace into the arena, records its span under
// the target, and maintains the Figure 18 memory accounting (the encoded
// byte count, which arena storage leaves unchanged).
func (c *Combiner) store(tgt isa.Addr, branches []obsBranch, lastAddr isa.Addr) {
	s := c.arena.add(branches, lastAddr)
	if len(c.observed[tgt]) == 0 {
		if n := len(c.spanFree); n > 0 {
			c.observed[tgt] = c.spanFree[n-1]
			c.spanFree = c.spanFree[:n-1]
		}
	}
	c.observed[tgt] = append(c.observed[tgt], s)
	c.curBytes += s.bytes()
	if c.curBytes > c.highBytes {
		c.highBytes = c.curBytes
	}
	c.nObserved++
}

// finalize combines the observed traces for head and promotes the region.
func (c *Combiner) finalize(env Env, head isa.Addr) {
	delete(c.combining, head)
	traces := c.observed[head]
	delete(c.observed, head)
	for _, s := range traces {
		c.curBytes -= s.bytes()
	}
	if cap(traces) > 0 {
		// Recycle the span list for the next profiled head. The spans stay
		// readable through the decode loop below: recycling only truncates
		// the list, and reuse cannot happen before the next store.
		c.spanFree = append(c.spanFree, traces[:0])
	}
	if len(traces) == 0 {
		return
	}
	g := &c.cfg
	g.Reset(head)
	for _, s := range traces {
		blocks, closing, hasClosing, err := c.arena.trace(s).DecodeInto(env.Program(), head, c.decBlocks)
		if err != nil {
			env.Fail(errors.Join(fmt.Errorf("combiner: decoding observed trace at %d", head), err))
			return
		}
		c.decBlocks = blocks
		if len(blocks) == 0 {
			continue
		}
		if err := g.AddTrace(blocks, closing, hasClosing); err != nil {
			env.Fail(err)
			return
		}
	}
	if g.NumBlocks() == 0 {
		return
	}
	g.MarkFrequent(c.params.TMin)
	if !c.params.AblateRejoinPaths {
		iters := g.MarkRejoiningPaths()
		if iters > 2 {
			iters = 2
		}
		c.iterations[iters]++
	}
	spec, ok := g.BuildSpec(env.Program())
	if !ok {
		return
	}
	if env.Cache().HasEntry(spec.Entry) {
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("combiner: inserting region"), err))
	}
}

// Reset implements Resettable: it re-arms the selector for a fresh run with
// new parameters, recycling in-flight recorders and span lists and keeping
// the counter table, the history buffer (reallocated only when HistoryCap
// changes), the trace-formation and combination scratch, the observed-trace
// arena capacity, and the map buckets.
func (c *Combiner) Reset(params Params) {
	params = params.withDefaults()
	c.params = params
	switch c.base {
	case BaseNET:
		c.tStart = params.NETThreshold - params.TProf
	case BaseLEI:
		c.tStart = params.LEIThreshold - params.TProf
		c.buf.Resize(params.HistoryCap)
	}
	if c.tStart < 1 {
		c.tStart = 1
	}
	c.counters.Reset()
	for _, l := range c.observed {
		if cap(l) > 0 {
			c.spanFree = append(c.spanFree, l[:0])
		}
	}
	clear(c.observed)
	c.arena.reset()
	c.cfg.Reset(0)
	c.decBlocks = c.decBlocks[:0]
	for _, r := range c.recording {
		c.pool.put(r)
	}
	clear(c.recording)
	clear(c.combining)
	c.order = c.order[:0]
	c.curBytes, c.highBytes = 0, 0
	c.nObserved = 0
	c.iterations = [3]uint64{}
}

// Stats implements Selector.
func (c *Combiner) Stats() ProfileStats {
	s := ProfileStats{
		CountersHighWater:      c.counters.HighWater(),
		CounterAllocs:          c.counters.Allocations(),
		ObservedBytesHighWater: c.highBytes,
		ObservedTraces:         c.nObserved,
	}
	if c.buf != nil {
		s.HistoryCap = c.buf.Cap()
	}
	return s
}

// RejoinIterations returns how many region combinations needed zero, one,
// or two-plus marking iterations in MarkRejoiningPaths, reproducing the
// paper's §4.2.3 observation.
func (c *Combiner) RejoinIterations() [3]uint64 { return c.iterations }
