package core

import (
	"errors"
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/profile"
	"repro/internal/program"
)

// LEI implements Last-Executed Iteration trace selection (paper §3,
// Figures 5 and 6). LEI keeps a circular history buffer of the most
// recently taken control transfers together with a hash of the targets
// currently in the buffer. When a transfer's target is already in the
// buffer, a cycle has just executed and the buffer holds its path. A
// counter is kept for the target when the cycle could begin a trace — the
// completing branch is backward, or the previous occurrence of the target
// was an exit from the code cache — and when the counter reaches T_cyc the
// cyclic path is reconstructed from the buffer and promoted.
//
// Cache-boundary transfers are recorded in the buffer (see
// profile.EntryKind): exits participate fully in cycle detection, which is
// how a trace grows from an existing trace's exit (§2.2's nested-loop
// walkthrough selects the second trace at the inner trace's exit), while
// enter transfers only support path reconstruction.
type LEI struct {
	params   Params
	buf      *profile.HistoryBuffer
	counters *profile.CounterPool
	//lint:keep self-cleaning: begin() walks its touched list before reuse
	scratch leiScratch
}

// NewLEI returns an LEI selector with the given parameters.
func NewLEI(params Params) *LEI {
	params = params.withDefaults()
	return &LEI{
		params:   params,
		buf:      profile.NewHistoryBuffer(params.HistoryCap),
		counters: profile.NewCounterPool(),
	}
}

// Name implements Selector.
func (l *LEI) Name() string { return "lei" }

// Preallocate implements Preallocator: the counter pool and the history
// buffer's target table are sized to the program's address space up front,
// so the per-taken-branch LEI path never grows a table.
func (l *LEI) Preallocate(addrSpace int) {
	l.counters.EnsureCap(addrSpace)
	l.buf.EnsureAddrCap(addrSpace)
}

// Reset implements Resettable: it re-arms the selector for a fresh run with
// new parameters, keeping the counter table, the history buffer (reallocated
// only when HistoryCap changes), and the trace-formation scratch.
func (l *LEI) Reset(params Params) {
	l.params = params.withDefaults()
	l.buf.Resize(l.params.HistoryCap)
	l.counters.Reset()
}

// Transfer implements Selector. This is INTERPRETED-BRANCH-TAKEN of
// Figure 5; the cached-target fast path (lines 1–4) records an enter entry
// for path reconstruction and skips profiling, and the jump into a newly
// selected trace (line 15) is performed by the simulator, which re-checks
// the cache after the selector runs.
//
//lint:hotpath per-interpreted-taken-branch
func (l *LEI) Transfer(env Env, ev Event) {
	if !ev.Taken {
		return
	}
	if ev.ToCache {
		l.buf.Insert(ev.Src, ev.Tgt, profile.KindEnter)
		return
	}
	l.observe(env, ev.Src, ev.Tgt, profile.KindInterp)
}

// CacheExit implements Selector: the stub transfer out of the code cache is
// recorded and takes part in cycle detection, so an exit target can become
// a trace head (Figure 5 line 9).
//
//lint:hotpath per-cache-exit
func (l *LEI) CacheExit(env Env, src, tgt isa.Addr) {
	l.observe(env, src, tgt, profile.KindExit)
}

// observe runs the Figure 5 profiling logic for one recorded transfer.
func (l *LEI) observe(env Env, src, tgt isa.Addr, kind profile.EntryKind) {
	old, completed := leiCycleParams(l.buf, src, tgt, kind, l.params)
	if !completed {
		return
	}
	if l.counters.Incr(tgt) < l.params.LEIThreshold {
		return
	}
	spec, _, formed := formLEITrace(env.Program(), env.Cache(), l.buf, tgt, old, l.params, &l.scratch)
	l.buf.TruncateAfter(old)
	l.counters.Release(tgt)
	if !formed {
		return
	}
	if _, err := env.Insert(spec); err != nil {
		env.Fail(errors.Join(errors.New("lei: inserting trace"), err))
	}
}

// leiCycle inserts a transfer into the history buffer and applies the
// cycle-detection and trace-head conditions of Figure 5 lines 5–9 and 17.
// It reports the position of the previous occurrence of tgt and whether a
// qualifying cycle completed: the target is in the buffer and either the
// completing transfer is backward or the previous occurrence was reached by
// an exit from the code cache.
func leiCycle(buf *profile.HistoryBuffer, src, tgt isa.Addr, kind profile.EntryKind) (old uint64, qualified bool) {
	return leiCycleParams(buf, src, tgt, kind, Params{})
}

// leiCycleParams is leiCycle honoring the AblateLEIExitGrowth switch.
//
//lint:hotpath shared with the exported one-shot wrappers
func leiCycleParams(buf *profile.HistoryBuffer, src, tgt isa.Addr, kind profile.EntryKind, params Params) (old uint64, qualified bool) {
	seq := buf.Insert(src, tgt, kind)
	old, ok := buf.Lookup(tgt)
	if !ok {
		buf.SetHash(tgt, seq)
		return 0, false
	}
	oldEntry := buf.At(old)
	buf.SetHash(tgt, seq)
	exitGrown := oldEntry.Kind == profile.KindExit && !params.AblateLEIExitGrowth
	if tgt <= src || exitGrown {
		return old, true
	}
	return 0, false
}

// Stats implements Selector.
func (l *LEI) Stats() ProfileStats {
	return ProfileStats{
		CountersHighWater: l.counters.HighWater(),
		CounterAllocs:     l.counters.Allocations(),
		HistoryCap:        l.buf.Cap(),
	}
}

// FormLEITrace reconstructs the cyclic path recorded in the history buffer
// between position old (the previous occurrence of start as a transfer
// target) and the end of the buffer — FORM-TRACE of Figure 6. For each
// transfer of the cycle it appends the fall-through blocks from the
// previous target through the transfer's source, stopping early when an
// instruction begins an existing region (which is also how paths that
// entered the code cache terminate: the enter transfer's target is a cached
// entry). The trace is cyclic when it ends with the branch back to start.
func FormLEITrace(p *program.Program, cache *codecache.Cache, buf *profile.HistoryBuffer, start isa.Addr, old uint64, params Params) (codecache.Spec, bool) {
	spec, _, formed := formLEITrace(p, cache, buf, start, old, params, nil)
	return spec, formed
}

// leiScratch is the reusable working state of formLEITrace: the block and
// outcome accumulators, the dense membership table with its touched-address
// list (cleared by walking the touches, not the table), and the history
// snapshot slice. Pooled selectors keep one per instance so steady-state
// trace formation does not allocate.
type leiScratch struct {
	blocks   []codecache.BlockSpec
	outcomes []obsBranch
	inTrace  []bool
	touched  []isa.Addr
	hist     []profile.HistoryEntry
}

// begin readies the scratch for a new formation over an address space of
// size addrSpace.
func (sc *leiScratch) begin(addrSpace int) {
	sc.blocks = sc.blocks[:0]
	sc.outcomes = sc.outcomes[:0]
	sc.hist = sc.hist[:0]
	if len(sc.inTrace) < addrSpace {
		sc.inTrace = make([]bool, addrSpace)
		sc.touched = sc.touched[:0]
		return
	}
	for _, a := range sc.touched {
		sc.inTrace[a] = false
	}
	sc.touched = sc.touched[:0]
}

// formLEITrace is FormLEITrace, additionally returning the branch outcomes
// along the path so that combined LEI can store the observed trace in the
// compact encoding of Figure 14. When sc is non-nil its storage is reused;
// the returned spec.Blocks and outcomes then alias the scratch and are valid
// only until the next formation (codecache.Insert and encodeTrace both copy,
// so the selector flows consume them in time).
//
//lint:hotpath shared with the exported one-shot wrappers
func formLEITrace(p *program.Program, cache *codecache.Cache, buf *profile.HistoryBuffer, start isa.Addr, old uint64, params Params, sc *leiScratch) (spec codecache.Spec, outcomes []obsBranch, formed bool) {
	params = params.withDefaults()
	if sc == nil {
		sc = &leiScratch{}
	}
	sc.begin(p.Len() + 1)
	instrs := 0
	cyclic := false

	//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly in this frame)
	appendRun := func(from, branchSrc isa.Addr) bool {
		// Append the blocks executed linearly from 'from' through the
		// block ending at branchSrc. Returns false when the trace must
		// stop inside the run. Not-taken conditionals at interior block
		// ends contribute their outcome for the compact encoding.
		for b := from; ; {
			if cache.HasEntry(b) {
				return false // next instruction begins an existing trace
			}
			if sc.inTrace[b] {
				return false // would duplicate a block already selected
			}
			n := p.BlockLen(b)
			if instrs+n > params.MaxTraceInstrs || len(sc.blocks) >= params.MaxTraceBlocks {
				return false
			}
			sc.blocks = append(sc.blocks, codecache.BlockSpec{Start: b, Len: n})
			sc.inTrace[b] = true
			sc.touched = append(sc.touched, b)
			instrs += n
			end := b + isa.Addr(n)
			if end-1 == branchSrc {
				return true
			}
			if end-1 > branchSrc {
				// The transfer source is not on the fall-through path from
				// 'from' (it is inside a cached region, or the history is
				// discontiguous); the blocks walked so far are valid but
				// the trace stops here.
				return false
			}
			lastIn := p.At(end - 1)
			if lastIn.IsBranch() && !lastIn.IsConditional() {
				// An interior block ending in an unconditional transfer
				// cannot be fallen through: the history recorded between
				// these transfers is not a contiguous path (this happens
				// when a buffer entry's cached-target stop condition went
				// stale, e.g. after a bounded-cache flush). Stop here
				// rather than fabricate a path execution never took.
				return false
			}
			if lastIn.IsConditional() {
				sc.outcomes = append(sc.outcomes, obsBranch{addr: end - 1, taken: false})
			}
			b = end
		}
	}

	prev := start
	sc.hist = buf.AppendAfter(old, sc.hist)
	for _, br := range sc.hist {
		if !appendRun(prev, br.Src) {
			break
		}
		in := p.At(br.Src)
		sc.outcomes = append(sc.outcomes, obsBranch{
			addr:     br.Src,
			taken:    true,
			indirect: in.IsIndirect(),
			target:   br.Tgt,
		})
		if sc.inTrace[br.Tgt] {
			cyclic = br.Tgt == start
			break
		}
		prev = br.Tgt
	}
	if len(sc.blocks) == 0 {
		return codecache.Spec{}, nil, false
	}
	if sc.blocks[0].Start != start {
		// Defensive: cannot happen, the first run starts at start.
		panic(fmt.Sprintf("core: LEI trace head %d != start %d", sc.blocks[0].Start, start))
	}
	spec = codecache.Spec{
		Entry:  start,
		Kind:   codecache.KindTrace,
		Blocks: sc.blocks,
		Cyclic: cyclic,
	}
	return spec, sc.outcomes, true
}
