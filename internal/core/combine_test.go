package core

import (
	"testing"

	"repro/internal/codecache"
	"repro/internal/profile"
)

func TestCombinerThresholdMath(t *testing.T) {
	// The paper's comparability rule: regions are selected after the same
	// number of interpreted executions as the base algorithm, so combined
	// NET starts profiling at 50-15=35 and combined LEI at 35-15=20.
	p := DefaultParams()
	if got := NewCombiner(BaseNET, p).TStart(); got != 35 {
		t.Errorf("NET T_start = %d, want 35", got)
	}
	if got := NewCombiner(BaseLEI, p).TStart(); got != 20 {
		t.Errorf("LEI T_start = %d, want 20", got)
	}
	small := Params{NETThreshold: 5, TProf: 15}
	if got := NewCombiner(BaseNET, small).TStart(); got != 1 {
		t.Errorf("clamped T_start = %d, want 1", got)
	}
	if NewCombiner(BaseNET, p).Name() != "net+comb" || NewCombiner(BaseLEI, p).Name() != "lei+comb" {
		t.Error("names")
	}
}

// driveNETCombiner runs the Figure 4 shape through a NET-based combiner:
// an unbiased branch at A (to B or C), rejoin at D, biased branch to F,
// rejoin at G, loop back. Events alternate ABDFG / ACDFG paths.
func TestCombinerNETUnbiasedBranch(t *testing.T) {
	p := cfgProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 6
	params.TProf = 4
	params.TMin = 2
	c := NewCombiner(BaseNET, params)
	if c.TStart() != 2 {
		t.Fatalf("TStart = %d", c.TStart())
	}
	// Drive alternating paths; each "iteration" ends with a synthetic
	// backward branch from G (10) to A (0) that makes A a profiled target.
	iter := func(throughC bool) {
		if throughC {
			c.Transfer(env, Event{Src: 1, Tgt: 4, Taken: true})  // A -> C
			c.Transfer(env, Event{Src: 4, Tgt: 5, Taken: false}) // C falls into D
		} else {
			c.Transfer(env, Event{Src: 1, Tgt: 2, Taken: false}) // A falls into B
			c.Transfer(env, Event{Src: 3, Tgt: 5, Taken: true})  // B -> D
		}
		c.Transfer(env, Event{Src: 6, Tgt: 8, Taken: true})  // D -> F
		c.Transfer(env, Event{Src: 9, Tgt: 10, Taken: true}) // F -> G
		c.Transfer(env, Event{Src: 10, Tgt: 0, Taken: true}) // back edge
	}
	for i := 0; i < 8; i++ {
		iter(i%2 == 1)
	}
	if env.cache.NumRegions() != 1 {
		t.Fatalf("regions = %d, want 1", env.cache.NumRegions())
	}
	r := env.cache.Regions()[0]
	if r.Kind != codecache.KindMultipath || r.Entry != 0 {
		t.Fatalf("region = %+v", r)
	}
	// Both arms of the unbiased branch are present; nothing is duplicated.
	if !r.Contains(2) || !r.Contains(4) || !r.Contains(5) || !r.Contains(8) {
		t.Errorf("region misses blocks: %+v", r.Blocks)
	}
	if len(r.Blocks) != 6 {
		t.Errorf("blocks = %+v", r.Blocks)
	}
	st := c.Stats()
	if st.ObservedTraces == 0 || st.ObservedBytesHighWater == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Observed storage was freed at combination.
	if c.curBytes != 0 {
		t.Errorf("curBytes = %d after finalize", c.curBytes)
	}
}

func TestCombinerLEI(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.LEIThreshold = 6
	params.TProf = 3
	params.TMin = 2
	c := NewCombiner(BaseLEI, params)
	if c.TStart() != 3 {
		t.Fatalf("TStart = %d", c.TStart())
	}
	iteration := func() {
		c.Transfer(env, Event{Src: 4, Tgt: 7, Taken: true})
		c.Transfer(env, Event{Src: 8, Tgt: 5, Taken: true})
		c.Transfer(env, Event{Src: 6, Tgt: 1, Taken: true})
	}
	for i := 0; i < 8; i++ {
		iteration()
		if env.cache.NumRegions() > 0 {
			break
		}
	}
	if env.cache.NumRegions() != 1 {
		t.Fatalf("regions = %d, want 1", env.cache.NumRegions())
	}
	r := env.cache.Regions()[0]
	if r.Kind != codecache.KindMultipath {
		t.Fatalf("kind = %v", r.Kind)
	}
	// The combined region covers the whole interprocedural cycle.
	if !r.Cyclic {
		t.Error("combined LEI region should span the cycle")
	}
	if len(r.Blocks) != 4 {
		t.Errorf("blocks = %+v", r.Blocks)
	}
	if c.Stats().HistoryCap != params.HistoryCap {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestCombinerIgnoresEnterTransfers(t *testing.T) {
	p := leiProgram(t)
	env := newFakeEnv(t, p)
	c := NewCombiner(BaseLEI, DefaultParams())
	c.Transfer(env, Event{Src: 6, Tgt: 1, Taken: true, ToCache: true})
	if c.buf.Len() != 1 || c.buf.At(c.buf.Last()).Kind != profile.KindEnter {
		t.Error("enter transfer not recorded as such")
	}
	if c.counters.Live() != 0 {
		t.Error("enter transfer was profiled")
	}
}

func TestCombinerNETObservedViaCacheExit(t *testing.T) {
	p := tailProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 17 // T_start = 2
	params.TProf = 15
	c := NewCombiner(BaseNET, params)
	// Exit target 6 qualifies via CacheExit. Each exit is followed by the
	// halt-block boundary... use block D (6..7): recordings end when an
	// unrelated backward branch arrives.
	for i := 0; i < 20; i++ {
		c.CacheExit(env, 5, 6)
		c.Transfer(env, Event{Src: 7, Tgt: 0, Taken: true})
	}
	// Both the exit target (6) and the backward-branch target (0) reach the
	// combination threshold.
	if env.cache.NumRegions() != 2 {
		t.Fatalf("regions = %d, want 2", env.cache.NumRegions())
	}
	if !env.cache.HasEntry(6) {
		t.Error("no region grown from the exit target")
	}
	if !env.cache.HasEntry(0) {
		t.Error("no region at the backward-branch target")
	}
}

func TestCombinerRejoinIterationsTracked(t *testing.T) {
	p := cfgProgram(t)
	env := newFakeEnv(t, p)
	params := DefaultParams()
	params.NETThreshold = 3
	params.TProf = 2
	params.TMin = 2
	c := NewCombiner(BaseNET, params)
	for i := 0; i < 4; i++ {
		c.Transfer(env, Event{Src: 1, Tgt: 2, Taken: false})
		c.Transfer(env, Event{Src: 3, Tgt: 5, Taken: true})
		c.Transfer(env, Event{Src: 6, Tgt: 8, Taken: true})
		c.Transfer(env, Event{Src: 9, Tgt: 10, Taken: true})
		c.Transfer(env, Event{Src: 10, Tgt: 0, Taken: true})
	}
	it := c.RejoinIterations()
	if it[0]+it[1]+it[2] == 0 {
		t.Error("no combinations recorded")
	}
}
