package core

import (
	"testing"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// fakeEnv implements Env over a real program and cache for unit-testing
// selectors without the full simulator.
type fakeEnv struct {
	t     *testing.T
	prog  *program.Program
	cache *codecache.Cache
	errs  []error
}

func newFakeEnv(t *testing.T, p *program.Program) *fakeEnv {
	return &fakeEnv{t: t, prog: p, cache: codecache.New(p)}
}

func (e *fakeEnv) Program() *program.Program { return e.prog }
func (e *fakeEnv) Cache() *codecache.Cache   { return e.cache }
func (e *fakeEnv) Insert(spec codecache.Spec) (*codecache.Region, error) {
	return e.cache.Insert(spec)
}
func (e *fakeEnv) Fail(err error) {
	e.errs = append(e.errs, err)
	if e.t != nil {
		e.t.Errorf("selector failure: %v", err)
	}
}

// codecacheSpec builds a single-block trace spec for tests.
func codecacheSpec(p *program.Program, start isa.Addr) codecache.Spec {
	return codecache.Spec{
		Entry:  start,
		Kind:   codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: start, Len: p.BlockLen(start)}},
	}
}
