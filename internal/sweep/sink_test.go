package sweep

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// deliverPermutation hands indices [base, base+n) to an OrderedSink in the
// given arrival order, one goroutine per index. Goroutine-per-index is
// essential: with a window of w, an arrival more than w ahead of the
// frontier blocks until earlier deliveries land, so a single sequential
// deliverer would deadlock on most permutations.
func deliverPermutation(t *testing.T, base, window int, perm []int) []int {
	t.Helper()
	var got []int
	sink := FuncSink(func(r Result) { got = append(got, r.Index) })
	d := NewOrderedSink(base, window, sink)
	var wg sync.WaitGroup
	for _, idx := range perm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d.Deliver(Result{Index: i})
		}(base + idx)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.Cancel()
		t.Fatalf("deliveries deadlocked (base=%d window=%d perm=%v)", base, window, perm)
	}
	return got
}

// TestOrderedSinkPermutations is the property test for the reorder ring's
// edge cases: for window=1 (every producer serialized on the frontier) and
// small windows, any out-of-order arrival permutation — including with a
// nonzero base — must come out as exactly the sorted index sequence, each
// index delivered once.
func TestOrderedSinkPermutations(t *testing.T) {
	perms := func(n int) [][]int {
		var out [][]int
		var rec func(prefix, rest []int)
		rec = func(prefix, rest []int) {
			if len(rest) == 0 {
				out = append(out, append([]int(nil), prefix...))
				return
			}
			for i := range rest {
				next := append(append([]int(nil), rest[i]), rest[:i]...)
				rec(append(prefix, rest[i]), append(next[1:], rest[i+1:]...))
			}
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		rec(nil, idx)
		return out
	}
	for _, tc := range []struct {
		name         string
		base, window int
		n            int
	}{
		{"window1", 0, 1, 5},
		{"window1-base7", 7, 1, 5},
		{"window2-base1000", 1000, 2, 5},
		{"window3", 0, 3, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, perm := range perms(tc.n) {
				got := deliverPermutation(t, tc.base, tc.window, perm)
				if len(got) != tc.n {
					t.Fatalf("perm %v: delivered %d results, want %d", perm, len(got), tc.n)
				}
				for i, idx := range got {
					if idx != tc.base+i {
						t.Fatalf("perm %v: delivery %d has index %d, want %d (order: %v)",
							perm, i, idx, tc.base+i, got)
					}
				}
			}
		})
	}
}

// TestOrderedSinkRandomPermutations widens the property to larger index
// sets and windows than exhaustive enumeration can reach.
func TestOrderedSinkRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		window := 1 + rng.Intn(4)
		base := rng.Intn(1 << 16)
		perm := rng.Perm(n)
		got := deliverPermutation(t, base, window, perm)
		if len(got) != n {
			t.Fatalf("trial %d: delivered %d results, want %d", trial, len(got), n)
		}
		for i, idx := range got {
			if idx != base+i {
				t.Fatalf("trial %d (base=%d window=%d): delivery %d has index %d, want %d",
					trial, base, window, i, idx, base+i)
			}
		}
	}
}

// TestOrderedSinkCancelUnblocks pins Cancel's contract: producers blocked
// on the window wake up, and their results are dropped rather than
// delivered out of order.
func TestOrderedSinkCancelUnblocks(t *testing.T) {
	var got []int
	d := NewOrderedSink(0, 1, FuncSink(func(r Result) { got = append(got, r.Index) }))
	blocked := make(chan struct{})
	go func() {
		d.Deliver(Result{Index: 2}) // 2 >= next(0)+window(1): blocks
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("out-of-window delivery did not block")
	case <-time.After(20 * time.Millisecond):
	}
	d.Cancel()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Cancel did not unblock the producer")
	}
	d.Deliver(Result{Index: 0}) // post-cancel deliveries are dropped too
	if len(got) != 0 {
		t.Fatalf("cancelled ring delivered %v", got)
	}
}
