package sweep

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workloads"
)

const testScale = 60

// directRun executes one job the pre-sweep way: fresh selector, fresh
// simulator state, no pooling. Sweep results must be identical to this.
func directRun(t *testing.T, job Job) metrics.Report {
	t.Helper()
	sel, err := NewSelector(job.Selector, job.Params)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynopt.Run(workloads.MustGet(job.Workload).Build(job.Scale), dynopt.Config{
		Selector:        sel,
		VM:              vm.Config{},
		CacheLimitBytes: job.CacheLimitBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Report.Workload = job.Workload
	return res.Report
}

func testGrid() Grid {
	return Grid{
		Workloads: workloads.SpecNames(),
		Scale:     testScale,
		Selectors: PaperSelectors(),
		Configs:   []Config{{Params: core.DefaultParams()}},
	}
}

// TestSweepOrderedAndIdentical runs the full 12×4 grid sharded and checks
// that results arrive exactly once each, in grid-enumeration order, and
// that every pooled-shard report is identical to an unpooled direct run.
func TestSweepOrderedAndIdentical(t *testing.T) {
	g := testGrid()
	jobs := g.Jobs()
	var sink CollectSink
	if err := Run(context.Background(), jobs, Options{Shards: 4, Window: 3}, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != len(jobs) {
		t.Fatalf("delivered %d results, want %d", len(sink.Results), len(jobs))
	}
	for i, r := range sink.Results {
		if r.Index != i {
			t.Fatalf("result %d has index %d: delivery out of order", i, r.Index)
		}
		if r.Job != jobs[i] {
			t.Fatalf("result %d carries job %+v, want %+v", i, r.Job, jobs[i])
		}
	}
	// Spot-check pooled-vs-fresh identity on a deterministic sample: every
	// selector, several workloads (the full cross product would re-run the
	// grid twice).
	for i := 0; i < len(jobs); i += 7 {
		want := directRun(t, jobs[i])
		if sink.Results[i].Report != want {
			t.Errorf("%s under %s: pooled sweep report differs from direct run\n sweep: %+v\ndirect: %+v",
				jobs[i].Workload, jobs[i].Selector, sink.Results[i].Report, want)
		}
	}
}

// TestShardReuseAcrossParams re-runs the same shard across alternating
// parameter points and cache bounds, checking each pooled run against a
// fresh one: this is the selector Reset / cache Reset correctness guard
// under eviction-heavy bounded configurations too.
func TestShardReuseAcrossParams(t *testing.T) {
	small := core.DefaultParams()
	small.NETThreshold = 10
	small.LEIThreshold = 8
	small.HistoryCap = 64
	configs := []Config{
		{Params: core.DefaultParams()},
		{Params: small},
		{Params: core.DefaultParams(), CacheLimitBytes: 400},
		{Params: small, CacheLimitBytes: 400},
	}
	shard := NewShard()
	for _, wl := range []string{"fig3-nested-loops", "gcc", "perlbmk"} {
		p := workloads.MustGet(wl).Build(testScale)
		for round := 0; round < 2; round++ {
			for _, sel := range PaperSelectors() {
				for _, c := range configs {
					job := Job{Workload: wl, Scale: testScale, Selector: sel, Params: c.Params, CacheLimitBytes: c.CacheLimitBytes}
					got, err := shard.Run(p, job)
					if err != nil {
						t.Fatal(err)
					}
					want := directRun(t, job)
					if got != want {
						t.Fatalf("%s under %s (limit %d, round %d): pooled report differs\npooled: %+v\n fresh: %+v",
							wl, sel, c.CacheLimitBytes, round, got, want)
					}
				}
			}
		}
	}
}

// TestSweepFailFast checks that a broken cell stops the grid: the error is
// reported and delivery is a clean prefix of the enumeration (no result
// after the failure is delivered out of order).
func TestSweepFailFast(t *testing.T) {
	g := testGrid()
	jobs := g.Jobs()
	jobs[5].Workload = "no-such-workload"
	var sink CollectSink
	err := Run(context.Background(), jobs, Options{Shards: 4}, &sink)
	if err == nil {
		t.Fatal("sweep with a broken cell reported no error")
	}
	if len(sink.Results) >= len(jobs) {
		t.Fatalf("all %d results delivered despite fail-fast", len(sink.Results))
	}
	for i, r := range sink.Results {
		if r.Index != i {
			t.Fatalf("result %d has index %d after failure", i, r.Index)
		}
	}
}

// TestSweepCancellation cancels the context from inside the sink and checks
// the engine stops early and reports the cancellation.
func TestSweepCancellation(t *testing.T) {
	g := testGrid()
	jobs := g.Jobs()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	err := Run(ctx, jobs, Options{Shards: 4}, FuncSink(func(r Result) {
		delivered++
		if delivered == 3 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= len(jobs) {
		t.Fatalf("all %d results delivered despite cancellation", delivered)
	}
}

// TestSweepSingleShard pins the shards=1 degenerate case (no stealing, the
// benchmark baseline) to the same output as the sharded run.
func TestSweepSingleShard(t *testing.T) {
	g := Grid{
		Workloads: []string{"gzip", "vpr"},
		Scale:     testScale,
		Selectors: PaperSelectors(),
	}
	var one, many CollectSink
	if err := RunGrid(context.Background(), g, Options{Shards: 1}, &one); err != nil {
		t.Fatal(err)
	}
	if err := RunGrid(context.Background(), g, Options{Shards: 8, Window: 2}, &many); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Results, many.Results) {
		t.Fatal("sharded sweep output differs from single-shard output")
	}
}

// TestSyntheticReportDeterministic checks the synthetic stress generator end
// to end: two independently built programs from the same seed must produce
// identical metrics.Report values under all four paper selectors.
func TestSyntheticReportDeterministic(t *testing.T) {
	const size = 60_000
	a := workloads.Synthetic(7, size)
	b := workloads.Synthetic(7, size)
	for _, sel := range PaperSelectors() {
		job := Job{Workload: "synthetic", Selector: sel, Params: core.DefaultParams()}
		shard := NewShard()
		ra, err := shard.Run(a, job)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := shard.Run(b, job)
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Errorf("%s: same-seed synthetic programs produced different reports\n a: %+v\n b: %+v", sel, ra, rb)
		}
	}
}

// TestGridEnumerationOrder pins the deterministic job order: workload-major,
// then config, then selector.
func TestGridEnumerationOrder(t *testing.T) {
	g := Grid{
		Workloads: []string{"a", "b"},
		Selectors: []string{"s1", "s2"},
		Configs:   []Config{{CacheLimitBytes: 1}, {CacheLimitBytes: 2}},
	}
	jobs := g.Jobs()
	want := []struct {
		w string
		l int
		s string
	}{
		{"a", 1, "s1"}, {"a", 1, "s2"}, {"a", 2, "s1"}, {"a", 2, "s2"},
		{"b", 1, "s1"}, {"b", 1, "s2"}, {"b", 2, "s1"}, {"b", 2, "s2"},
	}
	if len(jobs) != len(want) {
		t.Fatalf("%d jobs, want %d", len(jobs), len(want))
	}
	for i, w := range want {
		j := jobs[i]
		if j.Workload != w.w || j.CacheLimitBytes != w.l || j.Selector != w.s {
			t.Fatalf("job %d = %+v, want %+v", i, j, w)
		}
	}
}

// TestJobAtMatchesJobs pins the on-demand enumeration against the
// materialized one, including the empty-Configs default and a degenerate
// axis.
func TestJobAtMatchesJobs(t *testing.T) {
	grids := []Grid{
		testGrid(),
		{Workloads: []string{"a", "b", "c"}, Selectors: []string{"s1", "s2"},
			Configs: []Config{{CacheLimitBytes: 1}, {CacheLimitBytes: 2}, {CacheLimitBytes: 3}}},
		{Workloads: []string{"a"}, Selectors: []string{"s1"}},
		{Workloads: []string{"a", "b"}, Scale: 7, Selectors: []string{"s1", "s2", "s3"}},
		{},
	}
	for gi, g := range grids {
		jobs := g.Jobs()
		if len(jobs) != g.NumJobs() {
			t.Fatalf("grid %d: NumJobs = %d, Jobs materializes %d", gi, g.NumJobs(), len(jobs))
		}
		for i, want := range jobs {
			if got := g.JobAt(i); got != want {
				t.Fatalf("grid %d: JobAt(%d) = %+v, want %+v", gi, i, got, want)
			}
		}
	}
}

// TestRunnerRunRange checks that executing a grid as disjoint ranges on one
// persistent Runner reproduces the full-grid run exactly: global indices,
// jobs, and pooled-state reports all identical.
func TestRunnerRunRange(t *testing.T) {
	g := Grid{
		Workloads: []string{"gzip", "vpr", "mcf"},
		Scale:     testScale,
		Selectors: PaperSelectors(),
		Configs:   []Config{{Params: core.DefaultParams()}, {Params: core.DefaultParams(), CacheLimitBytes: 400}},
	}
	var full CollectSink
	if err := RunGrid(context.Background(), g, Options{Shards: 2}, &full); err != nil {
		t.Fatal(err)
	}
	n := g.NumJobs()
	r := NewRunner()
	var merged []Result
	for _, cut := range [][2]int{{0, 5}, {5, 6}, {6, n}} {
		var part CollectSink
		if err := r.RunRange(context.Background(), g, cut[0], cut[1], Options{Shards: 2}, &part); err != nil {
			t.Fatal(err)
		}
		merged = append(merged, part.Results...)
	}
	if !reflect.DeepEqual(merged, full.Results) {
		t.Fatalf("ranged runs differ from full-grid run:\nranged: %d results\n  full: %d results", len(merged), len(full.Results))
	}
	if err := r.RunRange(context.Background(), g, 0, n+1, Options{}, nil); err == nil {
		t.Fatal("RunRange beyond the grid reported no error")
	}
}

// TestShardSteadyStateAllocFree pins the zero-alloc claim: after one warm-up
// run per shape, a shard's job loop — pooled interpreter, simulator,
// collector, analyzer, code cache, and Resettable selector — performs zero
// heap allocations per run for every paper selector, the combining ones
// included (arena-backed observed traces, pooled RegionCFG), including under
// an eviction-heavy bounded cache (region free-list).
func TestShardSteadyStateAllocFree(t *testing.T) {
	shard := NewShard()
	for _, tc := range []struct {
		name string
		job  Job
	}{
		{"net", Job{Workload: "fig3-nested-loops", Scale: 40, Selector: NET, Params: core.DefaultParams()}},
		{"lei", Job{Workload: "fig3-nested-loops", Scale: 40, Selector: LEI, Params: core.DefaultParams()}},
		{"net+comb", Job{Workload: "fig3-nested-loops", Scale: 40, Selector: NETComb, Params: core.DefaultParams()}},
		{"lei+comb", Job{Workload: "fig3-nested-loops", Scale: 40, Selector: LEIComb, Params: core.DefaultParams()}},
		{"net-bounded", Job{Workload: "gzip", Scale: 40, Selector: NET, Params: core.DefaultParams(), CacheLimitBytes: 300}},
		{"lei-bounded", Job{Workload: "gzip", Scale: 40, Selector: LEI, Params: core.DefaultParams(), CacheLimitBytes: 300}},
		{"net+comb-bounded", Job{Workload: "gzip", Scale: 40, Selector: NETComb, Params: core.DefaultParams(), CacheLimitBytes: 300}},
		{"lei+comb-bounded", Job{Workload: "gzip", Scale: 40, Selector: LEIComb, Params: core.DefaultParams(), CacheLimitBytes: 300}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := workloads.MustGet(tc.job.Workload).Build(tc.job.Scale)
			for i := 0; i < 2; i++ { // warm up pools and dense tables
				if _, err := shard.Run(p, tc.job); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := shard.Run(p, tc.job); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state shard run allocated %.1f times, want 0", allocs)
			}
		})
	}
}
