package sweep

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// memoTestGrid is the differential grid for the memo layer: every
// registered workload × all five selectors × a multi-point parameter axis,
// so each (workload, scale) cell is shared by many jobs.
func memoTestGrid(names []string) Grid {
	var cfgs []Config
	for _, th := range []int{8, 32, 64} {
		p := core.DefaultParams()
		p.LEIThreshold = th
		cfgs = append(cfgs, Config{Params: p})
	}
	return Grid{
		Workloads: names,
		Scale:     testScale,
		Selectors: append(PaperSelectors(), Adaptive),
		Configs:   cfgs,
	}
}

// memoJSON renders a report for comparison. JSON bytes, not
// reflect.DeepEqual: the serialized form is what sinks emit, and it
// distinguishes float artifacts (-0.0 vs 0.0) that == would hide.
func memoJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runMemoGrid executes g on a fresh runner and returns the collected
// results plus the runner's memo counters.
func runMemoGrid(t *testing.T, g Grid, opts Options) ([]Result, MemoStats) {
	t.Helper()
	r := NewRunner()
	var sink CollectSink
	if err := r.RunGrid(context.Background(), g, opts, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Results) != g.NumJobs() {
		t.Fatalf("delivered %d results, want %d", len(sink.Results), g.NumJobs())
	}
	return sink.Results, r.MemoStats()
}

// diffMemoRuns fails on the first report that differs between the two runs.
func diffMemoRuns(t *testing.T, off, on []Result) {
	t.Helper()
	for i := range off {
		if got, want := memoJSON(t, on[i].Report), memoJSON(t, off[i].Report); got != want {
			t.Fatalf("memoized report %d (%s under %s) diverges:\n memo-on  %s\n memo-off %s",
				i, off[i].Job.Workload, off[i].Job.Selector, got, want)
		}
	}
}

// TestSweepMemoMatchesOff is the memo layer's acceptance differential:
// across every registered workload under all five selectors on a 3-point
// parameter axis, a memoized sweep must be byte-identical to a memo-off
// one, with the replay path doing the bulk of the work.
func TestSweepMemoMatchesOff(t *testing.T) {
	g := memoTestGrid(workloads.Names())
	off, offStats := runMemoGrid(t, g, Options{Shards: 3, Memo: MemoOff})
	on, onStats := runMemoGrid(t, g, Options{Shards: 3, Memo: MemoOn})
	diffMemoRuns(t, off, on)

	if offStats != (MemoStats{}) {
		t.Errorf("memo-off run touched the memo layer: %+v", offStats)
	}
	jobs := uint64(g.NumJobs())
	if onStats.Hits+onStats.Misses != jobs {
		t.Errorf("hits %d + misses %d != %d jobs", onStats.Hits, onStats.Misses, jobs)
	}
	if onStats.Hits == 0 {
		t.Error("memoized run never replayed")
	}
	if cells := uint64(len(g.Workloads)); onStats.Misses < cells {
		t.Errorf("misses %d below the %d distinct cells", onStats.Misses, cells)
	}
	if onStats.Resident != len(g.Workloads) {
		t.Errorf("%d corpora resident, want %d", onStats.Resident, len(g.Workloads))
	}
}

// TestSweepMemoConcurrentFirstTouch races many shards into one cold cell: a
// single workload with enough (selector, config) jobs that every shard's
// first pop hits the same unrecorded (workload, scale) key. Whoever wins
// the claim records; the rest must fall back to live execution and still
// produce byte-identical reports.
func TestSweepMemoConcurrentFirstTouch(t *testing.T) {
	var cfgs []Config
	for _, th := range []int{4, 8, 16, 32, 64, 128} {
		p := core.DefaultParams()
		p.NETThreshold = th
		cfgs = append(cfgs, Config{Params: p})
	}
	g := Grid{
		Workloads: []string{"gzip"},
		Scale:     testScale,
		Selectors: append(PaperSelectors(), Adaptive),
		Configs:   cfgs,
	}
	off, _ := runMemoGrid(t, g, Options{Shards: 1, Memo: MemoOff})
	on, stats := runMemoGrid(t, g, Options{Shards: 8, Window: 2, Memo: MemoOn})
	diffMemoRuns(t, off, on)
	if stats.Hits+stats.Misses != uint64(g.NumJobs()) {
		t.Errorf("hits %d + misses %d != %d jobs", stats.Hits, stats.Misses, g.NumJobs())
	}
}

// TestSweepMemoBudgetEvictionFallback squeezes the corpus budget until it
// misbehaves — first too small for the working set (forcing LRU eviction
// and re-recording), then too small for any corpus at all (forcing
// rejection and permanent live fallback) — and checks the output never
// changes, only the counters.
func TestSweepMemoBudgetEvictionFallback(t *testing.T) {
	g := memoTestGrid([]string{"gzip", "vpr"})
	off, _ := runMemoGrid(t, g, Options{Shards: 1, Memo: MemoOff})
	_, full := runMemoGrid(t, g, Options{Shards: 1, Memo: MemoOn})
	if full.Resident != 2 || full.ResidentBytes == 0 {
		t.Fatalf("probe run: %d corpora / %d bytes resident, want both workloads", full.Resident, full.ResidentBytes)
	}

	// A budget one byte short of the working set holds either corpus but
	// never both: admitting the second evicts the first.
	on, st := runMemoGrid(t, g, Options{Shards: 1, Memo: MemoOn, MemoBudgetBytes: full.ResidentBytes - 1})
	diffMemoRuns(t, off, on)
	if st.Evictions == 0 {
		t.Errorf("under-working-set budget evicted nothing: %+v", st)
	}
	if st.Hits == 0 {
		t.Error("under-working-set budget never replayed")
	}

	// A one-byte budget rejects every corpus; the cells go dead and every
	// later job falls back to live execution.
	on, st = runMemoGrid(t, g, Options{Shards: 1, Memo: MemoOn, MemoBudgetBytes: 1})
	diffMemoRuns(t, off, on)
	if st.Rejected != 2 {
		t.Errorf("Rejected = %d, want one per workload cell", st.Rejected)
	}
	if st.Hits != 0 || st.Resident != 0 {
		t.Errorf("one-byte budget still replayed: %+v", st)
	}
	if want := uint64(g.NumJobs() - 2); st.Fallbacks != want {
		t.Errorf("Fallbacks = %d, want %d (every job after each cell's rejected recording)", st.Fallbacks, want)
	}
}

// TestRunnerMemoPersistsAcrossRuns pins the property sweepd relies on: the
// memo table lives with the Runner, so a second run over the same grid
// replays everything the first recorded — no new misses.
func TestRunnerMemoPersistsAcrossRuns(t *testing.T) {
	g := memoTestGrid([]string{"gzip"})
	r := NewRunner()
	for i := 0; i < 2; i++ {
		if err := r.RunGrid(context.Background(), g, Options{Shards: 2}, &CollectSink{}); err != nil {
			t.Fatal(err)
		}
	}
	st := r.MemoStats()
	if st.Misses != 1 {
		t.Errorf("two runs missed %d times, want 1 (second run fully replayed)", st.Misses)
	}
	if want := uint64(2*g.NumJobs() - 1); st.Hits != want {
		t.Errorf("Hits = %d, want %d", st.Hits, want)
	}
}

// TestShardMemoAllocFree extends the engine's zero-alloc pin to the
// memoized dispatch: once a cell's corpus is recorded, a memoized job — the
// budget lookup plus the shard replay — performs no heap allocations.
func TestShardMemoAllocFree(t *testing.T) {
	m := newMemoTable(0)
	shard := NewShard()
	prog := workloads.MustGet("gzip").Build(testScale)
	for _, selName := range PaperSelectors() { // adaptive pools separately
		selName := selName
		t.Run(selName, func(t *testing.T) {
			job := Job{Workload: "gzip", Scale: testScale, Selector: selName, Params: core.DefaultParams()}
			// First call records the cell; the second warms the pooled
			// selector for this shape.
			for i := 0; i < 2; i++ {
				if _, err := m.run(shard, prog, job); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := m.run(shard, prog, job); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state memoized job allocated %.1f times, want 0", allocs)
			}
		})
	}
}

// TestParseMemoMode pins the CLI switch.
func TestParseMemoMode(t *testing.T) {
	if m, err := ParseMemoMode("on"); err != nil || m != MemoOn {
		t.Errorf("ParseMemoMode(on) = %v, %v", m, err)
	}
	if m, err := ParseMemoMode("off"); err != nil || m != MemoOff {
		t.Errorf("ParseMemoMode(off) = %v, %v", m, err)
	}
	if _, err := ParseMemoMode("maybe"); err == nil {
		t.Error("ParseMemoMode(maybe) accepted")
	}
}
