package sweep

import (
	"sync"

	"repro/internal/metrics"
)

// Result is one completed cell of a sweep grid.
type Result struct {
	// Index is the job's position in the grid's deterministic enumeration
	// order. Results are delivered in strictly increasing Index order.
	Index int
	// Job is the grid cell that produced the report.
	Job Job
	// Report carries every paper metric for the run.
	Report metrics.Report
}

// ResultSink receives completed sweep results as they stream out of the
// engine. Deliver is called at most once per job, serialized and in strictly
// increasing Index order, so a sink needs no locking and no buffering of its
// own; it must not block indefinitely (delivery applies backpressure to the
// shards). On cancellation or failure the remaining results are dropped, so
// a sink must tolerate a truncated stream.
type ResultSink interface {
	Deliver(Result)
}

// FuncSink adapts a function to the ResultSink interface.
type FuncSink func(Result)

// Deliver implements ResultSink.
func (f FuncSink) Deliver(r Result) { f(r) }

// CollectSink accumulates every delivered result in order. It is the
// bounded-grid convenience sink; streaming sinks should be preferred for
// grids too large to hold in memory.
type CollectSink struct {
	Results []Result
}

// Deliver implements ResultSink.
func (s *CollectSink) Deliver(r Result) { s.Results = append(s.Results, r) }

// CountingSink counts deliveries without retaining them — the zero-overhead
// sink used by benchmarks and alloc guards.
type CountingSink struct {
	N int
}

// Deliver implements ResultSink.
func (s *CountingSink) Deliver(Result) { s.N++ }

type nopSink struct{}

func (nopSink) Deliver(Result) {}

// OrderedSink is the engine's ordered streaming stage: a bounded reorder
// ring between racing producers and the single serialized sink. A producer
// finishing job i blocks only while i is more than window slots ahead of the
// oldest undelivered job — and the producer owning that oldest job never
// blocks, which is what makes the backpressure deadlock-free when producers
// drain contiguous ranges in increasing index order. Memory is bounded by
// the window regardless of grid size, and the ring slots are reused, so
// steady-state delivery does not allocate.
//
// It is exported for the distributed coordinator (internal/sweepnet), which
// merges the result streams of many wire workers through the same ring the
// in-process engine uses — output order is the grid enumeration either way.
type OrderedSink struct {
	mu        sync.Mutex
	cond      sync.Cond
	buf       []Result // ring: job i parks in buf[i%len(buf)]
	ready     []bool
	next      int // lowest undelivered index
	cancelled bool
	sink      ResultSink
}

// NewOrderedSink returns a ring forwarding to sink. base is the first index
// expected (the low end of the range being produced); window bounds how far
// ahead of the delivery frontier a producer may run.
func NewOrderedSink(base, window int, sink ResultSink) *OrderedSink {
	d := &OrderedSink{
		buf:   make([]Result, window),
		ready: make([]bool, window),
		next:  base,
		sink:  sink,
	}
	d.cond.L = &d.mu
	return d
}

// Deliver hands one finished result to the sink, in index order, blocking
// while the result is too far ahead of the delivery frontier. Each index
// must be delivered at most once. It implements ResultSink, so rings can be
// stacked when a merge stage needs its own window.
func (d *OrderedSink) Deliver(r Result) {
	d.mu.Lock()
	w := len(d.buf)
	for !d.cancelled && r.Index >= d.next+w {
		d.cond.Wait()
	}
	if d.cancelled {
		d.mu.Unlock()
		return
	}
	d.buf[r.Index%w] = r
	d.ready[r.Index%w] = true
	for d.ready[d.next%w] {
		slot := d.next % w
		d.ready[slot] = false
		d.next++
		// The sink runs under the lock: delivery is serialized and ordered
		// by construction, and producers that race ahead wait right here.
		d.sink.Deliver(d.buf[slot])
	}
	d.cond.Broadcast()
	d.mu.Unlock()
}

// Next returns the delivery frontier: the lowest index not yet handed to
// the sink. The coordinator uses it for admission control — it assigns a
// job range to a worker only when the range fits the window, which is what
// keeps Deliver from ever blocking a connection reader.
func (d *OrderedSink) Next() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.next
}

// Cancel wakes every blocked producer and drops all undelivered results.
func (d *OrderedSink) Cancel() {
	d.mu.Lock()
	d.cancelled = true
	d.cond.Broadcast()
	d.mu.Unlock()
}
