// Record-once/replay-many trace memoization. PR 8 proved the branch-event
// stream of a grid cell depends only on its (workload, scale) pair — the
// selectors observe the stream, they never perturb it — and that replaying
// a recorded stream produces byte-identical reports at a fraction of live
// interpretation cost. The memo layer folds that back into the engine: the
// first job touching a cell runs live with a tracestream.MemRecorder tapped
// off the VM (dynopt.Config.Tap), every later job for the cell replays the
// recorded arena through Shard.Replay. Memoization changes how jobs
// execute, never what they report (TestSweepMemoMatchesOff pins the jsonl
// byte-identity).
package sweep

import (
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/tracestream"
)

// MemoMode switches trace memoization. The zero value is MemoOn: callers
// using Options{} — the experiments harness, sweepd workers, cmd/sweep —
// memoize by default and opt out explicitly.
type MemoMode int

const (
	// MemoOn records each (workload, scale) cell's event stream on first
	// touch and replays it for every subsequent job of the cell.
	MemoOn MemoMode = iota
	// MemoOff runs every job live — the escape hatch (cmd/sweep -memo=off)
	// and the differential baseline.
	MemoOff
)

// ParseMemoMode parses a CLI memoization switch: "on" or "off"
// (cmd/sweep -memo, cmd/sweepd -memo).
func ParseMemoMode(s string) (MemoMode, error) {
	switch s {
	case "on":
		return MemoOn, nil
	case "off":
		return MemoOff, nil
	}
	return MemoOn, fmt.Errorf("bad memo mode %q (want on or off)", s)
}

// DefaultMemoBudgetBytes bounds resident memoized corpora when
// Options.MemoBudgetBytes is zero: 256 MiB ≈ 11M block events — two orders
// of magnitude above the paper grid's working set, small next to the
// interpretation it saves. Cells that exceed the budget degrade to live
// execution; nothing breaks, the cell just stops being cheap.
const DefaultMemoBudgetBytes = 256 << 20

// MemoStats is a snapshot of the memo layer's counters.
type MemoStats struct {
	// Hits is the number of jobs served by replaying a resident corpus.
	Hits uint64
	// Misses is the number of jobs that found no resident corpus for
	// their cell: each either recorded the cell or fell back to live.
	Misses uint64
	// Fallbacks is the subset of misses that ran live without recording —
	// another shard held the cell's recording claim, or the budget had
	// already rejected the cell's corpus as too big.
	Fallbacks uint64
	// Evictions and Rejected are the budget's admission outcomes.
	Evictions uint64
	Rejected  uint64
	// Resident and ResidentBytes describe current corpus occupancy.
	Resident      int
	ResidentBytes int64
}

// memoTable is a Runner's record-once/replay-many state: the byte-budgeted
// corpus LRU plus the singleflight bookkeeping that ensures exactly one
// shard records a cell while concurrent first-touchers fall back to live
// execution instead of blocking. It persists across runs like the shard
// pool, so a sweepd worker's later ranges replay cells its earlier ranges
// recorded.
type memoTable struct {
	budget *tracestream.MemBudget

	mu sync.Mutex
	// recording marks cells a shard is currently taping; dead marks cells
	// whose corpus the budget rejected outright, so they are never taped
	// again.
	recording map[progKey]bool
	dead      map[progKey]bool
	fallbacks uint64
}

func newMemoTable(budgetBytes int64) *memoTable {
	if budgetBytes <= 0 {
		budgetBytes = DefaultMemoBudgetBytes
	}
	return &memoTable{
		budget:    tracestream.NewMemBudget(budgetBytes),
		recording: make(map[progKey]bool),
		dead:      make(map[progKey]bool),
	}
}

// run dispatches one memoizable job: replay when the cell's corpus is
// resident, otherwise record or fall back via Record. The hit path — a
// budget lookup and a shard replay — is the steady state of a memoized
// grid and performs zero heap allocations (TestShardMemoAllocFree).
//
//lint:hotpath memoized replay dispatch (TestShardMemoAllocFree)
func (m *memoTable) run(shard *Shard, p *program.Program, job Job) (metrics.Report, error) {
	if c := m.budget.Get(tracestream.MemKey{Workload: job.Workload, Scale: job.Scale}); c != nil {
		return shard.Replay(&c.Corpus, job)
	}
	return m.Record(shard, p, job)
}

// Record handles a memo miss: the shard that wins the cell's recording
// claim runs the job live with a MemRecorder tapped off the VM and
// publishes the sealed corpus to the budget; losers run plain live — the
// report is identical either way, so first-touch races cost only the
// memoization opportunity, never correctness or blocking. The method is
// exported within the package's hot-path discipline: recording allocates
// (the event arena), so it must stay outside the inferred hot set — only
// run's replay dispatch above is hot.
func (m *memoTable) Record(shard *Shard, p *program.Program, job Job) (metrics.Report, error) {
	key := progKey{job.Workload, job.Scale}
	if !m.claim(key) {
		return shard.Run(p, job)
	}
	rec := tracestream.NewMemRecorder(p, job.Workload, job.Scale)
	rep, st, err := shard.RunTapped(p, job, rec)
	if err != nil {
		m.release(key, false)
		return metrics.Report{}, err
	}
	admitted := m.budget.Add(tracestream.MemKey{Workload: job.Workload, Scale: job.Scale}, rec.Corpus(st))
	// A corpus the budget cannot hold at all would be re-taped on every
	// future miss of the cell; marking the cell dead degrades it to plain
	// live execution instead.
	m.release(key, !admitted)
	return rep, nil
}

// claim takes the recording claim for a cell. A false return means another
// shard is taping it or the cell is dead — the caller runs live, counted
// as a fallback.
func (m *memoTable) claim(key progKey) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recording[key] || m.dead[key] {
		m.fallbacks++
		return false
	}
	m.recording[key] = true
	return true
}

// release drops a cell's recording claim, marking the cell dead when its
// corpus was rejected.
func (m *memoTable) release(key progKey, dead bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.recording, key)
	if dead {
		m.dead[key] = true
	}
}

// stats snapshots the layer's counters.
func (m *memoTable) stats() MemoStats {
	bs := m.budget.Stats()
	m.mu.Lock()
	fb := m.fallbacks
	m.mu.Unlock()
	return MemoStats{
		Hits:          bs.Hits,
		Misses:        bs.Misses,
		Fallbacks:     fb,
		Evictions:     bs.Evictions,
		Rejected:      bs.Rejected,
		Resident:      bs.Resident,
		ResidentBytes: bs.ResidentBytes,
	}
}
