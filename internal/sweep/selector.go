package sweep

import (
	"fmt"

	"repro/internal/core"
)

// Selector configuration names. The first four are the paper's evaluation
// set; Adaptive is the per-phase meta-selector (ROADMAP direction 2); the
// rest are the §5 related-work comparisons.
const (
	NET      = "net"
	LEI      = "lei"
	NETComb  = "net+comb"
	LEIComb  = "lei+comb"
	Adaptive = "adaptive"
	MojoNET  = "mojo-net"
	BOA      = "boa"
	WRS      = "wrs"
)

// PaperSelectors returns the four configurations the paper evaluates, in
// presentation order.
func PaperSelectors() []string { return []string{NET, LEI, NETComb, LEIComb} }

// NewSelector builds a fresh selector for one run. Sweep shards prefer
// recycling a pooled core.Resettable selector and fall back to this factory
// for the rest.
func NewSelector(name string, params core.Params) (core.Selector, error) {
	switch name {
	case NET:
		return core.NewNET(params), nil
	case LEI:
		return core.NewLEI(params), nil
	case NETComb:
		return core.NewCombiner(core.BaseNET, params), nil
	case LEIComb:
		return core.NewCombiner(core.BaseLEI, params), nil
	case Adaptive:
		return core.NewAdaptive(params), nil
	case MojoNET:
		return core.NewMojoNET(params, 30), nil
	case BOA:
		return core.NewBOA(params), nil
	case WRS:
		return core.NewWRS(params), nil
	default:
		return nil, fmt.Errorf("sweep: unknown selector %q", name)
	}
}
