// Package sweep is the sharded parameter-sweep engine: it executes an
// arbitrary (workload × selector × params) grid across a set of worker
// shards with work stealing, context-based fail-fast cancellation, and
// bounded-memory streaming result delivery in deterministic grid order.
//
// The paper's evaluation is a parameter study — selector behavior under
// varying thresholds, history-buffer sizes, and cache bounds — and the
// engine is built so such studies are pure compute: each shard owns one
// dynopt.Scratch (interpreter, simulator, collector, analyzer, code cache)
// and a pool of Resettable selectors, programs are built once and shared
// read-only across shards, and the reorder ring reuses its slots, so a
// shard's steady-state job loop performs zero heap allocations (enforced by
// TestShardSteadyStateAllocFree).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Job is one cell of a sweep grid.
type Job struct {
	// Workload is a registered workload name (see internal/workloads) or a
	// trace-corpus reference ("trace:<path>", see internal/tracestream):
	// the recorded stream replays through the selectors instead of the VM
	// interpreting the program. Scale is ignored for trace references — the
	// recording fixes it.
	Workload string
	// Scale is the workload scale multiplier (<=0 selects the default).
	Scale int
	// Selector is a selector configuration name (see NewSelector).
	Selector string
	// Params are the selection-algorithm tunables for this cell.
	Params core.Params
	// CacheLimitBytes bounds the code cache; zero means unbounded.
	CacheLimitBytes int
}

// Config is one (params, cache bound) point of a grid.
type Config struct {
	Params          core.Params
	CacheLimitBytes int
}

// Grid enumerates the cross product workloads × configs × selectors in a
// deterministic order: workload-major, then config, then selector. Job
// indices — and therefore result delivery order — follow this enumeration.
type Grid struct {
	Workloads []string
	Scale     int
	Selectors []string
	// Configs are the parameter points; nil means one all-defaults config.
	Configs []Config
}

// Jobs materializes the grid's job list in enumeration order.
func (g Grid) Jobs() []Job {
	jobs := make([]Job, g.NumJobs())
	for i := range jobs {
		jobs[i] = g.JobAt(i)
	}
	return jobs
}

// numConfigs is the config-axis length; an empty Configs list means one
// all-defaults config.
func (g Grid) numConfigs() int {
	if len(g.Configs) == 0 {
		return 1
	}
	return len(g.Configs)
}

// NumJobs returns the size of the grid's enumeration without materializing
// it.
func (g Grid) NumJobs() int {
	return len(g.Workloads) * g.numConfigs() * len(g.Selectors)
}

// JobAt returns cell i of the enumeration Jobs materializes — workload-major,
// then config, then selector — without building the job list, so grids of
// millions of cells can be walked by index. The distributed coordinator
// (internal/sweepnet) assigns contiguous index ranges over the wire and
// workers rebuild the jobs locally from the grid with this.
func (g Grid) JobAt(i int) Job {
	perWorkload := g.numConfigs() * len(g.Selectors)
	var c Config
	if len(g.Configs) > 0 {
		c = g.Configs[i%perWorkload/len(g.Selectors)]
	}
	return Job{
		Workload:        g.Workloads[i/perWorkload],
		Scale:           g.Scale,
		Selector:        g.Selectors[i%len(g.Selectors)],
		Params:          c.Params,
		CacheLimitBytes: c.CacheLimitBytes,
	}
}

// Options tunes the engine.
type Options struct {
	// Shards is the number of worker shards; <=0 means GOMAXPROCS.
	Shards int
	// Window bounds the reorder ring: a shard may run at most Window jobs
	// ahead of the oldest undelivered one. <=0 means 4 × shards. Memory
	// held for undelivered results is Window × sizeof(Result) regardless of
	// grid size.
	Window int
	// Memo switches record-once/replay-many trace memoization (memo.go).
	// The zero value is MemoOn: the first job touching a (workload, scale)
	// cell runs live with a recorder tapped off the VM, every later job of
	// the cell replays the recorded stream. Reports are byte-identical
	// either way; only the execution strategy changes.
	Memo MemoMode
	// MemoBudgetBytes bounds resident memoized corpora; <=0 means
	// DefaultMemoBudgetBytes. Cells whose corpus cannot fit degrade to
	// live execution.
	MemoBudgetBytes int64
}

// Shard is the per-worker execution state: one pooled dynopt.Scratch and a
// pool of Resettable selectors keyed by configuration name. After warm-up
// (first job per workload/selector shape), Run performs zero heap
// allocations per job for all four paper selectors — the combining ones
// store observed traces in a per-Combiner arena and reuse one pooled
// RegionCFG (see docs/PERFORMANCE.md).
type Shard struct {
	scratch   dynopt.Scratch
	selectors map[string]core.Selector
}

// NewShard returns an empty shard.
func NewShard() *Shard {
	return &Shard{selectors: make(map[string]core.Selector)}
}

// selector returns a selector for the job, recycling a pooled Resettable
// instance when one exists.
func (s *Shard) selector(name string, params core.Params) (core.Selector, error) {
	if sel, ok := s.selectors[name]; ok {
		sel.(core.Resettable).Reset(params)
		return sel, nil
	}
	sel, err := NewSelector(name, params)
	if err != nil {
		return nil, err
	}
	if _, ok := sel.(core.Resettable); ok {
		s.selectors[name] = sel
	}
	return sel, nil
}

// Run executes one job on the shard. The program must be the built form of
// job.Workload at job.Scale; it is read-only during the run and may be
// shared across shards.
//
//lint:hotpath steady-state shard job loop (TestShardSteadyStateAllocFree)
func (s *Shard) Run(p *program.Program, job Job) (metrics.Report, error) {
	rep, _, err := s.RunTapped(p, job, nil)
	return rep, err
}

// RunTapped is Run with a copy of the VM's block-event stream fanned out to
// tap (nil taps nothing — the VM feeds the simulator alone), returning the
// run's vm.Stats alongside the report so a recording caller (the memo
// layer, memo.go) can stamp the run totals into the captured stream's
// header. The tap only observes; the report is identical with or without
// one.
//
//lint:hotpath steady-state shard job loop (TestShardSteadyStateAllocFree)
func (s *Shard) RunTapped(p *program.Program, job Job, tap vm.BlockSink) (metrics.Report, vm.Stats, error) {
	sel, err := s.selector(job.Selector, job.Params)
	if err != nil {
		return metrics.Report{}, vm.Stats{}, err
	}
	res, err := dynopt.Run(p, dynopt.Config{
		Selector:        sel,
		VM:              vm.Config{},
		CacheLimitBytes: job.CacheLimitBytes,
		Scratch:         &s.scratch,
		Tap:             tap,
	})
	if err != nil {
		return metrics.Report{}, vm.Stats{}, err
	}
	res.Report.Workload = job.Workload
	return res.Report, res.VMStats, nil
}

// Replay executes one job against a decoded trace corpus instead of a live
// program: the recorded block events drive the selectors directly
// (dynopt.RunEvents), so the VM never runs. The corpus is read-only during
// the run and may be shared across shards.
//
//lint:hotpath steady-state shard job loop (TestShardSteadyStateAllocFree)
func (s *Shard) Replay(c *tracestream.Corpus, job Job) (metrics.Report, error) {
	sel, err := s.selector(job.Selector, job.Params)
	if err != nil {
		return metrics.Report{}, err
	}
	h := c.Stream.Header
	res, err := dynopt.RunEvents(c.Prog, dynopt.Config{
		Selector:        sel,
		CacheLimitBytes: job.CacheLimitBytes,
		Scratch:         &s.scratch,
	}, c.Stream.Events, h.FinalPC, h.Instrs)
	if err != nil {
		return metrics.Report{}, err
	}
	res.Report.Workload = job.Workload
	return res.Report, nil
}

// runnable is a resolved job input: a built program for registered
// workloads, plus the decoded corpus when the workload is a trace
// reference (prog is then the corpus's verified program).
type runnable struct {
	prog   *program.Program
	corpus *tracestream.Corpus
}

// progCache builds each distinct (workload, scale) program once and shares
// it across shards: programs are immutable after Build (every index is
// precomputed), so concurrent runs only read them. Trace-corpus references
// resolve through tracestream.DefaultCache, which shares the decoded
// stream the same way (and across Runners, keyed by file content).
type progCache struct {
	mu sync.Mutex
	m  map[progKey]runnable
}

type progKey struct {
	name  string
	scale int
}

func (pc *progCache) get(name string, scale int) (runnable, error) {
	if tracestream.IsRef(name) {
		// The recording fixes the scale; normalize the key so every scale
		// maps to the one decoded corpus.
		scale = 0
	}
	key := progKey{name, scale}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if r, ok := pc.m[key]; ok {
		return r, nil
	}
	var r runnable
	if tracestream.IsRef(name) {
		c, err := tracestream.DefaultCache.LoadRef(name)
		if err != nil {
			return runnable{}, fmt.Errorf("sweep: %w", err)
		}
		r = runnable{prog: c.Prog, corpus: c}
	} else {
		w, ok := workloads.Get(name)
		if !ok {
			return runnable{}, fmt.Errorf("sweep: unknown workload %q", name)
		}
		r = runnable{prog: w.Build(scale)}
	}
	if pc.m == nil {
		pc.m = make(map[progKey]runnable)
	}
	pc.m[key] = r
	return r, nil
}

// Runner owns the reusable execution state of the sweep engine — a pool of
// worker shards and the built-program cache — so successive runs (whole
// grids, or contiguous ranges of one large grid) keep their pooled
// dynopt.Scratch, Resettable selectors, and once-built programs across
// calls. It is safe for concurrent use; a sweepd worker keeps one Runner
// for its whole lifetime so every job range it executes reuses the same
// warmed state.
type Runner struct {
	mu     sync.Mutex
	shards []*Shard
	progs  progCache
	memo   *memoTable
}

// NewRunner returns an empty runner; shards and programs are built on first
// use and pooled thereafter.
func NewRunner() *Runner { return &Runner{} }

// acquire pops a pooled shard, building one on pool miss.
func (r *Runner) acquire() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.shards); n > 0 {
		s := r.shards[n-1]
		r.shards = r.shards[:n-1]
		return s
	}
	return NewShard()
}

// release returns a shard to the pool.
func (r *Runner) release(s *Shard) {
	r.mu.Lock()
	r.shards = append(r.shards, s)
	r.mu.Unlock()
}

// ensureMemo returns the runner's memo table, creating it on first use. The
// table — like the shard pool and program cache — lives as long as the
// runner, so successive runs replay cells earlier runs recorded. The first
// run to create the table fixes the corpus budget; later runs reuse it.
func (r *Runner) ensureMemo(budgetBytes int64) *memoTable {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memo == nil {
		r.memo = newMemoTable(budgetBytes)
	}
	return r.memo
}

// MemoStats snapshots the runner's memoization counters (zero before any
// memoized run).
func (r *Runner) MemoStats() MemoStats {
	r.mu.Lock()
	m := r.memo
	r.mu.Unlock()
	if m == nil {
		return MemoStats{}
	}
	return m.stats()
}

// jobSource is random access into a job enumeration; it lets the engine run
// an index range of a grid nobody ever materializes.
type jobSource interface {
	at(i int) Job
}

// sliceJobs adapts an explicit job list.
type sliceJobs []Job

func (s sliceJobs) at(i int) Job { return s[i] }

// gridJobs enumerates a grid's cells on demand.
type gridJobs struct{ g Grid }

func (s gridJobs) at(i int) Job { return s.g.JobAt(i) }

// queue is one shard's contiguous range of pending job indices. The owner
// pops from the bottom; thieves split off the top half.
type queue struct {
	mu     sync.Mutex
	lo, hi int // remaining jobs [lo, hi)
}

func (q *queue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lo >= q.hi {
		return 0, false
	}
	i := q.lo
	q.lo++
	return i, true
}

func (q *queue) remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hi - q.lo
}

// steal splits off the top half of the queue's range, leaving at least one
// job for the owner.
func (q *queue) steal() (lo, hi int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.hi - q.lo
	if n <= 1 {
		return 0, 0, false
	}
	take := n / 2
	lo, hi = q.hi-take, q.hi
	q.hi = lo
	return lo, hi, true
}

func (q *queue) refill(lo, hi int) {
	q.mu.Lock()
	q.lo, q.hi = lo, hi
	q.mu.Unlock()
}

type engine struct {
	ctx    context.Context
	cancel context.CancelFunc
	src    jobSource
	queues []*queue
	runner *Runner
	memo   *memoTable // nil when opts.Memo is MemoOff
	del    *OrderedSink

	mu   sync.Mutex
	errs []error
}

// Run executes jobs across opts.Shards worker shards with a throwaway
// Runner, streaming results to sink in job-index order. It fails fast: the
// first job error (or a cancellation of ctx) stops the whole grid, dropping
// undelivered results, and every error observed before the stop is
// aggregated with errors.Join in deterministic order.
func Run(ctx context.Context, jobs []Job, opts Options, sink ResultSink) error {
	return NewRunner().Run(ctx, jobs, opts, sink)
}

// RunGrid is Run over a grid's enumeration.
func RunGrid(ctx context.Context, g Grid, opts Options, sink ResultSink) error {
	return NewRunner().RunGrid(ctx, g, opts, sink)
}

// Run executes jobs with the runner's pooled state, streaming results to
// sink in job-index order with the fail-fast semantics of the package-level
// Run.
func (r *Runner) Run(ctx context.Context, jobs []Job, opts Options, sink ResultSink) error {
	return r.run(ctx, sliceJobs(jobs), 0, len(jobs), opts, sink)
}

// RunGrid is Run over a grid's enumeration, walked by index rather than
// materialized.
func (r *Runner) RunGrid(ctx context.Context, g Grid, opts Options, sink ResultSink) error {
	return r.run(ctx, gridJobs{g}, 0, g.NumJobs(), opts, sink)
}

// RunRange executes cells [lo, hi) of the grid's enumeration. Results carry
// their global grid indices, so a caller (the distributed worker) executing
// disjoint ranges of one grid can merge the streams back into full-grid
// order.
func (r *Runner) RunRange(ctx context.Context, g Grid, lo, hi int, opts Options, sink ResultSink) error {
	if n := g.NumJobs(); lo < 0 || hi > n || lo > hi {
		return fmt.Errorf("sweep: range [%d,%d) outside grid of %d jobs", lo, hi, n)
	}
	return r.run(ctx, gridJobs{g}, lo, hi, opts, sink)
}

func (r *Runner) run(ctx context.Context, src jobSource, lo, hi int, opts Options, sink ResultSink) error {
	n := hi - lo
	if n == 0 {
		return ctx.Err()
	}
	if sink == nil {
		sink = nopSink{}
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	window := opts.Window
	if window <= 0 {
		window = 4 * shards
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var memo *memoTable
	if opts.Memo == MemoOn {
		memo = r.ensureMemo(opts.MemoBudgetBytes)
	}
	e := &engine{
		ctx:    runCtx,
		cancel: cancel,
		src:    src,
		queues: make([]*queue, shards),
		runner: r,
		memo:   memo,
		del:    NewOrderedSink(lo, window, sink),
	}
	// Partition the range into contiguous per-shard sub-ranges; work
	// stealing rebalances them as shards drain at different speeds.
	base, rem := n/shards, n%shards
	next := lo
	for i := range e.queues {
		take := base
		if i < rem {
			take++
		}
		e.queues[i] = &queue{lo: next, hi: next + take}
		next += take
	}
	// Wake shards blocked on delivery backpressure when the run is
	// cancelled (externally or by a failing job).
	monitorDone := make(chan struct{})
	go func() {
		<-runCtx.Done()
		e.del.Cancel()
		close(monitorDone)
	}()
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(id)
		}(i)
	}
	wg.Wait()
	cancel()
	<-monitorDone
	e.mu.Lock()
	errs := e.errs
	e.mu.Unlock()
	if len(errs) > 0 {
		// Report every broken cell observed before the stop, ordered
		// deterministically since shards race.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return errors.Join(errs...)
	}
	return ctx.Err()
}

func (e *engine) worker(id int) {
	shard := e.runner.acquire()
	defer e.runner.release(shard)
	q := e.queues[id]
	for {
		if e.ctx.Err() != nil {
			return
		}
		i, ok := q.pop()
		if !ok {
			lo, hi, ok := e.stealLargest(id)
			if !ok {
				return
			}
			q.refill(lo, hi)
			continue
		}
		e.process(i, shard)
	}
}

// stealLargest takes the top half of the victim queue with the most pending
// jobs, retrying while steals race, and reports false when no queue has work
// to spare.
func (e *engine) stealLargest(id int) (lo, hi int, ok bool) {
	for {
		best, bestN := -1, 1
		for j, v := range e.queues {
			if j == id {
				continue
			}
			if n := v.remaining(); n > bestN {
				best, bestN = j, n
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		if lo, hi, ok = e.queues[best].steal(); ok {
			return lo, hi, true
		}
	}
}

//lint:hotpath per-job engine loop
func (e *engine) process(i int, shard *Shard) {
	job := e.src.at(i)
	run, err := e.runner.progs.get(job.Workload, job.Scale)
	if err != nil {
		e.fail(err)
		return
	}
	var rep metrics.Report
	switch {
	case run.corpus != nil:
		rep, err = shard.Replay(run.corpus, job)
	case e.memo != nil:
		rep, err = e.memo.run(shard, run.prog, job)
	default:
		rep, err = shard.Run(run.prog, job)
	}
	if err != nil {
		e.fail(fmt.Errorf("sweep: %s under %s: %w", job.Workload, job.Selector, err))
		return
	}
	e.del.Deliver(Result{Index: i, Job: job, Report: rep})
}

// fail records a job error and stops the grid.
func (e *engine) fail(err error) {
	e.mu.Lock()
	e.errs = append(e.errs, err)
	e.mu.Unlock()
	e.cancel()
}
