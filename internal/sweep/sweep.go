// Package sweep is the sharded parameter-sweep engine: it executes an
// arbitrary (workload × selector × params) grid across a set of worker
// shards with work stealing, context-based fail-fast cancellation, and
// bounded-memory streaming result delivery in deterministic grid order.
//
// The paper's evaluation is a parameter study — selector behavior under
// varying thresholds, history-buffer sizes, and cache bounds — and the
// engine is built so such studies are pure compute: each shard owns one
// dynopt.Scratch (interpreter, simulator, collector, analyzer, code cache)
// and a pool of Resettable selectors, programs are built once and shared
// read-only across shards, and the reorder ring reuses its slots, so a
// shard's steady-state job loop performs zero heap allocations (enforced by
// TestShardSteadyStateAllocFree).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Job is one cell of a sweep grid.
type Job struct {
	// Workload is a registered workload name (see internal/workloads).
	Workload string
	// Scale is the workload scale multiplier (<=0 selects the default).
	Scale int
	// Selector is a selector configuration name (see NewSelector).
	Selector string
	// Params are the selection-algorithm tunables for this cell.
	Params core.Params
	// CacheLimitBytes bounds the code cache; zero means unbounded.
	CacheLimitBytes int
}

// Config is one (params, cache bound) point of a grid.
type Config struct {
	Params          core.Params
	CacheLimitBytes int
}

// Grid enumerates the cross product workloads × configs × selectors in a
// deterministic order: workload-major, then config, then selector. Job
// indices — and therefore result delivery order — follow this enumeration.
type Grid struct {
	Workloads []string
	Scale     int
	Selectors []string
	// Configs are the parameter points; nil means one all-defaults config.
	Configs []Config
}

// Jobs materializes the grid's job list in enumeration order.
func (g Grid) Jobs() []Job {
	configs := g.Configs
	if len(configs) == 0 {
		configs = []Config{{}}
	}
	jobs := make([]Job, 0, len(g.Workloads)*len(configs)*len(g.Selectors))
	for _, w := range g.Workloads {
		for _, c := range configs {
			for _, s := range g.Selectors {
				jobs = append(jobs, Job{
					Workload:        w,
					Scale:           g.Scale,
					Selector:        s,
					Params:          c.Params,
					CacheLimitBytes: c.CacheLimitBytes,
				})
			}
		}
	}
	return jobs
}

// Options tunes the engine.
type Options struct {
	// Shards is the number of worker shards; <=0 means GOMAXPROCS.
	Shards int
	// Window bounds the reorder ring: a shard may run at most Window jobs
	// ahead of the oldest undelivered one. <=0 means 4 × shards. Memory
	// held for undelivered results is Window × sizeof(Result) regardless of
	// grid size.
	Window int
}

// Shard is the per-worker execution state: one pooled dynopt.Scratch and a
// pool of Resettable selectors keyed by configuration name. After warm-up
// (first job per workload/selector shape), Run performs zero heap
// allocations per job for all four paper selectors — the combining ones
// store observed traces in a per-Combiner arena and reuse one pooled
// RegionCFG (see docs/PERFORMANCE.md).
type Shard struct {
	scratch   dynopt.Scratch
	selectors map[string]core.Selector
}

// NewShard returns an empty shard.
func NewShard() *Shard {
	return &Shard{selectors: make(map[string]core.Selector)}
}

// selector returns a selector for the job, recycling a pooled Resettable
// instance when one exists.
func (s *Shard) selector(name string, params core.Params) (core.Selector, error) {
	if sel, ok := s.selectors[name]; ok {
		sel.(core.Resettable).Reset(params)
		return sel, nil
	}
	sel, err := NewSelector(name, params)
	if err != nil {
		return nil, err
	}
	if _, ok := sel.(core.Resettable); ok {
		s.selectors[name] = sel
	}
	return sel, nil
}

// Run executes one job on the shard. The program must be the built form of
// job.Workload at job.Scale; it is read-only during the run and may be
// shared across shards.
//
//lint:hotpath steady-state shard job loop (TestShardSteadyStateAllocFree)
func (s *Shard) Run(p *program.Program, job Job) (metrics.Report, error) {
	sel, err := s.selector(job.Selector, job.Params)
	if err != nil {
		return metrics.Report{}, err
	}
	res, err := dynopt.Run(p, dynopt.Config{
		Selector:        sel,
		VM:              vm.Config{},
		CacheLimitBytes: job.CacheLimitBytes,
		Scratch:         &s.scratch,
	})
	if err != nil {
		return metrics.Report{}, err
	}
	res.Report.Workload = job.Workload
	return res.Report, nil
}

// progCache builds each distinct (workload, scale) program once and shares
// it across shards: programs are immutable after Build (every index is
// precomputed), so concurrent runs only read them.
type progCache struct {
	mu sync.Mutex
	m  map[progKey]*program.Program
}

type progKey struct {
	name  string
	scale int
}

func (pc *progCache) get(name string, scale int) (*program.Program, error) {
	key := progKey{name, scale}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if p, ok := pc.m[key]; ok {
		return p, nil
	}
	w, ok := workloads.Get(name)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown workload %q", name)
	}
	p := w.Build(scale)
	if pc.m == nil {
		pc.m = make(map[progKey]*program.Program)
	}
	pc.m[key] = p
	return p, nil
}

// queue is one shard's contiguous range of pending job indices. The owner
// pops from the bottom; thieves split off the top half.
type queue struct {
	mu     sync.Mutex
	lo, hi int // remaining jobs [lo, hi)
}

func (q *queue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.lo >= q.hi {
		return 0, false
	}
	i := q.lo
	q.lo++
	return i, true
}

func (q *queue) remaining() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.hi - q.lo
}

// steal splits off the top half of the queue's range, leaving at least one
// job for the owner.
func (q *queue) steal() (lo, hi int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := q.hi - q.lo
	if n <= 1 {
		return 0, 0, false
	}
	take := n / 2
	lo, hi = q.hi-take, q.hi
	q.hi = lo
	return lo, hi, true
}

func (q *queue) refill(lo, hi int) {
	q.mu.Lock()
	q.lo, q.hi = lo, hi
	q.mu.Unlock()
}

type engine struct {
	ctx    context.Context
	cancel context.CancelFunc
	jobs   []Job
	queues []*queue
	progs  progCache
	del    *delivery

	mu   sync.Mutex
	errs []error
}

// Run executes jobs across opts.Shards worker shards, streaming results to
// sink in job-index order. It fails fast: the first job error (or a
// cancellation of ctx) stops the whole grid, dropping undelivered results,
// and every error observed before the stop is aggregated with errors.Join
// in deterministic order.
func Run(ctx context.Context, jobs []Job, opts Options, sink ResultSink) error {
	if len(jobs) == 0 {
		return ctx.Err()
	}
	if sink == nil {
		sink = nopSink{}
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(jobs) {
		shards = len(jobs)
	}
	window := opts.Window
	if window <= 0 {
		window = 4 * shards
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	e := &engine{
		ctx:    runCtx,
		cancel: cancel,
		jobs:   jobs,
		queues: make([]*queue, shards),
		del:    newDelivery(window, sink),
	}
	// Partition the grid into contiguous per-shard ranges; work stealing
	// rebalances them as shards drain at different speeds.
	base, rem := len(jobs)/shards, len(jobs)%shards
	lo := 0
	for i := range e.queues {
		n := base
		if i < rem {
			n++
		}
		e.queues[i] = &queue{lo: lo, hi: lo + n}
		lo += n
	}
	// Wake shards blocked on delivery backpressure when the run is
	// cancelled (externally or by a failing job).
	monitorDone := make(chan struct{})
	go func() {
		<-runCtx.Done()
		e.del.cancelAll()
		close(monitorDone)
	}()
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e.worker(id)
		}(i)
	}
	wg.Wait()
	cancel()
	<-monitorDone
	e.mu.Lock()
	errs := e.errs
	e.mu.Unlock()
	if len(errs) > 0 {
		// Report every broken cell observed before the stop, ordered
		// deterministically since shards race.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return errors.Join(errs...)
	}
	return ctx.Err()
}

// RunGrid is Run over a grid's enumeration.
func RunGrid(ctx context.Context, g Grid, opts Options, sink ResultSink) error {
	return Run(ctx, g.Jobs(), opts, sink)
}

func (e *engine) worker(id int) {
	shard := NewShard()
	q := e.queues[id]
	for {
		if e.ctx.Err() != nil {
			return
		}
		i, ok := q.pop()
		if !ok {
			lo, hi, ok := e.stealLargest(id)
			if !ok {
				return
			}
			q.refill(lo, hi)
			continue
		}
		e.process(i, shard)
	}
}

// stealLargest takes the top half of the victim queue with the most pending
// jobs, retrying while steals race, and reports false when no queue has work
// to spare.
func (e *engine) stealLargest(id int) (lo, hi int, ok bool) {
	for {
		best, bestN := -1, 1
		for j, v := range e.queues {
			if j == id {
				continue
			}
			if n := v.remaining(); n > bestN {
				best, bestN = j, n
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		if lo, hi, ok = e.queues[best].steal(); ok {
			return lo, hi, true
		}
	}
}

//lint:hotpath per-job engine loop
func (e *engine) process(i int, shard *Shard) {
	job := e.jobs[i]
	p, err := e.progs.get(job.Workload, job.Scale)
	if err != nil {
		e.fail(err)
		return
	}
	rep, err := shard.Run(p, job)
	if err != nil {
		e.fail(fmt.Errorf("sweep: %s under %s: %w", job.Workload, job.Selector, err))
		return
	}
	e.del.deliver(Result{Index: i, Job: job, Report: rep})
}

// fail records a job error and stops the grid.
func (e *engine) fail(err error) {
	e.mu.Lock()
	e.errs = append(e.errs, err)
	e.mu.Unlock()
	e.cancel()
}
