// Package program holds the static representation of a simulated binary:
// a flat instruction memory, the functions placed in it, and the basic-block
// decomposition the region selectors and metrics operate on.
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Function describes a contiguous range of instructions with a name. The
// placement order of functions matters to the selectors: a call to a
// function at a lower address is a backward branch (paper §2.2, Figure 2).
type Function struct {
	Name  string
	Entry isa.Addr
	End   isa.Addr // exclusive
}

// Contains reports whether addr lies in the function body.
func (f Function) Contains(addr isa.Addr) bool { return addr >= f.Entry && addr < f.End }

// Program is an immutable simulated binary.
type Program struct {
	instrs []isa.Instr
	funcs  []Function
	labels map[string]isa.Addr

	// Basic-block decomposition, computed once at construction. All block
	// queries are answered from dense address- or block-indexed slices so
	// the simulator's per-block hot path never hashes.
	blockStarts []isa.Addr // sorted leaders
	blockEnds   []isa.Addr // exclusive end of each block, indexed by block id
	leaderOf    []int32    // addr -> index of containing block
	entry       isa.Addr

	// Lookup indexes computed once at construction: funcOf answers FuncAt
	// in O(1) (the index of the first function containing each address, -1
	// when none), and labelsAt inverts the label table for disassembly.
	funcOf   []int32
	labelsAt map[isa.Addr][]string
}

// New assembles a Program from raw instructions. The entry point is address
// 0. Labels and functions are optional metadata used for diagnostics.
func New(instrs []isa.Instr, funcs []Function, labels map[string]isa.Addr) (*Program, error) {
	if len(instrs) == 0 {
		return nil, fmt.Errorf("program: empty instruction stream")
	}
	for a, in := range instrs {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("program: at %d: %w", a, err)
		}
		if in.IsBranch() && !in.IsIndirect() {
			if int(in.Target) >= len(instrs) {
				return nil, fmt.Errorf("program: at %d: branch target %d out of range", a, in.Target)
			}
		}
	}
	last := instrs[len(instrs)-1]
	if !last.EndsBlock() {
		return nil, fmt.Errorf("program: final instruction %s falls off the end", last)
	}
	if labels == nil {
		labels = map[string]isa.Addr{}
	}
	p := &Program{instrs: instrs, funcs: funcs, labels: labels}
	p.computeBlocks()
	p.computeIndexes()
	return p, nil
}

// computeIndexes builds the O(1) lookup tables over functions and labels.
func (p *Program) computeIndexes() {
	p.funcOf = make([]int32, len(p.instrs))
	for a := range p.funcOf {
		p.funcOf[a] = -1
	}
	// First containing function wins, matching the historical linear scan
	// when ranges overlap.
	for i, f := range p.funcs {
		for a := f.Entry; a < f.End && int(a) < len(p.funcOf); a++ {
			if p.funcOf[a] < 0 {
				p.funcOf[a] = int32(i)
			}
		}
	}
	p.labelsAt = make(map[isa.Addr][]string, len(p.labels))
	for name, a := range p.labels {
		p.labelsAt[a] = append(p.labelsAt[a], name)
	}
	for _, names := range p.labelsAt {
		sort.Strings(names)
	}
}

// MustNew is New, panicking on error. Intended for statically known-good
// workload definitions.
func MustNew(instrs []isa.Instr, funcs []Function, labels map[string]isa.Addr) *Program {
	p, err := New(instrs, funcs, labels)
	if err != nil {
		panic(err)
	}
	return p
}

// computeBlocks finds basic-block leaders: the entry point, every direct
// branch target, and every instruction following a block-ending instruction.
// Indirect branch targets are discovered conservatively: any function entry
// and any instruction after a call is a leader (returns target post-call
// sites; indirect jumps in our workloads always target labeled leaders that
// are also direct targets or function entries via jump tables — the VM
// additionally verifies at run time that every dynamic branch target is a
// leader).
func (p *Program) computeBlocks() {
	leader := make([]bool, len(p.instrs))
	leader[0] = true
	for a, in := range p.instrs {
		if in.IsBranch() && !in.IsIndirect() {
			leader[in.Target] = true
		}
		if in.EndsBlock() && a+1 < len(p.instrs) {
			leader[a+1] = true
		}
	}
	for _, f := range p.funcs {
		if int(f.Entry) < len(p.instrs) {
			leader[f.Entry] = true
		}
	}
	// Labels are potential indirect-jump targets.
	for _, a := range p.labels {
		if int(a) < len(p.instrs) {
			leader[a] = true
		}
	}
	p.leaderOf = make([]int32, len(p.instrs))
	for a, isL := range leader {
		if isL {
			p.blockStarts = append(p.blockStarts, isa.Addr(a))
		}
		p.leaderOf[a] = int32(len(p.blockStarts) - 1)
	}
	p.blockEnds = make([]isa.Addr, len(p.blockStarts))
	for id := range p.blockEnds {
		if id+1 < len(p.blockStarts) {
			p.blockEnds[id] = p.blockStarts[id+1]
		} else {
			p.blockEnds[id] = isa.Addr(len(p.instrs))
		}
	}
}

// Len returns the number of instructions in the program.
func (p *Program) Len() int { return len(p.instrs) }

// Digest returns a 64-bit FNV-1a content hash over the instruction stream
// (opcodes, operands, immediates, targets — not labels or function names,
// which never affect execution). Recorded trace streams embed it
// (internal/tracestream) so a replay against a different program fails fast
// instead of producing silently wrong attributions.
func (p *Program) Digest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte8 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, in := range p.instrs {
		byte8(uint64(in.Op) | uint64(in.Cond)<<8 | uint64(in.Dst)<<16 |
			uint64(in.SrcA)<<24 | uint64(in.SrcB)<<32)
		byte8(uint64(in.Imm))
		byte8(uint64(in.Target))
	}
	return h
}

// Entry returns the program entry point.
func (p *Program) Entry() isa.Addr { return p.entry }

// At returns the instruction at addr. It panics when addr is out of range;
// the VM validates all dynamic targets before fetching.
func (p *Program) At(addr isa.Addr) isa.Instr { return p.instrs[addr] }

// InRange reports whether addr names an instruction.
func (p *Program) InRange(addr isa.Addr) bool { return int(addr) < len(p.instrs) }

// Funcs returns the function table.
func (p *Program) Funcs() []Function { return p.funcs }

// FuncAt returns the function containing addr, if any. The lookup is a
// single indexed load into the table built at construction.
func (p *Program) FuncAt(addr isa.Addr) (Function, bool) {
	if int(addr) >= len(p.funcOf) {
		return Function{}, false
	}
	i := p.funcOf[addr]
	if i < 0 {
		return Function{}, false
	}
	return p.funcs[i], true
}

// LabelsAt returns the label names attached to addr, sorted; the returned
// slice must not be modified.
func (p *Program) LabelsAt(addr isa.Addr) []string { return p.labelsAt[addr] }

// Label resolves a label name.
func (p *Program) Label(name string) (isa.Addr, bool) {
	a, ok := p.labels[name]
	return a, ok
}

// Labels returns a copy of the label table.
func (p *Program) Labels() map[string]isa.Addr {
	out := make(map[string]isa.Addr, len(p.labels))
	for name, a := range p.labels {
		out[name] = a
	}
	return out
}

// NumBlocks returns the number of static basic blocks.
func (p *Program) NumBlocks() int { return len(p.blockStarts) }

// BlockStarts returns the sorted leader addresses. The returned slice must
// not be modified.
func (p *Program) BlockStarts() []isa.Addr { return p.blockStarts }

// IsBlockStart reports whether addr is a basic-block leader.
func (p *Program) IsBlockStart(addr isa.Addr) bool {
	return int(addr) < len(p.leaderOf) && p.blockStarts[p.leaderOf[addr]] == addr
}

// BlockID returns the dense index of the block led by addr, or -1 when addr
// is not a leader.
func (p *Program) BlockID(addr isa.Addr) int {
	if int(addr) >= len(p.leaderOf) {
		return -1
	}
	id := p.leaderOf[addr]
	if p.blockStarts[id] != addr {
		return -1
	}
	return int(id)
}

// BlockContaining returns the leader of the block containing addr.
func (p *Program) BlockContaining(addr isa.Addr) isa.Addr {
	return p.blockStarts[p.leaderOf[addr]]
}

// BlockEnd returns the exclusive end address of the block led by start:
// execution entering at start runs linearly through BlockEnd-1.
func (p *Program) BlockEnd(start isa.Addr) isa.Addr {
	id := p.BlockID(start)
	if id < 0 {
		panic(fmt.Sprintf("program: %d is not a block leader", start))
	}
	return p.blockEnds[id]
}

// BlockLen returns the instruction count of the block led by start.
func (p *Program) BlockLen(start isa.Addr) int {
	return int(p.BlockEnd(start) - start)
}

// BlockBytes returns the encoded byte size of the block led by start.
func (p *Program) BlockBytes(start isa.Addr) int {
	n := 0
	for a := start; a < p.BlockEnd(start); a++ {
		n += p.instrs[a].Op.Bytes()
	}
	return n
}

// RangeBytes returns the encoded size of instructions in [start, end).
func (p *Program) RangeBytes(start, end isa.Addr) int {
	n := 0
	for a := start; a < end && p.InRange(a); a++ {
		n += p.instrs[a].Op.Bytes()
	}
	return n
}

// StaticSuccessors returns the possible successor leaders of the block led
// by start, for blocks ending in direct control flow. Indirect blocks return
// only the fall-through (calls) or nothing (jmpi/ret).
func (p *Program) StaticSuccessors(start isa.Addr) []isa.Addr {
	end := p.BlockEnd(start)
	last := p.instrs[end-1]
	var succs []isa.Addr
	switch {
	case last.Op == isa.Halt:
	case last.Op == isa.Jmp:
		succs = append(succs, last.Target)
	case last.Op == isa.Br:
		succs = append(succs, last.Target)
		if p.InRange(end) {
			succs = append(succs, end)
		}
	case last.Op == isa.Call:
		succs = append(succs, last.Target)
	case last.IsIndirect():
		// Unknown statically.
	default:
		if p.InRange(end) {
			succs = append(succs, end)
		}
	}
	return succs
}

// Verify performs deep structural consistency checks beyond what New
// validates: blocks partition the instruction space, every direct branch
// target is a block leader, functions are sorted and non-overlapping, and
// labels land inside the program. It exists for tests and for validating
// generated or hand-assembled programs.
func (p *Program) Verify() error {
	// Blocks partition the program.
	prev := isa.Addr(0)
	for i, start := range p.blockStarts {
		if i == 0 {
			if start != 0 {
				return fmt.Errorf("program: first block starts at %d", start)
			}
		} else if start <= prev {
			return fmt.Errorf("program: block starts not strictly increasing at %d", start)
		}
		end := p.BlockEnd(start)
		if end <= start {
			return fmt.Errorf("program: empty block at %d", start)
		}
		// No interior instruction ends a block.
		for a := start; a < end-1; a++ {
			if p.instrs[a].EndsBlock() {
				return fmt.Errorf("program: block-ending %s at %d is interior to block [%d,%d)", p.instrs[a], a, start, end)
			}
		}
		prev = start
	}
	if got := p.BlockEnd(p.blockStarts[len(p.blockStarts)-1]); got != isa.Addr(len(p.instrs)) {
		return fmt.Errorf("program: blocks do not cover the program (last ends at %d of %d)", got, len(p.instrs))
	}
	// Direct branch targets are leaders.
	for a, in := range p.instrs {
		if in.IsBranch() && !in.IsIndirect() && !p.IsBlockStart(in.Target) {
			return fmt.Errorf("program: branch at %d targets non-leader %d", a, in.Target)
		}
	}
	// Functions are ordered and disjoint.
	for i, f := range p.funcs {
		if f.End < f.Entry || int(f.End) > len(p.instrs) {
			return fmt.Errorf("program: function %s has range [%d,%d)", f.Name, f.Entry, f.End)
		}
		if i > 0 && f.Entry < p.funcs[i-1].End {
			return fmt.Errorf("program: function %s overlaps %s", f.Name, p.funcs[i-1].Name)
		}
	}
	// Labels are in range and are leaders.
	for name, a := range p.labels {
		if !p.InRange(a) {
			return fmt.Errorf("program: label %s at %d out of range", name, a)
		}
		if !p.IsBlockStart(a) {
			return fmt.Errorf("program: label %s at %d is not a leader", name, a)
		}
	}
	return nil
}

// Disassemble renders the instructions in [start, end) with addresses,
// labels, and function headers, for human consumption.
func (p *Program) Disassemble(start, end isa.Addr) string {
	if end > isa.Addr(len(p.instrs)) {
		end = isa.Addr(len(p.instrs))
	}
	out := ""
	for a := start; a < end; a++ {
		for _, f := range p.funcs {
			if f.Entry == a {
				out += fmt.Sprintf("func %s:\n", f.Name)
			}
		}
		for _, name := range p.labelsAt[a] {
			out += fmt.Sprintf("%s:\n", name)
		}
		out += fmt.Sprintf("  %4d  %s\n", a, p.instrs[a])
	}
	return out
}
