package program

import (
	"testing"

	"repro/internal/isa"
)

// nestedLoopProgram:
//
//	0: movi r1, 3        E  entry
//	1: movi r2, 4        A  outer header (target of 7)
//	2: addi r2, r2, -1   B  inner header (target of 3)
//	3: bgt r2, r0, 2     (inner back edge)
//	4: addi r1, r1, -1   C
//	5: nop
//	6: nop
//	7: bgt r1, r0, 1     (outer back edge)
//	8: halt              D
func nestedLoopProgram(t *testing.T) *Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 3},
		{Op: isa.MovImm, Dst: 2, Imm: 4},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: -1},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 2, SrcB: 0, Target: 2},
		{Op: isa.AddImm, Dst: 1, SrcA: 1, Imm: -1},
		{Op: isa.Nop},
		{Op: isa.Nop},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 1},
		{Op: isa.Halt},
	}
	p, err := New(ins, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDominators(t *testing.T) {
	p := nestedLoopProgram(t)
	idom := p.Dominators()
	// Blocks: 0(E), 1(A), 2(B), 4(C), 8(D).
	get := func(addr isa.Addr) int { return idom[p.BlockID(addr)] }
	if got := get(0); got != p.BlockID(0) {
		t.Errorf("idom(entry) = %d", got)
	}
	if got := get(1); got != p.BlockID(0) {
		t.Errorf("idom(A) = block %d, want entry", got)
	}
	if got := get(2); got != p.BlockID(1) {
		t.Errorf("idom(B) = block %d, want A", got)
	}
	if got := get(4); got != p.BlockID(2) {
		t.Errorf("idom(C) = block %d, want B", got)
	}
	if got := get(8); got != p.BlockID(4) {
		t.Errorf("idom(D) = block %d, want C", got)
	}
}

func TestNaturalLoops(t *testing.T) {
	p := nestedLoopProgram(t)
	loops := p.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops = %+v, want 2", loops)
	}
	// Outer loop: header A(1), tail C(4), body {A,B,C}.
	outer := loops[0]
	if outer.Header != 1 || outer.Tail != 4 {
		t.Errorf("outer = %+v", outer)
	}
	for _, b := range []isa.Addr{1, 2, 4} {
		if !outer.Contains(b) {
			t.Errorf("outer misses block %d", b)
		}
	}
	if outer.Contains(0) || outer.Contains(8) {
		t.Error("outer contains non-loop blocks")
	}
	// Inner loop: header B(2), tail B(2), body {B}.
	inner := loops[1]
	if inner.Header != 2 || inner.Tail != 2 || len(inner.Blocks) != 1 {
		t.Errorf("inner = %+v", inner)
	}
}

func TestLoopsIrreducibleSafe(t *testing.T) {
	// A branch into the middle of a loop from outside (irreducible-ish
	// shape): the jump target does not dominate the "tail", so no natural
	// loop is reported for that edge and the analysis must not loop
	// forever.
	ins := []isa.Instr{
		{Op: isa.Br, Cond: isa.CondEq, SrcA: 0, SrcB: 0, Target: 3}, // entry -> mid
		{Op: isa.Nop}, // head part 1
		{Op: isa.Nop}, // falls into 3
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 1}, // mid -> head part 1
		{Op: isa.Halt},
	}
	p, err := New(ins, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	loops := p.NaturalLoops()
	for _, l := range loops {
		if l.Header == 1 {
			t.Errorf("edge 3->1 treated as back edge despite no dominance: %+v", l)
		}
	}
}

func TestLoopsOnWorkloadScale(t *testing.T) {
	// Smoke: the analysis handles every registered SPEC-shaped workload.
	// (Imported via the builder API to avoid a dependency cycle, the
	// workloads themselves are exercised in their own package; here we
	// build a moderately complex program inline.)
	b := NewBuilder()
	b.Jmp("main")
	b.Func("helper")
	b.MovImm(10, 5)
	b.Label("hl")
	b.AddImm(10, 10, -1)
	b.Br(isa.CondGt, 10, 0, "hl")
	b.Ret()
	b.Func("main")
	b.MovImm(1, 10)
	b.Label("outer")
	b.Call("helper")
	b.AddImm(1, 1, -1)
	b.Br(isa.CondGt, 1, 0, "outer")
	b.Halt()
	p := b.MustBuild()
	loops := p.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("loops = %+v", loops)
	}
	// The helper's loop and main's loop; the call edge must not create a
	// spurious loop (returns are indirect, hence invisible statically).
	headers := map[isa.Addr]bool{}
	for _, l := range loops {
		headers[l.Header] = true
	}
	hl, _ := p.Label("hl")
	outer, _ := p.Label("outer")
	if !headers[hl] || !headers[outer] {
		t.Errorf("headers = %v, want %d and %d", headers, hl, outer)
	}
}
