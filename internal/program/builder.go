package program

import (
	"fmt"

	"repro/internal/isa"
)

// Builder incrementally constructs a Program. Instructions are appended in
// placement order; branch targets may reference labels that are defined
// later and are fixed up in Build. The order in which functions are defined
// determines their addresses, and therefore whether calls between them are
// forward or backward branches — workloads use this to reproduce the
// paper's interprocedural-cycle scenarios.
type Builder struct {
	instrs  []isa.Instr
	funcs   []Function
	labels  map[string]isa.Addr
	fixups  []fixup
	curFunc int // index into funcs, -1 when outside any function
	errs    []error
}

type fixup struct {
	at    isa.Addr
	label string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: map[string]isa.Addr{}, curFunc: -1}
}

// PC returns the address the next instruction will occupy.
func (b *Builder) PC() isa.Addr { return isa.Addr(len(b.instrs)) }

// Func begins a new function at the current address. Any previously open
// function is closed at this address.
func (b *Builder) Func(name string) *Builder {
	b.closeFunc()
	b.funcs = append(b.funcs, Function{Name: name, Entry: b.PC()})
	b.curFunc = len(b.funcs) - 1
	b.Label(name)
	return b
}

func (b *Builder) closeFunc() {
	if b.curFunc >= 0 {
		b.funcs[b.curFunc].End = b.PC()
		b.curFunc = -1
	}
}

// Label defines a label at the current address.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) *Builder {
	b.instrs = append(b.instrs, in)
	return b
}

// emitTo appends an instruction whose Target is the given label, recording a
// fixup when the label is not yet defined.
func (b *Builder) emitTo(in isa.Instr, label string) *Builder {
	if addr, ok := b.labels[label]; ok {
		in.Target = addr
	} else {
		b.fixups = append(b.fixups, fixup{at: b.PC(), label: label})
	}
	return b.Emit(in)
}

// Nop appends a nop.
func (b *Builder) Nop() *Builder { return b.Emit(isa.Instr{Op: isa.Nop}) }

// Halt appends a halt.
func (b *Builder) Halt() *Builder { return b.Emit(isa.Instr{Op: isa.Halt}) }

// MovImm appends dst = imm.
func (b *Builder) MovImm(dst isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instr{Op: isa.MovImm, Dst: dst, Imm: imm})
}

// Mov appends dst = src.
func (b *Builder) Mov(dst, src isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Mov, Dst: dst, SrcA: src})
}

// Add appends dst = a + c.
func (b *Builder) Add(dst, a, c isa.Reg) *Builder { return b.op3(isa.Add, dst, a, c) }

// AddImm appends dst = a + imm.
func (b *Builder) AddImm(dst, a isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instr{Op: isa.AddImm, Dst: dst, SrcA: a, Imm: imm})
}

// Sub appends dst = a - c.
func (b *Builder) Sub(dst, a, c isa.Reg) *Builder { return b.op3(isa.Sub, dst, a, c) }

// Mul appends dst = a * c.
func (b *Builder) Mul(dst, a, c isa.Reg) *Builder { return b.op3(isa.Mul, dst, a, c) }

// Div appends dst = a / c.
func (b *Builder) Div(dst, a, c isa.Reg) *Builder { return b.op3(isa.Div, dst, a, c) }

// Rem appends dst = a % c.
func (b *Builder) Rem(dst, a, c isa.Reg) *Builder { return b.op3(isa.Rem, dst, a, c) }

// And appends dst = a & c.
func (b *Builder) And(dst, a, c isa.Reg) *Builder { return b.op3(isa.And, dst, a, c) }

// Or appends dst = a | c.
func (b *Builder) Or(dst, a, c isa.Reg) *Builder { return b.op3(isa.Or, dst, a, c) }

// Xor appends dst = a ^ c.
func (b *Builder) Xor(dst, a, c isa.Reg) *Builder { return b.op3(isa.Xor, dst, a, c) }

// Shl appends dst = a << c.
func (b *Builder) Shl(dst, a, c isa.Reg) *Builder { return b.op3(isa.Shl, dst, a, c) }

// Shr appends dst = a >> c.
func (b *Builder) Shr(dst, a, c isa.Reg) *Builder { return b.op3(isa.Shr, dst, a, c) }

func (b *Builder) op3(op isa.Opcode, dst, a, c isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: op, Dst: dst, SrcA: a, SrcB: c})
}

// Load appends dst = mem[base+imm].
func (b *Builder) Load(dst, base isa.Reg, imm int64) *Builder {
	return b.Emit(isa.Instr{Op: isa.Load, Dst: dst, SrcA: base, Imm: imm})
}

// Store appends mem[base+imm] = src.
func (b *Builder) Store(base isa.Reg, imm int64, src isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Store, SrcA: base, SrcB: src, Imm: imm})
}

// Jmp appends an unconditional jump to the label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitTo(isa.Instr{Op: isa.Jmp}, label)
}

// Br appends a conditional branch to the label.
func (b *Builder) Br(cond isa.Cond, a, c isa.Reg, label string) *Builder {
	return b.emitTo(isa.Instr{Op: isa.Br, Cond: cond, SrcA: a, SrcB: c}, label)
}

// Call appends a direct call to the label.
func (b *Builder) Call(label string) *Builder {
	return b.emitTo(isa.Instr{Op: isa.Call}, label)
}

// CallInd appends an indirect call through the register.
func (b *Builder) CallInd(a isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.CallInd, SrcA: a})
}

// JmpInd appends an indirect jump through the register.
func (b *Builder) JmpInd(a isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.JmpInd, SrcA: a})
}

// Ret appends a return.
func (b *Builder) Ret() *Builder { return b.Emit(isa.Instr{Op: isa.Ret}) }

// MovLabel appends dst = address-of(label), for building jump tables in
// registers or memory.
func (b *Builder) MovLabel(dst isa.Reg, label string) *Builder {
	if addr, ok := b.labels[label]; ok {
		return b.Emit(isa.Instr{Op: isa.MovImm, Dst: dst, Imm: int64(addr)})
	}
	// Record as a fixup into the Imm field via a sentinel: reuse fixups by
	// storing the instruction index; Build patches Imm for MovImm fixups.
	b.fixups = append(b.fixups, fixup{at: b.PC(), label: label})
	return b.Emit(isa.Instr{Op: isa.MovImm, Dst: dst})
}

// Build resolves fixups and returns the assembled Program.
func (b *Builder) Build() (*Program, error) {
	b.closeFunc()
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		addr, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q referenced at %d", f.label, f.at)
		}
		in := &b.instrs[f.at]
		if in.Op == isa.MovImm {
			in.Imm = int64(addr)
		} else {
			in.Target = addr
		}
	}
	return New(b.instrs, b.funcs, b.labels)
}

// MustBuild is Build, panicking on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
