package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildLoop constructs a canonical program:
//
//	0: movi r1, 10        <- entry block
//	1: addi r1, r1, -1    <- loop block (leader: branch target)
//	2: add  r2, r2, r1
//	3: bgt  r1, r0, 1
//	4: halt               <- leader: follows a block end
func buildLoop(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder()
	b.Func("main")
	b.MovImm(1, 10)
	b.Label("loop")
	b.AddImm(1, 1, -1)
	b.Add(2, 2, 1)
	b.Br(isa.CondGt, 1, 0, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBlockDecomposition(t *testing.T) {
	p := buildLoop(t)
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	wantLeaders := []isa.Addr{0, 1, 4}
	got := p.BlockStarts()
	if len(got) != len(wantLeaders) {
		t.Fatalf("BlockStarts = %v, want %v", got, wantLeaders)
	}
	for i, w := range wantLeaders {
		if got[i] != w {
			t.Fatalf("BlockStarts = %v, want %v", got, wantLeaders)
		}
	}
	if p.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d, want 3", p.NumBlocks())
	}
	if !p.IsBlockStart(1) || p.IsBlockStart(2) {
		t.Error("leader detection wrong at addresses 1/2")
	}
	if end := p.BlockEnd(1); end != 4 {
		t.Errorf("BlockEnd(1) = %d, want 4", end)
	}
	if n := p.BlockLen(1); n != 3 {
		t.Errorf("BlockLen(1) = %d, want 3", n)
	}
	if got := p.BlockContaining(2); got != 1 {
		t.Errorf("BlockContaining(2) = %d, want 1", got)
	}
	if got := p.BlockContaining(4); got != 4 {
		t.Errorf("BlockContaining(4) = %d, want 4", got)
	}
	if id := p.BlockID(1); id != 1 {
		t.Errorf("BlockID(1) = %d, want 1", id)
	}
	if id := p.BlockID(2); id != -1 {
		t.Errorf("BlockID(2) = %d, want -1", id)
	}
}

func TestBlockBytes(t *testing.T) {
	p := buildLoop(t)
	// Block 1: addi(4) + add(3) + br(4) = 11 bytes.
	if got := p.BlockBytes(1); got != 11 {
		t.Errorf("BlockBytes(1) = %d, want 11", got)
	}
	if got := p.RangeBytes(0, 1); got != isa.MovImm.Bytes() {
		t.Errorf("RangeBytes(0,1) = %d, want %d", got, isa.MovImm.Bytes())
	}
}

func TestStaticSuccessors(t *testing.T) {
	p := buildLoop(t)
	// Entry block (movi) falls through to the loop.
	succ := p.StaticSuccessors(0)
	if len(succ) != 1 || succ[0] != 1 {
		t.Errorf("StaticSuccessors(0) = %v, want [1]", succ)
	}
	// Loop block branches to itself or falls through to halt.
	succ = p.StaticSuccessors(1)
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 4 {
		t.Errorf("StaticSuccessors(1) = %v, want [1 4]", succ)
	}
	// Halt block has no successors.
	if succ = p.StaticSuccessors(4); len(succ) != 0 {
		t.Errorf("StaticSuccessors(4) = %v, want []", succ)
	}
}

func TestFunctionsAndLabels(t *testing.T) {
	b := NewBuilder()
	b.Jmp("main")
	b.Func("helper")
	b.Nop()
	b.Ret()
	b.Func("main")
	b.Call("helper")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := p.FuncAt(1); !ok || f.Name != "helper" {
		t.Errorf("FuncAt(1) = %+v, %v", f, ok)
	}
	if f, ok := p.FuncAt(3); !ok || f.Name != "main" {
		t.Errorf("FuncAt(3) = %+v, %v", f, ok)
	}
	if _, ok := p.FuncAt(0); ok {
		t.Error("FuncAt(0) should be outside any function")
	}
	if a, ok := p.Label("main"); !ok || a != 3 {
		t.Errorf("Label(main) = %d, %v", a, ok)
	}
	// The call to helper must be a backward branch (helper placed first).
	call := p.At(3)
	if call.Op != isa.Call || call.Target != 1 {
		t.Errorf("call = %s", call)
	}
	funcs := p.Funcs()
	if len(funcs) != 2 || funcs[0].End != 3 || funcs[1].End != 5 {
		t.Errorf("Funcs = %+v", funcs)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder()
		b.Jmp("nowhere")
		b.Halt()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
			t.Errorf("err = %v, want undefined-label error", err)
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder()
		b.Label("x")
		b.Nop()
		b.Label("x")
		b.Halt()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("err = %v, want duplicate-label error", err)
		}
	})
	t.Run("falls off end", func(t *testing.T) {
		b := NewBuilder()
		b.Nop()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "falls off") {
			t.Errorf("err = %v, want falls-off-end error", err)
		}
	})
	t.Run("empty program", func(t *testing.T) {
		if _, err := NewBuilder().Build(); err == nil {
			t.Error("expected error for empty program")
		}
	})
	t.Run("target out of range", func(t *testing.T) {
		_, err := New([]isa.Instr{{Op: isa.Jmp, Target: 99}, {Op: isa.Halt}}, nil, nil)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("err = %v, want out-of-range error", err)
		}
	})
	t.Run("invalid instruction", func(t *testing.T) {
		_, err := New([]isa.Instr{{Op: isa.Br}, {Op: isa.Halt}}, nil, nil)
		if err == nil {
			t.Error("expected validation error")
		}
	})
}

func TestMovLabelFixup(t *testing.T) {
	b := NewBuilder()
	b.MovLabel(1, "later") // forward reference, patched via fixup
	b.JmpInd(1)
	b.Label("later")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.At(0); got.Op != isa.MovImm || got.Imm != 2 {
		t.Errorf("MovLabel fixup produced %s, want movi r1, 2", got)
	}
	// Backward reference resolves immediately.
	b2 := NewBuilder()
	b2.Label("here")
	b2.Nop()
	b2.MovLabel(2, "here")
	b2.Halt()
	p2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.At(1); got.Imm != 0 {
		t.Errorf("backward MovLabel = %s, want movi r2, 0", got)
	}
}

func TestLabelsAreLeaders(t *testing.T) {
	// Labels may be indirect-jump targets, so every label must begin a
	// basic block even without an incoming direct branch.
	b := NewBuilder()
	b.Nop()
	b.Nop()
	b.Label("table_target")
	b.Nop()
	b.Halt()
	p := b.MustBuild()
	if !p.IsBlockStart(2) {
		t.Error("label address 2 should be a block leader")
	}
}

func TestDisassemble(t *testing.T) {
	p := buildLoop(t)
	out := p.Disassemble(0, isa.Addr(p.Len()))
	for _, want := range []string{"func main:", "loop:", "movi r1, 10", "bgt r1, r0, 1", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("Disassemble missing %q in:\n%s", want, out)
		}
	}
	// Clamped range must not panic.
	_ = p.Disassemble(0, 10_000)
}

func TestVerify(t *testing.T) {
	if err := buildLoop(t).Verify(); err != nil {
		t.Errorf("valid program failed Verify: %v", err)
	}
}
