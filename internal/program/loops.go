package program

import (
	"sort"

	"repro/internal/isa"
)

// Static control-flow analysis: dominators and natural loops over the
// block graph. The region selectors never use this (they are dynamic by
// design — the paper's point is that regions should follow executed paths,
// not static structure); it exists so experiments can measure how well the
// dynamically selected cyclic regions line up with the program's actual
// loops (the loop-coverage study).

// Loop is a natural loop: a back edge tail->header where header dominates
// tail, plus every block that can reach the tail without passing through
// the header.
type Loop struct {
	// Header is the loop-header block leader.
	Header isa.Addr
	// Tail is the source block of the back edge.
	Tail isa.Addr
	// Blocks are the loop's member block leaders, sorted ascending.
	Blocks []isa.Addr
}

// Contains reports whether the leader is part of the loop.
func (l Loop) Contains(b isa.Addr) bool {
	i := sort.Search(len(l.Blocks), func(i int) bool { return l.Blocks[i] >= b })
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// cfg builds the static block graph over direct edges. Indirect edges are
// unknown statically and simply absent, matching a conservative analysis.
// Call-ending blocks additionally get an edge to their return point (the
// block after the call), the usual intraprocedural treatment — otherwise
// every loop containing a call would lose its back-edge tail to static
// unreachability.
func (p *Program) cfg() (succs, preds [][]int) {
	n := p.NumBlocks()
	succs = make([][]int, n)
	preds = make([][]int, n)
	addEdge := func(i int, s isa.Addr) {
		j := p.BlockID(s)
		if j < 0 {
			return
		}
		succs[i] = append(succs[i], j)
		preds[j] = append(preds[j], i)
	}
	for i, start := range p.blockStarts {
		for _, s := range p.StaticSuccessors(start) {
			addEdge(i, s)
		}
		end := p.BlockEnd(start)
		if p.At(end-1).IsCall() && p.InRange(end) {
			addEdge(i, end)
		}
	}
	return succs, preds
}

// Dominators computes the immediate-dominator index of every block
// reachable from the entry (Cooper–Harvey–Kennedy iterative algorithm).
// Unreachable blocks get -1; the entry dominates itself.
func (p *Program) Dominators() []int {
	n := p.NumBlocks()
	succs, preds := p.cfg()
	// Reverse post order from the entry block.
	order := make([]int, 0, n)
	state := make([]uint8, n)
	var dfs func(int)
	dfs = func(i int) {
		state[i] = 1
		for _, s := range succs[i] {
			if state[s] == 0 {
				dfs(s)
			}
		}
		order = append(order, i)
	}
	entry := p.BlockID(p.Entry())
	dfs(entry)
	rpo := make([]int, 0, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		rpo = append(rpo, order[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for num, b := range rpo {
		rpoNum[b] = num
	}

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, pr := range preds[b] {
				if idom[pr] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = pr
				} else {
					newIdom = intersect(newIdom, pr)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block a dominates block b, given the idom
// array from Dominators (block indices).
func dominates(idom []int, a, b int) bool {
	if idom[b] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == b || next < 0 {
			return false
		}
		b = next
	}
}

// NaturalLoops finds every natural loop in the static CFG: for each edge
// tail->header whose header dominates its tail, the loop body is
// accumulated by walking predecessors from the tail until the header.
// Loops are returned sorted by header, then tail.
func (p *Program) NaturalLoops() []Loop {
	succs, preds := p.cfg()
	idom := p.Dominators()
	var loops []Loop
	for tail, ss := range succs {
		for _, header := range ss {
			if !dominates(idom, header, tail) {
				continue
			}
			// Collect the loop body.
			inLoop := map[int]bool{header: true}
			stack := []int{tail}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if inLoop[b] {
					continue
				}
				inLoop[b] = true
				stack = append(stack, preds[b]...)
			}
			blocks := make([]isa.Addr, 0, len(inLoop))
			for b := range inLoop {
				blocks = append(blocks, p.blockStarts[b])
			}
			sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
			loops = append(loops, Loop{
				Header: p.blockStarts[header],
				Tail:   p.blockStarts[tail],
				Blocks: blocks,
			})
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Header != loops[j].Header {
			return loops[i].Header < loops[j].Header
		}
		return loops[i].Tail < loops[j].Tail
	})
	return loops
}
