package experiments

import (
	"testing"
)

// TestAdaptiveParetoFront pins the acceptance claim of the adaptive
// meta-selector: on the phased workload under a bounded cache there are
// detector tunings whose (hit-rate, code-expansion) point no static
// configuration dominates, while the adaptive point strictly dominates
// some of the statics outright. Strict domination of *every* static is
// structurally unreachable here — lei+comb is near-pointwise-best on hit
// rate and any online detector pays a switching epsilon against the policy
// it converges to — so the pinned property is the honest one: adaptive is
// on the combined Pareto front, never below it.
//
// The two tunings are deterministic measurements (the phased program is
// seeded and the simulator is bit-deterministic), verified by hand at the
// time the thresholds were frozen:
//
//	scale 240_000, limit 400B:
//	  net      hit=0.7350 exp=1205
//	  lei      hit=0.7942 exp=1248
//	  net+comb hit=0.7526 exp=1649
//	  lei+comb hit=0.8832 exp=1282
//	  adaptive w=128 d=4: hit=0.7977 exp=1215  (dominates lei, net+comb)
//	  adaptive w=192 d=3: hit=0.8515 exp=1261  (best hit of everything but
//	                                            lei+comb, at lower expansion)
//
// The test asserts the *relations*, not the exact values, so incidental
// simulator changes that shift all points together do not break it — but
// any change that pushes adaptive off the front does.
func TestAdaptiveParetoFront(t *testing.T) {
	const scale, limit = 240_000, 400
	type relCheck struct {
		window, dwell int
		describe      string
		check         func(t *testing.T, statics map[string]ParetoPoint, adaptive ParetoPoint)
	}
	checks := []relCheck{
		{128, 4, "w=128 d=4 dominates lei and net+comb", func(t *testing.T, statics map[string]ParetoPoint, a ParetoPoint) {
			for _, victim := range []string{LEI, NETComb} {
				if !a.Dominates(statics[victim]) {
					t.Errorf("adaptive %+v does not dominate %s %+v", a, victim, statics[victim])
				}
			}
			if a.HitRate <= statics[NET].HitRate {
				t.Errorf("adaptive hit %.4f not above net's %.4f", a.HitRate, statics[NET].HitRate)
			}
			if a.Expansion >= statics[LEIComb].Expansion {
				t.Errorf("adaptive expansion %d not below lei+comb's %d", a.Expansion, statics[LEIComb].Expansion)
			}
		}},
		{192, 3, "w=192 d=3 has the best hit rate outside lei+comb, at lower expansion", func(t *testing.T, statics map[string]ParetoPoint, a ParetoPoint) {
			for _, name := range []string{NET, LEI, NETComb} {
				if a.HitRate <= statics[name].HitRate {
					t.Errorf("adaptive hit %.4f not above %s's %.4f", a.HitRate, name, statics[name].HitRate)
				}
			}
			if a.Expansion >= statics[LEIComb].Expansion {
				t.Errorf("adaptive expansion %d not below lei+comb's %d", a.Expansion, statics[LEIComb].Expansion)
			}
		}},
	}
	for _, c := range checks {
		t.Run(c.describe, func(t *testing.T) {
			points, err := AdaptiveShowcase(scale, limit, c.window, c.dwell)
			if err != nil {
				t.Fatal(err)
			}
			statics := map[string]ParetoPoint{}
			for _, p := range points[:len(points)-1] {
				statics[p.Name] = p
			}
			adaptive := points[len(points)-1]
			if adaptive.Name != Adaptive {
				t.Fatalf("last point is %q, want adaptive", adaptive.Name)
			}
			// The front membership itself: no static may dominate adaptive.
			for name, p := range statics {
				if p.Dominates(adaptive) {
					t.Errorf("static %s %+v dominates adaptive %+v; adaptive fell off the Pareto front", name, p, adaptive)
				}
			}
			c.check(t, statics, adaptive)
		})
	}
}

// TestParetoPointDominates pins the strict-domination predicate on the
// boundary cases: equal points do not dominate each other, and a tie on one
// axis still dominates when the other axis is strictly better.
func TestParetoPointDominates(t *testing.T) {
	a := ParetoPoint{Name: "a", HitRate: 0.8, Expansion: 100}
	same := ParetoPoint{Name: "b", HitRate: 0.8, Expansion: 100}
	if a.Dominates(same) || same.Dominates(a) {
		t.Error("equal points must not dominate each other")
	}
	tieHit := ParetoPoint{Name: "c", HitRate: 0.8, Expansion: 120}
	if !a.Dominates(tieHit) {
		t.Error("tie on hit with lower expansion must dominate")
	}
	tieExp := ParetoPoint{Name: "d", HitRate: 0.7, Expansion: 100}
	if !a.Dominates(tieExp) {
		t.Error("tie on expansion with higher hit must dominate")
	}
	tradeoff := ParetoPoint{Name: "e", HitRate: 0.9, Expansion: 120}
	if a.Dominates(tradeoff) || tradeoff.Dominates(a) {
		t.Error("points trading one axis for the other are incomparable")
	}
}
