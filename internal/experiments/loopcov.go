package experiments

import (
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// LoopCoverageStudy relates the selectors' cyclic regions to the programs'
// static natural loops: of the loops whose back edge ran hot, how many are
// spanned by a cyclic region, per selector. NET can only span loops whose
// dominant path hits no backward call or return; LEI spans loops by
// construction; the combined variants inherit their base's behaviour.
func LoopCoverageStudy(scale int) (Figure, error) {
	const hotness = 100
	t := stats.NewTable("", []string{"hot-loops", "spanned", "spanned%", "header-cached%"},
		"%9.0f", "%8.0f", "%9.1f", "%14.1f")
	for _, sel := range AllSelectors() {
		var hot, spanned, cached float64
		for _, b := range workloads.SpecNames() {
			prog := workloads.MustGet(b).Build(scale)
			s, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}})
			if err != nil {
				return Figure{}, err
			}
			cov := metrics.AnalyzeLoopCoverage(prog, res.Cache, res.Collector, hotness)
			hot += float64(cov.HotLoops)
			spanned += float64(cov.Spanned)
			cached += float64(cov.HeaderCached)
		}
		spannedPct, cachedPct := 0.0, 0.0
		if hot > 0 {
			spannedPct = 100 * spanned / hot
			cachedPct = 100 * cached / hot
		}
		t.Add(sel, hot, spanned, spannedPct, cachedPct)
	}
	return Figure{
		ID:    "loops",
		Title: "hot natural loops spanned by cyclic regions (extension)",
		Table: t,
		Takeaway: "nearly every hot loop header reaches the cache under all selectors, " +
			"but only LEI-based selection spans loops whose bodies cross calls and " +
			"returns — the paper's §3 claim restated against static loop structure",
	}, nil
}
