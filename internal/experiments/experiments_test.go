package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// smallScale keeps the full 12x4 matrix fast in tests while still being
// large enough for selection thresholds to fire.
const smallScale = 60

func runAll(t *testing.T) *Results {
	t.Helper()
	res, err := RunAll(context.Background(), smallScale, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunAllAndFigures(t *testing.T) {
	res := runAll(t)
	if len(res.Reports) != 12 {
		t.Fatalf("benchmarks = %d", len(res.Reports))
	}
	for b, sels := range res.Reports {
		for s, rep := range sels {
			if rep.TotalInstrs == 0 {
				t.Errorf("%s/%s: empty report", b, s)
			}
			if rep.Workload != b {
				t.Errorf("%s/%s: workload label %q", b, s, rep.Workload)
			}
		}
	}
	for _, id := range FigureIDs() {
		f, err := Build(id, res)
		if err != nil {
			t.Fatal(err)
		}
		out := f.String()
		if !strings.Contains(out, "gzip") || !strings.Contains(out, "average") {
			t.Errorf("figure %s lacks rows:\n%s", id, out)
		}
		if f.Takeaway == "" || f.Title == "" {
			t.Errorf("figure %s missing title/takeaway", id)
		}
	}
	if _, err := Build("fig99", res); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunAllDeterministic(t *testing.T) {
	a := runAll(t)
	b := runAll(t)
	for bench, sels := range a.Reports {
		for sel, rep := range sels {
			if rep != b.Reports[bench][sel] {
				t.Errorf("%s/%s differs across runs", bench, sel)
			}
		}
	}
}

func TestNewSelector(t *testing.T) {
	for _, name := range AllSelectors() {
		s, err := NewSelector(name, core.DefaultParams())
		if err != nil || s.Name() != name {
			t.Errorf("NewSelector(%s) = %v, %v", name, s, err)
		}
	}
	if _, err := NewSelector("bogus", core.DefaultParams()); err == nil {
		t.Error("bogus selector accepted")
	}
}

func TestRunOneErrors(t *testing.T) {
	if _, err := RunOne("bogus", NET, 1, core.DefaultParams()); err == nil {
		t.Error("bogus workload accepted")
	}
	if _, err := RunOne("gzip", "bogus", 1, core.DefaultParams()); err == nil {
		t.Error("bogus selector accepted")
	}
}
