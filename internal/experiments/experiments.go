// Package experiments is the harness that regenerates every figure of the
// paper's evaluation (Figures 7–12 for LEI vs NET, Figures 16–19 for trace
// combination, plus the hit-rate discussion and the §6 summary numbers).
// It runs the twelve SPEC-named workloads under the four selector
// configurations and derives each figure's rows from the resulting metric
// reports. Both cmd/papertables and the repository's benchmark suite are
// thin wrappers around this package.
package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Selectors used throughout, in presentation order.
const (
	NET     = "net"
	LEI     = "lei"
	NETComb = "net+comb"
	LEIComb = "lei+comb"
)

// AllSelectors returns the four configurations the paper evaluates.
func AllSelectors() []string { return []string{NET, LEI, NETComb, LEIComb} }

// DefaultParams returns the paper's published algorithm parameters.
func DefaultParams() core.Params { return core.DefaultParams() }

// Related-work selector names (paper §5).
const (
	MojoNET = "mojo-net"
	BOA     = "boa"
	WRS     = "wrs"
)

// RelatedSelectors returns the §5 comparison set.
func RelatedSelectors() []string { return []string{NET, MojoNET, BOA, WRS, LEI} }

// NewSelector builds a fresh selector for one run.
func NewSelector(name string, params core.Params) (core.Selector, error) {
	switch name {
	case NET:
		return core.NewNET(params), nil
	case LEI:
		return core.NewLEI(params), nil
	case NETComb:
		return core.NewCombiner(core.BaseNET, params), nil
	case LEIComb:
		return core.NewCombiner(core.BaseLEI, params), nil
	case MojoNET:
		return core.NewMojoNET(params, 30), nil
	case BOA:
		return core.NewBOA(params), nil
	case WRS:
		return core.NewWRS(params), nil
	default:
		return nil, fmt.Errorf("experiments: unknown selector %q", name)
	}
}

// Results holds one report per (benchmark, selector).
type Results struct {
	// Scale is the workload scale multiplier used (0 = defaults).
	Scale   int
	Reports map[string]map[string]metrics.Report
}

// Get returns the report for a benchmark under a selector.
func (r *Results) Get(bench, sel string) metrics.Report { return r.Reports[bench][sel] }

// RunOne simulates a single (workload, selector) pair.
func RunOne(bench, sel string, scale int, params core.Params) (metrics.Report, error) {
	return runOne(bench, sel, scale, params, nil)
}

// runOne simulates one (workload, selector) pair, optionally on a reusable
// scratch so back-to-back runs share one interpreter memory image, metrics
// collector, and report analyzer.
func runOne(bench, sel string, scale int, params core.Params, scratch *dynopt.Scratch) (metrics.Report, error) {
	w, ok := workloads.Get(bench)
	if !ok {
		return metrics.Report{}, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	s, err := NewSelector(sel, params)
	if err != nil {
		return metrics.Report{}, err
	}
	res, err := dynopt.Run(w.Build(scale), dynopt.Config{Selector: s, VM: vm.Config{}, Scratch: scratch})
	if err != nil {
		return metrics.Report{}, fmt.Errorf("experiments: %s under %s: %w", bench, sel, err)
	}
	res.Report.Workload = bench
	return res.Report, nil
}

// RunAll simulates every SPEC-named benchmark under every selector,
// in parallel across (bench, selector) pairs.
func RunAll(scale int, params core.Params) (*Results, error) {
	benches := workloads.SpecNames()
	sels := AllSelectors()
	res := &Results{Scale: scale, Reports: make(map[string]map[string]metrics.Report, len(benches))}
	for _, b := range benches {
		res.Reports[b] = make(map[string]metrics.Report, len(sels))
	}
	type job struct{ bench, sel string }
	jobs := make(chan job)
	var mu sync.Mutex
	var errs []error
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > len(benches)*len(sels) {
		workers = len(benches) * len(sels)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One reusable scratch per worker: every run on this worker
			// shares the same interpreter memory image, predecode buffers,
			// metrics collector, and report-analyzer tables.
			scratch := &dynopt.Scratch{}
			for j := range jobs {
				rep, err := runOne(j.bench, j.sel, scale, params, scratch)
				mu.Lock()
				if err != nil {
					errs = append(errs, err)
				}
				res.Reports[j.bench][j.sel] = rep
				mu.Unlock()
			}
		}()
	}
	for _, b := range benches {
		for _, s := range sels {
			jobs <- job{b, s}
		}
	}
	close(jobs)
	wg.Wait()
	if len(errs) > 0 {
		// Report every broken (benchmark, selector) pair, not just the
		// first; order deterministically since workers race.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, errors.Join(errs...)
	}
	return res, nil
}
