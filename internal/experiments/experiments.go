// Package experiments is the harness that regenerates every figure of the
// paper's evaluation (Figures 7–12 for LEI vs NET, Figures 16–19 for trace
// combination, plus the hit-rate discussion and the §6 summary numbers).
// It runs the twelve SPEC-named workloads under the four selector
// configurations and derives each figure's rows from the resulting metric
// reports. Both cmd/papertables and the repository's benchmark suite are
// thin wrappers around this package.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Selectors used throughout, in presentation order. The canonical names
// live in package sweep; these aliases keep the harness API stable.
const (
	NET      = sweep.NET
	LEI      = sweep.LEI
	NETComb  = sweep.NETComb
	LEIComb  = sweep.LEIComb
	Adaptive = sweep.Adaptive
)

// AllSelectors returns the harness's evaluation set: the paper's four
// configurations plus the adaptive per-phase meta-selector — the "dynamic"
// column the paper never had.
func AllSelectors() []string { return append(sweep.PaperSelectors(), Adaptive) }

// DefaultParams returns the paper's published algorithm parameters.
func DefaultParams() core.Params { return core.DefaultParams() }

// Related-work selector names (paper §5).
const (
	MojoNET = sweep.MojoNET
	BOA     = sweep.BOA
	WRS     = sweep.WRS
)

// RelatedSelectors returns the §5 comparison set.
func RelatedSelectors() []string { return []string{NET, MojoNET, BOA, WRS, LEI} }

// NewSelector builds a fresh selector for one run.
func NewSelector(name string, params core.Params) (core.Selector, error) {
	return sweep.NewSelector(name, params)
}

// Results holds one report per (benchmark, selector).
type Results struct {
	// Scale is the workload scale multiplier used (0 = defaults).
	Scale   int
	Reports map[string]map[string]metrics.Report
}

// Get returns the report for a benchmark under a selector. It panics when
// the pair was never run — a cancelled sweep delivers only a prefix of the
// grid — so a zero-valued report can never be mistaken for a real one. Use
// Lookup to probe.
func (r *Results) Get(bench, sel string) metrics.Report {
	rep, ok := r.Lookup(bench, sel)
	if !ok {
		panic(fmt.Sprintf("experiments: no report for %s under %s", bench, sel))
	}
	return rep
}

// Lookup returns the report for a benchmark under a selector, reporting
// whether the pair was actually run.
func (r *Results) Lookup(bench, sel string) (metrics.Report, bool) {
	rep, ok := r.Reports[bench][sel]
	return rep, ok
}

// RunOne simulates a single (workload, selector) pair.
func RunOne(bench, sel string, scale int, params core.Params) (metrics.Report, error) {
	return runOne(bench, sel, scale, params, nil)
}

// runOne simulates one (workload, selector) pair, optionally on a reusable
// scratch so back-to-back runs share one interpreter memory image, metrics
// collector, and report analyzer.
func runOne(bench, sel string, scale int, params core.Params, scratch *dynopt.Scratch) (metrics.Report, error) {
	w, ok := workloads.Get(bench)
	if !ok {
		return metrics.Report{}, fmt.Errorf("experiments: unknown workload %q", bench)
	}
	s, err := NewSelector(sel, params)
	if err != nil {
		return metrics.Report{}, err
	}
	res, err := dynopt.Run(w.Build(scale), dynopt.Config{Selector: s, VM: vm.Config{}, Scratch: scratch})
	if err != nil {
		return metrics.Report{}, fmt.Errorf("experiments: %s under %s: %w", bench, sel, err)
	}
	res.Report.Workload = bench
	return res.Report, nil
}

// RunAll simulates every SPEC-named benchmark under every selector — the
// paper's 12×4 grid — as a thin wrapper over the sweep engine: sharded
// across GOMAXPROCS workers with work stealing, per-shard pooled scratch,
// and fail-fast cancellation. A failed worker (or a cancellation of ctx)
// stops the whole grid instead of draining the remaining pairs; every error
// observed before the stop is aggregated with errors.Join in deterministic
// order.
func RunAll(ctx context.Context, scale int, params core.Params) (*Results, error) {
	benches := workloads.SpecNames()
	sels := AllSelectors()
	res := &Results{Scale: scale, Reports: make(map[string]map[string]metrics.Report, len(benches))}
	for _, b := range benches {
		res.Reports[b] = make(map[string]metrics.Report, len(sels))
	}
	g := sweep.Grid{
		Workloads: benches,
		Scale:     scale,
		Selectors: sels,
		Configs:   []sweep.Config{{Params: params}},
	}
	err := sweep.RunGrid(ctx, g, sweep.Options{}, sweep.FuncSink(func(r sweep.Result) {
		res.Reports[r.Job.Workload][r.Job.Selector] = r.Report
	}))
	if err != nil {
		return nil, err
	}
	return res, nil
}
