package experiments

import (
	"fmt"
	"strings"

	"repro/internal/stats"
	"repro/internal/workloads"
)

// Figure is a regenerated paper figure: a titled per-benchmark table plus a
// one-line takeaway comparing our shape with the paper's.
type Figure struct {
	ID       string
	Title    string
	Table    *stats.Table
	Takeaway string
}

// String renders the figure.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	b.WriteString(f.Table.String())
	if f.Takeaway != "" {
		fmt.Fprintf(&b, "  -> %s\n", f.Takeaway)
	}
	return b.String()
}

// Markdown renders the figure as a GitHub-flavored Markdown section.
func (f Figure) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", f.ID, f.Title)
	b.WriteString(f.Table.Markdown())
	if f.Takeaway != "" {
		fmt.Fprintf(&b, "\n> %s\n", f.Takeaway)
	}
	return b.String()
}

// FigureIDs lists every regenerable figure in paper order.
func FigureIDs() []string {
	return []string{
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig16", "fig17", "fig18", "fig19",
		"hitrate", "exitdom", "separation", "summary",
	}
}

// Build regenerates one figure by ID.
func Build(id string, r *Results) (Figure, error) {
	switch id {
	case "fig7":
		return Fig7(r), nil
	case "fig8":
		return Fig8(r), nil
	case "fig9":
		return Fig9(r), nil
	case "fig10":
		return Fig10(r), nil
	case "fig11":
		return Fig11(r), nil
	case "fig12":
		return Fig12(r), nil
	case "fig16":
		return Fig16(r), nil
	case "fig17":
		return Fig17(r), nil
	case "fig18":
		return Fig18(r), nil
	case "fig19":
		return Fig19(r), nil
	case "hitrate":
		return HitRates(r), nil
	case "exitdom":
		return ExitDomReduction(r), nil
	case "separation":
		return Separation(r), nil
	case "summary":
		return Summary(r), nil
	default:
		return Figure{}, fmt.Errorf("experiments: unknown figure %q", id)
	}
}

func benches() []string { return workloads.SpecNames() }

// Fig7 reproduces Figure 7: the improvement of LEI over NET in selecting
// traces that span cycles — the increase in the spanned cycle ratio and in
// the executed cycle ratio, in percentage points per benchmark.
func Fig7(r *Results) Figure {
	t := stats.NewTable("", []string{"spanned+pp", "executed+pp"}, "%+9.1f", "%+9.1f")
	for _, b := range benches() {
		net, lei := r.Get(b, NET), r.Get(b, LEI)
		t.Add(b,
			100*(lei.SpannedRatio-net.SpannedRatio),
			100*(lei.ExecutedRatio-net.ExecutedRatio))
	}
	t.MeanRow("average")
	return Figure{
		ID:    "fig7",
		Title: "LEI improvement over NET in spanned and executed cycle ratios",
		Table: t,
		Takeaway: "paper: LEI spans more cycles on every benchmark (~+5pp average) " +
			"and executed cycles rise with them",
	}
}

// Fig8 reproduces Figure 8: LEI's code expansion and region transitions
// relative to NET (1.0 = equal; lower is better).
func Fig8(r *Results) Figure {
	t := stats.NewTable("", []string{"expansion", "transitions"}, "%9.3f", "%11.3f")
	for _, b := range benches() {
		net, lei := r.Get(b, NET), r.Get(b, LEI)
		t.Add(b,
			stats.Ratio(float64(lei.CodeExpansion), float64(net.CodeExpansion)),
			stats.Ratio(float64(lei.Transitions), float64(net.Transitions)))
	}
	t.MeanRow("average")
	return Figure{
		ID:    "fig8",
		Title: "LEI code expansion and region transitions relative to NET",
		Table: t,
		Takeaway: "paper: LEI averages 92% of NET's code expansion and 80% of its " +
			"region transitions; crafty (expansion) and parser (transitions) are outliers",
	}
}

// Fig9 reproduces Figure 9: the minimum number of traces required to cover
// 90% of executed instructions.
func Fig9(r *Results) Figure {
	t := stats.NewTable("", []string{"NET", "LEI", "LEI/NET"}, "%5.0f", "%5.0f", "%7.3f")
	for _, b := range benches() {
		net, lei := r.Get(b, NET), r.Get(b, LEI)
		t.Add(b, float64(net.CoverSet90), float64(lei.CoverSet90),
			stats.Ratio(float64(lei.CoverSet90), float64(net.CoverSet90)))
	}
	t.MeanRow("average")
	return Figure{
		ID:       "fig9",
		Title:    "90% cover set size: NET vs LEI",
		Table:    t,
		Takeaway: "paper: LEI needs a smaller 90% cover set everywhere, 18% smaller on average",
	}
}

// Fig10 reproduces Figure 10: the maximum number of counters in use under
// LEI relative to NET.
func Fig10(r *Results) Figure {
	t := stats.NewTable("", []string{"NET", "LEI", "LEI/NET"}, "%5.0f", "%5.0f", "%7.3f")
	for _, b := range benches() {
		net, lei := r.Get(b, NET), r.Get(b, LEI)
		t.Add(b, float64(net.CountersHighWater), float64(lei.CountersHighWater),
			stats.Ratio(float64(lei.CountersHighWater), float64(net.CountersHighWater)))
	}
	t.MeanRow("average")
	return Figure{
		ID:       "fig10",
		Title:    "maximum live profiling counters: LEI relative to NET",
		Table:    t,
		Takeaway: "paper: LEI needs about two-thirds of NET's counter memory",
	}
}

// Fig11 reproduces Figure 11: the proportion of selected instructions that
// are exit-dominated duplication, for NET and LEI.
func Fig11(r *Results) Figure {
	t := stats.NewTable("", []string{"NET%", "LEI%"}, "%6.2f", "%6.2f")
	for _, b := range benches() {
		net, lei := r.Get(b, NET), r.Get(b, LEI)
		t.Add(b, 100*net.ExitDomDupInstrsRatio, 100*lei.ExitDomDupInstrsRatio)
	}
	t.MeanRow("average")
	return Figure{
		ID:       "fig11",
		Title:    "selected instructions that are exit-dominated duplication",
		Table:    t,
		Takeaway: "paper: 1-7% of selected instructions are exit-dominated duplication",
	}
}

// Fig12 reproduces Figure 12: the proportion of traces that are
// exit-dominated, for NET and LEI.
func Fig12(r *Results) Figure {
	t := stats.NewTable("", []string{"NET%", "LEI%"}, "%6.2f", "%6.2f")
	for _, b := range benches() {
		net, lei := r.Get(b, NET), r.Get(b, LEI)
		t.Add(b, 100*net.ExitDominatedRatio, 100*lei.ExitDominatedRatio)
	}
	t.MeanRow("average")
	return Figure{
		ID:    "fig12",
		Title: "proportion of traces that are exit-dominated",
		Table: t,
		Takeaway: "paper: ~15% of NET traces and ~22% of LEI traces are exit-dominated; " +
			"eon is the outlier (constructors exit-dominate many traces)",
	}
}

// Fig16 reproduces Figure 16: region transitions under trace combination
// relative to the uncombined base algorithm.
func Fig16(r *Results) Figure {
	t := stats.NewTable("", []string{"cNET/NET", "cLEI/LEI"}, "%9.3f", "%9.3f")
	for _, b := range benches() {
		t.Add(b,
			stats.Ratio(float64(r.Get(b, NETComb).Transitions), float64(r.Get(b, NET).Transitions)),
			stats.Ratio(float64(r.Get(b, LEIComb).Transitions), float64(r.Get(b, LEI).Transitions)))
	}
	t.MeanRow("average")
	return Figure{
		ID:    "fig16",
		Title: "region transitions under trace combination (relative to base)",
		Table: t,
		Takeaway: "paper: combining leaves 85% of transitions for NET and 64% for LEI " +
			"(vortex under NET rose ~1%)",
	}
}

// Fig17 reproduces Figure 17: 90% cover set size under trace combination
// relative to the base algorithm.
func Fig17(r *Results) Figure {
	t := stats.NewTable("", []string{"NET", "cNET", "LEI", "cLEI", "cNET/NET", "cLEI/LEI"},
		"%5.0f", "%5.0f", "%5.0f", "%5.0f", "%9.3f", "%9.3f")
	for _, b := range benches() {
		net, cnet := r.Get(b, NET), r.Get(b, NETComb)
		lei, clei := r.Get(b, LEI), r.Get(b, LEIComb)
		t.Add(b, float64(net.CoverSet90), float64(cnet.CoverSet90),
			float64(lei.CoverSet90), float64(clei.CoverSet90),
			stats.Ratio(float64(cnet.CoverSet90), float64(net.CoverSet90)),
			stats.Ratio(float64(clei.CoverSet90), float64(lei.CoverSet90)))
	}
	t.MeanRow("average")
	return Figure{
		ID:    "fig17",
		Title: "90% cover set size under trace combination",
		Table: t,
		Takeaway: "paper: combination shrinks cover sets ~15% for NET and ~28% for LEI " +
			"(gzip under NET rose trivially)",
	}
}

// Fig18 reproduces Figure 18: the maximum memory holding observed traces,
// as a percentage of the estimated code-cache size.
func Fig18(r *Results) Figure {
	t := stats.NewTable("", []string{"cNET%", "cLEI%"}, "%7.2f", "%7.2f")
	for _, b := range benches() {
		t.Add(b,
			100*r.Get(b, NETComb).ObservedPctOfCache,
			100*r.Get(b, LEIComb).ObservedPctOfCache)
	}
	t.MeanRow("average")
	return Figure{
		ID:    "fig18",
		Title: "observed-trace storage high-water as % of estimated cache size",
		Table: t,
		Takeaway: "paper: ~6% average overhead for combined NET and ~13% for combined " +
			"LEI, capped at 12% / 18%",
	}
}

// Fig19 reproduces Figure 19: exit stubs under trace combination relative
// to the base algorithm.
func Fig19(r *Results) Figure {
	t := stats.NewTable("", []string{"cNET/NET", "cLEI/LEI"}, "%9.3f", "%9.3f")
	for _, b := range benches() {
		t.Add(b,
			stats.Ratio(float64(r.Get(b, NETComb).Stubs), float64(r.Get(b, NET).Stubs)),
			stats.Ratio(float64(r.Get(b, LEIComb).Stubs), float64(r.Get(b, LEI).Stubs)))
	}
	t.MeanRow("average")
	return Figure{
		ID:       "fig19",
		Title:    "exit stubs under trace combination (relative to base)",
		Table:    t,
		Takeaway: "paper: combination removes 18% of NET's stubs and 26% of LEI's",
	}
}

// HitRates reproduces the §3.2/§4.3 hit-rate discussion.
func HitRates(r *Results) Figure {
	t := stats.NewTable("", []string{"NET%", "LEI%", "cNET%", "cLEI%"},
		"%7.2f", "%7.2f", "%7.2f", "%7.2f")
	for _, b := range benches() {
		t.Add(b,
			100*r.Get(b, NET).HitRate, 100*r.Get(b, LEI).HitRate,
			100*r.Get(b, NETComb).HitRate, 100*r.Get(b, LEIComb).HitRate)
	}
	t.MeanRow("average")
	return Figure{
		ID:    "hitrate",
		Title: "code cache hit rates",
		Table: t,
		Takeaway: "paper: hit rates stay near or above 98-99% for every configuration " +
			"(mcf and gcc dip furthest under LEI)",
	}
}

// ExitDomReduction reproduces §4.3.1: how much exit domination trace
// combination removes.
func ExitDomReduction(r *Results) Figure {
	t := stats.NewTable("", []string{"dupNET", "dupLEI", "regNET", "regLEI"},
		"%7.3f", "%7.3f", "%7.3f", "%7.3f")
	for _, b := range benches() {
		net, cnet := r.Get(b, NET), r.Get(b, NETComb)
		lei, clei := r.Get(b, LEI), r.Get(b, LEIComb)
		t.Add(b,
			stats.Ratio(float64(cnet.ExitDomDupInstrs), float64(net.ExitDomDupInstrs)),
			stats.Ratio(float64(clei.ExitDomDupInstrs), float64(lei.ExitDomDupInstrs)),
			stats.Ratio(float64(cnet.ExitDominated), float64(net.ExitDominated)),
			stats.Ratio(float64(clei.ExitDominated), float64(lei.ExitDominated)))
	}
	t.MeanRow("average")
	return Figure{
		ID:    "exitdom",
		Title: "exit domination remaining under combination (relative to base)",
		Table: t,
		Takeaway: "paper: combining avoids ~65% of exit-dominated duplication and " +
			"~40% of exit-dominated regions",
	}
}

// Separation quantifies the trace-separation problem of §1 directly
// (an extension beyond the paper's metrics): with regions laid out
// sequentially in the cache in selection order, it reports how many region
// transitions cross a virtual-memory page boundary and the mean layout
// distance a transition covers, for each configuration.
func Separation(r *Results) Figure {
	t := stats.NewTable("", []string{"LEI/NET", "cNET/NET", "cLEI/NET", "NETavgB", "cLEIavgB"},
		"%8.3f", "%9.3f", "%9.3f", "%8.0f", "%9.0f")
	for _, b := range benches() {
		net := float64(r.Get(b, NET).TransitionReach)
		t.Add(b,
			stats.Ratio(float64(r.Get(b, LEI).TransitionReach), net),
			stats.Ratio(float64(r.Get(b, NETComb).TransitionReach), net),
			stats.Ratio(float64(r.Get(b, LEIComb).TransitionReach), net),
			r.Get(b, NET).AvgTransitionBytes,
			r.Get(b, LEIComb).AvgTransitionBytes)
	}
	t.MeanRow("average")
	return Figure{
		ID:    "separation",
		Title: "transition reach (sum of cache-layout distances) relative to NET (extension)",
		Table: t,
		Takeaway: "the paper argues separation hurts because related traces land far " +
			"apart in the cache (§1); LEI and combination shrink the total distance " +
			"control jumps across the cache, not just the transition count",
	}
}

// Summary reproduces the §6 composite: combined LEI versus plain NET.
func Summary(r *Results) Figure {
	t := stats.NewTable("", []string{"expansion", "stubs", "transitions", "cover90"},
		"%9.3f", "%7.3f", "%11.3f", "%8.3f")
	for _, b := range benches() {
		net, clei := r.Get(b, NET), r.Get(b, LEIComb)
		t.Add(b,
			stats.Ratio(float64(clei.CodeExpansion), float64(net.CodeExpansion)),
			stats.Ratio(float64(clei.Stubs), float64(net.Stubs)),
			stats.Ratio(float64(clei.Transitions), float64(net.Transitions)),
			stats.Ratio(float64(clei.CoverSet90), float64(net.CoverSet90)))
	}
	t.MeanRow("average")
	return Figure{
		ID:    "summary",
		Title: "combined LEI relative to NET (the paper's §6 composite)",
		Table: t,
		Takeaway: "paper: -9% code expansion, -32% exit stubs, transitions roughly " +
			"halved, 90% cover sets -44% on average (and smaller for every benchmark)",
	}
}
