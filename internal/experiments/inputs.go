package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// InputSensitivity re-runs the suite headline comparisons on alternate
// workload inputs (different in-program PRNG seeds — the analogue of SPEC's
// multiple inputs; the paper used each benchmark's test input). The
// conclusions should not depend on the particular input: the LEI/NET and
// combined/NET ratios must stay on the same side of 1.0 across inputs.
func InputSensitivity(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"LEI/NET-trans", "LEI/NET-cover", "cLEI/NET-trans", "cLEI/NET-cover", "hit%LEI"},
		"%13.3f", "%13.3f", "%14.3f", "%14.3f", "%8.2f")
	for input := 0; input < 3; input++ {
		type agg struct{ trans, cover, hit float64 }
		sums := map[string]*agg{NET: {}, LEI: {}, LEIComb: {}}
		for _, b := range workloads.SpecNames() {
			w := workloads.MustGet(b)
			prog := w.BuildInput(scale, input)
			for sel, a := range sums {
				s, err := NewSelector(sel, core.DefaultParams())
				if err != nil {
					return Figure{}, err
				}
				res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}})
				if err != nil {
					return Figure{}, fmt.Errorf("experiments: input %d, %s under %s: %w", input, b, sel, err)
				}
				a.trans += float64(res.Report.Transitions)
				a.cover += float64(res.Report.CoverSet90)
				a.hit += res.Report.HitRate
			}
		}
		t.Add(fmt.Sprintf("input %d", input),
			stats.Ratio(sums[LEI].trans, sums[NET].trans),
			stats.Ratio(sums[LEI].cover, sums[NET].cover),
			stats.Ratio(sums[LEIComb].trans, sums[NET].trans),
			stats.Ratio(sums[LEIComb].cover, sums[NET].cover),
			100*sums[LEI].hit/12)
	}
	return Figure{
		ID:    "inputs",
		Title: "headline ratios across alternate workload inputs (extension)",
		Table: t,
		Takeaway: "the orderings hold on every input variant: LEI and combined LEI " +
			"beat NET on transitions and cover sets regardless of the data the " +
			"programs chew through",
	}, nil
}
