package experiments

import (
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/optimizer"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// OptimizerStudy quantifies the paper's §4.4 argument: code layout is the
// dominant optimization and regions containing multiple paths (and cycles
// with somewhere to hoist to) expose loop optimizations a lone trace
// cannot express. For each configuration it aggregates, over all regions
// selected across the suite, the layout gains (fall-through edges realized
// and unconditional jumps removed by the emitter) and loop-invariant code
// motion: candidates found in region cycles versus candidates actually
// hoistable (zero for cyclic traces, which have no preheader).
func OptimizerStudy(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"regions", "fallthrough%", "jumps-removed", "invariant", "hoistable"},
		"%8.0f", "%12.1f", "%13.0f", "%9.0f", "%9.0f")
	for _, sel := range AllSelectors() {
		var regions, fall, slots, removed, inv, hoist float64
		for _, b := range workloads.SpecNames() {
			w := workloads.MustGet(b)
			prog := w.Build(scale)
			s, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}})
			if err != nil {
				return Figure{}, err
			}
			sum := optimizer.Summarize(prog, res.Cache)
			regions += float64(sum.Regions)
			fall += float64(sum.FallThroughs)
			slots += float64(sum.PossibleFallEdges)
			removed += float64(sum.JumpsRemoved)
			inv += float64(sum.InvariantCandidates)
			hoist += float64(sum.Hoistable)
		}
		pct := 0.0
		if slots > 0 {
			pct = 100 * fall / slots
		}
		t.Add(sel, regions, pct, removed, inv, hoist)
	}
	return Figure{
		ID:    "optimizer",
		Title: "region-optimizer opportunities across the suite (paper §4.4)",
		Table: t,
		Takeaway: "layout realizes most block joints as fall-throughs everywhere; only " +
			"multi-path regions (the combined configurations) can hoist the loop " +
			"invariants their cycles contain — a trace has nowhere to move them",
	}, nil
}
