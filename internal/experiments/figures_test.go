package experiments

import (
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workloads"
)

// synthResults builds a Results matrix from a generator so figure math can
// be checked against hand-computed values without running simulations.
func synthResults(gen func(bench, sel string) metrics.Report) *Results {
	res := &Results{Reports: map[string]map[string]metrics.Report{}}
	for _, b := range workloads.SpecNames() {
		res.Reports[b] = map[string]metrics.Report{}
		for _, s := range AllSelectors() {
			res.Reports[b][s] = gen(b, s)
		}
	}
	return res
}

func TestFig8Math(t *testing.T) {
	// LEI always exactly half of NET: per-benchmark ratios are 0.5, so the
	// average row must be 0.500 for both columns.
	res := synthResults(func(b, s string) metrics.Report {
		r := metrics.Report{CodeExpansion: 100, Transitions: 1000}
		if s == LEI {
			r.CodeExpansion = 50
			r.Transitions = 500
		}
		return r
	})
	f := Fig8(res)
	out := f.String()
	if !strings.Contains(out, "0.500") {
		t.Errorf("fig8 output missing 0.500:\n%s", out)
	}
	// Every benchmark row shows the ratio.
	if strings.Count(out, "0.500") < 13*2 { // 12 benchmarks + average, 2 columns
		t.Errorf("fig8 rows wrong:\n%s", out)
	}
}

func TestFig7Math(t *testing.T) {
	res := synthResults(func(b, s string) metrics.Report {
		r := metrics.Report{SpannedRatio: 0.10, ExecutedRatio: 0.20}
		if s == LEI {
			r.SpannedRatio = 0.15
			r.ExecutedRatio = 0.35
		}
		return r
	})
	f := Fig7(res)
	out := f.String()
	// +5pp spanned, +15pp executed everywhere.
	if !strings.Contains(out, "+5.0") || !strings.Contains(out, "+15.0") {
		t.Errorf("fig7 deltas wrong:\n%s", out)
	}
}

func TestFig17Math(t *testing.T) {
	res := synthResults(func(b, s string) metrics.Report {
		cover := map[string]int{NET: 10, NETComb: 8, LEI: 6, LEIComb: 3}
		return metrics.Report{CoverSet90: cover[s]}
	})
	f := Fig17(res)
	out := f.String()
	if !strings.Contains(out, "0.800") || !strings.Contains(out, "0.500") {
		t.Errorf("fig17 ratios wrong:\n%s", out)
	}
}

func TestSummaryMath(t *testing.T) {
	res := synthResults(func(b, s string) metrics.Report {
		r := metrics.Report{CodeExpansion: 200, Stubs: 40, Transitions: 10000, CoverSet90: 8}
		if s == LEIComb {
			r = metrics.Report{CodeExpansion: 100, Stubs: 10, Transitions: 2500, CoverSet90: 2}
		}
		return r
	})
	f := Summary(res)
	out := f.String()
	for _, want := range []string{"0.500", "0.250"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestSeparationMath(t *testing.T) {
	res := synthResults(func(b, s string) metrics.Report {
		r := metrics.Report{TransitionReach: 1000, AvgTransitionBytes: 100}
		if s == LEIComb {
			r.TransitionReach = 250
		}
		return r
	})
	f := Separation(res)
	if !strings.Contains(f.String(), "0.250") {
		t.Errorf("separation ratios wrong:\n%s", f)
	}
}

func TestFigureMarkdownRendering(t *testing.T) {
	res := synthResults(func(b, s string) metrics.Report { return metrics.Report{} })
	f := Fig9(res)
	md := f.Markdown()
	for _, want := range []string{"### fig9", "| gzip |", "> paper:"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
