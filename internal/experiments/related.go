package experiments

import (
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// RelatedWork runs the §5 comparison: NET, Mojo's dual-threshold NET, a
// BOA-style majority-direction selector, a Wiggins/Redstone-style sampling
// selector, and LEI, over the full suite. The paper's argument is that the
// alternative schemes profile more branches to pick better single paths,
// but "careful selection of traces does not address the problems of
// separation and duplication" — which shows up here as: the alternatives
// spend more profiling memory without approaching LEI's transition and
// cover-set numbers.
func RelatedWork(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"hit%", "regions", "transitions", "cover90", "counters", "dom%"},
		"%7.2f", "%8.0f", "%12.0f", "%8.1f", "%9.0f", "%6.1f")
	for _, sel := range RelatedSelectors() {
		var hit, regions, transitions, cover, counters, dom float64
		n := 0.0
		for _, b := range workloads.SpecNames() {
			rep, err := RunOne(b, sel, scale, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			n++
			hit += rep.HitRate
			regions += float64(rep.Regions)
			transitions += float64(rep.Transitions)
			cover += float64(rep.CoverSet90)
			counters += float64(rep.CountersHighWater)
			dom += rep.ExitDominatedRatio
		}
		t.Add(sel, 100*hit/n, regions/n, transitions/n, cover/n, counters/n, 100*dom/n)
	}
	return Figure{
		ID:    "related",
		Title: "related trace-selection schemes (paper §5) on the full suite",
		Table: t,
		Takeaway: "BOA and Wiggins/Redstone profile every branch (large counter " +
			"columns) to choose better single paths, yet exit domination and " +
			"separation persist; LEI attacks the structure of the problem instead",
	}, nil
}
