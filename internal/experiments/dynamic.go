package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// DynamicStudy is the evaluation the paper never had: a fifth, dynamic
// column. It runs every SPEC-named workload plus the phased showcase under
// the four static configurations and the adaptive per-phase meta-selector,
// reports hit rates side by side, and marks each row's winner in its label.
// On homogeneous workloads the detector settles into the right static
// policy after the first window, so "adaptive" tracks the best static
// closely; the phased workload is where switching pays.
func DynamicStudy(scale int) (Figure, error) {
	sels := AllSelectors()
	cols := make([]string, 0, len(sels))
	formats := make([]string, 0, len(sels))
	for range sels {
		formats = append(formats, "%9.2f")
	}
	cols = append(cols, sels...)
	t := stats.NewTable("hit rate (%)", cols, formats...)
	benches := append(workloads.SpecNames(), "phased")
	for _, b := range benches {
		hits := make([]float64, 0, len(sels))
		winner, best := "", -1.0
		for _, sel := range sels {
			rep, err := RunOne(b, sel, scale, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			hits = append(hits, 100*rep.HitRate)
			if rep.HitRate > best {
				winner, best = sel, rep.HitRate
			}
		}
		t.Add(fmt.Sprintf("%s (best: %s)", b, winner), hits...)
	}
	return Figure{
		ID:    "dynamic",
		Title: "adaptive per-phase selection vs the paper's four static configurations",
		Table: t,
		Takeaway: "on phase-homogeneous workloads the detector locks onto one policy and " +
			"tracks the best static; on the phased workload under a bounded cache the " +
			"tuned adaptive points are undominated on the hit-rate/expansion front " +
			"(see TestAdaptiveParetoFront)",
	}, nil
}

// ParetoPoint is one (selector, hit-rate, code-expansion) measurement from
// the bounded-cache phased showcase.
type ParetoPoint struct {
	Name      string
	HitRate   float64
	Expansion int
}

// Dominates reports strict Pareto domination on the hit-rate (higher is
// better) / code-expansion (lower is better) plane.
func (p ParetoPoint) Dominates(q ParetoPoint) bool {
	return p.HitRate >= q.HitRate && p.Expansion <= q.Expansion &&
		(p.HitRate > q.HitRate || p.Expansion < q.Expansion)
}

// AdaptiveShowcase runs the bounded-cache phased experiment the adaptive
// selector was built for: the registered phased workload at the given scale
// under a cache limit, with the four statics at the paper's parameters and
// the adaptive meta-selector at the given detector tuning. It returns the
// static points followed by the adaptive point.
func AdaptiveShowcase(scale, limitBytes, window, dwell int) ([]ParetoPoint, error) {
	w, ok := workloads.Get("phased")
	if !ok {
		return nil, fmt.Errorf("experiments: phased workload not registered")
	}
	p := w.Build(scale)
	var out []ParetoPoint
	run := func(name string, params core.Params) error {
		sel, err := NewSelector(name, params)
		if err != nil {
			return err
		}
		res, err := dynopt.Run(p, dynopt.Config{Selector: sel, CacheLimitBytes: limitBytes})
		if err != nil {
			return err
		}
		out = append(out, ParetoPoint{Name: name, HitRate: res.Report.HitRate, Expansion: res.Report.CodeExpansion})
		return nil
	}
	for _, name := range []string{NET, LEI, NETComb, LEIComb} {
		if err := run(name, core.DefaultParams()); err != nil {
			return nil, err
		}
	}
	params := core.DefaultParams()
	params.PhaseWindow = window
	params.PhaseDwell = dwell
	if err := run(Adaptive, params); err != nil {
		return nil, err
	}
	return out, nil
}
