package experiments

import (
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// PersistentCache measures the warm-start extension: a first (cold) run
// selects regions, its cache snapshot preloads a second (warm) run of the
// same program, and the warm run skips the whole profile-and-select phase.
// Reported per selector: cold vs warm hit rate and the number of
// interpreted taken branches (the system-overhead proxy: every one of them
// runs the Figure 5 / NET profiling path).
func PersistentCache(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"cold-hit%", "warm-hit%", "cold-interp", "warm-interp", "warm-regions"},
		"%9.2f", "%9.2f", "%11.0f", "%11.0f", "%12.0f")
	for _, sel := range AllSelectors() {
		var coldHit, warmHit, coldInterp, warmInterp, warmRegions float64
		n := 0.0
		for _, b := range workloads.SpecNames() {
			prog := workloads.MustGet(b).Build(scale)
			s1, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			cold, err := dynopt.Run(prog, dynopt.Config{Selector: s1, VM: vm.Config{}})
			if err != nil {
				return Figure{}, err
			}
			s2, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			warm, err := dynopt.Run(prog, dynopt.Config{
				Selector: s2,
				VM:       vm.Config{},
				Preload:  cold.Cache.Snapshot(),
			})
			if err != nil {
				return Figure{}, err
			}
			n++
			coldHit += cold.Report.HitRate
			warmHit += warm.Report.HitRate
			coldInterp += float64(cold.Report.InterpBranches)
			warmInterp += float64(warm.Report.InterpBranches)
			warmRegions += float64(warm.Report.Regions - cold.Report.Regions)
		}
		t.Add(sel, 100*coldHit/n, 100*warmHit/n, coldInterp/n, warmInterp/n, warmRegions/n)
	}
	return Figure{
		ID:    "persistent",
		Title: "persistent code cache: cold vs snapshot-warmed runs (extension)",
		Table: t,
		Takeaway: "warm runs skip the interpretation needed to reach selection " +
			"thresholds (interpreted branches collapse) and select almost nothing " +
			"new; hit rates rise toward the regions' steady-state coverage",
	}, nil
}
