package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// This file adds two robustness studies beyond the paper's fixed benchmark
// suite: a corpus of random structured programs (do the paper's qualitative
// conclusions hold beyond hand-shaped workloads?) and a bounded-code-cache
// sweep (the behaviour the paper predicts in §2.3 but does not evaluate).

// RandomCorpus runs NET, LEI, and their combined variants over n seeded
// random programs and reports suite-level ratios, mirroring the shape of
// the headline figures.
func RandomCorpus(n int, baseSeed int64) (Figure, error) {
	if n <= 0 {
		n = 20
	}
	type agg struct {
		transitions, cover, expansion, stubs, hit float64
	}
	sums := map[string]*agg{}
	for _, sel := range AllSelectors() {
		sums[sel] = &agg{}
	}
	used := 0
	for i := 0; i < n; i++ {
		prog := workloads.Random(workloads.GenConfig{
			Seed:       baseSeed + int64(i),
			Funcs:      2 + i%5,
			MaxDepth:   2 + i%3,
			Iters:      300, // loops must comfortably exceed the selection thresholds
			Constructs: 4 + i%5,
		})
		used++
		for _, sel := range AllSelectors() {
			s, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}})
			if err != nil {
				return Figure{}, fmt.Errorf("experiments: random corpus seed %d under %s: %w",
					baseSeed+int64(i), sel, err)
			}
			a := sums[sel]
			a.transitions += float64(res.Report.Transitions)
			a.cover += float64(res.Report.CoverSet90)
			a.expansion += float64(res.Report.CodeExpansion)
			a.stubs += float64(res.Report.Stubs)
			a.hit += res.Report.HitRate
		}
	}
	t := stats.NewTable("", []string{"hit%", "transitions", "cover90", "expansion", "stubs"},
		"%7.2f", "%12.0f", "%8.2f", "%10.0f", "%7.1f")
	for _, sel := range AllSelectors() {
		a := sums[sel]
		t.Add(sel,
			100*a.hit/float64(used),
			a.transitions/float64(used),
			a.cover/float64(used),
			a.expansion/float64(used),
			a.stubs/float64(used))
	}
	return Figure{
		ID:    "random-corpus",
		Title: fmt.Sprintf("suite averages over %d random structured programs (robustness)", used),
		Table: t,
		Takeaway: "the paper's ordering (LEI fewer transitions and smaller cover sets " +
			"than NET; combination improving both) should survive unshaped programs",
	}, nil
}

// BoundedCache sweeps code-cache limits and reports flush counts and hit
// rates for NET vs combined LEI, quantifying the paper's §2.3 prediction
// that selecting less code helps bounded caches.
func BoundedCache(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"NET-hit%", "NET-flushes", "cLEI-hit%", "cLEI-flushes"},
		"%9.2f", "%11.0f", "%10.2f", "%12.0f")
	benchesUsed := []string{"gcc", "perlbmk", "vortex"}
	for _, limit := range []int{0, 2048, 1024, 512} {
		var netHit, netFlush, cleiHit, cleiFlush float64
		for _, b := range benchesUsed {
			w := workloads.MustGet(b)
			prog := w.Build(scale)
			for _, sel := range []string{NET, LEIComb} {
				s, err := NewSelector(sel, core.DefaultParams())
				if err != nil {
					return Figure{}, err
				}
				res, err := dynopt.Run(prog, dynopt.Config{
					Selector:        s,
					VM:              vm.Config{},
					CacheLimitBytes: limit,
				})
				if err != nil {
					return Figure{}, err
				}
				if sel == NET {
					netHit += res.Report.HitRate
					netFlush += float64(res.Cache.Flushes())
				} else {
					cleiHit += res.Report.HitRate
					cleiFlush += float64(res.Cache.Flushes())
				}
			}
		}
		n := float64(len(benchesUsed))
		label := "unbounded"
		if limit > 0 {
			label = fmt.Sprintf("%dB", limit)
		}
		t.Add(label, 100*netHit/n, netFlush/n, 100*cleiHit/n, cleiFlush/n)
	}
	return Figure{
		ID:    "bounded",
		Title: "bounded code cache: hit rate and full flushes, NET vs combined LEI (extension)",
		Table: t,
		Takeaway: "under tight limits combined LEI flushes more often (it re-selects " +
			"quickly) but loses far less hit rate than NET — the memory-pressure " +
			"benefit the paper predicts for bounded caches without evaluating it (§2.3)",
	}, nil
}
