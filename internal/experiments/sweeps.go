package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// This file implements the sensitivity and ablation studies that go beyond
// the paper's headline figures:
//
//   - the paper's footnote 8 (smaller T_prof/T_min "results in smaller but
//     similar improvements"),
//   - the history-buffer capacity choice of §3.2 ("small enough to require
//     little memory but large enough to capture very long cycles"),
//   - the selection thresholds,
//   - ablations of two load-bearing design decisions: LEI's ability to
//     grow traces from code-cache exits, and trace combination's inclusion
//     of rejoining paths (Figure 15).

// ExtraIDs lists the sensitivity-sweep and ablation studies, which run
// their own simulation matrices rather than consuming a shared Results.
func ExtraIDs() []string {
	return []string{"sweep-tprof", "sweep-buffer", "sweep-threshold", "ablation", "random-corpus", "bounded", "optimizer", "related", "persistent", "loops", "icache", "inputs", "dynamic"}
}

// BuildExtra regenerates one sweep or ablation study at the given scale.
func BuildExtra(id string, scale int) (Figure, error) {
	switch id {
	case "sweep-tprof":
		return SweepTProf(scale)
	case "sweep-buffer":
		return SweepHistoryCap(scale)
	case "sweep-threshold":
		return SweepThresholds(scale)
	case "ablation":
		return Ablations(scale)
	case "random-corpus":
		return RandomCorpus(20, 1)
	case "bounded":
		return BoundedCache(scale)
	case "optimizer":
		return OptimizerStudy(scale)
	case "related":
		return RelatedWork(scale)
	case "persistent":
		return PersistentCache(scale)
	case "loops":
		return LoopCoverageStudy(scale)
	case "icache":
		return ICacheStudy(scale)
	case "inputs":
		return InputSensitivity(scale)
	case "dynamic":
		return DynamicStudy(scale)
	default:
		return Figure{}, fmt.Errorf("experiments: unknown extra figure %q", id)
	}
}

// runSuite runs every SPEC benchmark under one selector configuration and
// returns per-benchmark reports keyed by benchmark name.
func runSuite(sel string, scale int, params core.Params) (map[string]metricsByBench, error) {
	out := map[string]metricsByBench{}
	for _, b := range workloads.SpecNames() {
		rep, err := RunOne(b, sel, scale, params)
		if err != nil {
			return nil, err
		}
		out[b] = metricsByBench{
			Transitions: float64(rep.Transitions),
			Cover90:     float64(rep.CoverSet90),
			Expansion:   float64(rep.CodeExpansion),
			Stubs:       float64(rep.Stubs),
			Spanned:     rep.SpannedRatio,
			HitRate:     rep.HitRate,
			DupRatio:    rep.ExitDomDupInstrsRatio,
			Observed:    float64(rep.ObservedBytesHighWater),
		}
	}
	return out, nil
}

type metricsByBench struct {
	Transitions, Cover90, Expansion, Stubs, Spanned, HitRate, DupRatio, Observed float64
}

// relAvg averages the per-benchmark ratio of a metric between two suites.
func relAvg(num, den map[string]metricsByBench, f func(metricsByBench) float64) float64 {
	var xs []float64
	for b, n := range num {
		xs = append(xs, stats.Ratio(f(n), f(den[b])))
	}
	return stats.Mean(xs)
}

func suiteAvg(m map[string]metricsByBench, f func(metricsByBench) float64) float64 {
	var xs []float64
	for _, v := range m {
		xs = append(xs, f(v))
	}
	return stats.Mean(xs)
}

// SweepTProf reproduces footnote 8: combined LEI with (T_prof, T_min) of
// (15,5), (10,3), and (5,2), against the plain LEI baseline.
func SweepTProf(scale int) (Figure, error) {
	base, err := runSuite(LEI, scale, core.DefaultParams())
	if err != nil {
		return Figure{}, err
	}
	t := stats.NewTable("", []string{"transitions-rel", "cover90-rel", "stubs-rel", "obs-bytes"},
		"%15.3f", "%11.3f", "%9.3f", "%9.0f")
	for _, cfg := range []struct{ tprof, tmin int }{{15, 5}, {10, 3}, {5, 2}} {
		p := core.DefaultParams()
		p.TProf, p.TMin = cfg.tprof, cfg.tmin
		comb, err := runSuite(LEIComb, scale, p)
		if err != nil {
			return Figure{}, err
		}
		t.Add(fmt.Sprintf("Tprof=%d Tmin=%d", cfg.tprof, cfg.tmin),
			relAvg(comb, base, func(m metricsByBench) float64 { return m.Transitions }),
			relAvg(comb, base, func(m metricsByBench) float64 { return m.Cover90 }),
			relAvg(comb, base, func(m metricsByBench) float64 { return m.Stubs }),
			suiteAvg(comb, func(m metricsByBench) float64 { return m.Observed }))
	}
	return Figure{
		ID:    "sweep-tprof",
		Title: "combined LEI vs plain LEI across (T_prof, T_min) (paper footnote 8)",
		Table: t,
		Takeaway: "paper: T_prof=5, T_min=2 gives smaller but similar improvements " +
			"with less observation memory",
	}, nil
}

// SweepHistoryCap varies LEI's history-buffer capacity around the paper's
// 500.
func SweepHistoryCap(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"spanned%", "transitions", "cover90", "hit%"},
		"%9.1f", "%12.0f", "%8.1f", "%7.2f")
	for _, cap := range []int{50, 125, 250, 500, 1000} {
		p := core.DefaultParams()
		p.HistoryCap = cap
		m, err := runSuite(LEI, scale, p)
		if err != nil {
			return Figure{}, err
		}
		t.Add(fmt.Sprintf("cap=%d", cap),
			100*suiteAvg(m, func(m metricsByBench) float64 { return m.Spanned }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Transitions }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Cover90 }),
			100*suiteAvg(m, func(m metricsByBench) float64 { return m.HitRate }))
	}
	return Figure{
		ID:    "sweep-buffer",
		Title: "LEI across history-buffer capacities (paper §3.2 uses 500)",
		Table: t,
		Takeaway: "a buffer too small to hold long cycles loses spanning; beyond the " +
			"working set, extra capacity changes nothing",
	}, nil
}

// SweepThresholds varies the selection thresholds around the published
// values (NET 50, LEI 35).
func SweepThresholds(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"hit%", "expansion", "cover90", "transitions"},
		"%7.2f", "%9.0f", "%8.1f", "%12.0f")
	for _, row := range []struct {
		name     string
		sel      string
		net, lei int
	}{
		{"net T=25", NET, 25, 0}, {"net T=50", NET, 50, 0}, {"net T=100", NET, 100, 0},
		{"lei T=18", LEI, 0, 18}, {"lei T=35", LEI, 0, 35}, {"lei T=70", LEI, 0, 70},
	} {
		p := core.DefaultParams()
		if row.net > 0 {
			p.NETThreshold = row.net
		}
		if row.lei > 0 {
			p.LEIThreshold = row.lei
		}
		m, err := runSuite(row.sel, scale, p)
		if err != nil {
			return Figure{}, err
		}
		t.Add(row.name,
			100*suiteAvg(m, func(m metricsByBench) float64 { return m.HitRate }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Expansion }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Cover90 }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Transitions }))
	}
	return Figure{
		ID:    "sweep-threshold",
		Title: "selection thresholds around the published values",
		Table: t,
		Takeaway: "lower thresholds select sooner (higher hit rate, more expansion); " +
			"the paper's §3.2 notes lowering could compensate for LEI's hit-rate dips",
	}, nil
}

// Ablations measures the two design choices DESIGN.md calls out: LEI's
// exit-grown traces and combination's rejoining paths.
func Ablations(scale int) (Figure, error) {
	t := stats.NewTable("", []string{"hit%", "spanned%", "transitions", "dup%", "expansion", "cover90"},
		"%7.2f", "%9.1f", "%12.0f", "%7.2f", "%10.0f", "%8.1f")
	add := func(name, sel string, p core.Params) error {
		m, err := runSuite(sel, scale, p)
		if err != nil {
			return err
		}
		t.Add(name,
			100*suiteAvg(m, func(m metricsByBench) float64 { return m.HitRate }),
			100*suiteAvg(m, func(m metricsByBench) float64 { return m.Spanned }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Transitions }),
			100*suiteAvg(m, func(m metricsByBench) float64 { return m.DupRatio }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Expansion }),
			suiteAvg(m, func(m metricsByBench) float64 { return m.Cover90 }))
		return nil
	}
	if err := add("lei", LEI, core.DefaultParams()); err != nil {
		return Figure{}, err
	}
	noExit := core.DefaultParams()
	noExit.AblateLEIExitGrowth = true
	if err := add("lei -exitgrowth", LEI, noExit); err != nil {
		return Figure{}, err
	}
	if err := add("lei+comb", LEIComb, core.DefaultParams()); err != nil {
		return Figure{}, err
	}
	noRejoin := core.DefaultParams()
	noRejoin.AblateRejoinPaths = true
	if err := add("lei+comb -rejoin", LEIComb, noRejoin); err != nil {
		return Figure{}, err
	}
	if err := add("net", NET, core.DefaultParams()); err != nil {
		return Figure{}, err
	}
	crossing := core.DefaultParams()
	crossing.AblateNETBackwardStop = true
	if err := add("net +crossing", NET, crossing); err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:    "ablation",
		Title: "ablating LEI exit growth and combination's rejoining paths",
		Table: t,
		Takeaway: "without exit growth LEI cannot grow traces from existing regions " +
			"(coverage and locality fall); without rejoining paths combination " +
			"re-admits exit-dominated duplication; NET crossing backward branches " +
			"buys locality only by paying more code expansion, where LEI's cycle " +
			"detection gets both (the paper's §2.2 observation)",
	}, nil
}
