package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/icache"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestBuildExtra(t *testing.T) {
	for _, id := range ExtraIDs() {
		f, err := BuildExtra(id, smallScale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if f.ID != id || f.Title == "" || f.Takeaway == "" {
			t.Errorf("%s: incomplete figure %+v", id, f)
		}
		if !strings.Contains(f.String(), "==") {
			t.Errorf("%s: unrendered figure", id)
		}
	}
	if _, err := BuildExtra("bogus", 1); err == nil {
		t.Error("bogus extra accepted")
	}
}

// TestAblationExitGrowth: disabling LEI's exit-grown traces must reduce
// cache coverage — the design choice is load-bearing.
func TestAblationExitGrowth(t *testing.T) {
	base := core.DefaultParams()
	ablated := core.DefaultParams()
	ablated.AblateLEIExitGrowth = true
	var hitBase, hitAblated float64
	for _, b := range []string{"gzip", "eon", "gcc", "perlbmk"} {
		rb, err := RunOne(b, LEI, 0, base)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunOne(b, LEI, 0, ablated)
		if err != nil {
			t.Fatal(err)
		}
		hitBase += rb.HitRate
		hitAblated += ra.HitRate
		if ra.Regions > rb.Regions {
			t.Errorf("%s: ablated LEI selected more regions (%d vs %d)", b, ra.Regions, rb.Regions)
		}
	}
	if hitAblated >= hitBase {
		t.Errorf("exit-growth ablation did not reduce coverage: %.3f vs %.3f",
			hitAblated/4, hitBase/4)
	}
}

// TestAblationRejoinPaths: without Figure 15's rejoin marking, combined
// regions shed their rejoining paths and exit-dominated duplication grows.
func TestAblationRejoinPaths(t *testing.T) {
	base := core.DefaultParams()
	ablated := core.DefaultParams()
	ablated.AblateRejoinPaths = true
	var dupBase, dupAblated float64
	var transBase, transAblated uint64
	for _, b := range []string{"gcc", "vpr", "twolf", "perlbmk"} {
		rb, err := RunOne(b, LEIComb, 0, base)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := RunOne(b, LEIComb, 0, ablated)
		if err != nil {
			t.Fatal(err)
		}
		dupBase += rb.ExitDomDupInstrsRatio
		dupAblated += ra.ExitDomDupInstrsRatio
		transBase += rb.Transitions
		transAblated += ra.Transitions
	}
	if dupAblated <= dupBase {
		t.Errorf("rejoin ablation did not increase exit-dominated duplication: %.4f vs %.4f",
			dupAblated/4, dupBase/4)
	}
	if transAblated <= transBase {
		t.Errorf("rejoin ablation did not increase transitions: %d vs %d",
			transAblated, transBase)
	}
}

// TestSweepTProfFootnote8 reproduces the paper's footnote 8 directionally:
// T_prof=5/T_min=2 still improves on plain LEI (ratios below 1) but less
// than the full T_prof=15/T_min=5 configuration, with less observation
// memory.
func TestSweepTProfFootnote8(t *testing.T) {
	baseLEI, err := runSuite(LEI, 0, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	full := core.DefaultParams()
	small := core.DefaultParams()
	small.TProf, small.TMin = 5, 2
	combFull, err := runSuite(LEIComb, 0, full)
	if err != nil {
		t.Fatal(err)
	}
	combSmall, err := runSuite(LEIComb, 0, small)
	if err != nil {
		t.Fatal(err)
	}
	coverFull := relAvg(combFull, baseLEI, func(m metricsByBench) float64 { return m.Cover90 })
	coverSmall := relAvg(combSmall, baseLEI, func(m metricsByBench) float64 { return m.Cover90 })
	if coverSmall >= 1.0 {
		t.Errorf("T_prof=5 combination no longer improves cover sets: %.3f", coverSmall)
	}
	if coverFull > coverSmall {
		t.Logf("full config improves more, as expected: %.3f vs %.3f", coverFull, coverSmall)
	}
	obsFull := suiteAvg(combFull, func(m metricsByBench) float64 { return m.Observed })
	obsSmall := suiteAvg(combSmall, func(m metricsByBench) float64 { return m.Observed })
	if obsSmall >= obsFull {
		t.Errorf("smaller T_prof did not reduce observation memory: %.0f vs %.0f", obsSmall, obsFull)
	}
}

// TestSweepHistoryCapMonotonic: a tiny history buffer must not beat the
// paper's 500-entry buffer on cycle spanning.
func TestSweepHistoryCapMonotonic(t *testing.T) {
	tiny := core.DefaultParams()
	tiny.HistoryCap = 8
	paper := core.DefaultParams()
	var spannedTiny, spannedPaper float64
	for _, b := range []string{"mcf", "twolf", "vpr"} {
		rt, err := RunOne(b, LEI, 0, tiny)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := RunOne(b, LEI, 0, paper)
		if err != nil {
			t.Fatal(err)
		}
		spannedTiny += rt.SpannedRatio
		spannedPaper += rp.SpannedRatio
	}
	if spannedTiny > spannedPaper {
		t.Errorf("8-entry buffer spans more cycles (%.3f) than 500 (%.3f)",
			spannedTiny/3, spannedPaper/3)
	}
}

// TestAblationNETBackwardStop verifies the paper's §2.2 observation:
// letting NET extend across backward branches increases code expansion,
// while LEI reaches similar locality without paying it.
func TestAblationNETBackwardStop(t *testing.T) {
	base := core.DefaultParams()
	crossing := core.DefaultParams()
	crossing.AblateNETBackwardStop = true
	mb, err := runSuite(NET, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := runSuite(NET, 0, crossing)
	if err != nil {
		t.Fatal(err)
	}
	expBase := suiteAvg(mb, func(m metricsByBench) float64 { return m.Expansion })
	expCross := suiteAvg(mc, func(m metricsByBench) float64 { return m.Expansion })
	transBase := suiteAvg(mb, func(m metricsByBench) float64 { return m.Transitions })
	transCross := suiteAvg(mc, func(m metricsByBench) float64 { return m.Transitions })
	if expCross <= expBase {
		t.Errorf("crossing NET expansion %.1f not above base %.1f", expCross, expBase)
	}
	if transCross >= transBase {
		t.Errorf("crossing NET transitions %.0f not below base %.0f", transCross, transBase)
	}
}

// TestICacheOrdering: the simulated i-cache confirms the locality story —
// LEI-based selection misses no more than NET per cached instruction.
func TestICacheOrdering(t *testing.T) {
	f, err := ICacheStudy(0)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "icache" {
		t.Fatal("wrong figure")
	}
	// Recompute the two suite aggregates directly for the assertion.
	missPer1k := func(sel string) float64 {
		var misses, instrs float64
		for _, b := range workloads.SpecNames() {
			prog := workloads.MustGet(b).Build(0)
			s, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			ic, err := icache.New(icache.Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2})
			if err != nil {
				t.Fatal(err)
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}, ICache: ic})
			if err != nil {
				t.Fatal(err)
			}
			misses += float64(ic.Misses())
			instrs += float64(res.Report.CacheInstrs)
		}
		return 1000 * misses / instrs
	}
	net, lei, clei := missPer1k(NET), missPer1k(LEI), missPer1k(LEIComb)
	if lei > net {
		t.Errorf("i-cache misses/1k: LEI %.3f above NET %.3f", lei, net)
	}
	if clei > lei {
		t.Errorf("i-cache misses/1k: cLEI %.3f above LEI %.3f", clei, lei)
	}
}
