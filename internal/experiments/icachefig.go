package experiments

import (
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/icache"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// ICacheStudy simulates a small instruction cache over the code-cache
// layout for every selector: the §1 claim that separation hurts
// "instruction cache performance as control jumps between distant traces"
// measured directly as i-cache misses per thousand cached instructions.
func ICacheStudy(scale int) (Figure, error) {
	cfg := icache.Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}
	t := stats.NewTable("", []string{"misses/1k-instr", "miss-rate%", "accesses"},
		"%15.2f", "%10.2f", "%10.0f")
	for _, sel := range AllSelectors() {
		var misses, accesses, cachedInstrs float64
		for _, b := range workloads.SpecNames() {
			prog := workloads.MustGet(b).Build(scale)
			s, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				return Figure{}, err
			}
			ic, err := icache.New(cfg)
			if err != nil {
				return Figure{}, err
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}, ICache: ic})
			if err != nil {
				return Figure{}, err
			}
			misses += float64(ic.Misses())
			accesses += float64(ic.Accesses())
			cachedInstrs += float64(res.Report.CacheInstrs)
		}
		mper1k := 0.0
		if cachedInstrs > 0 {
			mper1k = 1000 * misses / cachedInstrs
		}
		rate := 0.0
		if accesses > 0 {
			rate = 100 * misses / accesses
		}
		t.Add(sel, mper1k, rate, accesses)
	}
	return Figure{
		ID:    "icache",
		Title: "simulated 1KiB/32B/2-way i-cache over the code-cache layout (extension)",
		Table: t,
		Takeaway: "fewer, larger, cycle-spanning regions keep fetch inside a line's " +
			"reach: LEI-based selection misses less than NET-based per instruction " +
			"executed from the cache",
	}, nil
}
