package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestRandomCorpusOrderings(t *testing.T) {
	// On a corpus of random programs the paper's central orderings must
	// survive: LEI produces fewer region transitions than NET, and the
	// combined variants never lose coverage.
	var netTrans, leiTrans float64
	var netHit, leiHit float64
	const n = 12
	for i := 0; i < n; i++ {
		prog := workloads.Random(workloads.GenConfig{
			Seed: 100 + int64(i), Funcs: 2 + i%4, MaxDepth: 2 + i%3,
			Iters: 300, Constructs: 4 + i%4,
		})
		for _, sel := range []string{NET, LEI} {
			s, err := NewSelector(sel, core.DefaultParams())
			if err != nil {
				t.Fatal(err)
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}})
			if err != nil {
				t.Fatalf("seed %d / %s: %v", 100+i, sel, err)
			}
			if sel == NET {
				netTrans += float64(res.Report.Transitions)
				netHit += res.Report.HitRate
			} else {
				leiTrans += float64(res.Report.Transitions)
				leiHit += res.Report.HitRate
			}
		}
	}
	if leiTrans >= netTrans {
		t.Errorf("corpus transitions: LEI %.0f vs NET %.0f", leiTrans, netTrans)
	}
	if leiHit < netHit-0.05*n {
		t.Errorf("corpus hit rates: LEI %.3f vs NET %.3f", leiHit/n, netHit/n)
	}
}

func TestBoundedCacheFigure(t *testing.T) {
	f, err := BoundedCache(smallScale * 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "bounded" || f.Table == nil {
		t.Fatalf("figure = %+v", f)
	}
}

func TestBoundedCacheHitRateAdvantage(t *testing.T) {
	// At a tight limit, combined LEI must retain a better hit rate than
	// NET on a multi-loop workload — the §2.3 prediction.
	prog := workloads.MustGet("gcc").Build(300)
	run := func(sel string) float64 {
		s, err := NewSelector(sel, core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}, CacheLimitBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cache.Flushes() == 0 {
			t.Fatalf("%s: 512B cache never flushed", sel)
		}
		return res.Report.HitRate
	}
	if lei, net := run(LEIComb), run(NET); lei <= net {
		t.Errorf("bounded hit rate: cLEI %.3f vs NET %.3f", lei, net)
	}
}

func TestInputSensitivityHolds(t *testing.T) {
	// The suite conclusions must not depend on the input seed: for two
	// alternate inputs, LEI still beats NET on suite transitions.
	for input := 1; input <= 2; input++ {
		var netTrans, leiTrans float64
		for _, b := range workloads.SpecNames() {
			w := workloads.MustGet(b)
			prog := w.BuildInput(smallScale, input)
			for _, sel := range []string{NET, LEI} {
				s, err := NewSelector(sel, core.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				res, err := dynopt.Run(prog, dynopt.Config{Selector: s, VM: vm.Config{}})
				if err != nil {
					t.Fatalf("input %d, %s/%s: %v", input, b, sel, err)
				}
				if sel == NET {
					netTrans += float64(res.Report.Transitions)
				} else {
					leiTrans += float64(res.Report.Transitions)
				}
			}
		}
		if leiTrans >= netTrans {
			t.Errorf("input %d: LEI transitions %.0f not below NET %.0f", input, leiTrans, netTrans)
		}
	}
}

func TestBuildInputVariesProgramBehaviour(t *testing.T) {
	w := workloads.MustGet("twolf")
	p0 := w.BuildInput(50, 0)
	p1 := w.BuildInput(50, 1)
	s0, err := vm.Run(p0, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := vm.Run(p1, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0 == s1 {
		t.Error("input variants ran identically; seeds not applied")
	}
	// Input 0 must be exactly the default build.
	sd, err := vm.Run(w.Build(50), vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != sd {
		t.Error("input 0 differs from the default build")
	}
}
