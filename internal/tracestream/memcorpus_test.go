package tracestream_test

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestMemRecorderMatchesDiskRecorder pins the in-memory recording path to
// the encoded one: tapping a run with a MemRecorder must yield exactly the
// header and event sequence that Record encodes and DecodeBytes recovers —
// the memo layer's corpora are the disk format minus the round-trip.
func TestMemRecorderMatchesDiskRecorder(t *testing.T) {
	const name, scale = "gzip", 40
	prog := workloads.MustGet(name).Build(scale)

	var buf bytes.Buffer
	if _, err := tracestream.Record(prog, name, scale, vm.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	disk, err := tracestream.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	rec := tracestream.NewMemRecorder(prog, name, scale)
	st, err := vm.Run(prog, vm.Config{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	mem := rec.Corpus(st)

	if got, want := mem.Stream.Header, disk.Header; got != want {
		t.Errorf("in-memory header %+v, decoded header %+v", got, want)
	}
	if !reflect.DeepEqual(mem.Stream.Events, disk.Events) {
		t.Errorf("in-memory events diverge from decoded events (%d vs %d)",
			len(mem.Stream.Events), len(disk.Events))
	}
	if mem.Prog != prog {
		t.Error("corpus does not carry the recorded program")
	}
	if min := int64(len(mem.Stream.Events)); mem.SizeBytes() < min {
		t.Errorf("SizeBytes %d below event count %d", mem.SizeBytes(), min)
	}
}

// memCorpusOf fabricates an in-memory corpus with exactly n arena slots.
func memCorpusOf(n int) *tracestream.MemCorpus {
	return &tracestream.MemCorpus{Corpus: tracestream.Corpus{
		Stream: &tracestream.Stream{Events: make([]vm.BlockEvent, n)},
	}}
}

// TestMemBudgetLRUEviction covers the byte-budgeted LRU: admission evicts
// the least-recently-used corpus (with Get refreshing recency), oversized
// corpora are rejected without disturbing the resident set, and the
// counters record every outcome.
func TestMemBudgetLRUEviction(t *testing.T) {
	unit := memCorpusOf(10).SizeBytes()
	if unit <= 0 {
		t.Fatalf("corpus size %d, want positive", unit)
	}
	b := tracestream.NewMemBudget(3 * unit)

	k := func(i int) tracestream.MemKey {
		return tracestream.MemKey{Workload: string(rune('a' + i)), Scale: i}
	}
	for i := 0; i < 3; i++ {
		if !b.Add(k(i), memCorpusOf(10)) {
			t.Fatalf("corpus %d not admitted under a 3-corpus budget", i)
		}
	}
	// Refresh k0, then admit a fourth corpus: k1 is now the LRU victim.
	if b.Get(k(0)) == nil {
		t.Fatal("resident corpus k0 missed")
	}
	if !b.Add(k(3), memCorpusOf(10)) {
		t.Fatal("k3 not admitted")
	}
	if b.Get(k(1)) != nil {
		t.Error("LRU victim k1 still resident; want evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if b.Get(k(i)) == nil {
			t.Errorf("k%d evicted; want resident", i)
		}
	}

	// A corpus bigger than the whole budget must be rejected outright.
	if b.Add(k(4), memCorpusOf(100)) {
		t.Error("oversized corpus admitted; want rejected")
	}
	if b.Get(k(4)) != nil {
		t.Error("rejected corpus resident")
	}

	st := b.Stats()
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	if st.Resident != 3 || st.ResidentBytes != 3*unit {
		t.Errorf("occupancy %d corpora / %d bytes, want 3 / %d", st.Resident, st.ResidentBytes, 3*unit)
	}

	// Re-adding a resident key replaces it without growing occupancy.
	if !b.Add(k(0), memCorpusOf(10)) {
		t.Fatal("replacement add refused")
	}
	if st := b.Stats(); st.Resident != 3 || st.ResidentBytes != 3*unit {
		t.Errorf("after replace: %d corpora / %d bytes, want 3 / %d", st.Resident, st.ResidentBytes, 3*unit)
	}
}
