package tracestream

import (
	"bytes"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// FuzzStreamDecode pins the decoder's safety on arbitrary bytes: it must
// never panic, never allocate unboundedly from a corrupt count, and — when
// a decode does succeed — re-encoding the decoded stream must decode back
// to the same events (arbitrary inputs may use non-canonical varints, so
// byte-level identity holds only for canonical encodings; event-level
// round-tripping must always hold).
func FuzzStreamDecode(f *testing.F) {
	for _, seed := range []struct {
		name  string
		scale int
	}{
		{"fig2-loop-call", 10},
		{"fig3-nested-loops", 15},
		{"gzip", 15},
	} {
		p := workloads.MustGet(seed.name).Build(seed.scale)
		var buf bytes.Buffer
		if _, err := Record(p, seed.name, seed.scale, vm.Config{}, &buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2])
	}
	f.Add([]byte("rbs1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeBytes(data)
		if err != nil {
			return
		}
		re := Encode(s)
		s2, err := DecodeBytes(re)
		if err != nil {
			t.Fatalf("re-encoding of a valid decode failed to decode: %v", err)
		}
		if s2.Header != s.Header {
			t.Fatalf("header changed across re-encode: %+v vs %+v", s2.Header, s.Header)
		}
		if len(s2.Events) != len(s.Events) {
			t.Fatalf("event count changed across re-encode: %d vs %d", len(s2.Events), len(s.Events))
		}
		for i := range s.Events {
			if s.Events[i] != s2.Events[i] {
				t.Fatalf("event %d changed across re-encode: %+v vs %+v", i, s.Events[i], s2.Events[i])
			}
		}
	})
}
