package tracestream_test

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// writeTrace records a workload stream to a file and returns the path.
func writeTrace(t *testing.T, dir, name string, scale int) string {
	t.Helper()
	path := fmt.Sprintf("%s/%s-%d.trace", dir, name, scale)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	prog := workloads.MustGet(name).Build(scale)
	_, err = tracestream.Record(prog, name, scale, vm.Config{}, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCacheSkipsSecondDecode is the counter-based acceptance check: the
// first load of a corpus decodes (a miss), every subsequent load of the
// same content — same path or a byte-identical copy at another path — is a
// hit that returns the already-decoded corpus.
func TestCacheSkipsSecondDecode(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "gzip", 30)
	c := tracestream.NewCache(4)
	first, err := c.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second load returned a different corpus object: decode was not skipped")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copyPath := dir + "/copy.trace"
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	third, err := c.Load(copyPath)
	if err != nil {
		t.Fatal(err)
	}
	if third != first {
		t.Error("byte-identical copy at another path missed the cache: keying is not content-based")
	}
	if st := c.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats = %+v, want 1 miss and 2 hits", st)
	}
}

// TestCacheBound pins the eviction behaviour: the cache never holds more
// than its bound, and the least-recently-used corpus is the one evicted.
func TestCacheBound(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeTrace(t, dir, "gzip", 10),
		writeTrace(t, dir, "gzip", 12),
		writeTrace(t, dir, "gzip", 14),
	}
	c := tracestream.NewCache(2)
	for _, p := range paths[:2] {
		if _, err := c.Load(p); err != nil {
			t.Fatal(err)
		}
	}
	// Touch the first so the second becomes least recently used.
	if _, err := c.Load(paths[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(paths[2]); err != nil {
		t.Fatal(err)
	}
	if n := c.Len(); n != 2 {
		t.Fatalf("cache holds %d corpora, bound is 2", n)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("stats = %+v, want exactly 1 eviction", st)
	}
	// The touched first corpus must have survived; the untouched second was
	// the victim.
	if _, err := c.Load(paths[0]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != st.Hits+1 {
		t.Errorf("reloading the recently-used corpus missed: stats %+v -> %+v", st, got)
	}
	if _, err := c.Load(paths[1]); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != st.Misses+1 {
		t.Errorf("reloading the evicted corpus hit: stats %+v -> %+v", st, got)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; the race
// detector checks safety, the counters check that the corpus decoded at
// most a handful of times (once per content, modulo evictions — none here).
func TestCacheConcurrent(t *testing.T) {
	dir := t.TempDir()
	pathA := writeTrace(t, dir, "gzip", 20)
	pathB := writeTrace(t, dir, "fig3-nested-loops", 20)
	c := tracestream.NewCache(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		path := pathA
		if i%2 == 1 {
			path = pathB
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, err := c.Load(path); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("stats = %+v, want exactly 2 misses (one per distinct content)", st)
	}
}

// TestLoadRefErrors covers the reference-form error paths: non-reference
// names, missing files, and streams whose recorded workload is unknown.
func TestLoadRefErrors(t *testing.T) {
	c := tracestream.NewCache(2)
	if _, err := c.LoadRef("gzip"); err == nil {
		t.Error("plain workload name accepted as a trace reference")
	}
	if _, err := c.LoadRef("trace:" + t.TempDir() + "/missing.trace"); err == nil {
		t.Error("missing file loaded without error")
	}
	if !tracestream.IsRef("trace:x") || tracestream.IsRef("gzip") {
		t.Error("IsRef misclassifies")
	}
	if got := tracestream.RefPath("trace:/tmp/a.trace"); got != "/tmp/a.trace" {
		t.Errorf("RefPath = %q", got)
	}
}
