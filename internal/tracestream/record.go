package tracestream

import (
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

// Recorder captures a program's block-event stream as it executes. It
// implements vm.BlockSink, so it can be passed directly to vm.Machine.Run —
// or tapped alongside a live simulation via dynopt's Config.Tap, recording
// the stream in the same run that produces the report. Events accumulate in
// the encoder's reusable buffer; Finish stamps the run totals into the
// header and writes the complete stream.
type Recorder struct {
	enc Encoder
	//lint:keep identifies the program being recorded; Reset starts a fresh take of the same run
	h Header
}

// NewRecorder prepares a recording of program p, labeled with the workload
// name and scale that built it (a replayer rebuilds the program from these;
// the digest check catches mislabeling).
func NewRecorder(p *program.Program, workload string, scale int) *Recorder {
	return &Recorder{h: Header{
		Workload:      workload,
		Scale:         scale,
		ProgramLen:    p.Len(),
		ProgramDigest: p.Digest(),
	}}
}

// Reset discards buffered events for a fresh recording of the same program.
func (r *Recorder) Reset() { r.enc.Reset() }

// TakenBranch implements vm.Sink. The VM never routes through it when the
// sink implements BlockSink, but a caller fanning out a plain taken-branch
// stream can: the event is recorded as a taken block boundary.
func (r *Recorder) TakenBranch(src, tgt isa.Addr, kind vm.BranchKind) {
	r.enc.add(src, tgt, kind, true)
}

// BlockBatch implements vm.BlockSink, encoding the batch.
//
//lint:hotpath recording rides the live-run event path
func (r *Recorder) BlockBatch(events []vm.BlockEvent) {
	r.enc.AddBatch(events)
}

// Finish completes the recording with the run's stats and writes the stream
// to w.
func (r *Recorder) Finish(w io.Writer, st vm.Stats) error {
	h := r.h
	h.Instrs = st.Instrs
	h.FinalPC = st.FinalPC
	_, err := r.enc.WriteTo(w, h)
	return err
}

// Record interprets p once under cfg and writes its block-event stream to
// w, returning the completed header.
func Record(p *program.Program, workload string, scale int, cfg vm.Config, w io.Writer) (Header, error) {
	rec := NewRecorder(p, workload, scale)
	st, err := vm.Run(p, cfg, rec)
	if err != nil {
		return Header{}, fmt.Errorf("tracestream: recording %s: %w", workload, err)
	}
	h := rec.h
	h.Instrs = st.Instrs
	h.FinalPC = st.FinalPC
	h.Events = rec.enc.events
	h.Branches = rec.enc.branches
	if _, err := rec.enc.WriteTo(w, h); err != nil {
		return Header{}, err
	}
	return h, nil
}
