package tracestream

import (
	"fmt"
	"os"
	"sync"
)

// CacheStats counts cache outcomes, for observability and the skip-decode
// test.
type CacheStats struct {
	// Hits is the number of loads served from an already-decoded corpus.
	Hits uint64
	// Misses is the number of loads that had to decode the stream.
	Misses uint64
	// Evictions is the number of corpora dropped to stay within the bound.
	Evictions uint64
}

// Cache is a bounded, concurrency-safe artifact cache mapping stream-file
// content digests to decoded corpora (SNIPPETS.md Snippet 3's content-keyed
// idiom): repeated sweeps over the same corpus pay the file read and hash,
// never the decode or program rebuild. Keying by content rather than path
// means a rewritten file is never served stale and the same corpus at two
// paths decodes once.
type Cache struct {
	mu      sync.Mutex
	max     int
	gen     uint64
	entries map[uint64]*cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	corpus *Corpus
	used   uint64 // generation of last access, for eviction
}

// DefaultCacheEntries bounds DefaultCache. A decoded corpus holds every
// event in memory, so the bound is deliberately small; sweeps rarely touch
// more than a handful of corpora at once.
const DefaultCacheEntries = 16

// DefaultCache is the process-wide corpus cache shared by the sweep engine
// and the CLIs.
var DefaultCache = NewCache(DefaultCacheEntries)

// NewCache returns a cache bounded to maxEntries decoded corpora
// (least-recently-used beyond that).
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{max: maxEntries, entries: make(map[uint64]*cacheEntry)}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Load returns the decoded corpus for the stream file at path, decoding it
// on first sight of its content. Decoding happens under the cache lock, so
// concurrent shards asking for the same corpus share one decode.
func (c *Cache) Load(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tracestream: %w", err)
	}
	digest := fnv64(data)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if e, ok := c.entries[digest]; ok {
		e.used = c.gen
		c.stats.Hits++
		return e.corpus, nil
	}
	c.stats.Misses++
	corpus, err := buildCorpus(data, digest)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	for len(c.entries) >= c.max {
		c.evictOldest()
	}
	c.entries[digest] = &cacheEntry{corpus: corpus, used: c.gen}
	return corpus, nil
}

// LoadRef resolves a trace-corpus workload reference ("trace:<path>")
// through the cache.
func (c *Cache) LoadRef(ref string) (*Corpus, error) {
	if !IsRef(ref) {
		return nil, fmt.Errorf("tracestream: %q is not a trace reference", ref)
	}
	return c.Load(RefPath(ref))
}

// evictOldest drops the least-recently-used entry. Called with mu held.
func (c *Cache) evictOldest() {
	var victim uint64
	oldest := ^uint64(0)
	for k, e := range c.entries {
		if e.used < oldest {
			oldest = e.used
			victim = k
		}
	}
	delete(c.entries, victim)
	c.stats.Evictions++
}

// Len returns the number of decoded corpora currently held.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// fnv64 is FNV-1a over the raw stream bytes — the cache key.
func fnv64(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
