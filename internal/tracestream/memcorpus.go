package tracestream

import (
	"sync"
	"unsafe"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

// MemRecorder captures a program's block-event stream straight into a dense
// in-memory []vm.BlockEvent arena — no varint encoding, no disk round-trip,
// no decode on replay. It implements vm.BlockSink, so it taps a live run via
// dynopt's Config.Tap exactly like Recorder; Corpus then seals the arena
// into a replay-ready MemCorpus whose events feed dynopt.RunEvents as-is.
// The sweep engine's memoization layer (internal/sweep) records each
// (workload, scale) cell once this way and replays it for every other grid
// cell that shares the stream.
type MemRecorder struct {
	//lint:keep identifies the program being recorded; the arena starts a fresh take
	h      Header
	prog   *program.Program
	events []vm.BlockEvent
}

// NewMemRecorder prepares an in-memory recording of program p, labeled with
// the workload name and scale that built it.
func NewMemRecorder(p *program.Program, workload string, scale int) *MemRecorder {
	return &MemRecorder{
		h: Header{
			Workload:      workload,
			Scale:         scale,
			ProgramLen:    p.Len(),
			ProgramDigest: p.Digest(),
		},
		prog: p,
	}
}

// TakenBranch implements vm.Sink. The VM never routes through it when the
// sink implements BlockSink, but a caller fanning out a plain taken-branch
// stream can: the event is recorded as a taken block boundary.
func (r *MemRecorder) TakenBranch(src, tgt isa.Addr, kind vm.BranchKind) {
	r.events = append(r.events, vm.BlockEvent{Src: src, Tgt: tgt, Kind: kind, Taken: true})
}

// BlockBatch implements vm.BlockSink, appending the batch to the arena. The
// VM reuses the batch slice, so events are copied, never retained.
//
//lint:hotpath recording rides the live-run event path
func (r *MemRecorder) BlockBatch(events []vm.BlockEvent) {
	r.events = append(r.events, events...)
}

// Corpus seals the recording into a replay-ready in-memory corpus, stamping
// the run totals from the recorded run's stats. The recorder must not be
// reused afterwards — the corpus owns the arena.
func (r *MemRecorder) Corpus(st vm.Stats) *MemCorpus {
	h := r.h
	h.Events = uint64(len(r.events))
	h.Branches = st.Branches
	h.Instrs = st.Instrs
	h.FinalPC = st.FinalPC
	return &MemCorpus{Corpus: Corpus{
		Stream: &Stream{Header: h, Events: r.events},
		Prog:   r.prog,
	}}
}

// MemCorpus is a Corpus that only ever lived in memory: recorded by a
// MemRecorder in the same process, never encoded to the stream format. Its
// embedded Corpus replays anywhere a decoded one does (Shard.Replay,
// dynopt.RunEvents); FileDigest stays zero because there is no file.
type MemCorpus struct {
	Corpus
}

// eventBytes is the resident footprint of one arena slot.
const eventBytes = int64(unsafe.Sizeof(vm.BlockEvent{}))

// SizeBytes reports the corpus's resident arena footprint — what admission
// against a MemBudget charges. Capacity, not length: the grown backing
// array is what the process actually holds.
func (c *MemCorpus) SizeBytes() int64 {
	return int64(cap(c.Stream.Events)) * eventBytes
}

// MemKey identifies a memoizable cell: PR 8 established that the
// branch-event stream depends only on the (workload, scale) pair — the
// selectors merely observe it — so one recording serves every selector and
// parameter point of the cell.
type MemKey struct {
	Workload string
	Scale    int
}

// MemStats counts budget outcomes, for observability and the
// eviction/fallback tests.
type MemStats struct {
	// Hits is the number of lookups served from a resident corpus.
	Hits uint64
	// Misses is the number of lookups that found no resident corpus.
	Misses uint64
	// Evictions is the number of corpora dropped to fit a newer one.
	Evictions uint64
	// Rejected is the number of corpora refused admission because they
	// alone exceed the whole budget — their cells run live forever.
	Rejected uint64
	// Resident and ResidentBytes describe current occupancy.
	Resident      int
	ResidentBytes int64
}

// MemBudget is a byte-budgeted, concurrency-safe LRU over in-memory corpora
// — Cache's generation-stamped LRU generalized from an entry count to a
// resident-byte bound, keyed by cell rather than file digest. Admission
// evicts least-recently-used corpora until the newcomer fits; a corpus that
// cannot fit even an empty budget is rejected, so callers degrade to live
// execution instead of thrashing the working set.
type MemBudget struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	gen     uint64
	entries map[MemKey]*memEntry
	stats   MemStats
}

type memEntry struct {
	corpus *MemCorpus
	size   int64
	used   uint64 // generation of last access, for eviction
}

// NewMemBudget returns a budget bounding resident corpora to budgetBytes.
func NewMemBudget(budgetBytes int64) *MemBudget {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	return &MemBudget{budget: budgetBytes, entries: make(map[MemKey]*memEntry)}
}

// Get returns the resident corpus for k, or nil on miss, refreshing the
// entry's recency. It sits on the sweep engine's memoized replay dispatch,
// so the hit path stays allocation-free.
//
//lint:hotpath memoized replay dispatch (sweep.TestShardMemoAllocFree)
func (b *MemBudget) Get(k MemKey) *MemCorpus {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gen++
	e, ok := b.entries[k]
	if !ok {
		b.stats.Misses++
		return nil
	}
	e.used = b.gen
	b.stats.Hits++
	return e.corpus
}

// Add admits corpus c under key k, evicting least-recently-used corpora
// until it fits, and reports whether the corpus is now resident. A corpus
// larger than the whole budget is rejected without disturbing the resident
// set. Re-adding a key replaces the previous corpus.
func (b *MemBudget) Add(k MemKey, c *MemCorpus) bool {
	size := c.SizeBytes()
	b.mu.Lock()
	defer b.mu.Unlock()
	if size > b.budget {
		b.stats.Rejected++
		return false
	}
	if e, ok := b.entries[k]; ok {
		b.used -= e.size
		delete(b.entries, k)
	}
	for b.used+size > b.budget && len(b.entries) > 0 {
		b.evictOldest()
	}
	b.gen++
	b.entries[k] = &memEntry{corpus: c, size: size, used: b.gen}
	b.used += size
	return true
}

// evictOldest drops the least-recently-used entry. Called with mu held.
func (b *MemBudget) evictOldest() {
	var victim MemKey
	oldest := ^uint64(0)
	for k, e := range b.entries {
		if e.used < oldest {
			oldest = e.used
			victim = k
		}
	}
	b.used -= b.entries[victim].size
	delete(b.entries, victim)
	b.stats.Evictions++
}

// Stats returns a snapshot of the budget counters and occupancy.
func (b *MemBudget) Stats() MemStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Resident = len(b.entries)
	st.ResidentBytes = b.used
	return st
}

// Budget returns the configured resident-byte bound.
func (b *MemBudget) Budget() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.budget
}
