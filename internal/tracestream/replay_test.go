package tracestream_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/sweep"
	"repro/internal/tracestream"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// diffSelectors is the full evaluation set the differential covers: the
// paper's four plus the adaptive meta-selector.
var diffSelectors = []string{sweep.NET, sweep.LEI, sweep.NETComb, sweep.LEIComb, sweep.Adaptive}

// reportJSON renders a report for comparison. JSON bytes, not
// reflect.DeepEqual: the serialized form is what sinks emit, and it
// distinguishes float artifacts (-0.0 vs 0.0) that == would hide.
func reportJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplayMatchesLive is the acceptance differential: for every
// registered workload under every selector in the evaluation set, replaying
// a recorded stream — both streamed through a Reader into RunStream and
// fully decoded into RunEvents — produces a report byte-identical to the
// live VM run that made the recording.
func TestReplayMatchesLive(t *testing.T) {
	const scale = 25
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := workloads.MustGet(name).Build(scale)
			// Record once per workload, tapped off the first live run.
			var recorded []byte
			for i, selName := range diffSelectors {
				sel, err := sweep.NewSelector(selName, core.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				cfg := dynopt.Config{Selector: sel}
				var rec *tracestream.Recorder
				if i == 0 {
					rec = tracestream.NewRecorder(prog, name, scale)
					cfg.Tap = rec
				}
				live, err := dynopt.Run(prog, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if rec != nil {
					var buf bytes.Buffer
					if err := rec.Finish(&buf, live.VMStats); err != nil {
						t.Fatal(err)
					}
					recorded = buf.Bytes()
				}
				liveJSON := reportJSON(t, live.Report)

				sel2, err := sweep.NewSelector(selName, core.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				rd, err := tracestream.NewReader(bytes.NewReader(recorded))
				if err != nil {
					t.Fatal(err)
				}
				hdr := rd.Header()
				if err := hdr.CheckProgram(prog); err != nil {
					t.Fatal(err)
				}
				streamed, err := dynopt.RunStream(prog, dynopt.Config{Selector: sel2}, rd.Feed)
				if err != nil {
					t.Fatalf("%s: streamed replay: %v", selName, err)
				}
				if got := reportJSON(t, streamed.Report); !bytes.Equal(got, liveJSON) {
					t.Errorf("%s: streamed replay report differs from live run:\nlive:   %s\nreplay: %s",
						selName, liveJSON, got)
				}

				sel3, err := sweep.NewSelector(selName, core.DefaultParams())
				if err != nil {
					t.Fatal(err)
				}
				s, err := tracestream.DecodeBytes(recorded)
				if err != nil {
					t.Fatal(err)
				}
				events, err := dynopt.RunEvents(prog, dynopt.Config{Selector: sel3},
					s.Events, s.Header.FinalPC, s.Header.Instrs)
				if err != nil {
					t.Fatalf("%s: decoded replay: %v", selName, err)
				}
				if got := reportJSON(t, events.Report); !bytes.Equal(got, liveJSON) {
					t.Errorf("%s: decoded replay report differs from live run:\nlive:   %s\nreplay: %s",
						selName, liveJSON, got)
				}
			}
		})
	}
}

// TestSweepReplayMatchesLiveSweep pins the engine-level equivalence the
// trace workload class rests on: a sweep over trace:<path> corpora delivers
// reports identical (up to the workload label, which carries the reference)
// to the same grid over the live workloads — and the shard replay loop is
// allocation-free in steady state like the live one.
func TestSweepReplayMatchesLiveSweep(t *testing.T) {
	const scale = 25
	dir := t.TempDir()
	live := sweep.Grid{Workloads: []string{"gzip", "fig3-nested-loops"}, Scale: scale, Selectors: diffSelectors}
	traced := sweep.Grid{Scale: scale, Selectors: diffSelectors}
	for _, name := range live.Workloads {
		path := dir + "/" + name + ".trace"
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		prog := workloads.MustGet(name).Build(scale)
		_, err = tracestream.Record(prog, name, scale, vm.Config{}, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		traced.Workloads = append(traced.Workloads, "trace:"+path)
	}
	run := func(g sweep.Grid) []sweep.Result {
		var out []sweep.Result
		if err := sweep.RunGrid(context.Background(), g, sweep.Options{Shards: 2},
			sweep.FuncSink(func(r sweep.Result) { out = append(out, r) })); err != nil {
			t.Fatal(err)
		}
		return out
	}
	liveRes, traceRes := run(live), run(traced)
	if len(liveRes) != len(traceRes) {
		t.Fatalf("live sweep delivered %d results, trace sweep %d", len(liveRes), len(traceRes))
	}
	for i := range liveRes {
		lr, tr := liveRes[i].Report, traceRes[i].Report
		tr.Workload = lr.Workload // the only allowed difference
		if got, want := reportJSON(t, tr), reportJSON(t, lr); !bytes.Equal(got, want) {
			t.Errorf("cell %d (%s/%s): trace sweep differs from live:\nlive:  %s\ntrace: %s",
				i, liveRes[i].Job.Workload, liveRes[i].Job.Selector, want, got)
		}
	}
}

// TestShardReplayAllocFree extends the sweep engine's zero-alloc pin to the
// corpus replay path: after warm-up, Shard.Replay performs no heap
// allocations per job.
func TestShardReplayAllocFree(t *testing.T) {
	const name, scale = "gzip", 40
	prog := workloads.MustGet(name).Build(scale)
	var buf bytes.Buffer
	if _, err := tracestream.Record(prog, name, scale, vm.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	s, err := tracestream.DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	corpus := &tracestream.Corpus{Stream: s, Prog: prog}
	shard := sweep.NewShard()
	for _, selName := range diffSelectors[:4] { // adaptive pools separately
		selName := selName
		t.Run(selName, func(t *testing.T) {
			job := sweep.Job{Workload: name, Selector: selName, Params: core.DefaultParams()}
			for i := 0; i < 2; i++ {
				if _, err := shard.Replay(corpus, job); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(5, func() {
				if _, err := shard.Replay(corpus, job); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state shard replay allocated %.1f times, want 0", allocs)
			}
		})
	}
}
