// Package tracestream makes recorded branch-event streams a first-class
// workload: the compact on-disk format, a recorder that taps the VM's
// block-event stream (vm.BlockSink), a streaming replayer that feeds the
// dynopt simulator without re-interpreting the program, and a digest-keyed
// artifact cache so repeated sweeps over the same corpus skip decoding
// entirely.
//
// The selectors only ever consume block-boundary events — DESIGN.md's core
// substitution argument, reified by dynopt.RunStream — so a recording
// replays to a metrics.Report byte-identical to the live VM run while
// skipping dispatch, arithmetic, and memory simulation altogether
// (TestReplayMatchesLive pins this for every registered workload under all
// five selectors).
//
// Encoding, in the idiom of the Figure 14 bit coder and the sweepnet wire
// codec: a self-describing header (workload name and scale, program length
// and content digest, event/branch/instruction counts, final PC), then one
// varint-packed record per block event. Each record packs the zigzag
// source-address delta with a 3-bit tag (0 = fall-through, kind+1 = taken)
// into one varint; taken events append the zigzag target delta, while
// fall-through targets are implied (Tgt = Src+1). Loop-heavy streams repeat
// small deltas, so hot events cost one or two bytes. Steady-state encode
// and decode are allocation-free (TestStreamCodecAllocFree) and the decoder
// never panics or trusts a corrupt count as an allocation size
// (FuzzStreamDecode, every-prefix truncation errors).
package tracestream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

// magic identifies a branch-event stream file ("region branch stream").
var magic = [4]byte{'r', 'b', 's', '1'}

// formatVersion is bumped on incompatible encoding changes.
const formatVersion = 1

// maxKind bounds the taken-branch kind accepted by the decoder (vm's six
// BranchKind values).
const maxKind = uint64(vm.KindReturn)

// Decoder errors. Sentinels, not fmt.Errorf: decode runs on the replay hot
// path and malformed input must error without panicking (FuzzStreamDecode).
var (
	// ErrTruncated reports a stream that ends before its header-declared
	// event count is reached (every strict prefix of a valid stream).
	ErrTruncated = errors.New("tracestream: truncated stream")
	// ErrNotStream reports a missing or wrong magic number.
	ErrNotStream = errors.New("tracestream: not a branch-event stream")
)

// Header is the self-describing preamble of a recorded stream. It names the
// workload that produced the stream (so sweep workers can rebuild the
// program from the registry), pins the exact program via length and content
// digest, and carries the run totals the replayer needs to finish a
// simulation without the VM: the event and taken-branch counts, the
// executed-instruction count, and the final halt address.
type Header struct {
	// Workload is the registered workload name (or a free-form program
	// identifier for streams recorded outside the registry).
	Workload string
	// Scale is the workload scale the program was built at.
	Scale int
	// ProgramLen is the recorded program's instruction count.
	ProgramLen int
	// ProgramDigest is program.Digest() of the recorded program.
	ProgramDigest uint64
	// Events is the number of block events in the stream.
	Events uint64
	// Branches is the number of taken-branch events.
	Branches uint64
	// Instrs is the total executed instruction count of the recorded run.
	Instrs uint64
	// FinalPC is the halt address that ended the recorded run.
	FinalPC isa.Addr
}

// CheckProgram reports an error when p is not the program the stream was
// recorded from.
func (h *Header) CheckProgram(p *program.Program) error {
	if p.Len() != h.ProgramLen {
		return fmt.Errorf("tracestream: stream is for a %d-instruction program, got %d",
			h.ProgramLen, p.Len())
	}
	if d := p.Digest(); d != h.ProgramDigest {
		return fmt.Errorf("tracestream: program digest %#x does not match recorded %#x",
			d, h.ProgramDigest)
	}
	return nil
}

// Stream is a fully decoded in-memory recording: the corpus form the
// digest-keyed cache holds so repeated sweeps replay pre-decoded events.
type Stream struct {
	Header Header
	Events []vm.BlockEvent
}

// zz zigzag-maps a signed delta so small magnitudes of either sign encode
// short.
func zz(v int64) uint64 { return uint64(v)<<1 ^ uint64(v>>63) }

// unzz inverts zz.
func unzz(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encoder packs block events into the on-disk payload through a grow-only
// reusable buffer: once the buffer reaches a run's high-water size, adding
// batches allocates nothing.
type Encoder struct {
	buf              []byte
	prevSrc, prevTgt int64
	events           uint64
	branches         uint64
}

// Reset discards buffered events for a fresh recording, keeping the buffer.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.prevSrc, e.prevTgt = 0, 0
	e.events, e.branches = 0, 0
}

// putU appends an unsigned value, LEB128 7-bit groups, low group first.
//
//lint:hotpath per-event stream encoding (TestStreamCodecAllocFree)
func (e *Encoder) putU(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// add encodes one block event.
//
//lint:hotpath per-event stream encoding (TestStreamCodecAllocFree)
func (e *Encoder) add(src, tgt isa.Addr, kind vm.BranchKind, taken bool) {
	tag := uint64(0)
	if taken {
		tag = uint64(kind) + 1
	}
	e.putU(zz(int64(src)-e.prevSrc)<<3 | tag)
	if taken {
		e.putU(zz(int64(tgt) - e.prevTgt))
		e.branches++
	}
	e.prevSrc, e.prevTgt = int64(src), int64(tgt)
	e.events++
}

// AddBatch encodes a batch of block events in order.
//
//lint:hotpath per-batch stream encoding (TestStreamCodecAllocFree)
func (e *Encoder) AddBatch(events []vm.BlockEvent) {
	for i := range events {
		ev := &events[i]
		e.add(ev.Src, ev.Tgt, ev.Kind, ev.Taken)
	}
}

// Events returns the number of events encoded since the last Reset.
func (e *Encoder) Events() uint64 { return e.events }

// appendHeader encodes h. The payload is buffered in memory until the
// recording finishes, so the header's counts are final by the time anything
// hits the writer and no backpatching (or io.Seeker) is ever needed.
func appendHeader(dst []byte, h *Header) []byte {
	dst = append(dst, magic[:]...)
	dst = binary.AppendUvarint(dst, formatVersion)
	dst = binary.AppendUvarint(dst, uint64(len(h.Workload)))
	dst = append(dst, h.Workload...)
	dst = binary.AppendVarint(dst, int64(h.Scale))
	dst = binary.AppendUvarint(dst, uint64(h.ProgramLen))
	dst = binary.BigEndian.AppendUint64(dst, h.ProgramDigest)
	dst = binary.AppendUvarint(dst, h.Events)
	dst = binary.AppendUvarint(dst, h.Branches)
	dst = binary.AppendUvarint(dst, h.Instrs)
	dst = binary.AppendUvarint(dst, uint64(h.FinalPC))
	return dst
}

// WriteTo assembles the complete stream — header then payload — and writes
// it to w. The caller fills the program- and run-identifying header fields;
// the event and branch counts come from the encoder.
func (e *Encoder) WriteTo(w io.Writer, h Header) (int64, error) {
	h.Events = e.events
	h.Branches = e.branches
	hdr := appendHeader(nil, &h)
	n, err := w.Write(hdr)
	total := int64(n)
	if err != nil {
		return total, err
	}
	n, err = w.Write(e.buf)
	return total + int64(n), err
}

// Reader streams a recording front to back: the header up front, then
// events decoded batch-by-batch into caller- or internally-owned buffers,
// never materializing the whole stream. A Reader can be Reset onto a new
// source and reused; steady-state batch decoding is allocation-free.
type Reader struct {
	br               *bufio.Reader
	h                Header
	prevSrc, prevTgt int64
	read             uint64 // events decoded so far
	taken            uint64 // taken events decoded so far
	//lint:keep preallocated batch capacity; Feed overwrites before use
	batch []vm.BlockEvent
}

// NewReader wraps r and decodes the stream header.
func NewReader(r io.Reader) (*Reader, error) {
	d := &Reader{br: bufio.NewReader(r)}
	if err := d.start(); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-targets the reader to a new stream, reusing its buffers, and
// decodes the new header.
func (d *Reader) Reset(r io.Reader) error {
	d.br.Reset(r)
	d.prevSrc, d.prevTgt = 0, 0
	d.read, d.taken = 0, 0
	d.h = Header{}
	return d.start()
}

// start decodes the header.
func (d *Reader) start() error {
	var m [4]byte
	if _, err := io.ReadFull(d.br, m[:]); err != nil {
		return fmt.Errorf("%w: %w", ErrNotStream, err)
	}
	if m != magic {
		return ErrNotStream
	}
	ver, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("tracestream: reading version: %w", trunc(err))
	}
	if ver != formatVersion {
		return fmt.Errorf("tracestream: unsupported format version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("tracestream: reading header: %w", trunc(err))
	}
	if nameLen > 1<<16 {
		return fmt.Errorf("tracestream: workload name length %d out of range", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(d.br, name); err != nil {
		return fmt.Errorf("tracestream: reading header: %w", trunc(err))
	}
	d.h.Workload = string(name)
	scale, err := binary.ReadVarint(d.br)
	if err != nil {
		return fmt.Errorf("tracestream: reading header: %w", trunc(err))
	}
	d.h.Scale = int(scale)
	plen, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("tracestream: reading header: %w", trunc(err))
	}
	if plen > 1<<31 {
		return fmt.Errorf("tracestream: program length %d out of range", plen)
	}
	d.h.ProgramLen = int(plen)
	var dig [8]byte
	if _, err := io.ReadFull(d.br, dig[:]); err != nil {
		return fmt.Errorf("tracestream: reading header: %w", trunc(err))
	}
	d.h.ProgramDigest = binary.BigEndian.Uint64(dig[:])
	for _, dst := range []*uint64{&d.h.Events, &d.h.Branches, &d.h.Instrs} {
		if *dst, err = binary.ReadUvarint(d.br); err != nil {
			return fmt.Errorf("tracestream: reading header: %w", trunc(err))
		}
	}
	if d.h.Branches > d.h.Events {
		return fmt.Errorf("tracestream: header declares %d taken events out of %d", d.h.Branches, d.h.Events)
	}
	fpc, err := binary.ReadUvarint(d.br)
	if err != nil {
		return fmt.Errorf("tracestream: reading header: %w", trunc(err))
	}
	if fpc >= plen && !(fpc == 0 && plen == 0) {
		return fmt.Errorf("tracestream: final PC %d outside %d-instruction program", fpc, plen)
	}
	d.h.FinalPC = isa.Addr(fpc)
	return nil
}

// trunc maps io.EOF/ErrUnexpectedEOF onto the package truncation sentinel.
func trunc(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}

// Header returns the decoded stream header.
func (d *Reader) Header() Header { return d.h }

// Next decodes up to len(dst) events into dst, returning how many were
// filled. It returns io.EOF once the header-declared event count has been
// delivered, and ErrTruncated when the stream ends early. Every decoded
// address is validated against the header's program length, so a decoded
// event can always be fed to a simulator sized for that program.
//
//lint:hotpath per-batch stream decoding (TestStreamCodecAllocFree)
func (d *Reader) Next(dst []vm.BlockEvent) (int, error) {
	if d.read >= d.h.Events {
		return 0, io.EOF
	}
	n := 0
	limit := uint64(len(dst))
	if rem := d.h.Events - d.read; rem < limit {
		limit = rem
	}
	for uint64(n) < limit {
		v, err := binary.ReadUvarint(d.br)
		if err != nil {
			return n, trunc(err)
		}
		tag := v & 7
		if tag > maxKind+1 {
			return n, fmt.Errorf("tracestream: event tag %d out of range", tag)
		}
		src := d.prevSrc + unzz(v>>3)
		if src < 0 || src >= int64(d.h.ProgramLen) {
			return n, fmt.Errorf("tracestream: event source %d outside %d-instruction program", src, d.h.ProgramLen)
		}
		ev := vm.BlockEvent{Src: isa.Addr(src)}
		if tag != 0 {
			u, err := binary.ReadUvarint(d.br)
			if err != nil {
				return n, trunc(err)
			}
			tgt := d.prevTgt + unzz(u)
			if tgt < 0 || tgt >= int64(d.h.ProgramLen) {
				return n, fmt.Errorf("tracestream: event target %d outside %d-instruction program", tgt, d.h.ProgramLen)
			}
			ev.Tgt = isa.Addr(tgt)
			ev.Kind = vm.BranchKind(tag - 1)
			ev.Taken = true
			d.taken++
		} else {
			// Fall-through boundaries always continue at the next address.
			ev.Tgt = isa.Addr(src + 1)
		}
		d.prevSrc, d.prevTgt = int64(ev.Src), int64(ev.Tgt)
		dst[n] = ev
		n++
	}
	d.read += uint64(n)
	if d.read == d.h.Events && d.taken != d.h.Branches {
		return n, fmt.Errorf("tracestream: stream has %d taken events, header declares %d", d.taken, d.h.Branches)
	}
	return n, nil
}

// feedBatch is the delivery granularity of Feed; it matches the VM's own
// block-event batching, though report identity does not depend on it (the
// simulator processes events one by one).
const feedBatch = 1024

// Feed streams the whole recording into sink and returns the recorded run's
// final PC and instruction count — the exact signature dynopt.RunStream
// expects of its feed function. When sink implements vm.BlockSink the
// events are delivered in batches, fall-throughs included, mirroring a live
// vm.Machine.Run; a plain vm.Sink receives one TakenBranch call per taken
// event, mirroring the VM's unbatched path.
//
//lint:hotpath streaming replay feed (TestStreamCodecAllocFree)
func (d *Reader) Feed(sink vm.Sink) (isa.Addr, uint64, error) {
	if cap(d.batch) == 0 {
		d.batch = make([]vm.BlockEvent, feedBatch)
	}
	batch := d.batch[:cap(d.batch)]
	bs, _ := sink.(vm.BlockSink)
	for {
		n, err := d.Next(batch)
		if n > 0 {
			if bs != nil {
				bs.BlockBatch(batch[:n])
			} else if sink != nil {
				for i := range batch[:n] {
					ev := &batch[i]
					if ev.Taken {
						sink.TakenBranch(ev.Src, ev.Tgt, ev.Kind)
					}
				}
			}
		}
		if err == io.EOF {
			return d.h.FinalPC, d.h.Instrs, nil
		}
		if err != nil {
			return 0, 0, err
		}
	}
}

// DecodeBytes fully decodes an in-memory stream, validating that no bytes
// trail the final event. The event-count allocation is bounded by the
// payload size (every event costs at least one byte), so a corrupt header
// cannot become a huge allocation.
func DecodeBytes(data []byte) (*Stream, error) {
	r := &byteSource{b: data}
	d, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	if d.h.Events > uint64(len(data)) {
		return nil, fmt.Errorf("%w: header declares %d events in %d bytes", ErrTruncated, d.h.Events, len(data))
	}
	s := &Stream{Header: d.h, Events: make([]vm.BlockEvent, d.h.Events)}
	filled := 0
	for {
		n, err := d.Next(s.Events[filled:])
		filled += n
		if err == io.EOF || (err == nil && uint64(filled) == d.h.Events) {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if rem := r.remaining() + d.br.Buffered(); rem > 0 {
		return nil, fmt.Errorf("tracestream: %d trailing bytes after final event", rem)
	}
	return s, nil
}

// Encode renders a fully materialized stream back to bytes — the inverse of
// DecodeBytes for canonical streams (round-trip property and fuzz seed
// tooling).
func Encode(s *Stream) []byte {
	var e Encoder
	e.AddBatch(s.Events)
	h := s.Header
	h.Events = e.events
	h.Branches = e.branches
	return append(appendHeader(nil, &h), e.buf...)
}

// byteSource is a minimal io.Reader over a byte slice that exposes how many
// bytes were never consumed (bytes.Reader would work but cannot report the
// bufio.Reader's overshoot on its own).
type byteSource struct {
	b   []byte
	off int
}

func (r *byteSource) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

func (r *byteSource) remaining() int { return len(r.b) - r.off }
