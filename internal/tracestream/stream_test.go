package tracestream

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// recordBytes records one workload run to memory.
func recordBytes(t *testing.T, name string, scale int) ([]byte, Header) {
	t.Helper()
	p := workloads.MustGet(name).Build(scale)
	var buf bytes.Buffer
	h, err := Record(p, name, scale, vm.Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), h
}

// TestRoundTripByteExact pins the canonical encoding: decoding a recording
// and re-encoding it reproduces the file byte for byte, and the decoded
// header carries the run totals.
func TestRoundTripByteExact(t *testing.T) {
	data, h := recordBytes(t, "gzip", 40)
	s, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Header != h {
		t.Fatalf("decoded header %+v, recorded %+v", s.Header, h)
	}
	if uint64(len(s.Events)) != h.Events {
		t.Fatalf("decoded %d events, header declares %d", len(s.Events), h.Events)
	}
	if h.Events == 0 || h.Branches == 0 || h.Branches >= h.Events {
		t.Fatalf("implausible recording: %d events, %d taken", h.Events, h.Branches)
	}
	re := Encode(s)
	if !bytes.Equal(re, data) {
		t.Fatalf("re-encoding differs: %d bytes vs %d recorded", len(re), len(data))
	}
}

// TestRecorderMatchesRecord pins that tapping a recorder onto a live run
// (the Config.Tap path drives BlockBatch directly) produces the same bytes
// as the Record helper.
func TestRecorderMatchesRecord(t *testing.T) {
	p := workloads.MustGet("fig3-nested-loops").Build(30)
	rec := NewRecorder(p, "fig3-nested-loops", 30)
	st, err := vm.Run(p, vm.Config{}, rec)
	if err != nil {
		t.Fatal(err)
	}
	var tapped bytes.Buffer
	if err := rec.Finish(&tapped, st); err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if _, err := Record(p, "fig3-nested-loops", 30, vm.Config{}, &direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tapped.Bytes(), direct.Bytes()) {
		t.Fatal("recorder-as-sink and Record helper produced different streams")
	}
}

// TestEveryPrefixTruncationErrors pins the self-describing header: because
// the event count is declared up front, every strict prefix of a valid
// stream decodes to an error, never to a silently shorter run.
func TestEveryPrefixTruncationErrors(t *testing.T) {
	data, _ := recordBytes(t, "fig2-loop-call", 20)
	for n := 0; n < len(data); n++ {
		if _, err := DecodeBytes(data[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(data))
		}
	}
}

// TestDecodeRejectsTrailingBytes pins that bytes after the final declared
// event are an error, not silently ignored.
func TestDecodeRejectsTrailingBytes(t *testing.T) {
	data, _ := recordBytes(t, "fig2-loop-call", 20)
	if _, err := DecodeBytes(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
}

// TestDecodeRejectsBadMagicAndVersion covers the header validations.
func TestDecodeRejectsBadMagicAndVersion(t *testing.T) {
	data, _ := recordBytes(t, "fig2-loop-call", 20)
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := DecodeBytes(bad); !errors.Is(err, ErrNotStream) {
		t.Fatalf("bad magic: got %v, want ErrNotStream", err)
	}
	bad = append([]byte(nil), data...)
	bad[4] = 99 // version varint
	if _, err := DecodeBytes(bad); err == nil {
		t.Fatal("unsupported version decoded without error")
	}
}

// TestCheckProgram pins the digest guard: the right program passes, a
// different workload (and a different scale of the same workload) fails.
func TestCheckProgram(t *testing.T) {
	_, h := recordBytes(t, "gzip", 40)
	if err := h.CheckProgram(workloads.MustGet("gzip").Build(40)); err != nil {
		t.Fatalf("matching program rejected: %v", err)
	}
	if err := h.CheckProgram(workloads.MustGet("gcc").Build(40)); err == nil {
		t.Fatal("different workload's program accepted")
	}
	if err := h.CheckProgram(workloads.MustGet("gzip").Build(41)); err == nil {
		t.Fatal("different scale accepted")
	}
}

// TestReaderStreamsAndResets pins the streaming decoder: Next delivers
// exactly the header-declared events in order, io.EOF after, and a Reset
// reader re-decodes the same stream.
func TestReaderStreamsAndResets(t *testing.T) {
	data, h := recordBytes(t, "fig3-nested-loops", 30)
	want, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		if rd.Header() != h {
			t.Fatalf("pass %d: header %+v, want %+v", pass, rd.Header(), h)
		}
		var got []vm.BlockEvent
		buf := make([]vm.BlockEvent, 7) // deliberately tiny, off-size batches
		for {
			n, err := rd.Next(buf)
			got = append(got, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if len(got) != len(want.Events) {
			t.Fatalf("pass %d: streamed %d events, want %d", pass, len(got), len(want.Events))
		}
		for i := range got {
			if got[i] != want.Events[i] {
				t.Fatalf("pass %d: event %d = %+v, want %+v", pass, i, got[i], want.Events[i])
			}
		}
		if err := rd.Reset(bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamCodecAllocFree pins the zero-alloc steady state of both
// directions: a warmed Encoder encodes batches without allocating, and a
// warmed Reader (Reset between passes) streams a whole recording without
// allocating.
func TestStreamCodecAllocFree(t *testing.T) {
	data, _ := recordBytes(t, "gzip", 40)
	s, err := DecodeBytes(data)
	if err != nil {
		t.Fatal(err)
	}

	var enc Encoder
	enc.AddBatch(s.Events) // grow the buffer to the high-water mark
	allocs := testing.AllocsPerRun(5, func() {
		enc.Reset()
		enc.AddBatch(s.Events)
	})
	if allocs != 0 {
		t.Errorf("steady-state encode allocated %.1f times, want 0", allocs)
	}

	src := &byteSource{b: data}
	rd, err := NewReader(src)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]vm.BlockEvent, feedBatch)
	drain := func() {
		for {
			_, err := rd.Next(batch)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	drain() // warm-up pass
	// Reset's header decode allocates the workload-name string; the pin is
	// on the payload loop, by far the dominant cost.
	resetAllocs := testing.AllocsPerRun(5, func() {
		src.off = 0
		if err := rd.Reset(src); err != nil {
			t.Fatal(err)
		}
	})
	allocs = testing.AllocsPerRun(5, func() {
		src.off = 0
		if err := rd.Reset(src); err != nil {
			t.Fatal(err)
		}
		drain()
	})
	if allocs > resetAllocs {
		t.Errorf("steady-state decode allocated %.1f times beyond the %.1f header allocations, want 0",
			allocs-resetAllocs, resetAllocs)
	}
}
