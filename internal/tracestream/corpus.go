package tracestream

import (
	"fmt"
	"strings"

	"repro/internal/program"
	"repro/internal/workloads"
)

// RefPrefix marks a workload name as a trace-corpus reference: everything
// after the prefix is a stream file path. cmd/sweep grids and sweepd jobs
// carry these alongside registered workload names.
const RefPrefix = "trace:"

// IsRef reports whether a workload name refers to a recorded trace corpus.
func IsRef(name string) bool { return strings.HasPrefix(name, RefPrefix) }

// RefPath extracts the stream file path from a trace-corpus reference.
func RefPath(name string) string { return strings.TrimPrefix(name, RefPrefix) }

// Corpus is a replay-ready recording: the decoded stream plus the program
// it was recorded from, rebuilt from the workload registry and verified
// against the stream's embedded digest. A Corpus substitutes for a
// (program, scale) pair anywhere the selectors run — the events already
// encode everything they consume.
type Corpus struct {
	Stream *Stream
	Prog   *program.Program
	// FileDigest is the content hash of the stream file the corpus was
	// decoded from — the cache key.
	FileDigest uint64
}

// Header returns the underlying stream header.
func (c *Corpus) Header() Header { return c.Stream.Header }

// buildCorpus decodes raw stream bytes and rebuilds + verifies the program
// named in the header.
func buildCorpus(data []byte, fileDigest uint64) (*Corpus, error) {
	s, err := DecodeBytes(data)
	if err != nil {
		return nil, err
	}
	w, ok := workloads.Get(s.Header.Workload)
	if !ok {
		return nil, fmt.Errorf("tracestream: stream records unknown workload %q", s.Header.Workload)
	}
	p := w.Build(s.Header.Scale)
	if err := s.Header.CheckProgram(p); err != nil {
		return nil, fmt.Errorf("%w (workload %s scale %d)", err, s.Header.Workload, s.Header.Scale)
	}
	return &Corpus{Stream: s, Prog: p, FileDigest: fileDigest}, nil
}
