// Package trace records and replays the dynamic taken-branch stream that
// drives the simulator. The paper's framework consumed streams reported by
// Pin; this package makes the same decoupling concrete: a program can be
// interpreted once while its stream is recorded, and any number of
// region-selection experiments can then replay the recording without
// re-interpreting — bit-identical to the live run.
//
// Encoding: a small header, then one record per taken branch holding the
// branch kind and delta-encoded source and target addresses (varints), then
// a trailer with the final program counter and the executed-instruction
// count for cross-checking.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

var magic = [4]byte{'r', 't', 'r', '1'}

// Trailer closes a recording.
type Trailer struct {
	// FinalPC is the halt address that ended the run.
	FinalPC isa.Addr
	// Instrs is the total executed instruction count.
	Instrs uint64
	// Branches is the number of recorded taken branches.
	Branches uint64
}

// Writer records a taken-branch stream. It implements vm.Sink; pass it to
// vm.Run and call Close with the run's final statistics.
type Writer struct {
	w        *bufio.Writer
	prevSrc  int64
	prevTgt  int64
	branches uint64
	err      error
	closed   bool
}

// NewWriter starts a recording for a program of programLen instructions.
func NewWriter(w io.Writer, programLen int) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(programLen))
	if _, err := bw.Write(buf[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// TakenBranch implements vm.Sink. Errors are sticky and reported by Close.
func (t *Writer) TakenBranch(src, tgt isa.Addr, kind vm.BranchKind) {
	if t.err != nil || t.closed {
		return
	}
	t.branches++
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = byte(kind) + 1 // 0 is reserved for the trailer marker
	n := 1
	n += binary.PutVarint(buf[n:], int64(src)-t.prevSrc)
	n += binary.PutVarint(buf[n:], int64(tgt)-t.prevTgt)
	t.prevSrc, t.prevTgt = int64(src), int64(tgt)
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = err
	}
}

// Close writes the trailer and flushes. The writer is unusable afterwards.
func (t *Writer) Close(st vm.Stats) error {
	if t.closed {
		return errors.New("trace: writer already closed")
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	var buf [1 + 2*binary.MaxVarintLen64]byte
	buf[0] = 0 // trailer marker
	n := 1
	n += binary.PutUvarint(buf[n:], uint64(st.FinalPC))
	n += binary.PutUvarint(buf[n:], st.Instrs)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	return t.w.Flush()
}

// Branches returns the number of branches recorded so far.
func (t *Writer) Branches() uint64 { return t.branches }

// Record interprets the program under cfg while writing its stream to w,
// returning the run's statistics.
func Record(p *program.Program, cfg vm.Config, w io.Writer) (vm.Stats, error) {
	tw, err := NewWriter(w, p.Len())
	if err != nil {
		return vm.Stats{}, err
	}
	st, err := vm.Run(p, cfg, tw)
	if err != nil {
		return st, err
	}
	if err := tw.Close(st); err != nil {
		return st, err
	}
	return st, nil
}

// Replay streams a recording into sink and returns the trailer. programLen
// guards against replaying a recording of a different program.
func Replay(r io.Reader, programLen int, sink vm.Sink) (Trailer, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return Trailer{}, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return Trailer{}, errors.New("trace: not a trace recording")
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
		return Trailer{}, fmt.Errorf("trace: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(lenBuf[:]); int(got) != programLen {
		return Trailer{}, fmt.Errorf("trace: recording is for a %d-instruction program, replaying against %d", got, programLen)
	}
	var tr Trailer
	var prevSrc, prevTgt int64
	for {
		kindByte, err := br.ReadByte()
		if err != nil {
			return Trailer{}, fmt.Errorf("trace: truncated recording: %w", err)
		}
		if kindByte == 0 {
			fpc, err := binary.ReadUvarint(br)
			if err != nil {
				return Trailer{}, fmt.Errorf("trace: truncated trailer: %w", err)
			}
			instrs, err := binary.ReadUvarint(br)
			if err != nil {
				return Trailer{}, fmt.Errorf("trace: truncated trailer: %w", err)
			}
			tr.FinalPC = isa.Addr(fpc)
			tr.Instrs = instrs
			return tr, nil
		}
		dSrc, err := binary.ReadVarint(br)
		if err != nil {
			return Trailer{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		dTgt, err := binary.ReadVarint(br)
		if err != nil {
			return Trailer{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		prevSrc += dSrc
		prevTgt += dTgt
		tr.Branches++
		if sink != nil {
			sink.TakenBranch(isa.Addr(prevSrc), isa.Addr(prevTgt), vm.BranchKind(kindByte-1))
		}
	}
}
