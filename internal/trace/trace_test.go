package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	prog := workloads.MustGet("gzip").Build(50)
	var buf bytes.Buffer
	st, err := Record(prog, vm.Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		src, tgt isa.Addr
		kind     vm.BranchKind
	}
	var live []ev
	if _, err := vm.Run(prog, vm.Config{}, vm.SinkFunc(func(s, g isa.Addr, k vm.BranchKind) {
		live = append(live, ev{s, g, k})
	})); err != nil {
		t.Fatal(err)
	}
	var replayed []ev
	tr, err := Replay(&buf, prog.Len(), vm.SinkFunc(func(s, g isa.Addr, k vm.BranchKind) {
		replayed = append(replayed, ev{s, g, k})
	}))
	if err != nil {
		t.Fatal(err)
	}
	if tr.FinalPC != st.FinalPC || tr.Instrs != st.Instrs || tr.Branches != st.Branches {
		t.Errorf("trailer %+v vs stats %+v", tr, st)
	}
	if len(replayed) != len(live) {
		t.Fatalf("replayed %d events, live %d", len(replayed), len(live))
	}
	for i := range live {
		if live[i] != replayed[i] {
			t.Fatalf("event %d: %+v vs %+v", i, live[i], replayed[i])
		}
	}
}

// TestReplayedSimulationIdentical: running the simulator from a recording
// must produce the exact report of a live run — the package's core promise.
func TestReplayedSimulationIdentical(t *testing.T) {
	for _, bench := range []string{"mcf", "perlbmk"} {
		prog := workloads.MustGet(bench).Build(80)
		var buf bytes.Buffer
		if _, err := Record(prog, vm.Config{}, &buf); err != nil {
			t.Fatal(err)
		}
		recording := buf.Bytes()
		for _, mk := range []func() core.Selector{
			func() core.Selector { return core.NewNET(core.DefaultParams()) },
			func() core.Selector { return core.NewLEI(core.DefaultParams()) },
			func() core.Selector { return core.NewCombiner(core.BaseLEI, core.DefaultParams()) },
		} {
			live, err := dynopt.Run(prog, dynopt.Config{Selector: mk()})
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := dynopt.RunStream(prog, dynopt.Config{Selector: mk()},
				func(sink vm.Sink) (isa.Addr, uint64, error) {
					tr, err := Replay(bytes.NewReader(recording), prog.Len(), sink)
					return tr.FinalPC, tr.Instrs, err
				})
			if err != nil {
				t.Fatal(err)
			}
			if live.Report != replayed.Report {
				t.Errorf("%s: replayed report differs from live:\n%v\nvs\n%v",
					bench, replayed.Report, live.Report)
			}
		}
	}
}

func TestReplayRejectsWrongProgram(t *testing.T) {
	prog := workloads.MustGet("gzip").Build(5)
	var buf bytes.Buffer
	if _, err := Record(prog, vm.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(&buf, prog.Len()+1, nil); err == nil ||
		!strings.Contains(err.Error(), "recording is for") {
		t.Errorf("err = %v", err)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(strings.NewReader("not a trace"), 10, nil); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Replay(strings.NewReader(""), 10, nil); err == nil {
		t.Error("empty accepted")
	}
	// Valid header, truncated body.
	prog := workloads.MustGet("gzip").Build(5)
	var buf bytes.Buffer
	if _, err := Record(prog, vm.Config{}, &buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := Replay(bytes.NewReader(cut), prog.Len(), nil); err == nil {
		t.Error("truncated recording accepted")
	}
}

func TestWriterDoubleClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(vm.Stats{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(vm.Stats{}); err == nil {
		t.Error("double close accepted")
	}
	// Writes after close are dropped silently.
	w.TakenBranch(1, 2, vm.KindJump)
	if w.Branches() != 0 {
		t.Error("branch recorded after close")
	}
}

func TestRecordingIsCompact(t *testing.T) {
	prog := workloads.MustGet("gcc").Build(20)
	var buf bytes.Buffer
	st, err := Record(prog, vm.Config{}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	perBranch := float64(buf.Len()) / float64(st.Branches)
	// Delta-varint encoding should average a handful of bytes per branch,
	// far below the 9-byte fixed encoding.
	if perBranch > 6 {
		t.Errorf("%.2f bytes/branch; encoding not compact", perBranch)
	}
}
