package lint

import (
	"go/ast"
	"go/types"
)

// pooledField is one component field of an //lint:pooled struct, with the
// declaration site diagnostics anchor to.
type pooledField struct {
	owner *types.TypeName
	field *types.Var
	decl  *ast.Field
	armed bool
}

// ScratchClean returns the scratchclean analyzer. It generalizes resetclean
// to the pooled-components pattern: a struct marked //lint:pooled is a
// scratch space whose fields hold reusable components that are re-armed at
// their point of use rather than by a single Reset method. For every field
// of every pooled struct, the analyzer searches the whole module for a
// re-arm site:
//
//   - a whole-value overwrite — s.f = v, or *p = v through a local bound to
//     &s.f;
//   - a method call on the field — s.f.M(...), or p.M(...) through such a
//     local;
//   - the field's address passed to a call — use(&s.f) — which hands it to
//     an armer.
//
// A field with no re-arm site anywhere is reported at its declaration: a
// component that is pooled but never re-armed carries state from the
// previous run into the next one. Fields annotated //lint:keep (with a
// reason) deliberately survive reuse and are exempt.
func ScratchClean() *Analyzer {
	a := &Analyzer{
		Name: "scratchclean",
		Doc:  "every component field of an //lint:pooled struct is re-armed on some reuse path",
	}
	a.RunModule = func(pass *ModulePass) { runScratchClean(pass) }
	return a
}

func runScratchClean(pass *ModulePass) {
	fields := collectPooledFields(pass.Module)
	if len(fields) == 0 {
		return
	}
	byVar := map[*types.Var]*pooledField{}
	for _, pf := range fields {
		byVar[pf.field] = pf
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				markArmedFields(pkg.Info, fd.Body, byVar)
			}
		}
	}
	for _, pf := range fields {
		if pf.armed {
			continue
		}
		pass.Reportf(pf.decl.Pos(),
			"field %s of //lint:pooled struct %s is never re-armed (no overwrite, method call, or address escape on any reuse path)",
			pf.field.Name(), pf.owner.Name())
	}
}

// collectPooledFields finds every struct type annotated //lint:pooled and
// returns its fields, minus //lint:keep carve-outs, in declaration order.
func collectPooledFields(m *Module) []*pooledField {
	var out []*pooledField
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasDirective(gd.Doc, verbPooled) && !hasDirective(ts.Doc, verbPooled) && !hasDirective(ts.Comment, verbPooled) {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if _, keep := keepReason(field); keep {
							continue
						}
						for _, name := range field.Names {
							fv, ok := pkg.Info.Defs[name].(*types.Var)
							if !ok {
								continue
							}
							out = append(out, &pooledField{owner: tn, field: fv, decl: field})
						}
					}
				}
			}
		}
	}
	return out
}

// markArmedFields scans one function body for re-arm sites of pooled fields
// and marks the fields it finds.
func markArmedFields(info *types.Info, body *ast.BlockStmt, byVar map[*types.Var]*pooledField) {
	// fieldOf resolves a selector expression to a pooled field, if any.
	fieldOf := func(e ast.Expr) *pooledField {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return byVar[v]
			}
		}
		return nil
	}
	// addrOf resolves &s.f to the pooled field it points at.
	addrOf := func(e ast.Expr) *pooledField {
		un, ok := ast.Unparen(e).(*ast.UnaryExpr)
		if !ok || un.Op.String() != "&" {
			return nil
		}
		return fieldOf(un.X)
	}
	// First pass: locals bound to a pooled field's address, in either a
	// short declaration or a plain assignment (p := &s.f / p = &s.f).
	alias := map[types.Object]*pooledField{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			pf := addrOf(rhs)
			if pf == nil {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.ObjectOf(id); obj != nil {
				alias[obj] = pf
			}
		}
		return true
	})
	// aliasedOf resolves an identifier (or *ident) back to the pooled field
	// its local points at.
	aliasedOf := func(e ast.Expr) *pooledField {
		e = ast.Unparen(e)
		if st, ok := e.(*ast.StarExpr); ok {
			e = ast.Unparen(st.X)
		}
		if id, ok := e.(*ast.Ident); ok {
			return alias[info.ObjectOf(id)]
		}
		return nil
	}
	// Second pass: overwrites, method calls, and address escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if pf := fieldOf(lhs); pf != nil {
					pf.armed = true
				}
				if pf := aliasedOf(lhs); pf != nil {
					pf.armed = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if pf := fieldOf(sel.X); pf != nil {
					pf.armed = true
				}
				if pf := aliasedOf(sel.X); pf != nil {
					pf.armed = true
				}
			}
			for _, arg := range x.Args {
				if pf := addrOf(arg); pf != nil {
					pf.armed = true
				}
			}
		}
		return true
	})
}
