// Package pooledpkg exercises the scratchclean analyzer: a pooled scratch
// struct whose fields are re-armed through every shape the analyzer
// recognizes, plus one that never is.
package pooledpkg

type comp struct{ n int }

func (c *comp) Reset() { c.n = 0 }

func (c *comp) Load(n int) { c.n = n }

type table struct{ m map[int]int }

func arm(t *table) { t.m = nil }

// Scratch pools reusable components between runs.
//
//lint:pooled components re-armed in Acquire
type Scratch struct {
	direct  comp  // overwritten wholesale in Acquire
	viaCall comp  // method call through the field selector
	viaPtr  comp  // method call through a local bound to its address
	viaStar comp  // deref overwrite through such a local
	escapes table // address passed to an armer
	stale   comp  // want "field stale of //lint:pooled struct Scratch is never re-armed"
	legacy  comp  //lint:ignore scratchclean fixture: suppressed true positive stays suppressed
	runs    int   //lint:keep run counter deliberately survives reuse
}

// Acquire is the reuse path: every live component is re-armed here.
func Acquire(s *Scratch) *comp {
	s.direct = comp{}
	s.viaCall.Load(1)
	p := &s.viaPtr
	p.Reset()
	q := &s.viaStar
	*q = comp{}
	arm(&s.escapes)
	s.runs++
	return p
}
