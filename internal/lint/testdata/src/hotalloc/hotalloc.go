// Package hotalloc is the hotpathalloc fixture: every construct the
// analyzer flags, the cold-path exemptions, domination propagation, and
// directive suppression.
package hotalloc

import "fmt"

type sink struct{ vals []int }

// Hot is an annotated root: every allocating construct below must be
// reported.
//
//lint:hotpath
func Hot(s *sink, n int) {
	m := map[int]int{} // want "map literal allocates"
	_ = m
	sl := []int{1, 2, 3} // want "slice literal allocates"
	_ = sl
	buf := make([]byte, n) // want "make on a hot path"
	_ = buf
	s.vals = append(s.vals, n) // reuse-append: no finding
	other := append(s.vals, n) // want "append result is not reassigned"
	_ = other
	msg := fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates"
	msg += "!"                    // want "string concatenation allocates"
	_ = msg
	p := &sink{} // want "address-taken composite literal"
	_ = p
	q := new(sink) // want "new allocates"
	_ = q
	f := func() int { return n } // want "closure captures .n. and may allocate"
	_ = f()
	box(n) // want "conversion of non-pointer int"
	box(s) // pointer conversion: no finding
	helper(s)
	Exported(s)
}

func box(v any) { _ = v }

// helper is unexported and every caller (Hot) is hot, so hotness propagates
// and its allocation is reported without an annotation.
func helper(s *sink) {
	s.vals = make([]int, 8) // want "make on a hot path"
}

// Exported is never dominated — external callers may be cold — so its
// allocation is not reported.
func Exported(s *sink) {
	s.vals = make([]int, 8)
}

// Suppressed demonstrates //lint:ignore on a true positive.
//
//lint:hotpath
func Suppressed(n int) []int {
	//lint:ignore hotpathalloc fixture demonstrates suppression
	return make([]int, n)
}

// Guarded demonstrates the growth-guard and pool-miss exemptions.
//
//lint:hotpath
func Guarded(s *sink, n int) *sink {
	if n >= len(s.vals) {
		grown := make([]int, n+1) // len-guarded growth: no finding
		copy(grown, s.vals)
		s.vals = grown
	}
	if len(s.vals) > 0 {
		return s
	}
	return &sink{vals: make([]int, 1)} // after a len-guarded return: no finding
}

// SwitchGuarded demonstrates the switch-shaped growth guards: a case
// expression, a switch tag, or a switch init mentioning len/cap/nil marks
// the dispatch as growth handling.
//
//lint:hotpath
func SwitchGuarded(s *sink, n int) {
	switch {
	case cap(s.vals) < n:
		s.vals = make([]int, n) // case-guarded growth: no finding
	case n == 0:
		s.vals = make([]int, 1) // want "make on a hot path"
	}
	switch len(s.vals) {
	case 0:
		s.vals = make([]int, 8) // tag-guarded lazy init: no finding
	}
	switch c := cap(s.vals); {
	case c < n:
		s.vals = make([]int, n) // init-guarded growth: no finding
	}
}

// CopyGrow demonstrates the copy-based reslice-grow idiom: the copy into
// the fresh slice proves the make is a growth event even with no visible
// len/cap guard.
//
//lint:hotpath
func CopyGrow(s *sink, n int) {
	grown := make([]int, n) // followed by copy(grown, ...): no finding
	copy(grown, s.vals)
	s.vals = grown
	loose := make([]int, n) // want "make on a hot path"
	copy(s.vals, loose)     // copies FROM it, not into it: still an allocation
	_ = loose
}

// escaped is used as a value below, so domination can never be proven and
// its allocation is not reported even though its only caller is hot.
func escaped() []int { return make([]int, 4) }

//lint:hotpath
func CallsEscaped() []int { return escaped() }

var hook = escaped

var _ = hook
