// Package resetpkg is the resetclean fixture: a missed field, a
// //lint:keep annotation, whole-struct stores, delegation through method
// calls and call arguments, and directive suppression.
package resetpkg

// Pool misses one field in Reset (a true positive) and keeps another by
// annotation.
type Pool struct {
	a int
	b []byte
	//lint:keep capacity hint, deliberately reused across generations
	capHint int
	stale   map[string]int // want "field stale of Pool is not reset"
}

func (p *Pool) Reset() {
	p.a = 0
	p.b = p.b[:0]
}

// Whole resets via a whole-struct store, which covers every field.
type Whole struct {
	x, y int
}

func (w *Whole) Reset() { *w = Whole{} }

// inner's own Reset is also checked (and is clean).
type inner struct{ n int }

func (s *inner) Reset() { s.n = 0 }

// Outer delegates one field's reset to a method call and one to a builtin
// call argument.
type Outer struct {
	sub  inner
	m    map[string]bool
	tick int
}

func (o *Outer) Reset() {
	o.sub.Reset()
	clear(o.m)
	o.tick = 0
}

// Quiet demonstrates //lint:ignore on a true positive.
type Quiet struct {
	//lint:ignore resetclean fixture demonstrates suppression
	leftover int
}

func (q *Quiet) Reset() {}

// ByValue has a value receiver, which cannot reset the pooled instance;
// the analyzer does not model it.
type ByValue struct{ n int }

func (b ByValue) Reset() {}

// Meta mirrors the adaptive meta-selector's Reset shape: a fixed array of
// sub-components re-armed element by element through an indexed method
// call, a nested detector re-armed through a helper method, and plain
// counters cleared directly.
type Meta struct {
	subs [4]inner
	det  inner
	cool int
}

func (m *Meta) Reset() {
	for i := range m.subs {
		m.subs[i].Reset()
	}
	m.det.Reset()
	m.cool = 0
}

// MetaLoose ranges over its sub-components by value, so each Reset re-arms
// a copy and the array keeps its stale state — the analyzer reports the
// field because no assignment, call argument, or method call roots in it.
// Index the field directly (Meta above) or annotate a deliberate carry-over
// with //lint:keep.
type MetaLoose struct {
	subs [4]inner // want "field subs of MetaLoose is not reset"
}

func (m *MetaLoose) Reset() {
	for _, s := range m.subs {
		s.Reset()
	}
}
