// Package resetpkg is the resetclean fixture: a missed field, a
// //lint:keep annotation, whole-struct stores, delegation through method
// calls and call arguments, and directive suppression.
package resetpkg

// Pool misses one field in Reset (a true positive) and keeps another by
// annotation.
type Pool struct {
	a int
	b []byte
	//lint:keep capacity hint, deliberately reused across generations
	capHint int
	stale   map[string]int // want "field stale of Pool is not reset"
}

func (p *Pool) Reset() {
	p.a = 0
	p.b = p.b[:0]
}

// Whole resets via a whole-struct store, which covers every field.
type Whole struct {
	x, y int
}

func (w *Whole) Reset() { *w = Whole{} }

// inner's own Reset is also checked (and is clean).
type inner struct{ n int }

func (s *inner) Reset() { s.n = 0 }

// Outer delegates one field's reset to a method call and one to a builtin
// call argument.
type Outer struct {
	sub  inner
	m    map[string]bool
	tick int
}

func (o *Outer) Reset() {
	o.sub.Reset()
	clear(o.m)
	o.tick = 0
}

// Quiet demonstrates //lint:ignore on a true positive.
type Quiet struct {
	//lint:ignore resetclean fixture demonstrates suppression
	leftover int
}

func (q *Quiet) Reset() {}

// ByValue has a value receiver, which cannot reset the pooled instance;
// the analyzer does not model it.
type ByValue struct{ n int }

func (b ByValue) Reset() {}
