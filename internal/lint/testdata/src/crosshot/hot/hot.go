// Package hot is the caller side of the crosshot fixture.
package hot

import "fix/crosshot/dep"

// Drive is a hot root making every class of cross-package call.
//
//lint:hotpath fixture root
func Drive(d dep.Doer, x int) int {
	x = dep.Annotated(x)  // annotated: fine
	x = dep.Free(x)       // provably allocation-free: fine
	x = dep.FreeChain(x)  // allocation-free via call chain: fine
	x = dep.Mutual1(x)    // allocation-free cycle: fine
	_ = dep.Boxes(x)      // want "hot call into crosshot/dep.Boxes, which is neither //lint:hotpath nor provably allocation-free"
	_ = dep.MakesMap()    // want "hot call into crosshot/dep.MakesMap, which is neither //lint:hotpath nor provably allocation-free"
	_ = dep.CallsBoxes(x) // want "hot call into crosshot/dep.CallsBoxes, which is neither //lint:hotpath nor provably allocation-free"
	return helper(d, x)
}

// helper is unexported and called only from Drive, so hotness propagates to
// it and its cross-package calls are checked too.
func helper(d dep.Doer, x int) int {
	buf = dep.Grows(buf, x&15) // growth-guarded callee: fine
	x = d.Do(x)                // want "hot call into crosshot/dep.DirtyDoer.Do .via Doer.Do dispatch., which is neither //lint:hotpath nor provably allocation-free"
	_ = dep.Boxes(x)           //lint:ignore crosshot fixture: suppressed finding stays suppressed
	if buf == nil {
		// Cold sub-path: nil/len-style guards exempt the call site.
		return len(dep.MakesMap())
	}
	return x
}

var buf []int

// coldCaller is never called from a hot function, so nothing it does is
// flagged.
func coldCaller(x int) any { return dep.Boxes(x) }
