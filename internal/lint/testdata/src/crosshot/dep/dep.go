// Package dep is the callee side of the crosshot fixture: exported
// functions in each class a hot cross-package call can land in.
package dep

// Annotated is audited by hotpathalloc in its own package; hot callers may
// use it freely.
//
//lint:hotpath fixture root
func Annotated(x int) int { return x * 2 }

// Free is not annotated but provably allocation-free: plain arithmetic.
func Free(x int) int { return x + 1 }

// FreeChain is allocation-free through a call chain ending in Free.
func FreeChain(x int) int { return Free(x) * 3 }

// Boxes allocates: it implicitly converts its argument to an interface.
func Boxes(x int) any { return x }

// Grows allocates only behind a growth guard, so it is allocation-free in
// steady state.
func Grows(buf []int, n int) []int {
	if cap(buf) < n {
		grown := make([]int, n)
		copy(grown, buf)
		buf = grown
	}
	return buf[:n]
}

// MakesMap allocates unconditionally.
func MakesMap() map[string]int { return map[string]int{} }

// CallsBoxes is clean-bodied but calls an allocating sibling, so it is not
// allocation-free either.
func CallsBoxes(x int) any { return Boxes(x) }

// Mutual1 and Mutual2 form an allocation-free call cycle: the fixpoint must
// resolve both to free rather than diverging or defaulting to allocating.
func Mutual1(x int) int {
	if x <= 0 {
		return 0
	}
	return Mutual2(x - 1)
}

func Mutual2(x int) int {
	if x <= 0 {
		return 1
	}
	return Mutual1(x - 2)
}

// Doer is dispatched through by the hot caller fixture.
type Doer interface {
	Do(x int) int
}

// CleanDoer implements Doer without allocating.
type CleanDoer struct{ n int }

func (d *CleanDoer) Do(x int) int { return x + d.n }

// DirtyDoer implements Doer and allocates in Do.
type DirtyDoer struct{ sink []int }

func (d *DirtyDoer) Do(x int) int {
	d.sink = make([]int, x)
	return len(d.sink)
}
