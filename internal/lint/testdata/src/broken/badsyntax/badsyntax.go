// Package badsyntax is a load_test fixture: it does not parse.
package badsyntax

func Oops( {
