// Package badimport is a load_test fixture: its import cannot resolve.
package badimport

import "fix/broken/nosuchpackage"

var _ = nosuchpackage.X
