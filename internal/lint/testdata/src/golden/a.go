// Package golden pins diagnostic ordering and suppression for the golden
// test: findings from three analyzers across two files, sorted by file,
// line, column, and check.
package golden

type G struct {
	missing map[int]int
}

func (g *G) Reset() {}

//lint:hotpath
func HotA(n int) []int {
	return make([]int, n)
}
