package golden

//lint:hotpath
func HotB(n int) []int {
	//lint:ignore hotpathalloc suppressed in the golden output
	return make([]int, n)
}

func unsuppressed(n int) map[int]int {
	return make(map[int]int, n)
}

//lint:hotpath
func HotC(n int) map[int]int { return unsuppressed(n) }
