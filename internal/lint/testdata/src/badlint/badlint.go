// Package badlint exercises directive validation: malformed and unknown
// directives are themselves diagnostics of check "lint".
package badlint

//lint:ignore densemap
var x map[int]int

//lint:frobnicate yes
var y int

var (
	_ = x
	_ = y
)
