// Package epochpkg exercises the epochguard analyzer: one well-behaved
// epoch-guarded table, one that breaks each law.
package epochpkg

// cell is the stamped element of the well-behaved table.
type cell struct {
	id    int32
	epoch uint32
}

// Table owns a dense table of cells invalidated by epoch bump.
type Table struct {
	cells []cell
	epoch uint32
}

// Lookup guards the read: the stamp is compared before id is trusted.
func (t *Table) Lookup(i int, id int32) bool {
	c := t.cells[i]
	if c.epoch != t.epoch {
		return false
	}
	return c.id == id
}

// BadPeek trusts a cell field without checking its stamp, so it can observe
// a value written before the last Reset.
func (t *Table) BadPeek(i int) int32 {
	return t.cells[i].id // want "read of epoch-guarded field cell.id without comparing cell.epoch against Table.epoch in this function"
}

// PeekEpoch reads only the stamp itself, which needs no guard.
func (t *Table) PeekEpoch(i int) uint32 { return t.cells[i].epoch }

// Insert stamps the cell from the owner's counter: fine.
func (t *Table) Insert(i int, id int32) {
	t.cells[i] = cell{id: id, epoch: t.epoch}
}

// Reset clears in O(1) by bumping the counter.
func (t *Table) Reset() {
	t.epoch++
}

// Nuke rewrites the whole table, defeating O(1) invalidation.
func (t *Table) Nuke() {
	clear(t.cells) // want "full clear of epoch-guarded table Table.cells; invalidate by bumping Table.epoch instead"
	t.epoch++
}

// Wrap mirrors the epoch-wraparound clear — the one legitimate full rewrite,
// carrying its reason.
func (t *Table) Wrap() {
	t.epoch++
	if t.epoch == 0 {
		clear(t.cells) //lint:ignore epochguard fixture: wraparound is the one sound full clear
		t.epoch = 1
	}
}

// bcell/BadTable break the idiom in every way the analyzer covers.
type bcell struct {
	val   uint64
	epoch uint32
}

type BadTable struct {
	cells []bcell
	epoch uint32
}

// Reset rewrites every cell instead of bumping the counter: both the missing
// bump and the rewrite loop are flagged.
func (t *BadTable) Reset() { // want "must bump BadTable.epoch"
	for i := range t.cells { // want "iterating epoch-guarded table BadTable.cells to rewrite cells; invalidate by bumping BadTable.epoch instead"
		t.cells[i] = bcell{}
	}
}

// Stamp writes a constant epoch: under wraparound a stale cell could later
// read as live.
func (t *BadTable) Stamp(i int) {
	t.cells[i] = bcell{val: 1, epoch: 7} // want "cell bcell stamped with an epoch not read from BadTable.epoch"
}

// StampPositional does the same through a positional literal.
func (t *BadTable) StampPositional(i int) {
	t.cells[i] = bcell{2, 9} // want "cell bcell stamped with an epoch not read from BadTable.epoch"
}
