// Package densepkg is the densemap fixture: integer-underlying map keys are
// flagged in configured hot packages, string keys and allowlisted files are
// not, and //lint:ignore suppresses single sites.
package densepkg

// Addr mirrors isa.Addr: a named type with integer underlying type.
type Addr uint32

type table struct {
	byAddr map[Addr]int // want "map.fix/densepkg.Addr. state in hot package"
	byName map[string]int
}

func newTable() *table {
	return &table{
		byAddr: make(map[Addr]int), // want "map.fix/densepkg.Addr. state in hot package"
		byName: make(map[string]int),
	}
}

//lint:ignore densemap fixture demonstrates preceding-line suppression
var quiet map[int]bool

var quiet2 map[uint16]string //lint:ignore densemap fixture demonstrates same-line suppression

var (
	_ = newTable
	_ = quiet
	_ = quiet2
)
