package densepkg

// This file is allowlisted in the test's DenseMapConfig, so its maps are
// not reported.
var allowed map[int]string

var _ = allowed
