package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc returns the hotpathalloc analyzer: inside functions annotated
// //lint:hotpath — and transitively inside unexported same-package callees
// that hot functions dominate (every in-package caller is hot and the
// function is never used as a value) — it flags heap-allocating constructs:
// map/slice literals, address-taken composite literals, un-hinted make and
// non-reusing append, closures that capture variables, implicit conversions
// of non-pointer values to interfaces, fmt calls, and string concatenation.
//
// Cold sub-paths are exempt: code guarded by a len/cap/nil condition (growth
// and lazy-init), code inside or after a len/cap-guarded early return (pool
// miss), and code on blocks that end by returning a non-nil error or
// panicking.
func HotPathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "flag heap-allocating constructs in //lint:hotpath functions and dominated callees",
	}
	a.Run = func(pass *Pass) { runHotPathAlloc(pass) }
	return a
}

func runHotPathAlloc(pass *Pass) {
	info := pass.Info
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Build the in-package call graph, tracking function values used outside
	// call position (those can be invoked from anywhere, so they cannot be
	// dominated) and calls made outside any function declaration.
	callers := map[*types.Func]map[*types.Func]bool{}
	escaped := map[*types.Func]bool{}
	calleeIdents := map[*ast.Ident]bool{}
	for _, f := range pass.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id := calleeIdent(call)
			if id == nil {
				return true
			}
			callee, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, inPkg := decls[callee]; !inPkg {
				return true
			}
			calleeIdents[id] = true
			caller := enclosingFuncDecl(info, stack)
			if caller == nil {
				escaped[callee] = true
				return true
			}
			if callers[callee] == nil {
				callers[callee] = map[*types.Func]bool{}
			}
			callers[callee][caller] = true
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := info.Uses[id].(*types.Func); ok {
				if _, inPkg := decls[fn]; inPkg {
					escaped[fn] = true
				}
			}
			return true
		})
	}

	// Seed from annotations, then propagate hotness to dominated callees.
	hot := map[*types.Func]bool{}
	for fn, fd := range decls {
		if hasDirective(fd.Doc, verbHotpath) {
			hot[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if hot[fn] || escaped[fn] || ast.IsExported(fd.Name.Name) {
				continue
			}
			nonSelf, all := 0, true
			for c := range callers[fn] {
				if c == fn {
					continue
				}
				nonSelf++
				if !hot[c] {
					all = false
				}
			}
			if nonSelf > 0 && all {
				hot[fn] = true
				changed = true
			}
		}
	}

	for fn, fd := range decls {
		if hot[fn] {
			checkHotFunc(pass, fn, fd)
		}
	}
}

// calleeIdent returns the identifier naming a call's callee (for plain and
// selector calls), or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

// enclosingFuncDecl finds the function declaration an AST node sits in.
func enclosingFuncDecl(info *types.Info, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			fn, _ := info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}

// checkHotFunc walks one hot function body reporting allocation candidates
// that no cold-path exemption covers.
func checkHotFunc(pass *Pass, fn *types.Func, fd *ast.FuncDecl) {
	info := pass.Info
	declSig := fn.Type().(*types.Signature)
	selfAppends := map[*ast.CallExpr]bool{}

	report := func(n ast.Node, stack []ast.Node, format string, args ...any) {
		if !coldExempt(info, n, stack) {
			pass.Reportf(n.Pos(), format, args...)
		}
	}

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				report(x, stack, "map literal allocates on a hot path")
			case *types.Slice:
				report(x, stack, "slice literal allocates on a hot path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					switch info.TypeOf(lit).Underlying().(type) {
					case *types.Map, *types.Slice:
						// Flagged at the literal itself.
					default:
						report(x, stack, "address-taken composite literal escapes to the heap on a hot path")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, x, stack, selfAppends, report)
		case *ast.AssignStmt:
			checkHotAssign(pass, x, stack, selfAppends, report)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				report(x, stack, "string concatenation allocates on a hot path")
			}
		case *ast.FuncLit:
			if name := capturedVar(info, x); name != "" {
				report(x, stack, "closure captures %q and may allocate on a hot path", name)
			}
		case *ast.ReturnStmt:
			sig := declSig
			for i := len(stack) - 1; i >= 0; i-- {
				if lit, ok := stack[i].(*ast.FuncLit); ok {
					if s, ok := info.TypeOf(lit).(*types.Signature); ok {
						sig = s
					}
					break
				}
			}
			if sig.Results().Len() == len(x.Results) {
				for i, res := range x.Results {
					checkIfaceConv(pass, res, sig.Results().At(i).Type(), stack)
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				if t := info.TypeOf(x.Type); t != nil {
					for _, v := range x.Values {
						checkIfaceConv(pass, v, t, stack)
					}
				}
			}
		}
		return true
	})
}

// checkHotCall handles the call-shaped candidates: make/new/append builtins,
// fmt calls, and interface-boxing argument conversions.
func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node, selfAppends map[*ast.CallExpr]bool, report func(ast.Node, []ast.Node, string, ...any)) {
	info := pass.Info
	if isTypeConversion(info, call) {
		return
	}
	switch builtinName(info, call) {
	case "make":
		report(call, stack, "make on a hot path without a len/cap growth guard")
		return
	case "new":
		report(call, stack, "new allocates on a hot path")
		return
	case "append":
		if !selfAppends[call] {
			report(call, stack, "append result is not reassigned to its destination on a hot path")
		}
		return
	case "":
	default:
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				report(call, stack, "fmt.%s allocates on a hot path", sel.Sel.Name)
				return
			}
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkIfaceConvAt(pass, arg, pt, stack)
	}
}

// checkHotAssign records which appends reuse their destination and flags
// string concatenation via += and interface-boxing plain assignments.
func checkHotAssign(pass *Pass, as *ast.AssignStmt, stack []ast.Node, selfAppends map[*ast.CallExpr]bool, report func(ast.Node, []ast.Node, string, ...any)) {
	info := pass.Info
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(info.TypeOf(as.Lhs[0])) {
		report(as, stack, "string concatenation allocates on a hot path")
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(info, call) == "append" && len(call.Args) > 0 {
				dst := types.ExprString(as.Lhs[i])
				src := call.Args[0]
				if se, ok := ast.Unparen(src).(*ast.SliceExpr); ok {
					src = se.X
				}
				if types.ExprString(src) == dst {
					selfAppends[call] = true
				}
			}
			if as.Tok == token.ASSIGN {
				checkIfaceConv(pass, rhs, info.TypeOf(as.Lhs[i]), stack)
			}
		}
	}
}

// checkIfaceConv flags implicit conversions of non-pointer concrete values
// to interface types — each one boxes its operand on the heap.
func checkIfaceConv(pass *Pass, expr ast.Expr, target types.Type, stack []ast.Node) {
	checkIfaceConvAt(pass, expr, target, stack)
}

func checkIfaceConvAt(pass *Pass, expr ast.Expr, target types.Type, stack []ast.Node) {
	info := pass.Info
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil { // constants are boxed from static data
		return
	}
	t := tv.Type
	if t == nil || types.IsInterface(t) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		if b, ok := t.Underlying().(*types.Basic); !ok || b.Kind() == types.UntypedNil {
			return
		}
	}
	if coldExempt(info, expr, stack) {
		return
	}
	pass.Reportf(expr.Pos(), "conversion of non-pointer %s to interface %s boxes on a hot path", t, target)
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of some variable a closure captures from an
// enclosing function scope, or "" when the closure is capture-free.
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (params, locals)
		}
		if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
			return true // package-level variable, not a capture
		}
		name = v.Name()
		return false
	})
	return name
}

// coldExempt reports whether the candidate node sits on a cold sub-path of a
// hot function: under a len/cap/nil-guarded branch, after a len/cap-guarded
// early return, inside an error return, or in a block that unconditionally
// ends by returning an error or panicking.
func coldExempt(info *types.Info, n ast.Node, stack []ast.Node) bool {
	childAt := func(i int) ast.Node {
		if i+1 < len(stack) {
			return stack[i+1]
		}
		return n
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ReturnStmt:
			if returnsError(info, a) {
				return true
			}
		case *ast.IfStmt:
			child := childAt(i)
			if (child == ast.Node(a.Body) || child == a.Else) && ifGuardsLenCapNil(info, a) {
				return true
			}
		}
		if stmts := blockStmts(stack[i]); len(stmts) > 0 {
			last := stmts[len(stmts)-1]
			if isPanicCall(info, last) {
				return true
			}
			if ret, ok := last.(*ast.ReturnStmt); ok && returnsError(info, ret) {
				return true
			}
			child := childAt(i)
			for _, s := range stmts {
				if ast.Node(s) == child {
					break
				}
				if guardedEarlyReturn(info, s) {
					return true
				}
			}
		}
	}
	return false
}

// guardedEarlyReturn matches the pool-hit shape: an if statement whose
// condition involves len/cap/nil and whose body ends by returning — code
// after it only runs on the miss path.
func guardedEarlyReturn(info *types.Info, s ast.Stmt) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || !ifGuardsLenCapNil(info, ifs) || len(ifs.Body.List) == 0 {
		return false
	}
	last := ifs.Body.List[len(ifs.Body.List)-1]
	if _, ok := last.(*ast.ReturnStmt); ok {
		return true
	}
	return isPanicCall(info, last)
}
