package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc returns the hotpathalloc analyzer: inside functions on the
// module-wide hot set — //lint:hotpath-annotated roots plus unexported
// same-package callees that hot functions dominate (every visible caller is
// hot and the function is never used as a value) — it flags heap-allocating
// constructs: map/slice literals, address-taken composite literals,
// un-hinted make and non-reusing append, closures that capture variables,
// implicit conversions of non-pointer values to interfaces, fmt calls, and
// string concatenation.
//
// Cold sub-paths are exempt: code guarded by a len/cap/nil condition
// (growth and lazy-init), code inside or after a len/cap-guarded early
// return (pool miss), code on blocks that end by returning a non-nil error
// or panicking, switch cases whose switch or case expressions mention
// len/cap/nil, and the copy-based reslice-grow idiom (g := make(...);
// copy(g, old)).
//
// The hot set and per-body scan are shared with crosshot, which extends the
// same discipline across package boundaries.
func HotPathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "flag heap-allocating constructs in //lint:hotpath functions and dominated callees",
	}
	a.RunModule = func(pass *ModulePass) {
		for _, n := range pass.Graph().NodeList() {
			if n.Hot {
				scanAllocs(n.Pkg, n.Fn, n.Decl, pass.Reportf)
			}
		}
	}
	return a
}

// bodyHasAlloc probes whether a function body contains any non-exempt
// allocation candidate — the body half of the call graph's allocation-free
// fixpoint (call edges are judged separately).
func bodyHasAlloc(pkg *Package, fn *types.Func, fd *ast.FuncDecl) bool {
	found := false
	scanAllocs(pkg, fn, fd, func(token.Pos, string, ...any) { found = true })
	return found
}

// scanAllocs walks one function body reporting each allocation candidate
// that no cold-path exemption covers.
func scanAllocs(pkg *Package, fn *types.Func, fd *ast.FuncDecl, reportf func(pos token.Pos, format string, args ...any)) {
	info := pkg.Info
	declSig := fn.Type().(*types.Signature)
	selfAppends := map[*ast.CallExpr]bool{}

	report := func(n ast.Node, stack []ast.Node, format string, args ...any) {
		if !coldExempt(info, n, stack) {
			reportf(n.Pos(), format, args...)
		}
	}

	walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				report(x, stack, "map literal allocates on a hot path")
			case *types.Slice:
				report(x, stack, "slice literal allocates on a hot path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					switch info.TypeOf(lit).Underlying().(type) {
					case *types.Map, *types.Slice:
						// Flagged at the literal itself.
					default:
						report(x, stack, "address-taken composite literal escapes to the heap on a hot path")
					}
				}
			}
		case *ast.CallExpr:
			checkHotCall(info, x, stack, selfAppends, report)
		case *ast.AssignStmt:
			checkHotAssign(info, x, stack, selfAppends, report)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info.TypeOf(x)) {
				report(x, stack, "string concatenation allocates on a hot path")
			}
		case *ast.FuncLit:
			if name := capturedVar(info, x); name != "" {
				report(x, stack, "closure captures %q and may allocate on a hot path", name)
			}
		case *ast.ReturnStmt:
			sig := declSig
			for i := len(stack) - 1; i >= 0; i-- {
				if lit, ok := stack[i].(*ast.FuncLit); ok {
					if s, ok := info.TypeOf(lit).(*types.Signature); ok {
						sig = s
					}
					break
				}
			}
			if sig.Results().Len() == len(x.Results) {
				for i, res := range x.Results {
					checkIfaceConv(info, res, sig.Results().At(i).Type(), stack, report)
				}
			}
		case *ast.ValueSpec:
			if x.Type != nil {
				if t := info.TypeOf(x.Type); t != nil {
					for _, v := range x.Values {
						checkIfaceConv(info, v, t, stack, report)
					}
				}
			}
		}
		return true
	})
}

// checkHotCall handles the call-shaped candidates: make/new/append builtins,
// fmt calls, and interface-boxing argument conversions.
func checkHotCall(info *types.Info, call *ast.CallExpr, stack []ast.Node, selfAppends map[*ast.CallExpr]bool, report func(ast.Node, []ast.Node, string, ...any)) {
	if isTypeConversion(info, call) {
		return
	}
	switch builtinName(info, call) {
	case "make":
		if !copyGrowExempt(info, call, stack) {
			report(call, stack, "make on a hot path without a len/cap growth guard")
		}
		return
	case "new":
		report(call, stack, "new allocates on a hot path")
		return
	case "append":
		if !selfAppends[call] {
			report(call, stack, "append result is not reassigned to its destination on a hot path")
		}
		return
	case "":
	default:
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pkg, ok := info.Uses[id].(*types.PkgName); ok && pkg.Imported().Path() == "fmt" {
				report(call, stack, "fmt.%s allocates on a hot path", sel.Sel.Name)
				return
			}
		}
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		checkIfaceConvAt(info, arg, pt, stack, report)
	}
}

// checkHotAssign records which appends reuse their destination and flags
// string concatenation via += and interface-boxing plain assignments.
func checkHotAssign(info *types.Info, as *ast.AssignStmt, stack []ast.Node, selfAppends map[*ast.CallExpr]bool, report func(ast.Node, []ast.Node, string, ...any)) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(info.TypeOf(as.Lhs[0])) {
		report(as, stack, "string concatenation allocates on a hot path")
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(info, call) == "append" && len(call.Args) > 0 {
				dst := types.ExprString(as.Lhs[i])
				src := call.Args[0]
				if se, ok := ast.Unparen(src).(*ast.SliceExpr); ok {
					src = se.X
				}
				if types.ExprString(src) == dst {
					selfAppends[call] = true
				}
			}
			if as.Tok == token.ASSIGN {
				checkIfaceConv(info, rhs, info.TypeOf(as.Lhs[i]), stack, report)
			}
		}
	}
}

// checkIfaceConv flags implicit conversions of non-pointer concrete values
// to interface types — each one boxes its operand on the heap.
func checkIfaceConv(info *types.Info, expr ast.Expr, target types.Type, stack []ast.Node, report func(ast.Node, []ast.Node, string, ...any)) {
	checkIfaceConvAt(info, expr, target, stack, report)
}

func checkIfaceConvAt(info *types.Info, expr ast.Expr, target types.Type, stack []ast.Node, report func(ast.Node, []ast.Node, string, ...any)) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil { // constants are boxed from static data
		return
	}
	t := tv.Type
	if t == nil || types.IsInterface(t) {
		return
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		if b, ok := t.Underlying().(*types.Basic); !ok || b.Kind() == types.UntypedNil {
			return
		}
	}
	report(expr, stack, "conversion of non-pointer %s to interface %s boxes on a hot path", t, target)
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedVar returns the name of some variable a closure captures from an
// enclosing function scope, or "" when the closure is capture-free.
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (params, locals)
		}
		if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
			return true // package-level variable, not a capture
		}
		name = v.Name()
		return false
	})
	return name
}

// coldExempt reports whether the candidate node sits on a cold sub-path of a
// hot function: under a len/cap/nil-guarded branch or switch case, after a
// len/cap-guarded early return, inside an error return, or in a block that
// unconditionally ends by returning an error or panicking.
func coldExempt(info *types.Info, n ast.Node, stack []ast.Node) bool {
	childAt := func(i int) ast.Node {
		if i+1 < len(stack) {
			return stack[i+1]
		}
		return n
	}
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.ReturnStmt:
			if returnsError(info, a) {
				return true
			}
		case *ast.IfStmt:
			child := childAt(i)
			if (child == ast.Node(a.Body) || child == a.Else) && ifGuardsLenCapNil(info, a) {
				return true
			}
		case *ast.SwitchStmt:
			// A switch whose init or tag involves len/cap/nil guards all of
			// its cases (the multi-way growth dispatch: switch { case cap(x)
			// < n: ... }); an individual case guarded the same way covers
			// just that clause.
			if a.Init != nil && mentionsLenCapNil(info, a.Init) {
				return true
			}
			if a.Tag != nil && mentionsLenCapNil(info, a.Tag) {
				return true
			}
		case *ast.CaseClause:
			for _, e := range a.List {
				if mentionsLenCapNil(info, e) {
					return true
				}
			}
		}
		if stmts := blockStmts(stack[i]); len(stmts) > 0 {
			last := stmts[len(stmts)-1]
			if isPanicCall(info, last) {
				return true
			}
			if ret, ok := last.(*ast.ReturnStmt); ok && returnsError(info, ret) {
				return true
			}
			child := childAt(i)
			for _, s := range stmts {
				if ast.Node(s) == child {
					break
				}
				if guardedEarlyReturn(info, s) {
					return true
				}
			}
		}
	}
	return false
}

// copyGrowExempt recognizes the copy-based reslice-grow idiom even when no
// enclosing len/cap guard is visible: the make's result is bound to a
// variable, and a later statement of the same block copies the old contents
// into it (grown := make([]T, n); copy(grown, old)). The copy proves the
// make is a capacity-preserving reallocation — a growth event, not a
// steady-state allocation.
func copyGrowExempt(info *types.Info, call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	as, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != ast.Node(call) {
		return false
	}
	dstIdent, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	var dst types.Object
	if as.Tok == token.DEFINE {
		dst = info.Defs[dstIdent]
	} else {
		dst = info.Uses[dstIdent]
	}
	if dst == nil {
		return false
	}
	// Find the enclosing statement list and scan the statements after the
	// assignment for copy(dst, ...).
	for i := len(stack) - 2; i >= 0; i-- {
		stmts := blockStmts(stack[i])
		if stmts == nil {
			continue
		}
		seen := false
		for _, s := range stmts {
			if ast.Node(s) == ast.Node(as) {
				seen = true
				continue
			}
			if !seen {
				continue
			}
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			cp, ok := es.X.(*ast.CallExpr)
			if !ok || builtinName(info, cp) != "copy" || len(cp.Args) != 2 {
				continue
			}
			if id, ok := ast.Unparen(cp.Args[0]).(*ast.Ident); ok && info.Uses[id] == dst {
				return true
			}
		}
		return false
	}
	return false
}

// guardedEarlyReturn matches the pool-hit shape: an if statement whose
// condition involves len/cap/nil and whose body ends by returning — code
// after it only runs on the miss path.
func guardedEarlyReturn(info *types.Info, s ast.Stmt) bool {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || !ifGuardsLenCapNil(info, ifs) || len(ifs.Body.List) == 0 {
		return false
	}
	last := ifs.Body.List[len(ifs.Body.List)-1]
	if _, ok := last.(*ast.ReturnStmt); ok {
		return true
	}
	return isPanicCall(info, last)
}
