package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the module
// under analysis.
type Package struct {
	// Path is the package's import path (module path + relative directory).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the file set shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info
}

// Loader loads the packages of a single module, type-checking them against
// each other and against the standard library (resolved from source, so no
// pre-built export data is needed). It is the package-loading half of the
// analyzer framework: analyzers never load anything themselves.
type Loader struct {
	// Root is the absolute module root directory (the one holding go.mod).
	Root string
	// Module is the module path declared in go.mod.
	Module string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader returns a loader for the module rooted at root with the given
// module path.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:   root,
		Module: module,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		busy:   map[string]bool{},
	}
}

// ModuleRoot walks up from dir to the directory containing go.mod and
// returns its absolute path and the declared module path.
func ModuleRoot(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
	}
}

// Load resolves the given patterns ("./..." or "./relative/dir" forms) to
// package directories under the module root and loads each one. Results are
// sorted by import path.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.packageDirs(l.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, strings.TrimSuffix(pat, "/..."))
			walked, err := l.packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				dirs[d] = true
			}
		default:
			dirs[filepath.Join(l.Root, pat)] = true
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: patterns %q match no packages under %s", patterns, l.Root)
	}
	var pkgs []*Package
	for dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// packageDirs returns every directory under base holding at least one
// non-test .go file, skipping testdata, hidden, and underscore directories.
func (l *Loader) packageDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("lint: walking %s: %w", base, err)
	}
	sort.Strings(dirs)
	out := dirs[:0]
	for i, d := range dirs {
		if i == 0 || dirs[i-1] != d {
			out = append(out, d)
		}
	}
	return out, nil
}

// importPath maps an absolute package directory to its import path.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir (memoized by import
// path).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPath(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: reading package directory: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor resolves an import encountered while type-checking: module-local
// paths recurse into the loader, everything else is resolved from standard
// library source.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
		pkg, err := l.loadDir(filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
