package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// DenseMapConfig scopes the densemap analyzer.
type DenseMapConfig struct {
	// Packages lists the import paths where dense address-indexed slices are
	// the established policy; map types with integer-underlying keys are
	// flagged only there.
	Packages []string
	// AllowFiles lists base file names (within hot packages) that are
	// allowed to keep maps wholesale — the deliberately map-based measured
	// paths.
	AllowFiles []string
}

// DenseMap returns the densemap analyzer: inside the configured hot
// packages it flags every map type whose key has an integer underlying type
// (isa.Addr, int, block indexes, ...) — the dense-state migration replaced
// those with address-indexed slices, and new ones regress both speed and
// steady-state allocation behavior. Per-file allowlisting covers the
// deliberately map-based measured paths; single sites use //lint:ignore.
func DenseMap(cfg DenseMapConfig) *Analyzer {
	hot := map[string]bool{}
	for _, p := range cfg.Packages {
		hot[p] = true
	}
	allow := map[string]bool{}
	for _, f := range cfg.AllowFiles {
		allow[f] = true
	}
	a := &Analyzer{
		Name: "densemap",
		Doc:  "flag integer-keyed map state in hot packages where dense slices are the policy",
	}
	a.Run = func(pass *Pass) {
		if !hot[pass.Path] {
			return
		}
		for _, f := range pass.Files {
			name := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if allow[name] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				mt, ok := n.(*ast.MapType)
				if !ok {
					return true
				}
				kt := pass.Info.TypeOf(mt.Key)
				if kt == nil {
					return true
				}
				if b, ok := kt.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					pass.Reportf(mt.Pos(), "map[%s] state in hot package %s; use a dense address-indexed slice (docs/LINTING.md)", kt, pass.Path)
				}
				return true
			})
		}
	}
	return a
}
