// Package lint is a small stdlib-only analyzer framework plus the
// repo-specific analyzers that machine-check the invariants the performance
// PRs established: hot paths stay allocation-free (hotpathalloc), pooled
// Reset methods touch every field (resetclean), and hot packages index state
// by dense address slices rather than maps (densemap). See docs/LINTING.md
// for the rules and the annotation grammar.
package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// Analyzer is one named check. Per-package analyzers set Run, which
// inspects a single package through its Pass; whole-module analyzers set
// RunModule instead, which sees every loaded package and the shared call
// graph through a ModulePass. Exactly one of the two should be set; neither
// may retain its pass.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	*Package
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for stable file:line:col ordering.
type Diagnostic struct {
	Check   string
	Pos     token.Position
	Message string
}

// String formats the diagnostic with its file path relative to root (or
// absolute if it does not sit under root).
func (d Diagnostic) String(root string) string {
	name := d.Pos.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !filepath.IsAbs(rel) && rel[0] != '.' {
		name = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", name, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Run applies every analyzer to the loaded packages — per-package
// analyzers to each package, module analyzers to the whole set at once over
// a shared call graph — filters findings through the //lint:ignore
// directives, appends malformed-directive diagnostics, and returns the
// result sorted by file, line, column, check, and message.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	mod := NewModule(pkgs)
	dirs := map[string]*fileDirectives{}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fd := parseFileDirectives(pkg.Fset, f)
			dirs[pkg.Fset.Position(f.Pos()).Filename] = fd
			diags = append(diags, fd.malformed...)
		}
	}
	var found []Diagnostic
	report := func(d Diagnostic) { found = append(found, d) }
	for _, a := range analyzers {
		switch {
		case a.RunModule != nil:
			a.RunModule(&ModulePass{Module: mod, analyzer: a, report: report})
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Package: pkg, analyzer: a, report: report})
			}
		}
	}
	for _, d := range found {
		if !suppressed(dirs, d) {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		switch {
		case a.Pos.Filename != b.Pos.Filename:
			return a.Pos.Filename < b.Pos.Filename
		case a.Pos.Line != b.Pos.Line:
			return a.Pos.Line < b.Pos.Line
		case a.Pos.Column != b.Pos.Column:
			return a.Pos.Column < b.Pos.Column
		case a.Check != b.Check:
			return a.Check < b.Check
		default:
			return a.Message < b.Message
		}
	})
	return diags
}

// suppressed reports whether an //lint:ignore directive in the diagnostic's
// file covers it.
func suppressed(dirs map[string]*fileDirectives, d Diagnostic) bool {
	fd, ok := dirs[d.Pos.Filename]
	if !ok {
		return false
	}
	for _, ig := range fd.ignores {
		if ig.suppresses(d.Check, d.Pos.Line) {
			ig.used = true
			return true
		}
	}
	return false
}
