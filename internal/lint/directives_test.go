package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// validDirective re-derives, from the grammar alone, whether a directive
// comment is well-formed. It is the oracle FuzzDirectives checks the parser
// against.
func validDirective(text string) bool {
	verb, args, ok := parseDirective(text)
	if !ok {
		return true // not a directive at all: nothing to validate
	}
	switch verb {
	case verbHotpath, verbPooled:
		return true
	case verbKeep:
		return args != ""
	case verbIgnore:
		checks, reason, _ := strings.Cut(args, " ")
		if strings.TrimSpace(reason) == "" {
			return false
		}
		for _, c := range strings.Split(checks, ",") {
			if c == "" {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// FuzzDirectives feeds arbitrary comment lines through directive parsing:
// it must never panic, every malformed directive must surface as a "lint"
// diagnostic, and every well-formed ignore must register a suppression.
func FuzzDirectives(f *testing.F) {
	// Seeds: each documented form, then each near-miss of the grammar.
	for _, seed := range []string{
		"//lint:hotpath",
		"//lint:hotpath interpreter dispatch loop",
		"//lint:keep freed regions keep their backing array",
		"//lint:keep",
		"//lint:pooled",
		"//lint:pooled components re-armed in Acquire",
		"//lint:ignore hotpathalloc growth happens off the steady state",
		"//lint:ignore hotpathalloc,densemap cold slow path",
		"//lint:ignore hotpathalloc",
		"//lint:ignore",
		"//lint:ignore ,, double comma",
		"//lint:ignore  leading space",
		"//lint:frobnicate",
		"//lint:",
		"// lint:ignore x y",
		"//lint:ignore\ttab separated",
		"//nolint:hotpathalloc",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, line string) {
		if strings.ContainsAny(line, "\n\r") {
			t.Skip()
		}
		src := "package p\n\n" + line + "\nvar X int\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Skip() // the line was not a comment; nothing to parse
		}
		d := parseFileDirectives(fset, file) // must not panic
		var wantMalformed, wantIgnores int
		for _, group := range file.Comments {
			for _, c := range group.List {
				verb, _, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if !validDirective(c.Text) {
					wantMalformed++
				} else if verb == verbIgnore {
					wantIgnores++
				}
			}
		}
		if len(d.malformed) != wantMalformed {
			t.Errorf("line %q: %d malformed diagnostics, oracle wants %d", line, len(d.malformed), wantMalformed)
		}
		for _, diag := range d.malformed {
			if diag.Check != "lint" {
				t.Errorf("line %q: malformed diagnostic has check %q, want lint", line, diag.Check)
			}
			if diag.Pos.Line == 0 {
				t.Errorf("line %q: malformed diagnostic has no position", line)
			}
		}
		if len(d.ignores) != wantIgnores {
			t.Errorf("line %q: %d ignores registered, oracle wants %d", line, len(d.ignores), wantIgnores)
		}
		for _, ig := range d.ignores {
			if len(ig.checks) == 0 {
				t.Errorf("line %q: ignore registered with no checks", line)
			}
			for _, c := range ig.checks {
				if c == "" {
					t.Errorf("line %q: ignore registered with an empty check name", line)
				}
			}
		}
	})
}
