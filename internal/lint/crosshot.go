package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// CrossHotConfig scopes the crosshot analyzer.
type CrossHotConfig struct {
	// ColdPackages lists import paths whose declared methods are never
	// considered dispatch targets of a hot interface call and whose
	// functions are never reported as hot callees: test-support packages
	// (frozen reference selectors) that production hot paths can reach only
	// in the type system, never at run time. An entry ending in "/..."
	// covers the whole subtree.
	ColdPackages []string
	// ColdFiles lists base file names whose declared functions get the same
	// exemption within otherwise-hot packages — the related-work baseline
	// selectors that only comparison harnesses instantiate.
	ColdFiles []string
}

// CrossHot returns the crosshot analyzer: using the module call graph, it
// follows every call edge out of a hot function (//lint:hotpath roots plus
// their dominated callees, the same hot set hotpathalloc checks) across a
// package boundary, and reports any such edge whose target is neither
// //lint:hotpath-annotated nor provably allocation-free. Interface-dispatch
// edges are resolved conservatively: every module type whose method set
// satisfies the interface is a possible callee, except implementations from
// the configured cold packages/files. Call sites on cold sub-paths (nil
// guards, error returns — the hotpathalloc exemptions) are skipped.
//
// This closes the per-package blind spot: hotpathalloc enforces the
// no-allocation discipline inside each package, and crosshot guarantees the
// discipline cannot silently lapse at a package boundary — a hot call into
// another package lands either in audited (annotated) code or in code the
// analyzer itself can prove allocation-free.
func CrossHot(cfg CrossHotConfig) *Analyzer {
	coldPkg := map[string]bool{}
	var coldTrees []string
	for _, p := range cfg.ColdPackages {
		if tree, ok := strings.CutSuffix(p, "/..."); ok {
			coldTrees = append(coldTrees, tree)
			continue
		}
		coldPkg[p] = true
	}
	coldFile := map[string]bool{}
	for _, f := range cfg.ColdFiles {
		coldFile[f] = true
	}
	a := &Analyzer{
		Name: "crosshot",
		Doc:  "flag hot calls into unannotated, not provably allocation-free functions of other packages",
	}
	a.RunModule = func(pass *ModulePass) {
		g := pass.Graph()
		cold := func(n *Node) bool {
			if coldPkg[n.Pkg.Path] {
				return true
			}
			for _, tree := range coldTrees {
				if n.Pkg.Path == tree || strings.HasPrefix(n.Pkg.Path, tree+"/") {
					return true
				}
			}
			file := filepath.Base(pass.Fset.Position(n.Decl.Pos()).Filename)
			return coldFile[file]
		}
		for _, n := range g.NodeList() {
			if !n.Hot || cold(n) {
				continue
			}
			// Report one diagnostic per offending callee, but deduplicate
			// identical (site line, callee) pairs arising from repeated
			// resolution of the same dynamic call.
			seen := map[string]bool{}
			for _, e := range n.Out {
				callee := e.Callee
				if callee == nil || callee.Pkg == n.Pkg {
					continue
				}
				if callee.Annotated || cold(callee) || g.AllocFree(callee) {
					continue
				}
				if coldExempt(n.Pkg.Info, e.Site, e.Stack) {
					continue
				}
				name := funcDisplayName(callee)
				key := fmt.Sprintf("%d:%s", pass.Fset.Position(e.Site.Pos()).Line, name)
				if seen[key] {
					continue
				}
				seen[key] = true
				via := ""
				if e.Dynamic {
					via = fmt.Sprintf(" (via %s dispatch)", funcOwner(e.Iface))
				}
				pass.Reportf(e.Site.Pos(),
					"hot call into %s.%s%s, which is neither //lint:hotpath nor provably allocation-free",
					shortPkgPath(callee.Pkg.Path), name, via)
			}
		}
	}
	return a
}

// funcDisplayName renders a node's function as Name or Type.Method.
func funcDisplayName(n *Node) string {
	if n.Decl.Recv != nil && len(n.Decl.Recv.List) == 1 {
		return recvTypeName(n.Decl.Recv.List[0].Type) + "." + n.Fn.Name()
	}
	return n.Fn.Name()
}

// funcOwner renders an interface method as Interface.Method for dispatch
// attribution.
func funcOwner(m *types.Func) string {
	recv := m.Type().(*types.Signature).Recv().Type()
	if named, ok := recv.(*types.Named); ok {
		return named.Obj().Name() + "." + m.Name()
	}
	return m.Name()
}

// recvTypeName extracts the bare receiver type name from a receiver field.
func recvTypeName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return recvTypeName(x.X)
	case *ast.IndexExpr:
		return recvTypeName(x.X)
	}
	return ""
}

// shortPkgPath trims the module prefix down to the last two path elements
// for readable diagnostics (internal/metrics rather than the full path).
func shortPkgPath(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) > 2 {
		parts = parts[len(parts)-2:]
	}
	return strings.Join(parts, "/")
}
