package lint

import (
	"encoding/json"
	"go/token"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Check:   "hotpathalloc",
			Pos:     token.Position{Filename: "/repo/internal/vm/vm.go", Line: 42, Column: 7},
			Message: "make on a hot path without a len/cap growth guard",
		},
		{
			Check:   "lint",
			Pos:     token.Position{Filename: "/elsewhere/x.go", Line: 3, Column: 1},
			Message: "oddities: 100% strange,\nmulti-line",
		},
	}
}

// TestSARIF pins the log shape a code-scanning upload needs: version, rule
// ids (analyzers plus the lint pseudo-rule), and root-relative URIs with
// positions.
func TestSARIF(t *testing.T) {
	data, err := SARIF("/repo", []*Analyzer{HotPathAlloc(), CrossHot(CrossHotConfig{})}, sampleDiags())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF does not round-trip: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	var ruleIDs []string
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs = append(ruleIDs, r.ID)
	}
	want := []string{"lint", "hotpathalloc", "crosshot"}
	if len(ruleIDs) != len(want) {
		t.Fatalf("rules = %v, want %v", ruleIDs, want)
	}
	for i := range want {
		if ruleIDs[i] != want[i] {
			t.Errorf("rule[%d] = %q, want %q", i, ruleIDs[i], want[i])
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	loc := r0.Locations[0].PhysicalLocation
	if r0.RuleID != "hotpathalloc" || r0.Level != "error" {
		t.Errorf("result 0 ruleId/level = %q/%q", r0.RuleID, r0.Level)
	}
	if loc.ArtifactLocation.URI != "internal/vm/vm.go" {
		t.Errorf("uri = %q, want root-relative internal/vm/vm.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %d:%d, want 42:7", loc.Region.StartLine, loc.Region.StartColumn)
	}
	// A file outside the root keeps its absolute path.
	if got := run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "/elsewhere/x.go" {
		t.Errorf("outside-root uri = %q, want /elsewhere/x.go", got)
	}
}

// TestGHALine pins the workflow-command format and its escaping.
func TestGHALine(t *testing.T) {
	diags := sampleDiags()
	if got, want := GHALine("/repo", diags[0]),
		"::error file=internal/vm/vm.go,line=42,col=7,title=hotpathalloc::make on a hot path without a len/cap growth guard"; got != want {
		t.Errorf("gha line:\n got %q\nwant %q", got, want)
	}
	if got, want := GHALine("/repo", diags[1]),
		"::error file=/elsewhere/x.go,line=3,col=1,title=lint::oddities: 100%25 strange,%0Amulti-line"; got != want {
		t.Errorf("gha escaping:\n got %q\nwant %q", got, want)
	}
}
