package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixtures loads fixture packages from testdata/src under the synthetic
// module path "fix".
func loadFixtures(t *testing.T, patterns ...string) (string, []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, "fix").Load(patterns)
	if err != nil {
		t.Fatal(err)
	}
	return root, pkgs
}

// wantRe matches the expectation comments in fixture files:
//
//	// want "message regexp"
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// collectWants scans fixture comments for expectations.
func collectWants(t *testing.T, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, group := range f.Comments {
				for _, c := range group.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkWants verifies the diagnostics exactly match the fixture's want
// comments: every diagnostic is expected on its line, every expectation is
// satisfied.
func checkWants(t *testing.T, root string, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d.String(root))
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	root, pkgs := loadFixtures(t, "./hotalloc")
	checkWants(t, root, pkgs, Run(pkgs, []*Analyzer{HotPathAlloc()}))
}

func TestResetCleanFixture(t *testing.T) {
	root, pkgs := loadFixtures(t, "./resetpkg")
	checkWants(t, root, pkgs, Run(pkgs, []*Analyzer{ResetClean()}))
}

func TestCrossHotFixture(t *testing.T) {
	root, pkgs := loadFixtures(t, "./crosshot/...")
	checkWants(t, root, pkgs, Run(pkgs, []*Analyzer{CrossHot(CrossHotConfig{})}))
}

func TestScratchCleanFixture(t *testing.T) {
	root, pkgs := loadFixtures(t, "./pooledpkg")
	checkWants(t, root, pkgs, Run(pkgs, []*Analyzer{ScratchClean()}))
}

func TestEpochGuardFixture(t *testing.T) {
	root, pkgs := loadFixtures(t, "./epochpkg")
	checkWants(t, root, pkgs, Run(pkgs, []*Analyzer{EpochGuard()}))
}

func TestDenseMapFixture(t *testing.T) {
	root, pkgs := loadFixtures(t, "./densepkg")
	dm := DenseMap(DenseMapConfig{
		Packages:   []string{"fix/densepkg"},
		AllowFiles: []string{"allow.go"},
	})
	checkWants(t, root, pkgs, Run(pkgs, []*Analyzer{dm}))
}

// TestGoldenDiagnostics pins the exact formatted output — ordering by file,
// line, column, and check, plus suppression — for a package with findings
// from all three analyzers across two files.
func TestGoldenDiagnostics(t *testing.T) {
	root, pkgs := loadFixtures(t, "./golden")
	analyzers := []*Analyzer{
		HotPathAlloc(),
		ResetClean(),
		DenseMap(DenseMapConfig{Packages: []string{"fix/golden"}}),
	}
	var got []string
	for _, d := range Run(pkgs, analyzers) {
		got = append(got, d.String(root))
	}
	want := []string{
		"golden/a.go:7:2: resetclean: field missing of G is not reset by (*G).Reset and not annotated //lint:keep",
		"golden/a.go:7:10: densemap: map[int] state in hot package fix/golden; use a dense address-indexed slice (docs/LINTING.md)",
		"golden/a.go:14:9: hotpathalloc: make on a hot path without a len/cap growth guard",
		"golden/b.go:9:26: densemap: map[int] state in hot package fix/golden; use a dense address-indexed slice (docs/LINTING.md)",
		"golden/b.go:10:9: hotpathalloc: make on a hot path without a len/cap growth guard",
		"golden/b.go:10:14: densemap: map[int] state in hot package fix/golden; use a dense address-indexed slice (docs/LINTING.md)",
		"golden/b.go:14:18: densemap: map[int] state in hot package fix/golden; use a dense address-indexed slice (docs/LINTING.md)",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("golden mismatch:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestMalformedDirectives verifies directive validation reports broken
// annotations as diagnostics of check "lint".
func TestMalformedDirectives(t *testing.T) {
	root, pkgs := loadFixtures(t, "./badlint")
	diags := Run(pkgs, nil)
	if len(diags) != 2 {
		t.Fatalf("want 2 directive diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "lint" {
			t.Errorf("want check %q, got %s", "lint", d.String(root))
		}
	}
	if !strings.Contains(diags[0].Message, "malformed //lint:ignore") {
		t.Errorf("diag 0: %s", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "unknown directive //lint:frobnicate") {
		t.Errorf("diag 1: %s", diags[1].Message)
	}
}
