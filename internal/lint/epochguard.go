package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// epochTrio is one detected instance of the epoch-guarded-table idiom: an
// owner struct holding a current-epoch counter and a dense table of cells,
// each cell stamped with the epoch it was written under. A cell is live
// only while its stamp matches the owner's counter, which makes clearing
// the whole table a single increment.
type epochTrio struct {
	owner      *types.Named
	ownerEpoch *types.Var // the owner's counter field
	table      *types.Var // the owner's []cell field
	cell       *types.Named
	cellEpoch  *types.Var // the cell's stamp field
	cellFields map[*types.Var]bool
}

// EpochGuard returns the epochguard analyzer. It detects every
// epoch-guarded table in the module structurally (an unsigned "epoch"
// counter on the owner, a slice field of cells that carry their own
// "epoch" stamp) and enforces the idiom's three laws:
//
//  1. guarded read: a function reading any non-stamp cell field must
//     compare the cell's stamp against the owner's counter in the same
//     body — otherwise a stale cell (stamped under a previous epoch) is
//     reachable after a clear;
//  2. bump on reset: every Reset/Clear pointer-receiver method of the
//     owner must advance or reassign the owner's counter;
//  3. no table rewrites: clearing by iterating the table (a range loop
//     assigning cells) or wholesale (clear(table)) defeats the idiom's
//     O(1) invalidation — the one legitimate full rewrite, the epoch
//     wraparound, carries an //lint:ignore with its reason. Cells must be
//     stamped from the owner's counter (or the zero value), never from a
//     constant or unrelated expression.
//
// This is the static form of "no stale region is reachable after a
// partition flush": rule 1 makes stale cells unreadable, rules 2–3 make
// every clear path an epoch bump.
func EpochGuard() *Analyzer {
	a := &Analyzer{
		Name: "epochguard",
		Doc:  "enforce the epoch-guarded-table idiom: stamped reads, bump-based clears",
	}
	a.RunModule = func(pass *ModulePass) { runEpochGuard(pass) }
	return a
}

func runEpochGuard(pass *ModulePass) {
	trios := detectEpochTrios(pass.Module)
	if len(trios) == 0 {
		return
	}
	byCellField := map[*types.Var]*epochTrio{}
	byTable := map[*types.Var]*epochTrio{}
	for _, tr := range trios {
		for f := range tr.cellFields {
			byCellField[f] = tr
		}
		byTable[tr.table] = tr
	}
	for _, n := range pass.Graph().NodeList() {
		checkEpochFunc(pass, n, byCellField, byTable)
	}
}

// detectEpochTrios finds every (owner, table, cell) instance of the idiom
// in the module.
func detectEpochTrios(m *Module) []*epochTrio {
	// Cell candidates: structs with an unsigned-integer epoch field.
	epochField := func(st *types.Struct) *types.Var {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !strings.EqualFold(f.Name(), "epoch") {
				continue
			}
			if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsUnsigned != 0 {
				return f
			}
		}
		return nil
	}
	var trios []*epochTrio
	for _, pkg := range m.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			owner, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			ost, ok := owner.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			ownerEpoch := epochField(ost)
			if ownerEpoch == nil {
				continue
			}
			for i := 0; i < ost.NumFields(); i++ {
				f := ost.Field(i)
				sl, ok := f.Type().Underlying().(*types.Slice)
				if !ok {
					continue
				}
				cell, ok := sl.Elem().(*types.Named)
				if !ok {
					continue
				}
				cst, ok := cell.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				cellEpoch := epochField(cst)
				if cellEpoch == nil || cell == owner {
					continue
				}
				tr := &epochTrio{
					owner:      owner,
					ownerEpoch: ownerEpoch,
					table:      f,
					cell:       cell,
					cellEpoch:  cellEpoch,
					cellFields: map[*types.Var]bool{},
				}
				for j := 0; j < cst.NumFields(); j++ {
					tr.cellFields[cst.Field(j)] = true
				}
				trios = append(trios, tr)
			}
		}
	}
	return trios
}

// checkEpochFunc applies the three epoch laws to one function body.
func checkEpochFunc(pass *ModulePass, n *Node, byCellField map[*types.Var]*epochTrio, byTable map[*types.Var]*epochTrio) {
	info := n.Pkg.Info
	body := n.Decl.Body

	// Which trios does this body compare stamps for? A comparison is a
	// ==/!= between the cell's stamp field and the owner's counter field.
	compared := map[*epochTrio]bool{}
	// Selector expressions that sit under an assignment's LHS (writes).
	writes := map[ast.Expr]bool{}
	markWrite := func(e ast.Expr) {
		for {
			e = ast.Unparen(e)
			writes[e] = true
			switch x := e.(type) {
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	fieldOf := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		return nil
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(x.X)
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			fx, fy := fieldOf(x.X), fieldOf(x.Y)
			for _, pair := range [2][2]*types.Var{{fx, fy}, {fy, fx}} {
				if pair[0] == nil || pair[1] == nil {
					continue
				}
				if tr, ok := byCellField[pair[0]]; ok && pair[0] == tr.cellEpoch && pair[1] == tr.ownerEpoch {
					compared[tr] = true
				}
			}
		}
		return true
	})

	resetMethod := isEpochResetMethod(info, n, byTable)

	// Second walk: report violations.
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.SelectorExpr:
			f := fieldOf(x)
			if f == nil || writes[ast.Expr(x)] {
				return true
			}
			tr, ok := byCellField[f]
			if !ok || f == tr.cellEpoch {
				return true
			}
			if !compared[tr] {
				pass.Reportf(x.Pos(),
					"read of epoch-guarded field %s.%s without comparing %s.%s against %s.%s in this function",
					tr.cell.Obj().Name(), f.Name(),
					tr.cell.Obj().Name(), tr.cellEpoch.Name(),
					tr.owner.Obj().Name(), tr.ownerEpoch.Name())
			}
		case *ast.CallExpr:
			if builtinName(info, x) == "clear" && len(x.Args) == 1 {
				if f := fieldOf(x.Args[0]); f != nil {
					if tr, ok := byTable[f]; ok {
						pass.Reportf(x.Pos(),
							"full clear of epoch-guarded table %s.%s; invalidate by bumping %s.%s instead",
							tr.owner.Obj().Name(), f.Name(),
							tr.owner.Obj().Name(), tr.ownerEpoch.Name())
					}
				}
			}
		case *ast.RangeStmt:
			if f := fieldOf(x.X); f != nil {
				if tr, ok := byTable[f]; ok && rangeWritesCells(info, x, f) {
					pass.Reportf(x.Pos(),
						"iterating epoch-guarded table %s.%s to rewrite cells; invalidate by bumping %s.%s instead",
						tr.owner.Obj().Name(), f.Name(),
						tr.owner.Obj().Name(), tr.ownerEpoch.Name())
				}
			}
		case *ast.CompositeLit:
			checkCellStamp(pass, info, x, byCellField)
		}
		return true
	})

	if resetMethod != nil && !bumpsEpoch(info, body, resetMethod.ownerEpoch) {
		pass.Reportf(n.Decl.Pos(),
			"(%s) %s must bump %s.%s: the epoch-guarded table %s.%s is cleared by epoch, not by rewriting",
			n.Fn.Type().(*types.Signature).Recv().Type(), n.Fn.Name(),
			resetMethod.owner.Obj().Name(), resetMethod.ownerEpoch.Name(),
			resetMethod.owner.Obj().Name(), resetMethod.table.Name())
	}
}

// isEpochResetMethod reports the trio whose owner this node is a
// Reset/Clear pointer-receiver method of, or nil.
func isEpochResetMethod(info *types.Info, n *Node, byTable map[*types.Var]*epochTrio) *epochTrio {
	name := n.Fn.Name()
	if name != "Reset" && name != "Clear" {
		return nil
	}
	recv := n.Fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	for _, tr := range byTable {
		if tr.owner == named {
			return tr
		}
	}
	return nil
}

// bumpsEpoch reports whether the body increments or assigns the owner's
// epoch counter field.
func bumpsEpoch(info *types.Info, body *ast.BlockStmt, ownerEpoch *types.Var) bool {
	found := false
	fieldIs := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		s, ok := info.Selections[sel]
		return ok && s.Kind() == types.FieldVal && s.Obj() == ownerEpoch
	}
	ast.Inspect(body, func(nd ast.Node) bool {
		switch x := nd.(type) {
		case *ast.IncDecStmt:
			if fieldIs(x.X) {
				found = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if fieldIs(lhs) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// rangeWritesCells reports whether a range over the table assigns to the
// table's cells inside the loop body.
func rangeWritesCells(info *types.Info, rng *ast.RangeStmt, table *types.Var) bool {
	found := false
	ast.Inspect(rng.Body, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			base := baseOfChain(lhs)
			if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal && s.Obj() == table {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// checkCellStamp verifies a cell composite literal stamps its epoch from
// the owner's counter or leaves it zero.
func checkCellStamp(pass *ModulePass, info *types.Info, lit *ast.CompositeLit, byCellField map[*types.Var]*epochTrio) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	var tr *epochTrio
	for f, cand := range byCellField {
		_ = f
		if cand.cell == named {
			tr = cand
			break
		}
	}
	if tr == nil {
		return
	}
	ownerCounter := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		s, ok := info.Selections[sel]
		return ok && s.Kind() == types.FieldVal && s.Obj() == tr.ownerEpoch
	}
	report := func(e ast.Expr) {
		pass.Reportf(e.Pos(),
			"cell %s stamped with an epoch not read from %s.%s: stale cells could read as live under a future epoch",
			tr.cell.Obj().Name(), tr.owner.Obj().Name(), tr.ownerEpoch.Name())
	}
	st := tr.cell.Underlying().(*types.Struct)
	if len(lit.Elts) > 0 {
		if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !strings.EqualFold(key.Name, tr.cellEpoch.Name()) {
					continue
				}
				if !ownerCounter(kv.Value) && !isZeroExpr(info, kv.Value) {
					report(kv.Value)
				}
			}
		} else if len(lit.Elts) == st.NumFields() {
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == tr.cellEpoch {
					if !ownerCounter(lit.Elts[i]) && !isZeroExpr(info, lit.Elts[i]) {
						report(lit.Elts[i])
					}
				}
			}
		}
	}
}

// isZeroExpr reports whether the expression is the constant zero.
func isZeroExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}
