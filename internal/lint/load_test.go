package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// brokenLoader returns a loader over the fixture tree without going through
// loadFixtures, which treats load errors as fatal.
func brokenLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, "fix")
}

// TestLoadSyntaxError verifies a package that does not parse surfaces a
// positioned error instead of panicking or loading zero findings.
func TestLoadSyntaxError(t *testing.T) {
	pkgs, err := brokenLoader(t).Load([]string{"./broken/badsyntax"})
	if err == nil {
		t.Fatalf("want error, got %d packages", len(pkgs))
	}
	msg := err.Error()
	if !strings.Contains(msg, "parsing badsyntax.go") {
		t.Errorf("error does not name the file: %v", err)
	}
	if !strings.Contains(msg, "badsyntax.go:4") {
		t.Errorf("error carries no position: %v", err)
	}
}

// TestLoadUnresolvableImport verifies an import of a package that does not
// exist surfaces a positioned type-checking error.
func TestLoadUnresolvableImport(t *testing.T) {
	pkgs, err := brokenLoader(t).Load([]string{"./broken/badimport"})
	if err == nil {
		t.Fatalf("want error, got %d packages", len(pkgs))
	}
	msg := err.Error()
	if !strings.Contains(msg, "type-checking fix/broken/badimport") {
		t.Errorf("error does not name the package: %v", err)
	}
	if !strings.Contains(msg, "badimport.go:") {
		t.Errorf("error carries no position: %v", err)
	}
}

// TestLoadNoMatch verifies pattern sets that resolve to nothing are an
// error: a lint run that silently checks zero packages would read as clean.
func TestLoadNoMatch(t *testing.T) {
	if _, err := brokenLoader(t).Load(nil); err == nil {
		t.Error("empty pattern list: want error, got none")
	} else if !strings.Contains(err.Error(), "match no packages") {
		t.Errorf("empty pattern list: %v", err)
	}
	if _, err := brokenLoader(t).Load([]string{"./nosuchdir/..."}); err == nil {
		t.Error("missing wildcard base: want error, got none")
	}
	if _, err := brokenLoader(t).Load([]string{"./nosuchdir"}); err == nil {
		t.Error("missing package dir: want error, got none")
	}
}

// TestLoadEmptyDir verifies a directory with no Go files is an error, not
// an empty package.
func TestLoadEmptyDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLoader(dir, "empty").Load([]string{"."}); err == nil {
		t.Error("want error for directory without Go files")
	}
}
