package lint

import (
	"fmt"
	"go/token"
)

// Module is the whole loaded module under analysis: every package of one
// Load call, sharing a single file set, plus lazily built whole-module facts
// (the call graph, the module-wide hot set). Per-package analyzers see one
// Package at a time through a Pass; module analyzers see the Module through
// a ModulePass and can reason across package boundaries.
type Module struct {
	// Fset is the file set shared by every package.
	Fset *token.FileSet
	// Pkgs are the loaded packages, sorted by import path.
	Pkgs []*Package

	graph *CallGraph
}

// NewModule assembles a module view over packages loaded by one Loader.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	} else {
		m.Fset = token.NewFileSet()
	}
	return m
}

// Graph returns the module's call graph, building it on first use. The
// graph is shared by every module analyzer of one Run, so interface
// dispatch resolution and hot-set propagation happen once.
func (m *Module) Graph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m)
	}
	return m.graph
}

// ModulePass carries the whole module through one module analyzer.
type ModulePass struct {
	*Module
	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:   p.analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}
