package lint

import (
	"go/ast"
	"go/types"
)

// ResetClean returns the resetclean analyzer: for every pointer-receiver
// method named Reset on a struct type, each field of the struct must be
// touched by the method — assigned (directly, through an index/slice/star
// chain, or via a whole-struct *r = T{...} store), passed to a call (clear,
// copy, append, a helper), or be the receiver of a method call — or carry a
// //lint:keep <reason> annotation explaining why it survives pooling.
//
// This is the static side of the stale-pooled-state defense; the dynamic
// side is internal/difftest's Reset-then-reuse property test.
func ResetClean() *Analyzer {
	a := &Analyzer{
		Name: "resetclean",
		Doc:  "verify Reset methods touch every struct field or annotate it //lint:keep",
	}
	a.Run = func(pass *Pass) { runResetClean(pass) }
	return a
}

func runResetClean(pass *Pass) {
	info := pass.Info
	// Struct type declarations by their *types.Named object, for field
	// position and //lint:keep lookup.
	structDecls := map[types.Object]*ast.StructType{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					if obj := info.Defs[ts.Name]; obj != nil {
						structDecls[obj] = st
					}
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Reset" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkReset(pass, fd, structDecls)
		}
	}
}

func checkReset(pass *Pass, fd *ast.FuncDecl, structDecls map[types.Object]*ast.StructType) {
	info := pass.Info
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return // unnamed receiver never touches fields; nothing provable
	}
	recvIdent := fd.Recv.List[0].Names[0]
	recvObj := info.Defs[recvIdent]
	if recvObj == nil {
		return
	}
	ptr, ok := recvObj.Type().(*types.Pointer)
	if !ok {
		return // value receiver cannot reset the pooled instance
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return
	}
	st, ok := structDecls[named.Obj()]
	if !ok {
		return
	}

	handled := map[string]bool{}
	wholeStore := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isRecvDeref(info, lhs, recvObj) {
					wholeStore = true // *r = T{...} resets every field
					continue
				}
				if name := recvField(info, lhs, recvObj); name != "" {
					handled[name] = true
				}
			}
		case *ast.IncDecStmt:
			if name := recvField(info, x.X, recvObj); name != "" {
				handled[name] = true
			}
		case *ast.CallExpr:
			// A method call on a field (r.buf.Resize(...)) delegates that
			// field's reset; a field passed as an argument (clear(r.m),
			// r.pool.put(r.x)) is in the callee's hands too.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if name := recvField(info, sel.X, recvObj); name != "" {
					handled[name] = true
				}
			}
			for _, arg := range x.Args {
				if name := recvField(info, arg, recvObj); name != "" {
					handled[name] = true
				}
			}
		}
		return true
	})
	if wholeStore {
		return
	}

	for _, field := range st.Fields.List {
		if _, kept := keepReason(field); kept {
			continue
		}
		if len(field.Names) == 0 {
			// Embedded field: handled when the embedded name is touched.
			name := embeddedFieldName(field.Type)
			if name != "" && !handled[name] {
				pass.Reportf(field.Pos(), "embedded field %s of %s is not reset by (*%s).Reset and not annotated //lint:keep", name, named.Obj().Name(), named.Obj().Name())
			}
			continue
		}
		for _, nameIdent := range field.Names {
			if nameIdent.Name == "_" || handled[nameIdent.Name] {
				continue
			}
			pass.Reportf(nameIdent.Pos(), "field %s of %s is not reset by (*%s).Reset and not annotated //lint:keep", nameIdent.Name, named.Obj().Name(), named.Obj().Name())
		}
	}
}

// isRecvDeref matches *r (with any parenthesization) for the receiver r.
func isRecvDeref(info *types.Info, e ast.Expr, recv types.Object) bool {
	star, ok := ast.Unparen(e).(*ast.StarExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(star.X).(*ast.Ident)
	return ok && info.Uses[id] == recv
}

// recvField resolves an expression to the name of the receiver field it
// roots in: r.f, r.f[i], r.f[i:j], &r.f, r.f.g (a store through a sub-field
// still touches f) all yield "f".
func recvField(info *types.Info, e ast.Expr, recv types.Object) string {
	for {
		switch x := baseOfChain(e).(type) {
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && info.Uses[id] == recv {
				return x.Sel.Name
			}
			e = x.X
		default:
			return ""
		}
	}
}

// embeddedFieldName extracts the implicit field name of an embedded type.
func embeddedFieldName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.StarExpr:
		return embeddedFieldName(x.X)
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}
