package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Node is one function or method declared in the module, with its call
// edges in both directions.
type Node struct {
	// Fn is the type-checker's object for the function.
	Fn *types.Func
	// Decl is the declaration; Decl.Body is non-nil for every node.
	Decl *ast.FuncDecl
	// Pkg is the package the function is declared in.
	Pkg *Package
	// Out are the calls this function makes (static, dynamic, and opaque).
	Out []*Edge
	// In are the visible calls of this function. Opaque edges never land
	// here (their callee is unknown by definition).
	In []*Edge
	// Escaped records that the function is used as a value outside call
	// position somewhere in the module, or called from package-level
	// initialization: its call sites are not all visible, so hotness must
	// not be inferred onto it and domination arguments do not apply.
	Escaped bool
	// Hot records that the function is on the hot path: annotated
	// //lint:hotpath, or unexported, never escaped, and called only from
	// hot functions of its own package (see computeHotSet).
	Hot bool
	// Annotated records an explicit //lint:hotpath directive.
	Annotated bool
}

// Edge is one call site.
type Edge struct {
	Caller *Node
	// Callee is nil for opaque edges: calls of function values, whose
	// target set is unknown.
	Callee *Node
	// Site is the call expression.
	Site *ast.CallExpr
	// Stack is the ancestor chain of Site inside Caller's body (outermost
	// first), for cold-path exemption tests.
	Stack []ast.Node
	// Dynamic marks interface-dispatch edges; Iface is then the interface
	// method the call names, and one Edge exists per conservative
	// implementation.
	Dynamic bool
	Iface   *types.Func
}

// CallGraph is the module-wide call graph: all declared functions and
// methods, static callee-resolved edges, interface-dispatch edges resolved
// conservatively (every module type whose method set satisfies the
// interface contributes its method as a possible callee), and opaque edges
// for calls of escaped function values.
type CallGraph struct {
	mod   *Module
	Nodes map[*types.Func]*Node

	// dispatch memoizes interface method -> conservative implementations.
	dispatch map[*types.Func][]*Node
	// named lists every defined (non-interface, non-alias) package-level
	// type of the module, the candidate set for dispatch resolution.
	named []*types.Named

	allocFree map[*Node]bool
}

// NodeList returns the nodes sorted by position, for deterministic
// iteration.
func (g *CallGraph) NodeList() []*Node {
	nodes := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Fn.Pos() < nodes[j].Fn.Pos() })
	return nodes
}

// buildCallGraph constructs the graph over every package of the module.
func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		mod:      m,
		Nodes:    map[*types.Func]*Node{},
		dispatch: map[*types.Func][]*Node{},
	}

	// Pass 1: nodes for every declared function and method with a body,
	// and the defined-type universe for dispatch resolution.
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &Node{
					Fn:        fn,
					Decl:      fd,
					Pkg:       pkg,
					Annotated: hasDirective(fd.Doc, verbHotpath),
				}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
	}

	// Pass 2: edges and escapes.
	for _, pkg := range m.Pkgs {
		g.addPackageEdges(pkg)
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Callee != nil {
				e.Callee.In = append(e.Callee.In, e)
			}
		}
	}
	g.computeHotSet()
	return g
}

// addPackageEdges walks one package's files, adding every call as an edge
// of its enclosing function's node and marking escaped function values.
func (g *CallGraph) addPackageEdges(pkg *Package) {
	info := pkg.Info
	for _, f := range pkg.Files {
		calleeIdents := map[*ast.Ident]bool{}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isTypeConversion(info, call) {
				return true
			}
			caller := g.enclosingNode(info, stack)
			id := calleeIdent(call)
			if id != nil {
				switch obj := info.Uses[id].(type) {
				case *types.Builtin:
					return true
				case *types.Func:
					calleeIdents[id] = true
					sig, ok := obj.Type().(*types.Signature)
					if ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
						g.addDynamicEdges(caller, call, stack, obj)
						return true
					}
					if callee, inModule := g.Nodes[obj]; inModule {
						g.addEdge(caller, callee, call, stack, false, nil)
					}
					// Out-of-module static calls (standard library) carry no
					// edge: the per-body scan handles the fmt special case,
					// and external callees are outside lint's jurisdiction.
					return true
				}
			}
			// A call whose callee is not a resolvable function object: a
			// function-value invocation. Its target set is unknown — record
			// an opaque edge (immediately-invoked function literals excluded:
			// their body is walked as part of the caller).
			if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
				g.addEdge(caller, nil, call, stack, false, nil)
			}
			return true
		})
		// Any remaining use of a module function identifier is a function
		// value escaping call position.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || calleeIdents[id] {
				return true
			}
			if fn, ok := info.Uses[id].(*types.Func); ok {
				if node, ok := g.Nodes[fn]; ok {
					node.Escaped = true
				}
			}
			return true
		})
	}
}

// addEdge appends an edge, attributing calls outside any function
// declaration (package-level initialization) as an escape of the callee.
func (g *CallGraph) addEdge(caller *Node, callee *Node, call *ast.CallExpr, stack []ast.Node, dynamic bool, iface *types.Func) {
	if caller == nil {
		if callee != nil {
			callee.Escaped = true
		}
		return
	}
	e := &Edge{
		Caller:  caller,
		Callee:  callee,
		Site:    call,
		Stack:   append([]ast.Node(nil), stack...),
		Dynamic: dynamic,
		Iface:   iface,
	}
	caller.Out = append(caller.Out, e)
}

// addDynamicEdges resolves an interface-method call conservatively: every
// defined type of the module whose (pointer) method set satisfies the
// method's interface contributes its concrete method as a possible callee.
func (g *CallGraph) addDynamicEdges(caller *Node, call *ast.CallExpr, stack []ast.Node, m *types.Func) {
	for _, impl := range g.implementations(m) {
		g.addEdge(caller, impl, call, stack, true, m)
	}
}

// implementations returns (memoized) the module-declared concrete methods
// an interface method call could dispatch to.
func (g *CallGraph) implementations(m *types.Func) []*Node {
	if impls, ok := g.dispatch[m]; ok {
		return impls
	}
	var impls []*Node
	iface, _ := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		for _, named := range g.named {
			t := types.Type(named)
			if !types.Implements(t, iface) {
				t = types.NewPointer(named)
				if !types.Implements(t, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(t, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				if node, ok := g.Nodes[fn]; ok {
					impls = append(impls, node)
				}
			}
		}
	}
	sort.Slice(impls, func(i, j int) bool { return impls[i].Fn.Pos() < impls[j].Fn.Pos() })
	g.dispatch[m] = impls
	return impls
}

// enclosingNode finds the node of the function declaration a call sits in.
func (g *CallGraph) enclosingNode(info *types.Info, stack []ast.Node) *Node {
	fn := enclosingFuncDecl(info, stack)
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

// computeHotSet seeds hotness from //lint:hotpath annotations and
// propagates it to dominated callees: unexported functions that never
// escape and whose visible static same-package callers are all hot.
// Exported functions are never inferred hot (external callers may be
// cold); dynamic-dispatch edges never transmit hotness (the dispatch site
// set is conservative, not exact).
func (g *CallGraph) computeHotSet() {
	for _, n := range g.Nodes {
		n.Hot = n.Annotated
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if n.Hot || n.Escaped || ast.IsExported(n.Fn.Name()) {
				continue
			}
			nonSelf, all := 0, true
			for _, e := range n.In {
				if e.Dynamic || e.Caller.Pkg != n.Pkg {
					continue
				}
				if e.Caller == n {
					continue
				}
				nonSelf++
				if !e.Caller.Hot {
					all = false
				}
			}
			if nonSelf > 0 && all {
				n.Hot = true
				changed = true
			}
		}
	}
}

// AllocFree reports whether a node is provably allocation-free on its warm
// path: its body contains no non-exempt allocation candidate (per the
// hotpathalloc rules, growth guards and cold sub-paths exempt), it makes no
// opaque calls outside cold sub-paths, and every warm in-module call edge
// leads to a node that is itself allocation-free or //lint:hotpath
// annotated (annotated callees are enforced allocation-free by
// hotpathalloc). Computed as a greatest fixpoint, so allocation-free call
// cycles resolve to free.
func (g *CallGraph) AllocFree(n *Node) bool {
	if g.allocFree == nil {
		g.computeAllocFree()
	}
	return g.allocFree[n]
}

func (g *CallGraph) computeAllocFree() {
	free := map[*Node]bool{}
	for _, n := range g.Nodes {
		free[n] = !bodyHasAlloc(n.Pkg, n.Fn, n.Decl)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if !free[n] {
				continue
			}
			for _, e := range n.Out {
				if coldExempt(n.Pkg.Info, e.Site, e.Stack) {
					continue
				}
				if e.Callee == nil {
					// Opaque warm call: unknown target, assume it allocates.
					free[n] = false
					changed = true
					break
				}
				if !e.Callee.Annotated && !free[e.Callee] {
					free[n] = false
					changed = true
					break
				}
			}
		}
	}
	g.allocFree = free
}
