package lint

import (
	"go/ast"
	"go/types"
)

// stackVisitor drives walkStack: it maintains the ancestor chain of the node
// currently being visited.
type stackVisitor struct {
	stack []ast.Node
	fn    func(n ast.Node, stack []ast.Node) bool
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if !v.fn(n, v.stack) {
		return nil
	}
	v.stack = append(v.stack, n)
	return v
}

// walkStack walks root in depth-first order calling fn with each node and
// the chain of its ancestors (outermost first, root's parent excluded).
// Returning false from fn prunes the subtree.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	ast.Walk(&stackVisitor{fn: fn}, root)
}

// baseOfChain strips index, slice, star, and paren wrappers so that
// m.buf[i:j] and (*p).x resolve to the selector or identifier underneath.
func baseOfChain(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return e
		}
	}
}

// calleeIdent returns the identifier naming a call's callee (for plain and
// selector calls), or nil.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return id
		}
	}
	return nil
}

// enclosingFuncDecl finds the function declaration an AST node sits in.
func enclosingFuncDecl(info *types.Info, stack []ast.Node) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			fn, _ := info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// builtinName returns the name of the predeclared builtin a call invokes, or
// "" when the callee is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// isTypeConversion reports whether a CallExpr is a type conversion rather
// than a function call.
func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// ifGuardsLenCapNil reports whether an if statement's init or condition
// involves len(), cap(), or a nil comparison — the shapes of growth guards,
// lazy initialization, pool probes, and cold error handling.
func ifGuardsLenCapNil(info *types.Info, ifs *ast.IfStmt) bool {
	if ifs.Init != nil && mentionsLenCapNil(info, ifs.Init) {
		return true
	}
	return mentionsLenCapNil(info, ifs.Cond)
}

// mentionsLenCapNil reports whether an expression or statement involves
// len(), cap(), or a nil comparison.
func mentionsLenCapNil(info *types.Info, cond ast.Node) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := builtinName(info, x); name == "len" || name == "cap" {
				found = true
			}
		case *ast.BinaryExpr:
			if isNilIdent(x.X) || isNilIdent(x.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// returnsError reports whether the return statement carries a non-nil error
// value — the shape of a cold failure path.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if isNilIdent(res) {
			continue
		}
		t := info.TypeOf(res)
		if t == nil {
			continue
		}
		if types.Implements(t, errorType) {
			return true
		}
	}
	return false
}

// isPanicCall reports whether the statement is a call to the builtin panic.
func isPanicCall(info *types.Info, stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && builtinName(info, call) == "panic"
}

// blockStmts returns the statement list of a block-like node, or nil.
func blockStmts(n ast.Node) []ast.Stmt {
	switch x := n.(type) {
	case *ast.BlockStmt:
		return x.List
	case *ast.CaseClause:
		return x.Body
	case *ast.CommClause:
		return x.Body
	}
	return nil
}
