package lint

import (
	"encoding/json"
	"path/filepath"
	"strconv"
	"strings"
)

// SARIF serializes diagnostics as a SARIF 2.1.0 log — the interchange
// format code-scanning UIs ingest. One run, one driver ("repro-lint"), one
// rule per analyzer (plus the "lint" pseudo-rule carrying directive
// validation), one result per diagnostic. File URIs are emitted relative to
// root so the log is stable across checkouts.
func SARIF(root string, analyzers []*Analyzer, diags []Diagnostic) ([]byte, error) {
	type text struct {
		Text string `json:"text"`
	}
	type rule struct {
		ID               string `json:"id"`
		ShortDescription text   `json:"shortDescription"`
	}
	type artifactLocation struct {
		URI string `json:"uri"`
	}
	type region struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type physicalLocation struct {
		ArtifactLocation artifactLocation `json:"artifactLocation"`
		Region           region           `json:"region"`
	}
	type location struct {
		PhysicalLocation physicalLocation `json:"physicalLocation"`
	}
	type result struct {
		RuleID    string     `json:"ruleId"`
		Level     string     `json:"level"`
		Message   text       `json:"message"`
		Locations []location `json:"locations"`
	}
	type driver struct {
		Name  string `json:"name"`
		Rules []rule `json:"rules"`
	}
	type tool struct {
		Driver driver `json:"driver"`
	}
	type run struct {
		Tool    tool     `json:"tool"`
		Results []result `json:"results"`
	}
	type sarifLog struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []run  `json:"runs"`
	}

	rules := []rule{{
		ID:               "lint",
		ShortDescription: text{Text: "directive well-formedness (//lint: grammar)"},
	}}
	for _, a := range analyzers {
		rules = append(rules, rule{ID: a.Name, ShortDescription: text{Text: a.Doc}})
	}
	results := []result{}
	for _, d := range diags {
		results = append(results, result{
			RuleID:  d.Check,
			Level:   "error",
			Message: text{Text: d.Message},
			Locations: []location{{PhysicalLocation: physicalLocation{
				ArtifactLocation: artifactLocation{URI: relFile(root, d.Pos.Filename)},
				Region:           region{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		})
	}
	return json.MarshalIndent(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []run{{
			Tool:    tool{Driver: driver{Name: "repro-lint", Rules: rules}},
			Results: results,
		}},
	}, "", "  ")
}

// GHALine formats a diagnostic as a GitHub Actions problem-matcher command
// (::error file=...) so CI log lines become pull-request annotations.
func GHALine(root string, d Diagnostic) string {
	var b strings.Builder
	b.WriteString("::error file=")
	b.WriteString(ghaEscapeProp(relFile(root, d.Pos.Filename)))
	b.WriteString(",line=")
	b.WriteString(strconv.Itoa(d.Pos.Line))
	b.WriteString(",col=")
	b.WriteString(strconv.Itoa(d.Pos.Column))
	b.WriteString(",title=")
	b.WriteString(ghaEscapeProp(d.Check))
	b.WriteString("::")
	b.WriteString(ghaEscapeData(d.Message))
	return b.String()
}

// relFile renders a diagnostic file path relative to root when it sits
// underneath it.
func relFile(root, name string) string {
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// ghaEscapeData escapes the message payload of a workflow command.
func ghaEscapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghaEscapeProp escapes a workflow command property value.
func ghaEscapeProp(s string) string {
	s = ghaEscapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}
