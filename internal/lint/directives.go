package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive verbs understood by the framework. The grammar is a comment of
// the form
//
//	//lint:<verb> [args...]
//
// with three verbs:
//
//	//lint:hotpath                  — marks a function as a hot path root
//	                                  (read by hotpathalloc from the doc
//	                                  comment of a FuncDecl)
//	//lint:keep <reason>            — marks a struct field as deliberately
//	                                  surviving Reset or pooled reuse (read by
//	                                  resetclean and scratchclean from the
//	                                  field's doc or line comment)
//	//lint:pooled                   — marks a struct as a pooled scratch space
//	                                  whose component fields must be re-armed
//	                                  on every reuse path (read by scratchclean
//	                                  from the type's doc comment)
//	//lint:ignore <checks> <reason> — suppresses diagnostics of the named
//	                                  check(s) (comma-separated) reported on
//	                                  the directive's line or the line
//	                                  directly below it
const (
	verbHotpath = "hotpath"
	verbKeep    = "keep"
	verbPooled  = "pooled"
	verbIgnore  = "ignore"
)

const directivePrefix = "//lint:"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	checks []string
	line   int
	used   bool
	pos    token.Position
}

// fileDirectives holds the suppression directives of one file plus any
// malformed-directive diagnostics found while parsing them.
type fileDirectives struct {
	ignores   []*ignoreDirective
	malformed []Diagnostic
}

// parseDirective splits a comment into its lint verb and argument string.
// ok is false for comments that are not lint directives at all.
func parseDirective(text string) (verb, args string, ok bool) {
	rest, found := strings.CutPrefix(text, directivePrefix)
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(rest, " ")
	return verb, strings.TrimSpace(args), true
}

// hasDirective reports whether any comment in the group carries the verb.
func hasDirective(group *ast.CommentGroup, verb string) bool {
	if group == nil {
		return false
	}
	for _, c := range group.List {
		if v, _, ok := parseDirective(c.Text); ok && v == verb {
			return true
		}
	}
	return false
}

// keepReason returns the //lint:keep reason attached to a struct field via
// its doc or trailing line comment. ok distinguishes "no directive" from an
// empty reason.
func keepReason(field *ast.Field) (reason string, ok bool) {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if v, args, isDir := parseDirective(c.Text); isDir && v == verbKeep {
				return args, true
			}
		}
	}
	return "", false
}

// parseFileDirectives scans every comment of a file for ignore directives
// and validates directive well-formedness. Each //lint:ignore registers at
// the line the comment sits on, suppressing diagnostics on that line and the
// line below (so both trailing and preceding-line placement work).
func parseFileDirectives(fset *token.FileSet, f *ast.File) *fileDirectives {
	d := &fileDirectives{}
	for _, group := range f.Comments {
		for _, c := range group.List {
			verb, args, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			switch verb {
			case verbHotpath, verbPooled:
				// No arguments required; trailing commentary is allowed.
			case verbKeep:
				if args == "" {
					d.malformed = append(d.malformed, Diagnostic{
						Check:   "lint",
						Pos:     pos,
						Message: "malformed //lint:keep: missing reason",
					})
				}
			case verbIgnore:
				checks, reason, _ := strings.Cut(args, " ")
				list := strings.Split(checks, ",")
				bad := strings.TrimSpace(reason) == ""
				for _, c := range list {
					if c == "" { // covers both empty checks and "a,,b"
						bad = true
					}
				}
				if bad {
					d.malformed = append(d.malformed, Diagnostic{
						Check:   "lint",
						Pos:     pos,
						Message: "malformed //lint:ignore: want \"//lint:ignore <check>[,<check>] <reason>\"",
					})
					continue
				}
				d.ignores = append(d.ignores, &ignoreDirective{
					checks: list,
					line:   pos.Line,
					pos:    pos,
				})
			default:
				d.malformed = append(d.malformed, Diagnostic{
					Check:   "lint",
					Pos:     pos,
					Message: "unknown directive //lint:" + verb + " (want hotpath, keep, pooled, or ignore)",
				})
			}
		}
	}
	return d
}

// suppresses reports whether the directive covers a diagnostic of the given
// check on the given line.
func (ig *ignoreDirective) suppresses(check string, line int) bool {
	if line != ig.line && line != ig.line+1 {
		return false
	}
	for _, c := range ig.checks {
		if c == check {
			return true
		}
	}
	return false
}
