// Package isa defines the synthetic instruction set used by the
// region-selection simulator.
//
// The ISA is a small load/store register machine. It exists to give the
// simulator a realistic, deterministic source of dynamic control flow — the
// role Pin-instrumented IA-32 binaries played in the original paper. Each
// instruction occupies one address unit (Addr is an instruction index, not a
// byte offset), which makes "backward branch" checks (target <= source) and
// fall-through path reconstruction trivial. A separate per-opcode byte size
// is kept for code-cache size estimation, matching the paper's observation
// that selected instructions average between three and four bytes.
package isa

import "fmt"

// Addr is the address of an instruction. Addresses are instruction indices:
// the instruction at address a+1 is the fall-through successor of the
// instruction at address a.
type Addr uint32

// Reg names one of the general-purpose registers.
type Reg uint8

// NumRegs is the number of general-purpose registers in the machine.
const NumRegs = 32

// Opcode enumerates every operation in the ISA.
type Opcode uint8

const (
	// Nop does nothing.
	Nop Opcode = iota
	// Halt stops the machine.
	Halt
	// MovImm sets Dst to the immediate.
	MovImm
	// Mov copies SrcA to Dst.
	Mov
	// Add sets Dst = SrcA + SrcB.
	Add
	// AddImm sets Dst = SrcA + Imm.
	AddImm
	// Sub sets Dst = SrcA - SrcB.
	Sub
	// Mul sets Dst = SrcA * SrcB.
	Mul
	// Div sets Dst = SrcA / SrcB (0 when SrcB is 0).
	Div
	// Rem sets Dst = SrcA % SrcB (0 when SrcB is 0).
	Rem
	// And sets Dst = SrcA & SrcB.
	And
	// Or sets Dst = SrcA | SrcB.
	Or
	// Xor sets Dst = SrcA ^ SrcB.
	Xor
	// Shl sets Dst = SrcA << (SrcB & 63).
	Shl
	// Shr sets Dst = uint64(SrcA) >> (SrcB & 63).
	Shr
	// Load sets Dst = mem[SrcA + Imm].
	Load
	// Store sets mem[SrcA + Imm] = SrcB.
	Store
	// Jmp unconditionally transfers control to Target.
	Jmp
	// Br transfers control to Target when Cond holds for SrcA, SrcB;
	// otherwise control falls through.
	Br
	// Call transfers control to Target and pushes the return address.
	Call
	// CallInd transfers control to the address in SrcA and pushes the
	// return address.
	CallInd
	// JmpInd transfers control to the address in SrcA.
	JmpInd
	// Ret pops the return address and transfers control to it.
	Ret

	numOpcodes
)

// Cond enumerates conditional-branch predicates. All comparisons are signed.
type Cond uint8

const (
	// CondNone marks a non-conditional instruction.
	CondNone Cond = iota
	// CondEq branches when SrcA == SrcB.
	CondEq
	// CondNe branches when SrcA != SrcB.
	CondNe
	// CondLt branches when SrcA < SrcB.
	CondLt
	// CondLe branches when SrcA <= SrcB.
	CondLe
	// CondGt branches when SrcA > SrcB.
	CondGt
	// CondGe branches when SrcA >= SrcB.
	CondGe
)

// Instr is a single decoded instruction.
type Instr struct {
	Op     Opcode
	Cond   Cond
	Dst    Reg
	SrcA   Reg
	SrcB   Reg
	Imm    int64
	Target Addr
}

// opInfo captures static per-opcode properties.
type opInfo struct {
	name  string
	bytes int
}

var opTable = [numOpcodes]opInfo{
	Nop:     {"nop", 1},
	Halt:    {"halt", 1},
	MovImm:  {"movi", 6},
	Mov:     {"mov", 2},
	Add:     {"add", 3},
	AddImm:  {"addi", 4},
	Sub:     {"sub", 3},
	Mul:     {"mul", 3},
	Div:     {"div", 3},
	Rem:     {"rem", 3},
	And:     {"and", 3},
	Or:      {"or", 3},
	Xor:     {"xor", 3},
	Shl:     {"shl", 3},
	Shr:     {"shr", 3},
	Load:    {"load", 4},
	Store:   {"store", 4},
	Jmp:     {"jmp", 4},
	Br:      {"br", 4},
	Call:    {"call", 5},
	CallInd: {"calli", 2},
	JmpInd:  {"jmpi", 2},
	Ret:     {"ret", 1},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opTable[op].name
}

// Bytes returns the encoded size of the opcode in bytes. The simulator uses
// it only to estimate code-cache footprint; control flow is addressed in
// instruction units.
func (op Opcode) Bytes() int {
	if !op.Valid() {
		return 0
	}
	return opTable[op].bytes
}

// String returns the mnemonic suffix for the condition.
func (c Cond) String() string {
	switch c {
	case CondEq:
		return "eq"
	case CondNe:
		return "ne"
	case CondLt:
		return "lt"
	case CondLe:
		return "le"
	case CondGt:
		return "gt"
	case CondGe:
		return "ge"
	default:
		return ""
	}
}

// Eval reports whether the condition holds for the operand values a and b.
func (c Cond) Eval(a, b int64) bool {
	switch c {
	case CondEq:
		return a == b
	case CondNe:
		return a != b
	case CondLt:
		return a < b
	case CondLe:
		return a <= b
	case CondGt:
		return a > b
	case CondGe:
		return a >= b
	default:
		return false
	}
}

// IsBranch reports whether the instruction can transfer control anywhere
// other than the fall-through successor.
func (i Instr) IsBranch() bool {
	switch i.Op {
	case Jmp, Br, Call, CallInd, JmpInd, Ret:
		return true
	default:
		return false
	}
}

// IsConditional reports whether the instruction may either branch or fall
// through depending on register state.
func (i Instr) IsConditional() bool { return i.Op == Br }

// IsIndirect reports whether the instruction's target is computed at run
// time rather than encoded in the instruction. Returns are indirect: their
// target depends on the dynamic call site.
func (i Instr) IsIndirect() bool {
	switch i.Op {
	case CallInd, JmpInd, Ret:
		return true
	default:
		return false
	}
}

// IsCall reports whether the instruction pushes a return address.
func (i Instr) IsCall() bool { return i.Op == Call || i.Op == CallInd }

// IsReturn reports whether the instruction pops a return address.
func (i Instr) IsReturn() bool { return i.Op == Ret }

// EndsBlock reports whether the instruction terminates a basic block.
func (i Instr) EndsBlock() bool { return i.IsBranch() || i.Op == Halt }

// String renders the instruction in the textual assembly syntax understood
// by package asm.
func (i Instr) String() string {
	switch i.Op {
	case Nop, Halt, Ret:
		return i.Op.String()
	case MovImm:
		return fmt.Sprintf("movi r%d, %d", i.Dst, i.Imm)
	case Mov:
		return fmt.Sprintf("mov r%d, r%d", i.Dst, i.SrcA)
	case AddImm:
		return fmt.Sprintf("addi r%d, r%d, %d", i.Dst, i.SrcA, i.Imm)
	case Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Dst, i.SrcA, i.SrcB)
	case Load:
		return fmt.Sprintf("load r%d, [r%d%s]", i.Dst, i.SrcA, offset(i.Imm))
	case Store:
		return fmt.Sprintf("store [r%d%s], r%d", i.SrcA, offset(i.Imm), i.SrcB)
	case Jmp:
		return fmt.Sprintf("jmp %d", i.Target)
	case Br:
		return fmt.Sprintf("b%s r%d, r%d, %d", i.Cond, i.SrcA, i.SrcB, i.Target)
	case Call:
		return fmt.Sprintf("call %d", i.Target)
	case CallInd:
		return fmt.Sprintf("calli r%d", i.SrcA)
	case JmpInd:
		return fmt.Sprintf("jmpi r%d", i.SrcA)
	default:
		return fmt.Sprintf("op(%d)", uint8(i.Op))
	}
}

// offset renders a signed memory displacement with its sign.
func offset(v int64) string {
	if v < 0 {
		return fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("+%d", v)
}

// Validate reports a descriptive error when the instruction is malformed.
func (i Instr) Validate() error {
	if !i.Op.Valid() {
		return fmt.Errorf("isa: invalid opcode %d", uint8(i.Op))
	}
	if i.Op == Br && i.Cond == CondNone {
		return fmt.Errorf("isa: conditional branch without condition: %s", i)
	}
	if i.Op != Br && i.Cond != CondNone {
		return fmt.Errorf("isa: condition %v on non-branch %s", i.Cond, i.Op)
	}
	if i.Dst >= NumRegs || i.SrcA >= NumRegs || i.SrcB >= NumRegs {
		return fmt.Errorf("isa: register out of range in %s", i)
	}
	return nil
}
