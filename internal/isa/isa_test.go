package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeProperties(t *testing.T) {
	cases := []struct {
		op       Opcode
		branch   bool
		indirect bool
		call     bool
		ret      bool
		ends     bool
	}{
		{Nop, false, false, false, false, false},
		{Halt, false, false, false, false, true},
		{MovImm, false, false, false, false, false},
		{Add, false, false, false, false, false},
		{Load, false, false, false, false, false},
		{Store, false, false, false, false, false},
		{Jmp, true, false, false, false, true},
		{Br, true, false, false, false, true},
		{Call, true, false, true, false, true},
		{CallInd, true, true, true, false, true},
		{JmpInd, true, true, false, false, true},
		{Ret, true, true, false, true, true},
	}
	for _, c := range cases {
		in := Instr{Op: c.op}
		if c.op == Br {
			in.Cond = CondEq
		}
		if got := in.IsBranch(); got != c.branch {
			t.Errorf("%s: IsBranch=%v, want %v", c.op, got, c.branch)
		}
		if got := in.IsIndirect(); got != c.indirect {
			t.Errorf("%s: IsIndirect=%v, want %v", c.op, got, c.indirect)
		}
		if got := in.IsCall(); got != c.call {
			t.Errorf("%s: IsCall=%v, want %v", c.op, got, c.call)
		}
		if got := in.IsReturn(); got != c.ret {
			t.Errorf("%s: IsReturn=%v, want %v", c.op, got, c.ret)
		}
		if got := in.EndsBlock(); got != c.ends {
			t.Errorf("%s: EndsBlock=%v, want %v", c.op, got, c.ends)
		}
	}
}

func TestOpcodeBytesRealistic(t *testing.T) {
	// The paper reports selected-instruction sizes averaging between three
	// and four bytes (§4.3.4); the ISA's opcode sizes must stay in a range
	// that keeps that plausible.
	total, n := 0, 0
	for op := Opcode(0); op < numOpcodes; op++ {
		b := op.Bytes()
		if b < 1 || b > 8 {
			t.Errorf("%s: implausible size %d bytes", op, b)
		}
		total += b
		n++
	}
	avg := float64(total) / float64(n)
	if avg < 2 || avg > 5 {
		t.Errorf("mean opcode size %.2f outside [2,5]", avg)
	}
}

func TestOpcodeStringUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for op := Opcode(0); op < numOpcodes; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q used by both %d and %d", s, prev, op)
		}
		seen[s] = op
	}
	if Opcode(250).Valid() {
		t.Error("opcode 250 should be invalid")
	}
	if got := Opcode(250).String(); got != "op(250)" {
		t.Errorf("invalid opcode String = %q", got)
	}
}

func TestCondEval(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		return CondEq.Eval(a, b) == (a == b) &&
			CondNe.Eval(a, b) == (a != b) &&
			CondLt.Eval(a, b) == (a < b) &&
			CondLe.Eval(a, b) == (a <= b) &&
			CondGt.Eval(a, b) == (a > b) &&
			CondGe.Eval(a, b) == (a >= b) &&
			!CondNone.Eval(a, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondComplementary(t *testing.T) {
	pairs := [][2]Cond{{CondEq, CondNe}, {CondLt, CondGe}, {CondLe, CondGt}}
	if err := quick.Check(func(a, b int64) bool {
		for _, p := range pairs {
			if p[0].Eval(a, b) == p[1].Eval(a, b) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	good := []Instr{
		{Op: Nop},
		{Op: Br, Cond: CondLt, SrcA: 1, SrcB: 2, Target: 0},
		{Op: MovImm, Dst: 31, Imm: -5},
	}
	for _, in := range good {
		if err := in.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", in, err)
		}
	}
	bad := []Instr{
		{Op: numOpcodes},                 // invalid opcode
		{Op: Br},                         // conditional without condition
		{Op: Add, Cond: CondEq},          // condition on non-branch
		{Op: Mov, Dst: NumRegs},          // register out of range
		{Op: Mov, SrcA: NumRegs + 3},     // register out of range
		{Op: Add, SrcB: NumRegs, Dst: 1}, // register out of range
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%v: expected validation error", in)
		}
	}
}

func TestInstrString(t *testing.T) {
	cases := map[string]Instr{
		"nop":              {Op: Nop},
		"halt":             {Op: Halt},
		"ret":              {Op: Ret},
		"movi r1, 42":      {Op: MovImm, Dst: 1, Imm: 42},
		"mov r2, r3":       {Op: Mov, Dst: 2, SrcA: 3},
		"add r1, r2, r3":   {Op: Add, Dst: 1, SrcA: 2, SrcB: 3},
		"addi r1, r2, -7":  {Op: AddImm, Dst: 1, SrcA: 2, Imm: -7},
		"load r4, [r5+8]":  {Op: Load, Dst: 4, SrcA: 5, Imm: 8},
		"store [r5+8], r4": {Op: Store, SrcA: 5, SrcB: 4, Imm: 8},
		"jmp 17":           {Op: Jmp, Target: 17},
		"blt r1, r2, 3":    {Op: Br, Cond: CondLt, SrcA: 1, SrcB: 2, Target: 3},
		"call 9":           {Op: Call, Target: 9},
		"calli r6":         {Op: CallInd, SrcA: 6},
		"jmpi r6":          {Op: JmpInd, SrcA: 6},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
