package workloads

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// First half of the SPECint2000-named synthetic benchmarks. Each models
// the control-flow character the paper's discussion (and the benchmarks'
// well-known structure) attributes to its namesake; see the per-benchmark
// comments.

func init() {
	register(Workload{
		Name: "gzip",
		Description: "compression: simple, strongly biased loop nest with a " +
			"forward hash-update call; very few hot paths (small cover sets)",
		DefaultScale: 1500,
		Build:        func(s int) *program.Program { return buildGzip(s, 0) },
		BuildSeeded:  buildGzip,
	})
	register(Workload{
		Name: "vpr",
		Description: "placement: annealing-style loop with a moderately " +
			"unbiased accept/reject branch whose arms rejoin, plus a cost call",
		DefaultScale: 4000,
		Build:        func(s int) *program.Program { return buildVpr(s, 0) },
		BuildSeeded:  buildVpr,
	})
	register(Workload{
		Name: "gcc",
		Description: "compiler: very many hot paths — a 16-way dispatch loop " +
			"with per-case unbiased branching, shared helpers, and two phases",
		DefaultScale: 500,
		Build:        func(s int) *program.Program { return buildGcc(s, 0) },
		BuildSeeded:  buildGcc,
	})
	register(Workload{
		Name: "mcf",
		Description: "network simplex: tight pointer-chasing loops over memory " +
			"with a pricing call on the dominant path (interprocedural cycle)",
		DefaultScale: 800,
		Build:        func(s int) *program.Program { return buildMcf(s, 0) },
		BuildSeeded:  buildMcf,
	})
	register(Workload{
		Name: "crafty",
		Description: "chess search: intraprocedural biased loops and recursion; " +
			"few extra cycles for LEI to span (the paper's outlier)",
		DefaultScale: 300,
		Build:        func(s int) *program.Program { return buildCrafty(s, 0) },
		BuildSeeded:  buildCrafty,
	})
	register(Workload{
		Name: "parser",
		Description: "recursive-descent parsing over a token stream; recursion " +
			"limits cycle spanning (LEI's region-transition outlier)",
		DefaultScale: 1500,
		Build:        func(s int) *program.Program { return buildParser(s, 0) },
		BuildSeeded:  buildParser,
	})
}

// buildGzip: an LZ-style compressor shape. The outer loop scans "input";
// an inner match loop runs a biased number of iterations; a hash-update
// helper (placed after main, so the call is forward) is called once per
// outer iteration. Hot code is a handful of heavily biased paths.
func buildGzip(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 1500)
	a := newAsm()
	a.Func("main")
	a.seed(0x00_971 + seed)
	a.MovImm(2, 4096) // window base
	_, closeOuter := a.counted(1, int64(n))
	{
		a.work(4, 10, 11, 12)
		// Inner match-extension loop: ~8 iterations, biased continue.
		a.MovImm(3, 8)
		inner := a.fresh("match")
		a.Label(inner)
		a.work(5, 11, 12, 13)
		a.Load(14, 2, 0)
		a.AddImm(14, 14, 3)
		a.Store(2, 0, 14)
		a.AddImm(3, 3, -1)
		a.Br(isa.CondGt, 3, RZero, inner)
		// Rare "no match" path (~6%).
		skip := a.fresh("emit")
		a.randBranch(15, skip)
		a.Call("hashupd")
		a.Label(skip)
		a.work(3, 12, 13, 14)
	}
	closeOuter()
	a.Halt()

	a.Func("hashupd")
	a.work(6, 15, 16, 17)
	a.Load(18, 2, 1)
	a.Xor(18, 18, 15)
	a.Store(2, 1, 18)
	a.Ret()
	return a.MustBuild()
}

// buildVpr: simulated-annealing placement. Each iteration proposes a swap
// (cost call on the dominant path), then takes a roughly 45/55 accept
// branch whose arms do different bookkeeping and rejoin at the loop end —
// the unbiased-branch-with-rejoin shape trace combination targets.
func buildVpr(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 4000)
	a := newAsm()
	// cost() sits below main so its call is a backward branch: the
	// accept/reject cycle is interprocedural.
	a.Jmp("main")

	a.Func("cost")
	a.work(7, 10, 11, 12)
	a.Load(13, 2, 2)
	a.Add(13, 13, 10)
	a.Store(2, 2, 13)
	a.Ret()

	a.Func("main")
	a.seed(0x00_175 + seed)
	a.MovImm(2, 8192)
	_, closeLoop := a.counted(1, int64(n))
	{
		a.work(3, 10, 11, 12)
		a.Call("cost")
		reject := a.fresh("reject")
		done := a.fresh("done")
		a.randBranch(115, reject) // ~45% reject
		// Accept arm.
		a.work(6, 11, 12, 13)
		a.Load(14, 2, 3)
		a.AddImm(14, 14, 1)
		a.Store(2, 3, 14)
		a.Jmp(done)
		a.Label(reject)
		a.work(5, 12, 13, 14)
		a.Label(done)
		a.work(2, 13, 14, 15)
	}
	closeLoop()
	a.Halt()
	return a.MustBuild()
}

// buildGcc: a compiler-like shape with very many frequently executed paths
// (Ball–Larus's observation the paper cites): a 16-way indirect dispatch
// loop whose cases each contain further unbiased branching and calls to
// shared helpers, followed by a second phase with a different loop — so
// different paths are hot in different phases.
func buildGcc(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 500)
	a := newAsm()
	a.Func("main")
	a.seed(0x00_176 + seed)
	a.MovImm(2, 1024) // jump-table base
	cases := make([]string, 16)
	for i := range cases {
		cases[i] = a.fresh("case")
		a.MovLabel(3, cases[i])
		a.Store(2, int64(i), 3)
	}
	// Phase 1: parse/expand-like dispatch loop.
	_, closePhase1 := a.counted(1, int64(n*12))
	{
		a.Label("dispatch1")
		a.work(2, 10, 11, 12)
		a.randRange(4, 16)
		a.Add(5, 2, 4)
		a.Load(6, 5, 0)
		a.JmpInd(6)
		join := a.fresh("join")
		for i, c := range cases {
			a.Label(c)
			a.work(2+i%4, 11, 12, 13)
			if i%3 == 0 {
				alt := a.fresh("alt")
				after := a.fresh("after")
				a.randBranch(128, alt) // unbiased split inside the case
				a.work(3, 12, 13, 14)
				a.Jmp(after)
				a.Label(alt)
				a.work(3, 13, 14, 15)
				a.Label(after)
			}
			if i%4 == 1 {
				a.Call("fold")
			}
			if i%4 == 3 {
				a.Call("note")
			}
			a.Jmp(join)
		}
		a.Label(join)
		a.work(2, 12, 13, 14)
	}
	closePhase1()
	// Phase 2: regalloc-like doubly nested loop with a biased spill branch.
	_, closeOuter := a.counted(1, int64(n*2))
	{
		a.MovImm(7, 12)
		inner := a.fresh("ra")
		a.Label(inner)
		a.work(4, 13, 14, 15)
		spill := a.fresh("spill")
		cont := a.fresh("cont")
		a.randBranch(30, spill) // ~12% spill path
		a.work(3, 14, 15, 16)
		a.Jmp(cont)
		a.Label(spill)
		a.work(5, 15, 16, 17)
		a.Call("fold")
		a.Label(cont)
		a.AddImm(7, 7, -1)
		a.Br(isa.CondGt, 7, RZero, inner)
	}
	closeOuter()
	a.Halt()

	a.Func("fold")
	a.work(5, 16, 17, 18)
	a.Ret()

	a.Func("note")
	a.work(4, 17, 18, 19)
	a.Load(20, 2, 20)
	a.AddImm(20, 20, 1)
	a.Store(2, 20, 20)
	a.Ret()
	return a.MustBuild()
}

// buildMcf: network-simplex shape. The hot code is a pointer-chasing loop
// over a linked structure in memory; the dominant path calls a pricing
// function placed at a lower address, so the whole hot cycle is
// interprocedural — exactly the Figure 2 pattern at benchmark scale.
func buildMcf(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 800)
	a := newAsm()
	a.Jmp("main")

	a.Func("price")
	a.work(6, 10, 11, 12)
	a.Load(13, 3, 1)
	a.Add(13, 13, 10)
	a.Store(3, 1, 13)
	a.Ret()

	a.Func("main")
	a.seed(0x00_181 + seed)
	// Build a ring of 64 nodes, 4 words apart, in memory: node i at
	// 2048+4i points to node (i+7)%64.
	a.MovImm(2, 2048)
	a.MovImm(4, 0)
	initLoop := a.fresh("init")
	a.Label(initLoop)
	a.AddImm(5, 4, 7)
	a.MovImm(6, 63)
	a.And(5, 5, 6)
	a.MovImm(6, 4)
	a.Mul(5, 5, 6)
	a.Add(5, 5, 2)
	a.MovImm(6, 4)
	a.Mul(7, 4, 6)
	a.Add(7, 7, 2)
	a.Store(7, 0, 5)
	a.AddImm(4, 4, 1)
	a.MovImm(6, 64)
	a.Br(isa.CondLt, 4, 6, initLoop)
	// Outer passes over the ring.
	_, closeOuter := a.counted(1, int64(n))
	{
		a.Mov(3, 2) // current node
		a.MovImm(8, 48)
		chase := a.fresh("chase")
		a.Label(chase)
		a.work(3, 11, 12, 13)
		a.Call("price")
		a.Load(3, 3, 0) // follow pointer
		a.AddImm(8, 8, -1)
		a.Br(isa.CondGt, 8, RZero, chase)
		// Occasional rebalance (~8%).
		skip := a.fresh("skip")
		a.randBranch(235, skip)
		a.work(6, 12, 13, 14)
		a.Label(skip)
	}
	closeOuter()
	a.Halt()
	return a.MustBuild()
}

// buildCrafty: chess-search shape. Hot work is in self-contained, heavily
// biased intraprocedural loops (bitboard scans) plus bounded recursion.
// Because the hot cycles end with simple backward branches NET already
// spans them, leaving LEI little to gain — crafty is the paper's outlier
// for code expansion.
func buildCrafty(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 300)
	a := newAsm()
	a.Func("main")
	a.seed(0x00_186 + seed)
	a.MovImm(2, 16384)
	_, closeOuter := a.counted(1, int64(n))
	{
		a.MovImm(10, 3) // search depth
		a.Call("search")
		// Bitboard scan: a long, heavily biased single-block loop.
		a.MovImm(3, 40)
		scan := a.fresh("scan")
		a.Label(scan)
		a.work(6, 11, 12, 13)
		a.AddImm(3, 3, -1)
		a.Br(isa.CondGt, 3, RZero, scan)
	}
	closeOuter()
	a.Halt()

	a.Func("search")
	// Evaluate a few "moves"; recurse while depth > 0.
	a.work(4, 12, 13, 14)
	a.MovImm(11, 4)
	moves := a.fresh("moves")
	a.Label(moves)
	a.work(5, 13, 14, 15)
	leaf := a.fresh("leaf")
	a.Br(isa.CondLe, 10, RZero, leaf)
	a.AddImm(10, 10, -1)
	a.Call("search")
	a.AddImm(10, 10, 1)
	a.Label(leaf)
	a.work(3, 14, 15, 16)
	a.AddImm(11, 11, -1)
	a.Br(isa.CondGt, 11, RZero, moves)
	a.Ret()
	return a.MustBuild()
}

// buildParser: recursive-descent shape over a token stream. Parsing
// recursion means much of the execution is call/return chains rather than
// compact cycles, which limits how many extra region transitions LEI can
// remove — parser is the paper's transition outlier.
func buildParser(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 1500)
	a := newAsm()
	a.Func("main")
	a.seed(0x00_197 + seed)
	a.MovImm(2, 32768) // token buffer
	_, closeOuter := a.counted(1, int64(n))
	{
		a.work(2, 10, 11, 12)
		a.MovImm(10, 4) // nesting depth budget
		a.Call("expr")
		a.work(2, 11, 12, 13)
	}
	closeOuter()
	a.Halt()

	a.Func("expr")
	// term { (+|*) term }
	a.Call("term")
	more := a.fresh("more")
	done := a.fresh("done")
	a.Label(more)
	a.randBranch(100, done) // ~39% stop
	a.work(2, 12, 13, 14)
	a.Call("term")
	a.Jmp(more)
	a.Label(done)
	a.Ret()

	a.Func("term")
	a.work(3, 13, 14, 15)
	paren := a.fresh("paren")
	out := a.fresh("out")
	a.Br(isa.CondLe, 10, RZero, out) // depth exhausted: just a token
	a.randBranch(64, paren)          // 25%: parenthesized subexpression
	a.work(3, 14, 15, 16)
	a.Jmp(out)
	a.Label(paren)
	a.AddImm(10, 10, -1)
	a.Call("expr")
	a.AddImm(10, 10, 1)
	a.Label(out)
	a.work(2, 15, 16, 17)
	a.Ret()
	return a.MustBuild()
}
