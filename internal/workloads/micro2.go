package workloads

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// Additional micro-workloads probing mechanisms the SPEC-shaped benchmarks
// exercise only in aggregate: cycles closed by indirect control flow, and
// phased execution where the hot paths change partway through the run
// (the paper's §4.3.1 caveat that "programs have been shown to execute
// different paths in different phases of execution").

func init() {
	register(Workload{
		Name: "micro-retcycle",
		Description: "a hot cycle closed by a RETURN (callee above the " +
			"caller): only a selector that lets traces include indirect " +
			"backward control flow can span it",
		DefaultScale: 3000,
		Build:        func(s int) *program.Program { return ReturnCycle(scaleOr(s, 3000)) },
	})
	register(Workload{
		Name: "micro-phases",
		Description: "two execution phases with disjoint hot paths through " +
			"shared code: regions selected in phase 1 poorly predict " +
			"phase 2 (paper §4.3.1's representativeness caveat)",
		DefaultScale: 2000,
		Build:        func(s int) *program.Program { return PhaseShift(scaleOr(s, 2000)) },
	})
	register(Workload{
		Name: "micro-megamorphic",
		Description: "an indirect call site cycling through four callees: " +
			"every observed trace differs, stressing trace combination's " +
			"T_min filter",
		DefaultScale: 2500,
		Build:        func(s int) *program.Program { return Megamorphic(scaleOr(s, 2500)) },
	})
}

// ReturnCycle builds a loop whose back edge is the RETURN from a callee
// placed above the caller: the call is forward, the return backward, so the
// cycle-completing branch is indirect. NET ends traces at the backward
// return; LEI's history buffer records returns like any taken branch and
// spans the cycle.
func ReturnCycle(iters int) *program.Program {
	a := newAsm()
	a.Func("main")
	a.MovImm(1, int64(iters))
	a.Label("head")
	a.work(4, 10, 11, 12)
	a.Call("tail") // forward call; the callee's ret closes the cycle
	a.Label("back")
	a.AddImm(1, 1, -1)
	a.Br(isa.CondGt, 1, RZero, "head")
	a.Halt()

	a.Func("tail")
	a.work(5, 11, 12, 13)
	a.Ret()
	return a.MustBuild()
}

// PhaseShift builds a program with two equal-length phases sharing one
// dispatcher: phase 1 drives branch arms A/B hot, phase 2 drives C/D hot.
func PhaseShift(iters int) *program.Program {
	a := newAsm()
	a.Func("main")
	a.seed(0x00_314)
	// Phase 1.
	_, close1 := a.counted(1, int64(iters))
	a.Call("kernel_ab")
	close1()
	// Phase 2.
	_, close2 := a.counted(1, int64(iters))
	a.Call("kernel_cd")
	close2()
	a.Halt()

	a.Func("kernel_ab")
	armB := a.fresh("armB")
	join1 := a.fresh("join")
	a.randBranch(128, armB)
	a.work(5, 10, 11, 12) // arm A
	a.Jmp(join1)
	a.Label(armB)
	a.work(5, 11, 12, 13)
	a.Label(join1)
	a.Call("shared")
	a.Ret()

	a.Func("kernel_cd")
	armD := a.fresh("armD")
	join2 := a.fresh("join")
	a.randBranch(128, armD)
	a.work(5, 12, 13, 14) // arm C
	a.Jmp(join2)
	a.Label(armD)
	a.work(5, 13, 14, 15)
	a.Label(join2)
	a.Call("shared")
	a.Ret()

	a.Func("shared")
	a.work(4, 14, 15, 16)
	a.Ret()
	return a.MustBuild()
}

// Megamorphic builds a loop whose body calls through a function pointer
// that cycles deterministically through four distinct callees.
func Megamorphic(iters int) *program.Program {
	a := newAsm()
	a.Jmp("main")

	callees := []string{"impl0", "impl1", "impl2", "impl3"}
	for i, c := range callees {
		a.Func(c)
		a.work(3+i, 10, 11, 12)
		a.Ret()
	}

	a.Func("main")
	a.MovImm(2, 256) // table base
	for i, c := range callees {
		a.MovLabel(3, c)
		a.Store(2, int64(i), 3)
	}
	a.MovImm(4, 0) // rotor
	_, closeLoop := a.counted(1, int64(iters))
	{
		a.work(2, 11, 12, 13)
		a.MovImm(5, 3)
		a.And(6, 4, 5)
		a.Add(7, 2, 6)
		a.Load(8, 7, 0)
		a.CallInd(8)
		a.AddImm(4, 4, 1)
		a.work(2, 12, 13, 14)
	}
	closeLoop()
	a.Halt()
	return a.MustBuild()
}
