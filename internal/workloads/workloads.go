// Package workloads provides the benchmark programs the reproduction runs:
// twelve synthetic programs named after the SPECint2000 suite the paper
// evaluated, three micro-workloads reproducing the paper's motivating
// Figures 2–4, and a seeded random-program generator for property tests.
//
// The SPEC binaries themselves cannot be redistributed or executed here, so
// each synthetic program is engineered to exhibit the control-flow
// character the paper attributes to (or that is well known of) its
// namesake: loop nests, interprocedural cycles, unbiased branches that
// rejoin, indirect dispatch, recursion, and varying hot-path counts. All
// branch behaviour is driven by in-program linear congruential generators,
// so every run is bit-deterministic.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
)

// Register conventions shared by all workloads.
const (
	// RZero is never written; it always reads 0.
	RZero isa.Reg = 0
	// RTmpA and RTmpB are scratch registers clobbered by the emit helpers.
	RTmpA isa.Reg = 29
	RTmpB isa.Reg = 30
	// RRand holds the LCG state.
	RRand isa.Reg = 31
)

// LCG multiplier/increment (Knuth's MMIX constants).
const (
	lcgMul = 6364136223846793005
	lcgInc = 1442695040888963407
)

// Workload is a named, buildable benchmark program.
type Workload struct {
	// Name is the benchmark identifier (e.g. "gcc").
	Name string
	// Description summarizes the control-flow character being modeled.
	Description string
	// DefaultScale is the scale passed to Build by default; roughly the
	// main iteration count.
	DefaultScale int
	// Build constructs the program at the given scale (<=0 selects
	// DefaultScale).
	Build func(scale int) *program.Program
	// BuildSeeded, when non-nil, constructs the program with an offset
	// applied to its in-program PRNG seeds — the analogue of running a
	// SPEC benchmark on a different input. The SPEC-named workloads
	// provide it; the micro-workloads (whose behaviour is the point) do
	// not.
	BuildSeeded func(scale int, seed int64) *program.Program
}

// BuildDefault builds the workload at its default scale.
func (w Workload) BuildDefault() *program.Program { return w.Build(0) }

// BuildInput builds the workload with the n-th input variant (0 is the
// default input). Workloads without seed support ignore the variant.
func (w Workload) BuildInput(scale int, input int) *program.Program {
	if w.BuildSeeded == nil || input == 0 {
		return w.Build(scale)
	}
	// A large odd constant spreads variant seeds far apart.
	return w.BuildSeeded(scale, int64(input)*0x1e3779b97f4a7c15)
}

var registry = map[string]Workload{}
var order []string

func register(w Workload) {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate workload " + w.Name)
	}
	registry[w.Name] = w
	order = append(order, w.Name)
}

// Get returns a registered workload by name.
func Get(name string) (Workload, bool) {
	w, ok := registry[name]
	return w, ok
}

// Names returns all registered workload names, SPEC suite first in suite
// order, then micros, then anything else alphabetically.
func Names() []string {
	out := append([]string(nil), order...)
	return out
}

// SpecNames returns the twelve SPECint2000-named benchmarks in the order
// the paper's figures list them.
func SpecNames() []string {
	return []string{
		"gzip", "vpr", "gcc", "mcf", "crafty", "parser",
		"eon", "perlbmk", "gap", "vortex", "bzip2", "twolf",
	}
}

// Spec returns the twelve SPEC-named workloads.
func Spec() []Workload {
	out := make([]Workload, 0, 12)
	for _, n := range SpecNames() {
		w, ok := registry[n]
		if !ok {
			panic("workloads: missing spec workload " + n)
		}
		out = append(out, w)
	}
	return out
}

// MustGet returns a workload or panics.
func MustGet(name string) Workload {
	w, ok := registry[name]
	if !ok {
		known := Names()
		sort.Strings(known)
		panic(fmt.Sprintf("workloads: unknown workload %q (known: %v)", name, known))
	}
	return w
}

// asm wraps the program builder with label generation and the emit helpers
// the workload generators share.
type asm struct {
	*program.Builder
	n int
}

func newAsm() *asm { return &asm{Builder: program.NewBuilder()} }

// fresh returns a unique label with the prefix.
func (a *asm) fresh(prefix string) string {
	a.n++
	return fmt.Sprintf("%s_%d", prefix, a.n)
}

// seed initializes the LCG state register.
func (a *asm) seed(v int64) {
	a.MovImm(RRand, v)
}

// rand advances the LCG and leaves a value in [0,256) in RTmpB. Clobbers
// RTmpA.
func (a *asm) rand() {
	a.MovImm(RTmpA, lcgMul)
	a.Mul(RRand, RRand, RTmpA)
	a.MovImm(RTmpA, lcgInc)
	a.Add(RRand, RRand, RTmpA)
	a.MovImm(RTmpA, 33)
	a.Shr(RTmpB, RRand, RTmpA)
	a.MovImm(RTmpA, 255)
	a.And(RTmpB, RTmpB, RTmpA)
}

// randBranch branches to label with probability p/256. Clobbers RTmpA and
// RTmpB.
func (a *asm) randBranch(p int, label string) {
	a.rand()
	a.MovImm(RTmpA, int64(p))
	a.Br(isa.CondLt, RTmpB, RTmpA, label)
}

// randRange advances the LCG and leaves a value in [0,n) in dst (n must be
// a power of two). Clobbers RTmpA and RTmpB.
func (a *asm) randRange(dst isa.Reg, n int) {
	if n&(n-1) != 0 {
		panic("workloads: randRange needs a power of two")
	}
	a.rand()
	a.MovImm(RTmpA, int64(n-1))
	a.And(dst, RTmpB, RTmpA)
}

// counted opens a loop that runs count times using reg as the induction
// variable counting down to zero; close it with next. The loop header
// label is returned for reference.
func (a *asm) counted(reg isa.Reg, count int64) (header string, close func()) {
	a.MovImm(reg, count)
	header = a.fresh("loop")
	a.Label(header)
	return header, func() {
		a.AddImm(reg, reg, -1)
		a.Br(isa.CondGt, reg, RZero, header)
	}
}

// work emits n filler ALU instructions mixing a few registers, giving
// blocks realistic sizes without affecting control flow.
func (a *asm) work(n int, regs ...isa.Reg) {
	if len(regs) == 0 {
		regs = []isa.Reg{20, 21, 22}
	}
	for i := 0; i < n; i++ {
		d := regs[i%len(regs)]
		s := regs[(i+1)%len(regs)]
		switch i % 4 {
		case 0:
			a.Add(d, d, s)
		case 1:
			a.Xor(d, d, s)
		case 2:
			a.AddImm(d, s, int64(i+1))
		case 3:
			a.Sub(d, d, s)
		}
	}
}

// scaleOr returns scale when positive, otherwise def.
func scaleOr(scale, def int) int {
	if scale > 0 {
		return scale
	}
	return def
}
