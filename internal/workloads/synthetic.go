package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/program"
)

func init() {
	register(Workload{
		Name: "synthetic",
		Description: "seeded large-program stress generator: a randomized " +
			"mix of loop nests, call graphs, indirect dispatch, and " +
			"biased/unbiased branch diamonds sized to a target dynamic " +
			"instruction count (scale; default 2×10⁵)",
		DefaultScale: 200_000,
		Build:        func(s int) *program.Program { return Synthetic(0x5EED, scaleOr(s, 200_000)) },
		BuildSeeded:  func(s int, seed int64) *program.Program { return Synthetic(0x5EED^seed, scaleOr(s, 200_000)) },
	})
}

// synthUnit emits one kernel's functions and records how main invokes it.
type synthUnit struct {
	entry string // function main calls
}

// Synthetic builds a seeded large program: size is the target dynamic
// instruction count (the paper-scale stress range is 10⁵–10⁶). The program
// is a sequence of independently shaped kernels — loop nests, call graphs,
// indirect dispatch through in-memory jump tables, and biased/unbiased
// branch diamonds — whose shapes, trip counts, and block sizes are drawn
// from a generator seeded with seed, while all dynamic branch behaviour is
// driven by an in-program LCG seeded from the same value. The static size
// grows with the target (roughly one kernel per 8k dynamic instructions),
// so large sizes stress the dense per-address tables as well as the
// simulation loop. Same seed and size ⇒ byte-identical program and
// bit-identical execution; every loop is counted, so the program always
// terminates.
func Synthetic(seed int64, size int) *program.Program {
	if size <= 0 {
		size = 200_000
	}
	rng := rand.New(rand.NewSource(seed))
	a := newAsm()
	a.Jmp("main")

	nUnits := size / 4000
	if nUnits < 4 {
		nUnits = 4
	}
	if nUnits > 192 {
		nUnits = 192
	}
	budget := size / nUnits
	g := &synthGen{asm: a, rng: rng}
	units := make([]synthUnit, nUnits)
	for u := range units {
		// Kernels are emitted before main (lower addresses), so main's
		// calls are forward and each kernel's internal cycles are the only
		// backward control flow — the shape region selectors profile.
		switch g.rng.Intn(5) {
		case 0:
			units[u] = g.loopNest(u, budget)
		case 1:
			units[u] = g.callGraph(u, budget)
		case 2:
			units[u] = g.indirectDispatch(u, budget)
		case 3:
			units[u] = g.diamond(u, budget, 16+g.rng.Intn(32)) // biased
		default:
			units[u] = g.diamond(u, budget, 120+g.rng.Intn(16)) // unbiased
		}
	}

	a.Func("main")
	a.seed(seed | 1)
	for _, u := range units {
		a.Call(u.entry)
	}
	a.Halt()
	return a.MustBuild()
}

// synthGen carries the structure RNG through kernel emission.
type synthGen struct {
	asm *asm
	rng *rand.Rand
}

func (g *synthGen) name(u int, kind string) string {
	return fmt.Sprintf("u%d_%s", u, kind)
}

// iters converts a dynamic-instruction budget into a trip count given an
// estimated per-iteration cost.
func iters(budget, perIter int) int64 {
	n := budget / perIter
	if n < 2 {
		n = 2
	}
	return int64(n)
}

// loopNest emits a 2- or 3-deep counted loop nest with filler work and a
// rarely-taken early-out branch in the innermost body.
func (g *synthGen) loopNest(u, budget int) synthUnit {
	a := g.asm
	entry := g.name(u, "nest")
	a.Func(entry)
	depth := 2 + g.rng.Intn(2)
	w := 4 + g.rng.Intn(9)
	inner := int64(8 + g.rng.Intn(25))
	perIter := w + 8 + 2 // body + LCG branch + loop close
	total := iters(budget, int(inner)*perIter)
	skip := a.fresh("skip")
	_, closeOuter := a.counted(1, total)
	a.work(2, 10, 11, 12)
	_, closeMid := a.counted(2, inner)
	if depth == 3 {
		_, closeInner := a.counted(3, 2)
		a.work(w/2, 12, 13, 14)
		closeInner()
	}
	a.work(w, 13, 14, 15)
	a.randBranch(8, skip) // rare early-out: a low-frequency side exit
	a.work(2, 14, 15, 16)
	a.Label(skip)
	closeMid()
	closeOuter()
	a.Ret()
	return synthUnit{entry: entry}
}

// callGraph emits a chain of 2–4 helper functions invoked from a counted
// loop, with one helper shared by two call sites (a join in the dynamic
// call graph).
func (g *synthGen) callGraph(u, budget int) synthUnit {
	a := g.asm
	k := 2 + g.rng.Intn(3)
	helpers := make([]string, k)
	for i := range helpers {
		helpers[i] = g.name(u, fmt.Sprintf("h%d", i))
		a.Func(helpers[i])
		a.work(3+g.rng.Intn(6), 16, 17, 18)
		if i > 0 && g.rng.Intn(2) == 0 {
			a.Call(helpers[i-1]) // backward call into the previous helper
		}
		a.Ret()
	}
	entry := g.name(u, "calls")
	a.Func(entry)
	perIter := k*9 + 6
	_, closeLoop := a.counted(1, iters(budget, perIter))
	for _, h := range helpers {
		a.Call(h) // backward calls: the interprocedural cycles NET stops at
	}
	a.work(3, 10, 11, 12)
	closeLoop()
	a.Ret()
	return synthUnit{entry: entry}
}

// indirectDispatch emits a loop dispatching through an in-memory jump table
// of 4 or 8 case blocks — the megamorphic-site stressor.
func (g *synthGen) indirectDispatch(u, budget int) synthUnit {
	a := g.asm
	entry := g.name(u, "disp")
	a.Func(entry)
	ncase := 4 << g.rng.Intn(2)
	cases := make([]string, ncase)
	for i := range cases {
		cases[i] = a.fresh(fmt.Sprintf("u%d_case", u))
	}
	join := a.fresh(fmt.Sprintf("u%d_join", u))
	// Each unit owns a disjoint table region: 1024 + 64 words apart.
	base := int64(1024 + u*64)
	a.MovImm(2, base)
	for i, c := range cases {
		a.MovLabel(3, c)
		a.Store(2, int64(i), 3)
	}
	perIter := 8 + 4 + 6 + 4 // LCG + dispatch + case body + close
	_, closeLoop := a.counted(1, iters(budget, perIter))
	a.randRange(4, ncase)
	a.Add(5, 2, 4)
	a.Load(6, 5, 0)
	a.JmpInd(6)
	for i, c := range cases {
		a.Label(c)
		a.work(3+i%4, 18, 19, 20)
		a.Jmp(join)
	}
	a.Label(join)
	a.work(2, 11, 12, 13)
	closeLoop()
	a.Ret()
	return synthUnit{entry: entry}
}

// diamond emits a loop whose body branches to one of two arms with
// probability p/256 and rejoins — biased for small or large p, maximally
// unbiased at 128 (the rejoining-path shape trace combination targets).
func (g *synthGen) diamond(u, budget, p int) synthUnit {
	a := g.asm
	entry := g.name(u, "dia")
	a.Func(entry)
	arm := a.fresh(fmt.Sprintf("u%d_arm", u))
	join := a.fresh(fmt.Sprintf("u%d_join", u))
	w := 3 + g.rng.Intn(7)
	perIter := 8 + 2 + w + 3 + 2
	_, closeLoop := a.counted(1, iters(budget, perIter))
	a.randBranch(p, arm)
	a.work(w, 20, 21, 22)
	a.Jmp(join)
	a.Label(arm)
	a.work(w, 21, 22, 23)
	a.Label(join)
	a.work(3, 12, 13, 14)
	closeLoop()
	a.Ret()
	return synthUnit{entry: entry}
}
