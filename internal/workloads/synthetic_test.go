package workloads

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

func programsIdentical(a, b *program.Program) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(isa.Addr(i)) != b.At(isa.Addr(i)) {
			return false
		}
	}
	return true
}

// branchPrefix interprets the program and returns its first n taken-branch
// events.
func branchPrefix(t *testing.T, p *program.Program, n int) [][2]isa.Addr {
	t.Helper()
	var out [][2]isa.Addr
	m := vm.New(p, vm.Config{})
	if _, err := m.Run(vm.SinkFunc(func(src, tgt isa.Addr, _ vm.BranchKind) {
		if len(out) < n {
			out = append(out, [2]isa.Addr{src, tgt})
		}
	})); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(42, 150_000)
	b := Synthetic(42, 150_000)
	if !programsIdentical(a, b) {
		t.Fatal("same seed and size produced different programs")
	}
	sa, err := vm.New(a, vm.Config{}).Run(vm.SinkFunc(func(isa.Addr, isa.Addr, vm.BranchKind) {}))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := vm.New(b, vm.Config{}).Run(vm.SinkFunc(func(isa.Addr, isa.Addr, vm.BranchKind) {}))
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same program executed differently: %+v vs %+v", sa, sb)
	}
}

func TestSyntheticSizeTracksTarget(t *testing.T) {
	for _, size := range []int{100_000, 400_000, 1_000_000} {
		p := Synthetic(0x5EED, size)
		stats, err := vm.New(p, vm.Config{}).Run(vm.SinkFunc(func(isa.Addr, isa.Addr, vm.BranchKind) {}))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		// The generator works from per-iteration cost estimates, so enforce
		// a broad band, not the exact target.
		if stats.Instrs < uint64(size)/3 || stats.Instrs > uint64(size)*3 {
			t.Errorf("size %d: executed %d dynamic instructions, want within 3x of target", size, stats.Instrs)
		}
		if p.Len() < 500 {
			t.Errorf("size %d: static program only %d instructions; expected large-program stress", size, p.Len())
		}
	}
}

func TestSyntheticSeedsDiffer(t *testing.T) {
	a := Synthetic(1, 150_000)
	b := Synthetic(2, 150_000)
	if programsIdentical(a, b) {
		t.Fatal("different seeds produced identical programs")
	}
	// Even when structures overlap, the dynamic branch streams must differ.
	pa := branchPrefix(t, a, 2000)
	pb := branchPrefix(t, b, 2000)
	same := len(pa) == len(pb)
	if same {
		for i := range pa {
			if pa[i] != pb[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical taken-branch streams")
	}
}

func TestSyntheticRegistered(t *testing.T) {
	w, ok := Get("synthetic")
	if !ok {
		t.Fatal("synthetic workload not registered")
	}
	p := w.Build(50_000)
	if p.Len() == 0 {
		t.Fatal("empty synthetic program")
	}
	// BuildSeeded must vary the program like a different benchmark input.
	if programsIdentical(w.BuildInput(50_000, 0), w.BuildInput(50_000, 1)) {
		t.Fatal("input variants identical")
	}
}
