package workloads

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
)

func TestRegistryCoherent(t *testing.T) {
	names := Names()
	if len(names) < 15 {
		t.Fatalf("only %d workloads registered", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate name %q", n)
		}
		seen[n] = true
		w, ok := Get(n)
		if !ok || w.Name != n || w.Build == nil || w.Description == "" || w.DefaultScale <= 0 {
			t.Errorf("workload %q malformed: %+v", n, w)
		}
	}
	for _, n := range SpecNames() {
		if !seen[n] {
			t.Errorf("SPEC workload %q missing", n)
		}
	}
	if len(SpecNames()) != 12 {
		t.Error("SPEC suite must have 12 benchmarks")
	}
	if _, ok := Get("no-such-bench"); ok {
		t.Error("Get of unknown workload succeeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustGet of unknown workload did not panic")
			}
		}()
		MustGet("no-such-bench")
	}()
}

// TestAllWorkloadsRunToCompletion is the workload suite's core guarantee:
// every registered program halts, well within its instruction budget, at
// every scale the test suite uses.
func TestAllWorkloadsRunToCompletion(t *testing.T) {
	for _, name := range Names() {
		w := MustGet(name)
		for _, scale := range []int{1, 25, 0} {
			prog := w.Build(scale)
			st, err := vm.Run(prog, vm.Config{MaxInstrs: 1 << 28}, nil)
			if err != nil {
				t.Fatalf("%s scale=%d: %v", name, scale, err)
			}
			if st.Instrs == 0 || st.Branches == 0 {
				t.Errorf("%s scale=%d: trivial run (%d instrs)", name, scale, st.Instrs)
			}
		}
	}
}

func TestDefaultScalesAreReasonable(t *testing.T) {
	// Default-scale runs must be big enough to exercise selection (well
	// past the thresholds) but small enough to keep the experiment harness
	// fast.
	for _, name := range SpecNames() {
		prog := MustGet(name).BuildDefault()
		st, err := vm.Run(prog, vm.Config{}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Instrs < 100_000 {
			t.Errorf("%s: only %d instructions at default scale", name, st.Instrs)
		}
		if st.Instrs > 50_000_000 {
			t.Errorf("%s: %d instructions is excessive", name, st.Instrs)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, name := range []string{"gcc", "twolf", "perlbmk"} {
		w := MustGet(name)
		p1 := w.Build(30)
		p2 := w.Build(30)
		s1, err := vm.Run(p1, vm.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := vm.Run(p2, vm.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Errorf("%s: two builds ran differently: %+v vs %+v", name, s1, s2)
		}
	}
}

func TestScaleChangesWork(t *testing.T) {
	w := MustGet("gzip")
	small, err := vm.Run(w.Build(10), vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	large, err := vm.Run(w.Build(100), vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if large.Instrs < 5*small.Instrs {
		t.Errorf("scale barely affects size: %d vs %d", small.Instrs, large.Instrs)
	}
}

func TestMicroWorkloadShapes(t *testing.T) {
	// LoopWithCall: the callee must sit below its call site so the call is
	// a backward branch (the Figure 2 premise).
	p := LoopWithCall(10)
	var callAddr, calleeEntry isa.Addr
	found := false
	for a := isa.Addr(0); int(a) < p.Len(); a++ {
		in := p.At(a)
		if in.Op == isa.Call {
			callAddr, calleeEntry = a, in.Target
			found = true
		}
	}
	if !found {
		t.Fatal("no call in LoopWithCall")
	}
	if calleeEntry > callAddr {
		t.Errorf("call at %d targets %d: not backward", callAddr, calleeEntry)
	}

	// NestedLoops: B must be a self-looping single block reached by
	// fall-through from A.
	np := NestedLoops(3, 4)
	bAddr, ok := np.Label("B")
	if !ok {
		t.Fatal("no label B")
	}
	end := np.BlockEnd(bAddr)
	last := np.At(end - 1)
	if last.Op != isa.Br || last.Target != bAddr {
		t.Errorf("B does not self-loop: %s", last)
	}

	// UnbiasedBranch: the A branch must be roughly 50/50. Count dynamic
	// outcomes.
	up := UnbiasedBranch(4000)
	taken := 0
	var total int
	_, err := vm.Run(up, vm.Config{}, vm.SinkFunc(func(src, tgt isa.Addr, kind vm.BranchKind) {
		cLabel, _ := up.Label("C")
		if tgt == cLabel {
			taken++
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	total = 4000
	ratio := float64(taken) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("A->C ratio = %.3f, want ~0.5", ratio)
	}
}

func TestRandomProgramsTerminate(t *testing.T) {
	check := func(seed int64, funcs uint8, depth uint8, constructs uint8) bool {
		cfg := GenConfig{
			Seed:       seed,
			Funcs:      int(funcs % 9),
			MaxDepth:   1 + int(depth%4),
			Iters:      10,
			Constructs: 1 + int(constructs%8),
		}
		p := Random(cfg)
		st, err := vm.Run(p, vm.Config{MaxInstrs: 1 << 26}, nil)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Regenerating with the same config gives the identical program.
		p2 := Random(cfg)
		if p.Len() != p2.Len() {
			t.Logf("seed %d: non-deterministic generation", seed)
			return false
		}
		st2, err := vm.Run(p2, vm.Config{MaxInstrs: 1 << 26}, nil)
		if err != nil || st != st2 {
			t.Logf("seed %d: runs differ", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomProgramsValid(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Random(GenConfig{Seed: seed, Funcs: int(seed % 6)})
		// Every block leader must be addressable and every direct branch
		// target a leader (program.New validates most of this; assert the
		// program is non-trivial).
		if p.Len() < 5 {
			t.Errorf("seed %d: trivial program (%d instrs)", seed, p.Len())
		}
		if p.NumBlocks() < 2 {
			t.Errorf("seed %d: no branching structure", seed)
		}
	}
}

var _ = program.Program{} // keep the import for helper types

// TestAllWorkloadsVerify runs deep structural validation over every
// registered workload and a batch of random programs.
func TestAllWorkloadsVerify(t *testing.T) {
	for _, name := range Names() {
		if err := MustGet(name).Build(1).Verify(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for seed := int64(0); seed < 25; seed++ {
		p := Random(GenConfig{Seed: seed, Funcs: int(seed % 7)})
		if err := p.Verify(); err != nil {
			t.Errorf("random seed %d: %v", seed, err)
		}
	}
}
