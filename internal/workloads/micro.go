package workloads

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// The three micro-workloads reproduce the motivating scenarios of the
// paper's Figures 2, 3 and 4. Each is registered under a "fig" name and
// also exposed as a constructor so examples and tests can build them at a
// chosen iteration count.

func init() {
	register(Workload{
		Name: "fig2-loop-call",
		Description: "loop with a function call to a lower address on its " +
			"dominant path (paper Figure 2): NET needs two traces, LEI spans " +
			"the interprocedural cycle with one",
		DefaultScale: 2000,
		Build:        func(s int) *program.Program { return LoopWithCall(scaleOr(s, 2000)) },
	})
	register(Workload{
		Name: "fig3-nested-loops",
		Description: "simple nested loops (paper Figure 3): NET duplicates " +
			"the inner loop in the outer trace",
		DefaultScale: 500,
		Build:        func(s int) *program.Program { return NestedLoops(scaleOr(s, 500), 20) },
	})
	register(Workload{
		Name: "fig4-unbiased",
		Description: "an unbiased branch followed by a biased branch with a " +
			"rejoin (paper Figure 4): NET splits and duplicates the tail; " +
			"trace combination keeps one region",
		DefaultScale: 3000,
		Build:        func(s int) *program.Program { return UnbiasedBranch(scaleOr(s, 3000)) },
	})
}

// LoopWithCall builds the Figure 2 control-flow graph: a loop whose
// dominant path A-B-D calls a function E-F placed at a lower address, so
// the call is a backward branch. The path through C is taken about 10% of
// the time. The loop body runs iters times.
func LoopWithCall(iters int) *program.Program {
	a := newAsm()
	// Entry jumps over the callee so that the callee sits at a lower
	// address than its call site, making the call a backward branch.
	a.Jmp("main")

	a.Func("callee")
	// E
	a.work(4, 10, 11, 12)
	a.AddImm(13, 13, 1)
	// F
	a.Label(a.fresh("F"))
	a.work(3, 11, 12, 13)
	a.Ret()

	a.Func("main")
	a.seed(0x5eed_f162)
	a.MovImm(1, int64(iters))
	a.Label("A")
	a.work(3, 2, 3, 4)
	a.randBranch(26, "C") // ~10%: A -> C
	// B (fall-through, dominant)
	a.work(4, 3, 4, 5)
	a.Call("callee")
	a.Jmp("D")
	a.Label("C")
	a.work(5, 4, 5, 6)
	a.Label("D")
	a.work(3, 5, 6, 7)
	a.AddImm(1, 1, -1)
	a.Br(isa.CondGt, 1, RZero, "A")
	a.Halt()
	return a.MustBuild()
}

// NestedLoops builds the Figure 3 control-flow graph: an outer loop A
// falling into a self-looping inner block B, followed by C which branches
// back to A. The outer loop runs outer times; the inner loop runs inner
// iterations per outer iteration.
func NestedLoops(outer, inner int) *program.Program {
	a := newAsm()
	a.Func("main")
	a.MovImm(1, int64(outer))
	a.Label("A")
	a.work(3, 2, 3, 4)
	a.MovImm(5, int64(inner))
	// B: single-block inner loop with a backward self branch.
	a.Label("B")
	a.work(4, 10, 11, 12)
	a.AddImm(5, 5, -1)
	a.Br(isa.CondGt, 5, RZero, "B")
	// C: exits the inner loop and branches back to the outer header.
	a.Label("C")
	a.work(3, 11, 12, 13)
	a.AddImm(1, 1, -1)
	a.Br(isa.CondGt, 1, RZero, "A")
	a.Halt()
	return a.MustBuild()
}

// UnbiasedBranch builds the Figure 4 control-flow graph inside a driving
// loop: block A ends with a 50/50 branch to B or C, which rejoin at D; D
// ends with a branch that goes to F 90% of the time and E 10%, and both
// rejoin before the loop back edge.
func UnbiasedBranch(iters int) *program.Program {
	a := newAsm()
	a.Func("main")
	a.seed(0x5eed_f164)
	a.MovImm(1, int64(iters))
	a.Label("head")
	// A
	a.work(2, 2, 3, 4)
	a.randBranch(128, "C") // 50%: A -> C
	// B (fall-through)
	a.work(4, 3, 4, 5)
	a.Jmp("D")
	a.Label("C")
	a.work(4, 4, 5, 6)
	a.Label("D")
	a.work(2, 5, 6, 7)
	a.randBranch(26, "E") // ~10%: D -> E
	// F (fall-through, dominant)
	a.Label("F")
	a.work(3, 6, 7, 8)
	a.Jmp("G")
	a.Label("E")
	a.work(3, 7, 8, 9)
	a.Label("G")
	a.AddImm(1, 1, -1)
	a.Br(isa.CondGt, 1, RZero, "head")
	a.Halt()
	return a.MustBuild()
}
