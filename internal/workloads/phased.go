package workloads

import (
	"math/rand"

	"repro/internal/program"
)

func init() {
	register(Workload{
		Name: "phased",
		Description: "seeded phase-regime generator: long homogeneous " +
			"loop-nest, call-heavy, and jump-table-dispatch phases stitched " +
			"in sequence (several rounds of fresh kernels, so a phase-aware " +
			"selector must keep switching and finished phases leave dead " +
			"code), sized to a target dynamic instruction count (scale; " +
			"default 2.4×10⁵) — the adaptive meta-selector's showcase " +
			"workload",
		DefaultScale: 240_000,
		Build:        func(s int) *program.Program { return Phased(0xFA5E, scaleOr(s, 240_000)) },
		BuildSeeded:  func(s int, seed int64) *program.Program { return Phased(0xFA5E^seed, scaleOr(s, 240_000)) },
	})
}

// Phased builds a seeded program whose execution moves through distinct,
// long-lived phase regimes: a loop-nest phase (tight counted nests —
// backward-branch-dominated, NET's home turf), a call-heavy phase (helper
// chains invoked from loops — the interprocedural cycles LEI detects), and
// a jump-table phase (indirect dispatch through in-memory tables — the
// megamorphic mix), in that order, over several rounds — with fresh
// kernels in every round, the staged-program shape (init → compute →
// output → next stage) where code a phase leaves behind is never
// executed again. Unlike
// Synthetic, which shuffles kernel kinds randomly so every region of time
// looks alike, Phased keeps each regime homogeneous and consecutive, so a
// phase detector sees an unambiguous signal, must switch back and forth
// across regimes, and dead regions from finished phases are pure cache
// liability for any selector that keeps them. Same seed and size ⇒
// byte-identical program and bit-identical execution; every loop is
// counted, so the program always terminates.
func Phased(seed int64, size int) *program.Program {
	if size <= 0 {
		size = 240_000
	}
	rng := rand.New(rand.NewSource(seed))
	a := newAsm()
	a.Jmp("main")

	// Several rounds of three regimes; every regime is a few kernels of one
	// kind sharing the regime's dynamic-instruction budget, and each round
	// gets its own kernels (unit ids offset by 300) so finished phases
	// leave only dead code behind. Six rounds keep individual phases short
	// enough that a static selector's per-phase region investment is a real
	// cost (dead regions pile up 18 times), while each phase still runs
	// long enough for an online detector to classify it and profit.
	const rounds = 6
	kernels := 2 + rng.Intn(2)
	budget := size / (3 * rounds * kernels)
	g := &synthGen{asm: a, rng: rng}
	var phases [][]synthUnit
	for round := 0; round < rounds; round++ {
		base := 300 * round
		nest := make([]synthUnit, 0, kernels)
		calls := make([]synthUnit, 0, kernels)
		disp := make([]synthUnit, 0, kernels)
		for i := 0; i < kernels; i++ {
			nest = append(nest, g.loopNest(base+i, budget))
		}
		for i := 0; i < kernels; i++ {
			calls = append(calls, g.callGraph(base+100+i, budget))
		}
		for i := 0; i < kernels; i++ {
			disp = append(disp, g.indirectDispatch(base+200+i, budget))
		}
		phases = append(phases, nest, calls, disp)
	}

	a.Func("main")
	a.seed(seed | 1)
	for _, phase := range phases {
		for _, u := range phase {
			a.Call(u.entry)
		}
	}
	a.Halt()
	return a.MustBuild()
}
