package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/isa"
	"repro/internal/program"
)

// GenConfig parameterizes the random structured-program generator.
type GenConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Funcs is the number of callable helper functions (0–8).
	Funcs int
	// MaxDepth bounds construct nesting.
	MaxDepth int
	// Iters scales loop trip counts.
	Iters int
	// Constructs is the number of top-level constructs in main.
	Constructs int
}

func (c *GenConfig) defaults() {
	if c.Funcs < 0 {
		c.Funcs = 0
	}
	if c.Funcs > 8 {
		c.Funcs = 8
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.Iters <= 0 {
		c.Iters = 30
	}
	if c.Constructs <= 0 {
		c.Constructs = 6
	}
}

// Random generates a structured random program that always terminates:
// every loop is counted, recursion is absent, and random branch outcomes
// come from the in-program LCG. It is the substrate for property-based
// tests: any generated program must run identically under every selector
// and yield consistent metrics.
func Random(cfg GenConfig) *program.Program {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := newAsm()
	if cfg.Funcs > 0 {
		a.Jmp("main")
	}
	g := &generator{asm: a, rng: rng, cfg: cfg}
	// Helper functions first (lower addresses: calls are backward).
	for i := 0; i < cfg.Funcs; i++ {
		name := fmt.Sprintf("fn%d", i)
		g.funcs = append(g.funcs, name)
		a.Func(name)
		// Functions may call earlier functions only, so the call graph is
		// acyclic and depth-bounded. Function loops draw from a different
		// register range than main's so a call inside a main loop does not
		// clobber the live induction variable. (Even with a clobber the
		// program would terminate — counters are reset on loop entry and
		// only ever decremented afterwards — but the loop shape would be
		// distorted.)
		g.regBase, g.regSpan = 10, 8
		g.callable = g.funcs[:i]
		g.block(2)
		for c := 0; c < 1+rng.Intn(2); c++ {
			g.construct(1)
		}
		a.Ret()
	}
	a.Func("main")
	a.seed(int64(rng.Uint64()>>1) | 1)
	g.regBase, g.regSpan = 1, 9
	g.callable = g.funcs
	for c := 0; c < cfg.Constructs; c++ {
		g.construct(cfg.MaxDepth)
	}
	a.Halt()
	return a.MustBuild()
}

type generator struct {
	asm      *asm
	rng      *rand.Rand
	cfg      GenConfig
	funcs    []string
	callable []string
	loopReg  int // next loop register offset (cycled within the span)
	regBase  int // first loop register of the current context
	regSpan  int // number of loop registers available
}

// block emits a straight-line block of 1..n work instructions.
func (g *generator) block(n int) {
	g.asm.work(1+g.rng.Intn(n*2), 20, 21, 22)
}

// nextLoopReg cycles the context's loop registers so nested loops do not
// clobber each other.
func (g *generator) nextLoopReg() isa.Reg {
	g.loopReg = (g.loopReg + 1) % g.regSpan
	return isa.Reg(g.regBase + g.loopReg)
}

// construct emits one random structured construct.
func (g *generator) construct(depth int) {
	choices := 3 // work, if-else, loop
	if len(g.callable) > 0 {
		choices = 4
	}
	if depth <= 0 {
		g.block(3)
		return
	}
	switch g.rng.Intn(choices) {
	case 0:
		g.block(4)
	case 1: // if-else with random bias
		alt := g.asm.fresh("ralt")
		join := g.asm.fresh("rjoin")
		g.asm.randBranch(16+g.rng.Intn(224), alt)
		g.construct(depth - 1)
		g.asm.Jmp(join)
		g.asm.Label(alt)
		g.construct(depth - 1)
		g.asm.Label(join)
	case 2: // counted loop
		reg := g.nextLoopReg()
		iters := 2 + g.rng.Intn(g.cfg.Iters)
		_, closeLoop := g.asm.counted(reg, int64(iters))
		g.construct(depth - 1)
		closeLoop()
	case 3: // call
		g.asm.Call(g.callable[g.rng.Intn(len(g.callable))])
	}
}
