package workloads

import (
	"repro/internal/isa"
	"repro/internal/program"
)

// Second half of the SPECint2000-named synthetic benchmarks.

func init() {
	register(Workload{
		Name: "eon",
		Description: "ray tracing (C++): tiny constructors called from many " +
			"hot call sites — one trace exit-dominates many others (the " +
			"paper's exit-domination outlier)",
		DefaultScale: 2500,
		Build:        func(s int) *program.Program { return buildEon(s, 0) },
		BuildSeeded:  buildEon,
	})
	register(Workload{
		Name: "perlbmk",
		Description: "interpreter: indirect opcode-dispatch loop; the hot " +
			"cycles run through an indirect jump and helper calls",
		DefaultScale: 900,
		Build:        func(s int) *program.Program { return buildPerlbmk(s, 0) },
		BuildSeeded:  buildPerlbmk,
	})
	register(Workload{
		Name: "gap",
		Description: "computer algebra: a few arithmetic kernels called " +
			"round-robin, each an internally biased loop",
		DefaultScale: 700,
		Build:        func(s int) *program.Program { return buildGap(s, 0) },
		BuildSeeded:  buildGap,
	})
	register(Workload{
		Name: "vortex",
		Description: "OO database: deep chains of small calls with short " +
			"blocks; many related traces of similar frequency",
		DefaultScale: 700,
		Build:        func(s int) *program.Program { return buildVortex(s, 0) },
		BuildSeeded:  buildVortex,
	})
	register(Workload{
		Name: "bzip2",
		Description: "block sorting: triply nested loops, biased inner compare " +
			"loop with occasional early exit; few, large hot cycles",
		DefaultScale: 250,
		Build:        func(s int) *program.Program { return buildBzip2(s, 0) },
		BuildSeeded:  buildBzip2,
	})
	register(Workload{
		Name: "twolf",
		Description: "place and route: annealing loop with an unbiased " +
			"accept/reject branch whose arms call different update routines " +
			"and rejoin",
		DefaultScale: 4000,
		Build:        func(s int) *program.Program { return buildTwolf(s, 0) },
		BuildSeeded:  buildTwolf,
	})
}

// buildEon: a small constructor ("ggPoint3") called from many distinct hot
// loops. Once a trace is selected for the constructor, each caller's trace
// stops at the (backward) call and a new trace is selected at the
// constructor's exit — one trace exit-dominating many (paper §4.1).
func buildEon(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 2500)
	a := newAsm()
	a.Jmp("main")

	a.Func("ctor")
	a.work(3, 10, 11, 12)
	a.Store(2, 0, 10)
	a.Store(2, 1, 11)
	a.Store(2, 2, 12)
	a.Ret()

	a.Func("norm")
	a.work(4, 11, 12, 13)
	a.Call("ctor")
	a.work(2, 12, 13, 14)
	a.Ret()

	a.Func("main")
	a.seed(0x00_252 + seed)
	a.MovImm(2, 4096)
	// Six distinct hot loops, each calling the constructor (directly or
	// through norm) from its own call site.
	for site := 0; site < 6; site++ {
		_, closeLoop := a.counted(1, int64(n))
		a.work(2+site, 13, 14, 15)
		if site%2 == 0 {
			a.Call("ctor")
		} else {
			a.Call("norm")
		}
		a.work(3, 14, 15, 16)
		closeLoop()
	}
	a.Halt()
	return a.MustBuild()
}

// buildPerlbmk: a bytecode-interpreter shape: fetch an opcode, dispatch
// through a jump table, execute a short handler (some call helpers), loop.
// The hot cycle passes through an indirect jump, which LEI can keep inside
// a single trace.
func buildPerlbmk(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 900)
	a := newAsm()
	a.Jmp("main")

	a.Func("magic")
	a.work(5, 10, 11, 12)
	a.Ret()

	a.Func("main")
	a.seed(0x00_256 + seed)
	a.MovImm(2, 512) // opcode jump table
	ops := make([]string, 8)
	for i := range ops {
		ops[i] = a.fresh("op")
		a.MovLabel(3, ops[i])
		a.Store(2, int64(i), 3)
	}
	_, closeRun := a.counted(1, int64(n*16))
	{
		// Fetch: ~70% of fetches are op0/op1 (a skewed opcode mix).
		common := a.fresh("common")
		fetch := a.fresh("fetch")
		a.randBranch(180, common)
		a.randRange(4, 8)
		a.Jmp(fetch)
		a.Label(common)
		a.randRange(4, 2)
		a.Label(fetch)
		a.Add(5, 2, 4)
		a.Load(6, 5, 0)
		a.JmpInd(6)
		next := a.fresh("next")
		for i, op := range ops {
			a.Label(op)
			a.work(3+i%3, 11, 12, 13)
			if i == 3 || i == 6 {
				a.Call("magic")
			}
			a.Jmp(next)
		}
		a.Label(next)
		a.work(2, 12, 13, 14)
	}
	closeRun()
	a.Halt()
	return a.MustBuild()
}

// buildGap: algebra kernels called round-robin from the main loop; each
// kernel is its own biased loop, so hot cycles are interprocedural but
// regular.
func buildGap(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 700)
	a := newAsm()
	a.Jmp("main")

	kernels := []string{"kmul", "kadd", "kred"}
	for ki, k := range kernels {
		a.Func(k)
		a.MovImm(10, int64(6+ki*3))
		loop := a.fresh("k")
		a.Label(loop)
		a.work(4+ki, 11, 12, 13)
		a.AddImm(10, 10, -1)
		a.Br(isa.CondGt, 10, RZero, loop)
		a.Ret()
	}

	a.Func("main")
	a.seed(0x00_254 + seed)
	_, closeMain := a.counted(1, int64(n))
	{
		a.work(2, 12, 13, 14)
		a.Call("kmul")
		a.work(2, 13, 14, 15)
		a.Call("kadd")
		rare := a.fresh("rare")
		a.randBranch(200, rare) // 78%: reduce
		a.Jmp("skipred")
		a.Label(rare)
		a.Call("kred")
		a.Label("skipred")
		a.work(2, 14, 15, 16)
	}
	closeMain()
	a.Halt()
	return a.MustBuild()
}

// buildVortex: an object-database shape — lookups descend through chains
// of small functions with short blocks, with moderately biased branches at
// each level. Many related traces of similar frequency are selected, the
// regime where combining traces can occasionally shorten selected paths
// (vortex is the paper's one case where combined NET transitions rose).
func buildVortex(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 700)
	a := newAsm()
	a.Jmp("main")

	a.Func("chunk")
	a.work(3, 10, 11, 12)
	alt := "chunk_alt"
	out := "chunk_out"
	a.randBranch(96, alt) // 37%
	a.work(2, 11, 12, 13)
	a.Jmp(out)
	a.Label(alt)
	a.work(2, 12, 13, 14)
	a.Label(out)
	a.Ret()

	a.Func("field")
	a.work(2, 11, 12, 13)
	a.Call("chunk")
	miss := "field_miss"
	done := "field_done"
	a.randBranch(64, miss) // 25%
	a.work(2, 12, 13, 14)
	a.Jmp(done)
	a.Label(miss)
	a.Call("chunk")
	a.Label(done)
	a.Ret()

	a.Func("object")
	a.work(2, 12, 13, 14)
	a.Call("field")
	a.work(2, 13, 14, 15)
	a.Call("field")
	a.Ret()

	a.Func("main")
	a.seed(0x00_255 + seed)
	_, closeMain := a.counted(1, int64(n))
	{
		a.work(2, 14, 15, 16)
		a.Call("object")
		upd := a.fresh("upd")
		fin := a.fresh("fin")
		a.randBranch(110, upd) // 43%: update variant
		a.Call("field")
		a.Jmp(fin)
		a.Label(upd)
		a.Call("object")
		a.Label(fin)
		a.work(2, 15, 16, 17)
	}
	closeMain()
	a.Halt()
	return a.MustBuild()
}

// buildBzip2: block-sorting shape — three-deep loop nest whose innermost
// compare loop is heavily biased with an occasional early exit. Hot
// execution concentrates in very few large cycles, giving small cover
// sets, especially under LEI.
func buildBzip2(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 250)
	a := newAsm()
	a.Func("main")
	a.seed(0x00_256 + 1 + seed)
	a.MovImm(2, 65536)
	_, closeOuter := a.counted(1, int64(n))
	{
		a.MovImm(3, 10) // middle loop
		mid := a.fresh("mid")
		a.Label(mid)
		a.work(3, 10, 11, 12)
		a.MovImm(4, 24) // inner compare loop
		inner := a.fresh("cmp")
		brk := a.fresh("brk")
		a.Label(inner)
		a.Load(5, 2, 0)
		a.work(3, 11, 12, 13)
		a.randBranch(10, brk) // ~4% early exit
		a.AddImm(4, 4, -1)
		a.Br(isa.CondGt, 4, RZero, inner)
		a.Label(brk)
		a.work(2, 12, 13, 14)
		a.AddImm(3, 3, -1)
		a.Br(isa.CondGt, 3, RZero, mid)
	}
	closeOuter()
	a.Halt()
	return a.MustBuild()
}

// buildTwolf: standard-cell place and route — an annealing loop with an
// unbiased accept branch whose arms call different update routines before
// rejoining, atop a cost call on the dominant path.
func buildTwolf(scale int, seed int64) *program.Program {
	n := scaleOr(scale, 4000)
	a := newAsm()
	a.Jmp("main")

	a.Func("delta")
	a.work(5, 10, 11, 12)
	a.Ret()

	a.Func("commit")
	a.work(4, 11, 12, 13)
	a.Store(2, 4, 11)
	a.Ret()

	a.Func("revert")
	a.work(4, 12, 13, 14)
	a.Ret()

	a.Func("main")
	a.seed(0x00_257 + seed)
	a.MovImm(2, 2048)
	_, closeMain := a.counted(1, int64(n))
	{
		a.work(3, 13, 14, 15)
		a.Call("delta")
		rej := a.fresh("rej")
		fin := a.fresh("fin")
		a.randBranch(122, rej) // ~48% reject
		a.Call("commit")
		a.Jmp(fin)
		a.Label(rej)
		a.Call("revert")
		a.Label(fin)
		a.work(2, 14, 15, 16)
	}
	closeMain()
	a.Halt()
	return a.MustBuild()
}
