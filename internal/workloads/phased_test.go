package workloads

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

func TestPhasedDeterministic(t *testing.T) {
	a := Phased(42, 150_000)
	b := Phased(42, 150_000)
	if !programsIdentical(a, b) {
		t.Fatal("same seed and size produced different programs")
	}
	sa, err := vm.New(a, vm.Config{}).Run(vm.SinkFunc(func(isa.Addr, isa.Addr, vm.BranchKind) {}))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := vm.New(b, vm.Config{}).Run(vm.SinkFunc(func(isa.Addr, isa.Addr, vm.BranchKind) {}))
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("same program executed differently: %+v vs %+v", sa, sb)
	}
}

func TestPhasedSizeTracksTarget(t *testing.T) {
	for _, size := range []int{100_000, 400_000} {
		p := Phased(0xFA5E, size)
		stats, err := vm.New(p, vm.Config{}).Run(vm.SinkFunc(func(isa.Addr, isa.Addr, vm.BranchKind) {}))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if stats.Instrs < uint64(size)/3 || stats.Instrs > uint64(size)*3 {
			t.Errorf("size %d: executed %d dynamic instructions, want within 3x of target", size, stats.Instrs)
		}
	}
}

// TestPhasedRegimesAreOrdered checks the defining property of the phased
// workload: execution moves through the three kernel regimes as long
// consecutive spans — the phase a taken branch belongs to (derived from
// its source function's name) changes only a handful of times over the
// whole run, rather than flipping constantly the way Synthetic's shuffled
// kernels do.
func TestPhasedRegimesAreOrdered(t *testing.T) {
	p := Phased(7, 120_000)
	phaseOf := func(src isa.Addr) int {
		fn, ok := p.FuncAt(src)
		if !ok || fn.Name == "main" {
			return -1 // glue code between kernels; not part of any regime
		}
		switch {
		case strings.Contains(fn.Name, "_nest"):
			return 0
		case strings.Contains(fn.Name, "_h"), strings.Contains(fn.Name, "_calls"):
			return 1
		case strings.Contains(fn.Name, "_disp"):
			return 2
		}
		return -1
	}
	transitions, last, branches := 0, -1, 0
	seen := [3]int{}
	if _, err := vm.New(p, vm.Config{}).Run(vm.SinkFunc(func(src, _ isa.Addr, _ vm.BranchKind) {
		branches++
		ph := phaseOf(src)
		if ph < 0 {
			return
		}
		seen[ph]++
		if ph != last && last >= 0 {
			transitions++
		}
		last = ph
	})); err != nil {
		t.Fatal(err)
	}
	if branches < 3000 {
		t.Fatalf("only %d taken branches; phased program too small to have regimes", branches)
	}
	for ph, n := range seen {
		if n < branches/20 {
			t.Errorf("phase %d contributes only %d of %d taken branches; regime missing", ph, n, branches)
		}
	}
	// Six rounds of three phases are 18 regime spans (17 changes); allow a
	// little glue slack but nothing like the constant interleaving a
	// shuffled generator produces.
	if transitions > 24 {
		t.Errorf("phase changed %d times during execution; regimes are not consecutive spans", transitions)
	}
}

func TestPhasedRegistered(t *testing.T) {
	w, ok := Get("phased")
	if !ok {
		t.Fatal("phased workload not registered")
	}
	p := w.Build(50_000)
	if p.Len() == 0 {
		t.Fatal("empty phased program")
	}
	if programsIdentical(w.BuildInput(50_000, 0), w.BuildInput(50_000, 1)) {
		t.Fatal("input variants identical")
	}
}
