// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses to present per-benchmark figures the way the
// paper does (per-benchmark bars plus suite averages).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of positive values; non-positive
// values are skipped. Returns 0 when nothing remains.
func Geomean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Table renders rows with one label column and value columns, aligned.
type Table struct {
	Title   string
	Columns []string // value column headers
	rows    []tableRow
	formats []string
}

type tableRow struct {
	label  string
	values []float64
}

// NewTable creates a table; formats supplies one fmt verb per column
// (default "%8.3f").
func NewTable(title string, columns []string, formats ...string) *Table {
	return &Table{Title: title, Columns: columns, formats: formats}
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.rows = append(t.rows, tableRow{label: label, values: values})
}

// MeanRow appends a row holding the per-column arithmetic mean of all rows
// added so far.
func (t *Table) MeanRow(label string) {
	if len(t.rows) == 0 {
		return
	}
	vals := make([]float64, len(t.rows[0].values))
	for c := range vals {
		col := make([]float64, 0, len(t.rows))
		for _, r := range t.rows {
			if c < len(r.values) {
				col = append(col, r.values[c])
			}
		}
		vals[c] = Mean(col)
	}
	t.Add(label, vals...)
}

func (t *Table) format(c int) string {
	if c < len(t.formats) && t.formats[c] != "" {
		return t.formats[c]
	}
	return "%8.3f"
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	labelW := 10
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	fmt.Fprintf(&b, "  %-*s", labelW, "")
	for c, col := range t.Columns {
		w := len(fmt.Sprintf(t.format(c), 0.0))
		if len(col) > w {
			w = len(col)
		}
		fmt.Fprintf(&b, "  %*s", w, col)
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "  %-*s", labelW, r.label)
		for c, v := range r.values {
			cell := fmt.Sprintf(t.format(c), v)
			w := len(cell)
			if len(t.Columns) > c && len(t.Columns[c]) > w {
				w = len(t.Columns[c])
			}
			fmt.Fprintf(&b, "  %*s", w, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| |")
	for _, col := range t.Columns {
		fmt.Fprintf(&b, " %s |", col)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		fmt.Fprintf(&b, "| %s |", r.label)
		for c, v := range r.values {
			fmt.Fprintf(&b, " %s |", strings.TrimSpace(fmt.Sprintf(t.format(c), v)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Bar renders a simple horizontal bar scaled so that full == width runes.
func Bar(value, full float64, width int) string {
	if full <= 0 || value <= 0 {
		return ""
	}
	n := int(value / full * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
