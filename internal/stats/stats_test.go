package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeomean(t *testing.T) {
	if Geomean(nil) != 0 || Geomean([]float64{-1, 0}) != 0 {
		t.Error("degenerate geomean")
	}
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean = %v", got)
	}
	// Non-positive values are skipped.
	if got := Geomean([]float64{2, 8, 0}); math.Abs(got-4) > 1e-12 {
		t.Errorf("geomean with zero = %v", got)
	}
}

func TestGeomeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	check := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Error("ratio")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("title", []string{"a", "b"}, "%5.1f", "%5.1f")
	tb.Add("row1", 1, 2)
	tb.Add("longer-label", 3, 4)
	tb.MeanRow("avg")
	out := tb.String()
	for _, want := range []string{"title", "row1", "longer-label", "avg", "2.0", "3.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// MeanRow on empty table is a no-op.
	empty := NewTable("", []string{"x"})
	empty.MeanRow("avg")
	if strings.Contains(empty.String(), "avg") {
		t.Error("MeanRow on empty table added a row")
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Errorf("bar = %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Error("bar not clamped")
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Error("degenerate bars")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("title", []string{"a", "b"}, "%5.1f", "%5.0f")
	tb.Add("row1", 1.25, 2)
	out := tb.Markdown()
	for _, want := range []string{"**title**", "| | a | b |", "|---|---|---|", "| row1 | 1.2 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}
