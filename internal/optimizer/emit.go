package optimizer

import (
	"fmt"

	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// EmittedRegion is the materialized code-cache image of a region: its
// blocks in layout order with control flow rewritten for the layout —
// unconditional jumps to the next-laid-out block dropped, conditional
// branches inverted when their taken successor is laid out next, extra
// jumps inserted where no original instruction realizes an internal edge —
// and one exit stub per leaving direction appended after the body, leaving
// the selected blocks contiguous (paper §2.1).
//
// Within Code, branch targets are offsets into Code itself. Stub slots are
// encoded as unconditional jumps whose Target is the *original program
// address* the exit leads to; they are the only instructions whose target
// is not a Code offset. The image is an analysis artifact (layout quality,
// emitted size): it is not executable by the vm package, whose programs
// use original addresses.
type EmittedRegion struct {
	// Code is the emitted body followed by the exit stubs.
	Code []isa.Instr
	// BodyLen is the number of body instructions; Code[BodyLen:] are stubs.
	BodyLen int
	// BlockOffsets[i] is the Code offset of region block i.
	BlockOffsets []int
	// JumpsRemoved counts original unconditional jumps dropped by layout.
	JumpsRemoved int
	// JumpsInserted counts jumps added to realize internal edges that no
	// original instruction could reach after layout.
	JumpsInserted int
	// BranchesInverted counts conditional branches whose sense was flipped
	// because their taken successor was laid out immediately after.
	BranchesInverted int
	// Stubs maps each stub slot (index into Code[BodyLen:]) to the original
	// program address it exits to; indirect exits use the sentinel
	// IndirectStub.
	Stubs []isa.Addr
}

// IndirectStub marks a stub for an indirect branch's unpredicted targets.
const IndirectStub = ^isa.Addr(0)

// invert returns the complementary condition.
func invert(c isa.Cond) isa.Cond {
	switch c {
	case isa.CondEq:
		return isa.CondNe
	case isa.CondNe:
		return isa.CondEq
	case isa.CondLt:
		return isa.CondGe
	case isa.CondGe:
		return isa.CondLt
	case isa.CondLe:
		return isa.CondGt
	case isa.CondGt:
		return isa.CondLe
	default:
		return c
	}
}

// Emit lays out and rewrites the region's code.
func Emit(p *program.Program, r *codecache.Region) (*EmittedRegion, error) {
	order := layout(r)
	em := &EmittedRegion{BlockOffsets: make([]int, len(r.Blocks))}

	// First pass: copy block bodies in layout order, recording offsets.
	// Block-ending instructions are handled in the second pass, where
	// successor offsets are known.
	type pending struct {
		codeOff   int // offset of the block's last instruction slot (-1: none emitted yet)
		blockIdx  int
		layoutIdx int
	}
	var fixups []pending
	for li, bi := range order {
		b := r.Blocks[bi]
		em.BlockOffsets[bi] = len(em.Code)
		end := b.Start + isa.Addr(b.Len)
		for a := b.Start; a < end-1; a++ {
			em.Code = append(em.Code, p.At(a))
		}
		// Reserve the terminator slot; rewritten below.
		fixups = append(fixups, pending{codeOff: len(em.Code), blockIdx: bi, layoutIdx: li})
		em.Code = append(em.Code, p.At(end-1))
	}
	em.BodyLen = len(em.Code) // grows as jumps are inserted

	// Stub allocation: one per exiting direction (each exit needs its own
	// linkable stub, as in Dynamo). The final laid-out block's fall-through
	// exit, if any, is special: its stub is placed first, immediately after
	// the body, so the fall-through reaches it without an inserted jump —
	// the classic trace layout of paper Figure 2.
	fallStub := -1
	addStub := func(target isa.Addr) int {
		em.Stubs = append(em.Stubs, target)
		return len(em.Stubs) - 1
	}

	// Second pass: rewrite terminators. Inserting jumps shifts later
	// offsets, so collect insertions and apply them back-to-front.
	type insertion struct {
		after int // insert immediately after this code offset
		jmpTo jumpTarget
	}
	var insertions []insertion
	for _, f := range fixups {
		bi := f.blockIdx
		b := r.Blocks[bi]
		end := b.Start + isa.Addr(b.Len)
		last := p.At(end - 1)
		nextLaid := -1 // block index laid out immediately after
		if f.layoutIdx+1 < len(order) {
			nextLaid = order[f.layoutIdx+1]
		}
		internal := map[isa.Addr]int{} // original successor start -> block idx
		for _, s := range r.Succs[bi] {
			internal[r.Blocks[s].Start] = s
		}
		in := last
		switch {
		case last.Op == isa.Halt:
			// Kept as-is.
		case last.Op == isa.Br:
			taken := last.Target
			fall := end
			tIdx, tIn := internal[taken]
			fIdx, fIn := internal[fall]
			switch {
			case tIn && nextLaid == tIdx:
				// Invert so the hot (laid-next) successor falls through.
				in.Cond = invert(in.Cond)
				em.BranchesInverted++
				if fIn {
					in.Target = isa.Addr(blockOffPlaceholder(fIdx))
				} else {
					in.Target = isa.Addr(stubPlaceholder(addStub(fall)))
				}
			default:
				if tIn {
					in.Target = isa.Addr(blockOffPlaceholder(tIdx))
				} else {
					in.Target = isa.Addr(stubPlaceholder(addStub(taken)))
				}
				// Fall-through direction: laid-out next, jump, or stub
				// (reached without a jump when this block is laid last).
				switch {
				case fIn && nextLaid != fIdx:
					insertions = append(insertions, insertion{after: f.codeOff, jmpTo: jumpTarget{block: fIdx}})
				case !fIn && nextLaid == -1:
					fallStub = addStub(fall)
				case !fIn:
					insertions = append(insertions, insertion{after: f.codeOff, jmpTo: jumpTarget{stub: addStub(fall), isStub: true}})
				}
			}
		case last.Op == isa.Jmp:
			tIdx, tIn := internal[last.Target]
			switch {
			case tIn && nextLaid == tIdx:
				in = isa.Instr{Op: isa.Nop} // jump removed by layout
				em.JumpsRemoved++
			case tIn:
				in.Target = isa.Addr(blockOffPlaceholder(tIdx))
			default:
				in.Target = isa.Addr(stubPlaceholder(addStub(last.Target)))
			}
		case last.Op == isa.Call:
			// Calls keep their original target (callee entry); if the
			// callee's first block is in-region the system would inline
			// the call edge, but the return protocol keeps the call
			// instruction intact in real systems and here.
			tIdx, tIn := internal[last.Target]
			if tIn {
				in.Target = isa.Addr(blockOffPlaceholder(tIdx))
			} else {
				in.Target = isa.Addr(stubPlaceholder(addStub(last.Target)))
			}
		case last.IsIndirect():
			// Indirect branches keep a stub for unpredicted targets; the
			// predicted in-region successor is reached by the dispatch
			// logic (modeled here as the instruction itself).
			addStub(IndirectStub)
		default:
			// Non-branch block end: the fall-through successor needs a
			// jump unless laid out next (or, for the final block, a stub
			// placed directly after the body).
			fall := end
			fIdx, fIn := internal[fall]
			switch {
			case fIn && nextLaid != fIdx:
				insertions = append(insertions, insertion{after: f.codeOff, jmpTo: jumpTarget{block: fIdx}})
			case !fIn && nextLaid == -1:
				fallStub = addStub(fall)
			case !fIn:
				insertions = append(insertions, insertion{after: f.codeOff, jmpTo: jumpTarget{stub: addStub(fall), isStub: true}})
			}
		}
		em.Code[f.codeOff] = in
	}

	// Apply insertions back-to-front so earlier offsets stay valid, then
	// resolve placeholders.
	for i := len(insertions) - 1; i >= 0; i-- {
		ins := insertions[i]
		var tgt isa.Addr
		if ins.jmpTo.isStub {
			tgt = isa.Addr(stubPlaceholder(ins.jmpTo.stub))
		} else {
			tgt = isa.Addr(blockOffPlaceholder(ins.jmpTo.block))
		}
		jmp := isa.Instr{Op: isa.Jmp, Target: tgt}
		em.Code = append(em.Code[:ins.after+1], append([]isa.Instr{jmp}, em.Code[ins.after+1:]...)...)
		em.JumpsInserted++
		// Shift recorded block offsets after the insertion point.
		for bi := range em.BlockOffsets {
			if em.BlockOffsets[bi] > ins.after {
				em.BlockOffsets[bi]++
			}
		}
	}
	em.BodyLen = len(em.Code)

	// Order stubs: the final block's fall-through stub (if any) goes first
	// so fall-through execution lands on it directly. Other stubs keep
	// allocation order; stubSlot maps allocation index to final slot.
	stubSlot := make([]int, len(em.Stubs))
	for i := range stubSlot {
		stubSlot[i] = i
	}
	if fallStub > 0 {
		ordered := make([]isa.Addr, 0, len(em.Stubs))
		ordered = append(ordered, em.Stubs[fallStub])
		for i, tgt := range em.Stubs {
			if i == fallStub {
				stubSlot[i] = 0
				continue
			}
			stubSlot[i] = len(ordered)
			ordered = append(ordered, tgt)
		}
		em.Stubs = ordered
	}

	// Append stub slots and resolve placeholders.
	stubBase := len(em.Code)
	for _, target := range em.Stubs {
		em.Code = append(em.Code, isa.Instr{Op: isa.Jmp, Target: target})
	}
	for i := range em.Code[:em.BodyLen] {
		in := &em.Code[i]
		if !in.IsBranch() || in.IsIndirect() {
			continue
		}
		switch {
		case isBlockPlaceholder(uint32(in.Target)):
			in.Target = isa.Addr(em.BlockOffsets[blockFromPlaceholder(uint32(in.Target))])
		case isStubPlaceholder(uint32(in.Target)):
			in.Target = isa.Addr(stubBase + stubSlot[stubFromPlaceholder(uint32(in.Target))])
		}
	}
	if len(em.Stubs) != r.Stubs {
		return nil, fmt.Errorf("optimizer: emitted %d stubs, region accounts %d", len(em.Stubs), r.Stubs)
	}
	return em, nil
}

type jumpTarget struct {
	block  int
	stub   int
	isStub bool
}

// Placeholder encoding for unresolved targets: high bits select the kind.
const (
	phBlock = 0x8000_0000
	phStub  = 0x4000_0000
)

func blockOffPlaceholder(idx int) uint32 { return phBlock | uint32(idx) }
func stubPlaceholder(idx int) uint32     { return phStub | uint32(idx) }
func isBlockPlaceholder(v uint32) bool   { return v&phBlock != 0 }
func isStubPlaceholder(v uint32) bool    { return v&phStub != 0 && v&phBlock == 0 }
func blockFromPlaceholder(v uint32) int  { return int(v &^ uint32(phBlock)) }
func stubFromPlaceholder(v uint32) int   { return int(v &^ uint32(phStub)) }
