package optimizer

import (
	"testing"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/workloads"
)

func TestEmitTrace(t *testing.T) {
	p := optProgram(t)
	r := region(t, p, codecache.KindTrace)
	em, err := Emit(p, r)
	if err != nil {
		t.Fatal(err)
	}
	// The body holds every region instruction; B's jmp is dropped (nop'd)
	// because C is laid out right after it.
	if em.JumpsRemoved != 1 {
		t.Errorf("jumps removed = %d, want 1", em.JumpsRemoved)
	}
	if em.JumpsInserted != 0 {
		t.Errorf("jumps inserted = %d, want 0", em.JumpsInserted)
	}
	// Stubs follow the body: the cyclic trace's only exit is the final
	// conditional's fall-through to the halt block.
	if len(em.Stubs) != r.Stubs || len(em.Stubs) != 1 {
		t.Fatalf("stubs = %v (region says %d)", em.Stubs, r.Stubs)
	}
	if em.Stubs[0] != 7 {
		t.Errorf("stub target = %d, want 7 (the halt block)", em.Stubs[0])
	}
	// The final conditional branches back to the entry block's offset.
	last := em.Code[em.BodyLen-1]
	if last.Op != isa.Br {
		t.Fatalf("terminator = %s", last)
	}
	if int(last.Target) != em.BlockOffsets[0] {
		t.Errorf("cycle branch targets %d, entry block is at %d", last.Target, em.BlockOffsets[0])
	}
	// Stub slots are jumps to original addresses.
	stub := em.Code[em.BodyLen]
	if stub.Op != isa.Jmp || stub.Target != 7 {
		t.Errorf("stub slot = %s", stub)
	}
}

func TestEmitInvertsBranches(t *testing.T) {
	// Region where the TAKEN successor of a conditional is laid out next:
	// blocks A (cond to C), C, with B excluded, so layout A,C inverts the
	// branch to fall into C and stubs the old fall-through B.
	p := optProgram(t)
	c := codecache.New(p)
	r, err := c.Insert(codecache.Spec{
		Entry: 5,
		Kind:  codecache.KindMultipath,
		Blocks: []codecache.BlockSpec{
			{Start: 5, Len: p.BlockLen(5)}, // C: addi, bgt -> 1
			{Start: 1, Len: p.BlockLen(1)}, // A
		},
		Succs: [][]int{{1}, {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	em, err := Emit(p, r)
	if err != nil {
		t.Fatal(err)
	}
	// C ends with "bgt r1, r0, 1": its taken successor (A) is laid next,
	// so the emitted branch is inverted (ble) and targets the stub for the
	// original fall-through (7).
	term := em.Code[em.BlockOffsets[0]+p.BlockLen(5)-1]
	if term.Op != isa.Br || term.Cond != isa.CondLe {
		t.Fatalf("terminator = %s, want inverted ble", term)
	}
	if em.BranchesInverted != 1 {
		t.Errorf("inverted = %d, want 1", em.BranchesInverted)
	}
	if int(term.Target) < em.BodyLen {
		t.Errorf("inverted branch should target a stub slot, got %d (body %d)", term.Target, em.BodyLen)
	}
	if got := em.Code[term.Target]; got.Target != 7 {
		t.Errorf("stub leads to %d, want 7", got.Target)
	}
}

// TestEmitInvariantsOverRealRuns emits every region selected by every
// selector on several workloads and checks structural invariants.
func TestEmitInvariantsOverRealRuns(t *testing.T) {
	for _, bench := range []string{"gcc", "mcf", "perlbmk", "vortex"} {
		prog := workloads.MustGet(bench).Build(60)
		for _, selName := range []string{"net", "lei", "net+comb", "lei+comb"} {
			sel, err := newSelector(selName)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dynopt.Run(prog, dynopt.Config{Selector: sel})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Cache.AllRegions() {
				em, err := Emit(prog, r)
				if err != nil {
					t.Fatalf("%s/%s region %d: %v", bench, selName, r.ID, err)
				}
				checkEmitted(t, r, em)
			}
		}
	}
}

func newSelector(name string) (core.Selector, error) {
	switch name {
	case "net":
		return core.NewNET(core.DefaultParams()), nil
	case "lei":
		return core.NewLEI(core.DefaultParams()), nil
	case "net+comb":
		return core.NewCombiner(core.BaseNET, core.DefaultParams()), nil
	default:
		return core.NewCombiner(core.BaseLEI, core.DefaultParams()), nil
	}
}

func checkEmitted(t *testing.T, r *codecache.Region, em *EmittedRegion) {
	t.Helper()
	// Stub parity with the cache's accounting.
	if len(em.Stubs) != r.Stubs {
		t.Errorf("region %d: %d stubs emitted, %d accounted", r.ID, len(em.Stubs), r.Stubs)
	}
	// Code length: body = instructions + inserted − nothing (removed jumps
	// become nops, preserving slot count), stubs appended after.
	wantBody := r.Instrs + em.JumpsInserted
	if em.BodyLen != wantBody {
		t.Errorf("region %d: body %d, want %d", r.ID, em.BodyLen, wantBody)
	}
	if len(em.Code) != em.BodyLen+len(em.Stubs) {
		t.Errorf("region %d: code %d != body %d + stubs %d", r.ID, len(em.Code), em.BodyLen, len(em.Stubs))
	}
	// Entry block at offset 0.
	if em.BlockOffsets[0] != 0 {
		t.Errorf("region %d: entry block at %d", r.ID, em.BlockOffsets[0])
	}
	// Every direct branch in the body targets a block offset or stub slot.
	valid := map[int]bool{}
	for _, off := range em.BlockOffsets {
		valid[off] = true
	}
	for i := em.BodyLen; i < len(em.Code); i++ {
		valid[i] = true
	}
	for i, in := range em.Code[:em.BodyLen] {
		if in.IsBranch() && !in.IsIndirect() && in.Op != isa.Call {
			if !valid[int(in.Target)] {
				t.Errorf("region %d: instr %d (%s) targets invalid offset", r.ID, i, in)
			}
		}
	}
}
