package optimizer

import (
	"testing"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/dynopt"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/workloads"
)

// optProgram:
//
//	0: movi r1, 8     H [0..0]      loop preheader-ish
//	1: movi r2, 7     A [1..2]      r2 = 7 is loop-invariant
//	2: add  r3, r3, r2
//	3: nop            B [3..4]
//	4: jmp 5
//	5: addi r1,r1,-1  C [5..6]
//	6: bgt r1, r0, 1  (back to A)
//	7: halt
func optProgram(t *testing.T) *program.Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 8},
		{Op: isa.MovImm, Dst: 2, Imm: 7},
		{Op: isa.Add, Dst: 3, SrcA: 3, SrcB: 2},
		{Op: isa.Nop},
		{Op: isa.Jmp, Target: 5},
		{Op: isa.AddImm, Dst: 1, SrcA: 1, Imm: -1},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 1},
		{Op: isa.Halt},
	}
	// The label makes 3 a block leader so the region has a 3-block shape.
	p, err := program.New(ins, nil, map[string]isa.Addr{"B": 3})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func region(t *testing.T, p *program.Program, kind codecache.Kind) *codecache.Region {
	t.Helper()
	c := codecache.New(p)
	spec := codecache.Spec{
		Entry: 1,
		Kind:  kind,
		Blocks: []codecache.BlockSpec{
			{Start: 1, Len: p.BlockLen(1)},
			{Start: 3, Len: p.BlockLen(3)},
			{Start: 5, Len: p.BlockLen(5)},
		},
	}
	if kind == codecache.KindTrace {
		spec.Cyclic = true
	} else {
		spec.Succs = [][]int{{1}, {2}, {0}}
	}
	r, err := c.Insert(spec)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyzeTrace(t *testing.T) {
	p := optProgram(t)
	rep := Analyze(p, region(t, p, codecache.KindTrace))
	if !rep.HasCycle {
		t.Error("cycle not detected")
	}
	// Layout keeps chain order: A(1), B(3), C(5).
	if len(rep.Layout) != 3 || rep.Layout[0] != 0 {
		t.Errorf("layout = %v", rep.Layout)
	}
	// A->B is a fall-through already; B's jmp to 5 becomes removable when
	// C follows B in the layout.
	if rep.JumpsRemoved != 1 {
		t.Errorf("jumps removed = %d, want 1", rep.JumpsRemoved)
	}
	if rep.FallThroughs != 2 {
		t.Errorf("fallthroughs = %d, want 2", rep.FallThroughs)
	}
	// movi r2, 7 is invariant in the cycle (r2 never otherwise written);
	// movi at 1 is a candidate. add r3 is not (r3 written in cycle); addi
	// r1 is not (r1 written).
	if rep.InvariantCandidates != 1 {
		t.Errorf("invariant candidates = %d, want 1", rep.InvariantCandidates)
	}
	// A trace has no preheader: nothing is hoistable (paper §4.4).
	if rep.Hoistable != 0 {
		t.Errorf("trace hoistable = %d, want 0", rep.Hoistable)
	}
	if rep.StubBytes != rep.Blocks*0+rep.StubBytes { // smoke: fields populated
		t.Error("unreachable")
	}
}

func TestAnalyzeMultipath(t *testing.T) {
	p := optProgram(t)
	rep := Analyze(p, region(t, p, codecache.KindMultipath))
	if !rep.HasCycle {
		t.Error("cycle not detected")
	}
	// A multi-path region can hoist its invariant candidates.
	if rep.Hoistable != rep.InvariantCandidates || rep.Hoistable != 1 {
		t.Errorf("hoistable = %d, candidates = %d", rep.Hoistable, rep.InvariantCandidates)
	}
}

func TestAnalyzeNonCyclic(t *testing.T) {
	p := optProgram(t)
	c := codecache.New(p)
	r, err := c.Insert(codecache.Spec{
		Entry:  1,
		Kind:   codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 1, Len: p.BlockLen(1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(p, r)
	if rep.HasCycle || rep.InvariantCandidates != 0 || rep.Hoistable != 0 {
		t.Errorf("non-cyclic region report = %+v", rep)
	}
}

func TestSummarizeOverRealRun(t *testing.T) {
	prog := workloads.MustGet("mcf").Build(100)
	res, err := dynopt.Run(prog, dynopt.Config{Selector: core.NewLEI(core.DefaultParams())})
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(prog, res.Cache)
	if s.Regions != res.Report.Regions {
		t.Errorf("regions = %d vs %d", s.Regions, res.Report.Regions)
	}
	if s.Cyclic == 0 {
		t.Error("mcf under LEI must produce cyclic regions")
	}
	if s.FallThroughs > s.PossibleFallEdges {
		t.Error("more fall-throughs than layout slots")
	}
	if s.CodeBytes <= 0 || s.StubBytes <= 0 {
		t.Error("byte accounting empty")
	}
}
