// Package optimizer implements the region-level optimization analyses the
// paper discusses in §4.4. The paper argues (and Dynamo measured) that the
// dominant dynamic optimization is code layout — removing unconditional
// jumps and placing hot code contiguously — and that multi-path regions
// additionally expose loop optimizations (e.g. loop-invariant code motion
// into a preheader) that single traces cannot express because a trace has
// nowhere outside its cycle to move an instruction.
//
// The optimizer here performs those analyses on selected regions: it lays
// blocks out to maximize fall-through, counts the unconditional jumps that
// layout removes, detects region-internal cycles, and counts loop-invariant
// hoisting candidates, distinguishing what is legal for a cyclic trace
// (nothing — no preheader exists) from what a multi-path region allows.
package optimizer

import (
	"repro/internal/codecache"
	"repro/internal/isa"
	"repro/internal/program"
)

// Report summarizes the optimization opportunities of one region.
type Report struct {
	// Region identifies the region analyzed.
	Region codecache.ID
	// Kind is the region kind.
	Kind codecache.Kind
	// Blocks is the number of blocks in the region.
	Blocks int
	// Layout is the chosen emission order of the region's blocks (indices
	// into Region.Blocks). Layout[0] is always the entry block.
	Layout []int
	// FallThroughs is the number of consecutive layout pairs connected by
	// a region edge, so no jump is needed between them.
	FallThroughs int
	// JumpsRemoved is the number of unconditional direct jumps made
	// redundant by the layout (target placed immediately after).
	JumpsRemoved int
	// HasCycle reports a region-internal cycle through the entry.
	HasCycle bool
	// InvariantCandidates is the number of instructions in the entry cycle
	// whose operands are not written anywhere in the cycle — candidates
	// for loop-invariant code motion.
	InvariantCandidates int
	// Hoistable is the number of candidates the region can actually hoist:
	// zero for traces (a cyclic trace has no preheader, §4.4), equal to
	// InvariantCandidates for multi-path regions.
	Hoistable int
	// StubBytes and CodeBytes give the region's estimated footprint split.
	StubBytes int
	CodeBytes int
}

// Analyze computes the optimization report for a region.
func Analyze(p *program.Program, r *codecache.Region) Report {
	rep := Report{
		Region:    r.ID,
		Kind:      r.Kind,
		Blocks:    len(r.Blocks),
		StubBytes: r.Stubs * codecache.StubBytes,
		CodeBytes: r.CodeBytes,
	}
	rep.Layout = layout(r)
	rep.FallThroughs, rep.JumpsRemoved = layoutGains(p, r, rep.Layout)
	cycle := entryCycle(r)
	rep.HasCycle = cycle != nil
	if cycle != nil {
		rep.InvariantCandidates = invariantCandidates(p, r, cycle)
		if r.Kind == codecache.KindMultipath {
			rep.Hoistable = rep.InvariantCandidates
		}
	}
	return rep
}

// layout orders the region's blocks to maximize fall-through: a greedy
// chain construction that starts at the entry and repeatedly extends the
// chain with an unplaced successor, preferring the fall-through successor
// of the block's last instruction.
func layout(r *codecache.Region) []int {
	placed := make([]bool, len(r.Blocks))
	order := make([]int, 0, len(r.Blocks))
	place := func(i int) {
		placed[i] = true
		order = append(order, i)
	}
	place(0)
	for cur := 0; ; {
		next := -1
		// Prefer the successor that is the static fall-through so the
		// terminating branch can be dropped or inverted.
		ft := r.Blocks[cur].Start + isa.Addr(r.Blocks[cur].Len)
		for _, s := range r.Succs[cur] {
			if placed[s] {
				continue
			}
			if r.Blocks[s].Start == ft {
				next = s
				break
			}
			if next < 0 {
				next = s
			}
		}
		if next < 0 {
			// Chain ended; start a new chain at the first unplaced block.
			for i := range r.Blocks {
				if !placed[i] {
					next = i
					break
				}
			}
			if next < 0 {
				return order
			}
		}
		place(next)
		cur = next
	}
}

// layoutGains counts consecutive layout pairs joined by region edges and
// the unconditional jumps that become removable.
func layoutGains(p *program.Program, r *codecache.Region, order []int) (fallThroughs, jumpsRemoved int) {
	pos := make([]int, len(order))
	for idx, b := range order {
		pos[b] = idx
	}
	for idx, b := range order {
		if idx+1 >= len(order) {
			break
		}
		nxt := order[idx+1]
		connected := false
		for _, s := range r.Succs[b] {
			if s == nxt {
				connected = true
				break
			}
		}
		if !connected {
			continue
		}
		fallThroughs++
		end := r.Blocks[b].Start + isa.Addr(r.Blocks[b].Len)
		last := p.At(end - 1)
		if last.Op == isa.Jmp && last.Target == r.Blocks[nxt].Start {
			jumpsRemoved++
		}
	}
	return fallThroughs, jumpsRemoved
}

// entryCycle returns the block indices of a region-internal cycle through
// the entry (nil when none exists): the set of blocks on some path from the
// entry back to the entry using region edges.
func entryCycle(r *codecache.Region) []int {
	if !r.Cyclic {
		return nil
	}
	// Blocks reachable from the entry.
	reach := make([]bool, len(r.Blocks))
	var fwd func(int)
	fwd = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		for _, s := range r.Succs[i] {
			fwd(s)
		}
	}
	fwd(0)
	// Blocks that reach the entry (backward over region edges).
	preds := make([][]int, len(r.Blocks))
	for i, ss := range r.Succs {
		for _, s := range ss {
			preds[s] = append(preds[s], i)
		}
	}
	toEntry := make([]bool, len(r.Blocks))
	var bwd func(int)
	bwd = func(i int) {
		if toEntry[i] {
			return
		}
		toEntry[i] = true
		for _, p := range preds[i] {
			bwd(p)
		}
	}
	bwd(0)
	var cycle []int
	for i := range r.Blocks {
		if reach[i] && toEntry[i] {
			cycle = append(cycle, i)
		}
	}
	return cycle
}

// invariantCandidates counts pure register-computing instructions in the
// cycle whose source operands are not written anywhere in the cycle. The
// paper notes such opportunities increase in dynamically selected regions
// because an instruction may be invariant in the selected cycle even when
// it is not invariant in the full original loop (§4.4).
func invariantCandidates(p *program.Program, r *codecache.Region, cycle []int) int {
	written := map[isa.Reg]bool{}
	forEach(p, r, cycle, func(in isa.Instr) {
		if writesReg(in) {
			written[in.Dst] = true
		}
	})
	n := 0
	forEach(p, r, cycle, func(in isa.Instr) {
		if !pureCompute(in) {
			return
		}
		switch in.Op {
		case isa.MovImm:
			n++
		case isa.Mov:
			if !written[in.SrcA] {
				n++
			}
		case isa.AddImm:
			if !written[in.SrcA] {
				n++
			}
		default:
			if !written[in.SrcA] && !written[in.SrcB] {
				n++
			}
		}
	})
	return n
}

func forEach(p *program.Program, r *codecache.Region, blocks []int, f func(isa.Instr)) {
	for _, bi := range blocks {
		b := r.Blocks[bi]
		for a := b.Start; a < b.Start+isa.Addr(b.Len); a++ {
			f(p.At(a))
		}
	}
}

func writesReg(in isa.Instr) bool {
	switch in.Op {
	case isa.MovImm, isa.Mov, isa.Add, isa.AddImm, isa.Sub, isa.Mul, isa.Div,
		isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr, isa.Load:
		return true
	default:
		return false
	}
}

// pureCompute reports whether the instruction only computes a register
// value (no memory access, no control flow) and is therefore movable.
func pureCompute(in isa.Instr) bool {
	switch in.Op {
	case isa.MovImm, isa.Mov, isa.Add, isa.AddImm, isa.Sub, isa.Mul, isa.Div,
		isa.Rem, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr:
		return true
	default:
		return false
	}
}

// Summary aggregates reports over a whole cache.
type Summary struct {
	Regions             int
	Cyclic              int
	FallThroughs        int
	PossibleFallEdges   int
	JumpsRemoved        int
	InvariantCandidates int
	Hoistable           int
	StubBytes           int
	CodeBytes           int
}

// Summarize analyzes every region ever selected into the cache.
func Summarize(p *program.Program, cache *codecache.Cache) Summary {
	var s Summary
	for _, r := range cache.AllRegions() {
		rep := Analyze(p, r)
		s.Regions++
		if rep.HasCycle {
			s.Cyclic++
		}
		s.FallThroughs += rep.FallThroughs
		s.PossibleFallEdges += len(rep.Layout) - 1
		s.JumpsRemoved += rep.JumpsRemoved
		s.InvariantCandidates += rep.InvariantCandidates
		s.Hoistable += rep.Hoistable
		s.StubBytes += rep.StubBytes
		s.CodeBytes += rep.CodeBytes
	}
	return s
}
