package metrics

import (
	"encoding/csv"
	"fmt"
	"io"

	"repro/internal/codecache"
)

// WriteRegionsCSV dumps one row per region ever selected — identity, shape,
// and execution statistics — for offline analysis of a run.
func WriteRegionsCSV(w io.Writer, cache *codecache.Cache) error {
	cw := csv.NewWriter(w)
	header := []string{
		"id", "seq", "kind", "entry", "blocks", "instrs", "stubs",
		"code_bytes", "est_bytes", "cache_addr", "cyclic",
		"entries", "traversals", "cycle_traversals", "exec_instrs",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range cache.AllRegions() {
		row := []string{
			fmt.Sprint(r.ID),
			fmt.Sprint(r.SelectedSeq),
			r.Kind.String(),
			fmt.Sprint(r.Entry),
			fmt.Sprint(len(r.Blocks)),
			fmt.Sprint(r.Instrs),
			fmt.Sprint(r.Stubs),
			fmt.Sprint(r.CodeBytes),
			fmt.Sprint(r.EstimatedBytes()),
			fmt.Sprint(r.CacheAddr),
			fmt.Sprint(r.Cyclic),
			fmt.Sprint(r.Entries),
			fmt.Sprint(r.Traversals),
			fmt.Sprint(r.CycleTraversals),
			fmt.Sprint(r.ExecInstrs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
