// Package metrics computes every evaluation measure used in the paper:
// hit rate, code expansion, region transitions, spanned and executed cycle
// ratios (§3.2.1), the X% cover set (§2.3), exit domination and
// exit-dominated duplication (§4.1), exit-stub counts, estimated cache
// size, and profiling memory overheads.
package metrics

import (
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/isa"
)

// Collector accumulates raw execution facts during a simulation run.
type Collector struct {
	// TotalInstrs is every instruction executed by the program.
	TotalInstrs uint64
	// CacheInstrs is the subset executed from the code cache.
	CacheInstrs uint64
	// Transitions counts jumps between regions in the code cache (§2.3).
	Transitions uint64
	// PageTransitions counts region transitions whose source and target
	// regions lie on different virtual-memory pages of the cache layout —
	// the separation effect of §1 quantified.
	PageTransitions uint64
	// TransitionBytes accumulates the cache-layout distance (in bytes)
	// covered by region transitions.
	TransitionBytes uint64
	// CacheEnters counts transfers from the interpreter into the cache.
	CacheEnters uint64
	// CacheExits counts transfers from the cache back to the interpreter.
	CacheExits uint64
	// InterpBranches counts interpreted taken branches.
	InterpBranches uint64

	// edges records (fromBlock, toBlock) leader-pair execution counts,
	// covering all execution (interpreted and cached) — the paper's
	// exit-domination definition considers every predecessor edge that
	// executes (§4.1, footnote 5). The table is dense: a slice indexed by
	// the source leader address (grown lazily) whose cells hold the small
	// set of observed successors with flat counters, so the per-block hot
	// path is an indexed load plus a short linear scan, never a hash.
	edges [][]edgeCell
}

// edgeCell is one observed successor of a source block with its count.
type edgeCell struct {
	to isa.Addr
	n  uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{}
}

// EnsureCap grows the edge table to cover source leaders below n, so a run
// over a program of known address-space size records edges without ever
// growing the table.
func (c *Collector) EnsureCap(n int) {
	if n <= len(c.edges) {
		return
	}
	grown := make([][]edgeCell, n)
	copy(grown, c.edges)
	c.edges = grown
}

// Reset clears the collector for reuse, keeping the edge table's backing
// storage (including each source's successor-cell array) so a pooled
// collector reaches steady state with no allocation.
func (c *Collector) Reset() {
	edges := c.edges
	for i := range edges {
		edges[i] = edges[i][:0]
	}
	*c = Collector{edges: edges}
}

// Block records the completed execution of a block of n instructions.
//
//lint:hotpath per-block collection
func (c *Collector) Block(n int, inCache bool) {
	c.TotalInstrs += uint64(n)
	if inCache {
		c.CacheInstrs += uint64(n)
	}
}

// Edge records one execution of the control-flow edge between two block
// leaders.
//
//lint:hotpath per-edge collection
func (c *Collector) Edge(from, to isa.Addr) {
	if int(from) >= len(c.edges) {
		n := int(from) + 1
		if n < 2*len(c.edges) {
			n = 2 * len(c.edges)
		}
		grown := make([][]edgeCell, n)
		copy(grown, c.edges)
		c.edges = grown
	}
	cells := c.edges[from]
	for i := range cells {
		if cells[i].to == to {
			cells[i].n++
			return
		}
	}
	//lint:ignore hotpathalloc appends to the local alias of c.edges[from]; cells are kept by Reset, so steady state never grows (TestShardSteadyStateAllocFree)
	c.edges[from] = append(cells, edgeCell{to: to, n: 1})
}

// Transition records one region transition between cache-layout addresses.
//
//lint:hotpath per-region-transition collection
func (c *Collector) Transition(fromAddr, toAddr int) {
	c.Transitions++
	if fromAddr/codecache.PageBytes != toAddr/codecache.PageBytes {
		c.PageTransitions++
	}
	d := toAddr - fromAddr
	if d < 0 {
		d = -d
	}
	c.TransitionBytes += uint64(d)
}

// EdgeCount returns the number of times the edge executed.
func (c *Collector) EdgeCount(from, to isa.Addr) uint64 {
	if int(from) >= len(c.edges) {
		return 0
	}
	for _, cell := range c.edges[from] {
		if cell.to == to {
			return cell.n
		}
	}
	return 0
}

// PredsOf returns the distinct executed predecessor leaders for each block
// leader.
//
//lint:ignore densemap one-shot compatibility API; Analyzer.buildPreds is the dense pooled path
func (c *Collector) PredsOf() map[isa.Addr][]isa.Addr {
	//lint:ignore densemap one-shot compatibility API; Analyzer.buildPreds is the dense pooled path
	preds := make(map[isa.Addr][]isa.Addr)
	for from, cells := range c.edges {
		for _, cell := range cells {
			preds[cell.to] = append(preds[cell.to], isa.Addr(from))
		}
	}
	for _, ps := range preds {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	return preds
}

// HitRate returns the fraction of executed instructions that ran from the
// code cache.
func (c *Collector) HitRate() float64 {
	if c.TotalInstrs == 0 {
		return 0
	}
	return float64(c.CacheInstrs) / float64(c.TotalInstrs)
}

// Report is the full set of per-run measurements the paper's figures draw
// from.
type Report struct {
	Workload string
	Selector string

	// Execution.
	TotalInstrs uint64
	CacheInstrs uint64
	HitRate     float64
	Transitions uint64
	// PageTransitions counts transitions crossing a page boundary of the
	// cache layout (zero when the whole cache fits one page).
	PageTransitions uint64
	// TransitionReach is the total cache-layout distance covered by all
	// region transitions, in bytes — a locality measure combining how
	// often control leaves a region with how far it lands.
	TransitionReach uint64
	// AvgTransitionBytes is the mean cache-layout distance of a region
	// transition.
	AvgTransitionBytes float64
	CacheEnters        uint64
	CacheExits         uint64
	InterpBranches     uint64

	// Selection.
	Regions         int
	CodeExpansion   int // instructions copied into the cache
	Stubs           int
	EstimatedBytes  int
	AvgRegionInstrs float64
	SpannedCycles   int
	SpannedRatio    float64 // cyclic regions / regions
	Traversals      uint64
	CycleTraversals uint64
	ExecutedRatio   float64 // cycle traversals / traversals

	// Cover set.
	CoverSet90   int
	CoverSet90OK bool // whether 90% of execution is reachable from regions

	// Exit domination (§4.1).
	ExitDominated         int
	ExitDominatedRatio    float64 // exit-dominated regions / regions
	ExitDomDupInstrs      int
	ExitDomDupInstrsRatio float64 // duplicated instructions / instructions selected

	// Links counts exit directions that target another region's entry —
	// the inter-region links Dynamo patches into exit stubs. The paper's
	// footnote 9 ignores link memory but argues its algorithms reduce the
	// number of links; this measures that.
	Links int

	// Profiling memory.
	CountersHighWater      int
	CounterAllocs          uint64
	ObservedBytesHighWater int
	ObservedTraces         uint64
	// ObservedPctOfCache is ObservedBytesHighWater as a fraction of the
	// estimated cache size (Figure 18).
	ObservedPctOfCache float64
}

// Analyzer computes Reports while pooling the per-region scratch tables
// (predecessor lists, cover-set ordering, domination work lists) across
// runs. The harness analyzes every (workload, selector) pair with the same
// per-worker Analyzer, so steady-state Analyze performs no allocation; the
// package-level Analyze wrapper remains for one-shot callers.
type Analyzer struct {
	// preds is a dense table of distinct executed predecessor leaders per
	// target leader; predsHot lists the touched targets so clearing between
	// runs is proportional to the program actually executed.
	preds    [][]isa.Addr
	predsHot []isa.Addr
	byExec   []*codecache.Region
	outside  []isa.Addr
}

// Analyze computes a Report from a finished run, reusing the analyzer's
// scratch tables. It is equivalent to the package-level Analyze.
func (a *Analyzer) Analyze(cache *codecache.Cache, col *Collector, selStats core.ProfileStats) Report {
	return analyze(a, cache, col, selStats)
}

// buildPreds fills the dense predecessor table from the collector's edge
// counts. Iterating sources in ascending address order yields each target's
// predecessor list already sorted, matching PredsOf.
//
//lint:hotpath pooled analysis (TestPooledAnalyzeAllocFree)
func (a *Analyzer) buildPreds(col *Collector) {
	for _, to := range a.predsHot {
		a.preds[to] = a.preds[to][:0]
	}
	a.predsHot = a.predsHot[:0]
	for from, cells := range col.edges {
		for _, cell := range cells {
			to := int(cell.to)
			if to >= len(a.preds) {
				grown := make([][]isa.Addr, to+1)
				copy(grown, a.preds)
				a.preds = grown
			}
			if len(a.preds[to]) == 0 {
				a.predsHot = append(a.predsHot, cell.to)
			}
			a.preds[to] = append(a.preds[to], isa.Addr(from))
		}
	}
}

// coverSet is CoverSet over the analyzer's pooled ordering buffer.
//
//lint:hotpath pooled analysis (TestPooledAnalyzeAllocFree)
func (a *Analyzer) coverSet(regions []*codecache.Region, totalInstrs uint64, frac float64) (int, bool) {
	a.byExec = append(a.byExec[:0], regions...)
	slices.SortFunc(a.byExec, func(x, y *codecache.Region) int {
		if x.ExecInstrs != y.ExecInstrs {
			if x.ExecInstrs > y.ExecInstrs {
				return -1
			}
			return 1
		}
		if x.SelectedSeq < y.SelectedSeq {
			return -1
		}
		if x.SelectedSeq > y.SelectedSeq {
			return 1
		}
		return 0
	})
	need := uint64(frac * float64(totalInstrs))
	if need == 0 {
		return 0, true
	}
	var sum uint64
	for i, reg := range a.byExec {
		sum += reg.ExecInstrs
		if sum >= need {
			return i + 1, true
		}
	}
	return len(a.byExec), false
}

// exitDomination is AnalyzeExitDomination over the pooled predecessor table,
// without recording the dominator pairs.
//
//lint:hotpath pooled analysis (TestPooledAnalyzeAllocFree)
func (a *Analyzer) exitDomination(regions []*codecache.Region) (dominated, dupInstrs int) {
	for _, s := range regions {
		a.outside = a.outside[:0]
		if int(s.Entry) < len(a.preds) {
			for _, p := range a.preds[s.Entry] {
				if !s.Contains(p) {
					a.outside = append(a.outside, p)
				}
			}
		}
		if len(a.outside) != 1 {
			continue
		}
		dominator := findDominator(regions, s, a.outside[0])
		if dominator == nil {
			continue
		}
		dominated++
		dupInstrs += overlapInstrs(dominator, s)
	}
	return dominated, dupInstrs
}

// Analyze computes a Report from a finished run.
func Analyze(cache *codecache.Cache, col *Collector, selStats core.ProfileStats) Report {
	var a Analyzer
	return analyze(&a, cache, col, selStats)
}

func analyze(a *Analyzer, cache *codecache.Cache, col *Collector, selStats core.ProfileStats) Report {
	r := Report{
		TotalInstrs:     col.TotalInstrs,
		CacheInstrs:     col.CacheInstrs,
		HitRate:         col.HitRate(),
		Transitions:     col.Transitions,
		PageTransitions: col.PageTransitions,
		TransitionReach: col.TransitionBytes,
		CacheEnters:     col.CacheEnters,
		CacheExits:      col.CacheExits,
		InterpBranches:  col.InterpBranches,

		CodeExpansion:  cache.TotalInstrs(),
		Stubs:          cache.TotalStubs(),
		EstimatedBytes: cache.EstimatedBytes(),

		CountersHighWater:      selStats.CountersHighWater,
		CounterAllocs:          selStats.CounterAllocs,
		ObservedBytesHighWater: selStats.ObservedBytesHighWater,
		ObservedTraces:         selStats.ObservedTraces,
	}
	r.Links = cache.CountLinks()
	regions := cache.AllRegions()
	r.Regions = len(regions)
	for _, reg := range regions {
		if reg.Cyclic {
			r.SpannedCycles++
		}
		r.Traversals += reg.Traversals
		r.CycleTraversals += reg.CycleTraversals
	}
	if r.Regions > 0 {
		r.SpannedRatio = float64(r.SpannedCycles) / float64(r.Regions)
		r.AvgRegionInstrs = float64(r.CodeExpansion) / float64(r.Regions)
	}
	if r.Traversals > 0 {
		r.ExecutedRatio = float64(r.CycleTraversals) / float64(r.Traversals)
	}
	r.CoverSet90, r.CoverSet90OK = a.coverSet(regions, col.TotalInstrs, 0.90)
	a.buildPreds(col)
	r.ExitDominated, r.ExitDomDupInstrs = a.exitDomination(regions)
	if r.Regions > 0 {
		r.ExitDominatedRatio = float64(r.ExitDominated) / float64(r.Regions)
	}
	if r.CodeExpansion > 0 {
		r.ExitDomDupInstrsRatio = float64(r.ExitDomDupInstrs) / float64(r.CodeExpansion)
	}
	if r.EstimatedBytes > 0 {
		r.ObservedPctOfCache = float64(r.ObservedBytesHighWater) / float64(r.EstimatedBytes)
	}
	if col.Transitions > 0 {
		r.AvgTransitionBytes = float64(col.TransitionBytes) / float64(col.Transitions)
	}
	return r
}

// CoverSet returns the size of the smallest set of regions whose executed
// instructions comprise at least frac of total program execution — the
// paper's trace-quality metric (§2.3). ok is false when even all regions
// together fall short (the remainder ran interpreted).
func CoverSet(regions []*codecache.Region, totalInstrs uint64, frac float64) (int, bool) {
	byExec := append([]*codecache.Region(nil), regions...)
	sort.Slice(byExec, func(i, j int) bool {
		if byExec[i].ExecInstrs != byExec[j].ExecInstrs {
			return byExec[i].ExecInstrs > byExec[j].ExecInstrs
		}
		return byExec[i].SelectedSeq < byExec[j].SelectedSeq
	})
	need := uint64(frac * float64(totalInstrs))
	if need == 0 {
		return 0, true
	}
	var sum uint64
	for i, reg := range byExec {
		sum += reg.ExecInstrs
		if sum >= need {
			return i + 1, true
		}
	}
	return len(byExec), false
}

// DominationResult summarizes the §4.1 analysis.
type DominationResult struct {
	// DominatedRegions is the number of regions that are exit-dominated by
	// an earlier region.
	DominatedRegions int
	// DuplicatedInstrs is the total count of instructions in dominated
	// regions that also appear in their dominating region (exit-dominated
	// duplication).
	DuplicatedInstrs int
	// Pairs lists (dominating, dominated) region IDs.
	Pairs [][2]codecache.ID
}

// AnalyzeExitDomination finds exit-dominated regions. Region R
// exit-dominates region S when (1) S begins at an exit from R, (2) the exit
// block is the only executed predecessor of S's entrance not contained in
// S, and (3) R was selected before S (§4.1).
func AnalyzeExitDomination(regions []*codecache.Region, col *Collector) DominationResult {
	var res DominationResult
	preds := col.PredsOf()
	for _, s := range regions {
		// Executed predecessors of S's entrance outside S.
		var outside []isa.Addr
		for _, p := range preds[s.Entry] {
			if !s.Contains(p) {
				outside = append(outside, p)
			}
		}
		if len(outside) != 1 {
			continue
		}
		p := outside[0]
		dominator := findDominator(regions, s, p)
		if dominator == nil {
			continue
		}
		res.DominatedRegions++
		res.DuplicatedInstrs += overlapInstrs(dominator, s)
		res.Pairs = append(res.Pairs, [2]codecache.ID{dominator.ID, s.ID})
	}
	return res
}

// findDominator returns the earliest-selected region R, selected before S,
// that contains the exit block p and for which the edge p -> S.Entry leaves
// R (is not one of R's internal edges).
func findDominator(regions []*codecache.Region, s *codecache.Region, p isa.Addr) *codecache.Region {
	var best *codecache.Region
	for _, r := range regions {
		if r == s || r.SelectedSeq >= s.SelectedSeq {
			continue
		}
		pi := r.BlockIndex(p)
		if pi < 0 {
			continue
		}
		if r.InternalEdge(pi, s.Entry) {
			continue
		}
		if best == nil || r.SelectedSeq < best.SelectedSeq {
			best = r
		}
	}
	return best
}

// overlapInstrs counts the instructions present in both regions (shared
// static blocks).
func overlapInstrs(a, b *codecache.Region) int {
	n := 0
	for _, blk := range b.Blocks {
		if a.Contains(blk.Start) {
			n += blk.Len
		}
	}
	return n
}

// String renders the report as a human-readable block.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload=%s selector=%s\n", r.Workload, r.Selector)
	fmt.Fprintf(&b, "  instrs total=%d cache=%d hit=%.2f%%\n", r.TotalInstrs, r.CacheInstrs, 100*r.HitRate)
	fmt.Fprintf(&b, "  regions=%d expansion=%d instrs avg=%.1f stubs=%d bytes=%d\n",
		r.Regions, r.CodeExpansion, r.AvgRegionInstrs, r.Stubs, r.EstimatedBytes)
	fmt.Fprintf(&b, "  transitions=%d (page-crossing=%d, avg-dist=%.0fB) enters=%d exits=%d\n",
		r.Transitions, r.PageTransitions, r.AvgTransitionBytes, r.CacheEnters, r.CacheExits)
	fmt.Fprintf(&b, "  spanned=%.1f%% executed-cycles=%.1f%%\n", 100*r.SpannedRatio, 100*r.ExecutedRatio)
	fmt.Fprintf(&b, "  cover90=%d (ok=%v)\n", r.CoverSet90, r.CoverSet90OK)
	fmt.Fprintf(&b, "  exit-dominated=%d (%.1f%%) dup-instrs=%d (%.1f%%)\n",
		r.ExitDominated, 100*r.ExitDominatedRatio, r.ExitDomDupInstrs, 100*r.ExitDomDupInstrsRatio)
	fmt.Fprintf(&b, "  counters-high=%d observed-bytes-high=%d (%.1f%% of cache)\n",
		r.CountersHighWater, r.ObservedBytesHighWater, 100*r.ObservedPctOfCache)
	return b.String()
}
