package metrics

import (
	"fmt"
	"io"

	"repro/internal/codecache"
	"repro/internal/isa"
)

// WriteRegionGraphDOT renders the live regions and their static links as a
// Graphviz digraph: one node per region (labelled with entry, size, and
// execution weight) and one edge per inter-region link, annotated with the
// executed edge count between the linking blocks when a collector is
// supplied (nil is allowed). Cyclic regions are drawn bold; multi-path
// regions use a 3-D box.
func WriteRegionGraphDOT(w io.Writer, cache *codecache.Cache, col *Collector) error {
	p := cache.Program()
	if _, err := fmt.Fprintln(w, "digraph regions {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")
	for _, r := range cache.Regions() {
		style := ""
		if r.Cyclic {
			style = ", style=bold"
		}
		if r.Kind == codecache.KindMultipath {
			style += ", shape=box3d"
		}
		fmt.Fprintf(w, "  r%d [label=\"R%d @%d\\n%d instrs, %d stubs\\nexec %d\"%s];\n",
			r.ID, r.ID, r.Entry, r.Instrs, r.Stubs, r.ExecInstrs, style)
	}
	for _, r := range cache.Regions() {
		for i, b := range r.Blocks {
			//lint:ignore densemap one-shot DOT rendering, not a hot path
			internal := map[isa.Addr]bool{}
			for _, s := range r.Succs[i] {
				internal[r.Blocks[s].Start] = true
			}
			end := b.Start + isa.Addr(b.Len)
			last := p.At(end - 1)
			emit := func(tgt isa.Addr) {
				if internal[tgt] {
					return
				}
				to, ok := cache.Lookup(tgt)
				if !ok || to.ID == r.ID {
					return
				}
				label := ""
				if col != nil {
					if n := col.EdgeCount(b.Start, tgt); n > 0 {
						label = fmt.Sprintf(" [label=\"%d\"]", n)
					}
				}
				fmt.Fprintf(w, "  r%d -> r%d%s;\n", r.ID, to.ID, label)
			}
			switch {
			case last.IsConditional():
				emit(last.Target)
				emit(end)
			case last.IsBranch() && !last.IsIndirect():
				emit(last.Target)
			case !last.EndsBlock():
				emit(end)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
