package metrics

import (
	"strings"
	"testing"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
)

// metricsProgram: four single-instruction-ish blocks plus glue, for region
// construction:
//
//	0: movi r1, 1    A [0..1]  (cond to 4)
//	1: beq r1,r0,4
//	2: nop           B [2..3]
//	3: jmp 6
//	4: nop           C [4..5]
//	5: jmp 6
//	6: nop           D [6..7]
//	7: bgt r1,r0,0
//	8: halt          E [8]
func metricsProgram(t *testing.T) *program.Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 1},
		{Op: isa.Br, Cond: isa.CondEq, SrcA: 1, SrcB: 0, Target: 4},
		{Op: isa.Nop},
		{Op: isa.Jmp, Target: 6},
		{Op: isa.Nop},
		{Op: isa.Jmp, Target: 6},
		{Op: isa.Nop},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 0},
		{Op: isa.Halt},
	}
	p, err := program.New(ins, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func spec(p *program.Program, starts ...isa.Addr) codecache.Spec {
	blocks := make([]codecache.BlockSpec, len(starts))
	for i, s := range starts {
		blocks[i] = codecache.BlockSpec{Start: s, Len: p.BlockLen(s)}
	}
	return codecache.Spec{Entry: starts[0], Kind: codecache.KindTrace, Blocks: blocks}
}

func TestCollectorBasics(t *testing.T) {
	c := NewCollector()
	c.Block(10, false)
	c.Block(30, true)
	c.Block(60, true)
	if c.TotalInstrs != 100 || c.CacheInstrs != 90 {
		t.Errorf("totals = %d/%d", c.CacheInstrs, c.TotalInstrs)
	}
	if c.HitRate() != 0.9 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
	c.Edge(1, 2)
	c.Edge(1, 2)
	c.Edge(3, 2)
	if c.EdgeCount(1, 2) != 2 || c.EdgeCount(3, 2) != 1 || c.EdgeCount(9, 9) != 0 {
		t.Error("edge counts wrong")
	}
	preds := c.PredsOf()
	if got := preds[2]; len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("preds = %v", got)
	}
	if NewCollector().HitRate() != 0 {
		t.Error("empty hit rate")
	}
}

func TestCoverSet(t *testing.T) {
	mk := func(exec uint64, seq uint64) *codecache.Region {
		r := &codecache.Region{ExecInstrs: exec, SelectedSeq: seq}
		return r
	}
	regions := []*codecache.Region{mk(500, 0), mk(300, 1), mk(150, 2), mk(50, 3)}
	// Total execution 1000 (everything cached).
	if n, ok := CoverSet(regions, 1000, 0.90); !ok || n != 3 {
		t.Errorf("cover90 = %d, %v; want 3, true", n, ok)
	}
	if n, ok := CoverSet(regions, 1000, 0.50); !ok || n != 1 {
		t.Errorf("cover50 = %d, %v; want 1, true", n, ok)
	}
	if n, ok := CoverSet(regions, 1000, 1.0); !ok || n != 4 {
		t.Errorf("cover100 = %d, %v", n, ok)
	}
	// 2000 total: the regions cover only half; not achievable.
	if n, ok := CoverSet(regions, 2000, 0.90); ok || n != 4 {
		t.Errorf("unreachable cover = %d, %v; want 4, false", n, ok)
	}
	if n, ok := CoverSet(nil, 0, 0.9); !ok || n != 0 {
		t.Errorf("empty cover = %d, %v", n, ok)
	}
}

func TestExitDomination(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	// R: trace A,B (selected first). S: trace D,E beginning at R's exit
	// (B's jmp to 6).
	r, err := cache.Insert(spec(p, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	s, err := cache.Insert(spec(p, 6, 8))
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	// Executed edges: A->B, B->D (the exit edge), D->E. Only B reaches D.
	col.Edge(0, 2)
	col.Edge(2, 6)
	col.Edge(6, 8)
	res := AnalyzeExitDomination(cache.AllRegions(), col)
	if res.DominatedRegions != 1 {
		t.Fatalf("dominated = %d, want 1", res.DominatedRegions)
	}
	if len(res.Pairs) != 1 || res.Pairs[0][0] != r.ID || res.Pairs[0][1] != s.ID {
		t.Errorf("pairs = %v", res.Pairs)
	}
	// No shared blocks: zero duplication.
	if res.DuplicatedInstrs != 0 {
		t.Errorf("dup = %d", res.DuplicatedInstrs)
	}
}

func TestExitDominationRequiresSinglePredecessor(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	if _, err := cache.Insert(spec(p, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Insert(spec(p, 6, 8)); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	col.Edge(2, 6)
	col.Edge(4, 6) // C also reaches D and C is outside both regions
	res := AnalyzeExitDomination(cache.AllRegions(), col)
	if res.DominatedRegions != 0 {
		t.Errorf("dominated = %d, want 0 (two outside predecessors)", res.DominatedRegions)
	}
}

func TestExitDominationSelectionOrderMatters(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	// S selected FIRST: then R cannot dominate it (condition 3).
	if _, err := cache.Insert(spec(p, 6, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Insert(spec(p, 0, 2)); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	col.Edge(0, 2)
	col.Edge(2, 6)
	res := AnalyzeExitDomination(cache.AllRegions(), col)
	if res.DominatedRegions != 0 {
		t.Errorf("dominated = %d, want 0 (wrong selection order)", res.DominatedRegions)
	}
}

func TestExitDominationInternalEdgeNotAnExit(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	// R includes D and routes B->D internally, so S at D... cannot exist
	// (same entry), instead: S at D selected after R which contains D with
	// an internal edge B->D. S's entry (6) has outside preds {2}, but 2's
	// edge to 6 is internal to R, so R does not exit-dominate S... we need
	// S's entry to be targeted by an internal edge of R. Build R = A,B,D
	// (B->D internal). S cannot share entry 6 with R's interior block, but
	// exit-domination requires p->e to leave R; here it does not.
	if _, err := cache.Insert(codecache.Spec{
		Entry: 0, Kind: codecache.KindTrace,
		Blocks: []codecache.BlockSpec{
			{Start: 0, Len: p.BlockLen(0)},
			{Start: 2, Len: p.BlockLen(2)},
			{Start: 6, Len: p.BlockLen(6)},
		},
	}); err != nil {
		t.Fatal(err)
	}
	// S begins at 6? Entry 6 is interior to R but regions are keyed by
	// entry; a second region may still start there if selected via another
	// path. Insert S at 6.
	if _, err := cache.Insert(spec(p, 6, 8)); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	col.Edge(2, 6)
	res := AnalyzeExitDomination(cache.AllRegions(), col)
	if res.DominatedRegions != 0 {
		t.Errorf("dominated = %d, want 0 (edge is internal to R)", res.DominatedRegions)
	}
}

func TestExitDominationDuplication(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	// R = A,B,D (selected first); S = C,D: S's entry C is reached only
	// from A (in R); S duplicates D (2 instructions).
	if _, err := cache.Insert(spec(p, 0, 2, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Insert(spec(p, 4, 6)); err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	col.Edge(0, 4) // A -> C executed (A's taken branch leaves R)
	col.Edge(4, 6)
	res := AnalyzeExitDomination(cache.AllRegions(), col)
	if res.DominatedRegions != 1 {
		t.Fatalf("dominated = %d, want 1", res.DominatedRegions)
	}
	if res.DuplicatedInstrs != p.BlockLen(6) {
		t.Errorf("dup = %d, want %d", res.DuplicatedInstrs, p.BlockLen(6))
	}
}

func TestAnalyzeReport(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	r1, err := cache.Insert(codecache.Spec{
		Entry: 0, Kind: codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 0, Len: 2}, {Start: 2, Len: 2}},
		Cyclic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r1.ExecInstrs = 900
	r1.Traversals = 10
	r1.CycleTraversals = 7
	col := NewCollector()
	col.Block(900, true)
	col.Block(100, false)
	col.Transitions = 5
	rep := Analyze(cache, col, core.ProfileStats{CountersHighWater: 3, ObservedBytesHighWater: 40})
	if rep.HitRate != 0.9 || rep.Regions != 1 || rep.CodeExpansion != 4 {
		t.Errorf("report = %+v", rep)
	}
	if rep.SpannedRatio != 1.0 {
		t.Errorf("spanned = %v", rep.SpannedRatio)
	}
	if rep.ExecutedRatio != 0.7 {
		t.Errorf("executed = %v", rep.ExecutedRatio)
	}
	if rep.CoverSet90 != 1 || !rep.CoverSet90OK {
		t.Errorf("cover = %d/%v", rep.CoverSet90, rep.CoverSet90OK)
	}
	if rep.CountersHighWater != 3 {
		t.Error("selector stats not wired")
	}
	if rep.ObservedPctOfCache <= 0 {
		t.Error("observed pct not computed")
	}
	out := rep.String()
	for _, want := range []string{"hit=90.00%", "regions=1", "cover90=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestLoopCoverage(t *testing.T) {
	// Program: single loop A[1..2] with back edge 2->1, entry 0, exit 3.
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 5},
		{Op: isa.AddImm, Dst: 1, SrcA: 1, Imm: -1},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 1},
		{Op: isa.Halt},
	}
	p, err := program.New(ins, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := codecache.New(p)
	col := NewCollector()

	// Cold loop: below the hotness threshold.
	col.Edge(1, 1)
	cov := AnalyzeLoopCoverage(p, cache, col, 100)
	if cov.StaticLoops != 1 || cov.HotLoops != 0 {
		t.Errorf("cold coverage = %+v", cov)
	}

	// Hot loop, nothing cached.
	for i := 0; i < 200; i++ {
		col.Edge(1, 1)
	}
	cov = AnalyzeLoopCoverage(p, cache, col, 100)
	if cov.HotLoops != 1 || cov.Spanned != 0 || cov.HeaderCached != 0 {
		t.Errorf("uncached coverage = %+v", cov)
	}
	if cov.Ratio() != 0 {
		t.Errorf("ratio = %v", cov.Ratio())
	}

	// Non-cyclic region containing the header: cached but not spanned.
	r, err := cache.Insert(codecache.Spec{
		Entry: 1, Kind: codecache.KindTrace,
		Blocks: []codecache.BlockSpec{{Start: 1, Len: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cov = AnalyzeLoopCoverage(p, cache, col, 100)
	if cov.Spanned != 0 || cov.HeaderCached != 1 {
		t.Errorf("non-cyclic coverage = %+v", cov)
	}
	// Mark it cyclic (the loop block branches to itself): spanned.
	r.Cyclic = true
	cov = AnalyzeLoopCoverage(p, cache, col, 100)
	if cov.Spanned != 1 || cov.Ratio() != 1 {
		t.Errorf("cyclic coverage = %+v", cov)
	}
}

func TestWriteRegionsCSV(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	r, err := cache.Insert(spec(p, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	r.ExecInstrs = 77
	r.Traversals = 9
	var buf strings.Builder
	if err := WriteRegionsCSV(&buf, cache); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,seq,kind,entry") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",trace,0,2,4,") || !strings.Contains(lines[1], ",77") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteRegionGraphDOT(t *testing.T) {
	p := metricsProgram(t)
	cache := codecache.New(p)
	if _, err := cache.Insert(spec(p, 0, 2)); err != nil { // R0: A,B; B jmp-> 6
		t.Fatal(err)
	}
	if _, err := cache.Insert(spec(p, 6, 8)); err != nil { // R1: D,E
		t.Fatal(err)
	}
	col := NewCollector()
	col.Edge(2, 6)
	col.Edge(2, 6)
	var buf strings.Builder
	if err := WriteRegionGraphDOT(&buf, cache, col); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph regions", "r0 [", "r1 [", "r0 -> r1 [label=\"2\"]"} {
		if !strings.Contains(out, want) {
			t.Errorf("dot missing %q:\n%s", want, out)
		}
	}
	// Without a collector, edges appear unlabelled.
	var buf2 strings.Builder
	if err := WriteRegionGraphDOT(&buf2, cache, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "r0 -> r1;") {
		t.Errorf("unlabelled dot edge missing:\n%s", buf2.String())
	}
}
