package metrics

import (
	"repro/internal/codecache"
	"repro/internal/program"
)

// LoopCoverage relates the dynamically selected regions to the program's
// static loop structure: of the natural loops that actually ran hot, how
// many ended up spanned by a cyclic region? This connects the paper's
// dynamic spanned-cycle metric (§3.2.1) back to the loops a compiler would
// see.
type LoopCoverage struct {
	// StaticLoops is the total number of natural loops in the program.
	StaticLoops int
	// HotLoops is the number whose back edge executed at least the
	// threshold number of times.
	HotLoops int
	// Spanned is the number of hot loops covered by a cyclic region that
	// contains both the loop header and the back-edge tail.
	Spanned int
	// HeaderCached is the number of hot loops whose header block was
	// copied into at least one region (spanned or not).
	HeaderCached int
}

// Ratio returns Spanned/HotLoops (0 when no loop ran hot).
func (l LoopCoverage) Ratio() float64 {
	if l.HotLoops == 0 {
		return 0
	}
	return float64(l.Spanned) / float64(l.HotLoops)
}

// AnalyzeLoopCoverage computes loop coverage for a finished run. minExec
// is the hotness threshold on the loop's back edge (the paper's selection
// thresholds are 35–50, so 100 means "comfortably past selection").
func AnalyzeLoopCoverage(p *program.Program, cache *codecache.Cache, col *Collector, minExec uint64) LoopCoverage {
	loops := p.NaturalLoops()
	cov := LoopCoverage{StaticLoops: len(loops)}
	regions := cache.AllRegions()
	for _, l := range loops {
		if col.EdgeCount(l.Tail, l.Header) < minExec {
			continue
		}
		cov.HotLoops++
		spanned := false
		cached := false
		for _, r := range regions {
			if r.Contains(l.Header) {
				cached = true
				if r.Cyclic && r.Contains(l.Tail) {
					spanned = true
				}
			}
		}
		if spanned {
			cov.Spanned++
		}
		if cached {
			cov.HeaderCached++
		}
	}
	return cov
}
