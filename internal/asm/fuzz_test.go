package asm

import (
	"strings"
	"testing"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// FuzzParse: the assembler must never panic, and anything it accepts must
// be a structurally valid program (program.New validates on construction).
func FuzzParse(f *testing.F) {
	f.Add("func main:\n  movi r1, 10\nloop:\n  addi r1, r1, -1\n  bgt r1, r0, loop\n  halt\n")
	f.Add("  jmp 1\n  halt")
	f.Add("x:\n  la r1, x\n  jmpi r1\n  halt")
	f.Add("  store [r2+4], r1\n  load r1, [r2-4]\n  ret")
	f.Add(Format(workloads.MustGet("gzip").Build(1)))
	f.Add("; comment only")
	f.Add("func :\n")
	f.Add("  movi r99, 1")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted programs must re-format and re-parse to the same code.
		p2, err := Parse(Format(p))
		if err != nil {
			t.Fatalf("format of accepted program rejected: %v", err)
		}
		if p2.Len() != p.Len() {
			t.Fatalf("format round trip changed length: %d vs %d", p2.Len(), p.Len())
		}
		// And running them (briefly) must only ever fail with a vm error,
		// never a panic.
		_, _ = vm.Run(p, vm.Config{MaxInstrs: 10_000, MaxCallDepth: 64}, nil)
	})
}

// FuzzParseNoCrashOnGarbage complements FuzzParse with byte-level noise.
func FuzzParseNoCrashOnGarbage(f *testing.F) {
	f.Add([]byte("movi r1"))
	f.Add([]byte{0, 1, 2, 255})
	f.Add([]byte(strings.Repeat("a:\n", 100)))
	f.Fuzz(func(t *testing.T, raw []byte) {
		_, _ = Parse(string(raw))
	})
}
