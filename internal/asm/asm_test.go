package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func TestParseAndRun(t *testing.T) {
	src := `
; sum the numbers 1..10 into r2 via a helper
func main:
  movi r1, 10
loop:
  call addit
  addi r1, r1, -1
  bgt  r1, r0, loop
  halt

func addit:
  add r2, r2, r1
  ret
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(p, vm.Config{})
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(2); got != 55 {
		t.Errorf("r2 = %d, want 55", got)
	}
}

func TestParseAllForms(t *testing.T) {
	src := `
func main:
  nop
  movi r1, -42
  mov r2, r1
  add r3, r1, r2
  sub r3, r3, r1
  mul r4, r2, r2
  div r5, r4, r2
  rem r6, r4, r2
  and r7, r1, r2
  or  r8, r1, r2
  xor r9, r1, r2
  shl r10, r2, r0
  shr r11, r2, r0
  addi r12, r1, 100
  store [r12+4], r1
  load r13, [r12+4]
  la r14, table
  jmpi r14
table:
  calli r14   // never reached dynamically; r14 points at table
  ret
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 20 {
		t.Errorf("len = %d", p.Len())
	}
	// Verify a few decoded instructions.
	if in := p.At(1); in.Op != isa.MovImm || in.Imm != -42 {
		t.Errorf("instr 1 = %s", in)
	}
	if in := p.At(15); in.Op != isa.Load || in.Imm != 4 || in.SrcA != 12 {
		t.Errorf("instr 15 = %s", in)
	}
}

func TestNumericTargets(t *testing.T) {
	src := `
  movi r1, 3
  addi r1, r1, -1
  bgt r1, r0, 1
  jmp 4
  halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if in := p.At(2); in.Target != 1 {
		t.Errorf("numeric branch target = %d", in.Target)
	}
	st, err := vm.Run(p, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalPC != 4 {
		t.Errorf("final pc = %d", st.FinalPC)
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	src := `
; full-line comment
// another comment style

  movi r1, 1 ; trailing comment
  halt // trailing
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d, want 2", p.Len())
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"  frobnicate r1\n  halt", "line 1"},
		{"  movi r99, 1\n  halt", "bad register"},
		{"  movi r1\n  halt", "missing immediate"},
		{"  movi r1, xyz\n  halt", "bad immediate"},
		{"  load r1, r2\n  halt", "bad memory operand"},
		{"  jmp nowhere\n  halt", "nowhere"},
		{"  add r1, r2\n  halt", "missing register"},
		{"func :\n  halt", "empty function name"},
		{"a b:\n  halt", "bad label"},
		{"  beq r1, r2\n  halt", "missing target"},
		{"  nop r1\n  halt", "expected 0 operands"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) err = %v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("bogus")
}

// TestRoundTripInstructionStrings re-assembles every instruction of a real
// workload from its String() form (with numeric targets) and verifies the
// decoded program is identical.
func TestRoundTripInstructionStrings(t *testing.T) {
	orig := workloads.MustGet("gcc").Build(1)
	var sb strings.Builder
	for a := isa.Addr(0); int(a) < orig.Len(); a++ {
		sb.WriteString(orig.At(a).String())
		sb.WriteByte('\n')
	}
	p, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != orig.Len() {
		t.Fatalf("len %d vs %d", p.Len(), orig.Len())
	}
	for a := isa.Addr(0); int(a) < orig.Len(); a++ {
		if p.At(a) != orig.At(a) {
			t.Fatalf("instr %d: %s vs %s", a, p.At(a), orig.At(a))
		}
	}
	// And it runs identically.
	s1, err := vm.Run(orig, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := vm.Run(p, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("round-tripped program runs differently: %+v vs %+v", s1, s2)
	}
}

// TestFormatRoundTrip: Format must produce text that Parse reassembles to
// the identical instruction stream, for every registered workload and a
// set of random programs.
func TestFormatRoundTrip(t *testing.T) {
	names := []string{"gzip", "gcc", "mcf", "eon", "perlbmk", "micro-retcycle", "fig2-loop-call"}
	for _, n := range names {
		orig := workloads.MustGet(n).Build(1)
		text := Format(orig)
		re, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", n, err, text)
		}
		if re.Len() != orig.Len() {
			t.Fatalf("%s: len %d vs %d", n, re.Len(), orig.Len())
		}
		for a := isa.Addr(0); int(a) < orig.Len(); a++ {
			if re.At(a) != orig.At(a) {
				t.Fatalf("%s @%d: %s vs %s", n, a, re.At(a), orig.At(a))
			}
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		orig := workloads.Random(workloads.GenConfig{Seed: seed, Funcs: 3})
		re, err := Parse(Format(orig))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for a := isa.Addr(0); int(a) < orig.Len(); a++ {
			if re.At(a) != orig.At(a) {
				t.Fatalf("seed %d @%d: %s vs %s", seed, a, re.At(a), orig.At(a))
			}
		}
	}
}

// TestFormatPreservesSemantics: the reassembled program runs identically.
func TestFormatPreservesSemantics(t *testing.T) {
	orig := workloads.MustGet("twolf").Build(20)
	re, err := Parse(Format(orig))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := vm.Run(orig, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := vm.Run(re, vm.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("runs differ: %+v vs %+v", s1, s2)
	}
}
