// Package asm provides a small textual assembler for the simulator's ISA,
// used by examples, tools, and tests. The syntax mirrors what
// isa.Instr.String prints, one instruction per line:
//
//	; comment (also //)
//	func main:          ; begin function "main" (also defines label main)
//	loop:               ; label
//	  movi r1, 100
//	  addi r1, r1, -1
//	  add  r2, r2, r3
//	  load r4, [r2+8]
//	  store [r2+8], r4
//	  bgt  r1, r0, loop ; beq bne blt ble bgt bge
//	  jmp  done
//	  call helper
//	  la   r5, table    ; r5 = address of label
//	  jmpi r5
//	  calli r5
//	  ret
//	done:
//	  halt
//
// Branch targets may be label names or absolute instruction addresses.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Parse assembles source text into a Program.
func Parse(src string) (*program.Program, error) {
	b := program.NewBuilder()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", ln+1, err)
		}
	}
	return b.Build()
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *program.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseLine(b *program.Builder, line string) error {
	if name, ok := strings.CutPrefix(line, "func "); ok {
		name = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(name), ":"))
		if name == "" {
			return fmt.Errorf("empty function name")
		}
		if !validLabel(name) {
			return fmt.Errorf("bad function name %q", name)
		}
		b.Func(name)
		return nil
	}
	if strings.HasSuffix(line, ":") {
		name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
		if !validLabel(name) {
			return fmt.Errorf("bad label %q", line)
		}
		b.Label(name)
		return nil
	}
	op, rest, _ := strings.Cut(line, " ")
	args := splitArgs(rest)
	switch op {
	case "nop":
		return expectArgs(args, 0, func() { b.Nop() })
	case "halt":
		return expectArgs(args, 0, func() { b.Halt() })
	case "ret":
		return expectArgs(args, 0, func() { b.Ret() })
	case "movi":
		r, err := reg(args, 0)
		if err != nil {
			return err
		}
		v, err := imm(args, 1)
		if err != nil {
			return err
		}
		b.MovImm(r, v)
		return nil
	case "mov":
		return twoRegs(args, func(d, s isa.Reg) { b.Mov(d, s) })
	case "addi":
		d, err := reg(args, 0)
		if err != nil {
			return err
		}
		s, err := reg(args, 1)
		if err != nil {
			return err
		}
		v, err := imm(args, 2)
		if err != nil {
			return err
		}
		b.AddImm(d, s, v)
		return nil
	case "add", "sub", "mul", "div", "rem", "and", "or", "xor", "shl", "shr":
		return threeRegs(args, func(d, s, t isa.Reg) {
			switch op {
			case "add":
				b.Add(d, s, t)
			case "sub":
				b.Sub(d, s, t)
			case "mul":
				b.Mul(d, s, t)
			case "div":
				b.Div(d, s, t)
			case "rem":
				b.Rem(d, s, t)
			case "and":
				b.And(d, s, t)
			case "or":
				b.Or(d, s, t)
			case "xor":
				b.Xor(d, s, t)
			case "shl":
				b.Shl(d, s, t)
			case "shr":
				b.Shr(d, s, t)
			}
		})
	case "load":
		d, err := reg(args, 0)
		if err != nil {
			return err
		}
		base, off, err := memOperand(args, 1)
		if err != nil {
			return err
		}
		b.Load(d, base, off)
		return nil
	case "store":
		base, off, err := memOperand(args, 0)
		if err != nil {
			return err
		}
		s, err := reg(args, 1)
		if err != nil {
			return err
		}
		b.Store(base, off, s)
		return nil
	case "jmp":
		t, addr, numeric, err := target(args, 0)
		if err != nil {
			return err
		}
		if numeric {
			b.Emit(isa.Instr{Op: isa.Jmp, Target: addr})
		} else {
			b.Jmp(t)
		}
		return nil
	case "call":
		t, addr, numeric, err := target(args, 0)
		if err != nil {
			return err
		}
		if numeric {
			b.Emit(isa.Instr{Op: isa.Call, Target: addr})
		} else {
			b.Call(t)
		}
		return nil
	case "beq", "bne", "blt", "ble", "bgt", "bge":
		a, err := reg(args, 0)
		if err != nil {
			return err
		}
		c, err := reg(args, 1)
		if err != nil {
			return err
		}
		t, addr, numeric, err := target(args, 2)
		if err != nil {
			return err
		}
		if numeric {
			b.Emit(isa.Instr{Op: isa.Br, Cond: condOf(op), SrcA: a, SrcB: c, Target: addr})
		} else {
			b.Br(condOf(op), a, c, t)
		}
		return nil
	case "jmpi":
		return oneReg(args, func(r isa.Reg) { b.JmpInd(r) })
	case "calli":
		return oneReg(args, func(r isa.Reg) { b.CallInd(r) })
	case "la":
		r, err := reg(args, 0)
		if err != nil {
			return err
		}
		t, addr, numeric, err := target(args, 1)
		if err != nil {
			return err
		}
		if numeric {
			b.MovImm(r, int64(addr))
		} else {
			b.MovLabel(r, t)
		}
		return nil
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
}

// validLabel restricts label and function names to identifier syntax so a
// label can never be confused with a numeric (absolute-address) branch
// target.
func validLabel(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9', r == '.', r == '-', r == '$':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func condOf(op string) isa.Cond {
	switch op {
	case "beq":
		return isa.CondEq
	case "bne":
		return isa.CondNe
	case "blt":
		return isa.CondLt
	case "ble":
		return isa.CondLe
	case "bgt":
		return isa.CondGt
	default:
		return isa.CondGe
	}
}

// splitArgs splits comma-separated operands, keeping "[rX+N]" intact.
func splitArgs(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func expectArgs(args []string, n int, f func()) error {
	if len(args) != n {
		return fmt.Errorf("expected %d operands, got %d", n, len(args))
	}
	f()
	return nil
}

func reg(args []string, i int) (isa.Reg, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing register operand %d", i+1)
	}
	s := args[i]
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func imm(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing immediate operand %d", i+1)
	}
	v, err := strconv.ParseInt(args[i], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", args[i])
	}
	return v, nil
}

// target returns the label-or-address operand; numeric reports whether the
// operand was an absolute instruction address rather than a label name.
func target(args []string, i int) (label string, addr isa.Addr, numeric bool, err error) {
	if i >= len(args) {
		return "", 0, false, fmt.Errorf("missing target operand %d", i+1)
	}
	s := args[i]
	if n, perr := strconv.ParseUint(s, 0, 32); perr == nil {
		return "", isa.Addr(n), true, nil
	}
	return s, 0, false, nil
}

// memOperand parses "[rX+N]" or "[rX-N]" or "[rX]".
func memOperand(args []string, i int) (isa.Reg, int64, error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing memory operand %d", i+1)
	}
	s := args[i]
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	regPart, offPart := inner, ""
	if sep > 0 {
		regPart, offPart = inner[:sep], inner[sep:]
	}
	if !strings.HasPrefix(regPart, "r") {
		return 0, 0, fmt.Errorf("bad memory base %q", s)
	}
	n, err := strconv.Atoi(regPart[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, 0, fmt.Errorf("bad memory base %q", s)
	}
	var off int64
	if offPart != "" {
		off, err = strconv.ParseInt(offPart, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad memory offset %q", s)
		}
	}
	return isa.Reg(n), off, nil
}

func oneReg(args []string, f func(isa.Reg)) error {
	r, err := reg(args, 0)
	if err != nil {
		return err
	}
	if len(args) != 1 {
		return fmt.Errorf("expected 1 operand, got %d", len(args))
	}
	f(r)
	return nil
}

func twoRegs(args []string, f func(a, b isa.Reg)) error {
	a, err := reg(args, 0)
	if err != nil {
		return err
	}
	c, err := reg(args, 1)
	if err != nil {
		return err
	}
	if len(args) != 2 {
		return fmt.Errorf("expected 2 operands, got %d", len(args))
	}
	f(a, c)
	return nil
}

func threeRegs(args []string, f func(a, b, c isa.Reg)) error {
	a, err := reg(args, 0)
	if err != nil {
		return err
	}
	c, err := reg(args, 1)
	if err != nil {
		return err
	}
	d, err := reg(args, 2)
	if err != nil {
		return err
	}
	if len(args) != 3 {
		return fmt.Errorf("expected 3 operands, got %d", len(args))
	}
	f(a, c, d)
	return nil
}
