package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/program"
)

// Format renders a program as assembly text that Parse accepts and that
// reassembles to the identical instruction stream. Functions and labels
// are emitted at their addresses; branch targets are printed as label
// names when a label exists at the target and as absolute addresses
// otherwise.
func Format(p *program.Program) string {
	labelAt := labelIndex(p)
	var b strings.Builder
	for a := isa.Addr(0); int(a) < p.Len(); a++ {
		for _, f := range p.Funcs() {
			if f.Entry == a {
				fmt.Fprintf(&b, "func %s:\n", f.Name)
			}
		}
		for _, name := range labelAt[a] {
			if isFuncName(p, name) {
				continue // already emitted by the func header
			}
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %s\n", render(p.At(a), labelAt))
	}
	return b.String()
}

func isFuncName(p *program.Program, name string) bool {
	for _, f := range p.Funcs() {
		if f.Name == name {
			return true
		}
	}
	return false
}

// labelIndex maps each address to the sorted label names defined there.
func labelIndex(p *program.Program) map[isa.Addr][]string {
	out := map[isa.Addr][]string{}
	for name, addr := range p.Labels() {
		out[addr] = append(out[addr], name)
	}
	for _, names := range out {
		sort.Strings(names)
	}
	return out
}

// targetName renders a branch target as a label when one exists.
func targetName(labelAt map[isa.Addr][]string, t isa.Addr) string {
	if names := labelAt[t]; len(names) > 0 {
		return names[0]
	}
	return fmt.Sprintf("%d", t)
}

func render(in isa.Instr, labelAt map[isa.Addr][]string) string {
	switch in.Op {
	case isa.Jmp:
		return fmt.Sprintf("jmp %s", targetName(labelAt, in.Target))
	case isa.Call:
		return fmt.Sprintf("call %s", targetName(labelAt, in.Target))
	case isa.Br:
		return fmt.Sprintf("b%s r%d, r%d, %s", in.Cond, in.SrcA, in.SrcB, targetName(labelAt, in.Target))
	default:
		// All other instructions print exactly in the accepted syntax.
		return in.String()
	}
}
