package codecache

import "testing"

func TestKindString(t *testing.T) {
	if KindTrace.String() != "trace" || KindMultipath.String() != "multipath" {
		t.Error("kind names")
	}
}

func TestRegionAccessors(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	r, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 4)},
		Cyclic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBlocks() != 2 {
		t.Errorf("NumBlocks = %d", r.NumBlocks())
	}
	if r.BlockIndex(4) != 1 || r.BlockIndex(2) != -1 {
		t.Error("BlockIndex")
	}
	if !r.Contains(0) || r.Contains(2) {
		t.Error("Contains")
	}
	if len(c.Regions()) != 1 {
		t.Error("Regions")
	}
	if c.EstimatedBytes() != r.EstimatedBytes() {
		t.Error("EstimatedBytes")
	}
	if c.Program() != p {
		t.Error("Program")
	}
}

func TestCountLinks(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	// Region 1: trace A,C cyclic. Its exits: A's fall-through to B (2) and
	// C's fall-through to D (6).
	if _, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 4)},
		Cyclic: true,
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.CountLinks(); got != 0 {
		t.Fatalf("links with one region = %d", got)
	}
	// Region 2 at D (6): now region 1's exit to 6 is a link, and region
	// 2's exit (the call to 9) targets nothing cached.
	if _, err := c.Insert(Spec{
		Entry:  6,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 6)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.CountLinks(); got != 1 {
		t.Errorf("links = %d, want 1", got)
	}
	// Region 3 at B (2): A's other exit direction becomes a link too, and
	// B's jmp to 6 links to region 2.
	if _, err := c.Insert(Spec{
		Entry:  2,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 2)},
	}); err != nil {
		t.Fatal(err)
	}
	if got := c.CountLinks(); got != 3 {
		t.Errorf("links = %d, want 3", got)
	}
}

func TestLookupMiss(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	if r, ok := c.Lookup(0); ok || r != nil {
		t.Error("Lookup on empty cache")
	}
}
