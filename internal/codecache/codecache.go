// Package codecache models the software code cache of a trace-based
// dynamic optimization system (paper §2.1): regions of copied application
// code, the exit stubs that leave them, the entry lookup table, and the
// accounting (instructions copied, stubs, bytes, executions, transitions)
// from which all of the paper's memory and locality metrics derive.
//
// As in the paper's framework, the cache is unbounded by default; a bounded
// variant with full-flush eviction is provided as an extension.
package codecache

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/program"
)

// StubBytes is the conservative per-exit-stub size estimate the paper uses
// when computing cache sizes: "we conservatively add 10 bytes for each exit
// stub" (§4.3.4).
const StubBytes = 10

// PageBytes is the virtual-memory page size used to quantify trace
// separation: the paper's §1 observes that a related trace selected later
// is "inserted far from the original trace, potentially on a separate
// virtual memory page".
const PageBytes = 4096

// Kind distinguishes single-path traces from combined multi-path regions.
type Kind uint8

const (
	// KindTrace is a single interprocedural path (a superblock): one entry,
	// blocks executed in sequence, optionally ending with a branch back to
	// the head (a spanned cycle).
	KindTrace Kind = iota
	// KindMultipath is a region with internal split and join points,
	// produced by trace combination (paper §4).
	KindMultipath
)

// String names the kind.
func (k Kind) String() string {
	if k == KindTrace {
		return "trace"
	}
	return "multipath"
}

// BlockSpec names one static program basic block included in a region.
type BlockSpec struct {
	// Start is the block's leader address in the original program.
	Start isa.Addr
	// Len is the block's instruction count.
	Len int
}

// Spec describes a region to insert. Blocks[0] must be the entry block.
// For KindTrace the blocks form a chain in order; Cyclic records that the
// final block ends with a branch back to the entry (a spanned cycle).
// For KindMultipath, Succs[i] lists the in-region successor block indices
// of block i; Cyclic is ignored (derived from edges to block 0).
type Spec struct {
	Entry  isa.Addr
	Kind   Kind
	Blocks []BlockSpec
	Succs  [][]int
	Cyclic bool
}

// ID identifies a live region within a cache: it indexes the current
// regions slice. After a bounded-cache flush, IDs are reused by new
// regions; SelectedSeq is the stable global selection order.
type ID int

// Region is an immutable selected region plus its mutable execution
// statistics.
type Region struct {
	ID   ID
	Kind Kind
	// Entry is the region's single entry point (original program address).
	Entry isa.Addr
	// Blocks are the member blocks; Blocks[0] is the entry block.
	Blocks []BlockSpec
	// Succs is the in-region adjacency (multipath regions). For traces it
	// holds the implied chain plus the cycle edge, so both kinds can be
	// inspected uniformly.
	Succs [][]int
	// Cyclic records whether the region contains an edge back to its entry
	// ("spans a cycle", §3.2.1).
	Cyclic bool
	// Instrs is the number of program instructions copied into the cache
	// for this region (code expansion contribution).
	Instrs int
	// Stubs is the number of exit stubs the region requires.
	Stubs int
	// CodeBytes is the encoded size of the copied instructions.
	CodeBytes int
	// SelectedSeq orders regions by selection time.
	SelectedSeq uint64
	// CacheAddr is the region's byte offset in the code cache. Regions are
	// placed sequentially in selection order, as Dynamo-style systems do,
	// so traces selected far apart in time land far apart in memory — the
	// paper's trace-separation problem ("potentially on a separate virtual
	// memory page", §1) becomes directly measurable.
	CacheAddr int

	// Execution statistics, maintained by the simulator.

	// Entries counts transfers of control into the region head.
	Entries uint64
	// Traversals counts completed passes through the region: each time
	// control either wraps back to the head (a cycle) or leaves.
	Traversals uint64
	// CycleTraversals counts traversals that ended by taking a branch to
	// the top of the region (executed cycles, §3.2.1).
	CycleTraversals uint64
	// ExecInstrs counts instructions executed inside the region.
	ExecInstrs uint64

	// byStart maps block start -> index within this region only: a handful
	// of entries, recycled with the region through the free list.
	//lint:ignore densemap per-region block index, bounded by MaxTraceBlocks
	byStart      map[isa.Addr]int
	blockByteOff []int // byte offset of each block in the region image
	blockBytes   []int // encoded byte size of each block
}

// BlockByteOffset returns the byte offset of block i within the region's
// cache image (blocks are laid contiguously in spec order, stubs after).
func (r *Region) BlockByteOffset(i int) int { return r.blockByteOff[i] }

// BlockBytes returns the encoded size of block i in bytes.
func (r *Region) BlockBytes(i int) int { return r.blockBytes[i] }

// NumBlocks returns the number of blocks in the region.
func (r *Region) NumBlocks() int { return len(r.Blocks) }

// BlockIndex returns the index of the block starting at addr, or -1.
func (r *Region) BlockIndex(addr isa.Addr) int {
	i, ok := r.byStart[addr]
	if !ok {
		return -1
	}
	return i
}

// Contains reports whether the region includes the block starting at addr.
func (r *Region) Contains(addr isa.Addr) bool { return r.BlockIndex(addr) >= 0 }

// Advance models execution leaving block cur for original address next.
// It returns the next in-region block index when control stays inside the
// region, with cycled set when the transfer is a taken branch back to the
// region entry.
//
//lint:hotpath per-cached-block region walk
func (r *Region) Advance(cur int, next isa.Addr, taken bool) (nextIdx int, stay, cycled bool) {
	switch r.Kind {
	case KindTrace:
		if cur+1 < len(r.Blocks) && r.Blocks[cur+1].Start == next {
			return cur + 1, true, false
		}
		// A taken branch to the top of the trace keeps execution in the
		// region, whether it is the trace-ending cycle branch or a side
		// exit that the system links back to its own head.
		if taken && next == r.Entry {
			return 0, true, true
		}
		return 0, false, false
	default: // KindMultipath
		idx, ok := r.byStart[next]
		if !ok {
			return 0, false, false
		}
		// Any transfer to a member block stays inside the region: edges
		// observed during profiling are region-internal, and exits that
		// target a member block were replaced by direct edges when the
		// region was formed (paper Figure 13, line 16).
		return idx, true, taken && next == r.Entry
	}
}

// entryCell is one slot of the dense entry table. A cell names a live
// region only when its epoch matches the cache's current epoch, so Reset
// invalidates the whole table by bumping the epoch instead of rewriting it.
type entryCell struct {
	id    int32
	epoch uint32
}

// Cache is the simulated code cache.
type Cache struct {
	prog    *program.Program
	regions []*Region
	// entries maps a region entry address to its live region ID. It is a
	// dense slice indexed by instruction address so the per-block
	// Lookup/HasEntry hot path never hashes; a cell is valid only when its
	// epoch matches the cache's, which makes Reset O(1) over the table
	// (epoch-based clearing, no reallocation).
	entries []entryCell
	epoch   uint32
	seq     uint64

	// Cumulative counters. Evicted regions keep contributing: code
	// expansion measures optimizer work done, not current occupancy.
	totalInstrs    int
	totalStubs     int
	totalCodeBytes int
	flushes        int
	partitions     int

	// Limit, in estimated bytes, for the bounded-cache extension; 0 means
	// unbounded (the paper's configuration).
	limitBytes int
	liveBytes  int
	nextAddr   int // next free cache byte offset

	evicted []*Region

	// free holds recycled regions from previous runs of a pooled cache;
	// Insert draws from it before allocating, so a resettable cache reaches
	// zero steady-state allocations per promotion even under eviction-heavy
	// bounded configurations.
	free []*Region
	// allScratch backs AllRegions so repeated analyses of a cache with
	// evicted regions do not allocate; its contents are rebuilt on every
	// call, so only capacity carries information across runs.
	allScratch []*Region
	// seen is validate's duplicate-block scratch, reused across insertions.
	//lint:keep validate's scratch; nil-checked and cleared before every use
	//lint:ignore densemap per-insert duplicate set, bounded by MaxTraceBlocks
	seen map[isa.Addr]bool
}

// New returns an empty, unbounded cache for the program.
func New(p *program.Program) *Cache {
	c := &Cache{}
	c.Reset(p, 0)
	return c
}

// NewBounded returns a cache that flushes completely whenever the estimated
// occupancy would exceed limitBytes (the preemptive-flush policy studied by
// Hazelwood; an extension beyond the paper's unbounded setup).
func NewBounded(p *program.Program, limitBytes int) *Cache {
	c := &Cache{}
	c.Reset(p, limitBytes)
	return c
}

// Reset re-targets the cache to a (possibly different) program and cache
// bound, recycling every region ever selected into the free list and
// invalidating the dense entry table by epoch bump — no table rewrite, no
// reallocation. Pooled harness workers call it between back-to-back runs;
// *Region pointers and Snapshot results from the previous run become
// invalid (their backing objects will be reused by future insertions).
func (c *Cache) Reset(p *program.Program, limitBytes int) {
	c.free = append(c.free, c.regions...)
	c.free = append(c.free, c.evicted...)
	c.regions = c.regions[:0]
	c.evicted = c.evicted[:0]
	c.prog = p
	if n := p.Len(); n > len(c.entries) {
		if n <= cap(c.entries) {
			c.entries = c.entries[:n]
		} else {
			grown := make([]entryCell, n)
			copy(grown, c.entries)
			c.entries = grown
		}
	} else {
		c.entries = c.entries[:p.Len()]
	}
	c.epoch++
	if c.epoch == 0 {
		// Epoch wraparound: stale cells from 2^32 resets ago could read as
		// current. Clear once and restart at 1 (cell epoch 0 means never set).
		//lint:ignore epochguard wraparound is the one sound full clear; every 2^32 resets, not a steady-state path
		clear(c.entries)
		c.epoch = 1
	}
	c.seq = 0
	c.totalInstrs, c.totalStubs, c.totalCodeBytes = 0, 0, 0
	c.flushes = 0
	c.partitions = 0
	c.limitBytes = limitBytes
	c.liveBytes, c.nextAddr = 0, 0
	c.allScratch = c.allScratch[:0]
}

// Lookup returns the region whose entry is addr.
//
//lint:hotpath per-block entry probe
func (c *Cache) Lookup(addr isa.Addr) (*Region, bool) {
	if int(addr) >= len(c.entries) {
		return nil, false
	}
	cell := c.entries[addr]
	if cell.epoch != c.epoch {
		return nil, false
	}
	return c.regions[cell.id], true
}

// HasEntry reports whether addr begins a cached region.
//
//lint:hotpath per-block entry probe
func (c *Cache) HasEntry(addr isa.Addr) bool {
	return int(addr) < len(c.entries) && c.entries[addr].epoch == c.epoch
}

// ContainsInstr reports whether the instruction at addr has been copied
// into any live region. FORM-TRACE uses region *entries* to stop trace
// growth; this broader test supports metrics and tests.
func (c *Cache) ContainsInstr(addr isa.Addr) bool {
	for _, r := range c.regions {
		for _, b := range r.Blocks {
			if addr >= b.Start && addr < b.Start+isa.Addr(b.Len) {
				return true
			}
		}
	}
	return false
}

// newRegion returns a zeroed region, recycled from the free list when one
// is available (the blocks, adjacency, offset tables, and index map keep
// their backing storage, so steady-state insertion on a pooled cache does
// not allocate).
func (c *Cache) newRegion() *Region {
	if n := len(c.free); n > 0 {
		r := c.free[n-1]
		c.free = c.free[:n-1]
		blocks := r.Blocks[:0]
		succs := r.Succs[:0] // inner []int headers stay live in the backing array
		offs := r.blockByteOff[:0]
		bytes := r.blockBytes[:0]
		byStart := r.byStart
		clear(byStart)
		*r = Region{Blocks: blocks, Succs: succs, blockByteOff: offs, blockBytes: bytes, byStart: byStart}
		return r
	}
	//lint:ignore densemap per-region block index, bounded by MaxTraceBlocks
	return &Region{byStart: make(map[isa.Addr]int)}
}

// Insert validates spec, computes its stub and size accounting, installs it,
// and returns the new region. Inserting a region whose entry is already
// cached is an error: the caller should have looked it up first.
//
//lint:hotpath steady-state insertions recycle pooled regions
func (c *Cache) Insert(spec Spec) (*Region, error) {
	if err := c.validate(spec); err != nil {
		return nil, err
	}
	r := c.newRegion()
	r.Kind = spec.Kind
	r.Entry = spec.Entry
	r.Blocks = append(r.Blocks, spec.Blocks...)
	r.Cyclic = spec.Cyclic
	r.SelectedSeq = c.seq
	c.seq++
	for i, b := range r.Blocks {
		r.byStart[b.Start] = i
		r.Instrs += b.Len
		bb := c.prog.RangeBytes(b.Start, b.Start+isa.Addr(b.Len))
		r.blockByteOff = append(r.blockByteOff, r.CodeBytes)
		r.blockBytes = append(r.blockBytes, bb)
		r.CodeBytes += bb
	}
	c.fillSuccs(r, spec)
	if spec.Kind == KindMultipath {
		r.Cyclic = false
		for _, ss := range r.Succs {
			for _, s := range ss {
				if s == 0 {
					r.Cyclic = true
				}
			}
		}
	}
	r.Stubs = c.countStubs(r)

	if c.limitBytes > 0 && c.liveBytes+r.EstimatedBytes() > c.limitBytes {
		c.flush()
	}
	// The ID indexes the live regions slice, so it is assigned only after
	// any flush has emptied it.
	r.ID = ID(len(c.regions))
	r.CacheAddr = c.nextAddr
	c.nextAddr += r.EstimatedBytes()
	c.regions = append(c.regions, r)
	c.entries[r.Entry] = entryCell{id: int32(r.ID), epoch: c.epoch}
	c.totalInstrs += r.Instrs
	c.totalStubs += r.Stubs
	c.totalCodeBytes += r.CodeBytes
	c.liveBytes += r.EstimatedBytes()
	return r, nil
}

func (c *Cache) validate(spec Spec) error {
	if len(spec.Blocks) == 0 {
		return fmt.Errorf("codecache: empty region")
	}
	if spec.Blocks[0].Start != spec.Entry {
		return fmt.Errorf("codecache: entry %d is not the first block (%d)", spec.Entry, spec.Blocks[0].Start)
	}
	if c.HasEntry(spec.Entry) {
		return fmt.Errorf("codecache: region with entry %d already cached", spec.Entry)
	}
	if c.seen == nil {
		//lint:ignore densemap per-insert duplicate set, bounded by MaxTraceBlocks
		c.seen = make(map[isa.Addr]bool, len(spec.Blocks))
	} else {
		clear(c.seen)
	}
	for _, b := range spec.Blocks {
		if !c.prog.IsBlockStart(b.Start) {
			return fmt.Errorf("codecache: block %d is not a program block leader", b.Start)
		}
		if got := c.prog.BlockLen(b.Start); got != b.Len {
			return fmt.Errorf("codecache: block %d has length %d, program says %d", b.Start, b.Len, got)
		}
		if c.seen[b.Start] {
			return fmt.Errorf("codecache: duplicate block %d in region", b.Start)
		}
		c.seen[b.Start] = true
	}
	if spec.Kind == KindMultipath {
		if len(spec.Succs) != len(spec.Blocks) {
			return fmt.Errorf("codecache: multipath region needs adjacency for every block")
		}
		for i, ss := range spec.Succs {
			for _, s := range ss {
				if s < 0 || s >= len(spec.Blocks) {
					return fmt.Errorf("codecache: block %d has out-of-range successor %d", i, s)
				}
			}
		}
	}
	return nil
}

// fillSuccs fills r.Succs in place with the in-region adjacency. For traces
// it materializes the chain (and cycle edge) so that analyses can treat both
// kinds alike. The outer slice and the recycled inner []int headers are
// reused within capacity, so a pooled cache fills adjacency without
// allocating in steady state.
func (c *Cache) fillSuccs(r *Region, spec Spec) {
	n := len(r.Blocks)
	if cap(r.Succs) >= n {
		r.Succs = r.Succs[:n]
	} else {
		r.Succs = append(r.Succs[:cap(r.Succs)], make([][]int, n-cap(r.Succs))...)
	}
	for i := range r.Succs {
		r.Succs[i] = r.Succs[i][:0]
	}
	if spec.Kind == KindMultipath {
		for i, ss := range spec.Succs {
			r.Succs[i] = append(r.Succs[i], ss...)
		}
		return
	}
	for i := 0; i < n; i++ {
		if i+1 < n {
			r.Succs[i] = append(r.Succs[i], i+1)
		} else if spec.Cyclic {
			r.Succs[i] = append(r.Succs[i], 0)
		}
	}
}

// InternalEdge reports whether the direction from block i to the block
// starting at tgt is covered by an in-region successor (so it needs no exit
// stub or link). Succs lists are tiny — one or two entries — so a linear
// scan beats building a set.
//
//lint:hotpath per-edge during analysis
func (r *Region) InternalEdge(i int, tgt isa.Addr) bool {
	for _, s := range r.Succs[i] {
		if r.Blocks[s].Start == tgt {
			return true
		}
	}
	return false
}

// countStubs counts the exit stubs a region requires: one for every
// control-flow direction that leaves the region. Directions covered by
// in-region successors need no stub. Indirect branches (including returns)
// always keep one stub for unexpected targets even when their observed
// target is in the region.
func (c *Cache) countStubs(r *Region) int {
	stubs := 0
	for i, b := range r.Blocks {
		end := b.Start + isa.Addr(b.Len)
		last := c.prog.At(end - 1)
		//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly below)
		countDir := func(tgt isa.Addr) {
			if !r.InternalEdge(i, tgt) {
				stubs++
			}
		}
		switch {
		case last.Op == isa.Halt:
			// No exit.
		case last.Op == isa.Br:
			countDir(last.Target)
			countDir(end)
		case last.Op == isa.Jmp || last.Op == isa.Call:
			countDir(last.Target)
		case last.IsIndirect():
			stubs++
		default:
			// Pure fall-through block end.
			countDir(end)
		}
	}
	return stubs
}

// flush implements the bounded-cache full-flush policy.
func (c *Cache) flush() {
	c.flushes++
	c.evicted = append(c.evicted, c.regions...)
	for _, r := range c.regions {
		// Epoch 0 never matches the current epoch (it is always >= 1).
		c.entries[r.Entry] = entryCell{}
	}
	c.regions = c.regions[:0]
	c.liveBytes = 0
	c.nextAddr = 0 // the flushed cache is repopulated from its base
	// Region IDs restart; SelectedSeq keeps global ordering.
	// Callers holding *Region pointers across a flush see stale regions,
	// which is intended: their statistics remain valid for analysis.
}

// FlushPartition retires every live region without resetting the cache's
// address space: the regions move to the evicted list, their entries are
// invalidated, and live occupancy drops to zero, but — unlike the bounded
// cache's flush — nextAddr keeps advancing, so regions inserted after the
// call occupy a fresh, disjoint address range. The adaptive meta-selector
// calls this on a policy switch: the retired partition's regions stay
// visible to cumulative metrics (code expansion, per-region statistics)
// while no region selected by the outgoing policy remains reachable, and
// no future region can alias a retired one's cache address.
func (c *Cache) FlushPartition() {
	c.partitions++
	c.evicted = append(c.evicted, c.regions...)
	for _, r := range c.regions {
		// Epoch 0 never matches the current epoch (it is always >= 1).
		c.entries[r.Entry] = entryCell{}
	}
	c.regions = c.regions[:0]
	c.liveBytes = 0
}

// EstimatedBytes estimates the region's cache footprint the way the paper
// does for Figure 18: instruction bytes plus StubBytes per exit stub.
func (r *Region) EstimatedBytes() int { return r.CodeBytes + r.Stubs*StubBytes }

// Regions returns the live regions in selection order.
func (c *Cache) Regions() []*Region { return c.regions }

// AllRegions returns every region ever selected (including evicted ones),
// ordered by selection time. No sort is needed: every flush (bounded-cache
// eviction or FlushPartition) moves all live regions — already in ascending
// SelectedSeq order — onto the evicted tail, and every region selected
// afterwards gets a larger seq, so evicted followed by live is globally
// ascending. The returned slice aliases internal storage and is valid only
// until the next AllRegions, Insert, or Reset call.
func (c *Cache) AllRegions() []*Region {
	if len(c.evicted) == 0 {
		return c.regions
	}
	c.allScratch = append(c.allScratch[:0], c.evicted...)
	c.allScratch = append(c.allScratch, c.regions...)
	return c.allScratch
}

// NumRegions returns the number of regions ever selected.
func (c *Cache) NumRegions() int { return len(c.regions) + len(c.evicted) }

// TotalInstrs returns the cumulative number of program instructions copied
// into the cache — the paper's code expansion metric (§2.3).
func (c *Cache) TotalInstrs() int { return c.totalInstrs }

// TotalStubs returns the cumulative number of exit stubs created.
func (c *Cache) TotalStubs() int { return c.totalStubs }

// EstimatedBytes returns the paper's cache-size estimate over all regions
// ever selected: instruction bytes plus StubBytes per stub (§4.3.4).
func (c *Cache) EstimatedBytes() int { return c.totalCodeBytes + c.totalStubs*StubBytes }

// Flushes returns how many times the bounded cache flushed (zero when
// unbounded).
func (c *Cache) Flushes() int { return c.flushes }

// Partitions returns how many times FlushPartition retired a policy
// partition (zero outside the adaptive meta-selector).
func (c *Cache) Partitions() int { return c.partitions }

// Program returns the program this cache serves.
func (c *Cache) Program() *program.Program { return c.prog }

// CountLinks counts exit directions of live regions whose target is
// another live region's entry: the inter-region links a Dynamo-style
// system patches into exit stubs. The paper's footnote 9 ignores the
// memory such links need but argues its algorithms reduce their number.
func (c *Cache) CountLinks() int {
	links := 0
	for _, r := range c.regions {
		for i, b := range r.Blocks {
			end := b.Start + isa.Addr(b.Len)
			last := c.prog.At(end - 1)
			//lint:ignore hotpathalloc non-escaping closure, stack-allocated (called directly below)
			countDir := func(tgt isa.Addr) {
				if !r.InternalEdge(i, tgt) && c.HasEntry(tgt) && tgt != r.Entry {
					links++
				}
			}
			switch {
			case last.Op == isa.Halt:
			case last.Op == isa.Br:
				countDir(last.Target)
				countDir(end)
			case last.Op == isa.Jmp || last.Op == isa.Call:
				countDir(last.Target)
			case last.IsIndirect():
				// Indirect exits dispatch dynamically; no static link.
			default:
				countDir(end)
			}
		}
	}
	return links
}
