package codecache

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Persistent code caches — serializing selected regions so a later run of
// the same program starts warm — are a natural extension of the paper's
// setting (and the subject of follow-on work on code-cache persistence).
// A Snapshot captures exactly the selection decisions, not execution
// statistics: restoring replays the selections into a fresh cache.

// RegionSnapshot is the serializable form of one selected region.
type RegionSnapshot struct {
	Entry  isa.Addr    `json:"entry"`
	Kind   Kind        `json:"kind"`
	Blocks []BlockSpec `json:"blocks"`
	Succs  [][]int     `json:"succs,omitempty"`
	Cyclic bool        `json:"cyclic"`
}

// Snapshot captures the live regions in selection order.
func (c *Cache) Snapshot() []RegionSnapshot {
	out := make([]RegionSnapshot, 0, len(c.regions))
	for _, r := range c.regions {
		s := RegionSnapshot{
			Entry:  r.Entry,
			Kind:   r.Kind,
			Blocks: append([]BlockSpec(nil), r.Blocks...),
			Cyclic: r.Cyclic,
		}
		if r.Kind == KindMultipath {
			s.Succs = make([][]int, len(r.Succs))
			for i, ss := range r.Succs {
				s.Succs[i] = append([]int(nil), ss...)
			}
		}
		out = append(out, s)
	}
	return out
}

// Restore inserts every snapshotted region into the cache. The cache must
// serve the same program the snapshot was taken from; block-shape
// validation catches mismatches.
func (c *Cache) Restore(snaps []RegionSnapshot) error {
	for i, s := range snaps {
		spec := Spec{
			Entry:  s.Entry,
			Kind:   s.Kind,
			Blocks: s.Blocks,
			Succs:  s.Succs,
			Cyclic: s.Cyclic,
		}
		if _, err := c.Insert(spec); err != nil {
			return fmt.Errorf("codecache: restoring region %d: %w", i, err)
		}
	}
	return nil
}

// WriteSnapshot serializes the live regions as JSON.
func (c *Cache) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c.Snapshot())
}

// ReadSnapshot parses a snapshot previously written with WriteSnapshot.
func ReadSnapshot(r io.Reader) ([]RegionSnapshot, error) {
	var snaps []RegionSnapshot
	if err := json.NewDecoder(r).Decode(&snaps); err != nil {
		return nil, fmt.Errorf("codecache: parsing snapshot: %w", err)
	}
	return snaps, nil
}
