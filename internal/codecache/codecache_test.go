package codecache

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

// testProgram builds a program with a variety of block shapes:
//
//	0: movi r1, 3          block A [0..1]
//	1: bgt r1, r0, 4       (to C)
//	2: addi r2, r2, 1      block B [2..3]
//	3: jmp 6
//	4: addi r2, r2, 2      block C [4..5]
//	5: bgt r2, r0, 0       (back to A)
//	6: call 9              block D [6]
//	7: nop                 block E [7..8]  (return lands here)
//	8: halt
//	9: ret                 block F [9] (function f)
func testProgram(t *testing.T) *program.Program {
	t.Helper()
	ins := []isa.Instr{
		{Op: isa.MovImm, Dst: 1, Imm: 3},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 1, SrcB: 0, Target: 4},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: 1},
		{Op: isa.Jmp, Target: 6},
		{Op: isa.AddImm, Dst: 2, SrcA: 2, Imm: 2},
		{Op: isa.Br, Cond: isa.CondGt, SrcA: 2, SrcB: 0, Target: 0},
		{Op: isa.Call, Target: 9},
		{Op: isa.Nop},
		{Op: isa.Halt},
		{Op: isa.Ret},
	}
	p, err := program.New(ins, []program.Function{{Name: "f", Entry: 9, End: 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func blockSpec(p *program.Program, start isa.Addr) BlockSpec {
	return BlockSpec{Start: start, Len: p.BlockLen(start)}
}

func TestInsertTraceAccounting(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	// Trace A -> C, cyclic (C ends with a branch back to A).
	r, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 4)},
		Cyclic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Instrs != 4 {
		t.Errorf("Instrs = %d, want 4", r.Instrs)
	}
	// Stubs: A's fall-through to B (taken direction internal via chain? no:
	// A->C is the taken direction, internal). C's taken direction is the
	// cycle (internal), C's fall-through to D exits. So 2 stubs.
	if r.Stubs != 2 {
		t.Errorf("Stubs = %d, want 2", r.Stubs)
	}
	wantBytes := p.RangeBytes(0, 2) + p.RangeBytes(4, 6)
	if r.CodeBytes != wantBytes {
		t.Errorf("CodeBytes = %d, want %d", r.CodeBytes, wantBytes)
	}
	if r.EstimatedBytes() != wantBytes+2*StubBytes {
		t.Errorf("EstimatedBytes = %d", r.EstimatedBytes())
	}
	if !r.Cyclic {
		t.Error("region should be cyclic")
	}
	if c.TotalInstrs() != 4 || c.TotalStubs() != 2 {
		t.Errorf("cache totals: instrs=%d stubs=%d", c.TotalInstrs(), c.TotalStubs())
	}
	if got, ok := c.Lookup(0); !ok || got != r {
		t.Error("Lookup(0) failed")
	}
	if c.HasEntry(4) {
		t.Error("HasEntry(4) should be false (4 is interior)")
	}
	if !c.ContainsInstr(5) || c.ContainsInstr(2) {
		t.Error("ContainsInstr wrong")
	}
}

func TestStubCounting(t *testing.T) {
	p := testProgram(t)
	cases := []struct {
		name  string
		spec  Spec
		stubs int
	}{
		{
			// Non-cyclic trace ending in a conditional: both directions of
			// the final branch exit, plus A's fall-through.
			name: "trace ends with conditional",
			spec: Spec{Entry: 0, Kind: KindTrace,
				Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 4)}},
			stubs: 3,
		},
		{
			// Single-block trace ending with an unconditional jmp: 1 stub
			// (the jump target) plus nothing else.
			name:  "trace ends with jmp",
			spec:  Spec{Entry: 2, Kind: KindTrace, Blocks: []BlockSpec{blockSpec(p, 2)}},
			stubs: 1,
		},
		{
			// Block ending in a call: one stub for the callee.
			name:  "trace ends with call",
			spec:  Spec{Entry: 6, Kind: KindTrace, Blocks: []BlockSpec{blockSpec(p, 6)}},
			stubs: 1,
		},
		{
			// Return: indirect, always one stub.
			name:  "trace ends with ret",
			spec:  Spec{Entry: 9, Kind: KindTrace, Blocks: []BlockSpec{blockSpec(p, 9)}},
			stubs: 1,
		},
		{
			// Halt block: no exit at all.
			name:  "halt block",
			spec:  Spec{Entry: 7, Kind: KindTrace, Blocks: []BlockSpec{blockSpec(p, 7)}},
			stubs: 0,
		},
		{
			// Multipath region A,B,C with internal edges A->B, A->C, C->A:
			// remaining exits are B's jmp to D and C's fall-through to D.
			name: "multipath internal edges",
			spec: Spec{Entry: 0, Kind: KindMultipath,
				Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 2), blockSpec(p, 4)},
				Succs:  [][]int{{1, 2}, {}, {0}}},
			stubs: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(p)
			r, err := c.Insert(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if r.Stubs != tc.stubs {
				t.Errorf("stubs = %d, want %d", r.Stubs, tc.stubs)
			}
		})
	}
}

func TestInsertValidation(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	mustErr := func(name string, spec Spec, frag string) {
		t.Helper()
		if _, err := c.Insert(spec); err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("%s: err = %v, want containing %q", name, err, frag)
		}
	}
	mustErr("empty", Spec{Entry: 0}, "empty")
	mustErr("entry mismatch", Spec{Entry: 0, Blocks: []BlockSpec{blockSpec(p, 2)}}, "not the first block")
	mustErr("non-leader", Spec{Entry: 1, Blocks: []BlockSpec{{Start: 1, Len: 1}}}, "not a program block leader")
	mustErr("bad length", Spec{Entry: 0, Blocks: []BlockSpec{{Start: 0, Len: 7}}}, "length")
	mustErr("duplicate block", Spec{Entry: 0,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 0)}}, "duplicate")
	mustErr("missing adjacency", Spec{Entry: 0, Kind: KindMultipath,
		Blocks: []BlockSpec{blockSpec(p, 0)}, Succs: nil}, "adjacency")
	mustErr("bad successor", Spec{Entry: 0, Kind: KindMultipath,
		Blocks: []BlockSpec{blockSpec(p, 0)}, Succs: [][]int{{3}}}, "out-of-range")

	if _, err := c.Insert(Spec{Entry: 0, Kind: KindTrace, Blocks: []BlockSpec{blockSpec(p, 0)}}); err != nil {
		t.Fatal(err)
	}
	mustErr("duplicate entry", Spec{Entry: 0, Kind: KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0)}}, "already cached")
}

func TestTraceAdvance(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	r, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 4)},
		Cyclic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Following the chain.
	if idx, stay, cyc := r.Advance(0, 4, true); !stay || idx != 1 || cyc {
		t.Errorf("chain advance = %d,%v,%v", idx, stay, cyc)
	}
	// Cycle back to the head.
	if idx, stay, cyc := r.Advance(1, 0, true); !stay || idx != 0 || !cyc {
		t.Errorf("cycle advance = %d,%v,%v", idx, stay, cyc)
	}
	// Side exit off-trace.
	if _, stay, _ := r.Advance(0, 2, false); stay {
		t.Error("off-trace fall-through should exit")
	}
	// Fall-through to the head is an exit, not a cycle.
	if _, stay, _ := r.Advance(1, 0, false); stay {
		t.Error("fall-through to head should exit (not a taken branch)")
	}
	// A taken side exit targeting the head stays (linked back to self).
	if idx, stay, cyc := r.Advance(0, 0, true); !stay || idx != 0 || !cyc {
		t.Errorf("taken-to-head = %d,%v,%v", idx, stay, cyc)
	}
}

func TestMultipathAdvance(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	r, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindMultipath,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 2), blockSpec(p, 4)},
		Succs:  [][]int{{1, 2}, {}, {0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Cyclic {
		t.Error("edge to block 0 should make the region cyclic")
	}
	if idx, stay, _ := r.Advance(0, 2, false); !stay || idx != 1 {
		t.Errorf("to member 2: %d,%v", idx, stay)
	}
	if idx, stay, cyc := r.Advance(2, 0, true); !stay || idx != 0 || !cyc {
		t.Errorf("back edge: %d,%v,%v", idx, stay, cyc)
	}
	if _, stay, _ := r.Advance(1, 6, true); stay {
		t.Error("to non-member should exit")
	}
}

func TestBoundedCacheFlush(t *testing.T) {
	p := testProgram(t)
	single := func(start isa.Addr) Spec {
		return Spec{Entry: start, Kind: KindTrace, Blocks: []BlockSpec{blockSpec(p, start)}}
	}
	sz := func(start isa.Addr) int {
		c := New(p)
		r, err := c.Insert(single(start))
		if err != nil {
			t.Fatal(err)
		}
		return r.EstimatedBytes()
	}
	limit := sz(0) + sz(2) + 1
	c := NewBounded(p, limit)
	if _, err := c.Insert(single(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(single(2)); err != nil {
		t.Fatal(err)
	}
	if c.Flushes() != 0 {
		t.Fatalf("premature flush")
	}
	if _, err := c.Insert(single(4)); err != nil {
		t.Fatal(err)
	}
	if c.Flushes() != 1 {
		t.Errorf("flushes = %d, want 1", c.Flushes())
	}
	// Old entries are gone; the new region is present.
	if c.HasEntry(0) || c.HasEntry(2) || !c.HasEntry(4) {
		t.Error("entries after flush wrong")
	}
	// Cumulative accounting includes evicted regions.
	if c.NumRegions() != 3 {
		t.Errorf("NumRegions = %d, want 3", c.NumRegions())
	}
	all := c.AllRegions()
	if len(all) != 3 {
		t.Fatalf("AllRegions = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].SelectedSeq >= all[i].SelectedSeq {
			t.Error("AllRegions not in selection order")
		}
	}
	if c.TotalInstrs() != 2+2+2 {
		t.Errorf("TotalInstrs = %d", c.TotalInstrs())
	}
}
