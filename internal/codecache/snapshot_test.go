package codecache

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	if _, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0), blockSpec(p, 4)},
		Cyclic: true,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(Spec{
		Entry:  2,
		Kind:   KindMultipath,
		Blocks: []BlockSpec{blockSpec(p, 2), blockSpec(p, 6)},
		Succs:  [][]int{{1}, {}},
	}); err != nil {
		t.Fatal(err)
	}
	snaps := c.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot = %d regions", len(snaps))
	}

	fresh := New(p)
	if err := fresh.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	for _, orig := range c.Regions() {
		got, ok := fresh.Lookup(orig.Entry)
		if !ok {
			t.Fatalf("restored cache misses entry %d", orig.Entry)
		}
		if got.Kind != orig.Kind || got.Cyclic != orig.Cyclic ||
			len(got.Blocks) != len(orig.Blocks) || got.Stubs != orig.Stubs {
			t.Errorf("restored region differs: %+v vs %+v", got, orig)
		}
	}
	if fresh.TotalInstrs() != c.TotalInstrs() || fresh.TotalStubs() != c.TotalStubs() {
		t.Error("restored accounting differs")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	if _, err := c.Insert(Spec{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{blockSpec(p, 0)},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snaps, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Entry != 0 {
		t.Errorf("snaps = %+v", snaps)
	}
	fresh := New(p)
	if err := fresh.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	if !fresh.HasEntry(0) {
		t.Error("restore from JSON lost the region")
	}
}

func TestRestoreRejectsMismatchedProgram(t *testing.T) {
	p := testProgram(t)
	c := New(p)
	err := c.Restore([]RegionSnapshot{{
		Entry:  0,
		Kind:   KindTrace,
		Blocks: []BlockSpec{{Start: 0, Len: 99}}, // wrong length for this program
	}})
	if err == nil || !strings.Contains(err.Error(), "restoring region 0") {
		t.Errorf("err = %v", err)
	}
}

func TestReadSnapshotBadJSON(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
}
