package dynopt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestLEISteadyStateAllocFree pins the dense-state migration's goal for the
// LEI hot path: once the simulator's tables are pre-sized (NewSimulator
// calls Preallocate with the program's address-space size), delivering
// taken-branch events through the full LEI profiling sequence — history
// ring insert, dense-hash lookup, set-hash, counter increment — must not
// allocate. The threshold is set unreachably high so cycles complete on
// every event but no trace is ever formed.
func TestLEISteadyStateAllocFree(t *testing.T) {
	prog := loopProgram(t, 1)
	params := core.DefaultParams()
	params.LEIThreshold = 1 << 30
	sim := NewSimulator(prog, Config{Selector: core.NewLEI(params)})
	sim.pos = prog.Entry()
	// Warm up: the entry fall-through, then enough backward branches to
	// touch every edge cell the steady state will touch.
	sim.BlockBatch([]vm.BlockEvent{{Src: 0, Tgt: 1, Taken: false}})
	batch := make([]vm.BlockEvent, 64)
	for i := range batch {
		batch[i] = vm.BlockEvent{Src: 3, Tgt: 1, Kind: vm.KindCond, Taken: true}
	}
	sim.BlockBatch(batch)
	if allocs := testing.AllocsPerRun(100, func() { sim.BlockBatch(batch) }); allocs != 0 {
		t.Fatalf("steady-state LEI profiling allocated %.1f times per batch, want 0", allocs)
	}
	if sim.region != nil {
		t.Fatal("LEI selected a region despite the unreachable threshold")
	}
}

// TestPooledAnalyzeAllocFree pins the pooled metrics path: after one
// warm-up call, re-analyzing a finished run on the same metrics.Analyzer
// must not allocate — the predecessor table, cover-set ordering buffer, and
// domination work list are all reused, and the de-mapped link counting in
// the code cache allocates nothing.
func TestPooledAnalyzeAllocFree(t *testing.T) {
	sel := core.NewLEI(core.DefaultParams())
	res, err := Run(workloads.MustGet("fig3-nested-loops").Build(30), Config{Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Regions == 0 {
		t.Fatal("want a non-trivial run with selected regions")
	}
	st := sel.Stats()
	var a metrics.Analyzer
	warm := a.Analyze(res.Cache, res.Collector, st)
	warm.Selector = res.Report.Selector // stamped by Run, not by Analyze
	if warm != res.Report {
		// The run's own report went through the same code; they must agree.
		t.Fatalf("pooled analyzer diverges from run report:\npooled: %+v\nrun:    %+v", warm, res.Report)
	}
	if allocs := testing.AllocsPerRun(50, func() { a.Analyze(res.Cache, res.Collector, st) }); allocs != 0 {
		t.Fatalf("steady-state Analyze allocated %.1f times per call, want 0", allocs)
	}
}

// tailBranchProgram builds a program whose final instruction is a taken
// backward branch:
//
//	0: movi r1, n        entry
//	1: jmp 4             to the loop tail
//	2: halt              "done"
//	3: addi r1, r1, -1   loop body
//	4: br le r1, r0, 2   exits the loop when the counter runs out
//	5: jmp 3             last instruction; taken on every iteration
//
// Every dense table sized from program.Len() must tolerate addresses
// reaching the one-past-the-end predecode sentinel the VM keeps at index
// Len; a block whose final instruction is the program's last instruction is
// the boundary case (its block end IS the sentinel address).
func tailBranchProgram(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	b.MovImm(1, n)
	b.Jmp("tail")
	b.Label("done")
	b.Halt()
	b.Label("body")
	b.AddImm(1, 1, -1)
	b.Label("tail")
	b.Br(isa.CondLe, 1, 0, "done")
	b.Jmp("body")
	return b.MustBuild()
}

// TestTailTakenBranchSentinel is the regression test for the sentinel
// off-by-one: run the tail-branch program under every selector, with
// thresholds low enough that the final block (whose end is the program
// boundary) is profiled, selected, and executed from the cache.
func TestTailTakenBranchSentinel(t *testing.T) {
	prog := tailBranchProgram(t, 400)
	params := core.DefaultParams()
	params.NETThreshold = 4
	params.LEIThreshold = 3
	params.TProf = 2
	selectors := []func() core.Selector{
		func() core.Selector { return core.NewNET(params) },
		func() core.Selector { return core.NewLEI(params) },
		func() core.Selector { return core.NewMojoNET(params, 2) },
		func() core.Selector { return core.NewCombiner(core.BaseNET, params) },
		func() core.Selector { return core.NewCombiner(core.BaseLEI, params) },
		func() core.Selector { return core.NewBOA(params) },
		func() core.Selector { return core.NewWRS(params) },
	}
	scratch := &Scratch{}
	for _, newSel := range selectors {
		sel := newSel()
		res, err := Run(prog, Config{Selector: sel})
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		if res.Report.TotalInstrs != res.VMStats.Instrs {
			t.Errorf("%s: attribution mismatch", sel.Name())
		}
		// The pooled path must survive the boundary case too, including
		// when the scratch was previously sized by a different program.
		pooled, err := Run(prog, Config{Selector: newSel(), Scratch: scratch})
		if err != nil {
			t.Fatalf("%s pooled: %v", sel.Name(), err)
		}
		if pooled.Report != res.Report {
			t.Errorf("%s: pooled report diverges on sentinel-boundary program", sel.Name())
		}
	}
	// The hot loop's tail block must actually have been cached under NET:
	// the boundary block participated in region execution, not just
	// profiling.
	sel := core.NewNET(params)
	res, err := Run(prog, Config{Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Regions == 0 || res.Report.CacheInstrs == 0 {
		t.Fatalf("NET selected nothing on the tail-branch program: %+v", res.Report)
	}
}
