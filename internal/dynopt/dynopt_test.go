package dynopt

import (
	"errors"
	"testing"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// preloaded is a selector that inserts a fixed region spec on the first
// interpreted transfer and records the callbacks it receives.
type preloaded struct {
	spec      codecache.Spec
	inserted  bool
	transfers []core.Event
	exits     []isa.Addr
	exitSrcs  []isa.Addr
}

func (s *preloaded) Name() string { return "preloaded" }

func (s *preloaded) Transfer(env core.Env, ev core.Event) {
	s.transfers = append(s.transfers, ev)
	if !s.inserted {
		s.inserted = true
		if _, err := env.Insert(s.spec); err != nil {
			env.Fail(err)
		}
	}
}

func (s *preloaded) CacheExit(env core.Env, src, tgt isa.Addr) {
	s.exitSrcs = append(s.exitSrcs, src)
	s.exits = append(s.exits, tgt)
}

func (s *preloaded) Stats() core.ProfileStats { return core.ProfileStats{} }

// noop never selects anything.
type noop struct{}

func (noop) Name() string                           { return "noop" }
func (noop) Transfer(core.Env, core.Event)          {}
func (noop) CacheExit(core.Env, isa.Addr, isa.Addr) {}
func (noop) Stats() core.ProfileStats               { return core.ProfileStats{} }

// loopProgram:
//
//	0: movi r1, N        entry [0..0]
//	1: addi r1, r1, -1   body A [1..2]
//	2: nop
//	3: bgt r1, r0, 1     B-tail [3]
//	4: halt
func loopProgram(t *testing.T, n int64) *program.Program {
	t.Helper()
	b := program.NewBuilder()
	b.MovImm(1, n)
	b.Label("loop")
	b.AddImm(1, 1, -1)
	b.Nop()
	b.Label("tail")
	b.Br(isa.CondGt, 1, 0, "loop")
	b.Halt()
	return b.MustBuild()
}

func TestAttributionMatchesVM(t *testing.T) {
	// The simulator's per-block accounting must exactly reproduce the VM's
	// executed-instruction count for every workload under every selector.
	// (Run is self-checking, so any mismatch fails the run itself.)
	for _, wname := range append(workloads.SpecNames(), "fig2-loop-call", "fig3-nested-loops", "fig4-unbiased") {
		w := workloads.MustGet(wname)
		prog := w.Build(50)
		for _, sel := range []core.Selector{
			core.NewNET(core.DefaultParams()),
			core.NewLEI(core.DefaultParams()),
			core.NewCombiner(core.BaseNET, core.DefaultParams()),
			core.NewCombiner(core.BaseLEI, core.DefaultParams()),
		} {
			res, err := Run(prog, Config{Selector: sel})
			if err != nil {
				t.Fatalf("%s/%s: %v", wname, sel.Name(), err)
			}
			if res.Report.TotalInstrs != res.VMStats.Instrs {
				t.Errorf("%s/%s: attribution mismatch", wname, sel.Name())
			}
			if res.Report.CacheInstrs > res.Report.TotalInstrs {
				t.Errorf("%s/%s: cache instrs exceed total", wname, sel.Name())
			}
		}
	}
}

func TestSteadyStateAllocFree(t *testing.T) {
	// Once a hot loop has been selected into the code cache, delivering its
	// block events must not allocate: the in-cache path of transfer touches
	// only pre-grown counters and the region's own tables. This pins the
	// zero-allocation steady state the batched block stream was built for.
	prog := loopProgram(t, 1)
	sim := NewSimulator(prog, Config{Selector: core.NewNET(core.DefaultParams())})
	sim.pos = prog.Entry()
	// Warm up: fall through the entry block, then spin the loop's backward
	// branch until NET selects the region and the simulator enters the cache.
	sim.BlockBatch([]vm.BlockEvent{{Src: 0, Tgt: 1, Taken: false}})
	hot := []vm.BlockEvent{{Src: 3, Tgt: 1, Kind: vm.KindCond, Taken: true}}
	for i := 0; i < 200; i++ {
		sim.BlockBatch(hot)
	}
	if sim.region == nil {
		t.Fatal("warm-up did not enter the code cache")
	}
	batch := make([]vm.BlockEvent, 64)
	for i := range batch {
		batch[i] = vm.BlockEvent{Src: 3, Tgt: 1, Kind: vm.KindCond, Taken: true}
	}
	if allocs := testing.AllocsPerRun(100, func() { sim.BlockBatch(batch) }); allocs != 0 {
		t.Fatalf("steady-state block delivery allocated %.1f times per batch, want 0", allocs)
	}
	if sim.region == nil {
		t.Fatal("simulator left the cache during steady state")
	}
}

func TestNoSelectionMeansNoCache(t *testing.T) {
	res, err := Run(loopProgram(t, 100), Config{Selector: noop{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.CacheInstrs != 0 || res.Report.Regions != 0 || res.Report.HitRate != 0 {
		t.Errorf("noop selector produced cache activity: %+v", res.Report)
	}
	if res.Report.TotalInstrs == 0 || res.Report.InterpBranches == 0 {
		t.Error("no execution recorded")
	}
}

func TestRegionEntryOnlyOnTakenBranch(t *testing.T) {
	p := loopProgram(t, 50)
	// Region = the loop body block [1..2] chained with tail [3], cyclic.
	sel := &preloaded{spec: codecache.Spec{
		Entry: 1,
		Kind:  codecache.KindTrace,
		Blocks: []codecache.BlockSpec{
			{Start: 1, Len: 2},
			{Start: 3, Len: 1},
		},
		Cyclic: true,
	}}
	res, err := Run(p, Config{Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := res.Cache.Lookup(1)
	if !ok {
		t.Fatal("region missing")
	}
	// Execution: entry block 0 falls into 1 (no cache entry on
	// fall-through), loop runs interpreted once until the backward branch
	// 3->1 enters the region; then the region cycles internally until the
	// final not-taken branch exits at 4.
	if r.Entries != 1 {
		t.Errorf("Entries = %d, want 1 (fall-through must not enter)", r.Entries)
	}
	if r.CycleTraversals == 0 {
		t.Error("no executed cycles recorded")
	}
	if res.Report.Transitions != 0 {
		t.Errorf("Transitions = %d, want 0 (single region)", res.Report.Transitions)
	}
	// One exit: the final fall-through to the halt block.
	if len(sel.exits) != 1 || sel.exits[0] != 4 {
		t.Errorf("exits = %v, want [4]", sel.exits)
	}
	// The exit source is the original address of the region block's last
	// instruction (the branch at 3).
	if len(sel.exitSrcs) != 1 || sel.exitSrcs[0] != 3 {
		t.Errorf("exit srcs = %v, want [3]", sel.exitSrcs)
	}
	// Hit rate: 50 iterations of 3 instructions; all but the first run
	// cached, and the final traversal exits after the full block.
	if res.Report.CacheInstrs != uint64(49*3) {
		t.Errorf("CacheInstrs = %d, want 147", res.Report.CacheInstrs)
	}
}

func TestRegionTransitions(t *testing.T) {
	// Two single-block regions A and B where A's exit leads to B's entry:
	// each A->B hop is a region transition.
	b := program.NewBuilder()
	b.MovImm(1, 30)
	b.Label("a")
	b.AddImm(1, 1, -1)
	b.Jmp("b")
	b.Label("b")
	b.Nop()
	b.Br(isa.CondGt, 1, 0, "a")
	b.Halt()
	p := b.MustBuild()

	sel := &twoRegions{}
	res, err := Run(p, Config{Selector: sel})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Regions != 2 {
		t.Fatalf("regions = %d", res.Report.Regions)
	}
	if res.Report.Transitions == 0 {
		t.Error("no transitions counted between linked regions")
	}
	// Every transition is between different regions here: A jmp-> B,
	// B br-> A.
	if res.Report.Transitions < 50 {
		t.Errorf("transitions = %d, expected ~58", res.Report.Transitions)
	}
}

// twoRegions inserts single-block regions for blocks "a" (1..2) and
// "b" (3..4) on the first transfer.
type twoRegions struct{ done bool }

func (s *twoRegions) Name() string { return "two" }
func (s *twoRegions) Transfer(env core.Env, ev core.Event) {
	if s.done {
		return
	}
	s.done = true
	for _, spec := range []codecache.Spec{
		{Entry: 1, Kind: codecache.KindTrace, Blocks: []codecache.BlockSpec{{Start: 1, Len: 2}}},
		{Entry: 3, Kind: codecache.KindTrace, Blocks: []codecache.BlockSpec{{Start: 3, Len: 2}}},
	} {
		if _, err := env.Insert(spec); err != nil {
			env.Fail(err)
		}
	}
}
func (s *twoRegions) CacheExit(core.Env, isa.Addr, isa.Addr) {}
func (s *twoRegions) Stats() core.ProfileStats               { return core.ProfileStats{} }

func TestSelectorErrorPropagates(t *testing.T) {
	sel := &failing{}
	_, err := Run(loopProgram(t, 10), Config{Selector: sel})
	if err == nil || !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want errBoom", err)
	}
}

var errBoom = errors.New("boom")

type failing struct{ done bool }

func (s *failing) Name() string { return "failing" }
func (s *failing) Transfer(env core.Env, ev core.Event) {
	if !s.done {
		s.done = true
		env.Fail(errBoom)
	}
}
func (s *failing) CacheExit(core.Env, isa.Addr, isa.Addr) {}
func (s *failing) Stats() core.ProfileStats               { return core.ProfileStats{} }

func TestNilSelector(t *testing.T) {
	if _, err := Run(loopProgram(t, 1), Config{}); err == nil {
		t.Error("nil selector accepted")
	}
}

func TestVMErrorPropagates(t *testing.T) {
	b := program.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	b.Halt()
	_, err := Run(b.MustBuild(), Config{Selector: noop{}, VM: vm.Config{MaxInstrs: 64}})
	if !errors.Is(err, vm.ErrMaxInstrs) {
		t.Errorf("err = %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	w := workloads.MustGet("twolf")
	p := w.Build(100)
	run := func() Result {
		res, err := Run(p, Config{Selector: core.NewLEI(core.DefaultParams())})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Report != b.Report {
		t.Errorf("non-deterministic reports:\n%v\nvs\n%v", a.Report, b.Report)
	}
}

func TestBoundedCacheRun(t *testing.T) {
	w := workloads.MustGet("gcc")
	p := w.Build(200)
	res, err := Run(p, Config{
		Selector:        core.NewNET(core.DefaultParams()),
		CacheLimitBytes: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.Flushes() == 0 {
		t.Error("tiny cache never flushed")
	}
	if res.Report.TotalInstrs != res.VMStats.Instrs {
		t.Error("attribution broke under flushing")
	}
}

func TestPreloadWarmStart(t *testing.T) {
	prog := workloads.MustGet("mcf").Build(200)
	cold, err := Run(prog, Config{Selector: core.NewLEI(core.DefaultParams())})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Run(prog, Config{
		Selector: core.NewLEI(core.DefaultParams()),
		Preload:  cold.Cache.Snapshot(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Report.HitRate <= cold.Report.HitRate {
		t.Errorf("warm hit %.4f not above cold %.4f", warm.Report.HitRate, cold.Report.HitRate)
	}
	if warm.Report.InterpBranches >= cold.Report.InterpBranches/2 {
		t.Errorf("warm interp branches %d vs cold %d: warm-up not skipped",
			warm.Report.InterpBranches, cold.Report.InterpBranches)
	}
	if warm.Report.Regions > cold.Report.Regions {
		t.Errorf("warm run selected extra regions: %d vs %d", warm.Report.Regions, cold.Report.Regions)
	}
}

func TestPreloadMismatchErrors(t *testing.T) {
	prog := workloads.MustGet("mcf").Build(10)
	other := workloads.MustGet("gzip").Build(10)
	cold, err := Run(other, Config{Selector: core.NewLEI(core.DefaultParams())})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(prog, Config{
		Selector: core.NewLEI(core.DefaultParams()),
		Preload:  cold.Cache.Snapshot(),
	}); err == nil {
		t.Error("mismatched snapshot accepted")
	}
}

// TestAccountingInvariantsOverRandomPrograms cross-checks the simulator's
// books over a corpus of random programs and every selector:
//
//   - instructions attributed to regions sum exactly to the collector's
//     cache-executed count,
//   - hit rate is consistent with those counts,
//   - cycle traversals never exceed traversals,
//   - enters equal exits plus possibly one (a run can end inside a region).
func TestAccountingInvariantsOverRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := workloads.Random(workloads.GenConfig{
			Seed: seed, Funcs: int(seed % 5), MaxDepth: 2 + int(seed%3),
			Iters: 250, Constructs: 5,
		})
		for _, mk := range []func() core.Selector{
			func() core.Selector { return core.NewNET(core.DefaultParams()) },
			func() core.Selector { return core.NewLEI(core.DefaultParams()) },
			func() core.Selector { return core.NewCombiner(core.BaseNET, core.DefaultParams()) },
			func() core.Selector { return core.NewCombiner(core.BaseLEI, core.DefaultParams()) },
			func() core.Selector { return core.NewBOA(core.DefaultParams()) },
			func() core.Selector { return core.NewWRS(core.DefaultParams()) },
		} {
			sel := mk()
			res, err := Run(prog, Config{Selector: sel})
			if err != nil {
				t.Fatalf("seed %d / %s: %v", seed, sel.Name(), err)
			}
			var regionInstrs, traversals, cycles, enters uint64
			for _, r := range res.Cache.AllRegions() {
				regionInstrs += r.ExecInstrs
				traversals += r.Traversals
				cycles += r.CycleTraversals
				enters += r.Entries
			}
			rep := res.Report
			if regionInstrs != rep.CacheInstrs {
				t.Errorf("seed %d / %s: region instrs %d != cache instrs %d",
					seed, sel.Name(), regionInstrs, rep.CacheInstrs)
			}
			if cycles > traversals {
				t.Errorf("seed %d / %s: cycles %d > traversals %d", seed, sel.Name(), cycles, traversals)
			}
			entersCounted := rep.CacheEnters + rep.Transitions
			if enters != entersCounted {
				t.Errorf("seed %d / %s: region entries %d != enters+transitions %d",
					seed, sel.Name(), enters, entersCounted)
			}
			if rep.CacheEnters != rep.CacheExits && rep.CacheEnters != rep.CacheExits+1 {
				t.Errorf("seed %d / %s: enters %d vs exits %d", seed, sel.Name(),
					rep.CacheEnters, rep.CacheExits)
			}
		}
	}
}

// eventTracer records the lifecycle callbacks.
type eventTracer struct {
	enters, transitions, exits, selected int
}

func (e *eventTracer) Enter(*codecache.Region)           { e.enters++ }
func (e *eventTracer) Transition(_, _ *codecache.Region) { e.transitions++ }
func (e *eventTracer) Exit(*codecache.Region, isa.Addr)  { e.exits++ }
func (e *eventTracer) Selected(*codecache.Region)        { e.selected++ }

func TestTracerSeesLifecycle(t *testing.T) {
	prog := workloads.MustGet("gzip").Build(100)
	tr := &eventTracer{}
	res, err := Run(prog, Config{
		Selector: core.NewNET(core.DefaultParams()),
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(tr.enters) != res.Report.CacheEnters {
		t.Errorf("tracer enters %d != %d", tr.enters, res.Report.CacheEnters)
	}
	if uint64(tr.transitions) != res.Report.Transitions {
		t.Errorf("tracer transitions %d != %d", tr.transitions, res.Report.Transitions)
	}
	if uint64(tr.exits) != res.Report.CacheExits {
		t.Errorf("tracer exits %d != %d", tr.exits, res.Report.CacheExits)
	}
	if tr.selected != res.Report.Regions {
		t.Errorf("tracer selections %d != %d", tr.selected, res.Report.Regions)
	}
}

// TestSelectedCodeWasExecuted: the paper's selectors are purely dynamic —
// every block they promote to the cache was actually executed. (The
// profile-driven related-work selectors share the property: their walks
// only follow observed branch outcomes and always-taken fall-throughs.)
func TestSelectedCodeWasExecuted(t *testing.T) {
	for _, bench := range []string{"gcc", "perlbmk", "vortex", "micro-phases"} {
		prog := workloads.MustGet(bench).Build(60)
		for _, selName := range []string{"net", "lei", "net+comb", "lei+comb"} {
			var sel core.Selector
			switch selName {
			case "net":
				sel = core.NewNET(core.DefaultParams())
			case "lei":
				sel = core.NewLEI(core.DefaultParams())
			case "net+comb":
				sel = core.NewCombiner(core.BaseNET, core.DefaultParams())
			default:
				sel = core.NewCombiner(core.BaseLEI, core.DefaultParams())
			}
			res, err := Run(prog, Config{Selector: sel})
			if err != nil {
				t.Fatal(err)
			}
			// A block executed iff it appears as an endpoint of an executed
			// edge (every executed block either transfers control out or
			// was transferred to).
			executed := map[isa.Addr]bool{}
			preds := res.Collector.PredsOf()
			for to, froms := range preds {
				executed[to] = true
				for _, f := range froms {
					executed[f] = true
				}
			}
			for _, r := range res.Cache.AllRegions() {
				for _, b := range r.Blocks {
					if !executed[b.Start] {
						t.Errorf("%s/%s: region %d selected never-executed block @%d",
							bench, selName, r.ID, b.Start)
					}
				}
			}
		}
	}
}
