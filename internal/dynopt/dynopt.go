// Package dynopt simulates the dynamic optimization system of the paper's
// Figure 1: a program is emulated by an interpreter while a region-selection
// algorithm profiles its taken branches; selected regions are promoted to a
// code cache, and subsequent execution of cached code runs "natively"
// (attributed to the cache) until it exits back to the interpreter.
//
// The simulator consumes the dynamic block stream produced by the vm
// package — the same signal the paper's Pin-based framework consumed — and
// drives a core.Selector. All details of region selection are abstracted
// behind that interface, exactly as in the paper's framework (§2.3,
// footnote 4).
package dynopt

import (
	"errors"
	"fmt"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/icache"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/program"
	"repro/internal/vm"
)

// Config configures one simulation run.
type Config struct {
	// Selector is the region-selection algorithm under test.
	Selector core.Selector
	// VM bounds program interpretation.
	VM vm.Config
	// CacheLimitBytes bounds the code cache; zero (the paper's setup)
	// means unbounded.
	CacheLimitBytes int
	// Preload restores a code-cache snapshot from a previous run of the
	// same program before execution begins (the persistent-cache
	// extension): the run starts warm.
	Preload []codecache.RegionSnapshot
	// ICache, when set, simulates an instruction cache over the code-cache
	// layout for all execution inside regions (the locality extension):
	// each executed block fetches its lines at its layout address.
	ICache *icache.Cache
	// Tracer, when set, receives simulation lifecycle events (cache
	// enters, exits, transitions, selections) for debugging and timeline
	// tooling. It must not mutate simulator state.
	Tracer Tracer
	// Tap, when set, receives a copy of the live run's block-event stream
	// alongside the simulator (via vm.Tee) — the recording hook: a
	// tracestream.Recorder tapped here captures the exact stream that
	// produced the run's report, with no second interpretation. Only Run
	// consults it; the stream-driven entry points have the stream already.
	Tap vm.BlockSink
	// Machine, when set, supplies a reusable interpreter: Run re-targets
	// it to the program (reusing its data memory and predecode buffers)
	// instead of allocating a fresh Machine per run. Callers running many
	// simulations back to back (the experiment harness) avoid re-allocating
	// the memory image for every run.
	Machine *vm.Machine
	// Scratch, when set, pools every reusable piece of per-run state —
	// interpreter, simulator, metrics collector, code cache, and report
	// analyzer — across back-to-back runs. It subsumes Machine (which is
	// then ignored).
	Scratch *Scratch
}

// Scratch holds the pooled per-run state for callers running many
// simulations back to back (one Scratch per harness worker). The zero value
// is ready to use. While a Scratch is set, the Result's Cache and Collector
// and the report's intermediate tables live in the Scratch and are
// invalidated by the next run that uses it; the Result's Report is a plain
// value, detached from all scratch state, and stays valid indefinitely.
//
// Every component field must be re-armed on the reuse path — scratchclean
// machine-checks that (docs/LINTING.md).
//
//lint:pooled components re-armed in NewSimulator/Run/analyzeRun
type Scratch struct {
	machine  vm.Machine
	col      metrics.Collector
	analyzer metrics.Analyzer
	sim      Simulator
	cache    codecache.Cache
}

// Tracer observes the simulated system's state machine.
type Tracer interface {
	// Enter fires when control moves from the interpreter into a region.
	Enter(r *codecache.Region)
	// Transition fires on a linked jump between regions.
	Transition(from, to *codecache.Region)
	// Exit fires when control returns to the interpreter at tgt.
	Exit(r *codecache.Region, tgt isa.Addr)
	// Selected fires when a region is promoted to the cache.
	Selected(r *codecache.Region)
}

// Result is the outcome of a run.
type Result struct {
	// Report carries every paper metric.
	Report metrics.Report
	// VMStats is the underlying interpretation summary.
	VMStats vm.Stats
	// Cache is the final code cache, for deeper inspection.
	Cache *codecache.Cache
	// Collector holds the raw execution facts.
	Collector *metrics.Collector
}

// Simulator drives one program run under one selector. It implements both
// vm.Sink (to consume the dynamic branch stream) and core.Env (to service
// the selector).
type Simulator struct {
	prog  *program.Program
	cache *codecache.Cache
	sel   core.Selector
	col   *metrics.Collector

	pos      isa.Addr // leader of the block currently executing
	region   *codecache.Region
	blockIdx int
	ic       *icache.Cache
	tracer   Tracer
	errs     []error
}

// NewSimulator prepares a run of p under cfg. Dense per-address state — the
// collector's edge table and any core.Preallocator tables of the selector —
// is sized to the program's address space up front (program length plus one,
// covering the VM's one-past-the-end predecode sentinel), so the simulation
// hot path never grows a table.
func NewSimulator(p *program.Program, cfg Config) *Simulator {
	var sim *Simulator
	var col *metrics.Collector
	var cache *codecache.Cache
	if cfg.Scratch != nil {
		sim = &cfg.Scratch.sim
		col = &cfg.Scratch.col
		col.Reset()
		cache = &cfg.Scratch.cache
		cache.Reset(p, cfg.CacheLimitBytes)
	} else {
		sim = &Simulator{}
		col = metrics.NewCollector()
		if cfg.CacheLimitBytes > 0 {
			cache = codecache.NewBounded(p, cfg.CacheLimitBytes)
		} else {
			cache = codecache.New(p)
		}
	}
	addrSpace := p.Len() + 1
	col.EnsureCap(addrSpace)
	if pre, ok := cfg.Selector.(core.Preallocator); ok {
		pre.Preallocate(addrSpace)
	}
	*sim = Simulator{
		prog:   p,
		cache:  cache,
		sel:    cfg.Selector,
		col:    col,
		ic:     cfg.ICache,
		tracer: cfg.Tracer,
	}
	return sim
}

// Program implements core.Env.
func (s *Simulator) Program() *program.Program { return s.prog }

// Cache implements core.Env.
func (s *Simulator) Cache() *codecache.Cache { return s.cache }

// Insert implements core.Env.
func (s *Simulator) Insert(spec codecache.Spec) (*codecache.Region, error) {
	r, err := s.cache.Insert(spec)
	if err == nil && s.tracer != nil {
		s.tracer.Selected(r)
	}
	return r, err
}

// Fail implements core.Env.
func (s *Simulator) Fail(err error) { s.errs = append(s.errs, err) }

// TakenBranch implements vm.Sink: execution ran linearly from the current
// position through src, then transferred to tgt.
//
//lint:hotpath per-taken-branch selector event path
func (s *Simulator) TakenBranch(src, tgt isa.Addr, kind vm.BranchKind) {
	s.advanceTo(src)
	s.transfer(src, tgt, true, kind)
	s.pos = tgt
}

// BlockBatch implements vm.BlockSink: each event is the completed execution
// of exactly one basic block — the block led by the current position, whose
// final instruction is the event's Src. Fall-through boundaries arrive
// pre-resolved, so no block-table walking (advanceTo) is needed, and the
// block length is a single subtraction.
//
//lint:hotpath batched block-event consumption
func (s *Simulator) BlockBatch(events []vm.BlockEvent) {
	for i := range events {
		ev := &events[i]
		s.transfer(ev.Src, ev.Tgt, ev.Taken, ev.Kind)
		s.pos = ev.Tgt
	}
}

// advanceTo processes fall-through block boundaries until the current
// block ends exactly at src.
func (s *Simulator) advanceTo(src isa.Addr) {
	for {
		end := s.prog.BlockEnd(s.pos)
		if end-1 == src {
			return
		}
		if end-1 > src {
			panic(fmt.Sprintf("dynopt: branch source %d inside block [%d,%d)", src, s.pos, end))
		}
		s.transfer(end-1, end, false, 0)
		s.pos = end
	}
}

// transfer handles one control transfer out of the current block. src is
// always the final instruction of the block led by s.pos (advanceTo and the
// VM's block events both guarantee it), so the block length is a
// subtraction, not a block-table lookup.
func (s *Simulator) transfer(src, tgt isa.Addr, taken bool, kind vm.BranchKind) {
	blockLen := int(src-s.pos) + 1
	inCache := s.region != nil
	s.col.Block(blockLen, inCache)
	s.col.Edge(s.pos, tgt)
	if inCache {
		s.region.ExecInstrs += uint64(blockLen)
		if s.ic != nil {
			s.ic.Fetch(s.region.CacheAddr+s.region.BlockByteOffset(s.blockIdx),
				s.region.BlockBytes(s.blockIdx))
		}
		s.advanceRegion(src, tgt, taken)
		return
	}
	if taken {
		s.col.InterpBranches++
	}
	ev := core.Event{
		Src:     src,
		Tgt:     tgt,
		Kind:    kind,
		Taken:   taken,
		ToCache: s.cache.HasEntry(tgt),
	}
	s.sel.Transfer(s, ev)
	if taken {
		// Enter the cache when the target is (or has just become) a cached
		// region entry. Checking after the selector ran realizes Figure 5
		// line 15: control jumps into a trace selected at this branch.
		if r, ok := s.cache.Lookup(tgt); ok {
			s.enter(r)
		}
	}
}

// advanceRegion moves execution within the current region or handles its
// exit: a linked jump to another region (a region transition) or a return
// to the interpreter. src is the original address of the last instruction
// of the region block the transfer left from.
func (s *Simulator) advanceRegion(src, tgt isa.Addr, taken bool) {
	nextIdx, stay, cycled := s.region.Advance(s.blockIdx, tgt, taken)
	if stay {
		if cycled {
			s.region.CycleTraversals++
			s.region.Traversals++
		}
		s.blockIdx = nextIdx
		return
	}
	s.region.Traversals++
	if r2, ok := s.cache.Lookup(tgt); ok {
		s.col.Transition(s.region.CacheAddr, r2.CacheAddr)
		if s.tracer != nil {
			s.tracer.Transition(s.region, r2)
		}
		s.region = r2
		s.blockIdx = 0
		r2.Entries++
		return
	}
	if s.tracer != nil {
		s.tracer.Exit(s.region, tgt)
	}
	s.region = nil
	s.col.CacheExits++
	s.sel.CacheExit(s, src, tgt)
}

// enter moves execution from the interpreter into region r.
func (s *Simulator) enter(r *codecache.Region) {
	s.region = r
	s.blockIdx = 0
	r.Entries++
	s.col.CacheEnters++
	if s.tracer != nil {
		s.tracer.Enter(r)
	}
}

// finish accounts the final block, which ends with the halt instruction.
//
//lint:hotpath run epilogue shares the transfer path
func (s *Simulator) finish(finalPC isa.Addr) {
	for {
		end := s.prog.BlockEnd(s.pos)
		if end-1 >= finalPC {
			break
		}
		s.transfer(end-1, end, false, 0)
		s.pos = end
	}
	s.col.Block(s.prog.BlockLen(s.pos), s.region != nil)
	if s.region != nil {
		s.region.ExecInstrs += uint64(s.prog.BlockLen(s.pos))
	}
}

// RunStream drives the simulator from an already-collected taken-branch
// stream instead of interpreting the program live — the decoupling the
// paper's Pin-based framework used. feed must push the stream into the
// provided sink and return the run's final halt address and instruction
// count (for cross-checking; pass 0 to skip the check).
func RunStream(p *program.Program, cfg Config, feed func(vm.Sink) (finalPC isa.Addr, instrs uint64, err error)) (Result, error) {
	if cfg.Selector == nil {
		return Result{}, errors.New("dynopt: no selector configured")
	}
	sim := NewSimulator(p, cfg)
	if len(cfg.Preload) > 0 {
		if err := sim.cache.Restore(cfg.Preload); err != nil {
			return Result{}, fmt.Errorf("dynopt: preloading cache: %w", err)
		}
	}
	finalPC, instrs, err := feed(sim)
	if err != nil {
		return Result{}, fmt.Errorf("dynopt: streaming: %w", err)
	}
	sim.finish(finalPC)
	if len(sim.errs) > 0 {
		return Result{}, errors.Join(sim.errs...)
	}
	if instrs != 0 && sim.col.TotalInstrs != instrs {
		return Result{}, fmt.Errorf("dynopt: attribution mismatch: simulator saw %d instructions, stream recorded %d",
			sim.col.TotalInstrs, instrs)
	}
	report := analyzeRun(sim, cfg)
	return Result{
		Report:    report,
		VMStats:   vm.Stats{Instrs: sim.col.TotalInstrs, FinalPC: finalPC},
		Cache:     sim.cache,
		Collector: sim.col,
	}, nil
}

// analyzeRun produces the run's report, through the pooled analyzer when a
// Scratch is configured.
func analyzeRun(sim *Simulator, cfg Config) metrics.Report {
	var report metrics.Report
	if cfg.Scratch != nil {
		report = cfg.Scratch.analyzer.Analyze(sim.cache, sim.col, cfg.Selector.Stats())
	} else {
		report = metrics.Analyze(sim.cache, sim.col, cfg.Selector.Stats())
	}
	report.Selector = cfg.Selector.Name()
	return report
}

// RunEvents drives the simulator from a fully decoded block-event stream —
// the corpus replay path. It is RunStream without the feed closure, so
// pooled callers (sweep shards replaying a shared tracestream.Corpus) stay
// allocation-free in steady state. finalPC and instrs are the recorded
// run's halt address and instruction count (instrs 0 skips the
// attribution cross-check, matching RunStream).
//
//lint:hotpath corpus replay drives the batched event path
func RunEvents(p *program.Program, cfg Config, events []vm.BlockEvent, finalPC isa.Addr, instrs uint64) (Result, error) {
	if cfg.Selector == nil {
		return Result{}, errors.New("dynopt: no selector configured")
	}
	sim := NewSimulator(p, cfg)
	if len(cfg.Preload) > 0 {
		if err := sim.cache.Restore(cfg.Preload); err != nil {
			return Result{}, fmt.Errorf("dynopt: preloading cache: %w", err)
		}
	}
	sim.BlockBatch(events)
	sim.finish(finalPC)
	if len(sim.errs) > 0 {
		return Result{}, errors.Join(sim.errs...)
	}
	if instrs != 0 && sim.col.TotalInstrs != instrs {
		return Result{}, fmt.Errorf("dynopt: attribution mismatch: simulator saw %d instructions, stream recorded %d",
			sim.col.TotalInstrs, instrs)
	}
	report := analyzeRun(sim, cfg)
	return Result{
		Report:    report,
		VMStats:   vm.Stats{Instrs: sim.col.TotalInstrs, FinalPC: finalPC},
		Cache:     sim.cache,
		Collector: sim.col,
	}, nil
}

// Run interprets the program to completion under the configured selector
// and returns the full metric report.
func Run(p *program.Program, cfg Config) (Result, error) {
	if cfg.Selector == nil {
		return Result{}, errors.New("dynopt: no selector configured")
	}
	sim := NewSimulator(p, cfg)
	if len(cfg.Preload) > 0 {
		if err := sim.cache.Restore(cfg.Preload); err != nil {
			return Result{}, fmt.Errorf("dynopt: preloading cache: %w", err)
		}
	}
	machine := cfg.Machine
	if cfg.Scratch != nil {
		machine = &cfg.Scratch.machine
	}
	if machine != nil {
		machine.Load(p, cfg.VM)
	} else {
		machine = vm.New(p, cfg.VM)
	}
	stats, err := machine.Run(vm.Tee(sim, cfg.Tap))
	if err != nil {
		return Result{}, fmt.Errorf("dynopt: interpreting program: %w", err)
	}
	sim.finish(stats.FinalPC)
	if len(sim.errs) > 0 {
		return Result{}, errors.Join(sim.errs...)
	}
	if sim.col.TotalInstrs != stats.Instrs {
		return Result{}, fmt.Errorf("dynopt: attribution mismatch: simulator saw %d instructions, vm executed %d",
			sim.col.TotalInstrs, stats.Instrs)
	}
	report := analyzeRun(sim, cfg)
	return Result{
		Report:    report,
		VMStats:   stats,
		Cache:     sim.cache,
		Collector: sim.col,
	}, nil
}
