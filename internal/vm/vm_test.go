package vm

import (
	"errors"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

type event struct {
	src, tgt isa.Addr
	kind     BranchKind
}

type recorder struct{ events []event }

func (r *recorder) TakenBranch(src, tgt isa.Addr, kind BranchKind) {
	r.events = append(r.events, event{src, tgt, kind})
}

func run(t *testing.T, p *program.Program, cfg Config) (Stats, *recorder, *Machine) {
	t.Helper()
	m := New(p, cfg)
	rec := &recorder{}
	st, err := m.Run(rec)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec, m
}

func TestArithmetic(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 7)
	b.MovImm(2, 3)
	b.Add(3, 1, 2)   // 10
	b.Sub(4, 1, 2)   // 4
	b.Mul(5, 1, 2)   // 21
	b.Div(6, 1, 2)   // 2
	b.Rem(7, 1, 2)   // 1
	b.And(8, 1, 2)   // 3
	b.Or(9, 1, 2)    // 7
	b.Xor(10, 1, 2)  // 4
	b.Shl(11, 1, 2)  // 56
	b.Shr(12, 11, 2) // 7
	b.AddImm(13, 1, -10)
	b.Mov(14, 13)
	b.Halt()
	_, _, m := run(t, b.MustBuild(), Config{})
	want := map[isa.Reg]int64{3: 10, 4: 4, 5: 21, 6: 2, 7: 1, 8: 3, 9: 7, 10: 4, 11: 56, 12: 7, 13: -3, 14: -3}
	for r, w := range want {
		if got := m.Reg(r); got != w {
			t.Errorf("r%d = %d, want %d", r, got, w)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 9)
	b.Div(2, 1, 0)
	b.Rem(3, 1, 0)
	b.Halt()
	_, _, m := run(t, b.MustBuild(), Config{})
	if m.Reg(2) != 0 || m.Reg(3) != 0 {
		t.Errorf("div/rem by zero = %d, %d; want 0, 0", m.Reg(2), m.Reg(3))
	}
}

func TestShiftMasking(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 1)
	b.MovImm(2, 65) // 65 & 63 = 1
	b.Shl(3, 1, 2)
	b.MovImm(4, -8)
	b.MovImm(5, 1)
	b.Shr(6, 4, 5) // logical shift of two's complement
	b.Halt()
	_, _, m := run(t, b.MustBuild(), Config{})
	if m.Reg(3) != 2 {
		t.Errorf("shl with count 65 = %d, want 2", m.Reg(3))
	}
	if got := m.Reg(6); got != int64(uint64(0xFFFFFFFFFFFFFFF8)>>1) {
		t.Errorf("shr logical = %d", got)
	}
}

func TestMemory(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 100)
	b.MovImm(2, 42)
	b.Store(1, 5, 2) // mem[105] = 42
	b.Load(3, 1, 5)  // r3 = mem[105]
	b.MovImm(4, -1)
	b.Store(4, 0, 2) // wraps modulo memory size
	b.Load(5, 4, 0)
	b.Halt()
	_, _, m := run(t, b.MustBuild(), Config{MemWords: 256})
	if m.Reg(3) != 42 {
		t.Errorf("load after store = %d, want 42", m.Reg(3))
	}
	if m.Reg(5) != 42 {
		t.Errorf("wrapped load = %d, want 42", m.Reg(5))
	}
	if m.Mem(105) != 42 {
		t.Errorf("Mem(105) = %d", m.Mem(105))
	}
}

func TestBranchEventStream(t *testing.T) {
	// 0: movi r1,2 / 1: label loop: addi r1,r1,-1 / 2: bgt r1,r0,loop / 3: halt
	b := program.NewBuilder()
	b.MovImm(1, 2)
	b.Label("loop")
	b.AddImm(1, 1, -1)
	b.Br(isa.CondGt, 1, 0, "loop")
	b.Halt()
	st, rec, _ := run(t, b.MustBuild(), Config{})
	// r1: 2 -> 1 (taken) -> 0 (not taken). One event.
	if len(rec.events) != 1 {
		t.Fatalf("events = %v, want exactly 1", rec.events)
	}
	if rec.events[0] != (event{src: 2, tgt: 1, kind: KindCond}) {
		t.Errorf("event = %+v", rec.events[0])
	}
	if st.Branches != 1 {
		t.Errorf("Branches = %d, want 1", st.Branches)
	}
	if st.Instrs != 1+2*2+1 {
		t.Errorf("Instrs = %d, want 6", st.Instrs)
	}
	if st.FinalPC != 3 {
		t.Errorf("FinalPC = %d, want 3", st.FinalPC)
	}
}

func TestCallReturnNesting(t *testing.T) {
	b := program.NewBuilder()
	b.Jmp("main")
	b.Func("inner")
	b.AddImm(2, 2, 1)
	b.Ret()
	b.Func("outer")
	b.Call("inner")
	b.Call("inner")
	b.Ret()
	b.Func("main")
	b.Call("outer")
	b.Halt()
	st, rec, m := run(t, b.MustBuild(), Config{})
	if m.Reg(2) != 2 {
		t.Errorf("r2 = %d, want 2", m.Reg(2))
	}
	var kinds []BranchKind
	for _, e := range rec.events {
		kinds = append(kinds, e.kind)
	}
	want := []BranchKind{KindJump, KindCall, KindCall, KindReturn, KindCall, KindReturn, KindReturn}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	if st.Branches != uint64(len(want)) {
		t.Errorf("Branches = %d", st.Branches)
	}
}

func TestIndirectJumpTable(t *testing.T) {
	b := program.NewBuilder()
	b.MovLabel(1, "case1")
	b.JmpInd(1)
	b.Label("case0")
	b.MovImm(2, 100)
	b.Halt()
	b.Label("case1")
	b.MovImm(2, 200)
	b.Halt()
	_, rec, m := run(t, b.MustBuild(), Config{})
	if m.Reg(2) != 200 {
		t.Errorf("r2 = %d, want 200", m.Reg(2))
	}
	if len(rec.events) != 1 || rec.events[0].kind != KindIndJump {
		t.Errorf("events = %+v", rec.events)
	}
}

func TestIndirectCall(t *testing.T) {
	b := program.NewBuilder()
	b.Jmp("main")
	b.Func("callee")
	b.MovImm(2, 5)
	b.Ret()
	b.Func("main")
	b.MovLabel(1, "callee")
	b.CallInd(1)
	b.Halt()
	_, rec, m := run(t, b.MustBuild(), Config{})
	if m.Reg(2) != 5 {
		t.Errorf("r2 = %d, want 5", m.Reg(2))
	}
	found := false
	for _, e := range rec.events {
		if e.kind == KindIndCall {
			found = true
		}
	}
	if !found {
		t.Errorf("no indirect call event in %+v", rec.events)
	}
}

func TestErrReturnUnderflow(t *testing.T) {
	b := program.NewBuilder()
	b.Ret()
	b.Halt()
	_, err := Run(b.MustBuild(), Config{}, nil)
	if !errors.Is(err, ErrUnderflow) {
		t.Errorf("err = %v, want ErrUnderflow", err)
	}
}

func TestErrCallDepth(t *testing.T) {
	b := program.NewBuilder()
	b.Func("rec")
	b.Call("rec")
	b.Halt()
	_, err := Run(b.MustBuild(), Config{MaxCallDepth: 16}, nil)
	if !errors.Is(err, ErrCallDepth) {
		t.Errorf("err = %v, want ErrCallDepth", err)
	}
}

func TestErrMaxInstrs(t *testing.T) {
	b := program.NewBuilder()
	b.Label("spin")
	b.Jmp("spin")
	b.Halt()
	_, err := Run(b.MustBuild(), Config{MaxInstrs: 100}, nil)
	if !errors.Is(err, ErrMaxInstrs) {
		t.Errorf("err = %v, want ErrMaxInstrs", err)
	}
}

func TestErrBadIndirectTarget(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 1_000_000)
	b.JmpInd(1)
	b.Halt()
	_, err := Run(b.MustBuild(), Config{}, nil)
	if !errors.Is(err, ErrBadTarget) {
		t.Errorf("err = %v, want ErrBadTarget", err)
	}
	// Negative computed target.
	b2 := program.NewBuilder()
	b2.MovImm(1, -4)
	b2.JmpInd(1)
	b2.Halt()
	if _, err := Run(b2.MustBuild(), Config{}, nil); !errors.Is(err, ErrBadTarget) {
		t.Errorf("err = %v, want ErrBadTarget", err)
	}
}

func TestErrIndirectNonLeader(t *testing.T) {
	// A mid-block address is not a leader: an indirect jump there is a
	// workload bug the VM must catch.
	b := program.NewBuilder()
	b.Nop()
	b.Nop()
	b.JmpInd(1)
	b.Halt()
	p := b.MustBuild()
	m := New(p, Config{})
	m.SetReg(1, 1) // address 1 is inside the entry block
	_, err := m.Run(nil)
	if !errors.Is(err, ErrNotLeader) {
		t.Errorf("err = %v, want ErrNotLeader", err)
	}
}

func TestDeterminismAndReset(t *testing.T) {
	b := program.NewBuilder()
	b.MovImm(1, 1000)
	b.MovImm(2, 12345)
	b.Label("loop")
	b.MovImm(3, 6364136223846793005)
	b.Mul(2, 2, 3)
	b.AddImm(2, 2, 1442695040888963407)
	b.MovImm(3, 40)
	b.Shr(4, 2, 3)
	b.MovImm(5, 255)
	b.And(4, 4, 5)
	b.MovImm(5, 128)
	b.Br(isa.CondLt, 4, 5, "skip")
	b.AddImm(6, 6, 1)
	b.Label("skip")
	b.AddImm(1, 1, -1)
	b.Br(isa.CondGt, 1, 0, "loop")
	b.Halt()
	p := b.MustBuild()
	m := New(p, Config{})
	st1, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	taken1 := m.Reg(6)
	m.Reset()
	st2, err := m.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 || taken1 != m.Reg(6) {
		t.Errorf("non-deterministic: %+v vs %+v (r6 %d vs %d)", st1, st2, taken1, m.Reg(6))
	}
	if taken1 == 0 || taken1 == 1000 {
		t.Errorf("LCG branch never varied: taken=%d/1000", taken1)
	}
}

func TestSinkFunc(t *testing.T) {
	b := program.NewBuilder()
	b.Jmp("end")
	b.Label("end")
	b.Halt()
	n := 0
	_, err := Run(b.MustBuild(), Config{}, SinkFunc(func(isa.Addr, isa.Addr, BranchKind) { n++ }))
	if err != nil || n != 1 {
		t.Errorf("n = %d, err = %v", n, err)
	}
}
